package scatter

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mpi"
)

// faultScenario is one failure regime of the fault-tolerance benchmark.
type faultScenario struct {
	Name string `json:"name"`
	plan func(procs []core.Processor) *fault.Plan
}

// faultBenchResult is one row of BENCH_fault.json.
type faultBenchResult struct {
	Name     string  `json:"name"`
	Makespan float64 `json:"makespan_virtual_s"`
	Retries  int     `json:"retries"`
	Timeouts int     `json:"timeouts"`
	Rounds   int     `json:"rounds"`
	Failed   int     `json:"failed_ranks"`
}

// BenchmarkFaultScatter measures the fault-tolerant scatter's makespan
// on the Table 1 grid at 100k items under three regimes: no faults
// (the retry machinery must cost nothing), one transient link drop
// (one retry), and one permanent crash (declare dead + re-solve +
// rebalance round). It writes the virtual-time results to
// BENCH_fault.json; regenerate with `make bench-fault`.
func BenchmarkFaultScatter(b *testing.B) {
	const n = 100000
	procs := table1Procs(b)
	root := len(procs) - 1
	res, err := core.SolveLinear(procs, n)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int(res.Distribution)
	pol := fault.Policy{
		Timeout:    0.5,
		MaxRetries: 3,
		Backoff:    fault.Backoff{Base: 0.25, Factor: 2, Cap: 2},
	}
	// Rank 2 (sekhmet in descending-bandwidth order) is served early
	// enough that both scenarios hit its first transfer.
	scenarios := []faultScenario{
		{Name: "none", plan: func([]core.Processor) *fault.Plan { return nil }},
		{Name: "transient-drop", plan: func([]core.Processor) *fault.Plan {
			return fault.MustPlan(fault.Fault{Kind: fault.LinkDrop, Rank: 2, Start: 0, End: 1.5})
		}},
		{Name: "permanent-crash", plan: func([]core.Processor) *fault.Plan {
			return fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 2, Start: 1})
		}},
	}

	results := make([]faultBenchResult, 0, len(scenarios))
	for _, sc := range scenarios {
		b.Run(sc.Name, func(b *testing.B) {
			var row faultBenchResult
			for i := 0; i < b.N; i++ {
				world, err := mpi.NewWorld(procs, root)
				if err != nil {
					b.Fatal(err)
				}
				world.SetFaultPlan(sc.plan(procs), pol)
				reports := make([]*mpi.ScatterReport, len(procs))
				data := make([]int32, n)
				stats, err := mpi.Run(world, func(c *mpi.Comm) error {
					var in []int32
					if c.IsRoot() {
						in = data
					}
					buf, rep, err := mpi.FaultTolerantScatterv(c, in, counts)
					reports[c.Rank()] = rep
					if err != nil {
						return nil // dead rank: survivors carry on
					}
					c.ChargeItems(len(buf))
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
				rep := reports[root]
				if rep.Final.Sum() != n {
					b.Fatalf("%s: delivered %d of %d items", sc.Name, rep.Final.Sum(), n)
				}
				row = faultBenchResult{
					Name:     sc.Name,
					Makespan: mpi.Makespan(stats),
					Retries:  rep.Retries,
					Timeouts: rep.Timeouts,
					Rounds:   rep.Rounds,
					Failed:   len(rep.Failed),
				}
				b.ReportMetric(row.Makespan, "virtual_s")
			}
			results = append(results, row)
		})
	}

	if len(results) == len(scenarios) {
		doc := struct {
			Benchmark string             `json:"benchmark"`
			Platform  string             `json:"platform"`
			Items     int                `json:"items"`
			Scenarios []faultBenchResult `json:"scenarios"`
		}{"FaultScatter", "table1-descending-bandwidth", n, results}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_fault.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

GO ?= go

.PHONY: all build vet test race bench bench-fault bench-recovery bench-solver bench-solver-smoke bench-degraded bench-lint bench-serve figures fmt lint lint-vet ci-lint check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate BENCH_fault.json (fault-tolerant scatter makespans under
# no faults / one transient drop / one permanent crash).
bench-fault:
	$(GO) test -run '^$$' -bench BenchmarkFaultScatter -benchtime 1x .

# Regenerate BENCH_recovery.json (failover recovery overhead of the
# chaos pipeline vs its fault-free baseline on the Table 1 grid).
bench-recovery:
	$(GO) run ./cmd/scatterbench -recovery BENCH_recovery.json

# Regenerate BENCH_solver.json (incremental solver engine vs the
# from-scratch DP at the paper's full 817,101-item scale: cold solves,
# the worker-pool scaling curve, coarsen-then-refine with its error
# band, warm crash re-solves, plan-cache hits). Takes a few minutes.
bench-solver:
	$(GO) run ./cmd/scatterbench -solver BENCH_solver.json

# Smoke variant for CI: the same measurement matrix (scaling curve,
# coarse band checks, bit-identity checks) at a reduced item count, so
# a regression in any verified invariant — not the wall-clock numbers —
# fails fast on shared runners. Output is discarded on purpose: only
# the committed BENCH_solver.json carries published numbers.
bench-solver-smoke:
	$(GO) run ./cmd/scatterbench -solver /tmp/BENCH_solver_smoke.json -items 120000

# Regenerate BENCH_degraded.json (degraded-network recovery on routed
# ring platforms: exact-DP re-solves vs the diffusion fallback under a
# site partition plus degraded trunk links, at three graph sizes).
bench-degraded:
	$(GO) run ./cmd/scatterbench -degraded BENCH_degraded.json

# Regenerate BENCH_serve.json (scatterd under a seeded 120k-request
# load: throughput, latency percentiles, store/cache hit rates, shed
# rate, and cold-vs-warm crash-restart economics).
bench-serve:
	$(GO) run ./cmd/scatterbench -serve BENCH_serve.json

# Regenerate BENCH_lint.json (scatterlint runtime over this module:
# loader, the five syntactic analyzers, the three dataflow analyzers,
# the three SSA analyzers, the generated synthetic fixture, and the
# incremental cache cold vs. warm after a one-package edit).
bench-lint:
	$(GO) test -run '^$$' -bench BenchmarkLint -benchtime 1x .

# Regenerate figures/fault.svg alongside the demo's console report.
figures:
	$(GO) run ./examples/faultdemo

# Fail if any file needs gofmt. Fixture packages under
# internal/lint/testdata/*/ are exempt — they pin layouts (trailing
# directives, want comments) on purpose. The generator files directly
# under testdata are gated by `make lint` instead.
fmt:
	@out=$$(gofmt -l . | grep -v '^internal/lint/testdata/[^/]*/' || true); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bin/scatterlint: $(wildcard cmd/scatterlint/*.go internal/lint/*.go)
	$(GO) build -o $@ ./cmd/scatterlint

# Run the domain-invariant analyzers (internal/lint) over the whole
# module, test files included, through the incremental content-hashed
# cache under bin/lintcache: a warm run after touching one package
# re-analyzes only that package and its reverse dependencies.
# Suppress a finding with
#   //scatterlint:ignore <analyzer> <reason>
lint: bin/scatterlint
	./bin/scatterlint ./...
	@out=$$(gofmt -l internal/lint/testdata/*.go); \
	if [ -n "$$out" ]; then \
		echo "fixture generators need gofmt:"; echo "$$out"; exit 1; \
	fi

# The same suite through the standard vet driver (the unitchecker
# protocol go vet speaks); slower, kept for parity debugging.
lint-vet: bin/scatterlint
	$(GO) vet -vettool=$(CURDIR)/bin/scatterlint ./...

# Cache-coherence gate: run scatterlint twice from an empty cache —
# cold, then fully warm — and fail if the findings differ by a byte.
ci-lint: bin/scatterlint
	rm -rf bin/lintcache
	./bin/scatterlint -json ./... > bin/lint-cold.json
	./bin/scatterlint -json ./... > bin/lint-warm.json
	cmp bin/lint-cold.json bin/lint-warm.json

# Umbrella gate: everything CI enforces, in one target.
check: build vet lint race

ci: fmt check ci-lint

GO ?= go

.PHONY: all build vet test race bench bench-fault bench-recovery bench-solver figures fmt lint check ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate BENCH_fault.json (fault-tolerant scatter makespans under
# no faults / one transient drop / one permanent crash).
bench-fault:
	$(GO) test -run '^$$' -bench BenchmarkFaultScatter -benchtime 1x .

# Regenerate BENCH_recovery.json (failover recovery overhead of the
# chaos pipeline vs its fault-free baseline on the Table 1 grid).
bench-recovery:
	$(GO) run ./cmd/scatterbench -recovery BENCH_recovery.json

# Regenerate BENCH_solver.json (incremental solver engine vs the
# from-scratch DP at the paper's full 817,101-item scale: cold solves,
# warm crash re-solves, plan-cache hits). Takes a few minutes.
bench-solver:
	$(GO) run ./cmd/scatterbench -solver BENCH_solver.json

# Regenerate figures/fault.svg alongside the demo's console report.
figures:
	$(GO) run ./examples/faultdemo

# Fail if any file needs gofmt (testdata fixtures included).
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

bin/scatterlint: $(wildcard cmd/scatterlint/*.go internal/lint/*.go)
	$(GO) build -o $@ ./cmd/scatterlint

# Run the domain-invariant analyzers (internal/lint) over the whole
# module through the standard vet driver. Suppress a finding with
#   //scatterlint:ignore <analyzer> <reason>
lint: bin/scatterlint
	$(GO) vet -vettool=$(CURDIR)/bin/scatterlint ./...

# Umbrella gate: everything CI enforces, in one target.
check: build vet lint race

ci: fmt check

GO ?= go

.PHONY: all build vet test race bench bench-fault figures ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Regenerate BENCH_fault.json (fault-tolerant scatter makespans under
# no faults / one transient drop / one permanent crash).
bench-fault:
	$(GO) test -run '^$$' -bench BenchmarkFaultScatter -benchtime 1x .

# Regenerate figures/fault.svg alongside the demo's console report.
figures:
	$(GO) run ./examples/faultdemo

ci: vet build race

// Benchmarks regenerating the paper's tables and figures; see
// DESIGN.md for the experiment index. Each paper artifact has one
// Benchmark function; the full-scale regeneration (817,101 items) is
// the job of cmd/scatterbench, while the benchmarks here use sizes
// that keep `go test -bench=.` minutes-scale and report the scaling
// behaviour the paper claims.
package scatter

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/masterslave"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/seismic"
	"repro/internal/simgrid"
	"repro/internal/transform"
)

func table1Procs(b *testing.B) []core.Processor {
	b.Helper()
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		b.Fatal(err)
	}
	return procs
}

// BenchmarkTable1Calibration regenerates Table 1's calibration: the
// per-ray cost of the real ray-tracing kernel.
func BenchmarkTable1Calibration(b *testing.B) {
	tracer, err := seismic.NewTracer(seismic.IASP91Lite(), 200)
	if err != nil {
		b.Fatal(err)
	}
	events := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1, Events: 1000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracer.TraceAll(events)
	}
	b.ReportMetric(float64(len(events)), "rays/op")
}

// benchFigure simulates one of the paper's figure runs at full scale
// (817,101 rays) with the given ordering and solver.
func benchFigure(b *testing.B, ordering platform.Ordering, solve core.Solver) {
	procs, err := platform.Table1().ProcessorsOrdered(ordering)
	if err != nil {
		b.Fatal(err)
	}
	res, err := solve(procs, platform.Table1Rays)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var makespan float64
	for i := 0; i < b.N; i++ {
		tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: res.Distribution})
		if err != nil {
			b.Fatal(err)
		}
		makespan = tl.Makespan
	}
	b.ReportMetric(makespan, "virtual_s")
}

// BenchmarkFig2Uniform regenerates Figure 2 (uniform distribution).
func BenchmarkFig2Uniform(b *testing.B) {
	benchFigure(b, platform.OrderDescendingBandwidth,
		func(procs []core.Processor, n int) (core.Result, error) {
			dist := core.Uniform(len(procs), n)
			return core.Result{Distribution: dist, Makespan: core.Makespan(procs, dist)}, nil
		})
}

// BenchmarkFig3Balanced regenerates Figure 3 (balanced, descending
// bandwidth).
func BenchmarkFig3Balanced(b *testing.B) {
	benchFigure(b, platform.OrderDescendingBandwidth, core.Heuristic)
}

// BenchmarkFig4Ascending regenerates Figure 4 (balanced, ascending
// bandwidth).
func BenchmarkFig4Ascending(b *testing.B) {
	benchFigure(b, platform.OrderAscendingBandwidth, core.Heuristic)
}

// BenchmarkAlgorithm1 measures the basic exact DP across n (the
// Section 5.2 cost anecdote: quadratic in n, "more than two days" at
// full scale).
func BenchmarkAlgorithm1(b *testing.B) {
	procs := table1Procs(b)
	for _, n := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Algorithm1(procs, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm2 measures the optimized exact DP across n
// ("6 minutes" at full scale in the paper; minutes-scale here too, so
// the sweep stops at 100k — the experiment driver runs full scale).
func BenchmarkAlgorithm2(b *testing.B) {
	procs := table1Procs(b)
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Algorithm2(procs, n); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeuristic measures the guaranteed LP heuristic at the
// paper's full scale ("instantaneous").
func BenchmarkHeuristic(b *testing.B) {
	procs := table1Procs(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.Heuristic(procs, platform.Table1Rays); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClosedFormLinear measures the Theorem 1-2 closed-form
// solver at full scale.
func BenchmarkClosedFormLinear(b *testing.B) {
	procs := table1Procs(b)
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveLinear(procs, platform.Table1Rays); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg2Ablation isolates the two optimizations that turn
// Algorithm 1 into Algorithm 2: the binary-searched crossover and the
// early break (DESIGN.md ablation A1).
func BenchmarkAlg2Ablation(b *testing.B) {
	procs := table1Procs(b)
	const n = 10000
	variants := []struct {
		name string
		opts core.Algorithm2Options
	}{
		{"full", core.Algorithm2Options{}},
		{"noBinarySearch", core.Algorithm2Options{DisableBinarySearch: true}},
		{"noEarlyBreak", core.Algorithm2Options{DisableEarlyBreak: true}},
		{"neither", core.Algorithm2Options{DisableBinarySearch: true, DisableEarlyBreak: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Algorithm2Opt(procs, n, v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderingPolicies measures the balanced makespan under the
// three orderings (Theorem 3 validation, Figures 3 vs 4).
func BenchmarkOrderingPolicies(b *testing.B) {
	for _, o := range []platform.Ordering{
		platform.OrderDescendingBandwidth,
		platform.OrderAsListed,
		platform.OrderAscendingBandwidth,
	} {
		b.Run(o.String(), func(b *testing.B) {
			procs, err := platform.Table1().ProcessorsOrdered(o)
			if err != nil {
				b.Fatal(err)
			}
			var makespan float64
			for i := 0; i < b.N; i++ {
				res, err := core.Heuristic(procs, platform.Table1Rays)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.Makespan
			}
			b.ReportMetric(makespan, "virtual_s")
		})
	}
}

// BenchmarkRootChoice measures the Section 3.4 root sweep.
func BenchmarkRootChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RootChoice(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPIScatterv measures the virtual-time runtime executing the
// paper's program (scatter + compute) on the Table 1 grid.
func BenchmarkMPIScatterv(b *testing.B) {
	procs := table1Procs(b)
	res, err := core.Heuristic(procs, platform.Table1Rays)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]int32, platform.Table1Rays)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world, err := mpi.NewWorld(procs, len(procs)-1)
		if err != nil {
			b.Fatal(err)
		}
		_, err = mpi.Run(world, func(c *mpi.Comm) error {
			var in []int32
			if c.IsRoot() {
				in = data
			}
			buf, err := mpi.Scatterv(c, in, []int(res.Distribution))
			if err != nil {
				return err
			}
			c.ChargeItems(len(buf))
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulator measures the discrete-event simulator on a
// full-scale figure run with perturbations enabled.
func BenchmarkSimulator(b *testing.B) {
	procs := table1Procs(b)
	res, err := core.Heuristic(procs, platform.Table1Rays)
	if err != nil {
		b.Fatal(err)
	}
	cfg := simgrid.Config{
		Procs: procs,
		Dist:  res.Distribution,
		CPULoad: map[string][]simgrid.RateWindow{
			"sekhmet": {{Start: 100, End: 300, Factor: 0.6}},
		},
		Noise: &simgrid.Noise{Seed: 1, CommStdDev: 0.05, CompStdDev: 0.05},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simgrid.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRayTrace measures the real compute kernel (per-ray cost,
// the quantity Table 1 calibrates).
func BenchmarkRayTrace(b *testing.B) {
	for _, res := range []float64{0, 200, 50} {
		b.Run(fmt.Sprintf("resolutionKm=%.0f", res), func(b *testing.B) {
			tracer, err := seismic.NewTracer(seismic.IASP91Lite(), res)
			if err != nil {
				b.Fatal(err)
			}
			events := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 2, Events: 256})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tracer.Trace(events[i%len(events)])
			}
		})
	}
}

// BenchmarkMultiRound measures the multi-installment LP solve at
// several round counts (DESIGN.md E13).
func BenchmarkMultiRound(b *testing.B) {
	procs := table1Procs(b)
	for _, rounds := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MultiRound(procs, 50000, rounds); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMasterSlave measures the dynamic baseline scheduler across
// chunk sizes (DESIGN.md E11).
func BenchmarkMasterSlave(b *testing.B) {
	procs := table1Procs(b)
	for _, chunk := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := masterslave.Run(masterslave.Config{
					Procs:           procs,
					Items:           platform.Table1Rays,
					ChunkSize:       chunk,
					RequestOverhead: 0.01,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonitorForecast measures the NWS-style adaptive forecaster.
func BenchmarkMonitorForecast(b *testing.B) {
	m := monitor.New(256, nil)
	for i := 0; i < 256; i++ {
		m.Observe(monitor.CPUResource("x"), float64(i), 0.5+0.1*float64(i%7))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Forecast(monitor.CPUResource("x")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransform measures the Scatter -> Scatterv source rewriter.
func BenchmarkTransform(b *testing.B) {
	src := []byte(`package main

import "repro/internal/mpi"

func run(c *mpi.Comm, data []float64, n int) error {
	buf, err := mpi.Scatter(c, data, n/c.Size())
	if err != nil {
		return err
	}
	c.ChargeItems(len(buf))
	return nil
}
`)
	for i := 0; i < b.N; i++ {
		res, err := transform.Rewrite("bench.go", src)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rewrites != 1 {
			b.Fatal("no rewrite")
		}
	}
}

// BenchmarkLPFloatVsExact compares the two simplex implementations on
// the single-round scatter LP (17 variables).
func BenchmarkLPFloatVsExact(b *testing.B) {
	procs := table1Procs(b)
	aps, err := core.ExtractAffine(procs)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.HeuristicRational(aps, platform.Table1Rays); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("float-multiround1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.MultiRound(procs, platform.Table1Rays, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAlgorithm2Parallel compares the sequential and parallel
// exact DP at a size where the row sweep dominates.
func BenchmarkAlgorithm2Parallel(b *testing.B) {
	procs := table1Procs(b)
	const n = 100000
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Algorithm2(procs, n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Algorithm2Parallel(procs, n, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package scatter_test

import (
	"fmt"

	scatter "repro"
)

// ExampleBalance shows the paper's core transformation: compute a
// distribution for MPI_Scatterv instead of using a uniform MPI_Scatter.
func ExampleBalance() {
	procs := []scatter.Processor{
		{Name: "fast", Comm: scatter.LinearCost(0.01), Comp: scatter.LinearCost(1)},
		{Name: "slow", Comm: scatter.LinearCost(0.01), Comp: scatter.LinearCost(3)},
		{Name: "root", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(2)},
	}
	res, err := scatter.Balance(procs, 110)
	if err != nil {
		panic(err)
	}
	fmt.Println("counts:", res.Distribution)
	fmt.Printf("makespan: %.1f (uniform: %.1f)\n",
		res.Makespan, scatter.Makespan(procs, scatter.Uniform(3, 110)))
	// Output:
	// counts: [60 20 30]
	// makespan: 60.8 (uniform: 111.7)
}

// ExampleOrder shows the Theorem 3 ordering policy: receivers sorted
// by descending link bandwidth, the root last.
func ExampleOrder() {
	procs := []scatter.Processor{
		{Name: "wan", Comm: scatter.LinearCost(0.5), Comp: scatter.LinearCost(1)},
		{Name: "lan", Comm: scatter.LinearCost(0.1), Comp: scatter.LinearCost(1)},
		{Name: "root", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(1)},
	}
	for _, p := range scatter.Order(procs) {
		fmt.Println(p.Name)
	}
	// Output:
	// lan
	// wan
	// root
}

// ExamplePredict inspects the full schedule of a distribution: the
// idle/receive/compute phases of every processor (the data behind the
// paper's Gantt figures).
func ExamplePredict() {
	procs := []scatter.Processor{
		{Name: "w", Comm: scatter.LinearCost(1), Comp: scatter.LinearCost(2)},
		{Name: "root", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(2)},
	}
	tl, err := scatter.Predict(procs, scatter.Distribution{4, 4})
	if err != nil {
		panic(err)
	}
	for _, p := range tl.Procs {
		fmt.Printf("%s: idle %.0f, recv %.0f, comp %.0f, finish %.0f\n",
			p.Name, p.Idle(), p.CommTime(), p.CompTime(), p.Finish())
	}
	// Output:
	// w: idle 0, recv 4, comp 8, finish 12
	// root: idle 4, recv 0, comp 8, finish 12
}

// ExampleGuaranteeBound shows the Eq. (4) optimality guarantee of the
// affine heuristic: at most one item's worth of communication per
// processor plus one item's worth of computation.
func ExampleGuaranteeBound() {
	procs := []scatter.Processor{
		{Name: "w", Comm: scatter.AffineCost(0, 2), Comp: scatter.LinearCost(5)},
		{Name: "root", Comm: scatter.FreeCost(), Comp: scatter.LinearCost(3)},
	}
	fmt.Println(scatter.GuaranteeBound(procs))
	// Output:
	// 7
}

// Command calibrate measures this machine's per-ray computation cost
// the way the paper's Table 1 was produced ("the values come from a
// series of benchmarks we performed on our application"): it runs the
// real seismic ray-tracing kernel at several batch sizes, fits linear
// and affine cost models, and emits a machine entry ready to paste
// into a platform JSON for cmd/balance.
//
// Usage:
//
//	calibrate                       # default batches, resolution 200 km
//	calibrate -name mybox -cpus 8   # label the emitted machine entry
//	calibrate -resolution 50        # heavier per-ray work
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/seismic"
)

func main() {
	var (
		name       = flag.String("name", hostnameOr("thishost"), "machine name for the emitted entry")
		cpus       = flag.Int("cpus", 1, "CPU count for the emitted entry")
		resolution = flag.Float64("resolution", 200, "earth-model refinement in km (smaller = more work per ray)")
		repeats    = flag.Int("repeats", 3, "measurements per batch size")
	)
	flag.Parse()

	tracer, err := seismic.NewTracer(seismic.IASP91Lite(), *resolution)
	if err != nil {
		fatal(err)
	}
	batches := []int{250, 500, 1000, 2000, 4000}
	events := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 7, Events: batches[len(batches)-1]})

	// Warm up caches and the scheduler.
	tracer.TraceAll(events[:batches[0]])

	fmt.Fprintf(os.Stderr, "calibrating %s (resolution %.0f km, %d repeats per batch)\n",
		*name, *resolution, *repeats)
	var samples []cost.Sample
	for _, b := range batches {
		for r := 0; r < *repeats; r++ {
			start := time.Now()
			tracer.TraceAll(events[:b])
			d := time.Since(start).Seconds()
			samples = append(samples, cost.Sample{X: b, Seconds: d})
			fmt.Fprintf(os.Stderr, "  %5d rays: %8.4f s (%.2f us/ray)\n", b, d, 1e6*d/float64(b))
		}
	}

	linear, err := cost.FitLinear(samples)
	if err != nil {
		fatal(err)
	}
	affine, err := cost.FitAffine(samples)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "\nlinear fit:  beta = %.6g s/ray (rms residual %.3g s)\n",
		linear.PerItem, cost.FitResidual(linear, samples))
	fmt.Fprintf(os.Stderr, "affine fit:  %.6g + %.6g*x s (rms residual %.3g s)\n",
		affine.Fixed, affine.PerItem, cost.FitResidual(affine, samples))

	// Rating relative to the paper's reference machine (dinadan,
	// PIII/933 at 0.009288 s/ray).
	ref := 0.009288
	machine := platform.Machine{
		Name:   *name,
		CPUs:   *cpus,
		Beta:   linear.PerItem,
		Rating: ref / linear.PerItem,
		Alpha:  0, // measure your link to the root separately
	}
	out, err := json.MarshalIndent(machine, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
}

func hostnameOr(fallback string) string {
	if h, err := os.Hostname(); err == nil && h != "" {
		return h
	}
	return fallback
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "calibrate: %v\n", err)
	os.Exit(1)
}

// Command raytrace runs the paper's seismic-tomography application on
// the virtual-time MPI runtime: the root reads the event catalog,
// scatters it (uniformly or with a balanced distribution) and every
// rank ray-traces its share. Virtual per-rank clocks follow the
// platform cost model, so the output reproduces the shape of the
// paper's Figures 2 and 3.
//
// Usage:
//
//	raytrace -rays 817101                 # balanced run on the Table 1 grid
//	raytrace -rays 817101 -uniform        # the original program's behaviour
//	raytrace -rays 100000 -real           # really trace the rays too
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/seismic"
	"repro/internal/trace"
)

func main() {
	var (
		rays    = flag.Int("rays", platform.Table1Rays, "number of rays (catalog size)")
		uniform = flag.Bool("uniform", false, "use the original uniform MPI_Scatter instead of the balanced MPI_Scatterv")
		real    = flag.Bool("real", false, "really trace the rays (otherwise virtual-time only)")
		order   = flag.String("order", "desc", "processor ordering: desc or asc")
		catalog = flag.String("catalog", "", "read the event catalog from this CSV instead of synthesizing one")
		dump    = flag.String("dump", "", "write the synthesized catalog to this CSV and exit")
	)
	flag.Parse()

	if *dump != "" {
		events := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1999, Events: *rays})
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		if err := seismic.WriteCatalog(f, events); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d events to %s\n", len(events), *dump)
		return
	}

	var loaded []seismic.Event
	if *catalog != "" {
		f, err := os.Open(*catalog)
		if err != nil {
			fatal(err)
		}
		loaded, err = seismic.ReadCatalog(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		*rays = len(loaded)
	}

	ordering := platform.OrderDescendingBandwidth
	if *order == "asc" {
		ordering = platform.OrderAscendingBandwidth
	}
	procs, err := platform.Table1().ProcessorsOrdered(ordering)
	if err != nil {
		fatal(err)
	}

	// The distribution: the code-transformation story of the paper is
	// replacing MPI_Scatter with MPI_Scatterv parameterized by the
	// heuristic's counts.
	var counts core.Distribution
	if *uniform {
		counts = core.Uniform(len(procs), *rays)
	} else {
		res, err := core.Heuristic(procs, *rays)
		if err != nil {
			fatal(err)
		}
		counts = res.Distribution
	}

	world, err := mpi.NewWorld(procs, len(procs)-1)
	if err != nil {
		fatal(err)
	}

	var tracer *seismic.Tracer
	if *real {
		tracer, err = seismic.NewTracer(seismic.IASP91Lite(), 200)
		if err != nil {
			fatal(err)
		}
	}

	stats, err := mpi.Run(world, func(c *mpi.Comm) error {
		// if (rank == ROOT) raydata <- read n lines from data file;
		var raydata []seismic.Event
		if c.IsRoot() {
			if loaded != nil {
				raydata = loaded
			} else {
				raydata = seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1999, Events: *rays})
			}
		}
		// MPI_Scatterv(raydata, counts, ..., ROOT, MPI_COMM_WORLD);
		rbuff, err := mpi.Scatterv(c, raydata, []int(counts))
		if err != nil {
			return err
		}
		// compute_work(rbuff);
		if tracer != nil {
			tracer.TraceAll(rbuff)
		}
		c.ChargeItems(len(rbuff))
		return nil
	})
	if err != nil {
		fatal(err)
	}

	mode := "balanced (MPI_Scatterv)"
	if *uniform {
		mode = "uniform (MPI_Scatter)"
	}
	fmt.Printf("seismic ray tracing: %d rays, %d ranks, %s, %s order\n\n",
		*rays, len(procs), mode, *order)

	rows := make([][]string, 0, len(stats))
	for _, s := range stats {
		rows = append(rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.ItemsReceived),
			fmt.Sprintf("%.2f", s.CommTime),
			fmt.Sprintf("%.2f", s.IdleTime),
			fmt.Sprintf("%.2f", s.CompTime),
			fmt.Sprintf("%.2f", s.Finish),
		})
	}
	fmt.Print(trace.Table([]string{"rank (processor)", "rays", "comm(s)", "idle(s)", "comp(s)", "total(s)"}, rows))
	fmt.Printf("\nvirtual makespan: %.2f s\n", mpi.Makespan(stats))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "raytrace: %v\n", err)
	os.Exit(1)
}

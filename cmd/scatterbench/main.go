// Command scatterbench regenerates the paper's tables and figures.
//
// Usage:
//
//	scatterbench -exp all            # run every experiment
//	scatterbench -exp fig3           # one experiment
//	scatterbench -list               # list experiment IDs
//	scatterbench -exp all -md out.md # also write a Markdown summary
//	scatterbench -recovery BENCH_recovery.json
//	                                 # recovery benchmark only: write the
//	                                 # failover-overhead JSON and exit
//	scatterbench -solver BENCH_solver.json
//	                                 # solver benchmark only: write the
//	                                 # incremental-engine JSON (scaling
//	                                 # curve + coarse-refine band) and
//	                                 # exit; -workers, -granularity and
//	                                 # -items narrow the run
//	scatterbench -degraded BENCH_degraded.json
//	                                 # degraded-network benchmark only:
//	                                 # write the exact-vs-diffusion JSON
//	                                 # and exit
//	scatterbench -exp algocost -cpuprofile cpu.out -memprofile mem.out
//	                                 # profile any run with runtime/pprof
//
// Experiment IDs: table1, fig1, fig2, fig3, fig4, algocost, quality,
// ordering, bound, root, solver. Note that algocost times the exact
// dynamic program at the paper's full scale (817,101 items) and takes
// about a minute, and that -solver runs the same DP several times at
// that scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiment"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment ID to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		md         = flag.String("md", "", "also write a Markdown summary to this file")
		svgDir     = flag.String("svg", "", "write figure SVGs into this directory")
		recovery   = flag.String("recovery", "", "run only the recovery benchmark and write its JSON to this file")
		solver     = flag.String("solver", "", "run only the solver benchmark and write its JSON to this file")
		workers    = flag.Int("workers", 0, "with -solver: fix the scaling curve to this pool size (0 = sweep 1,2,4,8,GOMAXPROCS)")
		gran       = flag.Int("granularity", 0, "with -solver: coarse grid step (0 = default)")
		items      = flag.Int("items", 0, "with -solver: scatter size (0 = the paper's 817,101)")
		serveBench = flag.String("serve", "", "run only the daemon load benchmark and write its JSON to this file")
		degraded   = flag.String("degraded", "", "run only the degraded-network benchmark and write its JSON to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "scatterbench: cpuprofile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "scatterbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "scatterbench: memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *recovery != "" {
		buf, err := experiment.RecoveryJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: recovery: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*recovery, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", *recovery, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *recovery)
		return
	}

	if *degraded != "" {
		buf, err := experiment.DegradedJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: degraded: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*degraded, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", *degraded, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *degraded)
		return
	}

	if *serveBench != "" {
		buf, err := experiment.ServeJSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: serve: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*serveBench, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", *serveBench, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *serveBench)
		return
	}

	if *solver != "" {
		buf, err := experiment.SolverJSON(experiment.SolverOptions{
			Items:       *items,
			Workers:     *workers,
			Granularity: *gran,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: solver: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*solver, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", *solver, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *solver)
		return
	}

	var reports []experiment.Report
	if *exp == "all" {
		reports = experiment.RunAll()
	} else {
		runner, ok := experiment.Get(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "scatterbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		rep, err := runner()
		if err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: %s: %v\n", *exp, err)
			os.Exit(1)
		}
		reports = []experiment.Report{rep}
	}

	for _, rep := range reports {
		fmt.Println(rep.String())
	}

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: %v\n", err)
			os.Exit(1)
		}
		for _, rep := range reports {
			if rep.SVG == "" {
				continue
			}
			path := filepath.Join(*svgDir, rep.ID+".svg")
			if err := os.WriteFile(path, []byte(rep.SVG), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", path, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}

	if *md != "" {
		if err := os.WriteFile(*md, []byte(experiment.Markdown(reports)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "scatterbench: write %s: %v\n", *md, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *md)
	}
}

// Scatterlint runs this repository's domain-invariant analyzers
// (internal/lint) over Go packages. It works in two modes:
//
//   - as a vet tool, speaking the unitchecker protocol:
//     go vet -vettool=$(pwd)/bin/scatterlint ./...
//   - standalone, loading packages itself via `go list -export`:
//     scatterlint ./...
//
// Both modes honor //scatterlint:ignore <analyzer> <reason> directives
// and exit nonzero when findings remain.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scatterlint: ")

	jsonOut := flag.Bool("json", false, "emit JSON output")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for go vet)")
	flag.Int("c", -1, "display offending line with this many lines of context (ignored)")
	flag.Var(versionFlag{}, "V", "print version and exit (for go vet)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `scatterlint enforces the simulator's MPI and cost-model invariants.

Usage:
  scatterlint [packages]          # standalone, defaults to ./...
  go vet -vettool=scatterlint ... # as a vet tool
  scatterlint help                # list analyzers

`)
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		printFlagDefs()
		return
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	// go vet invokes the tool with a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := lint.RunUnit(args[0], lint.All(), *jsonOut, os.Stdout, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	}

	os.Exit(standalone(args, *jsonOut))
}

// standalone loads the requested packages (./... by default) and runs
// the suite, printing findings to stderr. Exit code 0 means clean, 1
// means findings.
func standalone(patterns []string, jsonOut bool) int {
	loader := lint.NewLoader(".")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, lint.Format(pkg.Fset, d))
			exit = 1
		}
	}
	_ = jsonOut // standalone mode prints plain text; JSON is for go vet
	return exit
}

// printFlagDefs describes the supported flags to go vet, which queries
// them with `scatterlint -flags` before deciding what it may pass.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol go vet uses to fold the
// tool's identity into its build cache key: the output must be
// "<name> version devel ... buildID=<hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Scatterlint runs this repository's domain-invariant analyzers
// (internal/lint) over Go packages. It works in two modes:
//
//   - as a vet tool, speaking the unitchecker protocol:
//     go vet -vettool=$(pwd)/bin/scatterlint ./...
//   - standalone, loading packages itself via `go list -export`:
//     scatterlint ./...
//
// Standalone mode covers test files (like go vet) and adds machine
// output: -json (findings array), -sarif (SARIF 2.1.0 for
// code-scanning upload), -baseline/-writebaseline (accepted-findings
// file), and -ignoreaudit (report stale //scatterlint:ignore
// directives that no longer suppress anything).
//
// Both modes honor //scatterlint:ignore <analyzer> <reason> directives
// and exit nonzero when findings remain.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scatterlint: ")

	jsonOut := flag.Bool("json", false, "emit JSON output")
	sarifOut := flag.Bool("sarif", false, "emit SARIF 2.1.0 to stdout (standalone mode)")
	baseline := flag.String("baseline", "", "drop findings accepted by this baseline file (standalone mode)")
	writeBaseline := flag.String("writebaseline", "", "write current findings to this baseline file and exit (standalone mode)")
	ignoreAudit := flag.Bool("ignoreaudit", false, "report stale scatterlint:ignore directives instead of findings (standalone mode)")
	tests := flag.Bool("tests", true, "include _test.go files in standalone mode (matches go vet coverage)")
	cacheDir := flag.String("cachedir", "bin/lintcache", "directory for the incremental analysis cache (standalone mode)")
	noCache := flag.Bool("nocache", false, "disable the incremental analysis cache (standalone mode)")
	printflags := flag.Bool("flags", false, "print analyzer flags in JSON (for go vet)")
	flag.Int("c", -1, "display offending line with this many lines of context (ignored)")
	flag.Var(versionFlag{}, "V", "print version and exit (for go vet)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `scatterlint enforces the simulator's MPI and cost-model invariants.

Usage:
  scatterlint [flags] [packages]  # standalone, defaults to ./...
  go vet -vettool=scatterlint ... # as a vet tool
  scatterlint help                # list analyzers

`)
		os.Exit(2)
	}
	flag.Parse()

	if *printflags {
		printFlagDefs()
		return
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	// go vet invokes the tool with a single JSON config file argument.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		code, err := lint.RunUnit(args[0], lint.All(), *jsonOut, os.Stdout, os.Stderr)
		if err != nil {
			log.Fatal(err)
		}
		os.Exit(code)
	}

	os.Exit(standalone(args, options{
		jsonOut:       *jsonOut,
		sarifOut:      *sarifOut,
		baseline:      *baseline,
		writeBaseline: *writeBaseline,
		ignoreAudit:   *ignoreAudit,
		tests:         *tests,
		cacheDir:      *cacheDir,
		noCache:       *noCache,
	}))
}

type options struct {
	jsonOut       bool
	sarifOut      bool
	baseline      string
	writeBaseline string
	ignoreAudit   bool
	tests         bool
	cacheDir      string
	noCache       bool
}

// standalone loads the requested packages (./... by default) and runs
// the suite. Exit code 0 means clean, 1 means findings (or stale
// directives under -ignoreaudit).
func standalone(patterns []string, opt options) int {
	loader := lint.NewLoader(".")
	loader.IncludeTests = opt.tests
	var cache *lint.Cache
	if !opt.noCache && opt.cacheDir != "" {
		cache = &lint.Cache{Dir: opt.cacheDir}
	}
	findings, audits, _, err := lint.RunCachedAnalysis(loader, cache, lint.All(), patterns...)
	if err != nil {
		log.Fatal(err)
	}

	var staleLines []string
	for _, a := range audits {
		switch {
		case len(a.Unknown) > 0:
			staleLines = append(staleLines, fmt.Sprintf(
				"%s:%d:%d: directive names unknown analyzer(s) %s: fix the name or delete the directive",
				a.File, a.Line, a.Col, strings.Join(a.Unknown, ", ")))
		case !a.Used:
			staleLines = append(staleLines, fmt.Sprintf(
				"%s:%d:%d: stale scatterlint:ignore [%s] (%q): it suppresses nothing; delete it",
				a.File, a.Line, a.Col, strings.Join(a.Analyzers, ","), a.Reason))
		}
	}

	if opt.ignoreAudit {
		for _, line := range staleLines {
			fmt.Fprintln(os.Stderr, line)
		}
		if len(staleLines) > 0 {
			return 1
		}
		fmt.Fprintln(os.Stderr, "scatterlint: all ignore directives suppress at least one finding")
		return 0
	}

	if opt.writeBaseline != "" {
		if err := lint.WriteBaselineFile(opt.writeBaseline, findings); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "scatterlint: wrote %d finding(s) to %s\n", len(findings), opt.writeBaseline)
		return 0
	}
	if opt.baseline != "" {
		b, err := lint.LoadBaseline(opt.baseline)
		if err != nil {
			log.Fatal(err)
		}
		findings = b.Filter(findings)
	}

	switch {
	case opt.sarifOut:
		if err := lint.WriteSARIF(os.Stdout, lint.All(), findings); err != nil {
			log.Fatal(err)
		}
	case opt.jsonOut:
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			log.Fatal(err)
		}
	default:
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// printFlagDefs describes the supported flags to go vet, which queries
// them with `scatterlint -flags` before deciding what it may pass.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		defs = append(defs, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(defs, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// versionFlag implements the -V=full protocol go vet uses to fold the
// tool's identity into its build cache key: the output must be
// "<name> version devel ... buildID=<hash>".
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() any         { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s (use -V=full)", s)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, string(h.Sum(nil)))
	os.Exit(0)
	return nil
}

// Command balance computes a load-balanced scatter distribution for a
// grid described by a JSON platform file.
//
// Usage:
//
//	balance -n 817101                        # the paper's Table 1 grid
//	balance -platform grid.json -n 1000000   # a custom grid
//	balance -n 817101 -order asc             # adversarial ordering
//	balance -n 817101 -solver dp             # force the exact DP
//	balance -n 817101 -gantt                 # render the timeline
//
// The platform JSON format is:
//
//	{
//	  "name": "my-grid",
//	  "root": "host0",
//	  "machines": [
//	    {"name": "host0", "cpus": 1, "beta": 0.0093, "alpha": 0},
//	    {"name": "host1", "cpus": 2, "beta": 0.0040, "alpha": 8.15e-5}
//	  ]
//	}
//
// where beta is the computation cost (seconds per item) and alpha the
// communication cost from the root (seconds per item).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/trace"
)

func main() {
	var (
		platformFile = flag.String("platform", "", "platform JSON file (default: the paper's Table 1 grid)")
		n            = flag.Int("n", 817101, "number of data items to distribute")
		order        = flag.String("order", "desc", "processor ordering: desc, asc, or listed")
		solver       = flag.String("solver", "heuristic", "solver: heuristic, linear, dp, exact, or uniform")
		gantt        = flag.Bool("gantt", false, "render an ASCII Gantt chart of the schedule")
		tsv          = flag.Bool("tsv", false, "emit the timeline as TSV instead of a table")
		rounds       = flag.Int("rounds", 1, "multi-installment rounds (affine costs; 1 = plain scatter)")
	)
	flag.Parse()

	p := platform.Table1()
	if *platformFile != "" {
		data, err := os.ReadFile(*platformFile)
		if err != nil {
			fatal(err)
		}
		p, err = platform.Parse(data)
		if err != nil {
			fatal(err)
		}
	}

	var ordering platform.Ordering
	switch *order {
	case "desc":
		ordering = platform.OrderDescendingBandwidth
	case "asc":
		ordering = platform.OrderAscendingBandwidth
	case "listed":
		ordering = platform.OrderAsListed
	default:
		fatal(fmt.Errorf("unknown ordering %q", *order))
	}
	procs, err := p.ProcessorsOrdered(ordering)
	if err != nil {
		fatal(err)
	}

	var solve core.Solver
	switch *solver {
	case "heuristic":
		solve = core.Heuristic
	case "linear":
		solve = core.SolveLinear
	case "dp":
		solve = core.Algorithm2
	case "exact":
		solve = core.Algorithm1
	case "uniform":
		solve = func(procs []core.Processor, n int) (core.Result, error) {
			dist := core.Uniform(len(procs), n)
			return core.Result{Distribution: dist, Makespan: core.Makespan(procs, dist)}, nil
		}
	default:
		fatal(fmt.Errorf("unknown solver %q", *solver))
	}

	if *rounds > 1 {
		plan, err := core.MultiRound(procs, *n, *rounds)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("platform: %s (%d processors), n = %d, order = %s, %d rounds\n\n",
			p.Name, len(procs), *n, *order, *rounds)
		for r, shares := range plan.Shares {
			fmt.Printf("round %d counts: %v\n", r+1, shares)
		}
		fmt.Printf("totals:         %v\n", plan.Totals)
		fmt.Printf("\nmakespan %.2f s (single round: ", plan.Makespan)
		if one, err := core.MultiRound(procs, *n, 1); err == nil {
			fmt.Printf("%.2f s)\n", one.Makespan)
		} else {
			fmt.Printf("unavailable)\n")
		}
		return
	}

	res, err := solve(procs, *n)
	if err != nil {
		fatal(err)
	}
	tl, err := schedule.Build(procs, res.Distribution)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("platform: %s (%d processors), n = %d, order = %s, solver = %s\n\n",
		p.Name, len(procs), *n, *order, *solver)
	switch {
	case *tsv:
		fmt.Print(trace.TSV(tl))
	case *gantt:
		fmt.Print(trace.Gantt(tl, 72))
	default:
		fmt.Print(trace.SummaryTable(tl))
	}
	fmt.Printf("\nmakespan %.2f s, imbalance %.2f%%, stair area %.1f s, utilization %.1f%%\n",
		tl.Makespan, 100*tl.Imbalance(), tl.StairArea(), 100*tl.Utilization())
	fmt.Printf("scatterv counts: %v\n", res.Distribution)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "balance: %v\n", err)
	os.Exit(1)
}

// Command scattervize is the paper's proposed source-transformation
// tool (Section 1: the scatter replacement "can easily be automated in
// a software tool"): it rewrites uniform mpi.Scatter calls into
// load-balanced mpi.Scatterv calls parameterized by
// mpi.BalancedCounts, which computes the distribution from the
// runtime's cost model at execution time.
//
// Usage:
//
//	scattervize file.go ...      # print transformed sources to stdout
//	scattervize -w file.go ...   # rewrite the files in place
//	scattervize -l file.go ...   # only list files that would change
//
// The rewrite is a pure expression substitution:
//
//	buf, err := mpi.Scatter(c, data, n/c.Size())
//
// becomes
//
//	buf, err := mpi.Scatterv(c, data, mpi.BalancedCounts(c, (n/c.Size())*c.Size()))
//
// leaving all control flow untouched.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/transform"
)

func main() {
	var (
		write = flag.Bool("w", false, "write results back to the source files")
		list  = flag.Bool("l", false, "list files whose Scatter calls would be rewritten")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: scattervize [-w|-l] file.go ...")
		os.Exit(2)
	}

	exit := 0
	for _, filename := range flag.Args() {
		src, err := os.ReadFile(filename)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scattervize: %v\n", err)
			exit = 1
			continue
		}
		res, err := transform.Rewrite(filename, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scattervize: %v\n", err)
			exit = 1
			continue
		}
		if res.Rewrites == 0 {
			if !*list && !*write {
				os.Stdout.Write(res.Source)
			}
			continue
		}
		if err := transform.RewriteCheck(filename, res.Source); err != nil {
			fmt.Fprintf(os.Stderr, "scattervize: %s: %v\n", filename, err)
			exit = 1
			continue
		}
		for _, pos := range res.Positions {
			fmt.Fprintf(os.Stderr, "%s: rewrote Scatter -> Scatterv\n", pos)
		}
		switch {
		case *list:
			fmt.Println(filename)
		case *write:
			if err := os.WriteFile(filename, res.Source, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "scattervize: %v\n", err)
				exit = 1
			}
		default:
			os.Stdout.Write(res.Source)
		}
	}
	os.Exit(exit)
}

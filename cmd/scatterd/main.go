// Command scatterd is the crash-safe scatter-planning daemon: a
// long-lived HTTP service around the incremental solver engine with
// admission control, a durable write-ahead plan store, and graceful
// drain on SIGTERM.
//
//	scatterd -addr :9444 -wal plans.wal
//
// Endpoints:
//
//	POST /v1/plan   {"platform": {...}, "items": N}  -> distribution
//	GET  /healthz   liveness (503 while draining)
//	GET  /statsz    engine + admission counters
//
// On startup the daemon replays the WAL, logging how many plans it
// recovered and whether a torn tail was truncated; on SIGINT/SIGTERM
// it drains in-flight solves, compacts the WAL, and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":9444", "listen address")
		walPath  = flag.String("wal", "plans.wal", "durable plan store path (empty disables persistence)")
		queue    = flag.Int("queue", 64, "admission queue depth")
		workers  = flag.Int("workers", 4, "solver worker pool size")
		cache    = flag.Int("cache", 0, "engine plan-cache capacity (0 = default)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "default per-request solve deadline (0 = none)")
		maxT     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested deadlines")
		maxItems = flag.Int("max-items", 10_000_000, "largest admissible item count")
		solveW   = flag.Int("solve-workers", 0, "DP row-pool workers per cold solve (0 = GOMAXPROCS)")
		policyS  = flag.String("solve-policy", "exact", "cold-solve policy: exact, coarse-refine, or coarse-only")
		gran     = flag.Int("granularity", 0, "coarse grid step for coarse policies (0 = default)")
	)
	flag.Parse()
	policy, err := core.ParsePolicy(*policyS)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scatterd:", err)
		os.Exit(2)
	}
	eng := core.NewEngineConfig(core.EngineConfig{
		Capacity:    *cache,
		Workers:     *solveW,
		Policy:      policy,
		Granularity: *gran,
	})
	if err := run(*addr, *walPath, *queue, *workers, eng, *timeout, *maxT, *maxItems); err != nil {
		fmt.Fprintln(os.Stderr, "scatterd:", err)
		os.Exit(1)
	}
}

func run(addr, walPath string, queue, workers int, eng *core.Engine, timeout, maxT time.Duration, maxItems int) error {
	logger := log.New(os.Stderr, "scatterd: ", log.LstdFlags)

	var st *store.Store
	if walPath != "" {
		var info store.RecoveryInfo
		var err error
		st, info, err = store.Open(walPath)
		if err != nil {
			return fmt.Errorf("open plan store %s: %w", walPath, err)
		}
		defer st.Close()
		switch {
		case info.Reset:
			logger.Printf("plan store %s: unreadable header, reset empty", walPath)
		case info.TornBytes > 0:
			logger.Printf("plan store %s: recovered %d plans, truncated %d torn bytes", walPath, info.Entries, info.TornBytes)
		default:
			logger.Printf("plan store %s: recovered %d plans cleanly", walPath, info.Entries)
		}
	}

	srv := serve.NewServer(serve.Config{
		Engine:         eng,
		Store:          st,
		QueueDepth:     queue,
		Workers:        workers,
		DefaultTimeout: timeout,
		MaxTimeout:     maxT,
		MaxItems:       maxItems,
	})

	httpSrv := &http.Server{
		Addr:              addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      maxT + 30*time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s (queue %d, workers %d)", addr, queue, workers)

	select {
	case err := <-errc:
		return fmt.Errorf("listen on %s: %w", addr, err)
	case <-ctx.Done():
	}
	logger.Printf("signal received; draining")

	// Order matters: Drain first so in-flight handlers get answers and
	// no new solves are admitted, then Shutdown to let those handlers
	// flush their responses, then compact and close the WAL.
	srv.Drain()
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if st != nil {
		if err := st.Compact(); err != nil {
			logger.Printf("compact plan store: %v", err)
		}
		if err := st.Close(); err != nil {
			logger.Printf("close plan store: %v", err)
		}
	}
	stats := srv.Stats()
	logger.Printf("drained: %d planned, %d store hits, %d shed", stats.Planned, stats.StoreHits, stats.ShedQueueFull+stats.ShedExpired+stats.ShedDraining)
	return nil
}

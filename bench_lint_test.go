package scatter

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/lint"
)

// lintBenchStage is one row of BENCH_lint.json.
type lintBenchStage struct {
	Name     string  `json:"name"`
	Millis   float64 `json:"ms"`
	Packages int     `json:"packages"`
	Findings int     `json:"findings"`
}

// BenchmarkLint measures scatterlint's runtime over this module: the
// loader (go list -export plus type-checking), the five original
// syntactic analyzers, the three dataflow analyzers (CFG + reaching
// definitions + summary fixpoint), and the full suite over the
// generated synthetic fixture (internal/lint/testdata/bench). The tree
// is clean, so every findings count must be zero and the benchmark
// measures pure analysis cost. Results go to BENCH_lint.json;
// regenerate with `make bench-lint`.
func BenchmarkLint(b *testing.B) {
	legacy := []*lint.Analyzer{
		lint.MPIErrCheck, lint.CollectiveOrder, lint.SimClock,
		lint.CostInvariant, lint.MutexChan,
	}
	dataflow := []*lint.Analyzer{lint.PoolAlias, lint.DetOrder, lint.LedgerOrder}

	run := func(b *testing.B, pkgs []*lint.Package, analyzers []*lint.Analyzer) (float64, int) {
		b.Helper()
		var ms float64
		findings := 0
		for i := 0; i < b.N; i++ {
			findings = 0
			start := time.Now()
			for _, pkg := range pkgs {
				diags, err := lint.RunAnalyzers(pkg, analyzers)
				if err != nil {
					b.Fatal(err)
				}
				findings += len(diags)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			b.ReportMetric(ms, "ms")
		}
		return ms, findings
	}

	var stages []lintBenchStage
	var pkgs []*lint.Package

	b.Run("load", func(b *testing.B) {
		var ms float64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			loader := lint.NewLoader(".")
			var err error
			pkgs, err = loader.Load("./...")
			if err != nil {
				b.Fatal(err)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			b.ReportMetric(ms, "ms")
		}
		stages = append(stages, lintBenchStage{Name: "load", Millis: ms, Packages: len(pkgs)})
	})
	if pkgs == nil {
		b.Fatal("load stage did not run")
	}

	b.Run("legacy", func(b *testing.B) {
		ms, findings := run(b, pkgs, legacy)
		stages = append(stages, lintBenchStage{Name: "legacy", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("dataflow", func(b *testing.B) {
		ms, findings := run(b, pkgs, dataflow)
		stages = append(stages, lintBenchStage{Name: "dataflow", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("synthetic", func(b *testing.B) {
		loader := lint.NewLoader(".")
		pkg, err := loader.LoadDir("internal/lint/testdata/bench", "repro/internal/chaos/benchfixture")
		if err != nil {
			b.Fatal(err)
		}
		ms, findings := run(b, []*lint.Package{pkg}, lint.All())
		stages = append(stages, lintBenchStage{Name: "synthetic", Millis: ms, Packages: 1, Findings: findings})
	})

	for _, s := range stages {
		if s.Findings != 0 {
			b.Fatalf("stage %s reported %d findings on a tree that must be clean", s.Name, s.Findings)
		}
	}
	if len(stages) == 4 {
		doc := struct {
			Benchmark string           `json:"benchmark"`
			Stages    []lintBenchStage `json:"stages"`
		}{"Lint", stages}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_lint.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

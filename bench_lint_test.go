package scatter

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/lint"
)

// lintBenchStage is one row of BENCH_lint.json.
type lintBenchStage struct {
	Name     string  `json:"name"`
	Millis   float64 `json:"ms"`
	Packages int     `json:"packages"`
	Findings int     `json:"findings"`
}

// copyModule copies the module's go.mod and .go files into dst so the
// cache stages can edit sources without touching the live tree.
func copyModule(b *testing.B, dst string) {
	b.Helper()
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "bin" {
				return filepath.SkipDir
			}
			return nil
		}
		if path != "go.mod" && !strings.HasSuffix(path, ".go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		full := filepath.Join(dst, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		return os.WriteFile(full, data, 0o644)
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLint measures scatterlint's runtime over this module: the
// loader (go list -export plus type-checking), the five original
// syntactic analyzers, the three dataflow analyzers (CFG + reaching
// definitions + summary fixpoint), the three SSA analyzers (phi
// placement + interval/nilness propagation + happens-before proofs),
// the three lock-set analyzers (guarded-field dataflow + lock-order
// graph + release discipline), the full suite over the generated
// synthetic fixture (internal/lint/testdata/bench), and the
// incremental cache cold vs. warm after a one-package edit. The tree
// is clean, so every findings count must be zero and the benchmark
// measures pure analysis cost. Results go to BENCH_lint.json;
// regenerate with `make bench-lint`.
func BenchmarkLint(b *testing.B) {
	legacy := []*lint.Analyzer{
		lint.MPIErrCheck, lint.CollectiveOrder, lint.SimClock,
		lint.CostInvariant, lint.MutexChan,
	}
	dataflow := []*lint.Analyzer{lint.PoolAlias, lint.DetOrder, lint.LedgerOrder}
	ssa := []*lint.Analyzer{lint.CollectiveDeadlock, lint.GoroLeak, lint.BandCheck}
	lockset := []*lint.Analyzer{lint.LockGuard, lint.LockOrder, lint.UnlockPath}

	run := func(b *testing.B, pkgs []*lint.Package, analyzers []*lint.Analyzer) (float64, int) {
		b.Helper()
		var ms float64
		findings := 0
		for i := 0; i < b.N; i++ {
			findings = 0
			start := time.Now()
			for _, pkg := range pkgs {
				diags, err := lint.RunAnalyzers(pkg, analyzers)
				if err != nil {
					b.Fatal(err)
				}
				findings += len(diags)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			b.ReportMetric(ms, "ms")
		}
		return ms, findings
	}

	var stages []lintBenchStage
	var pkgs []*lint.Package

	b.Run("load", func(b *testing.B) {
		var ms float64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			loader := lint.NewLoader(".")
			var err error
			pkgs, err = loader.Load("./...")
			if err != nil {
				b.Fatal(err)
			}
			ms = float64(time.Since(start).Microseconds()) / 1000
			b.ReportMetric(ms, "ms")
		}
		stages = append(stages, lintBenchStage{Name: "load", Millis: ms, Packages: len(pkgs)})
	})
	if pkgs == nil {
		b.Fatal("load stage did not run")
	}

	b.Run("legacy", func(b *testing.B) {
		ms, findings := run(b, pkgs, legacy)
		stages = append(stages, lintBenchStage{Name: "legacy", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("dataflow", func(b *testing.B) {
		ms, findings := run(b, pkgs, dataflow)
		stages = append(stages, lintBenchStage{Name: "dataflow", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("ssa", func(b *testing.B) {
		ms, findings := run(b, pkgs, ssa)
		stages = append(stages, lintBenchStage{Name: "ssa", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("lockset", func(b *testing.B) {
		ms, findings := run(b, pkgs, lockset)
		stages = append(stages, lintBenchStage{Name: "lockset", Millis: ms, Packages: len(pkgs), Findings: findings})
	})

	b.Run("synthetic", func(b *testing.B) {
		loader := lint.NewLoader(".")
		pkg, err := loader.LoadDir("internal/lint/testdata/bench", "repro/internal/chaos/benchfixture")
		if err != nil {
			b.Fatal(err)
		}
		ms, findings := run(b, []*lint.Package{pkg}, lint.All())
		stages = append(stages, lintBenchStage{Name: "synthetic", Millis: ms, Packages: 1, Findings: findings})
	})

	// The cache stages replay the edit-lint loop against a disposable
	// copy of the module: a cold run populates the cache, then one leaf
	// package is edited and the warm run re-analyzes only it.
	tmpMod := b.TempDir()
	copyModule(b, tmpMod)
	cacheDir := filepath.Join(tmpMod, "lintcache")
	cachedRun := func(b *testing.B) (float64, lint.CacheStats, int) {
		b.Helper()
		start := time.Now()
		l := lint.NewLoader(tmpMod)
		l.IncludeTests = true
		findings, _, stats, err := lint.RunCachedAnalysis(l, &lint.Cache{Dir: cacheDir}, lint.All(), "./...")
		if err != nil {
			b.Fatal(err)
		}
		return float64(time.Since(start).Microseconds()) / 1000, stats, len(findings)
	}

	b.Run("cache-cold", func(b *testing.B) {
		var ms float64
		var stats lint.CacheStats
		findings := 0
		for i := 0; i < b.N; i++ {
			if err := os.RemoveAll(cacheDir); err != nil {
				b.Fatal(err)
			}
			ms, stats, findings = cachedRun(b)
			b.ReportMetric(ms, "ms")
		}
		stages = append(stages, lintBenchStage{Name: "cache-cold", Millis: ms, Packages: stats.Units, Findings: findings})
	})

	b.Run("cache-warm-edit", func(b *testing.B) {
		leaf := filepath.Join(tmpMod, "examples", "quickstart", "main.go")
		var ms float64
		var stats lint.CacheStats
		findings := 0
		for i := 0; i < b.N; i++ {
			f, err := os.OpenFile(leaf, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.WriteString("\n// benchmark edit\n"); err != nil {
				b.Fatal(err)
			}
			f.Close()
			ms, stats, findings = cachedRun(b)
			b.ReportMetric(ms, "ms")
			if stats.Misses != 1 {
				b.Fatalf("one-leaf edit re-analyzed %d units, want 1", stats.Misses)
			}
		}
		stages = append(stages, lintBenchStage{Name: "cache-warm-edit", Millis: ms, Packages: stats.Misses, Findings: findings})
	})

	for _, s := range stages {
		if s.Findings != 0 {
			b.Fatalf("stage %s reported %d findings on a tree that must be clean", s.Name, s.Findings)
		}
	}
	if len(stages) == 8 {
		var cold, warm float64
		for _, s := range stages {
			switch s.Name {
			case "cache-cold":
				cold = s.Millis
			case "cache-warm-edit":
				warm = s.Millis
			}
		}
		speedup := 0.0
		if warm > 0 {
			speedup = cold / warm
		}
		doc := struct {
			Benchmark   string           `json:"benchmark"`
			Stages      []lintBenchStage `json:"stages"`
			WarmSpeedup float64          `json:"warm_speedup_x"`
		}{"Lint", stages, speedup}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_lint.json", append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

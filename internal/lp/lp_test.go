package lp

import (
	"math/big"
	"math/rand"
	"testing"
)

func r(a, b int64) *big.Rat { return big.NewRat(a, b) }
func ri(a int64) *big.Rat   { return new(big.Rat).SetInt64(a) }

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSolveSimpleMaximization(t *testing.T) {
	// max x0 + x1  s.t.  x0 <= 4, x1 <= 3, x0 + x1 <= 5
	// encoded as min -x0 - x1; optimum 5 at e.g. (4,1) or (2,3).
	p := &Problem{
		NumVars:   2,
		Objective: []*big.Rat{ri(-1), ri(-1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1)}, Rel: LE, RHS: ri(4)},
			{Coeffs: []*big.Rat{nil, ri(1)}, Rel: LE, RHS: ri(3)},
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: LE, RHS: ri(5)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(ri(-5)) != 0 {
		t.Errorf("objective = %s, want -5", sol.Objective.RatString())
	}
	sum := new(big.Rat).Add(sol.X[0], sol.X[1])
	if sum.Cmp(ri(5)) != 0 {
		t.Errorf("x0+x1 = %s, want 5", sum.RatString())
	}
}

func TestSolveEqualityConstraint(t *testing.T) {
	// min 2*x0 + 3*x1  s.t.  x0 + x1 = 10  -> all on x0: (10, 0), obj 20.
	p := &Problem{
		NumVars:   2,
		Objective: []*big.Rat{ri(2), ri(3)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: EQ, RHS: ri(10)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(ri(20)) != 0 {
		t.Errorf("objective = %s, want 20", sol.Objective.RatString())
	}
	if sol.X[0].Cmp(ri(10)) != 0 || sol.X[1].Sign() != 0 {
		t.Errorf("x = (%s, %s), want (10, 0)", sol.X[0].RatString(), sol.X[1].RatString())
	}
}

func TestSolveGEConstraints(t *testing.T) {
	// min x0 + 2*x1  s.t.  x0 + x1 >= 4, x1 >= 1 -> (3, 1), obj 5.
	p := &Problem{
		NumVars:   2,
		Objective: []*big.Rat{ri(1), ri(2)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: GE, RHS: ri(4)},
			{Coeffs: []*big.Rat{nil, ri(1)}, Rel: GE, RHS: ri(1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(ri(5)) != 0 {
		t.Errorf("objective = %s, want 5", sol.Objective.RatString())
	}
}

func TestSolveNegativeRHSNormalization(t *testing.T) {
	// min x0 s.t. -x0 <= -3  (i.e. x0 >= 3) -> 3.
	p := &Problem{
		NumVars:   1,
		Objective: []*big.Rat{ri(1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(-1)}, Rel: LE, RHS: ri(-3)},
		},
	}
	sol := solveOK(t, p)
	if sol.X[0].Cmp(ri(3)) != 0 {
		t.Errorf("x0 = %s, want 3", sol.X[0].RatString())
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x0 <= 1 and x0 >= 2 cannot hold.
	p := &Problem{
		NumVars:   1,
		Objective: []*big.Rat{ri(1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1)}, Rel: LE, RHS: ri(1)},
			{Coeffs: []*big.Rat{ri(1)}, Rel: GE, RHS: ri(2)},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x0 with no upper bound on x0.
	p := &Problem{
		NumVars:   1,
		Objective: []*big.Rat{ri(-1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1)}, Rel: GE, RHS: ri(0)},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveExactRationals(t *testing.T) {
	// min x0 s.t. 3*x0 >= 1 -> exactly 1/3, which floats cannot hold.
	p := &Problem{
		NumVars:   1,
		Objective: []*big.Rat{ri(1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(3)}, Rel: GE, RHS: ri(1)},
		},
	}
	sol := solveOK(t, p)
	if sol.X[0].Cmp(r(1, 3)) != 0 {
		t.Errorf("x0 = %s, want exactly 1/3", sol.X[0].RatString())
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	// min -0.75*x0 + 150*x1 - 0.02*x2 + 6*x3 (Beale's cycling example)
	p := &Problem{
		NumVars: 4,
		Objective: []*big.Rat{
			r(-3, 4), ri(150), r(-1, 50), ri(6),
		},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{r(1, 4), ri(-60), r(-1, 25), ri(9)}, Rel: LE, RHS: ri(0)},
			{Coeffs: []*big.Rat{r(1, 2), ri(-90), r(-1, 50), ri(3)}, Rel: LE, RHS: ri(0)},
			{Coeffs: []*big.Rat{nil, nil, ri(1)}, Rel: LE, RHS: ri(1)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(r(-1, 20)) != 0 {
		t.Errorf("objective = %s, want -1/20", sol.Objective.RatString())
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the
	// solver must drive it out or tolerate the redundant row.
	p := &Problem{
		NumVars:   2,
		Objective: []*big.Rat{ri(1), ri(1)},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: EQ, RHS: ri(4)},
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: EQ, RHS: ri(4)},
			{Coeffs: []*big.Rat{ri(2), ri(2)}, Rel: EQ, RHS: ri(8)},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective.Cmp(ri(4)) != 0 {
		t.Errorf("objective = %s, want 4", sol.Objective.RatString())
	}
}

func TestSolveRejectsBadProblems(t *testing.T) {
	if _, err := Solve(&Problem{NumVars: 0}); err == nil {
		t.Error("zero-variable problem accepted")
	}
	p := &Problem{
		NumVars:     1,
		Constraints: []Constraint{{Coeffs: []*big.Rat{ri(1), ri(2)}, Rel: LE, RHS: ri(1)}},
	}
	if _, err := Solve(p); err == nil {
		t.Error("constraint wider than the variable count accepted")
	}
	p2 := &Problem{
		NumVars:     1,
		Constraints: []Constraint{{Coeffs: []*big.Rat{ri(1)}, Rel: LE}},
	}
	if _, err := Solve(p2); err == nil {
		t.Error("nil RHS accepted")
	}
}

func TestSolveZeroObjective(t *testing.T) {
	// Pure feasibility problem.
	p := &Problem{
		NumVars: 2,
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1), ri(1)}, Rel: EQ, RHS: ri(7)},
		},
	}
	sol := solveOK(t, p)
	sum := new(big.Rat).Add(sol.X[0], sol.X[1])
	if sum.Cmp(ri(7)) != 0 {
		t.Errorf("x0+x1 = %s, want 7", sum.RatString())
	}
	if sol.Objective.Sign() != 0 {
		t.Errorf("objective = %s, want 0", sol.Objective.RatString())
	}
}

// feasible reports whether x satisfies every constraint of p exactly.
func feasible(p *Problem, x []*big.Rat) bool {
	for _, v := range x {
		if v.Sign() < 0 {
			return false
		}
	}
	for _, c := range p.Constraints {
		lhs := new(big.Rat)
		for j, coef := range c.Coeffs {
			if coef == nil {
				continue
			}
			lhs.Add(lhs, new(big.Rat).Mul(coef, x[j]))
		}
		switch c.Rel {
		case LE:
			if lhs.Cmp(c.RHS) > 0 {
				return false
			}
		case GE:
			if lhs.Cmp(c.RHS) < 0 {
				return false
			}
		case EQ:
			if lhs.Cmp(c.RHS) != 0 {
				return false
			}
		}
	}
	return true
}

// TestSolveRandomFeasibilityAndOptimality generates random bounded LPs,
// checks the returned point is feasible, and checks no random feasible
// point beats it.
func TestSolveRandomFeasibilityAndOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nv := 1 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		p := &Problem{NumVars: nv}
		p.Objective = make([]*big.Rat, nv)
		for j := range p.Objective {
			p.Objective[j] = ri(int64(rng.Intn(11) - 5))
		}
		for i := 0; i < nc; i++ {
			c := Constraint{Rel: LE, RHS: ri(int64(1 + rng.Intn(20)))}
			c.Coeffs = make([]*big.Rat, nv)
			for j := range c.Coeffs {
				c.Coeffs[j] = ri(int64(rng.Intn(5)))
			}
			p.Constraints = append(p.Constraints, c)
		}
		// Box constraints keep the problem bounded.
		for j := 0; j < nv; j++ {
			c := Constraint{Rel: LE, RHS: ri(10), Coeffs: make([]*big.Rat, nv)}
			c.Coeffs[j] = ri(1)
			p.Constraints = append(p.Constraints, c)
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v for a bounded feasible LP", trial, sol.Status)
		}
		if !feasible(p, sol.X) {
			t.Fatalf("trial %d: solution %v infeasible", trial, sol.X)
		}
		// Monte-Carlo optimality probe.
		for probe := 0; probe < 50; probe++ {
			x := make([]*big.Rat, nv)
			for j := range x {
				x[j] = r(int64(rng.Intn(100)), 10)
			}
			if !feasible(p, x) {
				continue
			}
			obj := new(big.Rat)
			for j := range x {
				obj.Add(obj, new(big.Rat).Mul(p.Objective[j], x[j]))
			}
			if obj.Cmp(sol.Objective) < 0 {
				t.Fatalf("trial %d: random point %v beats the optimum (%s < %s)",
					trial, x, obj.RatString(), sol.Objective.RatString())
			}
		}
	}
}

func TestProblemString(t *testing.T) {
	p := &Problem{
		NumVars:   2,
		Objective: []*big.Rat{ri(1), nil},
		Constraints: []Constraint{
			{Coeffs: []*big.Rat{ri(1), ri(2)}, Rel: LE, RHS: ri(3)},
			{Coeffs: []*big.Rat{nil, nil}, Rel: GE, RHS: ri(0)},
		},
	}
	s := p.String()
	for _, want := range []string{"minimize", "x0", "<= 3", ">= 0"} {
		if !contains(s, want) {
			t.Errorf("Problem.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestRelationString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("relation strings wrong")
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings wrong")
	}
}

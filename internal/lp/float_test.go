package lp

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

func solveFloatOK(t *testing.T, p *FloatProblem) *FloatSolution {
	t.Helper()
	sol, err := SolveFloat(p)
	if err != nil {
		t.Fatalf("SolveFloat: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSolveFloatSimple(t *testing.T) {
	// max x0+x1 s.t. x0<=4, x1<=3, x0+x1<=5 -> 5.
	p := &FloatProblem{
		NumVars:   2,
		Objective: []float64{-1, -1},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{1, 0}, Rel: LE, RHS: 4},
			{Coeffs: []float64{0, 1}, Rel: LE, RHS: 3},
			{Coeffs: []float64{1, 1}, Rel: LE, RHS: 5},
		},
	}
	sol := solveFloatOK(t, p)
	if math.Abs(sol.Objective+5) > 1e-9 {
		t.Errorf("objective = %g, want -5", sol.Objective)
	}
}

func TestSolveFloatEqualityAndGE(t *testing.T) {
	p := &FloatProblem{
		NumVars:   2,
		Objective: []float64{1, 2},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{1, 1}, Rel: GE, RHS: 4},
			{Coeffs: []float64{0, 1}, Rel: GE, RHS: 1},
		},
	}
	sol := solveFloatOK(t, p)
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Errorf("objective = %g, want 5", sol.Objective)
	}

	p2 := &FloatProblem{
		NumVars:   2,
		Objective: []float64{2, 3},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{1, 1}, Rel: EQ, RHS: 10},
		},
	}
	sol2 := solveFloatOK(t, p2)
	if math.Abs(sol2.Objective-20) > 1e-9 {
		t.Errorf("objective = %g, want 20", sol2.Objective)
	}
}

func TestSolveFloatInfeasibleAndUnbounded(t *testing.T) {
	inf := &FloatProblem{
		NumVars:   1,
		Objective: []float64{1},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{1}, Rel: LE, RHS: 1},
			{Coeffs: []float64{1}, Rel: GE, RHS: 2},
		},
	}
	sol, err := SolveFloat(inf)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}

	unb := &FloatProblem{
		NumVars:   1,
		Objective: []float64{-1},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{1}, Rel: GE, RHS: 0},
		},
	}
	sol, err = SolveFloat(unb)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveFloatValidation(t *testing.T) {
	if _, err := SolveFloat(&FloatProblem{NumVars: 0}); err == nil {
		t.Error("zero variables accepted")
	}
	bad := &FloatProblem{
		NumVars:     1,
		Constraints: []FloatConstraint{{Coeffs: []float64{1}, Rel: LE, RHS: math.NaN()}},
	}
	if _, err := SolveFloat(bad); err == nil {
		t.Error("NaN RHS accepted")
	}
	wide := &FloatProblem{
		NumVars:     1,
		Constraints: []FloatConstraint{{Coeffs: []float64{1, 2}, Rel: LE, RHS: 1}},
	}
	if _, err := SolveFloat(wide); err == nil {
		t.Error("wide constraint accepted")
	}
}

func TestSolveFloatDegenerateBeale(t *testing.T) {
	p := &FloatProblem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
		Constraints: []FloatConstraint{
			{Coeffs: []float64{0.25, -60, -0.04, 9}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0.5, -90, -0.02, 3}, Rel: LE, RHS: 0},
			{Coeffs: []float64{0, 0, 1, 0}, Rel: LE, RHS: 1},
		},
	}
	sol := solveFloatOK(t, p)
	if math.Abs(sol.Objective+0.05) > 1e-9 {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
}

// TestSolveFloatAgreesWithExact cross-validates the float solver
// against the exact rational solver on random bounded LPs.
func TestSolveFloatAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		nv := 1 + rng.Intn(5)
		nc := 1 + rng.Intn(5)
		fp := &FloatProblem{NumVars: nv, Objective: make([]float64, nv)}
		rp := &Problem{NumVars: nv, Objective: make([]*big.Rat, nv)}
		for j := 0; j < nv; j++ {
			c := int64(rng.Intn(11) - 5)
			fp.Objective[j] = float64(c)
			rp.Objective[j] = big.NewRat(c, 1)
		}
		addBoth := func(coeffs []int64, rel Relation, rhs int64) {
			fc := FloatConstraint{Rel: rel, RHS: float64(rhs), Coeffs: make([]float64, nv)}
			rc := Constraint{Rel: rel, RHS: big.NewRat(rhs, 1), Coeffs: make([]*big.Rat, nv)}
			for j, v := range coeffs {
				fc.Coeffs[j] = float64(v)
				rc.Coeffs[j] = big.NewRat(v, 1)
			}
			fp.Constraints = append(fp.Constraints, fc)
			rp.Constraints = append(rp.Constraints, rc)
		}
		for i := 0; i < nc; i++ {
			coeffs := make([]int64, nv)
			for j := range coeffs {
				coeffs[j] = int64(rng.Intn(5))
			}
			rels := []Relation{LE, GE, EQ}
			addBoth(coeffs, rels[rng.Intn(2)], int64(1+rng.Intn(20))) // LE or GE
		}
		for j := 0; j < nv; j++ {
			coeffs := make([]int64, nv)
			coeffs[j] = 1
			addBoth(coeffs, LE, 10)
		}
		exact, err := Solve(rp)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := SolveFloat(fp)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Status != approx.Status {
			t.Fatalf("trial %d: exact %v vs float %v", trial, exact.Status, approx.Status)
		}
		if exact.Status == Optimal {
			want, _ := exact.Objective.Float64()
			if math.Abs(approx.Objective-want) > 1e-6*(1+math.Abs(want)) {
				t.Errorf("trial %d: float objective %g, exact %g", trial, approx.Objective, want)
			}
		}
	}
}

func TestSolveFloatLargeScatterLP(t *testing.T) {
	// The multi-round shape: rounds*p share variables plus T. This
	// is the instance class that motivated the float path; it must
	// solve in well under a second.
	const p, rounds = 16, 8
	nv := rounds*p + 1
	tIdx := rounds * p
	alphas := []float64{1e-5, 1.12e-5, 1.7e-5, 2.1e-5, 2.1e-5, 3.53e-5, 3.53e-5, 3.53e-5,
		3.53e-5, 3.53e-5, 3.53e-5, 3.53e-5, 3.53e-5, 8.15e-5, 8.15e-5, 0}
	betas := []float64{0.004629, 0.009365, 0.004885, 0.016156, 0.016156, 0.009677, 0.009677,
		0.009677, 0.009677, 0.009677, 0.009677, 0.009677, 0.009677, 0.003976, 0.003976, 0.009288}
	prob := &FloatProblem{NumVars: nv, Objective: make([]float64, nv)}
	prob.Objective[tIdx] = 1
	eq := FloatConstraint{Rel: EQ, RHS: 817101, Coeffs: make([]float64, nv)}
	for v := 0; v < rounds*p; v++ {
		eq.Coeffs[v] = 1
	}
	prob.Constraints = append(prob.Constraints, eq)
	for r := 0; r < rounds; r++ {
		for i := 0; i < p; i++ {
			c := FloatConstraint{Rel: LE, Coeffs: make([]float64, nv)}
			for s := 0; s <= r; s++ {
				last := p
				if s == r {
					last = i + 1
				}
				for j := 0; j < last; j++ {
					c.Coeffs[s*p+j] += alphas[j]
				}
			}
			for s := r; s < rounds; s++ {
				c.Coeffs[s*p+i] += betas[i]
			}
			c.Coeffs[tIdx] = -1
			prob.Constraints = append(prob.Constraints, c)
		}
	}
	sol := solveFloatOK(t, prob)
	if sol.Objective < 300 || sol.Objective > 450 {
		t.Errorf("multi-round LP optimum = %g s, expected near the single-round 404 s", sol.Objective)
	}
	total := 0.0
	for v := 0; v < rounds*p; v++ {
		if sol.X[v] < -1e-6 {
			t.Fatalf("negative share %g", sol.X[v])
		}
		total += sol.X[v]
	}
	if math.Abs(total-817101) > 1e-3 {
		t.Errorf("shares sum to %g", total)
	}
}

// Package lp implements an exact linear-programming solver over
// arbitrary-precision rationals (math/big.Rat).
//
// The paper's guaranteed heuristic (Section 3.3) codes the scatter
// load-balancing problem as the linear program (Eq. 3)
//
//	minimize    T
//	subject to  ni >= 0                              for i in [1,p]
//	            sum_i ni = n
//	            T >= sum_{j<=i} Tcomm(j,nj) + Tcomp(i,ni)  for i in [1,p]
//
// and solves it in rationals ("we can solve the system in rational to
// obtain an optimal rational solution"), using the PIP/pipLib parametric
// integer programming library. We replace pipLib with a from-scratch
// two-phase primal simplex using Bland's anti-cycling rule and exact
// big.Rat pivoting; for these small dense systems (tens of variables)
// exact simplex is instantaneous and returns the same optimal vertex
// solutions.
package lp

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Relation is the sense of a linear constraint.
type Relation int

const (
	// LE is "less than or equal" (<=).
	LE Relation = iota
	// GE is "greater than or equal" (>=).
	GE
	// EQ is equality (=).
	EQ
)

// String returns the usual mathematical symbol for the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("rel(%d)", int(r))
	}
}

// Constraint is one linear constraint sum_j Coeffs[j]*x_j  Rel  RHS.
// Coeffs may be shorter than the number of variables; missing entries
// are zero.
type Constraint struct {
	// Coeffs are the per-variable coefficients.
	Coeffs []*big.Rat
	// Rel is the constraint sense.
	Rel Relation
	// RHS is the right-hand side.
	RHS *big.Rat
}

// Problem is a linear program in the form
//
//	minimize   sum_j Objective[j] * x_j
//	subject to Constraints, and x_j >= 0 for all j.
//
// All variables are implicitly non-negative, which matches the paper's
// formulation (shares ni >= 0, and the makespan T is non-negative
// because the cost functions are).
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Objective holds the cost coefficients (len NumVars; missing
	// entries are zero).
	Objective []*big.Rat
	// Constraints are the linear constraints.
	Constraints []Constraint
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

// String returns the lowercase name of the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	// Status reports whether X and Objective are meaningful.
	Status Status
	// X is the optimal assignment (len NumVars), exact rationals.
	X []*big.Rat
	// Objective is the optimal objective value.
	Objective *big.Rat
	// Pivots counts simplex pivots across both phases (a cheap
	// complexity probe for tests and benchmarks).
	Pivots int
}

// Solve runs the two-phase simplex method and returns the exact optimal
// solution, or a Solution with a non-Optimal status. The input problem
// is not modified.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars <= 0 {
		return nil, errors.New("lp: problem has no variables")
	}
	if len(p.Objective) > p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), p.NumVars)
		}
		if c.RHS == nil {
			return nil, fmt.Errorf("lp: constraint %d has nil RHS", i)
		}
	}

	t := newTableau(p)
	sol := &Solution{}

	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.installPhase1Objective()
		if err := t.iterate(&sol.Pivots); err != nil {
			return nil, err
		}
		if t.objValue().Sign() != 0 {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := t.driveOutArtificials(&sol.Pivots); err != nil {
			return nil, err
		}
	}

	// Phase 2: minimize the real objective.
	t.installPhase2Objective(p)
	if err := t.iterate(&sol.Pivots); err != nil {
		if errors.Is(err, errUnbounded) {
			sol.Status = Unbounded
			return sol, nil
		}
		return nil, err
	}

	sol.Status = Optimal
	sol.X = t.extract(p.NumVars)
	sol.Objective = new(big.Rat)
	for j := 0; j < len(p.Objective); j++ {
		if p.Objective[j] == nil {
			continue
		}
		term := new(big.Rat).Mul(p.Objective[j], sol.X[j])
		sol.Objective.Add(sol.Objective, term)
	}
	return sol, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is a dense simplex tableau in canonical form. Column layout:
// [structural | slack/surplus | artificial]. Row m is not stored; the
// objective row lives in obj / objConst.
type tableau struct {
	rows          int        // number of constraints
	cols          int        // total number of variables
	numStructural int        // structural variable count
	numArtificial int        // artificial variable count
	a             []*big.Rat // rows*cols coefficient matrix
	b             []*big.Rat // rows right-hand sides, kept >= 0
	obj           []*big.Rat // cols objective coefficients (reduced costs)
	objC          *big.Rat   // objective constant (negated objective value)
	basis         []int      // per-row basic variable index
	artificialLo  int        // first artificial column
	banArtificial bool       // phase 2: artificial columns may not enter
}

func rz() *big.Rat { return new(big.Rat) }

func (t *tableau) at(i, j int) *big.Rat { return t.a[i*t.cols+j] }

func newTableau(p *Problem) *tableau {
	rows := len(p.Constraints)
	// Count extra columns.
	slack := 0
	artificial := 0
	for _, c := range p.Constraints {
		neg := c.RHS.Sign() < 0
		rel := c.Rel
		if neg {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			slack++ // slack enters the basis directly
		case GE:
			slack++ // surplus
			artificial++
		case EQ:
			artificial++
		}
	}
	cols := p.NumVars + slack + artificial
	t := &tableau{
		rows:          rows,
		cols:          cols,
		numStructural: p.NumVars,
		numArtificial: artificial,
		a:             make([]*big.Rat, rows*cols),
		b:             make([]*big.Rat, rows),
		obj:           make([]*big.Rat, cols),
		objC:          rz(),
		basis:         make([]int, rows),
		artificialLo:  cols - artificial,
	}
	for i := range t.a {
		t.a[i] = rz()
	}
	for j := range t.obj {
		t.obj[j] = rz()
	}

	slackCol := p.NumVars
	artCol := t.artificialLo
	for i, c := range p.Constraints {
		neg := c.RHS.Sign() < 0
		sign := int64(1)
		if neg {
			sign = -1
		}
		s := new(big.Rat).SetInt64(sign)
		for j, coef := range c.Coeffs {
			if coef == nil {
				continue
			}
			t.at(i, j).Mul(coef, s)
		}
		t.b[i] = new(big.Rat).Mul(c.RHS, s)
		rel := c.Rel
		if neg {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			t.at(i, slackCol).SetInt64(1)
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.at(i, slackCol).SetInt64(-1) // surplus
			slackCol++
			t.at(i, artCol).SetInt64(1)
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.at(i, artCol).SetInt64(1)
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

func flip(r Relation) Relation {
	switch r {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// installPhase1Objective sets the objective to the sum of artificial
// variables and canonicalizes it against the current basis.
func (t *tableau) installPhase1Objective() {
	for j := range t.obj {
		t.obj[j].SetInt64(0)
	}
	t.objC.SetInt64(0)
	for j := t.artificialLo; j < t.cols; j++ {
		t.obj[j].SetInt64(1)
	}
	t.canonicalize()
}

// installPhase2Objective sets the real objective, forbids artificial
// columns from re-entering, and canonicalizes.
func (t *tableau) installPhase2Objective(p *Problem) {
	t.banArtificial = true
	for j := range t.obj {
		t.obj[j].SetInt64(0)
	}
	t.objC.SetInt64(0)
	for j := 0; j < len(p.Objective); j++ {
		if p.Objective[j] != nil {
			t.obj[j].Set(p.Objective[j])
		}
	}
	t.canonicalize()
}

// canonicalize zeroes the reduced cost of every basic variable by row
// elimination on the objective row.
func (t *tableau) canonicalize() {
	for i, bv := range t.basis {
		coef := t.obj[bv]
		if coef.Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(coef)
		for j := 0; j < t.cols; j++ {
			if t.at(i, j).Sign() == 0 {
				continue
			}
			term := new(big.Rat).Mul(factor, t.at(i, j))
			t.obj[j].Sub(t.obj[j], term)
		}
		term := new(big.Rat).Mul(factor, t.b[i])
		t.objC.Sub(t.objC, term)
	}
}

// objValue returns the current objective value (minimization).
func (t *tableau) objValue() *big.Rat { return new(big.Rat).Neg(t.objC) }

// iterate pivots to optimality with Bland's rule. It returns
// errUnbounded when a negative reduced cost column has no positive
// entry.
func (t *tableau) iterate(pivots *int) error {
	for {
		// Bland: entering variable is the lowest-index negative
		// reduced cost. In phase 2, artificial columns are banned from
		// re-entering the basis (they exist only to find an initial
		// feasible point).
		enter := -1
		limit := t.cols
		if t.banArtificial {
			limit = t.artificialLo
		}
		for j := 0; j < limit; j++ {
			if t.obj[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		// Ratio test, Bland ties broken by smallest basis variable.
		leave := -1
		var best *big.Rat
		for i := 0; i < t.rows; i++ {
			aie := t.at(i, enter)
			if aie.Sign() <= 0 {
				continue
			}
			ratio := new(big.Rat).Quo(t.b[i], aie)
			if leave < 0 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best = ratio
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	p := new(big.Rat).Set(t.at(leave, enter))
	inv := new(big.Rat).Inv(p)
	// Scale the pivot row.
	for j := 0; j < t.cols; j++ {
		if t.at(leave, j).Sign() != 0 {
			t.at(leave, j).Mul(t.at(leave, j), inv)
		}
	}
	t.b[leave].Mul(t.b[leave], inv)
	// Eliminate the pivot column from other rows and the objective.
	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		f := t.at(i, enter)
		if f.Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Set(f)
		for j := 0; j < t.cols; j++ {
			if t.at(leave, j).Sign() == 0 {
				continue
			}
			term := new(big.Rat).Mul(factor, t.at(leave, j))
			t.at(i, j).Sub(t.at(i, j), term)
		}
		term := new(big.Rat).Mul(factor, t.b[leave])
		t.b[i].Sub(t.b[i], term)
	}
	if f := t.obj[enter]; f.Sign() != 0 {
		factor := new(big.Rat).Set(f)
		for j := 0; j < t.cols; j++ {
			if t.at(leave, j).Sign() == 0 {
				continue
			}
			term := new(big.Rat).Mul(factor, t.at(leave, j))
			t.obj[j].Sub(t.obj[j], term)
		}
		term := new(big.Rat).Mul(factor, t.b[leave])
		t.objC.Sub(t.objC, term)
	}
	t.basis[leave] = enter
}

// driveOutArtificials removes artificial variables that remain basic at
// level zero after phase 1, pivoting on any non-artificial column with
// a nonzero entry, or dropping redundant rows (by leaving the
// artificial basic at zero, which is harmless because phase 2 forbids
// it from taking a positive value: its row's b stays 0 and the column
// never re-enters since its reduced cost is canonicalized to zero and
// artificial costs are zero in phase 2).
func (t *tableau) driveOutArtificials(pivots *int) error {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artificialLo {
			continue
		}
		if t.b[i].Sign() != 0 {
			return errors.New("lp: internal error: artificial basic at nonzero level after feasible phase 1")
		}
		for j := 0; j < t.artificialLo; j++ {
			if t.at(i, j).Sign() != 0 {
				t.pivot(i, j)
				*pivots++
				break
			}
		}
	}
	return nil
}

// extract reads the first n variable values out of the basis.
func (t *tableau) extract(n int) []*big.Rat {
	x := make([]*big.Rat, n)
	for j := range x {
		x[j] = rz()
	}
	for i, bv := range t.basis {
		if bv < n {
			x[bv].Set(t.b[i])
		}
	}
	return x
}

// String renders the problem in a human-readable form, mostly for
// debugging and error messages.
func (p *Problem) String() string {
	var sb strings.Builder
	sb.WriteString("minimize ")
	for j := 0; j < p.NumVars; j++ {
		var c *big.Rat
		if j < len(p.Objective) {
			c = p.Objective[j]
		}
		if c == nil {
			c = rz()
		}
		if j > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "%s*x%d", c.RatString(), j)
	}
	sb.WriteString("\nsubject to\n")
	for _, c := range p.Constraints {
		first := true
		for j, coef := range c.Coeffs {
			if coef == nil || coef.Sign() == 0 {
				continue
			}
			if !first {
				sb.WriteString(" + ")
			}
			fmt.Fprintf(&sb, "%s*x%d", coef.RatString(), j)
			first = false
		}
		if first {
			sb.WriteString("0")
		}
		fmt.Fprintf(&sb, " %s %s\n", c.Rel, c.RHS.RatString())
	}
	return sb.String()
}

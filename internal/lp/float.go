package lp

import (
	"errors"
	"fmt"
	"math"
)

// This file provides a float64 companion to the exact rational solver:
// the same two-phase dense simplex, with epsilon tolerances instead of
// exact arithmetic. The guaranteed heuristic keeps using the exact
// solver (its guarantee is stated on the exact relaxation optimum);
// larger models like the multi-installment LP — where big.Rat numerators
// grow without bound during pivoting — use this one. The float solver
// is cross-validated against the exact solver in the tests.

// FloatConstraint is a Constraint over float64 coefficients.
type FloatConstraint struct {
	// Coeffs are the per-variable coefficients (missing entries are
	// zero).
	Coeffs []float64
	// Rel is the constraint sense.
	Rel Relation
	// RHS is the right-hand side.
	RHS float64
}

// FloatProblem is a Problem over float64:
//
//	minimize sum_j Objective[j]*x_j  s.t.  Constraints, x >= 0.
type FloatProblem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Objective holds the cost coefficients.
	Objective []float64
	// Constraints are the linear constraints.
	Constraints []FloatConstraint
}

// FloatSolution is the result of SolveFloat.
type FloatSolution struct {
	// Status reports whether X and Objective are meaningful.
	Status Status
	// X is the (approximately) optimal assignment.
	X []float64
	// Objective is the objective value at X.
	Objective float64
	// Pivots counts simplex pivots across both phases.
	Pivots int
}

const floatEps = 1e-9

// SolveFloat runs the two-phase simplex in float64. Degeneracy is
// handled with Bland's rule; feasibility is declared when the phase-1
// objective is within a scale-relative tolerance of zero.
func SolveFloat(p *FloatProblem) (*FloatSolution, error) {
	if p.NumVars <= 0 {
		return nil, errors.New("lp: problem has no variables")
	}
	if len(p.Objective) > p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients for %d variables", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		if len(c.Coeffs) > p.NumVars {
			return nil, fmt.Errorf("lp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), p.NumVars)
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return nil, fmt.Errorf("lp: constraint %d has RHS %g", i, c.RHS)
		}
	}

	t := newFloatTableau(p)
	sol := &FloatSolution{}

	if t.numArtificial > 0 {
		t.installPhase1()
		if err := t.iterate(&sol.Pivots); err != nil {
			return nil, err
		}
		scale := 1.0
		for _, b := range t.b {
			if math.Abs(b) > scale {
				scale = math.Abs(b)
			}
		}
		if -t.objC > floatEps*scale*float64(len(t.b)+1) {
			sol.Status = Infeasible
			return sol, nil
		}
		t.driveOutArtificials(&sol.Pivots)
	}

	t.installPhase2(p)
	if err := t.iterate(&sol.Pivots); err != nil {
		if errors.Is(err, errUnbounded) {
			sol.Status = Unbounded
			return sol, nil
		}
		return nil, err
	}

	sol.Status = Optimal
	sol.X = t.extract(p.NumVars)
	for j := 0; j < len(p.Objective); j++ {
		sol.Objective += p.Objective[j] * sol.X[j]
	}
	return sol, nil
}

type floatTableau struct {
	rows          int
	cols          int
	numArtificial int
	a             []float64
	b             []float64
	obj           []float64
	objC          float64
	basis         []int
	artificialLo  int
	banArtificial bool
}

func (t *floatTableau) at(i, j int) float64     { return t.a[i*t.cols+j] }
func (t *floatTableau) set(i, j int, v float64) { t.a[i*t.cols+j] = v }

func newFloatTableau(p *FloatProblem) *floatTableau {
	rows := len(p.Constraints)
	slack, artificial := 0, 0
	for _, c := range p.Constraints {
		rel := c.Rel
		if c.RHS < 0 {
			rel = flip(rel)
		}
		switch rel {
		case LE:
			slack++
		case GE:
			slack++
			artificial++
		case EQ:
			artificial++
		}
	}
	cols := p.NumVars + slack + artificial
	t := &floatTableau{
		rows:          rows,
		cols:          cols,
		numArtificial: artificial,
		a:             make([]float64, rows*cols),
		b:             make([]float64, rows),
		obj:           make([]float64, cols),
		basis:         make([]int, rows),
		artificialLo:  cols - artificial,
	}
	slackCol := p.NumVars
	artCol := t.artificialLo
	for i, c := range p.Constraints {
		sign := 1.0
		rel := c.Rel
		if c.RHS < 0 {
			sign = -1
			rel = flip(rel)
		}
		for j, coef := range c.Coeffs {
			t.set(i, j, coef*sign)
		}
		t.b[i] = c.RHS * sign
		switch rel {
		case LE:
			t.set(i, slackCol, 1)
			t.basis[i] = slackCol
			slackCol++
		case GE:
			t.set(i, slackCol, -1)
			slackCol++
			t.set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		case EQ:
			t.set(i, artCol, 1)
			t.basis[i] = artCol
			artCol++
		}
	}
	return t
}

func (t *floatTableau) installPhase1() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objC = 0
	for j := t.artificialLo; j < t.cols; j++ {
		t.obj[j] = 1
	}
	t.canonicalize()
}

func (t *floatTableau) installPhase2(p *FloatProblem) {
	t.banArtificial = true
	for j := range t.obj {
		t.obj[j] = 0
	}
	t.objC = 0
	copy(t.obj, p.Objective)
	t.canonicalize()
}

func (t *floatTableau) canonicalize() {
	for i, bv := range t.basis {
		coef := t.obj[bv]
		if coef == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= coef * t.at(i, j)
		}
		t.objC -= coef * t.b[i]
	}
}

func (t *floatTableau) iterate(pivots *int) error {
	// Dantzig pricing with a Bland fallback after a pivot budget, to
	// escape potential cycling without giving up speed.
	blandAfter := 50 * (t.rows + t.cols)
	for iter := 0; ; iter++ {
		enter := -1
		limit := t.cols
		if t.banArtificial {
			limit = t.artificialLo
		}
		if iter < blandAfter {
			best := -floatEps
			for j := 0; j < limit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < limit; j++ {
				if t.obj[j] < -floatEps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			aie := t.at(i, enter)
			if aie <= floatEps {
				continue
			}
			ratio := t.b[i] / aie
			if ratio < bestRatio-floatEps ||
				(ratio < bestRatio+floatEps && (leave < 0 || t.basis[i] < t.basis[leave])) {
				leave = i
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

func (t *floatTableau) pivot(leave, enter int) {
	p := t.at(leave, enter)
	inv := 1 / p
	for j := 0; j < t.cols; j++ {
		t.set(leave, j, t.at(leave, j)*inv)
	}
	t.b[leave] *= inv
	for i := 0; i < t.rows; i++ {
		if i == leave {
			continue
		}
		f := t.at(i, enter)
		if f == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			t.set(i, j, t.at(i, j)-f*t.at(leave, j))
		}
		t.b[i] -= f * t.b[leave]
		if t.b[i] < 0 && t.b[i] > -floatEps {
			t.b[i] = 0 // clean tiny negative residue
		}
	}
	if f := t.obj[enter]; f != 0 {
		for j := 0; j < t.cols; j++ {
			t.obj[j] -= f * t.at(leave, j)
		}
		t.objC -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

func (t *floatTableau) driveOutArtificials(pivots *int) {
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artificialLo {
			continue
		}
		for j := 0; j < t.artificialLo; j++ {
			if math.Abs(t.at(i, j)) > floatEps {
				t.pivot(i, j)
				*pivots++
				break
			}
		}
	}
}

func (t *floatTableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, bv := range t.basis {
		if bv < n {
			v := t.b[i]
			if v < 0 {
				v = 0 // numerical residue
			}
			x[bv] = v
		}
	}
	return x
}

package mpi

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fault"
)

// runFTGather runs a fault-tolerant gather where rank r contributes
// contribs[r], returning per rank the gathered slice, report and error.
func runFTGather(t *testing.T, w *World, contribs [][]int) ([][]int, []*GatherReport, []error, []RankStats) {
	t.Helper()
	p := w.Size()
	gathered := make([][]int, p)
	reports := make([]*GatherReport, p)
	gatherErrs := make([]error, p)
	stats, err := Run(w, func(c *Comm) error {
		out, rep, err := FaultTolerantGatherv(c, contribs[c.Rank()])
		gathered[c.Rank()], reports[c.Rank()], gatherErrs[c.Rank()] = out, rep, err
		return nil // errors are inspected by the test, not by Run
	})
	if err != nil {
		t.Fatal(err)
	}
	return gathered, reports, gatherErrs, stats
}

func contribs4() [][]int {
	return [][]int{{0, 1}, {10, 11}, {20, 21}, {30, 31}}
}

func TestFTGathervNoFaultsMatchesGatherv(t *testing.T) {
	contribs := contribs4()

	plain := world4(t)
	plainStats, err := Run(plain, func(c *Comm) error {
		_, err := Gatherv(c, contribs[c.Rank()])
		return err
	})
	if err != nil {
		t.Fatal(err)
	}

	ft := world4(t)
	ft.SetFaultPlan(nil, testPolicy())
	gathered, reports, gatherErrs, ftStats := runFTGather(t, ft, contribs)
	for r, err := range gatherErrs {
		if err != nil {
			t.Fatalf("rank %d errored: %v", r, err)
		}
	}
	for r := range plainStats {
		if math.Abs(plainStats[r].Finish-ftStats[r].Finish) > 1e-9 {
			t.Errorf("rank %d finish = %g, want Gatherv's %g", r, ftStats[r].Finish, plainStats[r].Finish)
		}
	}
	if want := []int{0, 1, 10, 11, 20, 21, 30, 31}; !intsEqual(gathered[3], want) {
		t.Errorf("root gathered %v, want %v", gathered[3], want)
	}
	for _, r := range []int{0, 1, 2} {
		if gathered[r] != nil {
			t.Errorf("non-root rank %d gathered %v, want nil", r, gathered[r])
		}
	}
	rep := reports[3]
	if !intsEqual(rep.Contributed, []int{0, 1, 2, 3}) || len(rep.Missing) != 0 ||
		rep.Rounds != 1 || rep.Failovers != 0 || rep.Survivors != reports[3].Survivors {
		t.Errorf("failure-free report = %+v", rep)
	}
}

func TestFTGathervContributorCrash(t *testing.T) {
	// Rank 1 crashes at t=3, before its pull ([2, 6] fault-free) can
	// complete: after the retries are exhausted its contribution is
	// reported missing, and the rest of the gather proceeds.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 3}), testPolicy())
	gathered, reports, gatherErrs, _ := runFTGather(t, w, contribs4())

	if !errors.Is(gatherErrs[1], ErrRankFailed) {
		t.Fatalf("crashed rank error = %v, want ErrRankFailed", gatherErrs[1])
	}
	rep := reports[3]
	if !intsEqual(rep.Contributed, []int{0, 2, 3}) || !intsEqual(rep.Missing, []int{1}) {
		t.Errorf("Contributed, Missing = %v, %v; want [0 2 3], [1]", rep.Contributed, rep.Missing)
	}
	if rep.Timeouts != 3 || rep.Retries != 2 || rep.Failovers != 0 {
		t.Errorf("Timeouts, Retries, Failovers = %d, %d, %d; want 3, 2, 0", rep.Timeouts, rep.Retries, rep.Failovers)
	}
	if want := []int{0, 1, 20, 21, 30, 31}; !intsEqual(gathered[3], want) {
		t.Errorf("root gathered %v, want %v", gathered[3], want)
	}
}

func TestFTGathervContributorCrashAfterConfirm(t *testing.T) {
	// Rank 0's contribution is confirmed at t=2; the machine dies at
	// t=3. Unlike the scatter (where the data dies with the holder), a
	// banked contribution survives at the root — the rank is failed but
	// not missing.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 0, Start: 3}), testPolicy())
	gathered, reports, gatherErrs, _ := runFTGather(t, w, contribs4())

	if !errors.Is(gatherErrs[0], ErrRankFailed) {
		t.Fatalf("crashed rank error = %v, want ErrRankFailed", gatherErrs[0])
	}
	rep := reports[3]
	if !intsEqual(rep.Contributed, []int{0, 1, 2, 3}) || len(rep.Missing) != 0 {
		t.Errorf("Contributed, Missing = %v, %v; want [0 1 2 3], []", rep.Contributed, rep.Missing)
	}
	if want := []int{0, 1, 10, 11, 20, 21, 30, 31}; !intsEqual(gathered[3], want) {
		t.Errorf("root gathered %v, want %v", gathered[3], want)
	}
	if rep.Survivors == nil {
		t.Fatal("no survivor communicator")
	}
	if got := rep.Survivors.Size(); got != 3 {
		t.Errorf("survivor comm size = %d, want 3", got)
	}
}

func TestFTGathervRootFailoverRecollects(t *testing.T) {
	// The collecting root dies at t=3: rank 0's contribution was
	// confirmed at t=2 but the partial gather dies with the root, so
	// the elected successor — rank 0, the only fresh replica holder —
	// re-collects the surviving contributions. Each lands exactly once:
	// re-collection is idempotent, never duplicating.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 3}), testPolicy())
	contribs := contribs4()
	gathered, reports, gatherErrs, stats := runFTGather(t, w, contribs)

	if !errors.Is(gatherErrs[3], ErrRankFailed) {
		t.Fatalf("crashed root error = %v, want ErrRankFailed", gatherErrs[3])
	}
	for _, r := range []int{0, 1, 2} {
		if gatherErrs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, gatherErrs[r])
		}
	}
	rep := reports[0]
	if rep.Failovers != 1 || !intsEqual(rep.RootPath, []int{3, 0}) || rep.FinalRoot() != 0 {
		t.Errorf("Failovers, RootPath = %d, %v; want 1, [3 0]", rep.Failovers, rep.RootPath)
	}
	if !intsEqual(rep.Contributed, []int{0, 1, 2}) || !intsEqual(rep.Missing, []int{3}) {
		t.Errorf("Contributed, Missing = %v, %v; want [0 1 2], [3]", rep.Contributed, rep.Missing)
	}
	if rep.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", rep.Rounds)
	}
	// The new root holds the gather; exactly once despite rank 0's
	// contribution having been confirmed twice (once per root).
	if want := []int{0, 1, 10, 11, 20, 21}; !intsEqual(gathered[0], want) {
		t.Errorf("new root gathered %v, want %v", gathered[0], want)
	}
	for _, r := range []int{1, 2, 3} {
		if gathered[r] != nil {
			t.Errorf("rank %d gathered %v, want nil", r, gathered[r])
		}
	}
	if rep.Survivors == nil || !rep.Survivors.IsRoot() {
		t.Error("rank 0 is not the root of the survivor communicator")
	}
	// The successor's timeline shows the election and the re-collection.
	var failover, regather bool
	for _, s := range stats[0].Spans {
		switch {
		case s.Phase == PhaseFailover:
			failover = true
		case s.Phase == PhaseComm && len(s.Label) >= 8 && s.Label[:8] == "regather":
			regather = true
		}
	}
	if !failover || !regather {
		t.Errorf("failover, regather spans = %v, %v; want both", failover, regather)
	}
}

func TestFTReduceNoFaults(t *testing.T) {
	w := world4(t)
	w.SetFaultPlan(nil, testPolicy())
	var rootSum float64
	_, err := Run(w, func(c *Comm) error {
		v, rep, err := FaultTolerantReduce(c, float64(c.Rank()+1), Sum)
		if err != nil {
			return err
		}
		if c.IsRoot() {
			rootSum = v
		} else if v != 0 {
			t.Errorf("non-root rank %d reduce value = %g, want 0", c.Rank(), v)
		}
		if len(rep.Missing) != 0 {
			t.Errorf("rank %d missing = %v, want none", c.Rank(), rep.Missing)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootSum != 10 {
		t.Errorf("reduced sum = %g, want 10", rootSum)
	}
}

func TestFTReduceRootFailover(t *testing.T) {
	// The root dies mid-reduce; the successor folds the surviving
	// contributions (ranks 0-2: 1+2+3) and reports the root's own value
	// as missing.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 3}), testPolicy())
	sums := make([]float64, w.Size())
	reports := make([]*GatherReport, w.Size())
	redErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		v, rep, err := FaultTolerantReduce(c, float64(c.Rank()+1), Sum)
		sums[c.Rank()], reports[c.Rank()], redErrs[c.Rank()] = v, rep, err
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(redErrs[3], ErrRankFailed) {
		t.Fatalf("crashed root error = %v, want ErrRankFailed", redErrs[3])
	}
	rep := reports[0]
	if rep.FinalRoot() != 0 || !intsEqual(rep.Missing, []int{3}) {
		t.Errorf("FinalRoot, Missing = %d, %v; want 0, [3]", rep.FinalRoot(), rep.Missing)
	}
	if sums[0] != 6 {
		t.Errorf("survivor reduction = %g, want 1+2+3 = 6", sums[0])
	}
}

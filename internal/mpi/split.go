package mpi

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// This file implements communicator splitting (MPI_Comm_split) and
// custom transfer models. Together they enable hierarchical
// collectives — e.g. a two-level scatter that ships each remote site's
// whole block across the WAN once and re-scatters locally — which is
// the standard answer to the single-level scatter's weakness on
// wide-area topologies.

// TransferModel computes the time to ship items from one rank to
// another. Worlds default to the star model derived from the
// processors' Tcomm functions; SetTransferModel installs a custom one
// (e.g. site-aware costs where intra-machine transfers are free).
type TransferModel func(from, to, items int) float64

// SetTransferModel overrides the world's transfer-time model. It must
// be called before Run.
func (w *World) SetTransferModel(m TransferModel) { w.transfer = m }

// Split partitions the ranks into sub-communicators, like
// MPI_Comm_split: ranks passing the same color form a group, ordered
// by (key, parent rank). Every rank must call Split (it is a
// collective); the returned sub-communicator shares this rank's clock
// and statistics with the parent, so time spent in sub-collectives is
// accounted exactly once. The sub-world's root is the group's rank 0.
func Split(c *Comm, color, key int) (*Comm, error) {
	type in struct{ color, key int }
	out, err := c.rendezvous(in{color, key}, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		// Group ranks by color.
		type member struct{ key, rank int }
		groups := map[int][]member{}
		for r := 0; r < p; r++ {
			mi := inputs[r].(in)
			groups[mi.color] = append(groups[mi.color], member{mi.key, r})
		}
		// Build one sub-world per color; hand every rank its (world,
		// newRank) pair. Splitting itself costs no virtual time.
		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for r := 0; r < p; r++ {
			commStarts[r] = clocks[r]
			outClocks[r] = clocks[r]
		}
		for _, members := range groups {
			sort.Slice(members, func(i, j int) bool {
				if members[i].key != members[j].key {
					return members[i].key < members[j].key
				}
				return members[i].rank < members[j].rank
			})
			ranks := make([]int, len(members))
			for i, m := range members {
				ranks[i] = m.rank
			}
			sub := w.subWorld(ranks, 0)
			for i, m := range members {
				outputs[m.rank] = subHandle{world: sub, rank: i}
			}
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	h, ok := out.(subHandle)
	if !ok {
		return nil, fmt.Errorf("mpi: split returned no group for rank %d", c.rank)
	}
	return &Comm{
		world: h.world,
		rank:  h.rank,
		clock: c.clock,
		stats: c.stats, // shared accounting with the parent handle
	}, nil
}

// subHandle is the per-rank outcome of a split.
type subHandle struct {
	world *World
	rank  int
}

// subWorld builds a world over a subset of this world's ranks (given
// in sub-rank order), with rootPos as the sub-world's root. The child
// inherits the transfer model (translated to sub-ranks), the
// failure-injection configuration, and the mapping to top-level ranks
// so fault plans keep following processors through splits. Collectives,
// mailboxes and failure state are fresh: a failure already recorded in
// the parent is the caller's concern (the fault-tolerant scatter only
// puts survivors in its sub-world).
func (w *World) subWorld(ranks []int, rootPos int) *World {
	procs := make([]core.Processor, len(ranks))
	tops := make([]int, len(ranks))
	for i, r := range ranks {
		procs[i] = w.procs[r]
		tops[i] = w.globalRank(r)
	}
	sub := &World{
		procs:       procs,
		rootRank:    rootPos,
		parentRanks: append([]int(nil), ranks...),
		topRanks:    tops,
		fc:          w.fc,
		engine:      w.engine,
		collectives: make(map[int]*collective),
		mailboxes:   make(map[pairTag]chan message),
		failCh:      make(chan struct{}),
	}
	if w.transfer != nil {
		// Inherit the custom model, translated to sub-ranks.
		parent := w.transfer
		pr := sub.parentRanks
		sub.transfer = func(from, to, items int) float64 {
			return parent(pr[from], pr[to], items)
		}
	} else {
		parentWorld := w
		pr := sub.parentRanks
		sub.transfer = func(from, to, items int) float64 {
			return parentWorld.starTransfer(pr[from], pr[to], items)
		}
	}
	return sub
}

// ParentRank maps a sub-communicator rank back to the parent world's
// rank (identity for a top-level communicator).
func (c *Comm) ParentRank(rank int) int {
	if c.world.parentRanks == nil {
		return rank
	}
	return c.world.parentRanks[rank]
}

// Merge folds a sub-communicator's clock advance back into the parent
// handle: after running sub-collectives on s, call parent.Merge(s) so
// the parent's clock catches up before the next parent-level
// operation. (Statistics are shared automatically; only the scalar
// clock needs syncing.)
func (c *Comm) Merge(sub *Comm) {
	if sub.clock > c.clock {
		// The time was already recorded in the shared stats by the
		// sub-communicator's operations; just move the scalar clock.
		c.clock = sub.clock
	}
}

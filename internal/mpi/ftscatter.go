package mpi

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
)

// This file is the failure-aware counterpart of Scatterv. The root
// still serves destinations in rank order over a single port (the
// paper's Section 2.3 model), but every send is supervised: a transfer
// that overlaps an injected link-drop window — or whose destination has
// crashed — times out at the root, which retries it under a capped
// exponential backoff. A rank whose retries are exhausted, or which
// crashes outright, is declared dead; the items it still owed (and any
// it had already received, since a crashed machine's partial results
// are gone) are re-balanced over the survivors by re-solving the
// paper's distribution problem on the surviving processors — the same
// solvers, including Theorem 2's participation pruning — and shipped in
// a further scatter round. The loop repeats until a round loses
// nothing, so every item is delivered exactly once to a surviving rank.

// SetFaultPlan installs a failure-injection plan and the retry policy
// governing the fault-tolerant collectives. It must be called before
// Run; sub-worlds created by Split inherit it.
func (w *World) SetFaultPlan(plan *fault.Plan, pol fault.Policy) {
	w.fc.plan = plan
	w.fc.policy = pol
}

// SetSendObserver installs a callback invoked for every supervised
// send outcome (delivered, slowed or timed out). Wire it to a monitor
// with fault.MonitorObserver so re-solves see degraded link costs. It
// must be called before Run.
func (w *World) SetSendObserver(fn func(fault.SendEvent)) { w.fc.observer = fn }

// SetRebalanceCosts installs a hook that supplies the processors used
// when re-solving the distribution over survivors. It receives the
// surviving world ranks in service order (root last) and returns the
// matching processors — e.g. fault.DegradeProcessors applied to the
// restriction, so the re-solve accounts for links the monitor has seen
// flapping. When unset, the world's nominal processors are used. It
// must be called before Run.
func (w *World) SetRebalanceCosts(fn func(ranks []int) []core.Processor) { w.fc.rebalance = fn }

// rebalanceProcs returns the processors to re-solve over, for the
// given surviving ranks in service order (root last). The root's
// communication cost is forced to zero: its own share ships for free,
// exactly as in BalancedCounts.
func (w *World) rebalanceProcs(ranks []int) []core.Processor {
	var procs []core.Processor
	if w.fc.rebalance != nil {
		procs = append([]core.Processor(nil), w.fc.rebalance(ranks)...)
	} else {
		procs = make([]core.Processor, len(ranks))
		for i, r := range ranks {
			procs[i] = w.procs[r]
		}
	}
	if len(procs) > 0 {
		procs[len(procs)-1].Comm = cost.Zero
	}
	return procs
}

// ScatterReport describes how a fault-tolerant scatter went.
type ScatterReport struct {
	// Planned is the requested per-rank distribution (the counts
	// argument); Final is what each rank actually ended up holding —
	// zero for ranks that failed.
	Planned, Final core.Distribution
	// Failed lists the ranks declared dead during the scatter, in rank
	// order.
	Failed []int
	// Retries counts re-sent transfers; Timeouts counts transfer
	// attempts the root gave up on; Rounds counts scatter rounds (1 for
	// a failure-free run, +1 per rebalance).
	Retries, Timeouts, Rounds int
	// Survivors is a communicator over the surviving ranks, rooted at
	// the same processor, for the rest of the program to continue on.
	// It is the receiver's own communicator when nothing failed, and
	// nil for a rank that failed.
	Survivors *Comm
}

// ftShared is the per-scatter outcome shared by every rank's report.
type ftShared struct {
	planned, final core.Distribution
	failedRanks    []int
	retries        int
	timeouts       int
	rounds         int
	sub            *World // nil when nothing failed
}

// ftOut is the per-rank outcome of a fault-tolerant scatter.
type ftOut[T any] struct {
	chunk   []T
	spans   []Span
	failed  bool
	subRank int
	shared  *ftShared
}

// FaultTolerantScatterv distributes data from the root like Scatterv,
// but supervises every transfer against the world's fault plan:
// timed-out sends are retried with capped exponential backoff, and
// ranks that crash or exhaust their retries are declared dead and
// their items re-balanced over the survivors in further scatter
// rounds. Ranks declared dead receive an error wrapping ErrRankFailed;
// surviving ranks receive their (possibly enlarged) chunk and a report
// with a communicator over the survivors.
func FaultTolerantScatterv[T any](c *Comm, data []T, counts []int) ([]T, *ScatterReport, error) {
	type in struct {
		data   []T
		counts []int
	}
	out, err := c.rendezvous(in{data, counts}, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		rootIn := inputs[root].(in)
		counts := rootIn.counts
		if len(counts) != p {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv with %d counts for %d ranks", len(counts), p)
		}
		total := 0
		for i, n := range counts {
			if n < 0 {
				return nil, nil, nil, fmt.Errorf("mpi: scatterv count %d is negative", i)
			}
			total += n
		}
		if total > len(rootIn.data) {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv needs %d items, root has %d", total, len(rootIn.data))
		}
		plan := w.fc.plan
		pol := w.fc.policy.WithDefaults()
		if _, crashes := plan.CrashTime(w.globalRank(root)); crashes {
			return nil, nil, nil, fmt.Errorf("mpi: fault plan crashes the root rank %d; the root must survive", root)
		}

		// Round 1 ships the requested distribution.
		roundData := make([][]T, p)
		off := 0
		for r, n := range counts {
			roundData[r] = rootIn.data[off : off+n]
			off += n
		}

		delivered := make([][]T, p)
		alive := make([]bool, p)
		for r := range alive {
			alive[r] = true
		}
		dead := make([]bool, p)
		recvSpans := make([][]Span, p)
		recvEnd := make([]float64, p)
		var rootSpans []Span
		sh := &ftShared{planned: append(core.Distribution(nil), counts...)}

		t := clocks[root]
		observe := func(ev fault.SendEvent) {
			if w.fc.observer != nil {
				w.fc.observer(ev)
			}
		}

		// deliver supervises the transfer of items to rank r, retrying
		// under the policy. It advances the root's port time t and
		// reports whether the items landed.
		deliver := func(r, round int, items []T) bool {
			gr := w.globalRank(r)
			name := w.procs[r].Name
			nominal := w.transferTime(root, r, len(items))
			sendLabel := fmt.Sprintf("send→%s", name)
			if round > 1 {
				sendLabel = fmt.Sprintf("rebalance→%s", name)
			}
			for attempt := 0; ; attempt++ {
				d := nominal * plan.Slowdown(gr, t)
				arrive := t + d
				lost := plan.Crashed(gr, arrive) || plan.DropsDuring(gr, t, arrive)
				if !lost {
					rootSpans = append(rootSpans, Span{Phase: PhaseComm, Start: t, End: arrive, Label: sendLabel})
					start, end := t, arrive
					if clocks[r] > start {
						start = clocks[r]
					}
					if clocks[r] > end {
						end = clocks[r]
					}
					recvSpans[r] = append(recvSpans[r], Span{Phase: PhaseComm, Start: start, End: end, Label: sendLabel})
					recvEnd[r] = end
					observe(fault.SendEvent{
						Rank: gr, Name: name, At: arrive, Items: len(items),
						Outcome: fault.SendDelivered, Nominal: nominal, Actual: d,
					})
					t = arrive
					return true
				}
				sh.timeouts++
				rootSpans = append(rootSpans, Span{
					Phase: PhaseTimeout, Start: t, End: t + pol.Timeout,
					Label: fmt.Sprintf("timeout→%s #%d", name, attempt+1),
				})
				t += pol.Timeout
				observe(fault.SendEvent{
					Rank: gr, Name: name, At: t, Items: len(items),
					Outcome: fault.SendTimedOut, Nominal: nominal,
				})
				if attempt >= pol.MaxRetries {
					return false
				}
				sh.retries++
				wait := pol.Backoff.Delay(attempt)
				if wait > 0 {
					rootSpans = append(rootSpans, Span{
						Phase: PhaseBackoff, Start: t, End: t + wait,
						Label: fmt.Sprintf("backoff→%s", name),
					})
					t += wait
				}
			}
		}

		for round := 1; ; round++ {
			sh.rounds = round
			// Serve the round's recipients in rank order over the
			// root's single port.
			for r := 0; r < p; r++ {
				if r == root || !alive[r] || len(roundData[r]) == 0 {
					continue
				}
				if deliver(r, round, roundData[r]) {
					delivered[r] = append(delivered[r], roundData[r]...)
					roundData[r] = nil
				} else {
					alive[r] = false // keep roundData[r] for reclaiming
				}
			}
			// The root's own share ships for free once the port is idle.
			delivered[root] = append(delivered[root], roundData[root]...)
			roundData[root] = nil

			// Sweep for crashes up to the port's current time: a rank
			// that received its chunk and then died takes the data down
			// with it, so its items re-enter the pool too.
			for r := 0; r < p; r++ {
				if r != root && alive[r] && plan.Crashed(w.globalRank(r), t) {
					alive[r] = false
				}
			}
			var lost []T
			for r := 0; r < p; r++ {
				if r == root || alive[r] || dead[r] {
					continue
				}
				dead[r] = true
				lost = append(lost, delivered[r]...)
				lost = append(lost, roundData[r]...)
				delivered[r], roundData[r] = nil, nil
			}
			if len(lost) == 0 {
				break
			}

			// Re-solve the distribution problem over the survivors, in
			// service order with the root last (its share is free), and
			// ship the losses in another round.
			var survivors []int
			for r := 0; r < p; r++ {
				if r != root && alive[r] {
					survivors = append(survivors, r)
				}
			}
			survivors = append(survivors, root)
			dist := core.Uniform(len(survivors), len(lost))
			if res, err := solveByClass(w.rebalanceProcs(survivors), len(lost)); err == nil {
				dist = res.Distribution
			}
			off := 0
			for pos, r := range survivors {
				roundData[r] = lost[off : off+dist[pos]]
				off += dist[pos]
			}
		}

		// Assemble the shared report and per-rank outcomes.
		sh.final = make(core.Distribution, p)
		for r := 0; r < p; r++ {
			sh.final[r] = len(delivered[r])
			if dead[r] {
				sh.failedRanks = append(sh.failedRanks, r)
			}
		}
		sort.Ints(sh.failedRanks)
		var subRanks []int
		subRank := make([]int, p)
		if len(sh.failedRanks) > 0 {
			for r := 0; r < p; r++ {
				if !dead[r] {
					subRank[r] = len(subRanks)
					subRanks = append(subRanks, r)
				}
			}
			rootPos := 0
			for i, r := range subRanks {
				if r == root {
					rootPos = i
				}
			}
			sh.sub = w.subWorld(subRanks, rootPos)
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for r := 0; r < p; r++ {
			commStarts[r] = clocks[r]
			outClocks[r] = clocks[r]
			o := ftOut[T]{shared: sh}
			switch {
			case r == root:
				o.chunk = delivered[r]
				o.spans = rootSpans
			case dead[r]:
				o.failed = true
				o.spans = recvSpans[r]
				start := clocks[r]
				if recvEnd[r] > start {
					start = recvEnd[r]
				}
				if ct, ok := plan.CrashTime(w.globalRank(r)); ok && ct > start {
					o.spans = append(append([]Span(nil), o.spans...),
						Span{Phase: PhaseIdle, Start: start, End: ct, Label: "crashed"})
				}
			default:
				o.chunk = delivered[r]
				o.spans = recvSpans[r]
			}
			if !dead[r] && sh.sub != nil {
				o.subRank = subRank[r]
			}
			outputs[r] = o
		}
		// Mark the dead so the rest of the program fails fast instead
		// of deadlocking on ranks that will never arrive.
		for _, r := range sh.failedRanks {
			w.markFailed(r, fmt.Errorf("mpi: rank %d lost to injected fault: %w", r, ErrRankFailed))
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	o := out.(ftOut[T])
	c.playSpans(o.spans)
	sh := o.shared
	rep := &ScatterReport{
		Planned:  sh.planned,
		Final:    sh.final,
		Failed:   sh.failedRanks,
		Retries:  sh.retries,
		Timeouts: sh.timeouts,
		Rounds:   sh.rounds,
	}
	if o.failed {
		return nil, rep, fmt.Errorf("mpi: rank %d: %w", c.rank, ErrRankFailed)
	}
	c.stats.ItemsReceived += len(o.chunk)
	if sh.sub != nil {
		rep.Survivors = &Comm{world: sh.sub, rank: o.subRank, clock: c.clock, stats: c.stats}
	} else {
		rep.Survivors = c
	}
	return o.chunk, rep, nil
}

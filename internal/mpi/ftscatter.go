package mpi

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
	"repro/internal/monitor"
)

// This file is the failure-aware counterpart of Scatterv. The serving
// root still ships to destinations in rank order over a single port
// (the paper's Section 2.3 model), but every send is supervised: a
// transfer that overlaps an injected link-drop window — or whose
// destination has crashed — times out at the root, which retries it
// under a capped exponential backoff. A rank whose retries are
// exhausted, or which crashes outright, is declared dead; the items it
// still owed (and any it had already received, since a crashed
// machine's partial results are gone) are re-balanced over the
// survivors by re-solving the paper's distribution problem on the
// surviving processors — the same solvers, including Theorem 2's
// participation pruning — and shipped in a further scatter round.
//
// The root itself may die too. Every confirmed send is checkpointed in
// a replicated delivery ledger (fault.Ledger): the root appends a
// checkpoint per acknowledged transfer and piggybacks the metadata-only
// log onto the acknowledgement, so every rank holding data holds a
// fresh ledger copy. When the serving root crashes, the survivors
// detect it (a missed heartbeat plus an agreement round, charged
// Policy.Election virtual seconds), deterministically elect the
// lowest-ranked survivor with a fresh ledger copy, and the new root
// resumes the scatter from the last checkpoint: confirmed deliveries
// stay where they are, and only the unconfirmed remainder — re-read
// from the durable input the original root was scattering — is
// re-solved over the survivors and shipped in a resume round. The loop
// repeats until a round loses nothing, so every item is delivered
// exactly once to a surviving rank.

// SetFaultPlan installs a failure-injection plan and the retry policy
// governing the fault-tolerant collectives. It must be called before
// Run; sub-worlds created by Split inherit it.
func (w *World) SetFaultPlan(plan *fault.Plan, pol fault.Policy) {
	w.fc.plan = plan
	w.fc.policy = pol
}

// SetSendObserver installs a callback invoked for every supervised
// send outcome (delivered, slowed, timed out, or aborted by a root
// crash). Wire it to a monitor with fault.MonitorObserver so re-solves
// see degraded link costs. It must be called before Run.
func (w *World) SetSendObserver(fn func(fault.SendEvent)) { w.fc.observer = fn }

// SetRebalanceCosts installs a hook that supplies the processors used
// when re-solving the distribution over survivors. It receives the
// surviving world ranks in service order (root last) and returns the
// matching processors — e.g. fault.DegradeProcessors applied to the
// restriction, so the re-solve accounts for links the monitor has seen
// flapping. When unset, the world's nominal processors are used. It
// must be called before Run.
func (w *World) SetRebalanceCosts(fn func(ranks []int) []core.Processor) { w.fc.rebalance = fn }

// SetNetPlan installs a network-level fault plan: partition, flap and
// degrade windows keyed by global rank pairs, typically compiled from
// a routed platform.Graph by simgrid.BuildNetPlan. A cut pair's
// transfers time out at the root like dropped links; a degraded pair's
// transfers stretch by the plan's slowdown factor. It must be called
// before Run; sub-worlds created by Split inherit it.
func (w *World) SetNetPlan(np *fault.NetPlan) { w.fc.netplan = np }

// SetDivergence installs the model-divergence detector that decides
// when recovery re-solves abandon the exact DP for the diffusion
// fallback: the scatter feeds it every observed transfer cost against
// the planned one, pins it degraded while a partition cuts the serving
// root off from survivors, and heals it when the network plan says the
// faults are over. It must be called before Run.
func (w *World) SetDivergence(d *monitor.Divergence) { w.fc.divergence = d }

// SetDiffusionAdjacency installs the rank-level topology (global-rank
// indexed, symmetric) that degraded-mode rebalances diffuse over,
// typically platform.Graph.RankAdjacency. When unset, every reachable
// pair of survivors counts as adjacent (the star assumption). It must
// be called before Run.
func (w *World) SetDiffusionAdjacency(adj [][]int) { w.fc.adjacency = adj }

// liveAdjacency builds the diffusion adjacency over the survivors
// (positions matching the slice) at time t: pairs adjacent in the
// configured topology — all pairs when none is set — and currently
// reachable under the network plan. Cut edges vanish, so diffusion
// can never move items across an active partition.
func (w *World) liveAdjacency(survivors []int, t float64) [][]int {
	np := w.fc.netplan
	base := w.fc.adjacency
	adjacent := func(a, b int) bool {
		ga, gb := w.globalRank(a), w.globalRank(b)
		if base != nil {
			if ga >= len(base) {
				return false
			}
			found := false
			for _, nb := range base[ga] {
				if nb == gb {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return np.Reachable(ga, gb, t)
	}
	adj := make([][]int, len(survivors))
	for i := range survivors {
		for j := range survivors {
			if i != j && adjacent(survivors[i], survivors[j]) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// rebalanceProcs returns the processors to re-solve over, for the
// given surviving ranks in service order (root last). The root's
// communication cost is forced to zero: its own share ships for free,
// exactly as in BalancedCounts.
func (w *World) rebalanceProcs(ranks []int) []core.Processor {
	var procs []core.Processor
	if w.fc.rebalance != nil {
		procs = append([]core.Processor(nil), w.fc.rebalance(ranks)...)
	} else {
		procs = make([]core.Processor, len(ranks))
		for i, r := range ranks {
			procs[i] = w.procs[r]
		}
	}
	if len(procs) > 0 {
		procs[len(procs)-1].Comm = cost.Zero
	}
	return procs
}

// serveTransfer prices a single-port transfer between the current
// serving root and another rank. With a custom TransferModel installed
// the real (from, to) pair is consulted. Under the default star model
// the cost is the non-serving endpoint's link cost: for the designated
// root this is exactly the star transfer, and for a promoted root it
// models the new server streaming through the star's switch at the
// other endpoint's link rate — the hub of the platform is the network,
// not the dead machine.
func (w *World) serveTransfer(server, other, items int, serverSends bool) float64 {
	if server == other {
		return 0
	}
	if w.transfer != nil {
		if serverSends {
			return w.transfer(server, other, items)
		}
		return w.transfer(other, server, items)
	}
	return w.procs[other].Comm.Eval(items)
}

// Rebalance describes one re-solve of the distribution problem during
// recovery: the scatter round its sends went out in, the serving root
// at that point, and the redistribution of the reclaimed pool over the
// survivors (Ranks in service order with the root last, Dist
// matching). The chaos harness audits each record against a fresh
// solve to keep recovery inside the Eq. (4) guarantee band.
type Rebalance struct {
	Round int
	Root  int
	Items int
	Ranks []int
	// Procs are the processors the re-solve ran over (service order
	// matching Ranks, the root's Comm forced to zero), so auditors can
	// re-evaluate the distribution without access to the world.
	Procs []core.Processor
	Dist  core.Distribution
	// Mode records how the distribution was computed: "exact" (the
	// DP solver), "diffuse" (the degraded-network diffusion fallback),
	// or "uniform" (the last-resort even split). Auditors hold exact
	// rebalances to bit-identity with a fresh solve and diffuse ones to
	// the documented quality band.
	Mode string
	// Adjacency is the live diffusion adjacency the fallback ran over
	// (positions matching Ranks); nil for exact and uniform rebalances.
	// Auditors replay core.DiffusePool over it to hold diffuse
	// rebalances to bit-identity too.
	Adjacency [][]int
}

// Rebalance modes.
const (
	RebalanceExact   = "exact"
	RebalanceDiffuse = "diffuse"
	RebalanceUniform = "uniform"
)

// ScatterReport describes how a fault-tolerant scatter went.
type ScatterReport struct {
	// Planned is the requested per-rank distribution (the counts
	// argument); Final is what each rank actually ended up holding —
	// zero for ranks that failed.
	Planned, Final core.Distribution
	// Failed lists the ranks declared dead during the scatter, in rank
	// order.
	Failed []int
	// Retries counts re-sent transfers; Timeouts counts transfer
	// attempts the root gave up on; Rounds counts scatter rounds (1 for
	// a failure-free run, +1 per rebalance or resume).
	Retries, Timeouts, Rounds int
	// Failovers counts root re-elections; RootPath lists every serving
	// root in order, the original first (length Failovers+1).
	Failovers int
	RootPath  []int
	// Rebalances records every recovery re-solve in order.
	Rebalances []Rebalance
	// Ledger is the final delivery ledger (shared between the ranks'
	// reports; read-only).
	Ledger *fault.Ledger
	// Survivors is a communicator over the surviving ranks, rooted at
	// the final serving root, for the rest of the program to continue
	// on. It is the receiver's own communicator when nothing failed,
	// and nil for a rank that failed.
	Survivors *Comm
}

// FinalRoot returns the root that completed the scatter (the last
// entry of RootPath).
func (r *ScatterReport) FinalRoot() int { return r.RootPath[len(r.RootPath)-1] }

// ftShared is the per-scatter outcome shared by every rank's report.
type ftShared struct {
	planned, final core.Distribution
	failedRanks    []int
	retries        int
	timeouts       int
	rounds         int
	failovers      int
	rootPath       []int
	rebalances     []Rebalance
	ledger         *fault.Ledger
	sub            *World // nil when nothing failed
}

// report assembles the public report from the shared outcome.
func (sh *ftShared) report() *ScatterReport {
	return &ScatterReport{
		Planned:    sh.planned,
		Final:      sh.final,
		Failed:     sh.failedRanks,
		Retries:    sh.retries,
		Timeouts:   sh.timeouts,
		Rounds:     sh.rounds,
		Failovers:  sh.failovers,
		RootPath:   sh.rootPath,
		Rebalances: sh.rebalances,
		Ledger:     sh.ledger,
	}
}

// ftOut is the per-rank outcome of a fault-tolerant scatter.
type ftOut[T any] struct {
	chunk   []T
	spans   []Span
	failed  bool
	subRank int
	shared  *ftShared
}

// deliver outcomes.
const (
	stDelivered = iota // the items landed and were checkpointed
	stDestLost         // the destination exhausted its retries
	stRootLost         // the serving root crashed; failover required
)

// FaultTolerantScatterv distributes data from the root like Scatterv,
// but supervises every transfer against the world's fault plan:
// timed-out sends are retried with capped exponential backoff, ranks
// that crash or exhaust their retries are declared dead and their
// items re-balanced over the survivors in further scatter rounds, and
// a crash of the serving root itself triggers a deterministic
// re-election that resumes the scatter from the replicated ledger's
// last checkpoint. Ranks declared dead receive an error wrapping
// ErrRankFailed; surviving ranks receive their (possibly enlarged)
// chunk and a report with a communicator over the survivors rooted at
// the final serving root.
func FaultTolerantScatterv[T any](c *Comm, data []T, counts []int) ([]T, *ScatterReport, error) {
	type in struct {
		data   []T
		counts []int
	}
	out, err := c.rendezvous(in{data, counts}, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		origRoot := w.rootRank
		rootIn := inputs[origRoot].(in)
		counts := rootIn.counts
		if len(counts) != p {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv with %d counts for %d ranks", len(counts), p)
		}
		total := 0
		for i, n := range counts {
			if n < 0 {
				return nil, nil, nil, fmt.Errorf("mpi: scatterv count %d is negative", i)
			}
			total += n
		}
		if total > len(rootIn.data) {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv needs %d items, root has %d", total, len(rootIn.data))
		}
		plan := w.fc.plan
		pol := w.fc.policy.WithDefaults()
		np := w.fc.netplan // nil-safe: a nil plan is a clean network
		div := w.fc.divergence

		root := origRoot
		t := clocks[root]
		rootCrash, rootCrashes := plan.CrashTime(w.globalRank(root))

		alive := make([]bool, p)
		lastEnd := make([]float64, p)
		for r := range alive {
			alive[r] = true
			lastEnd[r] = clocks[r]
		}
		dead := make([]bool, p)
		recvSpans := make([][]Span, p)
		serveSpans := make([][]Span, p)

		ledger := fault.NewLedger()
		sh := &ftShared{
			planned:  append(core.Distribution(nil), counts...),
			rootPath: []int{root},
			ledger:   ledger,
		}

		observe := func(ev fault.SendEvent) {
			if w.fc.observer != nil {
				w.fc.observer(ev)
			}
		}

		// Round 1 ships the requested distribution: contiguous ranges
		// of the root's buffer, in rank order.
		assign := make([][]fault.Range, p)
		off := 0
		for r, n := range counts {
			if n > 0 {
				assign[r] = []fault.Range{{Lo: off, Hi: off + n}}
			}
			off += n
		}

		// deliver supervises the transfer of the ranges to rank r,
		// retrying under the policy. It advances the serving root's
		// port time t and reports how the attempt sequence ended. Every
		// step first resolves the serving root's own crash against the
		// simulated clock: a transfer, timeout or backoff the crash
		// instant falls inside is cut short and triggers a failover.
		deliver := func(r int, ranges []fault.Range, label string) int {
			items := fault.RangeLen(ranges)
			gr := w.globalRank(r)
			name := w.procs[r].Name
			server := w.procs[root].Name
			grServer := w.globalRank(root)
			nominal := w.serveTransfer(root, r, items, true)
			// Per-destination jitter stream: concurrent retries against
			// a flapping link must not re-synchronize on the shared
			// schedule. Stream is the identity for jitter-free policies.
			backoff := pol.Backoff.Stream(int64(gr))
			for attempt := 0; ; attempt++ {
				if rootCrashes && t >= rootCrash {
					return stRootLost
				}
				d := nominal * plan.Slowdown(gr, t) * np.Slowdown(grServer, gr, t)
				arrive := t + d
				if rootCrashes && rootCrash < arrive {
					// The server dies mid-transfer: the send is never
					// confirmed, so the destination discards the
					// partial data and the items stay in the pool.
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseComm, Start: t, End: rootCrash, Label: label + " (cut)",
					})
					observe(fault.SendEvent{
						Rank: gr, Name: name, Server: server, At: rootCrash, Items: items,
						Outcome: fault.SendAborted, Nominal: nominal,
					})
					t = rootCrash
					lastEnd[root] = t
					return stRootLost
				}
				lost := plan.Crashed(gr, arrive) || plan.DropsDuring(gr, t, arrive) ||
					np.CutDuring(grServer, gr, t, arrive)
				if !lost {
					serveSpans[root] = append(serveSpans[root], Span{Phase: PhaseComm, Start: t, End: arrive, Label: label})
					start, end := t, arrive
					if clocks[r] > start {
						start = clocks[r]
					}
					if clocks[r] > end {
						end = clocks[r]
					}
					recvSpans[r] = append(recvSpans[r], Span{Phase: PhaseComm, Start: start, End: end, Label: label})
					if end > lastEnd[r] {
						lastEnd[r] = end
					}
					for _, rg := range ranges {
						ledger.Deliver(r, rg, arrive)
					}
					ledger.ReplicateHolders()
					observe(fault.SendEvent{
						Rank: gr, Name: name, Server: server, At: arrive, Items: items,
						Outcome: fault.SendDelivered, Nominal: nominal, Actual: d,
					})
					if div != nil {
						div.Observe(nominal, d)
					}
					t = arrive
					lastEnd[root] = t
					return stDelivered
				}
				tout := t + pol.Timeout
				if rootCrashes && rootCrash < tout {
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseTimeout, Start: t, End: rootCrash,
						Label: fmt.Sprintf("timeout→%s (cut)", name),
					})
					t = rootCrash
					lastEnd[root] = t
					return stRootLost
				}
				sh.timeouts++
				serveSpans[root] = append(serveSpans[root], Span{
					Phase: PhaseTimeout, Start: t, End: tout,
					Label: fmt.Sprintf("timeout→%s #%d", name, attempt+1),
				})
				t = tout
				lastEnd[root] = t
				observe(fault.SendEvent{
					Rank: gr, Name: name, Server: server, At: t, Items: items,
					Outcome: fault.SendTimedOut, Nominal: nominal,
				})
				if div != nil {
					div.ObserveFailure()
				}
				if attempt >= pol.MaxRetries {
					return stDestLost
				}
				sh.retries++
				wait := backoff.Delay(attempt)
				if wait > 0 {
					bend := t + wait
					if rootCrashes && rootCrash < bend {
						serveSpans[root] = append(serveSpans[root], Span{
							Phase: PhaseBackoff, Start: t, End: rootCrash,
							Label: fmt.Sprintf("backoff→%s (cut)", name),
						})
						t = rootCrash
						lastEnd[root] = t
						return stRootLost
					}
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseBackoff, Start: t, End: bend,
						Label: fmt.Sprintf("backoff→%s", name),
					})
					t = bend
					lastEnd[root] = t
				}
			}
		}

		allLost := false
		roundMode := "" // how the current round's assignments were computed
		for round := 1; ; round++ {
			sh.rounds = round
			// Serve the round's recipients in rank order over the
			// serving root's single port.
			failover := false
			for r := 0; r < p && !failover; r++ {
				if r == root || !alive[r] || len(assign[r]) == 0 {
					continue
				}
				var label string
				switch {
				case roundMode == RebalanceDiffuse:
					label = fmt.Sprintf("diffuse→%s", w.procs[r].Name)
				case root != origRoot:
					label = fmt.Sprintf("resume→%s", w.procs[r].Name)
				case round > 1:
					label = fmt.Sprintf("rebalance→%s", w.procs[r].Name)
				default:
					label = fmt.Sprintf("send→%s", w.procs[r].Name)
				}
				switch deliver(r, assign[r], label) {
				case stDelivered:
					assign[r] = nil
				case stDestLost:
					alive[r] = false // keep assign[r] for reclaiming
				case stRootLost:
					failover = true
				}
			}
			if !failover {
				if rootCrashes && rootCrash <= t {
					// The root dies before claiming its own share /
					// confirming completion.
					failover = true
				} else if len(assign[root]) > 0 {
					// The root's own share ships for free once the
					// port is idle.
					for _, rg := range assign[root] {
						ledger.Deliver(root, rg, t)
					}
					ledger.ReplicateHolders()
					assign[root] = nil
				}
			}
			if failover {
				alive[root] = false
			}

			// Sweep for crashes up to the port's current time: a rank
			// that received its chunk and then died takes the data down
			// with it, so its items re-enter the pool too.
			for r := 0; r < p; r++ {
				if alive[r] && r != root && plan.Crashed(w.globalRank(r), t) {
					alive[r] = false
				}
			}
			var pool []fault.Range
			for r := 0; r < p; r++ {
				if dead[r] || alive[r] {
					continue
				}
				dead[r] = true
				pool = append(pool, ledger.Reclaim(r, t)...)
				pool = append(pool, assign[r]...)
				assign[r] = nil
			}
			if failover {
				// Unsent assignments return to the pool: the successor
				// re-reads them from the scatter's durable input.
				for r := 0; r < p; r++ {
					if len(assign[r]) > 0 {
						pool = append(pool, assign[r]...)
						assign[r] = nil
					}
				}
				var survivors []int
				for r := 0; r < p; r++ {
					if alive[r] {
						survivors = append(survivors, r)
					}
				}
				if len(survivors) == 0 {
					allLost = true
					break
				}
				// Deterministic re-election: lowest survivor holding a
				// fresh ledger copy. The election starts when the
				// survivors notice the silence and ends after the
				// agreement round. Under an active partition the
				// electorate skips candidates cut off from the majority
				// of survivors — a fresh ledger on an unreachable site
				// cannot serve anyone.
				var eligible func(int) bool
				if np.HasFaults() {
					electAt := t
					eligible = func(cand int) bool {
						gc := w.globalRank(cand)
						reach := 0
						for _, s := range survivors {
							if s != cand && np.Reachable(gc, w.globalRank(s), electAt) {
								reach++
							}
						}
						return 2*reach >= len(survivors)-1
					}
				}
				newRoot, _ := ledger.ElectRootEligible(survivors, eligible)
				electStart := t
				if clocks[newRoot] > electStart {
					electStart = clocks[newRoot]
				}
				if lastEnd[newRoot] > electStart {
					electStart = lastEnd[newRoot]
				}
				electEnd := electStart + pol.Election
				serveSpans[newRoot] = append(serveSpans[newRoot], Span{
					Phase: PhaseFailover, Start: electStart, End: electEnd,
					Label: fmt.Sprintf("failover %s→%s", w.procs[root].Name, w.procs[newRoot].Name),
				})
				sh.failovers++
				root = newRoot
				sh.rootPath = append(sh.rootPath, root)
				rootCrash, rootCrashes = plan.CrashTime(w.globalRank(root))
				t = electEnd
				lastEnd[root] = electEnd
				ledger.Replicate(root)
			}
			pool = fault.CoalesceRanges(pool)
			if len(pool) == 0 {
				if failover {
					continue // nothing pending; next round just confirms
				}
				break
			}

			// Re-solve the distribution problem over the survivors, in
			// service order with the root last (its share is free), and
			// ship the losses in another round.
			var survivors []int
			for r := 0; r < p; r++ {
				if r != root && alive[r] {
					survivors = append(survivors, r)
				}
			}
			survivors = append(survivors, root)
			n := fault.RangeLen(pool)
			solveProcs := w.rebalanceProcs(survivors)

			// Decide the re-solve mode. Structural evidence first: a
			// survivor the serving root cannot currently reach pins the
			// detector degraded (an exact DP would plan transfers over a
			// cut); a fully healed network releases the pin and lets the
			// sample vote recover on its own.
			if div != nil && np.HasFaults() {
				if np.Healed(t) {
					if div.Forced() {
						div.Heal()
					}
				} else {
					grServer := w.globalRank(root)
					for _, s := range survivors {
						if s != root && !np.Reachable(grServer, w.globalRank(s), t) {
							div.ForceDegraded()
							break
						}
					}
				}
			}
			degraded := div != nil && div.Degraded()

			dist := core.Uniform(len(survivors), n)
			mode := RebalanceUniform
			var liveAdj [][]int
			if degraded {
				// Diffusion fallback: balance over the live adjacency
				// only. Survivors cut off from the root's component get
				// nothing this round — their items would die with the
				// retries — and rejoin via later rounds after the heal.
				adj := w.liveAdjacency(survivors, t)
				if res, _, err := core.DiffusePool(solveProcs, adj, n); err == nil {
					dist = res.Distribution
					mode = RebalanceDiffuse
					liveAdj = adj
				}
			} else if res, err := w.Engine().Solve(solveProcs, n); err == nil {
				dist = res.Distribution
				mode = RebalanceExact
			}
			roundMode = mode
			parts := fault.SplitRanges(pool, dist)
			for pos, r := range survivors {
				assign[r] = parts[pos]
			}
			sh.rebalances = append(sh.rebalances, Rebalance{
				Round: round + 1, Root: root, Items: n,
				Ranks:     append([]int(nil), survivors...),
				Procs:     solveProcs,
				Dist:      append(core.Distribution(nil), dist...),
				Mode:      mode,
				Adjacency: liveAdj,
			})
		}

		// Assemble the shared report and per-rank outcomes.
		sh.final = make(core.Distribution, p)
		for r := 0; r < p; r++ {
			sh.final[r] = ledger.Held(r)
			if dead[r] || allLost {
				sh.failedRanks = append(sh.failedRanks, r)
			}
		}
		sort.Ints(sh.failedRanks)
		var subRanks []int
		subRank := make([]int, p)
		if len(sh.failedRanks) > 0 && !allLost {
			for r := 0; r < p; r++ {
				if !dead[r] {
					subRank[r] = len(subRanks)
					subRanks = append(subRanks, r)
				}
			}
			rootPos := 0
			for i, r := range subRanks {
				if r == root {
					rootPos = i
				}
			}
			sh.sub = w.subWorld(subRanks, rootPos)
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for r := 0; r < p; r++ {
			commStarts[r] = clocks[r]
			outClocks[r] = clocks[r]
			o := ftOut[T]{shared: sh}
			spans := append(append([]Span(nil), recvSpans[r]...), serveSpans[r]...)
			if dead[r] || allLost {
				o.failed = true
				start := clocks[r]
				if lastEnd[r] > start {
					start = lastEnd[r]
				}
				if ct, ok := plan.CrashTime(w.globalRank(r)); ok && ct > start {
					spans = append(spans, Span{Phase: PhaseIdle, Start: start, End: ct, Label: "crashed"})
				}
			} else {
				o.chunk = chunkOf(rootIn.data, ledger.Holdings(r))
				if sh.sub != nil {
					o.subRank = subRank[r]
				}
			}
			o.spans = spans
			outputs[r] = o
		}
		// Mark the dead so the rest of the program fails fast instead
		// of deadlocking on ranks that will never arrive.
		for _, r := range sh.failedRanks {
			w.markFailed(r, fmt.Errorf("mpi: rank %d lost to injected fault: %w", r, ErrRankFailed))
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	o := out.(ftOut[T])
	c.playSpans(o.spans)
	sh := o.shared
	rep := sh.report()
	if o.failed {
		return nil, rep, fmt.Errorf("mpi: rank %d: %w", c.rank, ErrRankFailed)
	}
	c.stats.ItemsReceived += len(o.chunk)
	if sh.sub != nil {
		rep.Survivors = &Comm{world: sh.sub, rank: o.subRank, clock: c.clock, stats: c.stats}
	} else {
		rep.Survivors = c
	}
	return o.chunk, rep, nil
}

// chunkOf assembles a rank's chunk from its ledger holdings. A single
// contiguous range aliases the root's buffer (the failure-free
// zero-copy path); fragmented holdings are concatenated into a fresh
// slice, ordered by original item index.
func chunkOf[T any](data []T, holdings []fault.Range) []T {
	switch len(holdings) {
	case 0:
		return nil
	case 1:
		return data[holdings[0].Lo:holdings[0].Hi]
	}
	chunk := make([]T, 0, fault.RangeLen(holdings))
	for _, rg := range holdings {
		chunk = append(chunk, data[rg.Lo:rg.Hi]...)
	}
	return chunk
}

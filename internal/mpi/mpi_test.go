package mpi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/schedule"
)

// world4 builds a 4-rank world with rank 3 as root (free link).
func world4(t *testing.T) *World {
	t.Helper()
	procs := []core.Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P2", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "P3", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 3}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
	w, err := NewWorld(procs, 3)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(nil, 0); err == nil {
		t.Error("empty world accepted")
	}
	procs := []core.Processor{{Name: "x", Comm: cost.Zero, Comp: cost.Zero}}
	if _, err := NewWorld(procs, 5); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := NewWorld(procs, -1); err == nil {
		t.Error("negative root accepted")
	}
}

func TestScattervTimingMatchesSchedule(t *testing.T) {
	// The paper's program: scatter then compute. Rank clocks must
	// reproduce the analytic Eq. (1) timeline exactly.
	w := world4(t)
	dist := core.Distribution{2, 2, 2, 2}
	data := make([]int, 8)
	for i := range data {
		data[i] = i
	}
	stats, err := Run(w, func(c *Comm) error {
		var buf []int
		var err error
		if c.IsRoot() {
			buf, err = Scatterv(c, data, []int(dist))
		} else {
			buf, err = Scatterv[int](c, nil, nil)
		}
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Analytic reference: note rank order 0..3 with root last matches
	// the processor order.
	procs := []core.Processor{w.procs[0], w.procs[1], w.procs[2], w.procs[3]}
	want, err := schedule.Build(procs, dist)
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if math.Abs(s.Finish-want.Procs[r].Finish()) > 1e-9 {
			t.Errorf("rank %d finish = %g, want %g", r, s.Finish, want.Procs[r].Finish())
		}
	}
	if math.Abs(Makespan(stats)-want.Makespan) > 1e-9 {
		t.Errorf("makespan = %g, want %g", Makespan(stats), want.Makespan)
	}
}

func TestScattervDeliversCorrectChunks(t *testing.T) {
	w := world4(t)
	data := []int{10, 11, 12, 13, 14, 15}
	counts := []int{1, 2, 0, 3}
	got := make([][]int, 4)
	_, err := Run(w, func(c *Comm) error {
		var buf []int
		var err error
		if c.IsRoot() {
			buf, err = Scatterv(c, data, counts)
		} else {
			buf, err = Scatterv[int](c, nil, nil)
		}
		if err != nil {
			return err
		}
		got[c.Rank()] = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{10}, {11, 12}, {}, {13, 14, 15}}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d got %v, want %v", r, got[r], want[r])
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d got %v, want %v", r, got[r], want[r])
			}
		}
	}
}

func TestScatterEqualShares(t *testing.T) {
	w := world4(t)
	data := make([]int, 8)
	for i := range data {
		data[i] = i
	}
	items := make([]int, 4)
	_, err := Run(w, func(c *Comm) error {
		var buf []int
		var err error
		if c.IsRoot() {
			buf, err = Scatter(c, data, 2)
		} else {
			buf, err = Scatter[int](c, nil, 2)
		}
		if err != nil {
			return err
		}
		items[c.Rank()] = len(buf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, n := range items {
		if n != 2 {
			t.Errorf("rank %d received %d items, want 2", r, n)
		}
	}
}

func TestScattervErrors(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		if c.IsRoot() {
			_, err := Scatterv(c, []int{1, 2}, []int{1, 1, 1, 1}) // needs 4, has 2
			return err
		}
		_, err := Scatterv[int](c, nil, nil)
		return err
	})
	if err == nil {
		t.Error("oversized scatter accepted")
	}

	w2 := world4(t)
	_, err = Run(w2, func(c *Comm) error {
		if c.IsRoot() {
			_, err := Scatterv(c, []int{1, 2}, []int{1, -1, 1, 1})
			return err
		}
		_, err := Scatterv[int](c, nil, nil)
		return err
	})
	if err == nil {
		t.Error("negative count accepted")
	}
}

func TestGathervConcatenatesInRankOrder(t *testing.T) {
	w := world4(t)
	var rootGot []int
	_, err := Run(w, func(c *Comm) error {
		contrib := []int{c.Rank() * 10, c.Rank()*10 + 1}
		out, err := Gatherv(c, contrib)
		if err != nil {
			return err
		}
		if c.IsRoot() {
			rootGot = out
		} else if out != nil {
			t.Errorf("non-root rank %d received gather output", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 10, 11, 20, 21, 30, 31}
	if len(rootGot) != len(want) {
		t.Fatalf("gathered %v, want %v", rootGot, want)
	}
	for i := range want {
		if rootGot[i] != want[i] {
			t.Fatalf("gathered %v, want %v", rootGot, want)
		}
	}
}

func TestBcastDeliversToAll(t *testing.T) {
	w := world4(t)
	payload := []string{"model", "v1"}
	got := make([][]string, 4)
	_, err := Run(w, func(c *Comm) error {
		var in []string
		if c.IsRoot() {
			in = payload
		}
		out, err := Bcast(c, in)
		if err != nil {
			return err
		}
		got[c.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range got {
		if len(got[r]) != 2 || got[r][0] != "model" {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestBcastSerializedTiming(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{1, 2}
		}
		_, err := Bcast(c, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Root port: 2 items to P1 (alpha 1) -> t=2; to P2 (alpha 2) ->
	// t=6; to P3 (alpha 3) -> t=12.
	wants := []float64{2, 6, 12, 12}
	for r, want := range wants {
		if math.Abs(stats[r].Finish-want) > 1e-9 {
			t.Errorf("rank %d finish = %g, want %g", r, stats[r].Finish, want)
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		c.Charge(float64(c.Rank() + 1)) // finish at 1, 2, 3, 4
		return Barrier(c)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.Finish != 4 {
			t.Errorf("rank %d finish = %g, want 4", r, s.Finish)
		}
	}
	// Idle time of rank 0 is 3 seconds.
	if math.Abs(stats[0].IdleTime-3) > 1e-9 {
		t.Errorf("rank 0 idle = %g, want 3", stats[0].IdleTime)
	}
}

func TestReduceSum(t *testing.T) {
	w := world4(t)
	var rootVal float64
	_, err := Run(w, func(c *Comm) error {
		v, err := Reduce(c, float64(c.Rank()+1), Sum)
		if err != nil {
			return err
		}
		if c.IsRoot() {
			rootVal = v
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rootVal != 10 {
		t.Errorf("reduce sum = %g, want 10", rootVal)
	}
}

func TestAllreduceMax(t *testing.T) {
	w := world4(t)
	got := make([]float64, 4)
	_, err := Run(w, func(c *Comm) error {
		v, err := Allreduce(c, float64(c.Rank()), Max)
		if err != nil {
			return err
		}
		got[c.Rank()] = v
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != 3 {
			t.Errorf("rank %d allreduce = %g, want 3", r, v)
		}
	}
}

func TestSendRecvVirtualTime(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// 3 items to root over alpha-1 link: send completes at 3.
			return c.Send(3, []int{1, 2, 3}, 3)
		case 3:
			data, err := c.Recv(0)
			if err != nil {
				return err
			}
			if len(data.([]int)) != 3 {
				t.Errorf("root received %v", data)
			}
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[0].Finish-3) > 1e-9 {
		t.Errorf("sender finish = %g, want 3", stats[0].Finish)
	}
	if math.Abs(stats[3].Finish-3) > 1e-9 {
		t.Errorf("receiver finish = %g, want 3 (idles until arrival)", stats[3].Finish)
	}
}

func TestSendRecvFIFOOrder(t *testing.T) {
	w := world4(t)
	var got []int
	_, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			for i := 0; i < 5; i++ {
				if err := c.Send(3, i, 1); err != nil {
					return err
				}
			}
		case 3:
			for i := 0; i < 5; i++ {
				v, err := c.Recv(0)
				if err != nil {
					return err
				}
				got = append(got, v.(int))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("messages reordered: %v", got)
		}
	}
}

func TestSendRecvRangeErrors(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(99, nil, 1); err == nil {
				t.Error("send out of range accepted")
			}
			if _, err := c.Recv(-2); err == nil {
				t.Error("recv out of range accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		return nil
	})
	if err == nil {
		t.Error("panic not propagated")
	}
}

func TestStatsPhaseAccounting(t *testing.T) {
	w := world4(t)
	dist := core.Distribution{4, 4, 4, 4}
	data := make([]float64, 16)
	stats, err := Run(w, func(c *Comm) error {
		var buf []float64
		var err error
		if c.IsRoot() {
			buf, err = Scatterv(c, data, []int(dist))
		} else {
			buf, err = Scatterv[float64](c, nil, nil)
		}
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if s.ItemsReceived != 4 {
			t.Errorf("rank %d received %d items, want 4", r, s.ItemsReceived)
		}
		total := s.CommTime + s.CompTime + s.IdleTime
		if math.Abs(total-s.Finish) > 1e-9 {
			t.Errorf("rank %d phases sum to %g, finish is %g", r, total, s.Finish)
		}
	}
	// Rank 1 idles while rank 0 is served (4 items * alpha 1 = 4s),
	// then receives for 8s, computes for 4s.
	if math.Abs(stats[1].IdleTime-4) > 1e-9 ||
		math.Abs(stats[1].CommTime-8) > 1e-9 ||
		math.Abs(stats[1].CompTime-4) > 1e-9 {
		t.Errorf("rank 1 phases = idle %g comm %g comp %g, want 4/8/4",
			stats[1].IdleTime, stats[1].CommTime, stats[1].CompTime)
	}
}

func TestChargeNegativeIsIgnored(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		c.Charge(-5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range stats {
		if s.Finish != 0 {
			t.Errorf("negative charge advanced the clock to %g", s.Finish)
		}
	}
}

func TestLateReceiverGetsBufferedData(t *testing.T) {
	// A rank that computes before joining the scatter should not pay
	// the transfer time again if its data already landed.
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		if c.Rank() == 2 {
			c.Charge(1000) // very late to the party
		}
		var buf []int
		var err error
		if c.IsRoot() {
			buf, err = Scatterv(c, make([]int, 4), []int{1, 1, 1, 1})
		} else {
			buf, err = Scatterv[int](c, nil, nil)
		}
		if err != nil {
			return err
		}
		_ = buf
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2's data arrived at 1+2+3 = 6 << 1000; it proceeds at 1000.
	if math.Abs(stats[2].Finish-1000) > 1e-9 {
		t.Errorf("late receiver finish = %g, want 1000", stats[2].Finish)
	}
}

func TestMultipleCollectivesInSequence(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		for round := 0; round < 5; round++ {
			var buf []int
			var err error
			if c.IsRoot() {
				buf, err = Scatterv(c, make([]int, 8), []int{2, 2, 2, 2})
			} else {
				buf, err = Scatterv[int](c, nil, nil)
			}
			if err != nil {
				return err
			}
			c.ChargeItems(len(buf))
			if err := Barrier(c); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleRankWorld(t *testing.T) {
	procs := []core.Processor{{Name: "solo", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}}}
	w, err := NewWorld(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(w, func(c *Comm) error {
		buf, err := Scatterv(c, []int{1, 2, 3}, []int{3})
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Finish != 3 {
		t.Errorf("solo finish = %g, want 3", stats[0].Finish)
	}
}

package mpi

import (
	"fmt"
	"math"
)

// This file implements binomial-tree collectives, the MPICH default
// the paper contrasts with flat trees in its introduction: "While
// MPICH always use a binomial tree to propagate data, MPICH-G2 is able
// to switch to a flat tree broadcast when network latency is high."
// On the star-shaped grid model, a relay between two non-root nodes
// pays both legs of the star, which is exactly why naive binomial
// trees lose on wide-area topologies — the effect the experiment
// driver quantifies.

// binomialSchedule captures the arrival bookkeeping of a binomial
// operation over relative ids (0 = root).
type binomialSchedule struct {
	p     int
	root  int
	ready []float64 // time the node holds its data, by relative id
	port  []float64 // node's outbound port next-free time
}

func newBinomialSchedule(p, root int, rootReady float64) *binomialSchedule {
	s := &binomialSchedule{
		p:     p,
		root:  root,
		ready: make([]float64, p),
		port:  make([]float64, p),
	}
	for i := range s.ready {
		s.ready[i] = math.Inf(1)
		s.port[i] = math.Inf(1)
	}
	s.ready[0] = rootReady
	s.port[0] = rootReady
	return s
}

// abs maps a relative id back to an absolute rank.
func (s *binomialSchedule) abs(rel int) int { return (rel + s.root) % s.p }

// send records a transfer of duration d from rel to child: the
// sender's port serializes, the child becomes ready at arrival.
func (s *binomialSchedule) send(rel, child int, d float64) {
	if s.port[rel] < s.ready[rel] {
		s.port[rel] = s.ready[rel]
	}
	arrive := s.port[rel] + d
	s.port[rel] = arrive
	s.ready[child] = arrive
	s.port[child] = arrive
}

// BcastBinomial broadcasts the root's data to every rank along a
// binomial tree: in round k (k = 1, 2, 4, ...), every node with
// relative id < k that already holds the data forwards it to id + k.
// log2(p) rounds instead of the flat tree's p-1 serial sends — but
// each relay transfer between non-root nodes pays both star legs.
func BcastBinomial[T any](c *Comm, data []T) ([]T, error) {
	out, err := c.rendezvous(data, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		payload := inputs[root].([]T)
		n := len(payload)

		s := newBinomialSchedule(p, root, clocks[root])
		for k := 1; k < p; k <<= 1 {
			for rel := 0; rel < k; rel++ {
				child := rel + k
				if child >= p {
					continue
				}
				d := w.transferTime(s.abs(rel), s.abs(child), n)
				s.send(rel, child, d)
			}
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for rel := 0; rel < p; rel++ {
			r := s.abs(rel)
			end := s.port[rel] // includes forwarding work
			if clocks[r] > end {
				end = clocks[r]
			}
			commStarts[r] = clocks[r]
			outClocks[r] = end
			outputs[r] = payload
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	return out.([]T), nil
}

// ScattervBinomial distributes data by counts along a binomial tree:
// the root first ships whole sub-tree blocks to sub-tree roots, which
// recursively split them (the MPICH scatter algorithm). Each node
// therefore receives its entire subtree's items before forwarding —
// cheaper in rounds (log2 p), but moving aggregated blocks over slow
// relay links can lose to the flat rank-order scatter of Scatterv on
// heterogeneous stars.
func ScattervBinomial[T any](c *Comm, data []T, counts []int) ([]T, error) {
	type in struct {
		data   []T
		counts []int
	}
	out, err := c.rendezvous(in{data, counts}, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		rootIn := inputs[root].(in)
		counts = rootIn.counts
		if len(counts) != p {
			return nil, nil, nil, fmt.Errorf("mpi: binomial scatterv with %d counts for %d ranks", len(counts), p)
		}
		total := 0
		for i, n := range counts {
			if n < 0 {
				return nil, nil, nil, fmt.Errorf("mpi: binomial scatterv count %d is negative", i)
			}
			total += n
		}
		if total > len(rootIn.data) {
			return nil, nil, nil, fmt.Errorf("mpi: binomial scatterv needs %d items, root has %d", total, len(rootIn.data))
		}

		// Chunks by absolute rank (same layout as the flat Scatterv).
		chunks := make([][]T, p)
		off := 0
		for i, n := range counts {
			chunks[i] = rootIn.data[off : off+n]
			off += n
		}

		// relCount[rel] = items destined for relative id rel.
		relCount := make([]int, p)
		for rel := 0; rel < p; rel++ {
			relCount[rel] = counts[(rel+root)%p]
		}
		// blockItems(lo, hi) = items for relative ids in [lo, hi).
		blockItems := func(lo, hi int) int {
			if hi > p {
				hi = p
			}
			sum := 0
			for rel := lo; rel < hi; rel++ {
				sum += relCount[rel]
			}
			return sum
		}

		// K = smallest power of two >= p.
		K := 1
		for K < p {
			K <<= 1
		}
		s := newBinomialSchedule(p, root, clocks[root])
		for k := K / 2; k >= 1; k >>= 1 {
			// Senders in round k are the block holders: relative ids
			// divisible by 2k. Each passes the upper half of its block
			// (relative ids [rel+k, rel+2k)) to rel+k.
			for rel := 0; rel+k < p; rel += 2 * k {
				child := rel + k
				items := blockItems(child, child+k)
				d := w.transferTime(s.abs(rel), s.abs(child), items)
				s.send(rel, child, d)
			}
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for rel := 0; rel < p; rel++ {
			r := s.abs(rel)
			end := s.port[rel]
			if clocks[r] > end {
				end = clocks[r]
			}
			commStarts[r] = clocks[r]
			outClocks[r] = end
			outputs[r] = chunks[r]
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	chunk := out.([]T)
	c.stats.ItemsReceived += len(chunk)
	return chunk, nil
}

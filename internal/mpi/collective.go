package mpi

import (
	"fmt"
	"sync"
)

// collective is the shared state of one collective operation instance.
// All ranks calling the same (per-rank ordered) collective meet here;
// the last arriver computes the outcome for everyone. A collective can
// also be completed early — with an error — when a rank fails while
// peers are parked inside it (see World.markFailed).
type collective struct {
	mu        sync.Mutex
	arrived   int           //scatterlint:guardedby mu
	clocks    []float64     //scatterlint:guardedby mu
	inputs    []any         //scatterlint:guardedby mu
	completed bool          //scatterlint:guardedby mu
	done      chan struct{} //scatterlint:guardedby immutable — allocated with the collective

	commStarts []float64 //scatterlint:guardedby immutable — written once under mu before close(done)
	outClocks  []float64 //scatterlint:guardedby immutable — written once under mu before close(done)
	outputs    []any     //scatterlint:guardedby immutable — written once under mu before close(done)
	err        error     //scatterlint:guardedby immutable — written once under mu before close(done)
}

// finish publishes the collective's outcome exactly once and releases
// every waiter. Later calls are no-ops, so a rank failure racing the
// last arriver is safe: first writer wins.
func (st *collective) finish(commStarts, outClocks []float64, outputs []any, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.completed {
		return
	}
	st.completed = true
	st.commStarts, st.outClocks, st.outputs, st.err = commStarts, outClocks, outputs, err
	close(st.done)
}

// fail completes the collective with an error.
func (st *collective) fail(err error) { st.finish(nil, nil, nil, err) }

// collectiveOp computes the result of a collective once every rank has
// arrived: given per-rank clocks and inputs it returns, per rank, the
// time communication starts (idle before), the completion time, and the
// output value.
type collectiveOp func(w *World, clocks []float64, inputs []any) (commStarts, outClocks []float64, outputs []any, err error)

// rendezvous joins collective number seq, blocks until all ranks have
// arrived, and applies the op's outcome to this rank's clock and stats.
// If a rank has already failed, entering ranks fail fast with
// ErrRankFailed — a dead peer will never arrive, so waiting for it
// would deadlock the survivors.
func (c *Comm) rendezvous(input any, op collectiveOp) (any, error) {
	seq := c.nextCollective
	c.nextCollective++
	w := c.world
	p := w.Size()

	w.mu.Lock()
	if len(w.failed) > 0 {
		w.mu.Unlock()
		r, _ := w.firstFailed()
		return nil, fmt.Errorf("mpi: rank %d entered a collective after rank %d failed: %w", c.rank, r, ErrRankFailed)
	}
	st, ok := w.collectives[seq]
	if !ok {
		st = &collective{
			clocks: make([]float64, p),
			inputs: make([]any, p),
			done:   make(chan struct{}),
		}
		w.collectives[seq] = st
	}
	w.mu.Unlock()

	st.mu.Lock()
	last := false
	if !st.completed {
		st.clocks[c.rank] = c.clock
		st.inputs[c.rank] = input
		st.arrived++
		last = st.arrived == p
	}
	st.mu.Unlock()

	if last {
		// Free the slot before running the op: ops that themselves mark
		// ranks failed (the fault-tolerant scatter) must not have
		// markFailed abort the very collective computing the outcome.
		// Sequence numbers keep advancing, so the slot is never reused.
		w.mu.Lock()
		delete(w.collectives, seq)
		w.mu.Unlock()
		//scatterlint:ignore lockguard the last arriver reads alone: all p ranks have stored their slot and parked on done, and finish() rejects late mutation via completed
		cs, oc, outs, err := op(w, st.clocks, st.inputs)
		st.finish(cs, oc, outs, err)
	}
	<-st.done
	if st.err != nil {
		return nil, st.err
	}
	c.advanceTo(st.commStarts[c.rank], PhaseIdle)
	c.advanceTo(st.outClocks[c.rank], PhaseComm)
	return st.outputs[c.rank], nil
}

// Scatterv distributes data from the root according to counts: rank i
// receives counts[i] items. Only the root's data and counts are
// consulted (as in MPI, where they are "significant only at root");
// every rank receives its slice and the timing of the paper's
// single-port, rank-ordered model. The returned slice aliases the
// root's buffer (no copy), mirroring zero-copy scatter of a shared
// address space.
func Scatterv[T any](c *Comm, data []T, counts []int) ([]T, error) {
	type in struct {
		data   []T
		counts []int
	}
	out, err := c.rendezvous(in{data, counts}, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		rootIn := inputs[root].(in)
		counts := rootIn.counts
		if len(counts) != p {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv with %d counts for %d ranks", len(counts), p)
		}
		total := 0
		for i, n := range counts {
			if n < 0 {
				return nil, nil, nil, fmt.Errorf("mpi: scatterv count %d is negative", i)
			}
			total += n
		}
		if total > len(rootIn.data) {
			return nil, nil, nil, fmt.Errorf("mpi: scatterv needs %d items, root has %d", total, len(rootIn.data))
		}

		// Slice the root buffer by rank.
		chunks := make([][]T, p)
		off := 0
		for i, n := range counts {
			chunks[i] = rootIn.data[off : off+n]
			off += n
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)

		// Single-port root, destinations served in rank order.
		t := clocks[root]
		commStarts[root] = clocks[root]
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			d := w.transferTime(root, r, counts[r])
			arrive := t + d
			t = arrive
			// The receiver idles until its data starts flowing, then
			// receives until the stream completes. A receiver that
			// shows up after the eager transfer already landed gets
			// the buffered data immediately.
			start := arrive - d
			if clocks[r] > start {
				start = clocks[r]
			}
			end := arrive
			if clocks[r] > end {
				end = clocks[r]
			}
			commStarts[r] = start
			outClocks[r] = end
			outputs[r] = chunks[r]
		}
		// The root's port is busy until the last send completes; only
		// then does it turn to its own share (which costs nothing to
		// "ship").
		outClocks[root] = t
		outputs[root] = chunks[root]
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	chunk := out.([]T)
	c.stats.ItemsReceived += len(chunk)
	return chunk, nil
}

// Scatter distributes equal shares of count items to every rank, the
// MPI_Scatter of the original application. The root must hold at least
// count*Size() items.
func Scatter[T any](c *Comm, data []T, count int) ([]T, error) {
	if count < 0 {
		return nil, fmt.Errorf("mpi: scatter count %d is negative", count)
	}
	counts := make([]int, c.Size())
	for i := range counts {
		counts[i] = count
	}
	return Scatterv(c, data, counts)
}

// Gatherv collects every rank's contribution at the root, concatenated
// in rank order. The root's inbound port is single-port and serves
// ranks in order; a sender completes when the root has drained its
// data (rendezvous semantics). Non-root ranks receive nil.
func Gatherv[T any](c *Comm, contrib []T) ([]T, error) {
	out, err := c.rendezvous(contrib, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)

		var gathered []T
		t := clocks[root]
		commStarts[root] = clocks[root]
		for r := 0; r < p; r++ {
			data := inputs[r].([]T)
			if r == root {
				continue
			}
			d := w.transferTime(r, root, len(data))
			start := t
			if clocks[r] > start {
				start = clocks[r]
			}
			end := start + d
			t = end
			commStarts[r] = start
			outClocks[r] = end
		}
		// Concatenate in rank order regardless of arrival order.
		for r := 0; r < p; r++ {
			gathered = append(gathered, inputs[r].([]T)...)
		}
		outClocks[root] = t
		outputs[root] = gathered
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	if out == nil {
		return nil, nil
	}
	return out.([]T), nil
}

// Bcast sends the root's data to every rank, serialized in rank order
// over the root's single port (the "flat tree" the paper mentions
// MPICH-G2 switching to under high latency). The returned slice
// aliases the root's buffer.
func Bcast[T any](c *Comm, data []T) ([]T, error) {
	out, err := c.rendezvous(data, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		payload := inputs[root].([]T)
		n := len(payload)
		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)

		t := clocks[root]
		commStarts[root] = clocks[root]
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			d := w.transferTime(root, r, n)
			arrive := t + d
			t = arrive
			start := arrive - d
			if clocks[r] > start {
				start = clocks[r]
			}
			end := arrive
			if clocks[r] > end {
				end = clocks[r]
			}
			commStarts[r] = start
			outClocks[r] = end
			outputs[r] = payload
		}
		outClocks[root] = t
		outputs[root] = payload
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, err
	}
	return out.([]T), nil
}

// Barrier synchronizes all ranks: everyone resumes at the latest clock.
func Barrier(c *Comm) error {
	_, err := c.rendezvous(nil, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		max := 0.0
		for _, t := range clocks {
			if t > max {
				max = t
			}
		}
		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		for i := range outClocks {
			commStarts[i] = max // all waiting is idle time
			outClocks[i] = max
		}
		return commStarts, outClocks, make([]any, p), nil
	})
	return err
}

// ReduceOp folds two float64 values.
type ReduceOp func(a, b float64) float64

// Sum, Min and Max are the usual reduction operators.
var (
	Sum ReduceOp = func(a, b float64) float64 { return a + b }
	Min ReduceOp = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	Max ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// Reduce folds every rank's value at the root with op, using
// gather-like timing for one item per rank. Non-root ranks receive 0.
func Reduce(c *Comm, value float64, op ReduceOp) (float64, error) {
	out, err := c.rendezvous(value, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		root := w.rootRank
		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)

		acc := inputs[root].(float64)
		t := clocks[root]
		commStarts[root] = clocks[root]
		for r := 0; r < p; r++ {
			if r == root {
				continue
			}
			d := w.transferTime(r, root, 1)
			start := t
			if clocks[r] > start {
				start = clocks[r]
			}
			end := start + d
			t = end
			commStarts[r] = start
			outClocks[r] = end
			acc = op(acc, inputs[r].(float64))
			outputs[r] = 0.0
		}
		outClocks[root] = t
		outputs[root] = acc
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return 0, err
	}
	return out.(float64), nil
}

// Allreduce folds every rank's value and delivers the result to all
// ranks (a Reduce followed by a single-value Bcast).
func Allreduce(c *Comm, value float64, op ReduceOp) (float64, error) {
	reduced, err := Reduce(c, value, op)
	if err != nil {
		return 0, err
	}
	vals, err := Bcast(c, []float64{reduced})
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

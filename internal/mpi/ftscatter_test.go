package mpi

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
)

// testPolicy keeps retry timing small and deterministic.
func testPolicy() fault.Policy {
	return fault.Policy{
		Timeout:    1,
		MaxRetries: 2,
		Backoff:    fault.Backoff{Base: 0.5, Factor: 2, Cap: 2},
	}
}

// runFT runs a fault-tolerant scatter of data over the world and
// returns, per rank, the received chunk, the report, and the error.
func runFT(t *testing.T, w *World, data []int, counts []int) ([][]int, []*ScatterReport, []error, []RankStats) {
	t.Helper()
	p := w.Size()
	chunks := make([][]int, p)
	reports := make([]*ScatterReport, p)
	scatterErrs := make([]error, p)
	stats, err := Run(w, func(c *Comm) error {
		var buf []int
		var rep *ScatterReport
		var err error
		if c.IsRoot() {
			buf, rep, err = FaultTolerantScatterv(c, data, counts)
		} else {
			buf, rep, err = FaultTolerantScatterv[int](c, nil, nil)
		}
		chunks[c.Rank()], reports[c.Rank()], scatterErrs[c.Rank()] = buf, rep, err
		return nil // errors are inspected by the test, not by Run
	})
	if err != nil {
		t.Fatal(err)
	}
	return chunks, reports, scatterErrs, stats
}

// checkExactlyOnce asserts the union of the received chunks is exactly
// the original data: every item delivered once, to exactly one rank.
func checkExactlyOnce(t *testing.T, data []int, chunks [][]int) {
	t.Helper()
	var got []int
	for _, ch := range chunks {
		got = append(got, ch...)
	}
	if len(got) != len(data) {
		t.Fatalf("delivered %d items, want %d", len(got), len(data))
	}
	want := append([]int(nil), data...)
	sort.Ints(got)
	sort.Ints(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivered multiset differs at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func seqData(n int) []int {
	data := make([]int, n)
	for i := range data {
		data[i] = i
	}
	return data
}

func TestFTScattervNoFaultsMatchesScatterv(t *testing.T) {
	counts := []int{2, 2, 2, 2}
	data := seqData(8)

	plain := world4(t)
	plainStats, err := Run(plain, func(c *Comm) error {
		var buf []int
		var err error
		if c.IsRoot() {
			buf, err = Scatterv(c, data, counts)
		} else {
			buf, err = Scatterv[int](c, nil, nil)
		}
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	ft := world4(t)
	ft.SetFaultPlan(nil, testPolicy())
	p := ft.Size()
	chunks := make([][]int, p)
	reports := make([]*ScatterReport, p)
	ftStats, err := Run(ft, func(c *Comm) error {
		var buf []int
		var rep *ScatterReport
		var err error
		if c.IsRoot() {
			buf, rep, err = FaultTolerantScatterv(c, data, counts)
		} else {
			buf, rep, err = FaultTolerantScatterv[int](c, nil, nil)
		}
		if err != nil {
			return err
		}
		chunks[c.Rank()], reports[c.Rank()] = buf, rep
		if rep.Survivors != c {
			t.Errorf("rank %d: failure-free Survivors is not the rank's own comm", c.Rank())
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for r := range plainStats {
		if math.Abs(plainStats[r].Finish-ftStats[r].Finish) > 1e-9 {
			t.Errorf("rank %d finish = %g, want Scatterv's %g", r, ftStats[r].Finish, plainStats[r].Finish)
		}
	}
	checkExactlyOnce(t, data, chunks)
	rep := reports[0]
	if rep.Rounds != 1 || rep.Retries != 0 || rep.Timeouts != 0 || len(rep.Failed) != 0 {
		t.Errorf("failure-free report = %+v", rep)
	}
}

func TestFTScattervPermanentCrash(t *testing.T) {
	// Rank 1's transfer spans [2, 6] in the fault-free timeline; a crash
	// at t=5 kills every attempt, so after the retries are exhausted its
	// share is re-balanced over ranks 0, 2 and the root.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 5}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, []int{2, 2, 2, 2})

	if !errors.Is(scatterErrs[1], ErrRankFailed) {
		t.Fatalf("crashed rank error = %v, want ErrRankFailed", scatterErrs[1])
	}
	if chunks[1] != nil {
		t.Errorf("crashed rank received %d items", len(chunks[1]))
	}
	for _, r := range []int{0, 2, 3} {
		if scatterErrs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, scatterErrs[r])
		}
	}
	checkExactlyOnce(t, data, [][]int{chunks[0], chunks[2], chunks[3]})

	rep := reports[0]
	if want := []int{1}; !intsEqual(rep.Failed, want) {
		t.Errorf("Failed = %v, want %v", rep.Failed, want)
	}
	if rep.Final[1] != 0 {
		t.Errorf("Final[1] = %d, want 0", rep.Final[1])
	}
	if rep.Final.Sum() != 8 {
		t.Errorf("Final sums to %d, want 8", rep.Final.Sum())
	}
	if rep.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2", rep.Rounds)
	}
	// The policy allows MaxRetries=2 resends after the first timeout.
	if rep.Timeouts != 3 || rep.Retries != 2 {
		t.Errorf("Timeouts, Retries = %d, %d; want 3, 2", rep.Timeouts, rep.Retries)
	}
	// The crashed rank's report still describes the scatter.
	if reports[1] == nil || !intsEqual(reports[1].Failed, []int{1}) || reports[1].Survivors != nil {
		t.Errorf("crashed rank report = %+v", reports[1])
	}
}

func TestFTScattervSurvivorCommunicator(t *testing.T) {
	// After a crash, the survivors' communicator must be usable for the
	// rest of the program (here: gather the chunks back), while
	// full-world collectives fail fast with ErrRankFailed.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 5}), testPolicy())
	data := seqData(8)
	var gathered []int
	barrierErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		var buf []int
		var rep *ScatterReport
		var err error
		if c.IsRoot() {
			buf, rep, err = FaultTolerantScatterv(c, data, []int{2, 2, 2, 2})
		} else {
			buf, rep, err = FaultTolerantScatterv[int](c, nil, nil)
		}
		if err != nil {
			if !errors.Is(err, ErrRankFailed) {
				return err
			}
			return nil // dead rank leaves the program
		}
		// The full world now contains a dead rank: collectives on it
		// must fail fast, not deadlock.
		barrierErrs[c.Rank()] = Barrier(c)
		sub := rep.Survivors
		out, err := Gatherv(sub, buf)
		if err != nil {
			return err
		}
		if sub.IsRoot() {
			gathered = out
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(barrierErrs[r], ErrRankFailed) {
			t.Errorf("rank %d full-world barrier error = %v, want ErrRankFailed", r, barrierErrs[r])
		}
	}
	checkExactlyOnce(t, data, [][]int{gathered})
}

func TestFTScattervTransientDropRetries(t *testing.T) {
	// Rank 0's link drops sends overlapping [0, 1): the first attempt
	// ([0, 2]) is lost, the retry (after timeout 1 + backoff 0.5) lands.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.LinkDrop, Rank: 0, Start: 0, End: 1}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, stats := runFT(t, w, data, []int{2, 2, 2, 2})

	for r, err := range scatterErrs {
		if err != nil {
			t.Fatalf("rank %d errored: %v", r, err)
		}
	}
	checkExactlyOnce(t, data, chunks)
	rep := reports[0]
	if rep.Retries != 1 || rep.Timeouts != 1 || rep.Rounds != 1 || len(rep.Failed) != 0 {
		t.Errorf("report = %+v, want 1 retry, 1 timeout, 1 round, no failures", rep)
	}
	// Retry timing: timeout [0,1], backoff [1,1.5], resend [1.5,3.5],
	// then ranks 1 and 2 as usual; root's port frees at 3.5+4+6 = 13.5.
	if got := stats[3].Finish; math.Abs(got-13.5) > 1e-9 {
		t.Errorf("root finish = %g, want 13.5", got)
	}
}

func TestFTScattervCrashAfterDeliveryReclaims(t *testing.T) {
	// Rank 0 receives its chunk at t=2 and crashes at t=3, while the
	// root is still serving the others. The crashed machine's items are
	// gone with it, so they are re-scattered among the survivors.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 0, Start: 3}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, []int{2, 2, 2, 2})

	if !errors.Is(scatterErrs[0], ErrRankFailed) {
		t.Fatalf("crashed rank error = %v, want ErrRankFailed", scatterErrs[0])
	}
	rep := reports[3]
	if !intsEqual(rep.Failed, []int{0}) || rep.Final[0] != 0 || rep.Rounds != 2 {
		t.Errorf("report = %+v, want rank 0 failed, Final[0]=0, 2 rounds", rep)
	}
	// No send ever timed out: the crash was only discovered by the
	// post-round sweep.
	if rep.Timeouts != 0 || rep.Retries != 0 {
		t.Errorf("Timeouts, Retries = %d, %d; want 0, 0", rep.Timeouts, rep.Retries)
	}
	checkExactlyOnce(t, data, [][]int{chunks[1], chunks[2], chunks[3]})
}

func TestFTScattervRebalanceHook(t *testing.T) {
	// The re-solve must consult the hook with the survivors only, in
	// service order with the root last.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 5}), testPolicy())
	var hookRanks [][]int
	w.SetRebalanceCosts(func(ranks []int) []core.Processor {
		hookRanks = append(hookRanks, append([]int(nil), ranks...))
		procs := make([]core.Processor, len(ranks))
		for i, r := range ranks {
			procs[i] = w.procs[r]
		}
		return procs
	})
	data := seqData(8)
	chunks, _, _, _ := runFT(t, w, data, []int{2, 2, 2, 2})
	if len(hookRanks) != 1 {
		t.Fatalf("hook called %d times, want 1", len(hookRanks))
	}
	if want := []int{0, 2, 3}; !intsEqual(hookRanks[0], want) {
		t.Errorf("hook ranks = %v, want %v", hookRanks[0], want)
	}
	checkExactlyOnce(t, data, [][]int{chunks[0], chunks[2], chunks[3]})
}

func TestFTScattervRootFailover(t *testing.T) {
	// The root crashes at t=1, mid-way through its first send ([0, 2] to
	// rank 0). Nothing was confirmed, so the whole buffer is re-solved
	// over the survivors by the elected successor — the lowest survivor,
	// rank 0, since an empty ledger makes everyone trivially fresh.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 1}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, stats := runFT(t, w, data, []int{2, 2, 2, 2})

	if !errors.Is(scatterErrs[3], ErrRankFailed) {
		t.Fatalf("crashed root error = %v, want ErrRankFailed", scatterErrs[3])
	}
	for _, r := range []int{0, 1, 2} {
		if scatterErrs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, scatterErrs[r])
		}
	}
	checkExactlyOnce(t, data, [][]int{chunks[0], chunks[1], chunks[2]})

	rep := reports[0]
	if rep.Failovers != 1 || !intsEqual(rep.RootPath, []int{3, 0}) {
		t.Errorf("Failovers, RootPath = %d, %v; want 1, [3 0]", rep.Failovers, rep.RootPath)
	}
	if rep.FinalRoot() != 0 {
		t.Errorf("FinalRoot = %d, want 0", rep.FinalRoot())
	}
	if !intsEqual(rep.Failed, []int{3}) || rep.Final[3] != 0 {
		t.Errorf("Failed, Final[3] = %v, %d; want [3], 0", rep.Failed, rep.Final[3])
	}
	if rep.Ledger == nil {
		t.Fatal("report has no ledger")
	} else if err := rep.Ledger.VerifyExactlyOnce(len(data)); err != nil {
		t.Errorf("ledger exactly-once: %v", err)
	}
	if len(rep.Rebalances) != 1 || rep.Rebalances[0].Root != 0 || rep.Rebalances[0].Items != 8 {
		t.Errorf("Rebalances = %+v, want one re-solve of all 8 items rooted at 0", rep.Rebalances)
	}
	// The new root leads the survivor communicator.
	if rep.Survivors == nil || !rep.Survivors.IsRoot() {
		t.Error("rank 0 is not the root of the survivor communicator")
	}

	// Timelines: the dead root shows the cut send, the successor shows
	// the election and serves resume rounds.
	var cut, failover, resumes bool
	for _, s := range stats[3].Spans {
		if s.Phase == PhaseComm && s.Label == "send→P1 (cut)" {
			cut = true
		}
	}
	for _, s := range stats[0].Spans {
		switch {
		case s.Phase == PhaseFailover:
			failover = true
		case s.Phase == PhaseComm && len(s.Label) >= 6 && s.Label[:6] == "resume":
			resumes = true
		}
	}
	if !cut || !failover || !resumes {
		t.Errorf("cut, failover, resume spans present = %v, %v, %v; want all", cut, failover, resumes)
	}
}

func TestFTScattervRootFailoverResumesFromCheckpoint(t *testing.T) {
	// The root crashes at t=3: rank 0's chunk [0, 2] was confirmed at
	// t=2 (and checkpointed), rank 1's transfer [2, 6] is cut. The
	// successor must resume from the ledger — re-shipping only the six
	// unconfirmed items, never rank 0's checkpointed two.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 3}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, []int{2, 2, 2, 2})

	for _, r := range []int{0, 1, 2} {
		if scatterErrs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, scatterErrs[r])
		}
	}
	checkExactlyOnce(t, data, [][]int{chunks[0], chunks[1], chunks[2]})

	rep := reports[0]
	if rep.Failovers != 1 || rep.FinalRoot() != 0 {
		t.Fatalf("Failovers, FinalRoot = %d, %d; want 1, 0", rep.Failovers, rep.FinalRoot())
	}
	// The checkpointed delivery survives the failover...
	if len(chunks[0]) < 2 || chunks[0][0] != 0 || chunks[0][1] != 1 {
		t.Errorf("rank 0 chunk = %v, want it to keep checkpointed items 0, 1", chunks[0])
	}
	// ...and only the unconfirmed remainder is re-solved.
	if len(rep.Rebalances) != 1 || rep.Rebalances[0].Items != 6 {
		t.Errorf("Rebalances = %+v, want one re-solve of the 6 unconfirmed items", rep.Rebalances)
	}
}

func TestFTScattervRootCrashAfterCompletion(t *testing.T) {
	// A root crash scheduled after the scatter completes is resolved
	// against the simulated clock, not rejected up front: the scatter
	// runs failure-free.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 100}), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, []int{2, 2, 2, 2})

	for r, err := range scatterErrs {
		if err != nil {
			t.Fatalf("rank %d errored: %v", r, err)
		}
	}
	checkExactlyOnce(t, data, chunks)
	rep := reports[3]
	if rep.Failovers != 0 || rep.Rounds != 1 || len(rep.Failed) != 0 {
		t.Errorf("report = %+v, want a failure-free single round", rep)
	}
}

func TestFTScattervCascadingRootFailover(t *testing.T) {
	// The root dies at t=1; its successor (rank 0) dies at t=4, during
	// its own resume round. The remaining survivors elect again — the
	// election winner is whichever of ranks 1, 2 holds the freshest
	// ledger copy, and every item still lands exactly once.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(
		fault.Fault{Kind: fault.Crash, Rank: 3, Start: 1},
		fault.Fault{Kind: fault.Crash, Rank: 0, Start: 4},
	), testPolicy())
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, []int{2, 2, 2, 2})

	for _, r := range []int{3, 0} {
		if !errors.Is(scatterErrs[r], ErrRankFailed) {
			t.Fatalf("dead rank %d error = %v, want ErrRankFailed", r, scatterErrs[r])
		}
	}
	for _, r := range []int{1, 2} {
		if scatterErrs[r] != nil {
			t.Fatalf("survivor %d errored: %v", r, scatterErrs[r])
		}
	}
	checkExactlyOnce(t, data, [][]int{chunks[1], chunks[2]})

	rep := reports[1]
	if rep.Failovers != 2 || len(rep.RootPath) != 3 || rep.RootPath[0] != 3 || rep.RootPath[1] != 0 {
		t.Errorf("Failovers, RootPath = %d, %v; want 2 failovers from 3 via 0", rep.Failovers, rep.RootPath)
	}
	if !intsEqual(rep.Failed, []int{0, 3}) {
		t.Errorf("Failed = %v, want [0 3]", rep.Failed)
	}
	if err := rep.Ledger.VerifyExactlyOnce(len(data)); err != nil {
		t.Errorf("ledger exactly-once: %v", err)
	}
}

func TestFTScattervAllRanksLost(t *testing.T) {
	// Every rank crashes before anything can land: the scatter reports
	// total loss on every rank instead of electing from an empty set.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(
		fault.Fault{Kind: fault.Crash, Rank: 0, Start: 0.5},
		fault.Fault{Kind: fault.Crash, Rank: 1, Start: 0.5},
		fault.Fault{Kind: fault.Crash, Rank: 2, Start: 0.5},
		fault.Fault{Kind: fault.Crash, Rank: 3, Start: 0.5},
	), testPolicy())
	_, reports, scatterErrs, _ := runFT(t, w, seqData(8), []int{2, 2, 2, 2})
	for r, err := range scatterErrs {
		if !errors.Is(err, ErrRankFailed) {
			t.Errorf("rank %d error = %v, want ErrRankFailed", r, err)
		}
	}
	if rep := reports[0]; rep == nil || len(rep.Failed) != 4 || rep.Survivors != nil {
		t.Errorf("total-loss report = %+v, want all four ranks failed and no survivors", reports[0])
	}
}

func TestFTScattervSpansLabeled(t *testing.T) {
	// The root's timeline must expose the retry machinery as distinct,
	// labeled spans: sends, timeouts, backoffs and the rebalance round.
	w := world4(t)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 5}), testPolicy())
	_, _, _, stats := runFT(t, w, seqData(8), []int{2, 2, 2, 2})
	var timeouts, backoffs, rebalances int
	for _, s := range stats[3].Spans {
		switch s.Phase {
		case PhaseTimeout:
			timeouts++
		case PhaseBackoff:
			backoffs++
		case PhaseComm:
			if len(s.Label) >= 9 && s.Label[:9] == "rebalance" {
				rebalances++
			}
		}
	}
	if timeouts != 3 || backoffs != 2 {
		t.Errorf("timeout, backoff spans = %d, %d; want 3, 2", timeouts, backoffs)
	}
	if rebalances == 0 {
		t.Error("no rebalance span on the root's timeline")
	}
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

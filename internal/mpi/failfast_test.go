package mpi

import (
	"errors"
	"fmt"
	"testing"
)

// These tests pin the error-path hygiene contract: once any rank has
// failed — returned an error, panicked, or been killed by an injected
// fault — the surviving ranks' communications return an error wrapping
// ErrRankFailed instead of deadlocking on a peer that will never
// arrive.

func TestCollectiveAfterRankErrorFailsFast(t *testing.T) {
	w := world4(t)
	barrierErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: this test pins the fail-fast behavior the analyzer guards against
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 gives up")
		}
		barrierErrs[c.Rank()] = Barrier(c)
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(barrierErrs[r], ErrRankFailed) {
			t.Errorf("rank %d barrier error = %v, want ErrRankFailed", r, barrierErrs[r])
		}
	}
}

func TestCollectiveMidFlightFailsFast(t *testing.T) {
	// Ranks 0, 2, 3 are already parked inside the barrier when rank 1
	// dies: the pending collective must complete with ErrRankFailed.
	w := world4(t)
	parked := make(chan struct{}, 3)
	barrierErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: rank 1 must die mid-collective to exercise fail-fast
		if c.Rank() == 1 {
			// Wait until the others are inside the collective (they park
			// right after signaling; the tiny race is harmless — both
			// orders must end in ErrRankFailed, not deadlock).
			for i := 0; i < 3; i++ {
				<-parked
			}
			return fmt.Errorf("rank 1 dies mid-collective")
		}
		parked <- struct{}{}
		barrierErrs[c.Rank()] = Barrier(c)
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(barrierErrs[r], ErrRankFailed) {
			t.Errorf("rank %d barrier error = %v, want ErrRankFailed", r, barrierErrs[r])
		}
	}
}

func TestGathervAfterRankErrorFailsFast(t *testing.T) {
	w := world4(t)
	gatherErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: this test pins Gatherv's fail-fast behavior
		if c.Rank() == 1 {
			return fmt.Errorf("rank 1 gives up")
		}
		_, gatherErrs[c.Rank()] = Gatherv(c, []int{c.Rank()})
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	for _, r := range []int{0, 2, 3} {
		if !errors.Is(gatherErrs[r], ErrRankFailed) {
			t.Errorf("rank %d gather error = %v, want ErrRankFailed", r, gatherErrs[r])
		}
	}
}

func TestReduceAfterRankErrorFailsFast(t *testing.T) {
	w := world4(t)
	reduceErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: this test pins Reduce's fail-fast behavior
		if c.Rank() == 2 {
			return fmt.Errorf("rank 2 gives up")
		}
		_, reduceErrs[c.Rank()] = Reduce(c, 1, Sum)
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 2's error")
	}
	for _, r := range []int{0, 1, 3} {
		if !errors.Is(reduceErrs[r], ErrRankFailed) {
			t.Errorf("rank %d reduce error = %v, want ErrRankFailed", r, reduceErrs[r])
		}
	}
}

func TestAllreduceAfterRankErrorFailsFast(t *testing.T) {
	// Allreduce is a Reduce then a Bcast; a dead rank must surface from
	// whichever leg runs first, never deadlock.
	w := world4(t)
	allErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: this test pins Allreduce's fail-fast behavior
		if c.Rank() == 0 {
			return fmt.Errorf("rank 0 gives up")
		}
		_, allErrs[c.Rank()] = Allreduce(c, 1, Max)
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 0's error")
	}
	for _, r := range []int{1, 2, 3} {
		if !errors.Is(allErrs[r], ErrRankFailed) {
			t.Errorf("rank %d allreduce error = %v, want ErrRankFailed", r, allErrs[r])
		}
	}
}

func TestRecvFromFailedRankFailsFast(t *testing.T) {
	w := world4(t)
	var recvErr error
	_, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			_, recvErr = c.Recv(1)
		case 1:
			return fmt.Errorf("rank 1 dies before sending")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	if !errors.Is(recvErr, ErrRankFailed) {
		t.Errorf("recv error = %v, want ErrRankFailed", recvErr)
	}
}

func TestRecvDrainsBufferedBeforeFailing(t *testing.T) {
	// Data sent before the sender died is still delivered: failure only
	// surfaces when the mailbox is empty.
	w := world4(t)
	var first any
	var firstErr, secondErr error
	_, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			first, firstErr = c.Recv(1)
			_, secondErr = c.Recv(1)
		case 1:
			if err := c.Send(0, "parting words", 1); err != nil {
				return err
			}
			return fmt.Errorf("rank 1 dies after sending")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	if firstErr != nil || first != "parting words" {
		t.Errorf("buffered message lost: %v, %v", first, firstErr)
	}
	if !errors.Is(secondErr, ErrRankFailed) {
		t.Errorf("second recv error = %v, want ErrRankFailed", secondErr)
	}
}

func TestWaitOnIrecvFromFailedRankFailsFast(t *testing.T) {
	w := world4(t)
	var waitErr error
	_, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			req, err := c.Irecv(1)
			if err != nil {
				return err
			}
			_, waitErr = req.Wait()
		case 1:
			return fmt.Errorf("rank 1 dies before sending")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 1's error")
	}
	if !errors.Is(waitErr, ErrRankFailed) {
		t.Errorf("wait error = %v, want ErrRankFailed", waitErr)
	}
}

func TestPanickedRankMarksFailed(t *testing.T) {
	w := world4(t)
	barrierErrs := make([]error, w.Size())
	_, err := Run(w, func(c *Comm) error {
		//scatterlint:ignore collectiveorder deliberately mismatched: a panicking rank must desert the barrier to exercise fail-fast
		if c.Rank() == 2 {
			panic("rank 2 explodes")
		}
		barrierErrs[c.Rank()] = Barrier(c)
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed rank 2's panic")
	}
	for _, r := range []int{0, 1, 3} {
		if !errors.Is(barrierErrs[r], ErrRankFailed) {
			t.Errorf("rank %d barrier error = %v, want ErrRankFailed", r, barrierErrs[r])
		}
	}
}

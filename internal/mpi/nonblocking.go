package mpi

import (
	"errors"
	"fmt"
)

// Request is a handle on a nonblocking operation, completed by Wait.
type Request struct {
	comm *Comm
	done bool

	// send-side
	isSend      bool
	sendEndsAt  float64
	sendStarted float64

	// recv-side
	from int
	data any
}

// Isend starts a nonblocking send of nitems data items to rank `to`:
// the message is handed to the network immediately (eager) and the
// caller's clock does not advance until Wait, which charges the
// overlap-adjusted communication time. This models the classic
// compute/communication overlap the paper's framework deliberately
// excludes from the root's scatter ("we chose to keep the same
// communication structure as the original program") but which the
// runtime supports for other phases.
func (c *Comm) Isend(to int, data any, nitems int) (*Request, error) {
	if to < 0 || to >= c.Size() {
		return nil, fmt.Errorf("mpi: isend to rank %d out of range", to)
	}
	d := c.world.transferTime(c.rank, to, nitems)
	end := c.clock + d
	c.world.mailbox(c.rank, to) <- message{data: data, arrives: end}
	return &Request{comm: c, isSend: true, sendStarted: c.clock, sendEndsAt: end}, nil
}

// Irecv posts a nonblocking receive from rank `from`. The matching
// message is claimed at Wait time.
func (c *Comm) Irecv(from int) (*Request, error) {
	if from < 0 || from >= c.Size() {
		return nil, fmt.Errorf("mpi: irecv from rank %d out of range", from)
	}
	return &Request{comm: c, from: from}, nil
}

// Wait completes the request and returns the received data (nil for
// sends). For a send, the caller idles until the wire is free if it
// has not already computed past that point; for a receive, the caller
// idles until the message arrives.
func (r *Request) Wait() (any, error) {
	if r == nil {
		return nil, errors.New("mpi: wait on nil request")
	}
	if r.done {
		return nil, errors.New("mpi: request already completed")
	}
	r.done = true
	c := r.comm
	if r.isSend {
		// The transfer proceeded concurrently with whatever the rank
		// did since Isend; only the remainder is charged as comm.
		c.advanceTo(r.sendEndsAt, PhaseComm)
		return nil, nil
	}
	msg, err := c.awaitMessage(r.from)
	if err != nil {
		return nil, err
	}
	c.advanceTo(msg.arrives, PhaseIdle)
	r.data = msg.data
	return msg.data, nil
}

// WaitAll completes the requests in order and returns the received
// payloads (nil entries for sends).
func WaitAll(reqs ...*Request) ([]any, error) {
	out := make([]any, len(reqs))
	for i, r := range reqs {
		v, err := r.Wait()
		if err != nil {
			return nil, fmt.Errorf("mpi: request %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

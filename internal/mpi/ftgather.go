package mpi

import (
	"fmt"
	"sort"

	"repro/internal/fault"
)

// This file is the failure-aware counterpart of Gatherv and Reduce: the
// inverse leg of the pipeline FaultTolerantScatterv starts. The root
// pulls each rank's contribution over its single inbound port in rank
// order, retrying timed-out transfers under the same policy, and
// tracks confirmed contributions in a fault.Ledger keyed by one-slot
// ranges — slot [r, r+1) confirmed means rank r's contribution is held
// at the current root. The ledger's metadata piggybacks on each
// acknowledgement, so when the collecting root crashes the survivors
// elect a successor exactly as in the scatter. The partial gather dies
// with the old root, so the successor reclaims every confirmed slot
// and re-collects from the surviving contributors — idempotently: a
// contribution is re-sent verbatim and lands exactly once in the new
// root's buffer, never duplicated. Contributors that died before any
// surviving root confirmed them are reported in Missing; the caller
// decides whether to recompute their share (see internal/chaos).

// GatherReport describes how a fault-tolerant gather or reduce went.
type GatherReport struct {
	// Contributed lists the ranks whose contributions the final root
	// holds, in rank order; Missing lists the ranks whose contributions
	// were lost with their machines.
	Contributed, Missing []int
	// Retries counts re-pulled transfers; Timeouts counts attempts the
	// root gave up on; Rounds counts collection epochs (1 for a
	// failure-free run, +1 per re-collection after a failover).
	Retries, Timeouts, Rounds int
	// Failovers counts root re-elections; RootPath lists every
	// collecting root in order, the original first.
	Failovers int
	RootPath  []int
	// Ledger is the final contribution ledger: slot [r, r+1) held means
	// rank r contributed (shared between the ranks' reports; read-only).
	Ledger *fault.Ledger
	// Survivors is a communicator over the surviving ranks, rooted at
	// the final root. It is the receiver's own communicator when
	// nothing failed, and nil for a rank that failed.
	Survivors *Comm
}

// FinalRoot returns the root that completed the collection.
func (r *GatherReport) FinalRoot() int { return r.RootPath[len(r.RootPath)-1] }

// gtShared is the per-gather outcome shared by every rank's report.
type gtShared struct {
	contributed []int
	missing     []int
	failedRanks []int
	retries     int
	timeouts    int
	rounds      int
	failovers   int
	rootPath    []int
	ledger      *fault.Ledger
	sub         *World // nil when nothing failed
}

func (sh *gtShared) report() *GatherReport {
	return &GatherReport{
		Contributed: sh.contributed,
		Missing:     sh.missing,
		Retries:     sh.retries,
		Timeouts:    sh.timeouts,
		Rounds:      sh.rounds,
		Failovers:   sh.failovers,
		RootPath:    sh.rootPath,
		Ledger:      sh.ledger,
	}
}

// gtOut is the per-rank outcome of a fault-tolerant gather.
type gtOut[T any] struct {
	gathered []T
	spans    []Span
	failed   bool
	subRank  int
	shared   *gtShared
}

// FaultTolerantGatherv collects every rank's contribution at the root
// like Gatherv, but supervises every pull against the world's fault
// plan: timed-out transfers are retried with capped exponential
// backoff, contributors that crash or exhaust their retries are
// declared dead and reported in Missing, and a crash of the collecting
// root triggers a re-election after which the successor re-collects
// the surviving contributions exactly once. The final root receives
// the held contributions concatenated in rank order; other surviving
// ranks receive nil; ranks declared dead receive an error wrapping
// ErrRankFailed.
func FaultTolerantGatherv[T any](c *Comm, contrib []T) ([]T, *GatherReport, error) {
	out, err := c.rendezvous(contrib, func(w *World, clocks []float64, inputs []any) ([]float64, []float64, []any, error) {
		p := w.Size()
		origRoot := w.rootRank
		plan := w.fc.plan
		pol := w.fc.policy.WithDefaults()

		root := origRoot
		t := clocks[root]
		rootCrash, rootCrashes := plan.CrashTime(w.globalRank(root))

		alive := make([]bool, p)
		lastEnd := make([]float64, p)
		for r := range alive {
			alive[r] = true
			lastEnd[r] = clocks[r]
		}
		dead := make([]bool, p)
		sendSpans := make([][]Span, p)
		serveSpans := make([][]Span, p)

		ledger := fault.NewLedger()
		sh := &gtShared{rootPath: []int{root}, ledger: ledger}

		observe := func(ev fault.SendEvent) {
			if w.fc.observer != nil {
				w.fc.observer(ev)
			}
		}
		confirm := func(r int, at float64) {
			ledger.Deliver(r, fault.Range{Lo: r, Hi: r + 1}, at)
			ledger.ReplicateHolders()
		}

		// pull supervises the collection of rank r's contribution over
		// the root's inbound port, retrying under the policy. The same
		// status machine as the scatter's deliver: every step first
		// resolves the collecting root's own crash against the clock.
		pull := func(r int, label string) int {
			items := len(inputs[r].([]T))
			gr := w.globalRank(r)
			name := w.procs[r].Name
			server := w.procs[root].Name
			nominal := w.serveTransfer(root, r, items, false)
			for attempt := 0; ; attempt++ {
				start := t
				if clocks[r] > start {
					start = clocks[r]
				}
				if lastEnd[r] > start {
					start = lastEnd[r]
				}
				if rootCrashes && rootCrash <= start {
					return stRootLost
				}
				d := nominal * plan.Slowdown(gr, start)
				arrive := start + d
				if rootCrashes && rootCrash < arrive {
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseComm, Start: start, End: rootCrash, Label: label + " (cut)",
					})
					observe(fault.SendEvent{
						Rank: gr, Name: name, Server: server, At: rootCrash, Items: items,
						Outcome: fault.SendAborted, Nominal: nominal,
					})
					t = rootCrash
					lastEnd[root] = t
					return stRootLost
				}
				lost := plan.Crashed(gr, arrive) || plan.DropsDuring(gr, start, arrive)
				if !lost {
					serveSpans[root] = append(serveSpans[root], Span{Phase: PhaseComm, Start: start, End: arrive, Label: label})
					sendSpans[r] = append(sendSpans[r], Span{Phase: PhaseComm, Start: start, End: arrive, Label: label})
					lastEnd[r] = arrive
					confirm(r, arrive)
					observe(fault.SendEvent{
						Rank: gr, Name: name, Server: server, At: arrive, Items: items,
						Outcome: fault.SendDelivered, Nominal: nominal, Actual: d,
					})
					t = arrive
					lastEnd[root] = t
					return stDelivered
				}
				tout := start + pol.Timeout
				if rootCrashes && rootCrash < tout {
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseTimeout, Start: start, End: rootCrash,
						Label: fmt.Sprintf("timeout←%s (cut)", name),
					})
					t = rootCrash
					lastEnd[root] = t
					return stRootLost
				}
				sh.timeouts++
				serveSpans[root] = append(serveSpans[root], Span{
					Phase: PhaseTimeout, Start: start, End: tout,
					Label: fmt.Sprintf("timeout←%s #%d", name, attempt+1),
				})
				t = tout
				lastEnd[root] = t
				observe(fault.SendEvent{
					Rank: gr, Name: name, Server: server, At: t, Items: items,
					Outcome: fault.SendTimedOut, Nominal: nominal,
				})
				if attempt >= pol.MaxRetries {
					return stDestLost
				}
				sh.retries++
				wait := pol.Backoff.Delay(attempt)
				if wait > 0 {
					bend := t + wait
					if rootCrashes && rootCrash < bend {
						serveSpans[root] = append(serveSpans[root], Span{
							Phase: PhaseBackoff, Start: t, End: rootCrash,
							Label: fmt.Sprintf("backoff←%s (cut)", name),
						})
						t = rootCrash
						lastEnd[root] = t
						return stRootLost
					}
					serveSpans[root] = append(serveSpans[root], Span{
						Phase: PhaseBackoff, Start: t, End: bend,
						Label: fmt.Sprintf("backoff←%s", name),
					})
					t = bend
					lastEnd[root] = t
				}
			}
		}

		allLost := false
		for round := 1; ; round++ {
			sh.rounds = round
			failover := false
			for r := 0; r < p && !failover; r++ {
				if r == root || !alive[r] || ledger.Held(r) > 0 {
					continue
				}
				label := fmt.Sprintf("recv←%s", w.procs[r].Name)
				if round > 1 || root != origRoot {
					label = fmt.Sprintf("regather←%s", w.procs[r].Name)
				}
				switch pull(r, label) {
				case stDestLost:
					alive[r] = false
				case stRootLost:
					failover = true
				}
			}
			if !failover {
				if rootCrashes && rootCrash <= t {
					// The root dies before banking its own contribution
					// / confirming completion.
					failover = true
				} else if ledger.Held(root) == 0 {
					confirm(root, t)
				}
			}
			if failover {
				alive[root] = false
			}

			// Sweep for contributor crashes up to the port's time.
			for r := 0; r < p; r++ {
				if alive[r] && r != root && plan.Crashed(w.globalRank(r), t) {
					alive[r] = false
				}
			}
			for r := 0; r < p; r++ {
				if !dead[r] && !alive[r] {
					dead[r] = true
				}
			}
			if failover {
				var survivors []int
				for r := 0; r < p; r++ {
					if alive[r] {
						survivors = append(survivors, r)
					}
				}
				if len(survivors) == 0 {
					allLost = true
					break
				}
				// The partial gather died with the old root: reclaim
				// every confirmed slot (the replicas survive — they are
				// what the election reads) and re-collect. A dead
				// contributor's slot is gone for good.
				newRoot, _ := ledger.ElectRoot(survivors)
				for _, r := range ledger.Holders() {
					ledger.Reclaim(r, t)
				}
				electStart := t
				if clocks[newRoot] > electStart {
					electStart = clocks[newRoot]
				}
				if lastEnd[newRoot] > electStart {
					electStart = lastEnd[newRoot]
				}
				electEnd := electStart + pol.Election
				serveSpans[newRoot] = append(serveSpans[newRoot], Span{
					Phase: PhaseFailover, Start: electStart, End: electEnd,
					Label: fmt.Sprintf("failover %s→%s", w.procs[root].Name, w.procs[newRoot].Name),
				})
				sh.failovers++
				root = newRoot
				sh.rootPath = append(sh.rootPath, root)
				rootCrash, rootCrashes = plan.CrashTime(w.globalRank(root))
				t = electEnd
				lastEnd[root] = electEnd
				ledger.Replicate(root)
				continue
			}
			// No failover: done once every living contributor is banked.
			pending := false
			for r := 0; r < p; r++ {
				if alive[r] && ledger.Held(r) == 0 {
					pending = true
				}
			}
			if !pending {
				break
			}
		}

		// Assemble the shared report and per-rank outcomes.
		for r := 0; r < p; r++ {
			if allLost || dead[r] {
				sh.failedRanks = append(sh.failedRanks, r)
			}
			if ledger.Held(r) > 0 && !allLost {
				sh.contributed = append(sh.contributed, r)
			} else {
				sh.missing = append(sh.missing, r)
			}
		}
		sort.Ints(sh.failedRanks)
		var gathered []T
		if !allLost {
			for _, r := range sh.contributed {
				gathered = append(gathered, inputs[r].([]T)...)
			}
		}
		var subRanks []int
		subRank := make([]int, p)
		if len(sh.failedRanks) > 0 && !allLost {
			for r := 0; r < p; r++ {
				if !dead[r] {
					subRank[r] = len(subRanks)
					subRanks = append(subRanks, r)
				}
			}
			rootPos := 0
			for i, r := range subRanks {
				if r == root {
					rootPos = i
				}
			}
			sh.sub = w.subWorld(subRanks, rootPos)
		}

		commStarts := make([]float64, p)
		outClocks := make([]float64, p)
		outputs := make([]any, p)
		for r := 0; r < p; r++ {
			commStarts[r] = clocks[r]
			outClocks[r] = clocks[r]
			o := gtOut[T]{shared: sh}
			spans := append(append([]Span(nil), sendSpans[r]...), serveSpans[r]...)
			if dead[r] || allLost {
				o.failed = true
				start := clocks[r]
				if lastEnd[r] > start {
					start = lastEnd[r]
				}
				if ct, ok := plan.CrashTime(w.globalRank(r)); ok && ct > start {
					spans = append(spans, Span{Phase: PhaseIdle, Start: start, End: ct, Label: "crashed"})
				}
			} else {
				if r == root {
					o.gathered = gathered
				}
				if sh.sub != nil {
					o.subRank = subRank[r]
				}
			}
			o.spans = spans
			outputs[r] = o
		}
		for _, r := range sh.failedRanks {
			w.markFailed(r, fmt.Errorf("mpi: rank %d lost to injected fault: %w", r, ErrRankFailed))
		}
		return commStarts, outClocks, outputs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	o := out.(gtOut[T])
	c.playSpans(o.spans)
	sh := o.shared
	rep := sh.report()
	if o.failed {
		return nil, rep, fmt.Errorf("mpi: rank %d: %w", c.rank, ErrRankFailed)
	}
	if sh.sub != nil {
		rep.Survivors = &Comm{world: sh.sub, rank: o.subRank, clock: c.clock, stats: c.stats}
	} else {
		rep.Survivors = c
	}
	return o.gathered, rep, nil
}

// FaultTolerantReduce folds every rank's value at the root with op,
// with the same supervision, retry, and root-failover machinery as
// FaultTolerantGatherv. Only the surviving contributions listed in the
// report are folded, in rank order; the caller inspects Missing to
// decide whether the partial reduction is acceptable. The final root
// receives the folded value; other surviving ranks receive 0.
func FaultTolerantReduce(c *Comm, value float64, op ReduceOp) (float64, *GatherReport, error) {
	vals, rep, err := FaultTolerantGatherv(c, []float64{value})
	if err != nil || len(vals) == 0 {
		return 0, rep, err
	}
	acc := vals[0]
	for _, v := range vals[1:] {
		acc = op(acc, v)
	}
	return acc, rep, nil
}

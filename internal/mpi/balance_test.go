package mpi

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

func TestBalancedCountsSumAndShape(t *testing.T) {
	w := world4(t) // alphas 1,2,3 + root; betas 2,1,3,2
	var counts []int
	_, err := Run(w, func(c *Comm) error {
		got := BalancedCounts(c, 100)
		if c.IsRoot() {
			counts = got
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for r, n := range counts {
		if n < 0 {
			t.Fatalf("rank %d count %d negative", r, n)
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("counts sum to %d, want 100", total)
	}
	// The distribution must beat uniform when executed.
	procs := []core.Processor{w.procs[0], w.procs[1], w.procs[2], w.procs[3]}
	balanced := core.Makespan(procs, core.Distribution(counts))
	uniform := core.Makespan(procs, core.Uniform(4, 100))
	if balanced >= uniform {
		t.Errorf("BalancedCounts makespan %g not better than uniform %g", balanced, uniform)
	}
}

func TestBalancedCountsNonLastRoot(t *testing.T) {
	procs := []core.Processor{
		{Name: "w1", Comm: cost.Linear{PerItem: 0.1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
		{Name: "w2", Comm: cost.Linear{PerItem: 0.1}, Comp: cost.Linear{PerItem: 0.5}},
	}
	w, err := NewWorld(procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	var counts []int
	_, err = Run(w, func(c *Comm) error {
		if c.IsRoot() {
			counts = BalancedCounts(c, 90)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 90 {
		t.Fatalf("counts sum to %d, want 90", total)
	}
	// Executing the counts must beat the uniform program (the
	// workers are heterogeneous, so uniform is strictly suboptimal).
	exec := func(counts []int) float64 {
		w, err := NewWorld(procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := Run(w, func(c *Comm) error {
			var in []byte
			if c.IsRoot() {
				in = make([]byte, 90)
			}
			buf, err := Scatterv(c, in, counts)
			if err != nil {
				return err
			}
			c.ChargeItems(len(buf))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return Makespan(stats)
	}
	if bal, uni := exec(counts), exec([]int{30, 30, 30}); bal >= uni {
		t.Errorf("balanced counts (%g) not better than uniform (%g)", bal, uni)
	}
}

func TestBalancedCountsZeroItems(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		counts := BalancedCounts(c, 0)
		for r, n := range counts {
			if n != 0 {
				t.Errorf("rank %d count %d for zero items", r, n)
			}
		}
		// Negative n clamps to zero rather than failing the program.
		counts = BalancedCounts(c, -5)
		for _, n := range counts {
			if n != 0 {
				t.Errorf("negative n produced count %d", n)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBalancedCountsEndToEnd executes the exact transformed expression
// the internal/transform tool emits.
func TestBalancedCountsEndToEnd(t *testing.T) {
	w := world4(t)
	data := make([]int, 100)
	stats, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = data
		}
		// The tool rewrites mpi.Scatter(c, in, 25) to:
		buf, err := Scatterv(c, in, BalancedCounts(c, (25)*c.Size()))
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare with the uniform program.
	w2 := world4(t)
	uniStats, err := Run(w2, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = data
		}
		buf, err := Scatter(c, in, 25)
		if err != nil {
			return err
		}
		c.ChargeItems(len(buf))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if Makespan(stats) >= Makespan(uniStats) {
		t.Errorf("transformed program (%g) not faster than the original (%g)",
			Makespan(stats), Makespan(uniStats))
	}
}

package mpi

import (
	"repro/internal/core"
	"repro/internal/cost"
)

// BalancedCounts computes a load-balanced MPI_Scatterv
// parameterization for n items from the world's cost model: the counts
// a transformed program passes to Scatterv in place of the uniform
// MPI_Scatter share. It is the runtime half of the paper's proposed
// source transformation (Section 1: the replacement "can easily be
// automated in a software tool"; see internal/transform for the tool).
//
// The solve goes through the world's incremental engine
// (core.Engine): general-class platforms use the exact Algorithm 1,
// everything else the exact Algorithm 2 DP retained as a core.Plan, so
// the crash-recovery re-solves in FaultTolerantScatterv warm-start
// from the rows this initial solve computed instead of starting over.
// If the solve fails (which cannot happen for the cost models in this
// repository), the uniform distribution is returned so the transformed
// program always runs.
func BalancedCounts(c *Comm, n int) []int {
	w := c.world
	p := w.Size()
	if n < 0 {
		n = 0
	}

	// The solvers expect service order: ranks in order with the root
	// last (the root's share ships for free after the real sends, as
	// in Eq. (1)).
	order := make([]int, 0, p)
	for r := 0; r < p; r++ {
		if r != w.rootRank {
			order = append(order, r)
		}
	}
	order = append(order, w.rootRank)
	procs := make([]core.Processor, p)
	for pos, r := range order {
		procs[pos] = w.procs[r]
	}
	procs[p-1].Comm = cost.Zero // the root costs nothing to serve

	res, err := w.Engine().Solve(procs, n)
	if err != nil {
		uniform := core.Uniform(p, n)
		return uniform
	}
	counts := make([]int, p)
	for pos, r := range order {
		counts[r] = res.Distribution[pos]
	}
	return counts
}

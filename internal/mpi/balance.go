package mpi

import (
	"repro/internal/core"
	"repro/internal/cost"
)

// BalancedCounts computes a load-balanced MPI_Scatterv
// parameterization for n items from the world's cost model: the counts
// a transformed program passes to Scatterv in place of the uniform
// MPI_Scatter share. It is the runtime half of the paper's proposed
// source transformation (Section 1: the replacement "can easily be
// automated in a software tool"; see internal/transform for the tool).
//
// The solver is chosen from the cost-function classes exactly like the
// public scatter.Balance facade — closed form for linear, guaranteed
// heuristic for affine, exact DP otherwise. If every solver fails
// (which cannot happen for the cost models in this repository), the
// uniform distribution is returned so the transformed program always
// runs.
func BalancedCounts(c *Comm, n int) []int {
	w := c.world
	p := w.Size()
	if n < 0 {
		n = 0
	}

	// The solvers expect service order: ranks in order with the root
	// last (the root's share ships for free after the real sends, as
	// in Eq. (1)).
	order := make([]int, 0, p)
	for r := 0; r < p; r++ {
		if r != w.rootRank {
			order = append(order, r)
		}
	}
	order = append(order, w.rootRank)
	procs := make([]core.Processor, p)
	for pos, r := range order {
		procs[pos] = w.procs[r]
	}
	procs[p-1].Comm = cost.Zero // the root costs nothing to serve

	res, err := solveByClass(procs, n)
	if err != nil {
		uniform := core.Uniform(p, n)
		return uniform
	}
	counts := make([]int, p)
	for pos, r := range order {
		counts[r] = res.Distribution[pos]
	}
	return counts
}

// solveByClass mirrors the public facade's solver selection.
func solveByClass(procs []core.Processor, n int) (core.Result, error) {
	class := cost.LinearClass
	for _, p := range procs {
		for _, f := range []cost.Function{p.Comm, p.Comp} {
			if c := cost.ClassOf(f); c < class {
				class = c
			}
		}
	}
	switch class {
	case cost.LinearClass:
		return core.SolveLinear(procs, n)
	case cost.AffineClass:
		return core.Heuristic(procs, n)
	case cost.Increasing:
		return core.Algorithm2(procs, n)
	default:
		return core.Algorithm1(procs, n)
	}
}

package mpi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

// homogeneousWorld builds p identical ranks (alpha=1, beta=1) with the
// last rank as root.
func homogeneousWorld(t *testing.T, p int) *World {
	t.Helper()
	procs := make([]core.Processor, p)
	for i := range procs {
		procs[i] = core.Processor{
			Name: "n",
			Comm: cost.Linear{PerItem: 1},
			Comp: cost.Linear{PerItem: 1},
		}
	}
	procs[p-1].Comm = cost.Zero
	w, err := NewWorld(procs, p-1)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBcastBinomialDeliversToAll(t *testing.T) {
	w := homogeneousWorld(t, 8)
	got := make([][]int, 8)
	_, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{1, 2, 3}
		}
		out, err := BcastBinomial(c, in)
		if err != nil {
			return err
		}
		got[c.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := range got {
		if len(got[r]) != 3 || got[r][0] != 1 {
			t.Errorf("rank %d got %v", r, got[r])
		}
	}
}

func TestBcastBinomialBeatsFlatOnHomogeneousCluster(t *testing.T) {
	// The MPICH rationale: log2(p) rounds beat p-1 serial sends when
	// links are uniform. 16 ranks, 100 items each transfer.
	const p = 16
	runOne := func(binomial bool) float64 {
		w := homogeneousWorld(t, p)
		stats, err := Run(w, func(c *Comm) error {
			var in []int
			if c.IsRoot() {
				in = make([]int, 100)
			}
			var err error
			if binomial {
				_, err = BcastBinomial(c, in)
			} else {
				_, err = Bcast(c, in)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return Makespan(stats)
	}
	flat := runOne(false)
	binom := runOne(true)
	if binom >= flat {
		t.Errorf("binomial bcast (%g) not faster than flat (%g) on a homogeneous cluster", binom, flat)
	}
	// Flat: 15 serial sends of 100 items with both-leg cost 100 each
	// except... transfers from the root cost 100 each -> 1500.
	if math.Abs(flat-1500) > 1e-9 {
		t.Errorf("flat bcast makespan = %g, want 1500", flat)
	}
	// Binomial: 4 rounds, but relays pay both star legs (200) while
	// root sends pay 100; critical path = 100 + 3*200 = 700.
	if math.Abs(binom-700) > 1e-9 {
		t.Errorf("binomial bcast makespan = %g, want 700", binom)
	}
}

func TestBcastBinomialTwoRanks(t *testing.T) {
	w := homogeneousWorld(t, 2)
	stats, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = make([]int, 10)
		}
		_, err := BcastBinomial(c, in)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Makespan(stats)-10) > 1e-9 {
		t.Errorf("2-rank binomial bcast makespan = %g, want 10", Makespan(stats))
	}
}

func TestBcastBinomialNonLastRoot(t *testing.T) {
	procs := make([]core.Processor, 5)
	for i := range procs {
		procs[i] = core.Processor{Name: "n", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero}
	}
	procs[2].Comm = cost.Zero
	w, err := NewWorld(procs, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, 5)
	_, err = Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{7}
		}
		out, err := BcastBinomial(c, in)
		if err != nil {
			return err
		}
		got[c.Rank()] = out[0]
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range got {
		if v != 7 {
			t.Errorf("rank %d got %d", r, v)
		}
	}
}

func TestScattervBinomialDeliversCorrectChunks(t *testing.T) {
	w := homogeneousWorld(t, 4)
	data := []int{10, 11, 12, 13, 14, 15}
	counts := []int{1, 2, 0, 3}
	got := make([][]int, 4)
	_, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = data
		}
		out, err := ScattervBinomial(c, in, counts)
		if err != nil {
			return err
		}
		got[c.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{10}, {11, 12}, {}, {13, 14, 15}}
	for r := range want {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d got %v, want %v", r, got[r], want[r])
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d got %v, want %v", r, got[r], want[r])
			}
		}
	}
}

func TestScattervBinomialTimingHomogeneous(t *testing.T) {
	// 4 ranks (root rel 0 = rank 3), 10 items each. Binomial scatter:
	// round k=2: root sends rels [2,4) block = 20 items to rel 2;
	// round k=1: root sends rel 1's 10 items; rel 2 sends rel 3's 10.
	// Root port: 20 (to rel2, cost 20) + 10 (to rel1) = 30.
	// rel2 (a non-root rank): receives at 20, forwards 10 items to
	// rel3 over a relay link costing both legs (10+10=20) -> 40.
	w := homogeneousWorld(t, 4)
	stats, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = make([]int, 40)
		}
		_, err := ScattervBinomial(c, in, []int{10, 10, 10, 10})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Makespan(stats)-40) > 1e-9 {
		t.Errorf("binomial scatter makespan = %g, want 40", Makespan(stats))
	}
}

func TestScattervBinomialErrors(t *testing.T) {
	w := homogeneousWorld(t, 4)
	_, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{1}
		}
		_, err := ScattervBinomial(c, in, []int{1, 1, 1, 1})
		return err
	})
	if err == nil {
		t.Error("oversized binomial scatter accepted")
	}
	w2 := homogeneousWorld(t, 4)
	_, err = Run(w2, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{1, 2}
		}
		_, err := ScattervBinomial(c, in, []int{1, -1, 1, 1})
		return err
	})
	if err == nil {
		t.Error("negative binomial scatter count accepted")
	}
}

func TestScattervBinomialMatchesFlatChunksOnTable1Shape(t *testing.T) {
	// Flat and binomial scatters must deliver identical chunks; only
	// the timing differs.
	procs := []core.Processor{
		{Name: "a", Comm: cost.Linear{PerItem: 2}, Comp: cost.Zero},
		{Name: "b", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero},
		{Name: "c", Comm: cost.Linear{PerItem: 3}, Comp: cost.Zero},
		{Name: "root", Comm: cost.Zero, Comp: cost.Zero},
	}
	counts := []int{3, 1, 2, 4}
	data := make([]int, 10)
	for i := range data {
		data[i] = i
	}
	run := func(binomial bool) [][]int {
		w, err := NewWorld(procs, 3)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]int, 4)
		_, err = Run(w, func(c *Comm) error {
			var in []int
			if c.IsRoot() {
				in = data
			}
			var out []int
			var err error
			if binomial {
				out, err = ScattervBinomial(c, in, counts)
			} else {
				out, err = Scatterv(c, in, counts)
			}
			got[c.Rank()] = out
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	flat, binom := run(false), run(true)
	for r := range flat {
		if len(flat[r]) != len(binom[r]) {
			t.Fatalf("rank %d: flat %v vs binomial %v", r, flat[r], binom[r])
		}
		for i := range flat[r] {
			if flat[r][i] != binom[r][i] {
				t.Fatalf("rank %d: flat %v vs binomial %v", r, flat[r], binom[r])
			}
		}
	}
}

func TestIsendWaitOverlapsComputation(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			// Send 10 items to the root (10s on the alpha-1 link),
			// compute 6s meanwhile, then wait: finish at 10, not 16.
			req, err := c.Isend(3, []int{1}, 10)
			if err != nil {
				return err
			}
			c.Charge(6)
			_, err = req.Wait()
			return err
		case 3:
			_, err := c.Recv(0)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[0].Finish-10) > 1e-9 {
		t.Errorf("overlapped sender finishes at %g, want 10", stats[0].Finish)
	}
	if stats[0].CompTime != 6 {
		t.Errorf("sender compute time = %g, want 6", stats[0].CompTime)
	}
}

func TestIsendWaitAfterTransferCompletes(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			req, err := c.Isend(3, nil, 5) // 5s transfer
			if err != nil {
				return err
			}
			c.Charge(20) // computes way past the transfer
			_, err = req.Wait()
			return err
		case 3:
			_, err := c.Recv(0)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[0].Finish-20) > 1e-9 {
		t.Errorf("sender finishes at %g, want 20 (wait is free)", stats[0].Finish)
	}
}

func TestIrecvWait(t *testing.T) {
	w := world4(t)
	var got any
	stats, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			return c.Send(3, "payload", 4)
		case 3:
			req, err := c.Irecv(0)
			if err != nil {
				return err
			}
			c.Charge(1) // overlap
			got, err = req.Wait()
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != "payload" {
		t.Errorf("received %v", got)
	}
	if math.Abs(stats[3].Finish-4) > 1e-9 {
		t.Errorf("receiver finishes at %g, want 4", stats[3].Finish)
	}
}

func TestWaitAllAndDoubleWait(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			r1, err := c.Isend(3, 1, 1)
			if err != nil {
				return err
			}
			r2, err := c.Isend(3, 2, 1)
			if err != nil {
				return err
			}
			if _, err := WaitAll(r1, r2); err != nil {
				return err
			}
			if _, err := r1.Wait(); err == nil {
				t.Error("double wait accepted")
			}
			return nil
		case 3:
			if _, err := c.Recv(0); err != nil {
				return err
			}
			_, err := c.Recv(0)
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingRangeErrors(t *testing.T) {
	w := world4(t)
	_, err := Run(w, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Isend(99, nil, 1); err == nil {
				t.Error("isend out of range accepted")
			}
			if _, err := c.Irecv(-1); err == nil {
				t.Error("irecv out of range accepted")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Package mpi is an in-process, virtual-time message-passing runtime
// modeled on the MPI subset the paper's application uses: SPMD ranks,
// MPI_Scatter / MPI_Scatterv, gather, broadcast, barrier and reduce.
//
// Ranks run as goroutines, each with its own virtual clock. Collective
// timing follows the paper's Section 2.3 hardware model:
//
//   - the root is single-port: it sends to one destination at a time;
//   - destinations are served in rank order, exactly as the MPICH
//     implementation the paper relies on ("the order of the destination
//     processors in scatter operations follows the processors ranks");
//   - the time to ship x items from the root to rank i is the
//     processor's Tcomm(i, x) cost function;
//   - computation is charged explicitly via Comm.ChargeItems (using the
//     processor's Tcomp) or Comm.Charge (raw seconds), so a program can
//     either model its computation or really perform it and self-time.
//
// This substrate replaces the paper's Globus + MPICH-G2 testbed: the
// same program text (read data, scatter, compute) runs against the
// Table 1 cost model and yields the per-processor timelines plotted in
// the paper's figures.
package mpi

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/monitor"
)

// ErrRankFailed is the sentinel wrapped by every error caused by a
// failed rank: a collective entered after a rank errored or crashed, a
// receive from a dead peer, or the outcome handed to a rank that an
// injected fault killed. Callers test for it with errors.Is.
var ErrRankFailed = errors.New("mpi: rank failed")

// World owns the shared state of one SPMD run.
type World struct {
	procs    []core.Processor
	rootRank int

	// transfer overrides the default star transfer model when set
	// (SetTransferModel); parentRanks maps a sub-world's ranks back to
	// the parent's (nil for a top-level world); topRanks maps them all
	// the way to the top-level world's numbering, which is what fault
	// plans are keyed by. See split.go.
	transfer    TransferModel
	parentRanks []int
	topRanks    []int

	// fc is the failure-injection configuration, inherited by
	// sub-worlds. See ftscatter.go.
	fc faultConfig

	// engine is the incremental solver shared with every sub-world, so
	// failover re-solves warm-start from the plans built by earlier
	// rounds (core.Plan suffix reuse). It has its own lock.
	engine *core.Engine

	mu          sync.Mutex
	collectives map[int]*collective      //scatterlint:guardedby mu
	mailboxes   map[pairTag]chan message //scatterlint:guardedby mu
	failed      map[int]error            //scatterlint:guardedby mu
	failCh      chan struct{}            //scatterlint:guardedby mu — closed and replaced on every failure
}

// faultConfig groups the failure-related knobs of a world.
type faultConfig struct {
	plan      *fault.Plan
	policy    fault.Policy
	observer  func(fault.SendEvent)
	rebalance func(ranks []int) []core.Processor
	// netplan carries network-level faults (partitions, flaps,
	// degrades) keyed by global rank pairs; nil means a clean network.
	netplan *fault.NetPlan
	// divergence, when set, tracks planned-vs-observed transfer costs
	// and decides when re-solves switch to the diffusion fallback.
	divergence *monitor.Divergence
	// adjacency is the rank-level diffusion topology (global-rank
	// indexed, symmetric); nil means all pairs are adjacent.
	adjacency [][]int
}

// pairTag identifies a point-to-point FIFO channel.
type pairTag struct{ from, to int }

// message is a point-to-point payload with its arrival time.
type message struct {
	data    any
	arrives float64
}

// NewWorld creates a world of len(procs) ranks. Rank i is modeled by
// procs[i]; rootRank designates the data-holding root whose sends are
// serialized. procs[rootRank] should have a zero communication cost
// (it talks to itself).
func NewWorld(procs []core.Processor, rootRank int) (*World, error) {
	if err := core.ValidateProcessors(procs); err != nil {
		return nil, err
	}
	if rootRank < 0 || rootRank >= len(procs) {
		return nil, fmt.Errorf("mpi: root rank %d out of range [0, %d)", rootRank, len(procs))
	}
	return &World{
		procs:       procs,
		rootRank:    rootRank,
		engine:      core.NewEngine(0),
		collectives: make(map[int]*collective),
		mailboxes:   make(map[pairTag]chan message),
		failCh:      make(chan struct{}),
	}, nil
}

// Engine returns the world's incremental solver (shared across
// sub-worlds), creating it on first use for worlds predating it.
func (w *World) Engine() *core.Engine {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.engine == nil {
		w.engine = core.NewEngine(0)
	}
	return w.engine
}

// globalRank maps a rank of this world to the top-level world's
// numbering (identity for a top-level world). Fault plans are keyed by
// top-level ranks, so injected faults follow a processor through
// communicator splits.
func (w *World) globalRank(rank int) int {
	if w.topRanks == nil {
		return rank
	}
	return w.topRanks[rank]
}

// markFailed records that a rank is gone — its program returned an
// error, panicked, or an injected fault killed it — and wakes everyone
// waiting on it: pending collectives complete with ErrRankFailed, and
// blocked point-to-point receives re-check their peer.
func (w *World) markFailed(rank int, cause error) {
	w.mu.Lock()
	if w.failed == nil {
		w.failed = make(map[int]error)
	}
	if _, dup := w.failed[rank]; dup {
		w.mu.Unlock()
		return
	}
	w.failed[rank] = cause
	// Fail pending collectives in sequence order, not map order, so
	// every run delivers ErrRankFailed wakeups in the same order and
	// fault traces replay identically.
	seqs := make([]int, 0, len(w.collectives))
	for seq := range w.collectives {
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	pending := make([]*collective, 0, len(seqs))
	for _, seq := range seqs {
		pending = append(pending, w.collectives[seq])
	}
	close(w.failCh)
	w.failCh = make(chan struct{})
	w.mu.Unlock()
	for _, st := range pending {
		st.fail(fmt.Errorf("mpi: rank %d failed: %w", rank, ErrRankFailed))
	}
}

// firstFailed returns the lowest failed rank, if any.
func (w *World) firstFailed() (int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	first, ok := -1, false
	for r := range w.failed {
		if !ok || r < first {
			first, ok = r, true
		}
	}
	return first, ok
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.procs) }

// Root returns the root rank.
func (w *World) Root() int { return w.rootRank }

// transferTime models shipping x items between two ranks, through the
// custom TransferModel when one is installed and the star model
// otherwise.
func (w *World) transferTime(from, to, items int) float64 {
	if w.transfer != nil {
		return w.transfer(from, to, items)
	}
	return w.starTransfer(from, to, items)
}

// starTransfer is the default model: transfers to/from the root use
// the destination's (resp. source's) Tcomm; a transfer between two
// non-root ranks is routed through the star topology and pays both
// legs. Self-transfers are free.
func (w *World) starTransfer(from, to, items int) float64 {
	if from == to {
		return 0
	}
	if from == w.rootRank {
		return w.procs[to].Comm.Eval(items)
	}
	if to == w.rootRank {
		return w.procs[from].Comm.Eval(items)
	}
	return w.procs[from].Comm.Eval(items) + w.procs[to].Comm.Eval(items)
}

// Phase labels how a rank spent a span of virtual time.
type Phase int

const (
	// PhaseIdle is time spent waiting for data or peers.
	PhaseIdle Phase = iota
	// PhaseComm is time spent sending or receiving.
	PhaseComm
	// PhaseComp is time spent computing.
	PhaseComp
	// PhaseTimeout is time the root's port spends waiting for a send
	// that is never acknowledged (counted as communication time).
	PhaseTimeout
	// PhaseBackoff is time spent waiting before a retry (counted as
	// idle time).
	PhaseBackoff
	// PhaseFailover is time a survivor spends detecting a dead root
	// and running the re-election protocol before taking over as the
	// serving root (counted as idle time).
	PhaseFailover
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseComm:
		return "comm"
	case PhaseComp:
		return "comp"
	case PhaseTimeout:
		return "timeout"
	case PhaseBackoff:
		return "backoff"
	case PhaseFailover:
		return "failover"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Span is one interval of a rank's activity.
type Span struct {
	// Phase classifies the activity.
	Phase Phase
	// Start and End bound the interval in virtual seconds.
	Start, End float64
	// Label distinguishes spans of the same phase in traces: the
	// fault-tolerant scatter labels sends, retries, timeouts and
	// rebalance rounds. Empty for ordinary operations.
	Label string
}

// RankStats summarizes one rank's run.
type RankStats struct {
	// Rank is the rank number.
	Rank int
	// Name is the backing processor's name.
	Name string
	// Finish is the rank's final virtual clock.
	Finish float64
	// CommTime, CompTime and IdleTime total the time by phase.
	CommTime, CompTime, IdleTime float64
	// ItemsReceived counts data items received in scatters.
	ItemsReceived int
	// Spans is the rank's full activity timeline.
	Spans []Span
}

// Comm is a rank's handle on the world — the argument every SPMD
// program receives.
type Comm struct {
	world *World
	rank  int
	clock float64

	nextCollective int
	// stats is shared between a rank's top-level handle and any
	// sub-communicator handles derived from it via Split, so every
	// span is recorded exactly once.
	stats *RankStats
}

// Rank returns this rank's number.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the world.
func (c *Comm) Size() int { return c.world.Size() }

// Root returns the world's root rank.
func (c *Comm) Root() int { return c.world.rootRank }

// IsRoot reports whether this rank is the root.
func (c *Comm) IsRoot() bool { return c.rank == c.world.rootRank }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Processor returns the core.Processor modeling this rank.
func (c *Comm) Processor() core.Processor { return c.world.procs[c.rank] }

// advance moves the clock forward by d seconds of the given phase.
func (c *Comm) advance(d float64, phase Phase) { c.advanceLabeled(d, phase, "") }

// advanceLabeled moves the clock forward by d seconds, recording a
// labeled span. Timeouts tie up the port and count as communication
// time; backoffs count as idle time.
func (c *Comm) advanceLabeled(d float64, phase Phase, label string) {
	if d <= 0 {
		return
	}
	c.stats.Spans = append(c.stats.Spans, Span{Phase: phase, Start: c.clock, End: c.clock + d, Label: label})
	switch phase {
	case PhaseComm, PhaseTimeout:
		c.stats.CommTime += d
	case PhaseComp:
		c.stats.CompTime += d
	default:
		c.stats.IdleTime += d
	}
	c.clock += d
}

// playSpans replays precomputed absolute-time spans onto the rank's
// clock and statistics, idling across any gaps. Used by collectives
// whose timing is too rich for a single (commStart, outClock) pair.
func (c *Comm) playSpans(spans []Span) {
	for _, s := range spans {
		c.advanceTo(s.Start, PhaseIdle)
		c.advanceLabeled(s.End-c.clock, s.Phase, s.Label)
	}
}

// advanceTo idles until absolute time t (no-op if t is in the past).
func (c *Comm) advanceTo(t float64, phase Phase) { c.advance(t-c.clock, phase) }

// Charge accounts d virtual seconds of computation.
func (c *Comm) Charge(d float64) {
	if d < 0 {
		d = 0
	}
	c.advance(d, PhaseComp)
}

// ChargeItems accounts the computation of n data items using the
// rank's Tcomp cost function — the virtual-time analogue of calling
// compute_work on an n-item buffer.
func (c *Comm) ChargeItems(n int) {
	c.Charge(c.world.procs[c.rank].Comp.Eval(n))
}

// Stats returns a copy of the rank's statistics so far.
func (c *Comm) Stats() RankStats {
	s := *c.stats
	s.Rank = c.rank
	s.Name = c.world.procs[c.rank].Name
	s.Finish = c.clock
	s.Spans = append([]Span(nil), c.stats.Spans...)
	return s
}

// mailbox returns (creating if needed) the FIFO channel for a pair.
func (w *World) mailbox(from, to int) chan message {
	w.mu.Lock()
	defer w.mu.Unlock()
	tag := pairTag{from, to}
	mb, ok := w.mailboxes[tag]
	if !ok {
		mb = make(chan message, 1024)
		w.mailboxes[tag] = mb
	}
	return mb
}

// Send ships a value of nitems data items to rank `to` (eager,
// buffered: the sender's clock advances by the transfer time and does
// not wait for the receiver).
func (c *Comm) Send(to int, data any, nitems int) error {
	if to < 0 || to >= c.Size() {
		return fmt.Errorf("mpi: send to rank %d out of range", to)
	}
	d := c.world.transferTime(c.rank, to, nitems)
	c.advance(d, PhaseComm)
	c.world.mailbox(c.rank, to) <- message{data: data, arrives: c.clock}
	return nil
}

// Recv receives the next value from rank `from`, idling until the
// message's arrival time if it is still in flight. If the sender fails
// before sending, Recv returns ErrRankFailed instead of blocking
// forever.
func (c *Comm) Recv(from int) (any, error) {
	if from < 0 || from >= c.Size() {
		return nil, fmt.Errorf("mpi: recv from rank %d out of range", from)
	}
	msg, err := c.awaitMessage(from)
	if err != nil {
		return nil, err
	}
	c.advanceTo(msg.arrives, PhaseIdle)
	return msg.data, nil
}

// awaitMessage blocks until a message from `from` is available or the
// sender is marked failed with nothing buffered. Buffered messages win
// over failure: data sent before the sender died is still delivered.
func (c *Comm) awaitMessage(from int) (message, error) {
	w := c.world
	mb := w.mailbox(from, c.rank)
	for {
		select {
		case msg := <-mb:
			return msg, nil
		default:
		}
		w.mu.Lock()
		_, dead := w.failed[from]
		ch := w.failCh
		w.mu.Unlock()
		if dead {
			return message{}, fmt.Errorf("mpi: recv from failed rank %d: %w", from, ErrRankFailed)
		}
		select {
		case msg := <-mb:
			return msg, nil
		case <-ch:
			// A rank failed somewhere; re-check whether it was our peer.
		}
	}
}

// Program is an SPMD program body, executed once per rank.
type Program func(c *Comm) error

// Run executes the program on every rank and returns the per-rank
// statistics (indexed by rank). It fails if any rank returns an error
// or panics.
func Run(w *World, program Program) ([]RankStats, error) {
	p := w.Size()
	stats := make([]RankStats, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := &Comm{world: w, rank: rank, stats: &RankStats{}}
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
				if errs[rank] != nil {
					// Wake peers blocked on this rank instead of
					// deadlocking the whole world.
					w.markFailed(rank, errs[rank])
				}
				stats[rank] = c.Stats()
			}()
			errs[rank] = program(c)
		}(rank)
	}
	wg.Wait()
	var firstErr error
	for rank, err := range errs {
		if err != nil {
			firstErr = errors.Join(firstErr, fmt.Errorf("rank %d: %w", rank, err))
		}
	}
	return stats, firstErr
}

// Makespan returns the largest finish time among the ranks.
func Makespan(stats []RankStats) float64 {
	max := 0.0
	for _, s := range stats {
		if s.Finish > max {
			max = s.Finish
		}
	}
	return max
}

package mpi

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/monitor"
)

// netWorld4 is world4 plus a network fault plan; global ranks are
// 0..2 with the root at 3.
func netWorld4(t *testing.T, np *fault.NetPlan) *World {
	t.Helper()
	w := world4(t)
	w.SetFaultPlan(nil, testPolicy())
	w.SetNetPlan(np)
	return w
}

func testDivergence() *monitor.Divergence {
	return monitor.NewDivergence(monitor.DivergenceConfig{Threshold: 0.5, Window: 4, Trip: 2, Clear: 3})
}

func TestFTScattervNetPlanDegradeStretchesTransfer(t *testing.T) {
	counts := []int{2, 2, 2, 2}
	data := seqData(8)

	base := netWorld4(t, nil)
	_, _, _, baseStats := runFT(t, base, data, counts)

	// Rank 0's transfer spans [0, 2) in the clean timeline; a 2x
	// degrade on the root-rank0 pair doubles it.
	np := fault.NewNetPlan()
	np.AddSlow(3, 0, fault.FactorWindow{Window: fault.Window{Start: 0, End: 4}, Factor: 2})
	w := netWorld4(t, np)
	chunks, reports, scatterErrs, stats := runFT(t, w, data, counts)
	for r, err := range scatterErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	checkExactlyOnce(t, data, chunks)
	if got, want := stats[0].Finish-baseStats[0].Finish, 2.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("rank 0 finish slipped by %g, want %g", got, want)
	}
	if rep := reports[0]; rep.Rounds != 1 || rep.Timeouts != 0 || len(rep.Failed) != 0 {
		t.Errorf("degrade-only report = %+v", rep)
	}
}

func TestFTScattervPartitionRetriesAcrossHeal(t *testing.T) {
	// Rank 1's transfer would span [2, 6). A cut until t=5 defeats the
	// first two attempts; the third starts at 5.5, after the heal, and
	// lands — the natural mid-scatter rejoin, no rank declared dead.
	np := fault.NewNetPlan()
	np.AddCut(3, 1, fault.Window{Start: 0, End: 5})
	w := netWorld4(t, np)
	counts := []int{2, 2, 2, 2}
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, counts)
	for r, err := range scatterErrs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	checkExactlyOnce(t, data, chunks)
	rep := reports[0]
	if len(rep.Failed) != 0 || rep.Rounds != 1 {
		t.Fatalf("rejoin report = %+v, want no failures in one round", rep)
	}
	if rep.Timeouts != 2 || rep.Retries != 2 {
		t.Errorf("timeouts, retries = %d, %d; want 2, 2", rep.Timeouts, rep.Retries)
	}
	if len(chunks[1]) != 2 {
		t.Errorf("rank 1 holds %d items after rejoin, want 2", len(chunks[1]))
	}
}

func TestFTScattervPermanentCutDiffusesPool(t *testing.T) {
	// Rank 1 is cut off for the whole run: its retries exhaust, the
	// divergence detector trips on the timeouts, and the reclaimed pool
	// is re-balanced by diffusion instead of the exact DP.
	np := fault.NewNetPlan()
	np.AddCut(3, 1, fault.Window{Start: 0, End: 1e6})
	w := netWorld4(t, np)
	div := testDivergence()
	w.SetDivergence(div)
	counts := []int{2, 2, 2, 2}
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, counts)

	if !errors.Is(scatterErrs[1], ErrRankFailed) {
		t.Fatalf("rank 1 error = %v, want ErrRankFailed", scatterErrs[1])
	}
	var surviving [][]int
	for r, ch := range chunks {
		if r != 1 {
			surviving = append(surviving, ch)
		}
	}
	checkExactlyOnce(t, data, surviving)
	rep := reports[0]
	if len(rep.Rebalances) == 0 {
		t.Fatal("no rebalance recorded")
	}
	rb := rep.Rebalances[0]
	if rb.Mode != RebalanceDiffuse {
		t.Fatalf("rebalance mode = %q, want diffuse (detector tripped on %d timeouts)", rb.Mode, rep.Timeouts)
	}
	if rb.Items != 2 || rb.Dist.Sum() != 2 {
		t.Errorf("rebalance = %+v, want the 2 reclaimed items", rb)
	}
	if !div.Degraded() {
		t.Error("detector not degraded after permanent cut")
	}
}

func TestFTScattervRootIsolationForcesDiffusion(t *testing.T) {
	// Rank 2 holds no initial share and sits behind a partition for the
	// whole scatter; rank 1 crashes, forcing a re-solve. The serving
	// root cannot reach survivor 2, so the detector is pinned degraded
	// and the diffusion rebalance gives rank 2 nothing — its component
	// holds no items — instead of planning transfers over the cut.
	np := fault.NewNetPlan()
	np.AddCut(3, 2, fault.Window{Start: 0, End: 1e6})
	np.AddCut(0, 2, fault.Window{Start: 0, End: 1e6})
	np.AddCut(1, 2, fault.Window{Start: 0, End: 1e6})
	w := netWorld4(t, np)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 1, Start: 0.1}), testPolicy())
	div := testDivergence()
	w.SetDivergence(div)
	counts := []int{2, 2, 0, 4}
	data := seqData(8)
	chunks, reports, scatterErrs, _ := runFT(t, w, data, counts)

	if !errors.Is(scatterErrs[1], ErrRankFailed) {
		t.Fatalf("rank 1 error = %v, want ErrRankFailed", scatterErrs[1])
	}
	if scatterErrs[2] != nil {
		t.Fatalf("partitioned-but-idle rank 2 failed: %v", scatterErrs[2])
	}
	var surviving [][]int
	for r, ch := range chunks {
		if r != 1 {
			surviving = append(surviving, ch)
		}
	}
	checkExactlyOnce(t, data, surviving)
	rep := reports[0]
	if len(rep.Rebalances) == 0 {
		t.Fatal("no rebalance recorded")
	}
	rb := rep.Rebalances[0]
	if rb.Mode != RebalanceDiffuse {
		t.Fatalf("rebalance mode = %q, want diffuse (root isolated from survivor 2)", rb.Mode)
	}
	if !div.Forced() {
		t.Error("detector not pinned by the partition")
	}
	// No items may be planned across the cut.
	for pos, r := range rb.Ranks {
		if r == 2 && rb.Dist[pos] != 0 {
			t.Errorf("diffusion assigned %d items across the partition to rank 2", rb.Dist[pos])
		}
	}
	if len(chunks[2]) != 0 {
		t.Errorf("rank 2 holds %d items across a partition", len(chunks[2]))
	}
}

func TestFTScattervFailoverSkipsPartitionedCandidate(t *testing.T) {
	// The root crashes mid-scatter after serving ranks 0 and 1, both of
	// which hold fresh ledger replicas. Rank 0 would win the election,
	// but it is partitioned from everyone: the election must skip it
	// and crown rank 1.
	np := fault.NewNetPlan()
	np.AddCut(0, 1, fault.Window{Start: 0, End: 1e6})
	np.AddCut(0, 2, fault.Window{Start: 0, End: 1e6})
	np.AddCut(0, 3, fault.Window{Start: 6.5, End: 1e6})
	w := netWorld4(t, np)
	w.SetFaultPlan(fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 3, Start: 7}), testPolicy())
	counts := []int{2, 2, 2, 2}
	data := seqData(8)
	_, reports, scatterErrs, _ := runFT(t, w, data, counts)

	var rep *ScatterReport
	for r, err := range scatterErrs {
		if err == nil {
			rep = reports[r]
			break
		}
	}
	if rep == nil {
		t.Fatal("no surviving rank")
	}
	if rep.Failovers < 1 {
		t.Fatalf("report = %+v, want a failover", rep)
	}
	if got := rep.RootPath[1]; got != 1 {
		t.Errorf("elected root = %d, want 1 (rank 0 is partitioned)", got)
	}
}

func TestFTScattervDegradedDeterministicReplay(t *testing.T) {
	counts := []int{2, 2, 2, 2}
	data := seqData(8)
	run := func() (*ScatterReport, []float64) {
		np := fault.NewNetPlan()
		np.AddCut(3, 1, fault.Window{Start: 0, End: 1e6})
		np.AddSlow(3, 2, fault.FactorWindow{Window: fault.Window{Start: 0, End: 20}, Factor: 3})
		w := netWorld4(t, np)
		w.SetFaultPlan(nil, fault.Policy{
			Timeout: 1, MaxRetries: 2,
			Backoff: fault.Backoff{Base: 0.5, Factor: 2, Cap: 2, Jitter: 0.5, Seed: 42},
		})
		w.SetDivergence(testDivergence())
		_, reports, _, stats := runFT(t, w, data, counts)
		var rep *ScatterReport
		for r := range reports {
			if reports[r] != nil {
				rep = reports[r]
				break
			}
		}
		fins := make([]float64, len(stats))
		for i, s := range stats {
			fins[i] = s.Finish
		}
		return rep, fins
	}
	rep1, fins1 := run()
	rep2, fins2 := run()
	if rep1.Rounds != rep2.Rounds || rep1.Retries != rep2.Retries || rep1.Timeouts != rep2.Timeouts {
		t.Fatalf("replay diverged: %+v vs %+v", rep1, rep2)
	}
	for i := range fins1 {
		if fins1[i] != fins2[i] {
			t.Errorf("rank %d finish %g vs %g across replays", i, fins1[i], fins2[i])
		}
	}
	for i := range rep1.Rebalances {
		a, b := rep1.Rebalances[i], rep2.Rebalances[i]
		if a.Mode != b.Mode || a.Items != b.Items {
			t.Errorf("rebalance %d differs: %+v vs %+v", i, a, b)
		}
		for k := range a.Dist {
			if a.Dist[k] != b.Dist[k] {
				t.Errorf("rebalance %d share %d differs", i, k)
			}
		}
	}
}

func TestFTScattervDiffuseSpanLabels(t *testing.T) {
	np := fault.NewNetPlan()
	np.AddCut(3, 1, fault.Window{Start: 0, End: 1e6})
	w := netWorld4(t, np)
	w.SetDivergence(testDivergence())
	counts := []int{2, 2, 2, 2}
	data := seqData(8)
	_, _, _, stats := runFT(t, w, data, counts)

	labels := map[string]bool{}
	for _, rs := range stats {
		for _, s := range rs.Spans {
			labels[s.Label] = true
		}
	}
	found := false
	for l := range labels {
		if strings.HasPrefix(l, "diffuse→") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diffuse→ span label; labels = %v", labels)
	}
}

package mpi

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

func TestSplitGroupsAndRanks(t *testing.T) {
	w := world4(t)
	type result struct {
		size, subRank, subRoot, parentOfZero int
	}
	results := make([]result, 4)
	_, err := Run(w, func(c *Comm) error {
		color := c.Rank() % 2
		sub, err := Split(c, color, c.Rank())
		if err != nil {
			return err
		}
		results[c.Rank()] = result{
			size:         sub.Size(),
			subRank:      sub.Rank(),
			subRoot:      sub.Root(),
			parentOfZero: sub.ParentRank(0),
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Colors 0: parent ranks {0, 2}; colors 1: {1, 3}.
	for r, res := range results {
		if res.size != 2 {
			t.Errorf("rank %d sub size = %d, want 2", r, res.size)
		}
		if res.subRoot != 0 {
			t.Errorf("rank %d sub root = %d", r, res.subRoot)
		}
		wantSubRank := r / 2
		if res.subRank != wantSubRank {
			t.Errorf("rank %d sub rank = %d, want %d", r, res.subRank, wantSubRank)
		}
		wantZero := r % 2
		if res.parentOfZero != wantZero {
			t.Errorf("rank %d group leader parent = %d, want %d", r, res.parentOfZero, wantZero)
		}
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	w := world4(t)
	leaders := make([]int, 4)
	_, err := Run(w, func(c *Comm) error {
		// All same color; key reverses rank order, so parent rank 3
		// becomes sub rank 0.
		sub, err := Split(c, 0, -c.Rank())
		if err != nil {
			return err
		}
		leaders[c.Rank()] = sub.ParentRank(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, l := range leaders {
		if l != 3 {
			t.Errorf("rank %d sees group leader %d, want 3", r, l)
		}
	}
}

func TestSplitSubCollectives(t *testing.T) {
	// Scatter within each color group; groups operate independently.
	w := world4(t)
	got := make([]int, 4)
	_, err := Run(w, func(c *Comm) error {
		sub, err := Split(c, c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		var data []int
		if sub.Rank() == sub.Root() {
			base := c.Rank() % 2 * 100
			data = []int{base + 1, base + 2}
		}
		buf, err := Scatterv(sub, data, []int{1, 1})
		if err != nil {
			return err
		}
		got[c.Rank()] = buf[0]
		c.Merge(sub)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 101, 2, 102}
	for r := range want {
		if got[r] != want[r] {
			t.Errorf("rank %d got %d, want %d", r, got[r], want[r])
		}
	}
}

func TestSplitSharedStatsAndMerge(t *testing.T) {
	w := world4(t)
	stats, err := Run(w, func(c *Comm) error {
		sub, err := Split(c, 0, c.Rank())
		if err != nil {
			return err
		}
		// Work inside the sub-communicator advances the shared stats.
		sub.Charge(5)
		c.Merge(sub)
		c.Charge(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, s := range stats {
		if math.Abs(s.Finish-6) > 1e-9 {
			t.Errorf("rank %d finish = %g, want 6", r, s.Finish)
		}
		if math.Abs(s.CompTime-6) > 1e-9 {
			t.Errorf("rank %d comp time = %g, want 6 (5 in sub + 1 in parent)", r, s.CompTime)
		}
	}
}

func TestSetTransferModel(t *testing.T) {
	procs := []core.Processor{
		{Name: "a", Comm: cost.Linear{PerItem: 1}, Comp: cost.Zero},
		{Name: "root", Comm: cost.Zero, Comp: cost.Zero},
	}
	w, err := NewWorld(procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Everything is 10x slower under the custom model.
	w.SetTransferModel(func(from, to, items int) float64 {
		return 10 * float64(items)
	})
	stats, err := Run(w, func(c *Comm) error {
		var in []int
		if c.IsRoot() {
			in = []int{1, 2, 3}
		}
		_, err := Scatterv(c, in, []int{3, 0})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats[0].Finish-30) > 1e-9 {
		t.Errorf("custom model finish = %g, want 30", stats[0].Finish)
	}
}

// TestHierarchicalScatterBeatsFlatOnSiteTopology builds the two-level
// scatter the split API exists for: on a site-aware model where
// intra-site transfers are nearly free but WAN transfers are slow, the
// root ships each remote site's whole block once and site leaders
// re-scatter locally — beating the flat scatter that crosses the WAN
// once per remote rank... which under linear costs is equal, so the
// win comes from per-message WAN latency, which we include.
func TestHierarchicalScatterBeatsFlatOnSiteTopology(t *testing.T) {
	const (
		localRanks  = 2 // ranks 0..1 + root at site A
		remoteRanks = 6 // ranks 2..7 at site B
		p           = localRanks + remoteRanks + 1
		rootRank    = p - 1
		perItemWAN  = 1e-4
		latencyWAN  = 0.5 // per message: what the hierarchy amortizes
		perItemLAN  = 1e-6
		items       = 10000
	)
	site := func(rank int) int {
		if rank >= localRanks && rank < localRanks+remoteRanks {
			return 1
		}
		return 0
	}
	model := func(from, to, n int) float64 {
		if from == to || n == 0 {
			return 0
		}
		if site(from) != site(to) {
			return latencyWAN + perItemWAN*float64(n)
		}
		return perItemLAN * float64(n)
	}
	procs := make([]core.Processor, p)
	for i := range procs {
		procs[i] = core.Processor{Name: "x", Comm: cost.Linear{PerItem: perItemWAN}, Comp: cost.Zero}
	}

	counts := make([]int, p)
	for i := range counts {
		counts[i] = items / p
	}
	counts[0] += items % p

	run := func(hierarchical bool) float64 {
		w, err := NewWorld(procs, rootRank)
		if err != nil {
			t.Fatal(err)
		}
		w.SetTransferModel(model)
		data := make([]int32, items)
		stats, err := Run(w, func(c *Comm) error {
			var in []int32
			if c.IsRoot() {
				in = data
			}
			if !hierarchical {
				_, err := Scatterv(c, in, counts)
				return err
			}
			// Level 1: the root sends each remote rank's data to the
			// site leader (rank localRanks) as one WAN message.
			remoteTotal := 0
			for r := localRanks; r < localRanks+remoteRanks; r++ {
				remoteTotal += counts[r]
			}
			leader := localRanks
			switch {
			case c.IsRoot():
				if err := c.Send(leader, in[:remoteTotal], remoteTotal); err != nil {
					return err
				}
			case c.Rank() == leader:
				if _, err := c.Recv(rootRank); err != nil {
					return err
				}
			}
			// Level 2: split by site; each site scatters locally.
			sub, err := Split(c, site(c.Rank()), c.Rank())
			if err != nil {
				return err
			}
			subCounts := make([]int, sub.Size())
			var subData []int32
			for i := 0; i < sub.Size(); i++ {
				subCounts[i] = counts[sub.ParentRank(i)]
			}
			if sub.Rank() == sub.Root() {
				subData = make([]int32, items) // leaders hold their blocks
			}
			if _, err := Scatterv(sub, subData, subCounts); err != nil {
				return err
			}
			c.Merge(sub)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return Makespan(stats)
	}

	flat := run(false)
	hier := run(true)
	if hier >= flat {
		t.Errorf("hierarchical scatter (%g) not faster than flat (%g) on a latency-bound WAN", hier, flat)
	}
	// The flat scatter pays the WAN latency once per remote rank; the
	// hierarchy pays it once. Expect savings of roughly
	// (remoteRanks-1)*latency.
	saved := flat - hier
	if saved < latencyWAN*float64(remoteRanks-2) {
		t.Errorf("saved only %g s, expected ~%g", saved, latencyWAN*float64(remoteRanks-1))
	}
}

// Package platform describes grid testbeds: machines, their processor
// counts and speeds, and their link throughput to the data-holding
// root. It ships the paper's Table 1 testbed and converts platform
// descriptions into the processor lists consumed by the solvers in
// internal/core.
package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/cost"
)

// Machine is one computer of the grid, possibly multi-processor.
// The cost constants follow the paper's Table 1 conventions.
type Machine struct {
	// Name is the host name (e.g. "dinadan").
	Name string `json:"name"`
	// CPUs is the number of processors used on this machine; each
	// becomes one MPI process / one core.Processor.
	CPUs int `json:"cpus"`
	// CPUType documents the processor model (e.g. "PIII/933").
	CPUType string `json:"cpuType,omitempty"`
	// Beta is the computation cost in seconds per data item (per ray
	// in the paper), the Table 1 "beta" column. Lower is faster.
	Beta float64 `json:"beta"`
	// Rating is the intuitive speed indication of Table 1: the inverse
	// of Beta normalized to 1 for the reference machine. Zero means
	// "derive from Beta at load time".
	Rating float64 `json:"rating,omitempty"`
	// Alpha is the communication cost in seconds per item from the
	// root machine to this machine (Table 1 "alpha" column); zero for
	// the root itself.
	Alpha float64 `json:"alpha"`
	// CommLatency optionally extends the link model to affine costs:
	// a fixed per-message latency in seconds. The paper found latency
	// negligible on its testbed and used linear costs.
	CommLatency float64 `json:"commLatency,omitempty"`
	// Site names the geographical location, for documentation.
	Site string `json:"site,omitempty"`
}

// Validate checks the machine's fields.
func (m Machine) Validate() error {
	if m.Name == "" {
		return errors.New("platform: machine without a name")
	}
	if m.CPUs <= 0 {
		return fmt.Errorf("platform: machine %s has %d CPUs", m.Name, m.CPUs)
	}
	if m.Beta < 0 || m.Alpha < 0 || m.CommLatency < 0 {
		return fmt.Errorf("platform: machine %s has negative cost constants", m.Name)
	}
	return nil
}

// Platform is a complete grid description.
type Platform struct {
	// Name identifies the platform in reports.
	Name string `json:"name"`
	// Machines lists the member computers.
	Machines []Machine `json:"machines"`
	// Root names the machine holding the input data; its first CPU
	// acts as the root processor.
	Root string `json:"root"`
}

// Validate checks platform consistency: non-empty, unique machine
// names, and a root that exists.
func (p Platform) Validate() error {
	if len(p.Machines) == 0 {
		return errors.New("platform: no machines")
	}
	seen := map[string]bool{}
	rootFound := false
	for _, m := range p.Machines {
		if err := m.Validate(); err != nil {
			return err
		}
		if seen[m.Name] {
			return fmt.Errorf("platform: duplicate machine %s", m.Name)
		}
		seen[m.Name] = true
		if m.Name == p.Root {
			rootFound = true
		}
	}
	if p.Root == "" {
		return errors.New("platform: no root machine")
	}
	if !rootFound {
		return fmt.Errorf("platform: root machine %s not in the machine list", p.Root)
	}
	return nil
}

// Machine returns the machine with the given name.
func (p Platform) Machine(name string) (Machine, bool) {
	for _, m := range p.Machines {
		if m.Name == name {
			return m, true
		}
	}
	return Machine{}, false
}

// TotalCPUs returns the number of processors in the platform.
func (p Platform) TotalCPUs() int {
	total := 0
	for _, m := range p.Machines {
		total += m.CPUs
	}
	return total
}

// commFunction builds the machine's communication cost function: zero
// for the root, linear or affine otherwise.
func (p Platform) commFunction(m Machine) cost.Function {
	if m.Name == p.Root {
		return cost.Zero
	}
	if m.CommLatency > 0 {
		return cost.Affine{Fixed: m.CommLatency, PerItem: m.Alpha}
	}
	return cost.Linear{PerItem: m.Alpha}
}

// Processors expands the platform into one core.Processor per CPU, in
// machine-list order, except that exactly one root CPU is moved to the
// end of the list (the paper's convention: the root processor is Pp).
// Processor names are "machine" or "machine#k" for multi-CPU machines.
func (p Platform) Processors() ([]core.Processor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	var procs []core.Processor
	var root *core.Processor
	for _, m := range p.Machines {
		comm := p.commFunction(m)
		for k := 0; k < m.CPUs; k++ {
			name := m.Name
			if m.CPUs > 1 {
				name = fmt.Sprintf("%s#%d", m.Name, k+1)
			}
			proc := core.Processor{
				Name: name,
				Comm: comm,
				Comp: cost.Linear{PerItem: m.Beta},
			}
			if m.Name == p.Root && k == 0 {
				r := proc
				r.Comm = cost.Zero
				root = &r
				continue
			}
			procs = append(procs, proc)
		}
	}
	procs = append(procs, *root)
	return procs, nil
}

// ProcessorsOrdered returns the platform's processors ordered by the
// requested policy (root always last).
func (p Platform) ProcessorsOrdered(policy Ordering) ([]core.Processor, error) {
	procs, err := p.Processors()
	if err != nil {
		return nil, err
	}
	root := len(procs) - 1
	var order []int
	switch policy {
	case OrderAsListed:
		return procs, nil
	case OrderDescendingBandwidth:
		order = core.OrderDecreasingBandwidth(procs, root)
	case OrderAscendingBandwidth:
		order = core.OrderIncreasingBandwidth(procs, root)
	default:
		return nil, fmt.Errorf("platform: unknown ordering %v", policy)
	}
	return core.Permute(procs, order), nil
}

// Ordering selects a processor ordering policy.
type Ordering int

const (
	// OrderAsListed keeps machine-list order (root last).
	OrderAsListed Ordering = iota
	// OrderDescendingBandwidth is the paper's Theorem 3 policy.
	OrderDescendingBandwidth
	// OrderAscendingBandwidth is the adversarial ordering of Figure 4.
	OrderAscendingBandwidth
)

// String names the ordering policy.
func (o Ordering) String() string {
	switch o {
	case OrderAsListed:
		return "as-listed"
	case OrderDescendingBandwidth:
		return "descending-bandwidth"
	case OrderAscendingBandwidth:
		return "ascending-bandwidth"
	default:
		return fmt.Sprintf("ordering(%d)", int(o))
	}
}

// MarshalJSON round-trips platforms through the standard codec.
func (p Platform) MarshalJSON() ([]byte, error) {
	type alias Platform
	return json.Marshal(alias(p))
}

// Parse decodes and validates a platform from JSON.
func Parse(data []byte) (Platform, error) {
	var p Platform
	if err := json.Unmarshal(data, &p); err != nil {
		return Platform{}, fmt.Errorf("platform: decode: %w", err)
	}
	// Fill derived ratings.
	ref := 0.0
	if root, ok := p.Machine(p.Root); ok {
		ref = root.Beta
	}
	for i := range p.Machines {
		if p.Machines[i].Rating == 0 && p.Machines[i].Beta > 0 && ref > 0 {
			p.Machines[i].Rating = ref / p.Machines[i].Beta
		}
	}
	if err := p.Validate(); err != nil {
		return Platform{}, err
	}
	return p, nil
}

// Random generates a synthetic heterogeneous platform with the given
// number of machines (1..4 CPUs each), for sweeps and property tests.
// Betas span roughly one decimal order of magnitude, alphas two, which
// matches the spread observed in Table 1.
func Random(rng *rand.Rand, machines int) Platform {
	p := Platform{Name: fmt.Sprintf("random-%d", machines)}
	for i := 0; i < machines; i++ {
		m := Machine{
			Name:  fmt.Sprintf("node%02d", i),
			CPUs:  1 + rng.Intn(4),
			Beta:  0.002 + rng.Float64()*0.02,
			Alpha: 1e-5 * (1 + rng.Float64()*99),
			Site:  fmt.Sprintf("site%d", i%3),
		}
		p.Machines = append(p.Machines, m)
	}
	p.Machines[0].Alpha = 0
	p.Root = p.Machines[0].Name
	return p
}

// SortMachinesByBandwidth reorders the machine list by descending link
// bandwidth (ascending alpha), root last — a convenience for printing
// platforms in the order the experiments use.
func (p *Platform) SortMachinesByBandwidth() {
	sort.SliceStable(p.Machines, func(i, j int) bool {
		mi, mj := p.Machines[i], p.Machines[j]
		if mi.Name == p.Root {
			return false
		}
		if mj.Name == p.Root {
			return true
		}
		return mi.Alpha < mj.Alpha
	})
}

// RandomTwoSite generates a synthetic two-site grid shaped like the
// paper's testbed: local machines behind a fast LAN (alphas near
// 1e-5 s/item, like the Strasbourg PCs) and remote machines across a
// WAN (alphas a few times higher, like the Montpellier Origin), with
// the data on the first local machine. Betas span the Table 1 range.
func RandomTwoSite(rng *rand.Rand, localMachines, remoteMachines int) Platform {
	p := Platform{Name: fmt.Sprintf("twosite-%d-%d", localMachines, remoteMachines)}
	for i := 0; i < localMachines; i++ {
		p.Machines = append(p.Machines, Machine{
			Name:  fmt.Sprintf("local%02d", i),
			CPUs:  1 + rng.Intn(2),
			Beta:  0.004 + rng.Float64()*0.012,
			Alpha: 1e-5 * (1 + rng.Float64()),
			Site:  "local",
		})
	}
	for i := 0; i < remoteMachines; i++ {
		p.Machines = append(p.Machines, Machine{
			Name:  fmt.Sprintf("remote%02d", i),
			CPUs:  1 + rng.Intn(8),
			Beta:  0.004 + rng.Float64()*0.012,
			Alpha: 3e-5 * (1 + rng.Float64()*3),
			Site:  "remote",
		})
	}
	if len(p.Machines) == 0 {
		p.Machines = append(p.Machines, Machine{Name: "local00", CPUs: 1, Beta: 0.01})
	}
	p.Machines[0].Alpha = 0
	p.Root = p.Machines[0].Name
	return p
}

package platform

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
)

func TestTable1Validates(t *testing.T) {
	p := Table1()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.TotalCPUs() != 16 {
		t.Errorf("Table 1 has %d CPUs, want 16", p.TotalCPUs())
	}
}

func TestTable1Values(t *testing.T) {
	p := Table1()
	cases := []struct {
		name  string
		cpus  int
		beta  float64
		alpha float64
	}{
		{"dinadan", 1, 0.009288, 0},
		{"pellinore", 1, 0.009365, 1.12e-5},
		{"caseb", 1, 0.004629, 1.00e-5},
		{"sekhmet", 1, 0.004885, 1.70e-5},
		{"merlin", 2, 0.003976, 8.15e-5},
		{"seven", 2, 0.016156, 2.10e-5},
		{"leda", 8, 0.009677, 3.53e-5},
	}
	for _, c := range cases {
		m, ok := p.Machine(c.name)
		if !ok {
			t.Fatalf("machine %s missing", c.name)
		}
		if m.CPUs != c.cpus || m.Beta != c.beta || m.Alpha != c.alpha {
			t.Errorf("%s = %+v, want cpus=%d beta=%g alpha=%g", c.name, m, c.cpus, c.beta, c.alpha)
		}
	}
}

func TestProcessorsRootLast(t *testing.T) {
	procs, err := Table1().Processors()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != 16 {
		t.Fatalf("got %d processors, want 16", len(procs))
	}
	root := procs[len(procs)-1]
	if root.Name != "dinadan" {
		t.Errorf("last processor is %s, want dinadan", root.Name)
	}
	if root.Comm.Eval(1000) != 0 {
		t.Error("root pays a communication cost")
	}
	for _, pr := range procs[:len(procs)-1] {
		if pr.Comm.Eval(1000) <= 0 {
			t.Errorf("worker %s has a free link", pr.Name)
		}
	}
}

func TestProcessorsMultiCPUNaming(t *testing.T) {
	procs, err := Table1().Processors()
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, pr := range procs {
		if names[pr.Name] {
			t.Errorf("duplicate processor name %s", pr.Name)
		}
		names[pr.Name] = true
	}
	for _, want := range []string{"merlin#1", "merlin#2", "leda#1", "leda#8", "seven#2"} {
		if !names[want] {
			t.Errorf("missing processor %s", want)
		}
	}
}

func TestProcessorsOrderedDescending(t *testing.T) {
	procs, err := Table1().ProcessorsOrdered(OrderDescendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 3 x-axis: caseb, pellinore, sekhmet, seven,
	// seven, leda x8, merlin, merlin, dinadan.
	wantPrefix := []string{"caseb", "pellinore", "sekhmet", "seven#1", "seven#2"}
	for i, w := range wantPrefix {
		if procs[i].Name != w {
			t.Errorf("position %d = %s, want %s", i, procs[i].Name, w)
		}
	}
	if procs[15].Name != "dinadan" {
		t.Errorf("root position = %s, want dinadan", procs[15].Name)
	}
	if procs[13].Name != "merlin#1" || procs[14].Name != "merlin#2" {
		t.Errorf("merlin not last before root: %s, %s", procs[13].Name, procs[14].Name)
	}
}

func TestProcessorsOrderedAscending(t *testing.T) {
	procs, err := Table1().ProcessorsOrdered(OrderAscendingBandwidth)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 4 x-axis: merlin, merlin, leda x8, seven, seven, sekhmet,
	// pellinore, caseb, dinadan.
	if procs[0].Name != "merlin#1" || procs[1].Name != "merlin#2" {
		t.Errorf("slowest links not first: %s, %s", procs[0].Name, procs[1].Name)
	}
	if procs[14].Name != "caseb" {
		t.Errorf("fastest link not last before root: %s", procs[14].Name)
	}
	if procs[15].Name != "dinadan" {
		t.Errorf("root position = %s, want dinadan", procs[15].Name)
	}
}

func TestProcessorsOrderedUnknownPolicy(t *testing.T) {
	if _, err := Table1().ProcessorsOrdered(Ordering(99)); err == nil {
		t.Error("unknown ordering accepted")
	}
}

func TestValidateCatchesBadPlatforms(t *testing.T) {
	cases := []struct {
		name string
		p    Platform
	}{
		{"empty", Platform{}},
		{"no root", Platform{Machines: []Machine{{Name: "a", CPUs: 1}}}},
		{"root missing", Platform{Root: "x", Machines: []Machine{{Name: "a", CPUs: 1}}}},
		{"duplicate machines", Platform{Root: "a", Machines: []Machine{{Name: "a", CPUs: 1}, {Name: "a", CPUs: 1}}}},
		{"zero CPUs", Platform{Root: "a", Machines: []Machine{{Name: "a", CPUs: 0}}}},
		{"negative beta", Platform{Root: "a", Machines: []Machine{{Name: "a", CPUs: 1, Beta: -1}}}},
		{"unnamed machine", Platform{Root: "a", Machines: []Machine{{CPUs: 1}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.p.Validate(); err == nil {
				t.Error("invalid platform accepted")
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Table1()
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.Root != p.Root || len(back.Machines) != len(p.Machines) {
		t.Errorf("round trip lost data: %+v", back)
	}
	for i := range p.Machines {
		if back.Machines[i] != p.Machines[i] {
			t.Errorf("machine %d: %+v != %+v", i, back.Machines[i], p.Machines[i])
		}
	}
}

func TestParseFillsRatings(t *testing.T) {
	data := []byte(`{
		"name": "mini", "root": "r",
		"machines": [
			{"name": "r", "cpus": 1, "beta": 0.01, "alpha": 0},
			{"name": "w", "cpus": 1, "beta": 0.005, "alpha": 1e-5}
		]
	}`)
	p, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := p.Machine("w")
	if w.Rating != 2 {
		t.Errorf("derived rating = %g, want 2 (root beta / machine beta)", w.Rating)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := Parse([]byte(`{"name":"x","machines":[],"root":""}`)); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestRandomPlatform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Random(rng, 6)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Machines) != 6 {
		t.Errorf("got %d machines", len(p.Machines))
	}
	procs, err := p.Processors()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != p.TotalCPUs() {
		t.Errorf("processors %d != total CPUs %d", len(procs), p.TotalCPUs())
	}
}

func TestRandomPlatformSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		p := Random(rng, 2+rng.Intn(5))
		procs, err := p.ProcessorsOrdered(OrderDescendingBandwidth)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Heuristic(procs, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Distribution.Validate(len(procs), 1000); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCommLatencyGivesAffineLinks(t *testing.T) {
	p := Platform{
		Name: "latency",
		Root: "r",
		Machines: []Machine{
			{Name: "r", CPUs: 1, Beta: 0.01},
			{Name: "w", CPUs: 1, Beta: 0.01, Alpha: 1e-5, CommLatency: 0.5},
		},
	}
	procs, err := p.Processors()
	if err != nil {
		t.Fatal(err)
	}
	w := procs[0]
	if got := cost.ClassOf(w.Comm); got != cost.AffineClass {
		t.Errorf("link class = %v, want affine", got)
	}
	if got := w.Comm.Eval(1); got != 0.5+1e-5 {
		t.Errorf("Comm(1) = %g", got)
	}
}

func TestSortMachinesByBandwidth(t *testing.T) {
	p := Table1()
	p.SortMachinesByBandwidth()
	if p.Machines[0].Name != "caseb" {
		t.Errorf("first machine = %s, want caseb", p.Machines[0].Name)
	}
	if p.Machines[len(p.Machines)-1].Name != "dinadan" {
		t.Errorf("last machine = %s, want dinadan (root)", p.Machines[len(p.Machines)-1].Name)
	}
}

func TestOrderingString(t *testing.T) {
	if OrderAsListed.String() != "as-listed" ||
		OrderDescendingBandwidth.String() != "descending-bandwidth" ||
		OrderAscendingBandwidth.String() != "ascending-bandwidth" {
		t.Error("ordering names wrong")
	}
}

func TestRandomTwoSite(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := RandomTwoSite(rng, 4, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Machines) != 6 {
		t.Fatalf("got %d machines", len(p.Machines))
	}
	if p.Root != "local00" {
		t.Errorf("root = %s, want local00", p.Root)
	}
	// Remote links are slower than local ones on average.
	var localMax, remoteMin float64 = 0, 1
	for _, m := range p.Machines {
		if m.Name == p.Root {
			continue
		}
		if m.Site == "local" && m.Alpha > localMax {
			localMax = m.Alpha
		}
		if m.Site == "remote" && m.Alpha < remoteMin {
			remoteMin = m.Alpha
		}
	}
	if remoteMin <= localMax/2 {
		t.Errorf("remote alphas (min %g) not clearly above local (max %g)", remoteMin, localMax)
	}
}

func TestRandomTwoSiteDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	p := RandomTwoSite(rng, 0, 0)
	if err := p.Validate(); err != nil {
		t.Fatalf("degenerate two-site platform invalid: %v", err)
	}
}

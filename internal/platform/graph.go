package platform

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// This file generalizes the package's star model — every machine
// described only by its direct link to the root — to routed multi-hop
// topologies. The paper's testbed was two sites behind one VTHD link,
// so the star was exact; on a wider grid the root reaches a remote
// machine through a chain of links (LAN → metro → backbone → LAN), and
// several machines share those intermediate links.
//
// A Graph names the network nodes (sites), attaches machines to them,
// and lists undirected links with per-item cost, fixed latency, and a
// concurrency capacity. Routing is deterministic shortest-path by
// accumulated per-item cost (ties: fewer hops, then lexicographic
// path), so every rank's effective communication cost from the root is
// the sum over its route — which Flatten folds back into the familiar
// star Platform for the solvers, while the route structure itself
// feeds the simgrid contention model and the fault compiler
// (simgrid.BuildNetPlan).

// Link is one undirected network edge between two nodes.
type Link struct {
	// A, B are the endpoint node names.
	A string `json:"a"`
	B string `json:"b"`
	// Alpha is the per-item transfer cost in seconds across this link.
	Alpha float64 `json:"alpha"`
	// Latency is the fixed per-message cost in seconds.
	Latency float64 `json:"latency,omitempty"`
	// Capacity is how many concurrent transfers the link carries at
	// full rate; beyond it the rate divides fairly. Zero means
	// unlimited (no contention).
	Capacity int `json:"capacity,omitempty"`
}

// Node is one network location (a site, a router, a LAN) with the
// machines attached there. Transit nodes carry no machines.
type Node struct {
	// Name identifies the node; links and faults refer to it.
	Name string `json:"name"`
	// Machines are the computers attached at this node. Their Alpha /
	// CommLatency fields describe only the local attachment cost; the
	// route to the root adds the rest.
	Machines []Machine `json:"machines,omitempty"`
}

// Graph is a routed multi-hop platform description.
type Graph struct {
	// Name identifies the graph in reports.
	Name string `json:"name"`
	// Nodes lists the network locations.
	Nodes []Node `json:"nodes"`
	// Links lists the undirected edges.
	Links []Link `json:"links"`
	// Root names the machine holding the input data.
	Root string `json:"root"`
}

// Validate checks structural consistency: unique node and machine
// names, links between existing distinct nodes with non-negative
// costs, and a root machine that exists.
func (g Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return errors.New("platform: graph has no nodes")
	}
	nodes := map[string]bool{}
	machines := map[string]bool{}
	rootFound := false
	for _, n := range g.Nodes {
		if n.Name == "" {
			return errors.New("platform: graph node without a name")
		}
		if nodes[n.Name] {
			return fmt.Errorf("platform: duplicate graph node %s", n.Name)
		}
		nodes[n.Name] = true
		for _, m := range n.Machines {
			if err := m.Validate(); err != nil {
				return err
			}
			if machines[m.Name] {
				return fmt.Errorf("platform: duplicate machine %s", m.Name)
			}
			machines[m.Name] = true
			if m.Name == g.Root {
				rootFound = true
			}
		}
	}
	for _, l := range g.Links {
		if !nodes[l.A] || !nodes[l.B] {
			return fmt.Errorf("platform: link %s-%s references an unknown node", l.A, l.B)
		}
		if l.A == l.B {
			return fmt.Errorf("platform: link %s-%s is a self loop", l.A, l.B)
		}
		if l.Alpha < 0 || l.Latency < 0 || l.Capacity < 0 {
			return fmt.Errorf("platform: link %s-%s has negative parameters", l.A, l.B)
		}
	}
	if g.Root == "" {
		return errors.New("platform: graph has no root machine")
	}
	if !rootFound {
		return fmt.Errorf("platform: root machine %s not attached to any node", g.Root)
	}
	return nil
}

// NodeOf returns the name of the node hosting the given machine.
func (g Graph) NodeOf(machine string) (string, bool) {
	for _, n := range g.Nodes {
		for _, m := range n.Machines {
			if m.Name == machine {
				return n.Name, true
			}
		}
	}
	return "", false
}

// RootNode returns the node hosting the root machine.
func (g Graph) RootNode() (string, error) {
	n, ok := g.NodeOf(g.Root)
	if !ok {
		return "", fmt.Errorf("platform: root machine %s not attached to any node", g.Root)
	}
	return n, nil
}

// Route is a shortest path through the graph with its accumulated
// costs.
type Route struct {
	// Path lists the node names from source to destination inclusive.
	Path []string
	// Alpha is the summed per-item cost over the path's links.
	Alpha float64
	// Latency is the summed fixed cost over the path's links.
	Latency float64
}

// Hops returns the number of links on the route.
func (r Route) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// UsesLink reports whether the route traverses the undirected link
// a-b.
func (r Route) UsesLink(a, b string) bool {
	for i := 0; i+1 < len(r.Path); i++ {
		if (r.Path[i] == a && r.Path[i+1] == b) || (r.Path[i] == b && r.Path[i+1] == a) {
			return true
		}
	}
	return false
}

// UsesNode reports whether the route passes through the node
// (including its endpoints).
func (r Route) UsesNode(n string) bool {
	for _, p := range r.Path {
		if p == n {
			return true
		}
	}
	return false
}

// pathLess orders candidate equal-cost paths: fewer hops first, then
// lexicographically. This is the routing tie-break that keeps every
// run of Dijkstra bit-identical.
func pathLess(a, b []string) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// RoutesFrom computes deterministic shortest routes from the source
// node to every reachable node, weighted by per-item cost (Alpha),
// with ties broken by hop count and then lexicographic path. Parallel
// links between the same node pair collapse to the cheapest.
func (g Graph) RoutesFrom(src string) (map[string]Route, error) {
	found := false
	names := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		names = append(names, n.Name)
		if n.Name == src {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("platform: unknown route source %s", src)
	}
	sort.Strings(names)

	type edge struct {
		to             string
		alpha, latency float64
	}
	best := map[string]map[string]edge{}
	addDir := func(from, to string, l Link) {
		if best[from] == nil {
			best[from] = map[string]edge{}
		}
		if e, ok := best[from][to]; !ok || l.Alpha < e.alpha || (l.Alpha == e.alpha && l.Latency < e.latency) {
			best[from][to] = edge{to: to, alpha: l.Alpha, latency: l.Latency}
		}
	}
	for _, l := range g.Links {
		addDir(l.A, l.B, l)
		addDir(l.B, l.A, l)
	}

	routes := map[string]Route{src: {Path: []string{src}}}
	done := map[string]bool{}
	// O(V²) selection keeps the scan order (sorted names) explicit and
	// deterministic; graphs here are tens of nodes at most.
	for range names {
		cur := ""
		for _, n := range names {
			if done[n] {
				continue
			}
			r, ok := routes[n]
			if !ok {
				continue
			}
			if cur == "" {
				cur = n
				continue
			}
			c := routes[cur]
			if r.Alpha < c.Alpha || (r.Alpha == c.Alpha && pathLess(r.Path, c.Path)) {
				cur = n
			}
		}
		if cur == "" {
			break
		}
		done[cur] = true
		curRoute := routes[cur]
		nbs := make([]string, 0, len(best[cur]))
		for to := range best[cur] {
			nbs = append(nbs, to)
		}
		sort.Strings(nbs)
		for _, to := range nbs {
			e := best[cur][to]
			cand := Route{
				Path:    append(append([]string{}, curRoute.Path...), to),
				Alpha:   curRoute.Alpha + e.alpha,
				Latency: curRoute.Latency + e.latency,
			}
			old, ok := routes[to]
			if !ok || cand.Alpha < old.Alpha || (cand.Alpha == old.Alpha && pathLess(cand.Path, old.Path)) {
				routes[to] = cand
			}
		}
	}
	return routes, nil
}

// Routes computes the routing table from the root's node.
func (g Graph) Routes() (map[string]Route, error) {
	root, err := g.RootNode()
	if err != nil {
		return nil, err
	}
	return g.RoutesFrom(root)
}

// NodeAdjacency returns each node's directly linked neighbors, sorted,
// deduplicated.
func (g Graph) NodeAdjacency() map[string][]string {
	adj := map[string]map[string]bool{}
	for _, n := range g.Nodes {
		adj[n.Name] = map[string]bool{}
	}
	for _, l := range g.Links {
		if adj[l.A] == nil || adj[l.B] == nil {
			continue
		}
		adj[l.A][l.B] = true
		adj[l.B][l.A] = true
	}
	out := make(map[string][]string, len(adj))
	for n, set := range adj {
		nbs := make([]string, 0, len(set))
		for nb := range set {
			nbs = append(nbs, nb)
		}
		sort.Strings(nbs)
		out[n] = nbs
	}
	return out
}

// Flatten folds the routed graph back into the star Platform the
// solvers consume: each machine's effective Alpha / CommLatency is its
// local attachment cost plus the accumulated cost of the shortest
// route from the root's node to its node. Machines are listed in node
// order, root machine's node first (so Platform.Processors keeps the
// paper's root-last convention after its own rotation). Machines on
// nodes unreachable from the root are an error.
func (g Graph) Flatten() (Platform, error) {
	if err := g.Validate(); err != nil {
		return Platform{}, err
	}
	routes, err := g.Routes()
	if err != nil {
		return Platform{}, err
	}
	rootNode, err := g.RootNode()
	if err != nil {
		return Platform{}, err
	}
	p := Platform{Name: g.Name, Root: g.Root}
	order := make([]Node, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		if n.Name == rootNode {
			order = append([]Node{n}, order...)
		} else {
			order = append(order, n)
		}
	}
	for _, n := range order {
		r, ok := routes[n.Name]
		if !ok {
			if len(n.Machines) == 0 {
				continue // unreachable transit node: harmless
			}
			return Platform{}, fmt.Errorf("platform: node %s (with machines) unreachable from root node %s", n.Name, rootNode)
		}
		for _, m := range n.Machines {
			m.Site = n.Name
			if m.Name != g.Root {
				m.Alpha += r.Alpha
				m.CommLatency += r.Latency
			} else {
				m.Alpha = 0
				m.CommLatency = 0
			}
			p.Machines = append(p.Machines, m)
		}
	}
	return p, nil
}

// ProcessorNodes returns, for each rank produced by Flatten().
// Processors() (root last), the name of the graph node hosting it.
// This is the rank→node map the fault compiler and the diffusion
// adjacency builder key on.
func (g Graph) ProcessorNodes() ([]string, error) {
	p, err := g.Flatten()
	if err != nil {
		return nil, err
	}
	var nodes []string
	var rootNode string
	for _, m := range p.Machines {
		for k := 0; k < m.CPUs; k++ {
			if m.Name == p.Root && k == 0 {
				rootNode = m.Site
				continue
			}
			nodes = append(nodes, m.Site)
		}
	}
	return append(nodes, rootNode), nil
}

// RankAdjacency builds the rank-level diffusion adjacency from a
// rank→node map and the graph's links: two ranks are adjacent when
// they share a node or their nodes are directly linked.
func (g Graph) RankAdjacency(rankNodes []string) [][]int {
	nodeAdj := g.NodeAdjacency()
	linked := func(a, b string) bool {
		if a == b {
			return true
		}
		for _, nb := range nodeAdj[a] {
			if nb == b {
				return true
			}
		}
		return false
	}
	adj := make([][]int, len(rankNodes))
	for i := range rankNodes {
		for j := range rankNodes {
			if i != j && linked(rankNodes[i], rankNodes[j]) {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

// TwoSiteGraph lifts a RandomTwoSite-style platform into its routed
// form: a "local" node and a "remote" node joined by one WAN link, the
// shape of the paper's Strasbourg–Montpellier testbed.
func TwoSiteGraph(rng *rand.Rand, localMachines, remoteMachines int) Graph {
	p := RandomTwoSite(rng, localMachines, remoteMachines)
	wan := Link{A: "local", B: "remote", Alpha: 2e-5, Latency: 5e-3, Capacity: 1}
	g := Graph{
		Name:  "graph-" + p.Name,
		Nodes: []Node{{Name: "local"}, {Name: "remote"}},
		Links: []Link{wan},
		Root:  p.Root,
	}
	for _, m := range p.Machines {
		idx := 0
		if m.Site == "remote" {
			idx = 1
			// The WAN crossing moves into the shared link; the machine
			// keeps only a LAN-scale attachment cost.
			m.Alpha = 1e-5
		}
		g.Nodes[idx].Machines = append(g.Nodes[idx].Machines, m)
	}
	return g
}

// RandomGraph generates a synthetic routed platform with the given
// number of sites: a ring-with-chords backbone (always connected) and
// 1–3 machines per site, with the data on the first site. Costs follow
// the Random spreads, with inter-site links one to two orders of
// magnitude slower than local attachments.
func RandomGraph(rng *rand.Rand, sites int) Graph {
	if sites < 1 {
		sites = 1
	}
	g := Graph{Name: fmt.Sprintf("randomgraph-%d", sites)}
	for s := 0; s < sites; s++ {
		n := Node{Name: fmt.Sprintf("site%02d", s)}
		machines := 1 + rng.Intn(3)
		for m := 0; m < machines; m++ {
			n.Machines = append(n.Machines, Machine{
				Name:  fmt.Sprintf("s%02dm%02d", s, m),
				CPUs:  1 + rng.Intn(2),
				Beta:  0.002 + rng.Float64()*0.02,
				Alpha: 1e-5 * (1 + rng.Float64()),
				Site:  n.Name,
			})
		}
		g.Nodes = append(g.Nodes, n)
	}
	g.Root = g.Nodes[0].Machines[0].Name
	g.Nodes[0].Machines[0].Alpha = 0
	for s := 0; s < sites-1; s++ {
		g.Links = append(g.Links, Link{
			A:        g.Nodes[s].Name,
			B:        g.Nodes[s+1].Name,
			Alpha:    1e-4 * (1 + rng.Float64()*9),
			Latency:  1e-3 * (1 + rng.Float64()*9),
			Capacity: 1 + rng.Intn(2),
		})
	}
	if sites > 2 {
		// Close the ring and sprinkle chords for route diversity.
		g.Links = append(g.Links, Link{
			A:        g.Nodes[sites-1].Name,
			B:        g.Nodes[0].Name,
			Alpha:    1e-4 * (1 + rng.Float64()*9),
			Latency:  1e-3 * (1 + rng.Float64()*9),
			Capacity: 1 + rng.Intn(2),
		})
		for c := 0; c < sites/3; c++ {
			a, b := rng.Intn(sites), rng.Intn(sites)
			if a == b || a == (b+1)%sites || b == (a+1)%sites {
				continue
			}
			g.Links = append(g.Links, Link{
				A:        g.Nodes[a].Name,
				B:        g.Nodes[b].Name,
				Alpha:    1e-4 * (1 + rng.Float64()*9),
				Latency:  1e-3 * (1 + rng.Float64()*9),
				Capacity: 1 + rng.Intn(2),
			})
		}
	}
	return g
}

package platform

import (
	"math"
	"math/rand"
	"testing"
)

// chainGraph builds root(siteA) - siteB - siteC with one machine per
// site and simple costs for hand-checking routes.
func chainGraph() Graph {
	return Graph{
		Name: "chain",
		Nodes: []Node{
			{Name: "siteA", Machines: []Machine{{Name: "rootm", CPUs: 1, Beta: 0.01}}},
			{Name: "siteB", Machines: []Machine{{Name: "mb", CPUs: 1, Beta: 0.01, Alpha: 1e-5}}},
			{Name: "siteC", Machines: []Machine{{Name: "mc", CPUs: 2, Beta: 0.02, Alpha: 2e-5}}},
		},
		Links: []Link{
			{A: "siteA", B: "siteB", Alpha: 1e-4, Latency: 1e-3, Capacity: 1},
			{A: "siteB", B: "siteC", Alpha: 2e-4, Latency: 2e-3, Capacity: 1},
		},
		Root: "rootm",
	}
}

func TestGraphValidate(t *testing.T) {
	if err := chainGraph().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Graph)
	}{
		{"no nodes", func(g *Graph) { g.Nodes = nil }},
		{"dup node", func(g *Graph) { g.Nodes[1].Name = "siteA" }},
		{"dup machine", func(g *Graph) { g.Nodes[1].Machines[0].Name = "rootm" }},
		{"unknown link end", func(g *Graph) { g.Links[0].B = "nowhere" }},
		{"self link", func(g *Graph) { g.Links[0].B = "siteA" }},
		{"negative alpha", func(g *Graph) { g.Links[0].Alpha = -1 }},
		{"no root", func(g *Graph) { g.Root = "" }},
		{"missing root", func(g *Graph) { g.Root = "ghost" }},
	}
	for _, c := range cases {
		g := chainGraph()
		c.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestGraphRoutes(t *testing.T) {
	g := chainGraph()
	routes, err := g.Routes()
	if err != nil {
		t.Fatal(err)
	}
	rc, ok := routes["siteC"]
	if !ok {
		t.Fatal("no route to siteC")
	}
	if want := []string{"siteA", "siteB", "siteC"}; len(rc.Path) != 3 || rc.Path[0] != want[0] || rc.Path[1] != want[1] || rc.Path[2] != want[2] {
		t.Errorf("route to siteC = %v, want %v", rc.Path, want)
	}
	if math.Abs(rc.Alpha-3e-4) > 1e-12 || math.Abs(rc.Latency-3e-3) > 1e-12 {
		t.Errorf("route costs = %g, %g; want 3e-4, 3e-3", rc.Alpha, rc.Latency)
	}
	if rc.Hops() != 2 || !rc.UsesLink("siteB", "siteA") || rc.UsesLink("siteA", "siteC") || !rc.UsesNode("siteB") {
		t.Errorf("route predicates wrong for %v", rc.Path)
	}
}

func TestGraphRoutesPickCheaperDetour(t *testing.T) {
	g := chainGraph()
	// A direct A-C link that is more expensive than the two-hop path
	// must lose; a cheaper one must win.
	g.Links = append(g.Links, Link{A: "siteA", B: "siteC", Alpha: 9e-4})
	routes, _ := g.Routes()
	if got := routes["siteC"].Hops(); got != 2 {
		t.Errorf("expensive shortcut taken: %v", routes["siteC"].Path)
	}
	g.Links[len(g.Links)-1].Alpha = 1e-5
	routes, _ = g.Routes()
	if got := routes["siteC"].Hops(); got != 1 {
		t.Errorf("cheap shortcut ignored: %v", routes["siteC"].Path)
	}
}

func TestGraphRoutesDeterministicTieBreak(t *testing.T) {
	// Two equal-cost paths root->x->dst and root->y->dst: the
	// lexicographically smaller path must win, every time.
	g := Graph{
		Name: "diamond",
		Nodes: []Node{
			{Name: "root", Machines: []Machine{{Name: "r", CPUs: 1, Beta: 0.01}}},
			{Name: "x"}, {Name: "y"},
			{Name: "dst", Machines: []Machine{{Name: "d", CPUs: 1, Beta: 0.01}}},
		},
		Links: []Link{
			{A: "root", B: "y", Alpha: 1e-4},
			{A: "root", B: "x", Alpha: 1e-4},
			{A: "y", B: "dst", Alpha: 1e-4},
			{A: "x", B: "dst", Alpha: 1e-4},
		},
		Root: "r",
	}
	for i := 0; i < 20; i++ {
		routes, err := g.Routes()
		if err != nil {
			t.Fatal(err)
		}
		p := routes["dst"].Path
		if len(p) != 3 || p[1] != "x" {
			t.Fatalf("run %d: tie broke to %v, want via x", i, p)
		}
	}
}

func TestGraphFlatten(t *testing.T) {
	g := chainGraph()
	p, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Root != "rootm" || p.Machines[0].Name != "rootm" {
		t.Errorf("root machine not first: %+v", p.Machines)
	}
	mb, _ := p.Machine("mb")
	if math.Abs(mb.Alpha-(1e-5+1e-4)) > 1e-12 {
		t.Errorf("mb effective alpha = %g, want attachment+route", mb.Alpha)
	}
	if math.Abs(mb.CommLatency-1e-3) > 1e-12 {
		t.Errorf("mb effective latency = %g, want 1e-3", mb.CommLatency)
	}
	mc, _ := p.Machine("mc")
	if math.Abs(mc.Alpha-(2e-5+3e-4)) > 1e-12 {
		t.Errorf("mc effective alpha = %g", mc.Alpha)
	}
	if mc.Site != "siteC" {
		t.Errorf("mc site = %q, want its node", mc.Site)
	}
	// Unreachable machine-bearing node is an error; an unreachable
	// bare transit node is not.
	g2 := chainGraph()
	g2.Links = g2.Links[:1]
	if _, err := g2.Flatten(); err == nil {
		t.Error("flatten accepted unreachable machines")
	}
	g3 := chainGraph()
	g3.Nodes = append(g3.Nodes, Node{Name: "island"})
	if _, err := g3.Flatten(); err != nil {
		t.Errorf("bare unreachable transit node rejected: %v", err)
	}
}

func TestGraphProcessorNodes(t *testing.T) {
	g := chainGraph()
	nodes, err := g.ProcessorNodes()
	if err != nil {
		t.Fatal(err)
	}
	// Ranks: mb, mc#1, mc#2, then the root CPU last on siteA.
	want := []string{"siteB", "siteC", "siteC", "siteA"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
	p, _ := g.Flatten()
	procs, err := p.Processors()
	if err != nil {
		t.Fatal(err)
	}
	if len(procs) != len(nodes) {
		t.Fatalf("%d procs but %d rank nodes", len(procs), len(nodes))
	}
}

func TestGraphRankAdjacency(t *testing.T) {
	g := chainGraph()
	nodes, _ := g.ProcessorNodes() // [siteB siteC siteC siteA]
	adj := g.RankAdjacency(nodes)
	has := func(i, j int) bool {
		for _, nb := range adj[i] {
			if nb == j {
				return true
			}
		}
		return false
	}
	// Same node: the two mc CPUs are adjacent.
	if !has(1, 2) || !has(2, 1) {
		t.Error("co-located ranks not adjacent")
	}
	// Linked nodes: siteB-siteC and siteA-siteB.
	if !has(0, 1) || !has(0, 3) {
		t.Error("linked-site ranks not adjacent")
	}
	// Unlinked nodes: siteA and siteC are two hops apart.
	if has(1, 3) || has(3, 2) {
		t.Error("two-hop ranks adjacent")
	}
}

func TestRandomGraphGeneratesSolvablePlatforms(t *testing.T) {
	for _, sites := range []int{1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(100 + sites)))
		g := RandomGraph(rng, sites)
		if err := g.Validate(); err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		p, err := g.Flatten()
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		procs, err := p.Processors()
		if err != nil {
			t.Fatalf("sites=%d: %v", sites, err)
		}
		nodes, err := g.ProcessorNodes()
		if err != nil || len(nodes) != len(procs) {
			t.Fatalf("sites=%d: rank nodes mismatch (%v)", sites, err)
		}
		// Determinism: same seed, same graph.
		g2 := RandomGraph(rand.New(rand.NewSource(int64(100+sites))), sites)
		if len(g2.Links) != len(g.Links) || g2.Name != g.Name {
			t.Errorf("sites=%d: RandomGraph not deterministic", sites)
		}
	}
}

func TestTwoSiteGraphMatchesStarShape(t *testing.T) {
	g := TwoSiteGraph(rand.New(rand.NewSource(7)), 3, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range p.Machines {
		if m.Site == "remote" {
			// Remote machines pay the WAN link on top of their LAN
			// attachment.
			if m.Alpha <= 1e-5 {
				t.Errorf("remote machine %s alpha = %g, missing WAN cost", m.Name, m.Alpha)
			}
			if m.CommLatency < 5e-3 {
				t.Errorf("remote machine %s latency = %g, missing WAN latency", m.Name, m.CommLatency)
			}
		}
	}
}

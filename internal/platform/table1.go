package platform

// Table1 returns the paper's experimental testbed (Table 1): 16
// processors across two French sites, with the calibrated per-ray
// computation costs (beta) and root-link communication costs (alpha)
// reported by the authors. The data set lives on dinadan, which is
// therefore the root.
//
//	Machine    CPUs  Type      beta (s/ray)  Rating  alpha (s/ray)
//	dinadan    1     PIII/933  0.009288      1       0
//	pellinore  1     PIII/800  0.009365      0.99    1.12e-5
//	caseb      1     XP1800    0.004629      2       1.00e-5
//	sekhmet    1     XP1800    0.004885      1.90    1.70e-5
//	merlin     2     XP2000    0.003976      2.33    8.15e-5
//	seven      2     R12K/300  0.016156      0.57    2.10e-5
//	leda       8     R14K/500  0.009677      0.95    3.53e-5
//
// merlin, though geographically close to the root, has the smallest
// bandwidth: it sat behind a 10 Mbit/s hub during the experiment while
// the others used fast-ethernet switches. leda is the remote Origin
// 3800, at the other end of France.
func Table1() Platform {
	return Platform{
		Name: "table1-two-site-grid",
		Root: "dinadan",
		Machines: []Machine{
			{Name: "dinadan", CPUs: 1, CPUType: "PIII/933", Beta: 0.009288, Rating: 1.00, Alpha: 0, Site: "strasbourg"},
			{Name: "pellinore", CPUs: 1, CPUType: "PIII/800", Beta: 0.009365, Rating: 0.99, Alpha: 1.12e-5, Site: "strasbourg"},
			{Name: "caseb", CPUs: 1, CPUType: "XP1800", Beta: 0.004629, Rating: 2.00, Alpha: 1.00e-5, Site: "strasbourg"},
			{Name: "sekhmet", CPUs: 1, CPUType: "XP1800", Beta: 0.004885, Rating: 1.90, Alpha: 1.70e-5, Site: "strasbourg"},
			{Name: "merlin", CPUs: 2, CPUType: "XP2000", Beta: 0.003976, Rating: 2.33, Alpha: 8.15e-5, Site: "strasbourg"},
			{Name: "seven", CPUs: 2, CPUType: "R12K/300", Beta: 0.016156, Rating: 0.57, Alpha: 2.10e-5, Site: "strasbourg"},
			{Name: "leda", CPUs: 8, CPUType: "R14K/500", Beta: 0.009677, Rating: 0.95, Alpha: 3.53e-5, Site: "montpellier"},
		},
	}
}

// Table1Rays is the size of the paper's input: the full set of seismic
// events of year 1999, ray-traced in the experiments of Section 5.
const Table1Rays = 817101

// PaperFig2 holds the headline measurements of Figure 2 (original
// program, uniform distribution): earliest and latest processor finish
// times in seconds.
var PaperFig2 = struct{ Earliest, Latest float64 }{259, 853}

// PaperFig3 holds the measurements of Figure 3 (load-balanced,
// descending bandwidth order).
var PaperFig3 = struct{ Earliest, Latest float64 }{405, 430}

// PaperFig4 holds the measurements of Figure 4 (load-balanced,
// ascending bandwidth order).
var PaperFig4 = struct{ Earliest, Latest float64 }{437, 486}

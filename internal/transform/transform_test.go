package transform

import (
	"strings"
	"testing"
)

const paperExample = `package main

import (
	"repro/internal/mpi"
)

// The paper's pseudo-code, in Go:
//
//	if (rank = ROOT) raydata <- read n lines from data file;
//	MPI_Scatter(raydata, n/P, ..., rbuff, ..., ROOT, MPI_COMM_WORLD);
//	compute_work(rbuff);
func run(c *mpi.Comm, raydata []float64, n int) error {
	rbuff, err := mpi.Scatter(c, raydata, n/c.Size())
	if err != nil {
		return err
	}
	c.ChargeItems(len(rbuff))
	return nil
}
`

func TestRewritePaperExample(t *testing.T) {
	res, err := Rewrite("main.go", []byte(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1", res.Rewrites)
	}
	out := string(res.Source)
	if !strings.Contains(out, "mpi.Scatterv(c, raydata, mpi.BalancedCounts(c, (n/c.Size())*c.Size()))") {
		t.Errorf("transformed call missing:\n%s", out)
	}
	if strings.Contains(out, "mpi.Scatter(") {
		t.Errorf("uniform scatter survived:\n%s", out)
	}
	if err := RewriteCheck("main.go", res.Source); err != nil {
		t.Errorf("transformed source invalid: %v", err)
	}
	// The surrounding statements are untouched.
	for _, keep := range []string{"rbuff, err :=", "if err != nil", "c.ChargeItems(len(rbuff))"} {
		if !strings.Contains(out, keep) {
			t.Errorf("surrounding code disturbed, missing %q:\n%s", keep, out)
		}
	}
}

func TestRewriteReportsPositions(t *testing.T) {
	res, err := Rewrite("main.go", []byte(paperExample))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Positions) != 1 {
		t.Fatalf("positions = %v", res.Positions)
	}
	if res.Positions[0].Line != 13 {
		t.Errorf("rewrite reported at line %d, want 13", res.Positions[0].Line)
	}
}

func TestRewriteAliasImport(t *testing.T) {
	src := `package main

import mp "repro/internal/mpi"

func run(c *mp.Comm, data []int) {
	buf, _ := mp.Scatter(c, data, 4)
	_ = buf
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1", res.Rewrites)
	}
	if !strings.Contains(string(res.Source), "mp.Scatterv(c, data, mp.BalancedCounts(c, (4)*c.Size()))") {
		t.Errorf("aliased rewrite wrong:\n%s", res.Source)
	}
}

func TestRewriteExplicitTypeArgument(t *testing.T) {
	src := `package main

import "repro/internal/mpi"

func run(c *mpi.Comm) {
	buf, _ := mpi.Scatter[int](c, nil, 2)
	_ = buf
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 1 {
		t.Fatalf("rewrites = %d, want 1", res.Rewrites)
	}
	if !strings.Contains(string(res.Source), "mpi.Scatterv[int](c, nil, mpi.BalancedCounts(c, (2)*c.Size()))") {
		t.Errorf("instantiated rewrite wrong:\n%s", res.Source)
	}
}

func TestRewriteLeavesOtherPackagesAlone(t *testing.T) {
	src := `package main

import (
	"repro/internal/mpi"
	other "example.com/fake/mpi2"
)

func run(c *mpi.Comm) {
	other.Scatter(1, 2, 3)
	morething.Scatter(4, 5, 6)
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 0 {
		t.Errorf("rewrote %d foreign Scatter calls", res.Rewrites)
	}
}

func TestRewriteNoMPIImportIsIdentity(t *testing.T) {
	src := `package main

func Scatter(a, b, c int) int { return a + b + c }

func main() { Scatter(1, 2, 3) }
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 0 {
		t.Errorf("rewrote %d calls in an MPI-free file", res.Rewrites)
	}
	if string(res.Source) != src {
		t.Errorf("MPI-free file modified:\n%s", res.Source)
	}
}

func TestRewriteSkipsDotImports(t *testing.T) {
	src := `package main

import . "repro/internal/mpi"

func run(c *Comm) {
	Scatter(c, []int(nil), 2)
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 0 {
		t.Error("dot-imported Scatter rewritten without type information")
	}
}

func TestRewriteSkipsShadowedIdentifier(t *testing.T) {
	src := `package main

import "repro/internal/mpi"

type fake struct{}

func (fake) Scatter(a, b, c int) {}

func run(c *mpi.Comm) {
	mpi := fake{}
	mpi.Scatter(1, 2, 3)
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 0 {
		t.Errorf("rewrote a call on a local variable shadowing the import")
	}
}

func TestRewriteMultipleCalls(t *testing.T) {
	src := `package main

import "repro/internal/mpi"

func run(c *mpi.Comm, a, b []int) {
	x, _ := mpi.Scatter(c, a, 10)
	y, _ := mpi.Scatter(c, b, 20)
	_, _ = x, y
}
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 2 {
		t.Fatalf("rewrites = %d, want 2", res.Rewrites)
	}
}

func TestRewriteParseError(t *testing.T) {
	if _, err := Rewrite("broken.go", []byte("package \nfunc {")); err == nil {
		t.Error("broken source accepted")
	}
}

func TestRewriteWrongArityLeftAlone(t *testing.T) {
	src := `package main

import "repro/internal/mpi"

var f = mpi.Scatter // method value, not a call
`
	res, err := Rewrite("main.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewrites != 0 {
		t.Error("non-call reference rewritten")
	}
}

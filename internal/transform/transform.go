// Package transform implements the paper's proposed source
// transformation tool. Section 1 argues that replacing MPI_Scatter by
// a cleverly parameterized MPI_Scatterv "does not require a deep
// source code re-organization, and it can easily be automated in a
// software tool". This package is that tool for Go programs written
// against the internal/mpi runtime: it parses a source file, finds
// every uniform-scatter call
//
//	<mpi>.Scatter(c, data, count)
//
// and rewrites it, in place, to the load-balanced form
//
//	<mpi>.Scatterv(c, data, <mpi>.BalancedCounts(c, (count)*c.Size()))
//
// where <mpi> is whatever name the file imports the runtime package
// under. The rewrite is a pure expression substitution — no statements
// move, no variables are introduced — so it preserves the surrounding
// control flow exactly, which is the "less intrusive" property the
// paper is after.
package transform

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// MPIImportPath is the import path whose Scatter calls are rewritten.
const MPIImportPath = "repro/internal/mpi"

// Result describes one file transformation.
type Result struct {
	// Source is the transformed file content (equal to the input when
	// Rewrites is zero).
	Source []byte
	// Rewrites counts the Scatter calls that were transformed.
	Rewrites int
	// Positions lists the original source positions of the rewritten
	// calls, for reporting.
	Positions []token.Position
}

// Rewrite parses src (with the given filename for positions), rewrites
// every uniform Scatter call, and returns the formatted result. Files
// that do not import the MPI runtime are returned unchanged.
func Rewrite(filename string, src []byte) (Result, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return Result{}, fmt.Errorf("transform: parse %s: %w", filename, err)
	}

	alias := mpiAlias(file)
	if alias == "" {
		return Result{Source: src}, nil
	}

	res := Result{}
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !isScatterCall(call, alias) || len(call.Args) != 3 {
			return true
		}
		res.Positions = append(res.Positions, fset.Position(call.Pos()))
		rewriteCall(call, alias)
		res.Rewrites++
		return true
	})

	var buf bytes.Buffer
	if err := format.Node(&buf, fset, file); err != nil {
		return Result{}, fmt.Errorf("transform: print %s: %w", filename, err)
	}
	res.Source = buf.Bytes()
	return res, nil
}

// mpiAlias returns the local name under which the file imports the MPI
// runtime, or "" if it does not import it (dot imports are skipped: a
// bare Scatter identifier cannot be attributed safely without full
// type checking).
func mpiAlias(file *ast.File) string {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != MPIImportPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return ""
			}
			return imp.Name.Name
		}
		// Default package name: the path's last element.
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// isScatterCall reports whether call is <alias>.Scatter(...) — possibly
// with explicit type arguments, <alias>.Scatter[T](...).
func isScatterCall(call *ast.CallExpr, alias string) bool {
	fun := call.Fun
	// Unwrap explicit instantiation: Scatter[T].
	if idx, ok := fun.(*ast.IndexExpr); ok {
		fun = idx.X
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Scatter" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == alias && pkg.Obj == nil
}

// rewriteCall mutates <alias>.Scatter(c, data, count) into
// <alias>.Scatterv(c, data, <alias>.BalancedCounts(c, (count)*c.Size())).
// Shared sub-expressions (the comm argument) are reused verbatim;
// go/format prints a node appearing twice without trouble.
func rewriteCall(call *ast.CallExpr, alias string) {
	comm := call.Args[0]
	data := call.Args[1]
	count := call.Args[2]

	// Rename the function, preserving explicit type arguments.
	switch fun := call.Fun.(type) {
	case *ast.IndexExpr:
		fun.X.(*ast.SelectorExpr).Sel = ast.NewIdent("Scatterv")
	case *ast.SelectorExpr:
		fun.Sel = ast.NewIdent("Scatterv")
	}

	// (count) * comm.Size()
	total := &ast.BinaryExpr{
		X:  &ast.ParenExpr{X: count},
		Op: token.MUL,
		Y: &ast.CallExpr{
			Fun: &ast.SelectorExpr{X: comm, Sel: ast.NewIdent("Size")},
		},
	}
	// alias.BalancedCounts(comm, total)
	counts := &ast.CallExpr{
		Fun: &ast.SelectorExpr{
			X:   ast.NewIdent(alias),
			Sel: ast.NewIdent("BalancedCounts"),
		},
		Args: []ast.Expr{comm, total},
	}
	call.Args = []ast.Expr{comm, data, counts}
}

// RewriteCheck verifies that a transformed file still parses — a
// cheap sanity gate the CLI runs before overwriting anything.
func RewriteCheck(filename string, src []byte) error {
	fset := token.NewFileSet()
	_, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return fmt.Errorf("transform: result does not parse: %w", err)
	}
	return nil
}

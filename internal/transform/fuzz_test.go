package transform

import (
	"strings"
	"testing"
)

// FuzzRewrite checks three properties on arbitrary source text:
// Rewrite either fails cleanly or produces output that still parses;
// and the transformation is idempotent (Scatterv and BalancedCounts
// are never rewritten again).
func FuzzRewrite(f *testing.F) {
	f.Add(paperExample)
	f.Add("package main\n")
	f.Add("not go at all {{{")
	f.Add(`package x
import m "repro/internal/mpi"
func f(c *m.Comm) { m.Scatter(c, nil, 0); m.Scatter(c, nil, 1) }
`)
	f.Add(`package x
import "repro/internal/mpi"
var _ = mpi.Scatter
`)
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Rewrite("fuzz.go", []byte(src))
		if err != nil {
			return // unparseable input is fine
		}
		if err := RewriteCheck("fuzz.go", res.Source); err != nil {
			t.Fatalf("rewrite broke the source: %v\ninput:\n%s\noutput:\n%s", err, src, res.Source)
		}
		again, err := Rewrite("fuzz.go", res.Source)
		if err != nil {
			t.Fatalf("re-rewrite failed: %v", err)
		}
		if again.Rewrites != 0 {
			t.Fatalf("rewrite not idempotent: %d more rewrites\nfirst output:\n%s", again.Rewrites, res.Source)
		}
		if res.Rewrites != len(res.Positions) {
			t.Fatalf("rewrites %d != positions %d", res.Rewrites, len(res.Positions))
		}
		_ = strings.Contains(string(res.Source), "Scatterv")
	})
}

package store

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testEntry(i int) Entry {
	p := 3 + i%4
	dist := make([]int, p)
	items := 0
	for j := range dist {
		dist[j] = 100*i + 17*j + 1
		items += dist[j]
	}
	return Entry{
		Sig:      fmt.Sprintf("lin(0x1.%xp-10)|lin(0x1.ap-8);site%d", i, i),
		Items:    items,
		Makespan: 1.5*float64(i) + 0.1,
		Dist:     dist,
	}
}

func openT(t *testing.T, path string) (*Store, RecoveryInfo) {
	t.Helper()
	s, info, err := Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return s, info
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, info := openT(t, path)
	if info.Records != 0 || info.TornBytes != 0 || info.Reset {
		t.Fatalf("fresh store recovery = %+v, want zero", info)
	}
	const k = 9
	for i := 0; i < k; i++ {
		if err := s.Append(testEntry(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if s.Len() != k {
		t.Fatalf("Len = %d, want %d", s.Len(), k)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	s2, info := openT(t, path)
	defer s2.Close()
	if info.Records != k || info.Entries != k || info.TornBytes != 0 || info.Reset {
		t.Fatalf("recovery = %+v, want %d clean records", info, k)
	}
	for i := 0; i < k; i++ {
		want := testEntry(i)
		got, ok := s2.Get(want.Sig, want.Items)
		if !ok {
			t.Fatalf("entry %d missing after reopen", i)
		}
		if !equalEntry(got, want) {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want)
		}
	}
}

func TestStoreMakespanBitExact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	e := testEntry(0)
	e.Makespan = math.Nextafter(403.97522960000003, 404) // an awkward mantissa
	if err := s.Append(e); err != nil {
		t.Fatalf("append: %v", err)
	}
	s.Close()
	s2, _ := openT(t, path)
	defer s2.Close()
	got, ok := s2.Get(e.Sig, e.Items)
	if !ok {
		t.Fatal("entry missing")
	}
	if math.Float64bits(got.Makespan) != math.Float64bits(e.Makespan) {
		t.Fatalf("makespan bits %x != %x", math.Float64bits(got.Makespan), math.Float64bits(e.Makespan))
	}
}

// TestStoreTornAppend simulates kill -9 mid-append: only a prefix of
// the last frame reaches the disk. Recovery must keep every earlier
// record, truncate the torn tail, and a second recovery must be clean.
func TestStoreTornAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	const k = 5
	for i := 0; i < k; i++ {
		if err := s.Append(testEntry(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	s.Close()

	torn := frame(testEntry(k))
	for cut := 1; cut < len(torn); cut += 7 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tornPath := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(tornPath, append(append([]byte(nil), data...), torn[:cut]...), 0o644); err != nil {
			t.Fatal(err)
		}
		s2, info := openT(t, tornPath)
		if info.Records != k {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, info.Records, k)
		}
		if info.TornBytes != int64(cut) {
			t.Fatalf("cut %d: TornBytes = %d, want %d", cut, info.TornBytes, cut)
		}
		s2.Close()
		s3, info := openT(t, tornPath)
		if info.Records != k || info.TornBytes != 0 {
			t.Fatalf("cut %d: second recovery = %+v, want clean %d records", cut, info, k)
		}
		s3.Close()
	}
}

// TestStoreCorruptMiddle flips one byte inside an early record: every
// record before the damage must survive, everything from it on is
// dropped (prefix semantics).
func TestStoreCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	const k = 6
	offsets := []int64{int64(len(header))}
	for i := 0; i < k; i++ {
		if err := s.Append(testEntry(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		sz, err := s.Size()
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, sz)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt one byte inside record 2 (between offsets[2] and [3]).
	for _, at := range []int64{offsets[2], (offsets[2] + offsets[3]) / 2, offsets[3] - 1} {
		mut := append([]byte(nil), data...)
		mut[at] ^= 0x5a
		p := filepath.Join(t.TempDir(), "corrupt.wal")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s2, info := openT(t, p)
		if info.Records != 2 {
			t.Fatalf("corrupt @%d: recovered %d records, want 2", at, info.Records)
		}
		if info.TornBytes != int64(len(data))-offsets[2] {
			t.Fatalf("corrupt @%d: TornBytes = %d, want %d", at, info.TornBytes, int64(len(data))-offsets[2])
		}
		for i := 0; i < 2; i++ {
			want := testEntry(i)
			if got, ok := s2.Get(want.Sig, want.Items); !ok || !equalEntry(got, want) {
				t.Fatalf("corrupt @%d: record %d not recovered intact", at, i)
			}
		}
		s2.Close()
	}
}

// TestStoreHeaderCorruption: a damaged version header means nothing in
// the file can be trusted; the store restarts empty rather than erroring.
func TestStoreHeaderCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	if err := s.Append(testEntry(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, info := openT(t, path)
	defer s2.Close()
	if !info.Reset || info.Records != 0 || s2.Len() != 0 {
		t.Fatalf("recovery after header damage = %+v len=%d, want reset empty", info, s2.Len())
	}
	// The reset store must be fully usable again.
	if err := s2.Append(testEntry(1)); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
}

func TestStoreAppendDedupAndConflict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	defer s.Close()
	e := testEntry(0)
	if err := s.Append(e); err != nil {
		t.Fatal(err)
	}
	size1, _ := s.Size()
	if err := s.Append(e); err != nil {
		t.Fatalf("identical re-append: %v", err)
	}
	size2, _ := s.Size()
	if size1 != size2 {
		t.Fatalf("identical re-append grew the log: %d -> %d", size1, size2)
	}
	bad := testEntry(0)
	bad.Dist = append([]int(nil), bad.Dist...)
	bad.Dist[0]++
	bad.Dist[1]--
	if err := s.Append(bad); err == nil {
		t.Fatal("conflicting distribution for an existing key must be rejected")
	}
}

func TestStoreAppendValidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	defer s.Close()
	cases := []Entry{
		{Sig: "", Items: 1, Dist: []int{1}},
		{Sig: "a b", Items: 1, Dist: []int{1}},
		{Sig: "a\nb", Items: 1, Dist: []int{1}},
		{Sig: "ok", Items: 1, Dist: nil},
		{Sig: "ok", Items: 1, Dist: []int{2}},
		{Sig: "ok", Items: -1, Dist: []int{-1}},
		{Sig: "ok", Items: 1, Dist: []int{1}, Makespan: math.NaN()},
		{Sig: "ok", Items: 1, Dist: []int{1}, Makespan: math.Inf(1)},
	}
	for i, e := range cases {
		if err := s.Append(e); err == nil {
			t.Errorf("case %d (%+v): invalid entry accepted", i, e)
		}
	}
}

func TestStoreCompact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.wal")
	s, _ := openT(t, path)
	const k = 7
	for i := 0; i < k; i++ {
		if err := s.Append(testEntry(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// The store must remain appendable after the rename swap.
	if err := s.Append(testEntry(k)); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	s.Close()

	s2, info := openT(t, path)
	if info.Records != k+1 || info.TornBytes != 0 {
		t.Fatalf("recovery after compact = %+v, want %d clean records", info, k+1)
	}
	s2.Close()

	// Compacting twice yields byte-identical files: entries are written
	// in sorted key order, independent of append or map order.
	s3, _ := openT(t, path)
	if err := s3.Compact(); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Compact(); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s3.Close()
	if !bytes.Equal(first, second) {
		t.Fatal("repeated compaction is not deterministic")
	}
	if !bytes.HasPrefix(first, []byte(header)) {
		t.Fatal("compacted file lost its header")
	}
	if got, want := strings.Count(string(first), "\nsig "), k+1; got != want {
		t.Fatalf("compacted file holds %d records, want %d", got, want)
	}
}

func TestStoreClosedOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.wal")
	s, _ := openT(t, path)
	s.Close()
	if err := s.Append(testEntry(0)); err == nil {
		t.Fatal("append after close must fail")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("compact after close must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

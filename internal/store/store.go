// Package store implements the daemon's durable plan store: an
// append-only, CRC-framed write-ahead log of solved distributions
// keyed by the canonical platform signature (core.PlatformSignature)
// and item count, so a restarted scatterd answers every previously
// solved request without re-running a multi-second DP.
//
// The on-disk format follows the text-codec discipline of the fault
// package's "ledger v1" (DESIGN.md §9): human-readable lines, a
// version header, strict replay validation. On top of that it adds
// crash-safety framing, because a daemon — unlike the in-memory
// ledger — dies mid-write:
//
//	planwal v1\n
//	plan <payloadLen> <crc32c-hex>\n
//	sig <signature>\n
//	items <n>\n
//	makespan <hex-float>\n
//	dist <d0> <d1> ... <dp-1>\n
//	... next frame ...
//
// Each record frame is a header line carrying the payload's byte
// length and CRC-32C, followed by exactly payloadLen payload bytes.
// Recovery replays frames from the top and stops at the first frame
// that is short, fails its CRC, or fails semantic validation (the
// distribution must sum to the item count); everything from that
// offset on is a torn tail and is truncated away, so a crash mid-
// append (or tail corruption) costs at most the records at and after
// the damage — every earlier committed plan survives. Makespans are
// encoded as hex floats so recovered results are bit-identical to the
// solves that produced them. Compaction rewrites the live entries in
// sorted order to a temporary file and renames it into place, so it
// is atomic: a crash during compaction leaves either the old or the
// new WAL, never a mix.
package store

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// header is the WAL version line.
const header = "planwal v1\n"

// maxPayload bounds a frame's declared payload length, so a corrupt
// header cannot make recovery allocate gigabytes.
const maxPayload = 1 << 26

// castagnoli is the CRC-32C table used for frame checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Entry is one persisted plan: the distribution an engine solve
// produced for (Sig, Items).
type Entry struct {
	// Sig is the canonical platform signature (core.PlatformSignature).
	Sig string
	// Items is the solved item count; the distribution sums to it.
	Items int
	// Makespan is the predicted makespan of the distribution.
	Makespan float64
	// Dist is the per-processor item distribution, root last.
	Dist []int
}

// validate rejects entries the codec cannot round-trip exactly.
func (e Entry) validate() error {
	if e.Sig == "" || strings.ContainsAny(e.Sig, " \t\n\r") {
		return fmt.Errorf("store: unusable signature %q", e.Sig)
	}
	if len(e.Dist) == 0 {
		return fmt.Errorf("store: entry for %q has an empty distribution", e.Sig)
	}
	if math.IsNaN(e.Makespan) || math.IsInf(e.Makespan, 0) || e.Makespan < 0 {
		return fmt.Errorf("store: entry for %q has makespan %v", e.Sig, e.Makespan)
	}
	sum := 0
	for _, d := range e.Dist {
		if d < 0 {
			return fmt.Errorf("store: entry for %q has negative share %d", e.Sig, d)
		}
		sum += d
	}
	if sum != e.Items {
		return fmt.Errorf("store: entry for %q sums to %d, want %d items", e.Sig, sum, e.Items)
	}
	return nil
}

// RecoveryInfo reports what Open found in the WAL.
type RecoveryInfo struct {
	// Records is the number of committed records replayed.
	Records int
	// Entries is the number of live (sig, items) entries after replay;
	// lower than Records when the log contains superseded duplicates.
	Entries int
	// TornBytes is the length of the torn or corrupt tail that was
	// truncated away (0 for a clean log).
	TornBytes int64
	// Reset reports that the version header itself was unusable and
	// the store restarted empty.
	Reset bool
}

// Store is the durable plan store. All methods are safe for concurrent
// use. The WAL assumes a single writing process; running two daemons
// against one file corrupts neither's memory but interleaves frames
// unpredictably.
type Store struct {
	mu      sync.Mutex
	path    string           //scatterlint:guardedby immutable
	f       *os.File         //scatterlint:guardedby mu
	entries map[string]Entry //scatterlint:guardedby mu
	records int              //scatterlint:guardedby mu
}

// key is the in-memory index key for (sig, items).
func key(sig string, items int) string {
	return sig + "#" + strconv.Itoa(items)
}

// Open reads (or creates) the WAL at path, replays every committed
// record, truncates any torn or corrupt tail, and returns the store
// ready for appends. Corrupt content is never an error — recovery
// keeps the longest valid prefix — only real I/O failures are.
func Open(path string) (*Store, RecoveryInfo, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{path: path, f: f, entries: make(map[string]Entry)}
	info, err := s.recover()
	if err != nil {
		f.Close()
		return nil, RecoveryInfo{}, err
	}
	return s, info, nil
}

// recover replays the WAL and truncates the torn tail. Called once
// from Open, before the store is shared.
func (s *Store) recover() (RecoveryInfo, error) {
	var info RecoveryInfo
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return info, fmt.Errorf("store: seek %s: %w", s.path, err)
	}
	r := bufio.NewReader(s.f)

	size, err := s.f.Stat()
	if err != nil {
		return info, fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	total := size.Size()

	hdr, err := readLine(r, len(header))
	switch {
	case err == io.EOF && hdr == "":
		// Fresh file: write the header.
		if werr := s.rewrite(nil); werr != nil {
			return info, werr
		}
		return info, nil
	case err == nil && hdr == strings.TrimSuffix(header, "\n"):
		// Valid header; replay records below.
	default:
		// Unreadable or wrong header: nothing before it can be
		// trusted, restart the store empty.
		info.Reset = true
		info.TornBytes = total
		if werr := s.rewrite(nil); werr != nil {
			return info, werr
		}
		return info, nil
	}

	good := int64(len(header)) // offset of the first byte after the last valid record
	off := good
	for {
		line, err := readLine(r, 64)
		if err != nil || line == "" {
			break
		}
		off += int64(len(line)) + 1
		var plen int
		var crc uint32
		if n, err := fmt.Sscanf(line, "plan %d %x", &plen, &crc); n != 2 || err != nil {
			break
		}
		if plen <= 0 || plen > maxPayload {
			break
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		off += int64(plen)
		if crc32.Checksum(payload, castagnoli) != crc {
			break
		}
		e, err := decodePayload(payload)
		if err != nil {
			break
		}
		s.entries[key(e.Sig, e.Items)] = e
		s.records++
		good = off
	}
	info.Records = s.records
	info.Entries = len(s.entries)
	if good < total {
		info.TornBytes = total - good
		if err := s.f.Truncate(good); err != nil {
			return info, fmt.Errorf("store: truncate torn tail of %s: %w", s.path, err)
		}
		if err := s.f.Sync(); err != nil {
			return info, fmt.Errorf("store: sync %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(0, io.SeekEnd); err != nil {
		return info, fmt.Errorf("store: seek %s: %w", s.path, err)
	}
	return info, nil
}

// readLine reads one \n-terminated line without the terminator,
// rejecting lines longer than roughly max bytes (a corrupt frame, not
// a real header). Returns io.EOF with what was read when the file ends
// without a terminator.
func readLine(r *bufio.Reader, max int) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return strings.TrimSuffix(line, "\n"), err
	}
	if len(line) > max+1 {
		return "", fmt.Errorf("store: line of %d bytes exceeds %d", len(line), max)
	}
	return strings.TrimSuffix(line, "\n"), nil
}

// encodePayload renders an entry in the documented text form.
func encodePayload(e Entry) []byte {
	var sb strings.Builder
	sb.WriteString("sig ")
	sb.WriteString(e.Sig)
	sb.WriteString("\nitems ")
	sb.WriteString(strconv.Itoa(e.Items))
	sb.WriteString("\nmakespan ")
	sb.WriteString(strconv.FormatFloat(e.Makespan, 'x', -1, 64))
	sb.WriteString("\ndist")
	for _, d := range e.Dist {
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(d))
	}
	sb.WriteByte('\n')
	return []byte(sb.String())
}

// decodePayload parses and validates the text form.
func decodePayload(payload []byte) (Entry, error) {
	var e Entry
	lines := strings.Split(strings.TrimSuffix(string(payload), "\n"), "\n")
	if len(lines) != 4 {
		return e, fmt.Errorf("store: payload has %d lines, want 4", len(lines))
	}
	sig, ok := strings.CutPrefix(lines[0], "sig ")
	if !ok {
		return e, fmt.Errorf("store: bad sig line %q", lines[0])
	}
	e.Sig = sig
	itemsStr, ok := strings.CutPrefix(lines[1], "items ")
	if !ok {
		return e, fmt.Errorf("store: bad items line %q", lines[1])
	}
	items, err := strconv.Atoi(itemsStr)
	if err != nil {
		return e, fmt.Errorf("store: bad item count %q: %w", itemsStr, err)
	}
	e.Items = items
	msStr, ok := strings.CutPrefix(lines[2], "makespan ")
	if !ok {
		return e, fmt.Errorf("store: bad makespan line %q", lines[2])
	}
	ms, err := strconv.ParseFloat(msStr, 64)
	if err != nil {
		return e, fmt.Errorf("store: bad makespan %q: %w", msStr, err)
	}
	e.Makespan = ms
	distStr, ok := strings.CutPrefix(lines[3], "dist")
	if !ok {
		return e, fmt.Errorf("store: bad dist line %q", lines[3])
	}
	for _, fld := range strings.Fields(distStr) {
		d, err := strconv.Atoi(fld)
		if err != nil {
			return e, fmt.Errorf("store: bad dist share %q: %w", fld, err)
		}
		e.Dist = append(e.Dist, d)
	}
	if err := e.validate(); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// frame renders the full record frame (header line + payload) for an
// entry.
func frame(e Entry) []byte {
	payload := encodePayload(e)
	hdr := fmt.Sprintf("plan %d %08x\n", len(payload), crc32.Checksum(payload, castagnoli))
	return append([]byte(hdr), payload...)
}

// Append durably records an entry: one frame write followed by an
// fsync, so an acknowledged append survives a crash. Re-appending an
// entry identical to the live one for its key is a no-op; a different
// distribution for an existing key is an error — solves are
// deterministic, so a conflicting result means a corrupted caller.
func (s *Store) Append(e Entry) error {
	if err := e.validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	k := key(e.Sig, e.Items)
	if cur, ok := s.entries[k]; ok {
		if equalEntry(cur, e) {
			return nil
		}
		return fmt.Errorf("store: conflicting result for %s: have %v, got %v", k, cur.Dist, e.Dist)
	}
	if _, err := s.f.Write(frame(e)); err != nil {
		return fmt.Errorf("store: append to %s: %w", s.path, err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", s.path, err)
	}
	// Copy the distribution so later caller mutations cannot alias
	// into the index.
	e.Dist = append([]int(nil), e.Dist...)
	s.entries[k] = e
	s.records++
	return nil
}

// equalEntry compares two entries bit-for-bit.
func equalEntry(a, b Entry) bool {
	if a.Sig != b.Sig || a.Items != b.Items || a.Makespan != b.Makespan || len(a.Dist) != len(b.Dist) {
		return false
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] {
			return false
		}
	}
	return true
}

// Get returns the persisted entry for (sig, items). The returned
// distribution is a copy; callers may keep it.
func (s *Store) Get(sig string, items int) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key(sig, items)]
	if !ok {
		return Entry{}, false
	}
	e.Dist = append([]int(nil), e.Dist...)
	return e, true
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Records returns the number of records in the log, live plus
// superseded; a gap between Records and Len means Compact would
// shrink the file.
func (s *Store) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Path returns the WAL file path.
func (s *Store) Path() string { return s.path }

// Size returns the WAL's current byte size.
func (s *Store) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("store: %s is closed", s.path)
	}
	st, err := s.f.Stat()
	if err != nil {
		return 0, fmt.Errorf("store: stat %s: %w", s.path, err)
	}
	return st.Size(), nil
}

// Compact atomically rewrites the WAL to exactly the live entries, in
// sorted key order so the rewritten file is deterministic. A crash
// during compaction leaves either the old file or the new one, never
// a mix: the new log is fully written and fsynced under a temporary
// name first, then renamed over the old one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s is closed", s.path)
	}
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	entries := make([]Entry, len(keys))
	for i, k := range keys {
		entries[i] = s.entries[k]
	}
	if err := s.rewrite(entries); err != nil {
		return err
	}
	s.records = len(entries)
	return nil
}

// rewrite replaces the WAL file with header + the given frames, via
// temp file, fsync, and rename. Callers hold s.mu (or own the store
// exclusively, during Open).
func (s *Store) rewrite(entries []Entry) error {
	dir, base := filepath.Split(s.path)
	tmp, err := os.CreateTemp(dir, base+".compact-*")
	if err != nil {
		return fmt.Errorf("store: compact temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	w.WriteString(header)
	for _, e := range entries {
		w.Write(frame(e))
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	old := s.f
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopen %s: %w", s.path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seek %s: %w", s.path, err)
	}
	s.f = f
	if old != nil {
		old.Close()
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// Close releases the WAL file. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("store: close %s: %w", s.path, err)
	}
	return nil
}

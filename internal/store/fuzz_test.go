package store

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALRecover builds a valid WAL from a seeded batch of entries,
// applies an arbitrary byte-level truncation and a one-byte mutation,
// and asserts the recovery contract: Open never panics and never
// errors on corruption, the recovered entries are exactly a prefix of
// the committed sequence with every survivor bit-identical to what was
// appended, and recovery is idempotent — a second Open of the repaired
// file is clean and recovers the same prefix.
//
// Committed seeds cover the interesting strata: no damage, a cut in
// the middle of a frame, a flipped CRC byte, a flipped payload byte,
// damage to the version header, and a same-value "flip" (no-op).
func FuzzWALRecover(f *testing.F) {
	f.Add(int64(1), uint8(4), uint32(1<<30), uint32(0), byte(0))     // no truncation, header byte 0 "flipped" to 0? mutated below
	f.Add(int64(2), uint8(6), uint32(200), uint32(150), byte(0x5a))  // cut + flip mid-log
	f.Add(int64(3), uint8(1), uint32(1<<30), uint32(12), byte(0xff)) // flip inside the first frame header
	f.Add(int64(4), uint8(8), uint32(40), uint32(2), byte(0x00))     // cut right after the version header
	f.Add(int64(5), uint8(3), uint32(1<<30), uint32(3), byte('w'))   // damage the version header itself
	f.Add(int64(6), uint8(5), uint32(9999), uint32(77), byte(0x01))  // cut beyond EOF (no-op), small flip

	f.Fuzz(func(t *testing.T, seed int64, nEntries uint8, cut uint32, pos uint32, val byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "plans.wal")
		s, _, err := Open(path)
		if err != nil {
			t.Fatalf("open fresh: %v", err)
		}
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(nEntries)%8
		committed := make([]Entry, k)
		for i := range committed {
			p := 2 + rng.Intn(5)
			dist := make([]int, p)
			items := 0
			for j := range dist {
				dist[j] = rng.Intn(1000)
				items += dist[j]
			}
			committed[i] = Entry{
				Sig:      fmt.Sprintf("lin(0x1.%xp-%d)|fuzz%d", rng.Intn(1<<16), 1+rng.Intn(20), i),
				Items:    items,
				Makespan: rng.Float64() * 1000,
				Dist:     dist,
			}
			if err := s.Append(committed[i]); err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int(cut) < len(data) {
			data = data[:cut]
		}
		if len(data) > 0 {
			data[int(pos)%len(data)] = val
		}
		mutPath := filepath.Join(dir, "mut.wal")
		if err := os.WriteFile(mutPath, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Recovery must never panic or error on corruption.
		s2, info, err := Open(mutPath)
		if err != nil {
			t.Fatalf("recovery errored on corrupt input: %v", err)
		}
		checkPrefix(t, s2, committed, info)
		if err := s2.Close(); err != nil {
			t.Fatalf("close recovered: %v", err)
		}

		// Idempotence: the repaired file recovers cleanly to the same
		// prefix.
		s3, info2, err := Open(mutPath)
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if info2.TornBytes != 0 || info2.Reset {
			t.Fatalf("second recovery not clean: %+v", info2)
		}
		if info2.Records != info.Records || s3.Len() != info.Entries {
			t.Fatalf("second recovery found %d records / %d entries, first found %d / %d",
				info2.Records, s3.Len(), info.Records, info.Entries)
		}
		checkPrefix(t, s3, committed, info2)
		s3.Close()
	})
}

// checkPrefix asserts the recovered store holds exactly committed[:m]
// for some m, each entry bit-identical to what was appended.
func checkPrefix(t *testing.T, s *Store, committed []Entry, info RecoveryInfo) {
	t.Helper()
	m := info.Records
	if m > len(committed) {
		t.Fatalf("recovered %d records from a log of %d", m, len(committed))
	}
	if s.Len() != m {
		// Every committed entry has a distinct sig, so live entries
		// must equal replayed records.
		t.Fatalf("recovered %d records but %d live entries", m, s.Len())
	}
	for i := 0; i < m; i++ {
		want := committed[i]
		got, ok := s.Get(want.Sig, want.Items)
		if !ok {
			t.Fatalf("recovery kept %d records but committed entry %d is missing: not a prefix", m, i)
		}
		if !equalEntry(got, want) {
			t.Fatalf("recovered entry %d = %+v, want bit-identical %+v", i, got, want)
		}
	}
}

package simgrid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Additional resource/engine properties beyond simgrid_test.go.

// TestResourceFinishTimeMonotoneProperty: more work never finishes
// earlier, and the finish time is never before the start.
func TestResourceFinishTimeMonotoneProperty(t *testing.T) {
	f := func(startRaw, w1Raw, w2Raw float64, winStart, winLen uint8, factorRaw float64) bool {
		start := math.Abs(math.Mod(startRaw, 1000))
		w1 := math.Abs(math.Mod(w1Raw, 1000))
		w2 := w1 + math.Abs(math.Mod(w2Raw, 1000))
		factor := 0.1 + math.Abs(math.Mod(factorRaw, 4))
		r := &Resource{Name: "p"}
		if winLen > 0 {
			if err := r.AddWindow(RateWindow{
				Start:  float64(winStart),
				End:    float64(winStart) + float64(winLen),
				Factor: factor,
			}); err != nil {
				return false
			}
		}
		f1 := r.FinishTime(start, w1)
		f2 := r.FinishTime(start, w2)
		return f1 >= start && f2 >= f1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestResourceWorkConservation: the finish time of work W started at t
// on a resource with a single window satisfies the integral equation
// (we recompute the consumed work from the reported finish).
func TestResourceWorkConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 100; trial++ {
		r := &Resource{Name: "c"}
		wStart := rng.Float64() * 50
		wEnd := wStart + 1 + rng.Float64()*50
		factor := 0.25 + rng.Float64()*2
		if err := r.AddWindow(RateWindow{Start: wStart, End: wEnd, Factor: factor}); err != nil {
			t.Fatal(err)
		}
		start := rng.Float64() * 80
		work := rng.Float64() * 100
		finish := r.FinishTime(start, work)

		// Recompute the work done in [start, finish].
		done := 0.0
		segStart := start
		for _, seg := range []struct{ a, b, rate float64 }{
			{start, math.Min(finish, wStart), 1},
			{math.Max(start, wStart), math.Min(finish, wEnd), factor},
			{math.Max(start, wEnd), finish, 1},
		} {
			if seg.b > seg.a {
				done += (seg.b - seg.a) * seg.rate
			}
			_ = segStart
		}
		if math.Abs(done-work) > 1e-6*(1+work) {
			t.Fatalf("trial %d: finish %g accounts for %g work, want %g (window [%g,%g)x%g, start %g)",
				trial, finish, done, work, wStart, wEnd, factor, start)
		}
	}
}

func TestEngineEmptyRun(t *testing.T) {
	var eng Engine
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() != 0 || eng.Steps() != 0 {
		t.Errorf("empty run advanced to %g after %d steps", eng.Now(), eng.Steps())
	}
}

func TestEngineManyEventsStress(t *testing.T) {
	var eng Engine
	rng := rand.New(rand.NewSource(62))
	fired := 0
	for i := 0; i < 5000; i++ {
		eng.At(rng.Float64()*1000, func() { fired++ })
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5000 {
		t.Errorf("fired %d events, want 5000", fired)
	}
}

// TestRunNoisePreservesOrdering: noise perturbs durations but never
// breaks the single-port invariant (receive starts are ordered).
func TestRunNoisePreservesOrdering(t *testing.T) {
	procs := simProcs()
	for seed := int64(0); seed < 10; seed++ {
		tl, err := Run(Config{
			Procs: procs,
			Dist:  []int{3, 3, 3, 3},
			Noise: &Noise{Seed: seed, CommStdDev: 0.3, CompStdDev: 0.3},
		})
		if err != nil {
			t.Fatal(err)
		}
		prevEnd := 0.0
		for i, p := range tl.Procs {
			if p.Recv.Start < prevEnd-1e-9 {
				t.Fatalf("seed %d: proc %d receives at %g before the port freed at %g",
					seed, i, p.Recv.Start, prevEnd)
			}
			prevEnd = p.Recv.End
		}
	}
}

package simgrid

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fault"
)

func TestPlanWindowsConversion(t *testing.T) {
	plan := fault.MustPlan(
		fault.Fault{Kind: fault.Crash, Rank: 0, Start: 5},
		fault.Fault{Kind: fault.LinkDrop, Rank: 0, Start: 2, End: 8}, // clipped at the crash
		fault.Fault{Kind: fault.SlowLink, Rank: 1, Start: 1, End: 3, Factor: 4},
		fault.Fault{Kind: fault.LinkDrop, Rank: 9, Start: 0, End: 1}, // outside names: ignored
	)
	cpu, link := PlanWindows(plan, []string{"a", "b"})

	if ws := cpu["a"]; len(ws) != 1 || ws[0].Start != 5 || !math.IsInf(ws[0].End, 1) || ws[0].Factor != 0 {
		t.Errorf("cpu[a] = %+v, want one [5, +Inf) stop", ws)
	}
	if ws := link["a"]; len(ws) != 2 || ws[0] != (RateWindow{Start: 2, End: 5, Factor: 0}) {
		t.Errorf("link[a] = %+v, want clipped drop [2, 5) then the crash stop", ws)
	}
	if ws := link["b"]; len(ws) != 1 || ws[0] != (RateWindow{Start: 1, End: 3, Factor: 0.25}) {
		t.Errorf("link[b] = %+v, want one quarter-speed window [1, 3)", ws)
	}
	if len(cpu["b"]) != 0 {
		t.Errorf("cpu[b] = %+v, want none", cpu["b"])
	}
	if len(link["c"])+len(cpu["c"]) != 0 {
		t.Error("windows emitted for a name not in the slice")
	}
}

func TestPlanWindowsNilPlan(t *testing.T) {
	cpu, link := PlanWindows(nil, []string{"a"})
	if len(cpu)+len(link) != 0 {
		t.Errorf("nil plan produced windows: %v, %v", cpu, link)
	}
}

// twoProcs returns a tiny platform in service order (root last).
func twoProcs() []core.Processor {
	return []core.Processor{
		{Name: "worker", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
}

func TestCrashedRankNeverFinishesPlainScatter(t *testing.T) {
	// Without fault tolerance, a scatter to a rank that crashes
	// mid-transfer runs forever: the simulator's makespan is +Inf. This
	// is the baseline the mpi.FaultTolerantScatterv recovery is
	// measured against.
	plan := fault.MustPlan(fault.Fault{Kind: fault.Crash, Rank: 0, Start: 2})
	cpuW, linkW := PlanWindows(plan, []string{"worker"})
	tl, err := Run(Config{
		Procs:    twoProcs(),
		Dist:     core.Distribution{4, 4},
		CPULoad:  cpuW,
		LinkLoad: linkW,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tl.Makespan, 1) {
		t.Errorf("makespan = %g, want +Inf", tl.Makespan)
	}
}

func TestSlowLinkWindowStretchesReceive(t *testing.T) {
	plan := fault.MustPlan(fault.Fault{Kind: fault.SlowLink, Rank: 0, Start: 0, End: 100, Factor: 2})
	_, linkW := PlanWindows(plan, []string{"worker"})
	tl, err := Run(Config{
		Procs:    twoProcs(),
		Dist:     core.Distribution{4, 4},
		LinkLoad: linkW,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 items at 1 s/item over a half-speed link: recv ends at 8.
	if got := tl.Procs[0].Recv.End; math.Abs(got-8) > 1e-9 {
		t.Errorf("recv end = %g, want 8", got)
	}
}

// Package simgrid is a small discrete-event simulator for grid
// executions of scatter+compute programs under the paper's hardware
// model (Section 2.3): a single-port root that serializes its sends in
// rank order, heterogeneous links, and heterogeneous processors.
//
// Beyond the analytic timelines of internal/schedule, the simulator
// supports time-varying resource speeds — background load peaks on a
// CPU (the paper's sekhmet suffered one during the Figure 4 run) and
// bandwidth dips on a link — plus reproducible multiplicative noise,
// so the experiments can show the same secondary effects the paper
// reports.
package simgrid

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback in virtual time.
type event struct {
	at  float64
	seq int // tie-break: FIFO among simultaneous events
	fn  func()
}

// eventQueue is a min-heap of events ordered by time then sequence.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation kernel: a virtual clock and an
// event queue. The zero value is ready to use.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int
	steps int
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns the number of events executed so far.
func (e *Engine) Steps() int { return e.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is an error surfaced at Run time.
func (e *Engine) At(t float64, fn func()) {
	e.seq++
	heap.Push(&e.queue, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run executes events in time order until the queue is empty. It
// returns an error if an event was scheduled before the current time
// (causality violation).
func (e *Engine) Run() error {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.at < e.now {
			return fmt.Errorf("simgrid: event scheduled at %g, but time is already %g", ev.at, e.now)
		}
		e.now = ev.at
		e.steps++
		ev.fn()
	}
	return nil
}

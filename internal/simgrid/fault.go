package simgrid

import "repro/internal/fault"

// PlanWindows converts a fault plan into the simulator's rate windows,
// cross-checking the runtime's failure injection against the
// discrete-event model: a crash stops the rank's CPU and link forever
// (a plain scatter to it never completes — FinishTime goes to +Inf), a
// link drop stops the link for the window, and a slow link runs it at
// 1/Factor speed. names maps plan ranks to processor names; faults on
// ranks outside the slice are ignored. Link windows are clipped at the
// rank's crash time so the resulting windows never overlap.
func PlanWindows(plan *fault.Plan, names []string) (cpu, link map[string][]RateWindow) {
	cpu = map[string][]RateWindow{}
	link = map[string][]RateWindow{}
	forever := inf()
	for rank, name := range names {
		ct, crashes := plan.CrashTime(rank)
		if !crashes {
			ct = forever
		}
		for _, f := range plan.Faults() {
			if f.Rank != rank || f.Kind == fault.Crash {
				continue
			}
			start, end := f.Start, f.End
			if end > ct {
				end = ct
			}
			if start >= end {
				continue // entirely after the crash
			}
			factor := 0.0 // LinkDrop
			if f.Kind == fault.SlowLink {
				factor = 1 / f.Factor
			}
			link[name] = append(link[name], RateWindow{Start: start, End: end, Factor: factor})
		}
		if crashes {
			cpu[name] = append(cpu[name], RateWindow{Start: ct, End: forever, Factor: 0})
			link[name] = append(link[name], RateWindow{Start: ct, End: forever, Factor: 0})
		}
	}
	return cpu, link
}

package simgrid

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/platform"
)

// netChain builds siteA - siteB - siteC with the root on siteA, one
// rank on siteB and one on siteC, and unit-friendly link costs.
func netChain() platform.Graph {
	return platform.Graph{
		Name: "netchain",
		Nodes: []platform.Node{
			{Name: "siteA", Machines: []platform.Machine{{Name: "rootm", CPUs: 1, Beta: 0.01}}},
			{Name: "siteB", Machines: []platform.Machine{{Name: "mb", CPUs: 1, Beta: 0.01, Alpha: 1e-5}}},
			{Name: "siteC", Machines: []platform.Machine{{Name: "mc", CPUs: 1, Beta: 0.01, Alpha: 1e-5}}},
		},
		Links: []platform.Link{
			{A: "siteA", B: "siteB", Alpha: 0.01, Latency: 0.5, Capacity: 1},
			{A: "siteB", B: "siteC", Alpha: 0.01, Latency: 0.5, Capacity: 1},
		},
		Root: "rootm",
	}
}

func TestSimulateNetworkNoContention(t *testing.T) {
	g := netChain()
	res, err := SimulateNetwork(NetworkConfig{
		Graph: g,
		Flows: []Flow{{From: "siteA", To: "siteC", Items: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two hops: latency 1.0 total, alpha 0.02/item over 100 items = 2.0.
	want := 3.0
	if math.Abs(res[0].End-want) > 1e-9 || res[0].AcquiredAt != 0 || res[0].Hops != 2 {
		t.Errorf("flow = %+v, want end %g at hops 2", res[0], want)
	}
	// Co-located endpoints: no links, instant latency-free transfer.
	res, err = SimulateNetwork(NetworkConfig{
		Graph: g,
		Flows: []Flow{{From: "siteA", To: "siteA", Items: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].End != 0 || res[0].Hops != 0 {
		t.Errorf("co-located flow = %+v", res[0])
	}
}

func TestSimulateNetworkContention(t *testing.T) {
	g := netChain()
	// Both flows need the capacity-1 A-B link: the second queues until
	// the first completes.
	res, err := SimulateNetwork(NetworkConfig{
		Graph: g,
		Flows: []Flow{
			{From: "siteA", To: "siteB", Items: 100}, // 0.5 + 1.0 = 1.5
			{From: "siteA", To: "siteB", Items: 50},  // 0.5 + 0.5 = 1.0
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].AcquiredAt != 0 || math.Abs(res[0].End-1.5) > 1e-9 {
		t.Errorf("first flow = %+v", res[0])
	}
	if math.Abs(res[1].AcquiredAt-1.5) > 1e-9 || math.Abs(res[1].End-2.5) > 1e-9 {
		t.Errorf("queued flow = %+v, want acquire 1.5 end 2.5", res[1])
	}
	// Raising the capacity removes the queueing.
	g.Links[0].Capacity = 2
	res, err = SimulateNetwork(NetworkConfig{Graph: g, Flows: []Flow{
		{From: "siteA", To: "siteB", Items: 100},
		{From: "siteA", To: "siteB", Items: 50},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res[1].AcquiredAt != 0 || math.Abs(res[1].End-1.0) > 1e-9 {
		t.Errorf("parallel flow = %+v, want acquire 0 end 1.0", res[1])
	}
}

func TestSimulateNetworkMultiHopHoldsBothLinks(t *testing.T) {
	g := netChain()
	// A long A->C flow holds both links; an A->B flow queues behind it
	// even though only the first link is shared.
	res, err := SimulateNetwork(NetworkConfig{
		Graph: g,
		Flows: []Flow{
			{From: "siteA", To: "siteC", Items: 100}, // ends at 3.0
			{From: "siteB", To: "siteC", Items: 50},  // shares B-C
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[1].AcquiredAt-3.0) > 1e-9 {
		t.Errorf("B->C flow acquired at %g, want 3.0 (behind the circuit)", res[1].AcquiredAt)
	}
}

func TestSimulateNetworkDegradeAndFlapWindows(t *testing.T) {
	g := netChain()
	faults := []fault.NetFault{{
		Kind: fault.LinkDegrade, EdgeA: "siteA", EdgeB: "siteB",
		Start: 0, End: 10, Factor: 2,
	}}
	lw, err := NetFaultWindows(g, faults)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateNetwork(NetworkConfig{
		Graph: g, LinkWindows: lw,
		Flows: []Flow{{From: "siteA", To: "siteB", Items: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The whole 1.5s transfer runs at half rate inside the window.
	if math.Abs(res[0].End-3.0) > 1e-9 {
		t.Errorf("degraded flow end = %g, want 3.0", res[0].End)
	}

	// A flap that is down for [0, 1) stalls the flow until the link
	// comes back.
	flap := []fault.NetFault{{
		Kind: fault.LinkFlap, EdgeA: "siteA", EdgeB: "siteB",
		Start: 0, End: 2, Period: 2, Duty: 0.5,
	}}
	lw, err = NetFaultWindows(g, flap)
	if err != nil {
		t.Fatal(err)
	}
	res, err = SimulateNetwork(NetworkConfig{
		Graph: g, LinkWindows: lw,
		Flows: []Flow{{From: "siteA", To: "siteB", Items: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].End-2.5) > 1e-9 {
		t.Errorf("flapped flow end = %g, want 2.5 (1.0 down + 1.5 work)", res[0].End)
	}
}

func TestSimulateNetworkPartitionStallsAndPermanentDownIsInf(t *testing.T) {
	g := netChain()
	lw, err := NetFaultWindows(g, []fault.NetFault{{
		Kind: fault.Partition, Site: "siteB", Start: 0, End: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Both links touch siteB, so both are down until the heal at t=4.
	res, err := SimulateNetwork(NetworkConfig{
		Graph: g, LinkWindows: lw,
		Flows: []Flow{{From: "siteA", To: "siteC", Items: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].End-7.0) > 1e-9 {
		t.Errorf("partitioned flow end = %g, want 7.0 (heal at 4 + 3.0 work)", res[0].End)
	}
	// A permanent outage never completes, and queued flows behind it
	// are stuck too.
	res, err = SimulateNetwork(NetworkConfig{
		Graph: g,
		LinkWindows: map[string][]RateWindow{
			LinkKey("siteA", "siteB"): {{Start: 0, End: inf(), Factor: 0}},
		},
		Flows: []Flow{
			{From: "siteA", To: "siteB", Items: 1},
			{From: "siteA", To: "siteB", Items: 1, Start: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res[0].End, 1) || !math.IsInf(res[1].End, 1) {
		t.Errorf("permanent outage ends = %g, %g; want +Inf", res[0].End, res[1].End)
	}
}

func TestScatterFlows(t *testing.T) {
	g := netChain()
	nodes, err := g.ProcessorNodes()
	if err != nil {
		t.Fatal(err)
	}
	flows, err := ScatterFlows(g, nodes, []int{10, 20, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 2 || flows[0].From != "siteA" || flows[0].To != "siteB" || flows[1].Items != 20 {
		t.Errorf("flows = %+v", flows)
	}
	if _, err := ScatterFlows(g, nodes, []int{1}); err == nil {
		t.Error("mismatched dist accepted")
	}
}

func TestBuildNetPlanLinkFaultsFollowRoutes(t *testing.T) {
	g := netChain()
	nodes, _ := g.ProcessorNodes() // [siteB siteC siteA]: mb=0, mc=1, root=2
	np, err := BuildNetPlan(g, nodes, []fault.NetFault{{
		Kind: fault.LinkDegrade, EdgeA: "siteB", EdgeB: "siteC",
		Start: 0, End: 10, Factor: 4,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Routes crossing B-C: root(A)->mc(C) and mb(B)->mc(C).
	if got := np.Slowdown(2, 1, 5); got != 4 {
		t.Errorf("root->mc slowdown = %g, want 4", got)
	}
	if got := np.Slowdown(0, 1, 5); got != 4 {
		t.Errorf("mb->mc slowdown = %g, want 4", got)
	}
	// root(A)->mb(B) does not cross B-C.
	if got := np.Slowdown(2, 0, 5); got != 1 {
		t.Errorf("root->mb slowdown = %g, want 1", got)
	}
	// Outside the window everything is clean.
	if got := np.Slowdown(2, 1, 11); got != 1 {
		t.Errorf("post-window slowdown = %g, want 1", got)
	}

	// A flap on A-B cuts the pairs routed over it, periodically.
	np, err = BuildNetPlan(g, nodes, []fault.NetFault{{
		Kind: fault.LinkFlap, EdgeA: "siteA", EdgeB: "siteB",
		Start: 0, End: 4, Period: 2, Duty: 0.5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if np.Reachable(2, 0, 0.5) || !np.Reachable(2, 0, 1.5) || np.Reachable(2, 0, 2.5) {
		t.Error("flap cut windows wrong for root->mb")
	}
	if np.Reachable(2, 1, 0.5) {
		t.Error("root->mc unaffected by flap on its route")
	}
	if !np.Reachable(0, 1, 0.5) {
		t.Error("mb->mc cut by a flap off its route")
	}
}

func TestBuildNetPlanPartitionCutsTransit(t *testing.T) {
	g := netChain()
	nodes, _ := g.ProcessorNodes() // mb=0, mc=1, root=2
	np, err := BuildNetPlan(g, nodes, []fault.NetFault{{
		Kind: fault.Partition, Site: "siteB", Start: 1, End: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	// siteB is cut off from everyone...
	if np.Reachable(2, 0, 2) || np.Reachable(1, 0, 2) {
		t.Error("partitioned site still reachable")
	}
	// ...and siteA-siteC, routed through siteB, is cut transitively.
	if np.Reachable(2, 1, 2) {
		t.Error("transit route through partitioned site survived")
	}
	// Before and after the window the pairs heal.
	if !np.Reachable(2, 1, 0.5) || !np.Reachable(2, 0, 5) {
		t.Error("partition active outside its window")
	}
	if !np.Healed(5) {
		t.Error("plan not healed after the window")
	}

	// Co-located ranks never get cut: add a second rank on siteB.
	g2 := netChain()
	g2.Nodes[1].Machines[0].CPUs = 2
	nodes2, _ := g2.ProcessorNodes() // [siteB siteB siteC siteA]
	np2, err := BuildNetPlan(g2, nodes2, []fault.NetFault{{
		Kind: fault.Partition, Site: "siteB", Start: 1, End: 5,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !np2.Reachable(0, 1, 2) {
		t.Error("co-located ranks cut by their own site's partition")
	}
}

func TestBuildNetPlanEmptyAndInvalid(t *testing.T) {
	g := netChain()
	nodes, _ := g.ProcessorNodes()
	np, err := BuildNetPlan(g, nodes, nil)
	if err != nil {
		t.Fatal(err)
	}
	if np.HasFaults() {
		t.Error("empty fault list produced a non-empty plan")
	}
	if _, err := BuildNetPlan(g, nodes, []fault.NetFault{{Kind: fault.Partition}}); err == nil {
		t.Error("invalid fault accepted")
	}
	if _, err := BuildNetPlan(g, []string{"siteA", ""}, []fault.NetFault{{
		Kind: fault.Partition, Site: "siteB", Start: 0, End: 1,
	}}); err == nil {
		t.Error("empty rank node accepted")
	}
}

package simgrid

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/schedule"
)

func TestEngineRunsEventsInOrder(t *testing.T) {
	var eng Engine
	var got []float64
	eng.At(3, func() { got = append(got, 3) })
	eng.At(1, func() { got = append(got, 1) })
	eng.At(2, func() { got = append(got, 2) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !sort.Float64sAreSorted(got) || len(got) != 3 {
		t.Errorf("events ran out of order: %v", got)
	}
	if eng.Now() != 3 {
		t.Errorf("final time = %g, want 3", eng.Now())
	}
	if eng.Steps() != 3 {
		t.Errorf("steps = %d, want 3", eng.Steps())
	}
}

func TestEngineSimultaneousEventsFIFO(t *testing.T) {
	var eng Engine
	var got []int
	eng.At(1, func() { got = append(got, 1) })
	eng.At(1, func() { got = append(got, 2) })
	eng.At(1, func() { got = append(got, 3) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var eng Engine
	total := 0
	eng.At(0, func() {
		eng.After(5, func() {
			total += 1
			eng.After(5, func() { total += 10 })
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if total != 11 || eng.Now() != 10 {
		t.Errorf("total = %d at %g, want 11 at 10", total, eng.Now())
	}
}

func TestEngineCausalityViolation(t *testing.T) {
	var eng Engine
	eng.At(5, func() { eng.At(1, func() {}) })
	if err := eng.Run(); err == nil {
		t.Error("scheduling in the past not detected")
	}
}

func TestResourceFullSpeed(t *testing.T) {
	r := &Resource{Name: "cpu"}
	if got := r.FinishTime(10, 5); got != 15 {
		t.Errorf("FinishTime = %g, want 15", got)
	}
	if got := r.FinishTime(10, 0); got != 10 {
		t.Errorf("zero work FinishTime = %g, want 10", got)
	}
}

func TestResourceHalfSpeedWindow(t *testing.T) {
	r := &Resource{Name: "cpu"}
	if err := r.AddWindow(RateWindow{Start: 10, End: 20, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	// 5 work starting at 0: finishes at 5, before the window.
	if got := r.FinishTime(0, 5); got != 5 {
		t.Errorf("before window: %g, want 5", got)
	}
	// 15 work starting at 0: 10 done by t=10, remaining 5 at half
	// speed takes 10 -> finishes at 20.
	if got := r.FinishTime(0, 15); got != 20 {
		t.Errorf("across window: %g, want 20", got)
	}
	// Work starting inside the window.
	if got := r.FinishTime(12, 2); got != 16 {
		t.Errorf("inside window: %g, want 16", got)
	}
	// Work that outlives the window resumes at full speed: start 15,
	// work 4: 2.5 at half speed until t=20 (2.5 done), 1.5 more at
	// full speed -> 21.5.
	if got := r.FinishTime(15, 4); got != 21.5 {
		t.Errorf("outliving window: %g, want 21.5", got)
	}
}

func TestResourceStoppedWindow(t *testing.T) {
	r := &Resource{Name: "cpu"}
	if err := r.AddWindow(RateWindow{Start: 5, End: 10, Factor: 0}); err != nil {
		t.Fatal(err)
	}
	// Work hits the stop and waits it out.
	if got := r.FinishTime(0, 7); got != 12 {
		t.Errorf("FinishTime = %g, want 12", got)
	}
}

func TestResourceDoubleSpeedWindow(t *testing.T) {
	r := &Resource{Name: "cpu"}
	if err := r.AddWindow(RateWindow{Start: 0, End: 4, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	if got := r.FinishTime(0, 6); got != 3 {
		t.Errorf("FinishTime = %g, want 3", got)
	}
	if got := r.FinishTime(0, 10); got != 6 {
		t.Errorf("FinishTime = %g, want 6 (8 fast + 2 normal)", got)
	}
}

func TestResourceWindowValidation(t *testing.T) {
	r := &Resource{Name: "x"}
	if err := r.AddWindow(RateWindow{Start: 5, End: 5, Factor: 1}); err == nil {
		t.Error("empty window accepted")
	}
	if err := r.AddWindow(RateWindow{Start: 0, End: 5, Factor: -1}); err == nil {
		t.Error("negative factor accepted")
	}
	if err := r.AddWindow(RateWindow{Start: 0, End: 5, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddWindow(RateWindow{Start: 4, End: 6, Factor: 0.5}); err == nil {
		t.Error("overlapping window accepted")
	}
	if err := r.AddWindow(RateWindow{Start: 5, End: 6, Factor: 0.5}); err != nil {
		t.Errorf("adjacent window rejected: %v", err)
	}
}

func TestResourceStoppedForever(t *testing.T) {
	r := &Resource{Name: "dead"}
	if err := r.AddWindow(RateWindow{Start: 0, End: inf(), Factor: 0}); err != nil {
		t.Fatal(err)
	}
	if got := r.FinishTime(0, 1); got < 1e300 {
		t.Errorf("dead resource finished at %g", got)
	}
}

func simProcs() []core.Processor {
	return []core.Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "P2", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "P3", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 3}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2}},
	}
}

func TestRunMatchesAnalyticTimeline(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(6)
		procs := make([]core.Processor, p)
		dist := make(core.Distribution, p)
		for i := range procs {
			procs[i] = core.Processor{
				Name: "x",
				Comm: cost.Affine{Fixed: rng.Float64(), PerItem: rng.Float64()},
				Comp: cost.Affine{Fixed: rng.Float64(), PerItem: rng.Float64()},
			}
			dist[i] = rng.Intn(40)
		}
		want, err := schedule.Build(procs, dist)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(Config{Procs: procs, Dist: dist})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Makespan-want.Makespan) > 1e-9 {
			t.Fatalf("trial %d: simulated makespan %g != analytic %g", trial, got.Makespan, want.Makespan)
		}
		for i := range want.Procs {
			w, g := want.Procs[i], got.Procs[i]
			if math.Abs(g.Recv.Start-w.Recv.Start) > 1e-9 ||
				math.Abs(g.Recv.End-w.Recv.End) > 1e-9 ||
				math.Abs(g.Comp.End-w.Comp.End) > 1e-9 {
				t.Fatalf("trial %d proc %d: %+v != %+v", trial, i, g, w)
			}
		}
	}
}

func TestRunCPULoadPeakDelaysOnlyThatProcessor(t *testing.T) {
	procs := simProcs()
	dist := core.Distribution{2, 2, 2, 2}
	base, err := Run(Config{Procs: procs, Dist: dist})
	if err != nil {
		t.Fatal(err)
	}
	// Halve P2's CPU from t=0 to t=100 (covering its whole compute).
	loaded, err := Run(Config{
		Procs: procs, Dist: dist,
		CPULoad: map[string][]RateWindow{"P2": {{Start: 0, End: 100, Factor: 0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Procs[1].CompTime(), 2*base.Procs[1].CompTime(); math.Abs(got-want) > 1e-9 {
		t.Errorf("loaded P2 compute = %g, want %g", got, want)
	}
	// The load peak does not touch communications, so the other
	// processors' schedules are unchanged.
	for _, i := range []int{0, 2, 3} {
		if math.Abs(loaded.Procs[i].Finish()-base.Procs[i].Finish()) > 1e-9 {
			t.Errorf("processor %d affected by P2's load peak", i)
		}
	}
}

func TestRunLinkDipDelaysSuccessors(t *testing.T) {
	procs := simProcs()
	dist := core.Distribution{2, 2, 2, 2}
	base, err := Run(Config{Procs: procs, Dist: dist})
	if err != nil {
		t.Fatal(err)
	}
	// Halve P1's link during its whole transfer: its comm takes 4
	// instead of 2, and everyone behind it shifts by 2.
	dipped, err := Run(Config{
		Procs: procs, Dist: dist,
		LinkLoad: map[string][]RateWindow{"P1": {{Start: 0, End: 50, Factor: 0.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := dipped.Procs[0].CommTime(); math.Abs(got-4) > 1e-9 {
		t.Errorf("dipped P1 comm = %g, want 4", got)
	}
	for i := 1; i < 4; i++ {
		shift := dipped.Procs[i].Recv.Start - base.Procs[i].Recv.Start
		if math.Abs(shift-2) > 1e-9 {
			t.Errorf("processor %d shifted by %g, want 2", i, shift)
		}
	}
}

func TestRunNoiseIsReproducible(t *testing.T) {
	procs := simProcs()
	dist := core.Distribution{3, 3, 3, 3}
	cfg := Config{
		Procs: procs, Dist: dist,
		Noise: &Noise{Seed: 7, CommStdDev: 0.1, CompStdDev: 0.1},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("same seed, different makespans: %g vs %g", a.Makespan, b.Makespan)
	}
	cfg.Noise.Seed = 8
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Makespan == a.Makespan {
		t.Error("different seeds produced identical noise")
	}
}

func TestRunNoiseZeroStdDevIsExact(t *testing.T) {
	procs := simProcs()
	dist := core.Distribution{2, 2, 2, 2}
	want, err := Run(Config{Procs: procs, Dist: dist})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(Config{Procs: procs, Dist: dist, Noise: &Noise{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("zero-stddev noise changed the makespan")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	procs := simProcs()
	if _, err := Run(Config{Procs: procs, Dist: core.Distribution{1}}); err == nil {
		t.Error("mismatched distribution accepted")
	}
	if _, err := Run(Config{
		Procs: procs, Dist: core.Distribution{1, 1, 1, 1},
		CPULoad: map[string][]RateWindow{"P1": {{Start: 0, End: 5, Factor: 0.5}, {Start: 4, End: 6, Factor: 0.5}}},
	}); err == nil {
		t.Error("overlapping load windows accepted")
	}
}

// TestRunStairEffectVisible reproduces Figure 1's qualitative claim:
// with a uniform distribution, receive-start times strictly increase.
func TestRunStairEffectVisible(t *testing.T) {
	procs := simProcs()
	tl, err := Run(Config{Procs: procs, Dist: core.Uniform(4, 12)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tl.Procs)-1; i++ { // root's "receive" is instant
		if tl.Procs[i].Recv.Start <= tl.Procs[i-1].Recv.Start {
			t.Errorf("no stair: proc %d starts at %g, prev at %g",
				i, tl.Procs[i].Recv.Start, tl.Procs[i-1].Recv.Start)
		}
	}
}

package simgrid

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/schedule"
)

// Noise adds reproducible multiplicative noise to every communication
// and computation phase, modeling measurement jitter: each phase's
// duration is multiplied by max(0.05, 1 + StdDev*N(0,1)).
type Noise struct {
	// Seed makes the noise reproducible.
	Seed int64
	// CommStdDev and CompStdDev are the relative standard deviations
	// of communication and computation durations.
	CommStdDev, CompStdDev float64
}

// Config describes one simulated run.
type Config struct {
	// Procs are the processors in service order (root last), as for
	// the analytic solvers.
	Procs []core.Processor
	// Dist is the distribution to execute.
	Dist core.Distribution
	// CPULoad holds background-load windows per processor name: the
	// CPU runs at Factor times its speed inside each window. This is
	// how the sekhmet "peak load" of the paper's Figure 4 run is
	// injected.
	CPULoad map[string][]RateWindow
	// LinkLoad holds bandwidth-variation windows per processor name,
	// applied to the root-to-processor transfer.
	LinkLoad map[string][]RateWindow
	// Noise, when non-nil, perturbs every phase multiplicatively.
	Noise *Noise
}

// Run simulates the scatter+compute execution and returns its timeline.
// With no perturbations the result is exactly the analytic timeline of
// schedule.Build (a property the tests rely on).
func Run(cfg Config) (schedule.Timeline, error) {
	if len(cfg.Procs) != len(cfg.Dist) {
		return schedule.Timeline{}, fmt.Errorf("simgrid: %d processors but %d shares", len(cfg.Procs), len(cfg.Dist))
	}
	if err := core.ValidateProcessors(cfg.Procs); err != nil && len(cfg.Procs) > 0 {
		return schedule.Timeline{}, err
	}
	if len(cfg.Procs) == 0 {
		return schedule.Timeline{}, errors.New("simgrid: no processors")
	}

	p := len(cfg.Procs)
	var rng *rand.Rand
	if cfg.Noise != nil {
		rng = rand.New(rand.NewSource(cfg.Noise.Seed))
	}

	// Build the per-processor resources.
	cpus := make([]*Resource, p)
	links := make([]*Resource, p)
	for i, pr := range cfg.Procs {
		cpus[i] = &Resource{Name: pr.Name + "/cpu"}
		links[i] = &Resource{Name: pr.Name + "/link"}
		for _, w := range cfg.CPULoad[pr.Name] {
			if err := cpus[i].AddWindow(w); err != nil {
				return schedule.Timeline{}, err
			}
		}
		for _, w := range cfg.LinkLoad[pr.Name] {
			if err := links[i].AddWindow(w); err != nil {
				return schedule.Timeline{}, err
			}
		}
	}

	noiseFactor := func(std float64) float64 {
		if rng == nil || std == 0 {
			return 1
		}
		return math.Max(0.05, 1+std*rng.NormFloat64())
	}

	tl := schedule.Timeline{Procs: make([]schedule.ProcTimeline, p)}
	eng := &Engine{}

	// The single-port root: sending to processor i starts when the
	// send to processor i-1 completes. Each send is an event chain on
	// the engine; computes are scheduled as independent events.
	var sendTo func(i int)
	sendTo = func(i int) {
		if i >= p {
			return
		}
		pr := cfg.Procs[i]
		ni := cfg.Dist[i]
		start := eng.Now()
		commWork := pr.Comm.Eval(ni) * noiseFactor(cfg.Noise.commStd())
		recvEnd := links[i].FinishTime(start, commWork)
		tl.Procs[i].Name = pr.Name
		tl.Procs[i].Items = ni
		tl.Procs[i].Recv = schedule.Segment{Start: start, End: recvEnd}
		eng.At(recvEnd, func() {
			// Reception complete: the processor starts computing and
			// the root's port is free for the next processor.
			compWork := pr.Comp.Eval(ni) * noiseFactor(cfg.Noise.compStd())
			compEnd := cpus[i].FinishTime(recvEnd, compWork)
			tl.Procs[i].Comp = schedule.Segment{Start: recvEnd, End: compEnd}
			if compEnd > tl.Makespan {
				tl.Makespan = compEnd
			}
			sendTo(i + 1)
		})
	}
	eng.At(0, func() { sendTo(0) })
	if err := eng.Run(); err != nil {
		return schedule.Timeline{}, err
	}
	return tl, nil
}

// commStd is a nil-safe accessor.
func (n *Noise) commStd() float64 {
	if n == nil {
		return 0
	}
	return n.CommStdDev
}

// compStd is a nil-safe accessor.
func (n *Noise) compStd() float64 {
	if n == nil {
		return 0
	}
	return n.CompStdDev
}

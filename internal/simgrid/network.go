package simgrid

import (
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/platform"
)

// This file extends the discrete-event simulator from the star model
// (one private link per processor) to routed multi-hop graphs: flows
// traverse the shortest route computed by platform.Graph, shared links
// carry a bounded number of concurrent flows, and link-level fault
// windows (degrades, flaps, partitions) slow or stall every flow
// routed over them.
//
// The contention model is circuit-switched, in the tradition of
// wormhole-routed grids: a flow acquires one slot on every link of its
// route before it starts moving, holds them until completion, and
// progresses at the minimum instantaneous rate over its route. Flows
// that cannot acquire all slots queue in arrival order (FIFO, ties by
// submission index). Routing is static — a degraded link slows the
// flows routed across it rather than triggering a reroute, matching
// the static routing tables of the paper's era.
//
// It also hosts the fault compiler BuildNetPlan: simgrid is the one
// package that may see both platform (topology) and fault (windows)
// without an import cycle, so this is where site-level network faults
// are lowered to the rank-pair NetPlan the MPI runtime consumes.

// LinkKey canonicalizes an undirected link name for window maps.
func LinkKey(a, b string) string {
	if b < a {
		a, b = b, a
	}
	return a + "|" + b
}

// Flow is one end-to-end transfer request over the graph.
type Flow struct {
	// From and To are node names.
	From, To string
	// Items is the number of data items to move.
	Items int
	// Start is the submission time in virtual seconds.
	Start float64
}

// FlowResult reports one simulated flow.
type FlowResult struct {
	Flow
	// AcquiredAt is when the flow obtained all its link slots (equals
	// Start when there was no contention).
	AcquiredAt float64
	// End is the completion time; +Inf if a link on the route is down
	// forever.
	End float64
	// Hops is the number of links traversed (0 for co-located
	// endpoints).
	Hops int
}

// NetworkConfig describes one multi-hop simulation.
type NetworkConfig struct {
	// Graph is the routed platform.
	Graph platform.Graph
	// Flows are the transfers to simulate.
	Flows []Flow
	// LinkWindows holds rate windows per link (key LinkKey): factor 0
	// stalls flows on the link, factor 0.5 halves their rate. Use
	// NetFaultWindows to derive them from a fault list.
	LinkWindows map[string][]RateWindow
}

// flowState tracks one flow through the simulation.
type flowState struct {
	res   *FlowResult
	links []*Resource // route links, in traversal order
	work  float64     // seconds of full-speed transfer
}

// SimulateNetwork runs the circuit-switched contention model and
// returns one result per flow, in submission order.
func SimulateNetwork(cfg NetworkConfig) ([]FlowResult, error) {
	if err := cfg.Graph.Validate(); err != nil {
		return nil, err
	}
	// Per-link shared state: a slot counter and a rate resource.
	type linkState struct {
		res      *Resource
		capacity int
		active   int
	}
	links := map[string]*linkState{}
	for _, l := range cfg.Graph.Links {
		key := LinkKey(l.A, l.B)
		if ex, ok := links[key]; ok {
			// Parallel links: keep the larger capacity (the router
			// bonds them); rate windows apply to the bundle.
			if l.Capacity == 0 || ex.capacity == 0 {
				ex.capacity = 0
			} else if l.Capacity > ex.capacity {
				ex.capacity = l.Capacity
			}
			continue
		}
		ls := &linkState{res: &Resource{Name: key}, capacity: l.Capacity}
		for _, w := range cfg.LinkWindows[key] {
			if err := ls.res.AddWindow(w); err != nil {
				return nil, err
			}
		}
		links[key] = ls
	}

	// Precompute routes from every distinct source node.
	routesFrom := map[string]map[string]platform.Route{}
	routes := func(src string) (map[string]platform.Route, error) {
		if r, ok := routesFrom[src]; ok {
			return r, nil
		}
		r, err := cfg.Graph.RoutesFrom(src)
		if err != nil {
			return nil, err
		}
		routesFrom[src] = r
		return r, nil
	}

	results := make([]FlowResult, len(cfg.Flows))
	states := make([]*flowState, 0, len(cfg.Flows))
	for i, f := range cfg.Flows {
		if f.Items < 0 {
			return nil, fmt.Errorf("simgrid: flow %d has negative items", i)
		}
		rts, err := routes(f.From)
		if err != nil {
			return nil, err
		}
		route, ok := rts[f.To]
		if !ok {
			return nil, fmt.Errorf("simgrid: no route from %s to %s", f.From, f.To)
		}
		results[i] = FlowResult{Flow: f, Hops: route.Hops()}
		st := &flowState{
			res:  &results[i],
			work: route.Latency + float64(f.Items)*route.Alpha,
		}
		for h := 0; h+1 < len(route.Path); h++ {
			st.links = append(st.links, links[LinkKey(route.Path[h], route.Path[h+1])].res)
		}
		states = append(states, st)
	}

	// Event loop: admit in FIFO order at submissions and completions.
	slots := func(st *flowState) []*linkState {
		out := make([]*linkState, 0, len(st.links))
		for _, lr := range st.links {
			out = append(out, links[lr.Name])
		}
		return out
	}
	admissible := func(st *flowState) bool {
		for _, ls := range slots(st) {
			if ls.capacity > 0 && ls.active >= ls.capacity {
				return false
			}
		}
		return true
	}
	pending := make([]int, len(states)) // indices, FIFO by (Start, index)
	for i := range pending {
		pending[i] = i
	}
	sort.SliceStable(pending, func(a, b int) bool {
		return states[pending[a]].res.Start < states[pending[b]].res.Start
	})
	type running struct {
		idx int
		end float64
	}
	var active []running
	now := 0.0
	for len(pending) > 0 || len(active) > 0 {
		// Admit every head-of-queue flow that has arrived and fits.
		progressed := true
		for progressed {
			progressed = false
			for qi, idx := range pending {
				st := states[idx]
				if st.res.Start > now {
					break // FIFO: later arrivals wait behind this one
				}
				if !admissible(st) {
					continue // blocked on slots; try the next arrival
				}
				for _, ls := range slots(st) {
					ls.active++
				}
				st.res.AcquiredAt = now
				end := routeFinish(st.links, now, st.work)
				st.res.End = end
				active = append(active, running{idx: idx, end: end})
				pending = append(pending[:qi], pending[qi+1:]...)
				progressed = true
				break
			}
		}
		// Advance to the next event: earliest completion or arrival.
		next := inf()
		nextIdx := -1
		for ai, r := range active {
			if r.end < next || (r.end == next && (nextIdx < 0 || r.idx < active[nextIdx].idx)) {
				next = r.end
				nextIdx = ai
			}
		}
		arrival := inf()
		for _, idx := range pending {
			if s := states[idx].res.Start; s > now && s < arrival {
				arrival = s
			}
		}
		switch {
		case nextIdx >= 0 && next <= arrival:
			if next >= inf() {
				// Stalled forever (permanent down window): everything
				// still queued behind it is stuck too.
				for _, idx := range pending {
					states[idx].res.AcquiredAt = inf()
					states[idx].res.End = inf()
				}
				return results, nil
			}
			now = next
			done := active[nextIdx]
			active = append(active[:nextIdx], active[nextIdx+1:]...)
			for _, ls := range slots(states[done.idx]) {
				ls.active--
			}
		case arrival < inf():
			now = arrival
		default:
			return results, nil
		}
	}
	return results, nil
}

// routeFinish computes when work seconds of full-speed transfer,
// started at start, completes when progressing at the minimum rate
// over the route's links. Co-located endpoints (no links) finish
// immediately after their work at rate 1.
func routeFinish(route []*Resource, start, work float64) float64 {
	if len(route) == 0 {
		return start + work
	}
	t := start
	remaining := work
	for remaining > 0 {
		rate, until := inf(), inf()
		for _, r := range route {
			rr, ru := r.rateAt(t)
			if rr < rate {
				rate = rr
			}
			if ru < until {
				until = ru
			}
		}
		if rate == 0 {
			if until >= inf() {
				return inf()
			}
			t = until
			continue
		}
		span := until - t
		capacity := span * rate
		if capacity >= remaining {
			return t + remaining/rate
		}
		remaining -= capacity
		t = until
	}
	return t
}

// ScatterFlows builds the flow list of a rooted scatter over the
// graph: one flow per non-root rank, all submitted at time zero (the
// multi-port variant the contention model exists to study; the
// single-port runtime in internal/mpi serializes instead). rankNodes
// is the Graph.ProcessorNodes map, root last; dist assigns items per
// rank in the same order.
func ScatterFlows(g platform.Graph, rankNodes []string, dist []int) ([]Flow, error) {
	if len(rankNodes) != len(dist) {
		return nil, fmt.Errorf("simgrid: %d rank nodes but %d shares", len(rankNodes), len(dist))
	}
	if len(rankNodes) == 0 {
		return nil, fmt.Errorf("simgrid: no ranks")
	}
	rootNode := rankNodes[len(rankNodes)-1]
	flows := make([]Flow, 0, len(rankNodes)-1)
	for r := 0; r+1 < len(rankNodes); r++ {
		flows = append(flows, Flow{From: rootNode, To: rankNodes[r], Items: dist[r]})
	}
	return flows, nil
}

// NetFaultWindows lowers link-level faults to per-link rate windows
// for the contention simulator: a degrade runs the link at 1/Factor,
// a flap stops it during every down phase, and a partition stops every
// link touching the site. Overlapping windows on one link are an error
// surfaced by SimulateNetwork's AddWindow.
func NetFaultWindows(g platform.Graph, faults []fault.NetFault) (map[string][]RateWindow, error) {
	out := map[string][]RateWindow{}
	for _, f := range faults {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		switch f.Kind {
		case fault.LinkDegrade:
			key := LinkKey(f.EdgeA, f.EdgeB)
			out[key] = append(out[key], RateWindow{Start: f.Start, End: f.End, Factor: 1 / f.Factor})
		case fault.LinkFlap:
			key := LinkKey(f.EdgeA, f.EdgeB)
			for _, w := range f.DownWindows() {
				out[key] = append(out[key], RateWindow{Start: w.Start, End: w.End, Factor: 0})
			}
		case fault.Partition:
			for _, l := range g.Links {
				if l.A == f.Site || l.B == f.Site {
					key := LinkKey(l.A, l.B)
					out[key] = append(out[key], RateWindow{Start: f.Start, End: f.End, Factor: 0})
				}
			}
		}
	}
	return out, nil
}

// BuildNetPlan lowers site-level network faults to the rank-pair
// NetPlan consumed by the MPI runtime. rankNodes maps each rank to its
// graph node (Graph.ProcessorNodes order, root last). The lowering is
// route-aware:
//
//   - a link fault (degrade or flap) affects every rank pair whose
//     static route crosses that link;
//   - a partition cuts every rank pair whose nodes fall into
//     different components once the partitioned site's links are
//     removed — including pairs merely routed through the site;
//     co-located ranks are never cut.
func BuildNetPlan(g platform.Graph, rankNodes []string, faults []fault.NetFault) (*fault.NetPlan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	np := fault.NewNetPlan()
	if len(faults) == 0 {
		return np, nil
	}
	// All-pairs static routes between the nodes that actually host
	// ranks.
	hosts := map[string]bool{}
	for _, n := range rankNodes {
		if n == "" {
			return nil, fmt.Errorf("simgrid: empty rank node name")
		}
		hosts[n] = true
	}
	routeOf := map[string]platform.Route{}
	for src := range hosts {
		rts, err := g.RoutesFrom(src)
		if err != nil {
			return nil, err
		}
		for dst := range hosts {
			if r, ok := rts[dst]; ok {
				routeOf[LinkKey(src, dst)] = r
			}
		}
	}
	pairRoute := func(a, b int) (platform.Route, bool) {
		r, ok := routeOf[LinkKey(rankNodes[a], rankNodes[b])]
		return r, ok
	}

	for _, f := range faults {
		if err := f.Validate(); err != nil {
			return nil, err
		}
		switch f.Kind {
		case fault.LinkDegrade, fault.LinkFlap:
			for a := 0; a < len(rankNodes); a++ {
				for b := a + 1; b < len(rankNodes); b++ {
					r, ok := pairRoute(a, b)
					if !ok || !r.UsesLink(f.EdgeA, f.EdgeB) {
						continue
					}
					if f.Kind == fault.LinkDegrade {
						np.AddSlow(a, b, fault.FactorWindow{
							Window: fault.Window{Start: f.Start, End: f.End},
							Factor: f.Factor,
						})
					} else {
						for _, w := range f.DownWindows() {
							np.AddCut(a, b, w)
						}
					}
				}
			}
		case fault.Partition:
			comp := componentsWithout(g, f.Site)
			for a := 0; a < len(rankNodes); a++ {
				for b := a + 1; b < len(rankNodes); b++ {
					na, nb := rankNodes[a], rankNodes[b]
					if na == nb {
						continue // co-located: the site's LAN survives
					}
					if comp[na] != comp[nb] {
						np.AddCut(a, b, fault.Window{Start: f.Start, End: f.End})
					}
				}
			}
		}
	}
	return np, nil
}

// componentsWithout labels each node with a connected-component id
// after removing every link touching the given site. The site keeps
// its own label, so ranks on the partitioned site stay mutually
// reachable while everyone else loses them.
func componentsWithout(g platform.Graph, site string) map[string]int {
	names := make([]string, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	adj := map[string][]string{}
	for _, l := range g.Links {
		if l.A == site || l.B == site {
			continue
		}
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	comp := map[string]int{}
	id := 0
	for _, start := range names {
		if _, seen := comp[start]; seen {
			continue
		}
		id++
		queue := []string{start}
		comp[start] = id
		for q := 0; q < len(queue); q++ {
			nbs := append([]string{}, adj[queue[q]]...)
			sort.Strings(nbs)
			for _, nb := range nbs {
				if _, seen := comp[nb]; !seen {
					comp[nb] = id
					queue = append(queue, nb)
				}
			}
		}
	}
	return comp
}

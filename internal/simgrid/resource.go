package simgrid

import (
	"fmt"
	"math"
	"sort"
)

// RateWindow is a time interval during which a resource runs at a
// non-default speed factor. Factor 0.5 halves the speed (e.g. a CPU
// sharing with a background job), factor 0 stops the resource, factor
// 2 doubles it.
type RateWindow struct {
	// Start and End bound the window, in virtual seconds.
	Start, End float64
	// Factor multiplies the resource speed inside the window; it must
	// be non-negative.
	Factor float64
}

// Resource models a device (a CPU or a link) whose speed varies over
// time: speed 1 by default, modified inside rate windows. Work is
// measured in seconds-at-full-speed, so finishing W work started at
// time t takes exactly W seconds when no window applies.
type Resource struct {
	// Name identifies the resource in errors.
	Name    string
	windows []RateWindow
}

// AddWindow registers a rate window. Windows may not overlap.
func (r *Resource) AddWindow(w RateWindow) error {
	if w.End <= w.Start {
		return fmt.Errorf("simgrid: resource %s: window [%g, %g) is empty or inverted", r.Name, w.Start, w.End)
	}
	if w.Factor < 0 {
		return fmt.Errorf("simgrid: resource %s: negative rate factor %g", r.Name, w.Factor)
	}
	for _, ex := range r.windows {
		if w.Start < ex.End && ex.Start < w.End {
			return fmt.Errorf("simgrid: resource %s: window [%g, %g) overlaps [%g, %g)",
				r.Name, w.Start, w.End, ex.Start, ex.End)
		}
	}
	r.windows = append(r.windows, w)
	sort.Slice(r.windows, func(i, j int) bool { return r.windows[i].Start < r.windows[j].Start })
	return nil
}

// rateAt returns the speed factor at time t and the time at which that
// factor next changes (or +inf).
func (r *Resource) rateAt(t float64) (rate, until float64) {
	rate = 1
	until = inf()
	for _, w := range r.windows {
		switch {
		case t >= w.Start && t < w.End:
			return w.Factor, w.End
		case w.Start > t && w.Start < until:
			until = w.Start
		}
	}
	return rate, until
}

func inf() float64 { return math.Inf(1) }

// FinishTime returns the virtual time at which work seconds of
// full-speed work, started at time start, completes on this resource.
// If the resource is stopped (factor 0) forever past some point with
// work remaining, it returns +Inf.
func (r *Resource) FinishTime(start, work float64) float64 {
	if work <= 0 {
		return start
	}
	t := start
	remaining := work
	for remaining > 0 {
		rate, until := r.rateAt(t)
		if rate == 0 {
			if until >= inf() {
				return inf()
			}
			t = until
			continue
		}
		span := until - t
		capacity := span * rate
		if capacity >= remaining {
			return t + remaining/rate
		}
		remaining -= capacity
		t = until
	}
	return t
}

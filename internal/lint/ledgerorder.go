package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// LedgerOrder checks the "ledger v1" recovery protocol (PR 3) at vet
// time. Two invariants:
//
//  1. Order: a (*fault.Ledger).Reclaim call must have a checkpoint
//     append — a Deliver call, direct or through a summarized helper
//     or local closure — on some CFG path before it. A reclaim with
//     no possible preceding append means a failover successor could
//     replay a ledger that never recorded the data being
//     redistributed, breaking exactly-once redistribution.
//  2. Codec: the protocol header and replica lines must round-trip
//     through (*fault.Ledger).Encode / fault.DecodeLedger; a
//     hand-rolled "ledger v1" string elsewhere forks the codec and
//     silently diverges when the version bumps.
//
// CanPrecede (reachability) rather than strict dominance is the right
// ordering relation here: the real recovery paths append inside
// conditional loops (per-rank delivery) before conditionally
// reclaiming, which dominance would wrongly reject.
var LedgerOrder = &Analyzer{
	Name: "ledgerorder",
	Doc: "ledger protocol: every Reclaim needs a checkpoint append (Deliver) on a " +
		"preceding path, and ledger v1 codec strings must live in Encode/DecodeLedger only",
	Run: runLedgerOrder,
}

func runLedgerOrder(pass *Pass) error {
	sum := summarize(pass)
	for _, file := range pass.Files {
		if fname := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch v := n.(type) {
			case *ast.FuncDecl:
				body = v.Body
			case *ast.FuncLit:
				body = v.Body
			}
			if body != nil {
				checkReclaimOrder(pass, sum, body)
			}
			return true
		})
		checkCodecStrings(pass, file)
	}
	return nil
}

// checkReclaimOrder verifies invariant 1 on one function body.
func checkReclaimOrder(pass *Pass, sum *pkgSummary, body *ast.BlockStmt) {
	type site struct{ r ref }
	var appends, reclaims []site
	var reclaimCalls []*ast.CallExpr

	g := BuildCFG(body)
	walkOwnBody(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		r, ok := g.RefAt(call.Pos())
		if !ok {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		switch {
		case isLedgerMethod(fn, "Deliver"):
			appends = append(appends, site{r})
		case isLedgerMethod(fn, "Reclaim"):
			reclaims = append(reclaims, site{r})
			reclaimCalls = append(reclaimCalls, call)
		default:
			if cf := sum.calleeFacts(call); cf != nil && cf.appendsLedger {
				appends = append(appends, site{r})
			}
		}
	})

	for i, rc := range reclaims {
		ok := false
		for _, a := range appends {
			if g.CanPrecede(a.r, rc.r) {
				ok = true
				break
			}
		}
		if !ok {
			pass.Reportf(reclaimCalls[i].Pos(),
				"Reclaim with no checkpoint append (Deliver) on any preceding path: a failover successor would replay a ledger that never recorded this data, breaking exactly-once redistribution")
		}
	}
}

// ledgerHeader is the protocol marker the codec check looks for.
// (Built by concatenation so this analyzer's own source does not trip
// the string scan when scatterlint dogfoods itself.)
var ledgerHeader = "ledger " + "v1"

// codecExemptFuncs are the fault-package functions allowed to spell
// the protocol strings: the codec itself.
var codecExemptFuncs = map[string]bool{
	"Encode":       true,
	"DecodeLedger": true,
}

// checkCodecStrings verifies invariant 2 on one file.
func checkCodecStrings(pass *Pass, file *ast.File) {
	if pass.Pkg.Path() == "repro/internal/lint" {
		return // the analyzers themselves describe the protocol strings
	}
	inFault := pass.Pkg.Path() == faultPkgPath
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && inFault && codecExemptFuncs[fd.Name.Name] {
			continue
		}
		ast.Inspect(decl, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			s, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if strings.Contains(s, ledgerHeader) || strings.Contains(s, "replica %d") {
				pass.Reportf(lit.Pos(),
					"hand-rolled ledger codec string: serialize through (*fault.Ledger).Encode and fault.DecodeLedger so the protocol version stays in one place and writes round-trip")
			}
			return true
		})
	}
}

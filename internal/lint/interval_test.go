package lint

import (
	"go/ast"
	"testing"
)

func TestIntervalJoin(t *testing.T) {
	cases := []struct {
		name string
		a, b Interval
		want Interval
	}{
		{"consts", ConstInterval(1), ConstInterval(5), Interval{Lo: 1, Hi: 5}},
		{"overlap", Interval{Lo: -3, Hi: 0}, Interval{Lo: -1, Hi: 2}, Interval{Lo: -3, Hi: 2}},
		{"empty-left", EmptyInterval(), ConstInterval(7), ConstInterval(7)},
		{"empty-right", ConstInterval(7), EmptyInterval(), ConstInterval(7)},
		{"top-absorbs", TopInterval(), ConstInterval(0), TopInterval()},
		{"half-open", Interval{Lo: 0, HiInf: true}, ConstInterval(-2), Interval{Lo: -2, HiInf: true}},
	}
	for _, c := range cases {
		if got := JoinInterval(c.a, c.b); got != c.want {
			t.Errorf("%s: Join(%+v, %+v) = %+v, want %+v", c.name, c.a, c.b, got, c.want)
		}
	}
}

func TestIntervalMeet(t *testing.T) {
	got := MeetInterval(Interval{Lo: 0, HiInf: true}, Interval{LoInf: true, Hi: 5})
	if got != (Interval{Lo: 0, Hi: 5}) {
		t.Errorf("Meet([0,inf), (-inf,5]) = %+v, want [0,5]", got)
	}
	if !MeetInterval(ConstInterval(1), ConstInterval(2)).Empty {
		t.Error("Meet of disjoint constants must be empty")
	}
}

func TestIntervalWiden(t *testing.T) {
	// A growing upper bound widens to +inf; a stable bound is kept.
	w := WidenInterval(Interval{Lo: 0, Hi: 1}, Interval{Lo: 0, Hi: 2})
	if !w.HiInf || w.LoInf || w.Lo != 0 {
		t.Errorf("widening a rising Hi = %+v, want [0,+inf)", w)
	}
	w = WidenInterval(Interval{Lo: 0, Hi: 9}, Interval{Lo: -1, Hi: 9})
	if !w.LoInf || w.HiInf || w.Hi != 9 {
		t.Errorf("widening a falling Lo = %+v, want (-inf,9]", w)
	}
	stable := Interval{Lo: 2, Hi: 4}
	if got := WidenInterval(stable, stable); got != stable {
		t.Errorf("widening a stable interval = %+v, want unchanged", got)
	}
}

func TestIntervalArith(t *testing.T) {
	if got := AddInterval(ConstInterval(2), Interval{Lo: -1, Hi: 3}); got != (Interval{Lo: 1, Hi: 5}) {
		t.Errorf("2 + [-1,3] = %+v, want [1,5]", got)
	}
	if got := NegInterval(Interval{Lo: -1, Hi: 3}); got != (Interval{Lo: -3, Hi: 1}) {
		t.Errorf("-[-1,3] = %+v, want [-3,1]", got)
	}
	if got := MulInterval(Interval{Lo: -2, Hi: 3}, ConstInterval(-4)); got != (Interval{Lo: -12, Hi: 8}) {
		t.Errorf("[-2,3] * -4 = %+v, want [-12,8]", got)
	}
	// Saturating overflow must lose the bound, never wrap.
	big := Interval{Lo: 1 << 62, Hi: 1 << 62}
	if got := AddInterval(big, big); !got.HiInf {
		t.Errorf("overflowing add = %+v, want an infinite Hi", got)
	}
}

func TestIntervalPredicates(t *testing.T) {
	if !(Interval{LoInf: true, Hi: -1}).DefinitelyNegative() {
		t.Error("(-inf,-1] must be definitely negative")
	}
	if (Interval{Lo: -1, Hi: 0}).DefinitelyNegative() {
		t.Error("[-1,0] is not definitely negative")
	}
	if !(Interval{Lo: 1, HiInf: true}).ExcludesZero() {
		t.Error("[1,+inf) excludes zero")
	}
	if (Interval{Lo: -1, Hi: 1}).ExcludesZero() {
		t.Error("[-1,1] does not exclude zero")
	}
	if !(Interval{Lo: 0, HiInf: true}).DefinitelyNonNegative() {
		t.Error("[0,+inf) is definitely non-negative")
	}
}

// engineFor builds a full interval engine over the named function.
func engineFor(t *testing.T, src, name string) (*intervalEngine, func(name string, marker string) *ast.Ident) {
	t.Helper()
	fset, info, fd, f := buildSSAFor(t, src, name)
	eng := newIntervalEngine(f)
	lookup := func(ident, marker string) *ast.Ident {
		return useOnLine(t, fset, info, fd, ident, lineOf(t, src, marker))
	}
	return eng, lookup
}

func TestIntervalEnginePhiJoin(t *testing.T) {
	src := `package p
func f(c bool) int {
	n := -3
	if c {
		n = -1
	}
	return n
}`
	eng, at := engineFor(t, src, "f")
	iv := eng.IntervalOf(at("n", "return n"))
	if iv != (Interval{Lo: -3, Hi: -1}) {
		t.Errorf("phi of -3 and -1 = %+v, want [-3,-1]", iv)
	}
	if !iv.DefinitelyNegative() {
		t.Error("the join of two negative definitions must stay provably negative")
	}
}

func TestIntervalEngineGuardRefinement(t *testing.T) {
	src := `package p
func f(p int) int {
	if p <= 0 {
		return 0
	}
	return 10 / p
}`
	eng, at := engineFor(t, src, "f")
	iv := eng.IntervalOf(at("p", "10 / p"))
	if !iv.ExcludesZero() || !iv.DefinitelyNonNegative() {
		t.Errorf("past the p <= 0 early return, p = %+v, want [1,+inf)", iv)
	}
}

func TestIntervalEngineLoopWidening(t *testing.T) {
	// The loop counter must widen to a finite-Lo, infinite-Hi interval
	// rather than iterate forever or wrap.
	src := `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + 1
	}
	return s
}`
	eng, at := engineFor(t, src, "f")
	iv := eng.IntervalOf(at("s", "return s"))
	if iv.Empty || iv.LoInf || iv.Lo != 0 || !iv.HiInf {
		t.Errorf("widened loop accumulator = %+v, want [0,+inf)", iv)
	}
}

func TestIntervalEngineNilness(t *testing.T) {
	src := `package p
func f(n int) int {
	var xs []int
	ys := make([]int, 4)
	return n + len(xs) + len(ys)
}`
	eng, at := engineFor(t, src, "f")
	if got := eng.NilnessOfExpr(at("xs", "len(xs)")); got != NilAlways {
		t.Errorf("zero-declared slice nilness = %v, want NilAlways", got)
	}
	if got := eng.NilnessOfExpr(at("ys", "len(ys)")); got != NilNever {
		t.Errorf("made slice nilness = %v, want NilNever", got)
	}
}

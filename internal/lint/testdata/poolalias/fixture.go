// Package fixture exercises the poolalias analyzer: sync.Pool-backed
// row buffers must not escape via return, channel send or closure
// capture without a sanction — a pin (lent = true), a recycle closure,
// or an ownership transfer (owned: true). The clean shapes mirror
// internal/core: getF64 is the direct accessor, newRow the ownership
// transfer, lendRow the tables lend-return idiom, aliasWithPin the
// pin-before-alias move of plan resolution.
package fixture

import "sync"

var f64Pool = sync.Pool{New: func() any { return make([]float64, 0, 64) }}

// row is shaped like core.planRow: the lent/owned ownership bools plus
// pooled slice fields.
type row struct {
	cost   []float64
	choice []int32
	owned  bool
	lent   bool
}

// getF64 returns a direct Pool.Get value: the accessor idiom itself is
// the sanctioned way pooled memory leaves a function.
func getF64(n int) []float64 {
	if v := f64Pool.Get(); v != nil {
		s := v.([]float64)
		if cap(s) >= n {
			return s[:n]
		}
	}
	return make([]float64, n)
}

func putF64(s []float64) { f64Pool.Put(s[:0]) }

// newRow transfers ownership into an owning row: release() is now that
// row's job, so the literal is clean.
func newRow(n int) row {
	return row{cost: getF64(n), choice: make([]int32, n), owned: true}
}

// leakReturn hands an accessor's buffer to the caller with no release
// path: the classic leak the lent-row rule exists for.
func leakReturn(n int) []float64 {
	buf := getF64(n)
	return buf // want "escapes via return without a release path"
}

// reexport makes the same mistake without the intermediate variable:
// one accessor wrapping another is not the direct-Get idiom.
func reexport(n int) []float64 {
	return getF64(n) // want "escapes via return without a release path"
}

// lendRow pairs the escaping buffer with a recycle closure — the
// tabCache.tables lend-return idiom — and is clean.
func lendRow(n int) ([]float64, func()) {
	buf := getF64(n)
	return buf, func() { putF64(buf) }
}

// leakSend ships pooled memory to a receiver whose lifetime nothing
// here controls.
func leakSend(ch chan []float64, n int) {
	buf := getF64(n)
	ch <- buf // want "escapes on a channel send"
}

// okSend sends freshly allocated memory: no pool involved.
func okSend(ch chan []float64, n int) {
	ch <- make([]float64, n)
}

// leakCapture closes over a pooled buffer without recycling it: the
// closure may run after release() returned the memory to the pool.
func leakCapture(n int) func() float64 {
	buf := getF64(n)
	return func() float64 { return buf[0] } // want "captured by a closure that does not recycle it"
}

// aliasNoPin shares src's buffers into a non-owning row without
// pinning, so src's release() would recycle memory the alias still
// reads.
func aliasNoPin(src *row) row {
	d := row{cost: src.cost, choice: src.choice} // want "aliased into a non-owning row without pinning"
	return d
}

// aliasWithPin pins the source first — the resolve() shape — so the
// owner's release() skips the shared buffers.
func aliasWithPin(src *row) row {
	src.lent = true
	return row{cost: src.cost, choice: src.choice}
}

// Package fixture exercises directive anchoring: a directive above a
// multi-line value spec covers the whole spec, so gofmt reflowing a
// literal cannot silently un-suppress a finding on its later lines.
package fixture

import "repro/internal/cost"

// The negative field sits two lines below the directive; line-pair
// matching alone would miss it.
//
//scatterlint:ignore costinvariant deliberate negative to exercise anchoring
var pinned = cost.Affine{
	Fixed:   1,
	PerItem: -2,
}

// An uncovered literal still reports, wherever the field lands.
var reported = cost.Affine{
	Fixed:   1,
	PerItem: -3, // want "Affine.PerItem is negative"
}

// A trailing directive anchors to the element starting on its own
// line, covering the element's later lines too.
var trailing = []cost.Affine{
	{ //scatterlint:ignore costinvariant deliberate negative to exercise trailing anchors
		Fixed:   1,
		PerItem: -4,
	},
}

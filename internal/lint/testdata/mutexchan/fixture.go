// Package fixture exercises the mutexchan analyzer: no blocking
// channel operation while a sync.Mutex is held.
package fixture

import "sync"

type world struct {
	mu sync.Mutex
	ch chan int
}

func (w *world) sendUnderLock() {
	w.mu.Lock()
	w.ch <- 1 // want "channel send while w.mu is held"
	w.mu.Unlock()
}

func (w *world) recvUnderDeferredUnlock() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return <-w.ch // want "channel receive while w.mu is held"
}

func (w *world) selectUnderLock() {
	w.mu.Lock()
	select { // want "select without default while w.mu is held"
	case <-w.ch:
	}
	w.mu.Unlock()
}

func (w *world) rangeUnderLock() {
	w.mu.Lock()
	for range w.ch { // want "ranging over a channel while w.mu is held"
	}
	w.mu.Unlock()
}

func (w *world) sendInBranchUnderLock(flag bool) {
	w.mu.Lock()
	if flag {
		w.ch <- 1 // want "channel send while w.mu is held"
	}
	w.mu.Unlock()
}

// Non-blocking forms and lock-free paths are fine.

func (w *world) afterUnlock() {
	w.mu.Lock()
	w.mu.Unlock()
	w.ch <- 1
}

func (w *world) selectWithDefault() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	select {
	case v := <-w.ch:
		return v
	default:
		return 0
	}
}

func (w *world) closeUnderLock() {
	w.mu.Lock()
	close(w.ch)
	w.mu.Unlock()
}

// A closure's channel operations block the closure's caller, not the
// function that merely builds it under the lock.
func (w *world) closureUnderLock() func() {
	w.mu.Lock()
	defer w.mu.Unlock()
	return func() { w.ch <- 1 }
}

func (w *world) rwLock(rw *sync.RWMutex) {
	rw.RLock()
	<-w.ch // want "channel receive while rw is held"
	rw.RUnlock()
}

// Package fixture exercises the simclock analyzer: simulated-time
// packages must not consult the wall clock or the global math/rand
// source. The test loads this directory under a
// repro/internal/fault/... import path (where the rule applies) and
// again under a neutral path (where it must stay silent).
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() {
	_ = time.Now()                // want "time.Now reads the wall clock"
	time.Sleep(time.Nanosecond)   // want "time.Sleep reads the wall clock"
	_ = time.Since(time.Time{})   // want "time.Since reads the wall clock"
	<-time.After(time.Nanosecond) // want "time.After reads the wall clock"
}

func globalRand() {
	_ = rand.Intn(10)                  // want "rand.Intn draws from the global unseeded source"
	_ = rand.Float64()                 // want "rand.Float64 draws from the global unseeded source"
	rand.Shuffle(3, func(i, j int) {}) // want "rand.Shuffle draws from the global unseeded source"
}

// seeded randomness and pure time arithmetic are the sanctioned forms.
func sanctioned(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	d := 3 * time.Second
	return rng.Float64() * d.Seconds()
}

// Package fixture holds a scatterlint:ignore directive with no
// reason; the driver must report it rather than honor it. Checked
// programmatically (a line comment cannot carry a trailing want).
package fixture

//scatterlint:ignore costinvariant
var x = 1

// Package fixture exercises the detorder analyzer's ordering checks.
// It is checked under the import path repro/internal/chaos/fixture so
// the map-order and arrival-order rules are in scope (the wall-clock
// rule is exercised by the detorderwall fixture, which loads under a
// non-simulated path).
package fixture

import (
	"fmt"
	"sort"
)

// mapOrderAppend lets map-iteration order become slice order: the
// output differs run to run.
func mapOrderAppend(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "accumulates over an unordered map range"
	}
	return out
}

// sortedHolders collects then sorts — the Ledger.Holders idiom — so
// the map order never reaches the caller.
func sortedHolders(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// sum folds commutatively; no order dependence to flag.
func sum(m map[int]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}

// indexed writes to key-addressed slots: deterministic regardless of
// iteration order.
func indexed(m map[int]int, n int) []int {
	out := make([]int, n)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// localAccum appends only to a loop-local scratch slice, which dies
// before the next iteration: order cannot leak out.
func localAccum(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		for _, v := range vs {
			tmp = append(tmp, v)
		}
		total += len(tmp)
	}
	return total
}

// mapOrderSend exposes iteration order to a receiver.
func mapOrderSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want "channel send inside an unordered map range"
	}
}

// mapOrderPrint emits report lines in iteration order.
func mapOrderPrint(m map[int]int) {
	for k := range m {
		fmt.Println(k) // want "output emitted inside an unordered map range"
	}
}

// collectArrival gathers goroutine results in channel-arrival order:
// the slice order is scheduler-dependent.
func collectArrival(n int) []int {
	ch := make(chan int)
	for i := 0; i < n; i++ {
		go func(i int) { ch <- i * i }(i)
	}
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, <-ch) // want "appended in channel-arrival order"
	}
	return out
}

// collectIndexed is the World.Run shape: results land in rank-indexed
// slots and the channel only counts completions.
func collectIndexed(n int) []int {
	ch := make(chan struct{})
	out := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			out[i] = i * i
			ch <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-ch
	}
	return out
}

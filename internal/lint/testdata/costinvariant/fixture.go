// Package fixture exercises the costinvariant analyzer: cost-model
// literals must satisfy the paper's Eq. 2 preconditions.
package fixture

import (
	"repro/internal/core"
	"repro/internal/cost"
)

var (
	badLinear  = cost.Linear{PerItem: -1}              // want "Linear.PerItem is negative"
	badAffine  = cost.Affine{Fixed: -0.5, PerItem: 2}  // want "Affine.Fixed is negative"
	badAffine2 = cost.Affine{1, -2}                    // want "Affine.PerItem is negative"
	badScaled  = cost.Scaled{F: cost.Zero, Factor: -2} // want "Scaled.Factor is negative"

	badTableOrigin = cost.Table{Values: []float64{1, 2}}  // want "Table.Values.0. is nonzero"
	badTableEntry  = cost.Table{Values: []float64{0, -3}} // want "Table.Values.1. is negative"

	badBreakpoint = cost.PiecewiseLinear{Points: []cost.Breakpoint{{X: 5, Y: -1}}} // want "Breakpoint.Y is negative"

	badProc = core.LinearProcessor{Name: "neg", Alpha: -1, Beta: 2} // want "LinearProcessor.Alpha is negative"
	badBeta = core.LinearProcessor{"neg", 1, -2}                    // want "LinearProcessor.Beta is negative"
)

// Valid literals and non-constant expressions are not the analyzer's
// business: runtime values go through cost.CheckClass / Validate.
func ok(alpha float64) []cost.Function {
	return []cost.Function{
		cost.Linear{PerItem: 0.02},
		cost.Affine{Fixed: 3, PerItem: 0.1},
		cost.Linear{PerItem: alpha},
		cost.Table{Values: []float64{0, 1, 2}, Increasing: true},
	}
}

// Package fixture exercises the costinvariant analyzer: cost-model
// literals must satisfy the paper's Eq. 2 preconditions.
package fixture

import (
	"repro/internal/core"
	"repro/internal/cost"
)

var (
	badLinear  = cost.Linear{PerItem: -1}              // want "Linear.PerItem is negative"
	badAffine  = cost.Affine{Fixed: -0.5, PerItem: 2}  // want "Affine.Fixed is negative"
	badAffine2 = cost.Affine{1, -2}                    // want "Affine.PerItem is negative"
	badScaled  = cost.Scaled{F: cost.Zero, Factor: -2} // want "Scaled.Factor is negative"

	badTableOrigin = cost.Table{Values: []float64{1, 2}}  // want "Table.Values.0. is nonzero"
	badTableEntry  = cost.Table{Values: []float64{0, -3}} // want "Table.Values.1. is negative"

	badBreakpoint = cost.PiecewiseLinear{Points: []cost.Breakpoint{{X: 5, Y: -1}}} // want "Breakpoint.Y is negative"

	badProc = core.LinearProcessor{Name: "neg", Alpha: -1, Beta: 2} // want "LinearProcessor.Alpha is negative"
	badBeta = core.LinearProcessor{"neg", 1, -2}                    // want "LinearProcessor.Beta is negative"
)

// Valid literals and non-constant expressions are not the analyzer's
// business: runtime values go through cost.CheckClass / Validate.
func ok(alpha float64) []cost.Function {
	return []cost.Function{
		cost.Linear{PerItem: 0.02},
		cost.Affine{Fixed: 3, PerItem: 0.1},
		cost.Linear{PerItem: alpha},
		cost.Table{Values: []float64{0, 1, 2}, Increasing: true},
	}
}

// Solver entry points must not receive constant negative item counts:
// the paper's algorithms are defined for n >= 0, and a negative
// constant is a guaranteed validation error at run time.
func negItems(procs []core.Processor, pl *core.Plan, eng *core.Engine) {
	_, _ = core.Algorithm1(procs, -1)                               // want "Algorithm1 called with a constant negative item count"
	_, _ = core.Algorithm2(procs, -3)                               // want "Algorithm2 called with a constant negative item count"
	_, _ = core.Algorithm2Parallel(procs, -1, 4)                    // want "Algorithm2Parallel called with a constant negative item count"
	_, _ = core.SolvePlan(procs, -7)                                // want "SolvePlan called with a constant negative item count"
	_, _ = core.SolveCoarse(procs, -2, 64)                          // want "SolveCoarse called with a constant negative item count"
	_, _ = core.SolveCoarseOpt(procs, -9, 64, core.CoarseOptions{}) // want "SolveCoarseOpt called with a constant negative item count"
	_, _ = pl.Lookup(-1, 0)                                         // want "Plan.Lookup called with a constant negative item count"
	_, _ = pl.Resolve(-4, procs)                                    // want "Plan.Resolve called with a constant negative item count"
	_, _ = eng.Solve(procs, -2)                                     // want "Engine.Solve called with a constant negative item count"
	_ = core.Uniform(len(procs), -1)                                // want "Uniform called with a constant negative item count"
}

// Zero, positive, and non-constant counts are fine; so is a negative
// constant in a non-count position (Plan.Lookup's second argument is
// a row index, checked at run time only when d is in range).
func okItems(procs []core.Processor, pl *core.Plan, eng *core.Engine, n int) {
	_, _ = core.Algorithm2(procs, 0)
	_, _ = core.SolvePlan(procs, 817101)
	_, _ = core.SolveCoarse(procs, 817101, 1024)
	_, _ = eng.Solve(procs, n)
	_, _ = pl.Resolve(n, procs)
	_, _ = pl.Lookup(n, 0)
}

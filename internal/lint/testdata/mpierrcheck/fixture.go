// Package fixture exercises the mpierrcheck analyzer: every error
// returned by the mpi runtime must be consumed.
package fixture

import "repro/internal/mpi"

func discards(c *mpi.Comm, data []int) {
	c.Send(1, data, len(data))                      // want "error from .*Send discarded"
	c.Recv(0)                                       // want "error from .*Recv discarded"
	mpi.Barrier(c)                                  // want "error from mpi.Barrier discarded"
	go c.Send(2, data, 1)                           // want "error from .*Send discarded by go statement"
	defer c.Send(3, data, 1)                        // want "error from .*Send discarded by defer statement"
	mpi.Scatterv(c, data, []int{1, 2})              // want "error from mpi.Scatterv discarded"
	mpi.FaultTolerantScatterv(c, data, []int{1, 2}) // want "error from mpi.FaultTolerantScatterv discarded"
}

func blanks(c *mpi.Comm, data []int) {
	_, _ = mpi.Scatterv(c, data, []int{1, 2}) // want "error from mpi.Scatterv assigned to _"
	_ = mpi.Barrier(c)                        // want "error from mpi.Barrier assigned to _"
	req, _ := c.Isend(1, data, 1)             // want "error from .*Isend assigned to _"
	_, _ = req.Wait()                         // want "error from .*Wait assigned to _"
	buf, _ := mpi.Gatherv(c, data)            // want "error from mpi.Gatherv assigned to _"
	_ = buf
	a, _ := len(data), mpi.Barrier(c) // want "error from mpi.Barrier assigned to _"
	_ = a
}

func consumed(c *mpi.Comm, data []int) error {
	if err := c.Send(1, data, len(data)); err != nil {
		return err
	}
	chunk, err := mpi.Scatterv(c, data, []int{1, 2})
	if err != nil {
		return err
	}
	_ = chunk
	return mpi.Barrier(c)
}

// Wait's error flowing into a tuple return is consumed.
func passthrough(req *mpi.Request) (any, error) {
	return req.Wait()
}

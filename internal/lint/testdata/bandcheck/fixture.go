// Package fixture exercises the bandcheck analyzer: interval proofs at
// solver entry points and zero-divisor guards on parameter divides.
// The fixture is loaded under a repro/internal/core/... import path so
// the divisor rule (scoped to the solver packages) is active.
package fixture

import (
	"repro/internal/core"
)

// negativePhi: the item count joins two negative definitions — the
// interval [-3,-1] proves the precondition violation even though the
// argument is not a constant (costinvariant stays silent here).
func negativePhi(procs []core.Processor, flag bool) {
	n := -3
	if flag {
		n = -1
	}
	_, _ = core.Algorithm1(procs, n) // want "provably negative item count"
}

// guardedNegative: inside the n < 0 branch the refined interval is
// (-inf, -1], so the call is provably outside the solver domain.
func guardedNegative(procs []core.Processor, n int) {
	if n < 0 {
		_, _ = core.Algorithm2(procs, n) // want "provably negative item count"
	}
}

// guardedClean is the mirrored shape: the early return leaves n >= 0
// dominating the call, and the negated guard proves it.
func guardedClean(procs []core.Processor, n int) {
	if n < 0 {
		return
	}
	_, _ = core.Algorithm1(procs, n)
}

// unknownCount: an unconstrained parameter could be anything — silent.
func unknownCount(procs []core.Processor, n int) {
	_, _ = core.Heuristic(procs, n)
}

// coarseNegative: the coarsen-then-refine entry points live under the
// same n >= 0 contract as the exact solvers.
func coarseNegative(procs []core.Processor, n int) {
	if n < 0 {
		_, _ = core.SolveCoarse(procs, n, 1024) // want "provably negative item count"
	}
}

// coarseClean: a non-negative count with any granularity is the
// solver's own validation problem (g < 1 errors at run time), not the
// analyzer's.
func coarseClean(procs []core.Processor, n, g int) {
	if n < 0 {
		return
	}
	_, _ = core.SolveCoarseOpt(procs, n, g, core.CoarseOptions{})
}

// nilProcs: a zero-value slice declaration is provably nil, a
// guaranteed validation error in every solver.
func nilProcs(n int) {
	var procs []core.Processor
	if n < 0 {
		n = 0
	}
	_, _ = core.SolveLinear(procs, n) // want "provably nil processor slice"
}

// madeProcs is non-nil by construction: clean.
func madeProcs(n int) {
	procs := make([]core.Processor, 2)
	if n < 0 {
		n = 0
	}
	_, _ = core.SolveLinear(procs, n)
}

// unguardedShare divides by a parameter with no dominating zero
// check: the Eq. 4 band arithmetic would panic on p == 0.
func unguardedShare(n, p int) int {
	return n / p // want "division by parameter p is not guarded"
}

// unguardedRemainder is the modulus form of the same defect.
func unguardedRemainder(n, g int) int {
	return n % g // want "modulus by parameter g is not guarded"
}

// guardedShare mirrors core.Uniform: the early return proves p >= 1 at
// the divide.
func guardedShare(n, p int) int {
	if p <= 0 {
		return 0
	}
	return n / p
}

// positiveGuard uses the direct form of the same proof.
func positiveGuard(n, p int) int {
	if p > 0 {
		return n / p
	}
	return 0
}

// reassignedDivisor: the divide reads a local redefinition, not the
// caller's value — out of the parameter-contract rule's scope.
func reassignedDivisor(n, p int) int {
	p = 4
	return n / p
}

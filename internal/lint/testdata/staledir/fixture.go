// Package fixture exercises the suppression audit: one directive that
// suppresses a finding, one that suppresses nothing, and one naming an
// analyzer that does not exist.
package fixture

import "repro/internal/cost"

// Used: it excuses the negative literal below.
//
//scatterlint:ignore costinvariant deliberate negative kept for the audit fixture
var used = cost.Linear{PerItem: -1}

// Stale: the literal below is valid, so nothing is suppressed.
//
//scatterlint:ignore costinvariant nothing left to suppress here
var stale = cost.Linear{PerItem: 1}

// Unknown: the analyzer name is a typo.
//
//scatterlint:ignore costinvariantt misspelled analyzer name
var typo = cost.Linear{PerItem: 2}

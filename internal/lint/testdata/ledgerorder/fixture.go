// Package fixture exercises the ledgerorder analyzer: every Reclaim
// needs a checkpoint append (Deliver) on some preceding path, and the
// ledger v1 codec strings must stay inside Encode/DecodeLedger.
package fixture

import (
	"fmt"

	"repro/internal/fault"
)

// reclaimFirst redistributes data the ledger never recorded: a
// failover successor replaying this ledger would double-deliver.
func reclaimFirst(l *fault.Ledger, at float64) []fault.Range {
	return l.Reclaim(3, at) // want "Reclaim with no checkpoint append"
}

// deliverThenReclaim is the protocol order.
func deliverThenReclaim(l *fault.Ledger, r fault.Range, at float64) []fault.Range {
	l.Deliver(1, r, at)
	return l.Reclaim(1, at)
}

// closureDeliver appends through a local closure, the ftscatter shape;
// the summary table resolves the call to the Deliver inside.
func closureDeliver(l *fault.Ledger, rs []fault.Range, at float64) []fault.Range {
	deliver := func(rank int, rg fault.Range) {
		l.Deliver(rank, rg, at)
	}
	for i, rg := range rs {
		deliver(i, rg)
	}
	return l.Reclaim(0, at)
}

// conditionalAppend appends on only one branch: reachability (not
// dominance) is the protocol's ordering relation, so this is clean.
func conditionalAppend(l *fault.Ledger, ok bool, r fault.Range, at float64) []fault.Range {
	if ok {
		l.Deliver(2, r, at)
	}
	return l.Reclaim(2, at)
}

// handRolledHeader forks the codec: when the protocol version bumps,
// this string silently diverges from what DecodeLedger accepts.
func handRolledHeader() string {
	return fmt.Sprintf("ledger v1\n%d\n", 7) // want "hand-rolled ledger codec string"
}

// handRolledReplica forks the replica-line format the same way.
func handRolledReplica() string {
	return fmt.Sprintf("replica %d %d\n", 1, 2) // want "hand-rolled ledger codec string"
}

// roundTrip serializes through the codec: the only sanctioned path.
func roundTrip(l *fault.Ledger) (*fault.Ledger, error) {
	return fault.DecodeLedger(l.Encode())
}

// Package fixture exercises the //scatterlint:ignore directive: a
// directive naming the analyzer suppresses findings on its line and
// the line below; a directive without a reason is itself reported.
package fixture

import "repro/internal/cost"

// Suppressed on the same line.
var sameLine = cost.Linear{PerItem: -1} //scatterlint:ignore costinvariant negative on purpose to exercise the directive

// Suppressed from the line above.
//
//scatterlint:ignore costinvariant negative on purpose to exercise the directive
var lineAbove = cost.Linear{PerItem: -2}

// A directive naming a different analyzer does not apply.
var wrongName = cost.Linear{PerItem: -3} //scatterlint:ignore mpierrcheck wrong analyzer name // want "Linear.PerItem is negative"

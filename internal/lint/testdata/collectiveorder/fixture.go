// Package fixture exercises the collectiveorder analyzer: collective
// calls under rank-dependent branches must be matched on every path.
package fixture

import (
	"fmt"

	"repro/internal/mpi"
)

// unmatchedBcast is the textbook mismatch: only the root broadcasts,
// so non-root ranks never enter the rendezvous.
func unmatchedBcast(c *mpi.Comm, data []int) error {
	if c.IsRoot() { // want "collectives .Bcast. under a rank-dependent condition with no matching path"
		if _, err := mpi.Bcast(c, data); err != nil {
			return err
		}
	}
	return nil
}

// deadlockShape reproduces internal/mpi/failfast_test.go: one rank
// deserts (returns early) while the others park in a barrier.
func deadlockShape(c *mpi.Comm) error {
	if c.Rank() == 1 { // want "rank-dependent paths call mismatched collectives .branch: none, fall-through: Barrier."
		return fmt.Errorf("rank 1 gives up")
	}
	return mpi.Barrier(c)
}

// orderSwap calls the same collectives on both paths but in opposite
// orders — with rank-ordered single-port collectives this deadlocks
// just as surely as a missing call.
func orderSwap(c *mpi.Comm, data []int) error {
	if c.IsRoot() { // want "mismatched collectives .Gatherv→Barrier vs Barrier→Gatherv."
		if _, err := mpi.Gatherv(c, data); err != nil {
			return err
		}
		if err := mpi.Barrier(c); err != nil {
			return err
		}
	} else {
		if err := mpi.Barrier(c); err != nil {
			return err
		}
		if _, err := mpi.Gatherv(c, data); err != nil {
			return err
		}
	}
	return nil
}

// matched branches are fine: every rank calls Scatterv exactly once.
func matched(c *mpi.Comm, data []int) error {
	if c.IsRoot() {
		_, err := mpi.Scatterv(c, data, []int{1, 1})
		return err
	}
	_, err := mpi.Scatterv[int](c, nil, nil)
	return err
}

// explicitElse with identical sequences is fine.
func explicitElse(c *mpi.Comm, data []int) error {
	if c.Rank() == 0 {
		_, err := mpi.Bcast(c, data)
		return err
	} else {
		_, err := mpi.Bcast[int](c, nil)
		return err
	}
}

// nonRankCondition: branching on data, not rank, is no hazard — every
// rank takes the same path.
func nonRankCondition(c *mpi.Comm, data []int) error {
	if len(data) > 0 {
		return mpi.Barrier(c)
	}
	return nil
}

// balancedNested folds a nested if whose branches agree: both outer
// paths execute Bcast then Barrier.
func balancedNested(c *mpi.Comm, data []int, verbose bool) error {
	if c.IsRoot() {
		if verbose {
			if _, err := mpi.Bcast(c, data); err != nil {
				return err
			}
		} else {
			if _, err := mpi.Bcast(c, data); err != nil {
				return err
			}
		}
		return mpi.Barrier(c)
	}
	if _, err := mpi.Bcast[int](c, nil); err != nil {
		return err
	}
	return mpi.Barrier(c)
}

// pointToPoint: Send/Recv are rank-directed by design and must not be
// flagged.
func pointToPoint(c *mpi.Comm, data []int) error {
	if c.IsRoot() {
		return c.Send(1, data, len(data))
	}
	_, err := c.Recv(c.Root())
	return err
}

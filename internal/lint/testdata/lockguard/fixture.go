// Package fixture exercises the lockguard analyzer: every access to a
// //scatterlint:guardedby field must hold the declared lock class,
// go through sync/atomic, or precede publication.
package fixture

import (
	"sync"
	"sync/atomic"
)

type Counter struct {
	mu   sync.Mutex
	n    int    //scatterlint:guardedby mu
	hits int64  //scatterlint:guardedby atomic
	name string //scatterlint:guardedby immutable
}

// Locked accesses, including under a deferred unlock, are proven.
func (c *Counter) Get(flag bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if flag {
		return c.n
	}
	return 2 * c.n
}

// A local carrier bound to shared state reports immediately: no
// caller can make this access safe.
func lookup(m map[int]*Counter) int {
	c := m[0]
	return c.n // want "read of n .guarded by .lockguard.Counter..mu. without .lockguard.Counter..mu held"
}

// The constructor exemption: writes before the fresh allocation
// escapes are free, including the immutable field.
func newCounter(seed int) *Counter {
	c := &Counter{}
	c.n = seed
	c.name = "seeded"
	return c
}

// A pure value path rooted at a local struct value is free too.
func freshValue(seed int) int {
	var c Counter
	c.n = seed
	return c.n
}

// Bump reaches bump's unlocked write: the requirement survives to an
// exported boundary, and external callers cannot hold Counter.mu.
func (c *Counter) Bump() {
	c.bump()
}

func (c *Counter) bump() {
	c.n++ // want "write of n .guarded by .lockguard.Counter..mu. reachable without the lock from exported ..fixture.Counter..Bump .path Bump → bump.; callers outside the package cannot hold .lockguard.Counter..mu"
}

// The same helper shape called under the lock is proven through the
// summary fixpoint, not assumed: no finding.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	c.addLocked(d)
	c.mu.Unlock()
}

func (c *Counter) addLocked(d int) {
	c.n += d
}

// Closures resolve like helpers: the same literal is proven under the
// lock and reported when an exported path runs it lock-free.
func (c *Counter) Scoped() {
	inc := func() { c.n++ }
	c.mu.Lock()
	inc()
	c.mu.Unlock()
}

func (c *Counter) ScopedBad() {
	inc := func() { c.n++ } // want "write of n .guarded by .lockguard.Counter..mu. reachable without the lock from exported ..fixture.Counter..ScopedBad"
	inc()
}

// Atomic fields must be accessed through sync/atomic.
func (c *Counter) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *Counter) CountHit() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *Counter) badHits() int64 {
	return c.hits // want "read of hits .declared guardedby atomic. must go through sync/atomic"
}

// Immutable fields: reads are always free; writes need construction
// or a locked publish.
func (c *Counter) Name() string {
	return c.name
}

func (c *Counter) publish(s string) {
	c.mu.Lock()
	c.name = s
	c.mu.Unlock()
}

func (c *Counter) Rename(s string) {
	c.name = s // want "write to name .declared guardedby immutable. outside construction or a locked publish"
}

// RWMutex flavor: a read lock satisfies reads but not writes.
type Table struct {
	rw sync.RWMutex
	m  map[string]int //scatterlint:guardedby rw
}

func (t *Table) Get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

func (t *Table) Put(k string, v int) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.m[k] = v
}

func (t *Table) PutUnderRead(k string, v int) {
	t.rw.RLock()
	defer t.rw.RUnlock()
	t.m[k] = v // want "write of m .guarded by .lockguard.Table..rw. reachable without the lock from exported ..fixture.Table..PutUnderRead"
}

// Class guards name a mutex on another type in the same package: any
// held lock of the class satisfies the guard.
type Owner struct {
	mu  sync.Mutex
	rec Record
}

type Record struct {
	val int //scatterlint:guardedby (Owner).mu
}

func Update(o *Owner) {
	o.mu.Lock()
	o.rec.val = 1
	o.mu.Unlock()
	o.rec.val = 2 // want "write of val .guarded by .lockguard.Owner..mu. reachable without the lock from exported fixture.Update"
}

// Malformed annotations are findings: a typo'd guard checks nothing.
type badspec struct {
	mu sync.Mutex
	a  int //scatterlint:guardedby nosuch // want "malformed //scatterlint:guardedby: no sibling field named nosuch"
	b  int //scatterlint:guardedby a // want "malformed //scatterlint:guardedby: a is not a sync.Mutex or sync.RWMutex field"
}

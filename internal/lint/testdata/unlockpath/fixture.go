// Package fixture exercises the unlockpath analyzer: every acquired
// lock is released on every path, no double-Lock, no RLock upgrade,
// no Unlock/RUnlock flavor mismatch.
package fixture

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func missingOnEarlyReturn(b *box, flag bool) int {
	b.mu.Lock()
	if flag {
		return 1 // want "return with b.mu held .acquired at line \d+.: missing Unlock on this path"
	}
	b.mu.Unlock()
	return 0
}

func fallsOffEnd(b *box) {
	b.mu.Lock() // want "function end with b.mu held .acquired at line \d+.: missing Unlock on this path"
}

func doubleLock(b *box) {
	b.mu.Lock()
	b.mu.Lock() // want "b.mu.Lock.. on a path where b.mu is already held .acquired at line \d+.: self-deadlock"
	b.mu.Unlock()
}

func flavorMismatch(b *box) {
	b.rw.RLock()
	b.rw.Unlock() // want "b.rw.Unlock.. releases a read lock acquired at line \d+; use RUnlock"
}

func upgrade(b *box) {
	b.rw.Lock()
	defer b.rw.Unlock()
	b.rw.RLock()   // want "b.rw.RLock.. while b.rw is held exclusively .acquired at line \d+.: lock upgrade deadlocks"
	b.rw.RUnlock() // want "b.rw.RUnlock.. releases an exclusive lock acquired at line \d+; use Unlock"
}

// A deferred unlock covers every path, early returns included.
func deferred(b *box, flag bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if flag {
		return 1
	}
	return 0
}

// A deferred function literal releases too.
func deferredLit(b *box) {
	b.mu.Lock()
	defer func() {
		b.mu.Unlock()
	}()
}

// Two disjoint critical sections in one function are clean.
func twoSpans(b *box) {
	b.mu.Lock()
	x := 1
	b.mu.Unlock()
	b.mu.Lock()
	x++
	b.mu.Unlock()
	_ = x
}

// Must-analysis: a lock held on only one arm of a branch is not held
// at the join, so condition-coupled pairs stay silent by design.
func conditional(b *box, flag bool) {
	if flag {
		b.mu.Lock()
	}
	if flag {
		b.mu.Unlock()
	}
}

// An unlock-then-panic arm meets the live arm as unlocked: clean.
func panicArm(b *box, bad bool) {
	b.mu.Lock()
	if bad {
		b.mu.Unlock()
		panic("bad state")
	}
	b.mu.Unlock()
}

// Paths that never return normally hold no obligations: panics run
// the deferred unlocks, exits tear the process down.
func fatal(b *box) {
	b.mu.Lock()
	panic("dead")
}

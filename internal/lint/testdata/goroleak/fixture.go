// Package fixture exercises the goroleak analyzer: blocking goroutines
// must tie their exit to a context cancel, a channel close or
// counterpart in the spawner, or a WaitGroup join.
package fixture

import (
	"context"
	"sync"
)

// leakedConsumer ranges a local channel nobody ever closes: each call
// parks one goroutine forever.
func leakedConsumer(events []int) {
	ch := make(chan int)
	go func() { // want "goroutine may never exit"
		for v := range ch {
			_ = v
		}
	}()
	for _, e := range events {
		ch <- e
	}
}

// closedConsumer is the fixed form: the spawner closes the channel, so
// the range terminates.
func closedConsumer(events []int) {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for _, e := range events {
		ch <- e
	}
	close(ch)
}

// leakedWaiter receives from a local channel with no send or close
// anywhere in the spawner.
func leakedWaiter() {
	done := make(chan struct{})
	go func() { // want "goroutine may never exit"
		<-done
	}()
}

// signalledWaiter has the counterpart send: clean.
func signalledWaiter() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	done <- struct{}{}
}

// cancelledWorker exits through the context: clean.
func cancelledWorker(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// joinedWorker is joined through the WaitGroup: clean.
func joinedWorker(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := range jobs {
			_ = j
		}
	}()
	wg.Wait()
}

// paramChannel blocks only on a caller-managed channel: the caller
// owns its lifecycle, so the spawner is not on the hook.
func paramChannel(updates chan int) {
	go func() {
		for v := range updates {
			_ = v
		}
	}()
}

// nonBlocking runs to completion unaided: clean.
func nonBlocking(counters []int) {
	go func() {
		total := 0
		for _, c := range counters {
			total += c
		}
		_ = total
	}()
}

// spinLoop never blocks on a channel but never exits either: an
// unconditional loop with no cancel signal is still a leak.
func spinLoop() {
	go func() { // want "goroutine may never exit"
		for {
			_ = 1 + 1
		}
	}()
}

// pollLoop spins but checks a context each turn: clean.
func pollLoop(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

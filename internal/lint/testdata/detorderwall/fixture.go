// Package fixture exercises detorder's wall-clock rule: a rank
// function — one taking an mpi.Comm — must use the virtual clock, not
// real time, or makespans differ run to run. The fixture loads under a
// non-simulated import path, where simclock is silent and detorder's
// interprocedural rule is the only guard.
package fixture

import (
	"math/rand"
	"time"

	"repro/internal/mpi"
)

// stamp is an innocent-looking helper that reaches the wall clock; the
// summary table carries that fact to rank-function call sites.
func stamp() float64 { return float64(time.Now().UnixNano()) }

// rankBody runs under the simulated clock, so both the direct read and
// the helper call are flagged.
func rankBody(c *mpi.Comm) float64 {
	t := time.Now() // want "time.Now on a rank-function path"
	_ = t
	if rand.Float64() < 0.5 { // want "rand.Float64 on a rank-function path"
		return 0
	}
	return stamp() // want "call to stamp reaches the wall clock"
}

// offRank takes no Comm: real time is fine outside rank functions.
func offRank() time.Time { return time.Now() }

// clocked reads the virtual clock — the sanctioned source of time on a
// rank path.
func clocked(c *mpi.Comm) float64 { return c.Clock() }

// Package fixture exercises the lockorder analyzer: the graph of
// which lock classes are acquired while others are held must be
// acyclic.
package fixture

import "sync"

type a struct{ mu sync.Mutex }

type b struct{ mu sync.Mutex }

// abPath and baPath acquire the two classes in opposite orders: a
// classic two-lock deadlock, reported once with both witnesses.
func abPath(x *a, y *b) {
	x.mu.Lock()
	y.mu.Lock() // want "lock-order cycle: .lockorder.a..mu → .lockorder.b..mu acquired in abPath at line \d+; .lockorder.b..mu → .lockorder.a..mu acquired in baPath at line \d+"
	y.mu.Unlock()
	x.mu.Unlock()
}

func baPath(x *a, y *b) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// The same cycle through a summarized helper: cThenD never touches
// d.mu itself, but lockD's acquisition flows through the summary.
type c struct{ mu sync.Mutex }

type d struct{ mu sync.Mutex }

func lockD(y *d) {
	y.mu.Lock()
	y.mu.Unlock()
}

func cThenD(x *c, y *d) {
	x.mu.Lock()
	lockD(y) // want "lock-order cycle: .lockorder.c..mu → .lockorder.d..mu acquired in cThenD at line \d+ .via lockD.; .lockorder.d..mu → .lockorder.c..mu acquired in dThenC at line \d+"
	x.mu.Unlock()
}

func dThenC(x *c, y *d) {
	y.mu.Lock()
	x.mu.Lock()
	x.mu.Unlock()
	y.mu.Unlock()
}

// A consistent global order is the fix: both functions take e.mu
// before f.mu, so the graph stays acyclic and silent.
type e struct{ mu sync.Mutex }

type f struct{ mu sync.Mutex }

func efPathOne(x *e, y *f) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

func efPathTwo(x *e, y *f) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock()
	defer y.mu.Unlock()
}

// Package fixture exercises the collectivedeadlock analyzer: blocking
// sends on local unbuffered channels must have a reachable receiver on
// every interleaving of the spawner and its goroutines.
package fixture

import (
	"errors"
	"sync"
)

func compute() (int, error) { return 42, nil }

// failfastShape is the shape the analyzer must catch by proof rather
// than pattern: the goroutine sends its result, but the spawner's
// error path returns before the receive, leaving the goroutine parked
// forever — one rank deserts, the survivor blocks.
func failfastShape(check func() error) (int, error) {
	result := make(chan int)
	go func() {
		v, _ := compute()
		result <- v // want "not received on every spawner path"
	}()
	if err := check(); err != nil {
		return 0, err
	}
	return <-result, nil
}

// allPathsReceive is the fixed form: every spawner path reaches the
// receive, so the send always completes.
func allPathsReceive(check func() error) (int, error) {
	result := make(chan int)
	go func() {
		v, _ := compute()
		result <- v
	}()
	v := <-result
	if err := check(); err != nil {
		return 0, err
	}
	return v, nil
}

// noReceiverAnywhere: a goroutine send with no receive in the spawner
// at all.
func noReceiverAnywhere() {
	done := make(chan struct{})
	go func() {
		done <- struct{}{} // want "no receiver in the spawning function"
	}()
}

// sendBeforeSpawn: the thread-0 send blocks before the receiving
// goroutine exists — no interleaving has a receiver running.
func sendBeforeSpawn() {
	ch := make(chan int)
	ch <- 1 // want "no goroutine receiving from it is spawned before the send"
	go func() {
		<-ch
	}()
}

// spawnThenSend is the legal ordering of the same pieces: the receiver
// is running before the send blocks.
func spawnThenSend() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	ch <- 1
}

// waitBarrier: the receive exists but sits behind a wg.Wait whose Done
// follows the send in the same goroutine — the barrier can never fall,
// so the receive is unreachable and the send blocks forever.
func waitBarrier() int {
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() {
		ch <- 7 // want "not received on every spawner path"
		wg.Done()
	}()
	wg.Wait()
	return <-ch
}

// doneBeforeSend orders the join correctly: Done precedes the send, so
// Wait falls and the receive runs.
func doneBeforeSend() int {
	var wg sync.WaitGroup
	ch := make(chan int)
	wg.Add(1)
	go func() {
		wg.Done()
		ch <- 7
	}()
	wg.Wait()
	return <-ch
}

// buffered sends complete without a rendezvous: silent.
func buffered() {
	ch := make(chan int, 1)
	ch <- 1
}

// escaping channels leave the provable skeleton: silent.
func escaping(register func(chan int)) {
	ch := make(chan int)
	register(ch)
	ch <- 1
}

// selectSend with an alternative arm never blocks unconditionally:
// silent.
func selectSend(stop chan struct{}) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	select {
	case ch <- 1:
	case <-stop:
	}
}

// sharedReceiver: a second goroutine also receives; interleaving
// exhaustion is impossible, so the analyzer stays silent.
func sharedReceiver(check func() error) error {
	ch := make(chan int)
	go func() {
		ch <- 1
	}()
	go func() {
		<-ch
	}()
	if err := check(); err != nil {
		return errors.New("degraded")
	}
	return nil
}

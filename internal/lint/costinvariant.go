package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// CostInvariant statically rejects cost-model literals that violate
// the paper's algorithm preconditions. Algorithm 1 requires every
// Tcomm/Tcomp to be non-negative and null at x = 0; Algorithm 2
// additionally requires them increasing; the guaranteed heuristic and
// the LP formulation (Eq. 2/4) require affine coefficients. A
// negative α or β, or a cost table that is nonzero at zero items,
// silently produces schedules the optimality proofs do not cover —
// catch the constant cases at compile time instead of at Validate
// time deep inside a run.
var CostInvariant = &Analyzer{
	Name: "costinvariant",
	Doc: "cost-function literals must satisfy the paper's preconditions: " +
		"non-negative α/β constants (Eq. 2) and tables null at zero items; " +
		"solver entry points must not receive constant negative item counts",
	Run: runCostInvariant,
}

// costPkgPath and corePkgPath locate the checked literal types.
const (
	costPkgPath = "repro/internal/cost"
	corePkgPath = "repro/internal/core"
)

// negativeFieldRules maps (package, type) to the struct fields that
// must not hold negative constants, with the invariant each encodes.
var negativeFieldRules = map[[2]string]map[string]string{
	{costPkgPath, "Linear"}: {
		"PerItem": "a negative per-item cost violates the non-negativity precondition of Algorithm 1 (Eq. 2)",
	},
	{costPkgPath, "Affine"}: {
		"Fixed":   "a negative fixed cost violates the non-negativity precondition of the affine heuristic (Eq. 2)",
		"PerItem": "a negative per-item cost makes the affine function decreasing, breaking Algorithm 2's precondition",
	},
	{costPkgPath, "Scaled"}: {
		"Factor": "a negative scale factor flips the cost's sign, violating non-negativity (Eq. 2)",
	},
	{costPkgPath, "Breakpoint"}: {
		"X": "a negative breakpoint abscissa is outside the cost domain x >= 0",
		"Y": "a negative breakpoint cost violates the non-negativity precondition (Eq. 2)",
	},
	{corePkgPath, "LinearProcessor"}: {
		"Alpha": "a negative α (per-item communication cost) violates the Section 4 closed form's precondition",
		"Beta":  "a negative β (per-item computation cost) violates the Section 4 closed form's precondition",
	},
}

// itemCountArgs maps core solver entry points to the index of their
// item-count argument. Package-level functions are keyed by name,
// methods by "Receiver.Name". A constant negative count at any of
// these call sites is a guaranteed runtime validation error (the
// paper's algorithms are defined for n >= 0), so reject it at vet
// time. The Plan/Engine entries keep the incremental-solver surface
// (Plan.Lookup subproblems, Plan.Resolve re-solves, Engine.Solve)
// under the same invariant as the from-scratch solvers.
var itemCountArgs = map[string]int{
	"Algorithm1":          1,
	"Algorithm2":          1,
	"Algorithm2Opt":       1,
	"Algorithm2Parallel":  1,
	"SolveLinear":         1,
	"SolveLinearRational": 1,
	"Heuristic":           1,
	"HeuristicRational":   1,
	"BruteForce":          1,
	"SolvePlan":           1,
	"SolveCoarse":         1,
	"SolveCoarseOpt":      1,
	"Uniform":             1,
	"Plan.Lookup":         0,
	"Plan.Resolve":        0,
	"Engine.Solve":        1,
}

func runCostInvariant(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				named := namedStructType(pass, node)
				if named == nil {
					return true
				}
				pkg := named.Obj().Pkg()
				if pkg == nil {
					return true
				}
				key := [2]string{pkg.Path(), named.Obj().Name()}
				if rules, ok := negativeFieldRules[key]; ok {
					checkNegativeFields(pass, node, named, rules)
				}
				if key == [2]string{costPkgPath, "Table"} {
					checkTableLiteral(pass, node, named)
				}
			case *ast.CallExpr:
				checkItemCountArg(pass, node)
			}
			return true
		})
	}
	return nil
}

// checkItemCountArg rejects constant negative item counts passed to
// the core solver entry points listed in itemCountArgs. Test files
// are exempt: the solver tests deliberately pass negative counts to
// exercise the runtime validation this check front-runs.
func checkItemCountArg(pass *Pass, call *ast.CallExpr) {
	if fname := pass.Fset.Position(call.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != corePkgPath {
		return
	}
	key := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		key = named.Obj().Name() + "." + key
	}
	idx, ok := itemCountArgs[key]
	if !ok || idx >= len(call.Args) {
		return
	}
	if sign, ok := constSign(pass, call.Args[idx]); ok && sign < 0 {
		pass.Reportf(call.Args[idx].Pos(),
			"%s called with a constant negative item count: the paper's solvers are defined for n >= 0 only", key)
	}
}

// namedStructType returns the named struct type of a composite
// literal, or nil (slice/map/array literals, unnamed structs).
func namedStructType(pass *Pass, lit *ast.CompositeLit) *types.Named {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// literalFields yields (field name, value expression) pairs for both
// keyed and positional struct literals.
func literalFields(named *types.Named, lit *ast.CompositeLit) map[string]ast.Expr {
	st := named.Underlying().(*types.Struct)
	out := make(map[string]ast.Expr)
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				out[id.Name] = kv.Value
			}
			continue
		}
		if i < st.NumFields() {
			out[st.Field(i).Name()] = elt
		}
	}
	return out
}

// constSign returns the sign of the expression's constant value, and
// whether the expression is a numeric constant at all.
func constSign(pass *Pass, e ast.Expr) (int, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value), true
	}
	return 0, false
}

// checkNegativeFields reports constant negative values in the fields
// named by rules.
func checkNegativeFields(pass *Pass, lit *ast.CompositeLit, named *types.Named, rules map[string]string) {
	for name, expr := range literalFields(named, lit) {
		why, ruled := rules[name]
		if !ruled {
			continue
		}
		if sign, ok := constSign(pass, expr); ok && sign < 0 {
			pass.Reportf(expr.Pos(), "%s.%s is negative: %s", named.Obj().Name(), name, why)
		}
	}
}

// checkTableLiteral enforces the cost.Table invariants on a literal
// whose Values slice is itself a literal: Values[0] must be 0 (costs
// are null at zero items) and no entry may be a negative constant.
func checkTableLiteral(pass *Pass, lit *ast.CompositeLit, named *types.Named) {
	values, ok := literalFields(named, lit)["Values"]
	if !ok {
		return
	}
	slice, ok := ast.Unparen(values).(*ast.CompositeLit)
	if !ok {
		return
	}
	for i, elt := range slice.Elts {
		if _, isKV := elt.(*ast.KeyValueExpr); isKV {
			return // indexed slice literal; positions are not element order
		}
		sign, ok := constSign(pass, elt)
		if !ok {
			continue
		}
		if i == 0 && sign != 0 {
			pass.Reportf(elt.Pos(), "Table.Values[0] is nonzero: cost functions must be null at zero items (Algorithm 1 precondition)")
		}
		if sign < 0 {
			pass.Reportf(elt.Pos(), "Table.Values[%d] is negative: cost functions must be non-negative (Eq. 2)", i)
		}
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// BandCheck proves value-range preconditions of the paper's solvers
// with the SSA interval layer (interval.go), strengthening
// costinvariant's constant-only checks to anything the sparse
// propagation can bound:
//
//  1. an item-count argument at a core solver entry point whose
//     interval is provably negative is rejected (the algorithms are
//     defined for n >= 0 — Eq. 2's domain);
//  2. a provably-nil processor slice at those entry points is rejected
//     (the solvers validate len(procs) >= 1, so a nil slice is a
//     guaranteed runtime error);
//  3. inside the solver packages themselves, an integer division or
//     modulus whose divisor is a function parameter must be dominated
//     by a guard excluding zero — the Eq. 4 rounding band
//     (granularity g, processor count p) divides by caller-supplied
//     values, and an unguarded divide is a latent panic the paper's
//     preconditions do not cover.
//
// Constant arguments are left to costinvariant, so each defect is
// reported exactly once.
var BandCheck = &Analyzer{
	Name: "bandcheck",
	Doc: "solver entry points must not receive provably negative item counts " +
		"or provably nil processor slices, and granularity/processor divides " +
		"inside the solver packages must be guarded against zero divisors " +
		"(interval proofs over SSA; Eq. 2 domain and Eq. 4 band)",
	Run: runBandCheck,
}

// divGuardPkgPrefixes scopes the divisor-guard rule to the packages
// implementing the paper's arithmetic, where an unguarded divide is a
// schedule-correctness bug rather than app-level style.
var divGuardPkgPrefixes = []string{
	"repro/internal/core",
	"repro/internal/masterslave",
}

func runBandCheck(pass *Pass) error {
	divScoped := false
	if pass.Pkg != nil {
		for _, prefix := range divGuardPkgPrefixes {
			if pass.Pkg.Path() == prefix || strings.HasPrefix(pass.Pkg.Path(), prefix+"/") {
				divScoped = true
			}
		}
	}
	for _, unit := range buildFuncUnits(pass) {
		params := paramObjs(pass.TypesInfo, unitRecv(unit), unit.Type)
		walkOwnBody(unit.Body, func(n ast.Node) {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkBandCall(pass, unit, v)
			case *ast.BinaryExpr:
				if divScoped && (v.Op == token.QUO || v.Op == token.REM) {
					checkDivGuard(pass, unit, params, v)
				}
			}
		})
	}
	return nil
}

func unitRecv(unit *funcUnit) *ast.FieldList {
	if unit.Decl != nil {
		return unit.Decl.Recv
	}
	return nil
}

// checkBandCall applies the interval and nilness proofs to one call of
// a core solver entry point.
func checkBandCall(pass *Pass, unit *funcUnit, call *ast.CallExpr) {
	if fname := pass.Fset.Position(call.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
		return // solver tests deliberately exercise the runtime validation
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != corePkgPath {
		return
	}
	key := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			return
		}
		key = named.Obj().Name() + "." + key
	}
	idx, ok := itemCountArgs[key]
	if !ok {
		return
	}
	if idx < len(call.Args) {
		arg := call.Args[idx]
		// Constants belong to costinvariant; flag only what interval
		// propagation adds.
		if _, isConst := constSign(pass, arg); !isConst {
			if iv := unit.Eng.IntervalOfExpr(arg); iv.DefinitelyNegative() {
				pass.Reportf(arg.Pos(),
					"%s called with a provably negative item count (interval proves n <= %d): the paper's solvers are defined for n >= 0 only",
					key, iv.Hi)
			}
		}
	}
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			continue
		}
		if unit.Eng.NilnessOfExpr(arg) == NilAlways {
			pass.Reportf(arg.Pos(),
				"%s called with a provably nil processor slice: the solvers require at least one processor", key)
		}
	}
}

// checkDivGuard requires a zero-excluding guard on divides whose
// divisor is a function parameter.
func checkDivGuard(pass *Pass, unit *funcUnit, params map[*types.Var]bool, bin *ast.BinaryExpr) {
	if fname := pass.Fset.Position(bin.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
		return
	}
	if !isIntegerExpr(pass.TypesInfo, bin.Y) {
		return
	}
	id, ok := ast.Unparen(bin.Y).(*ast.Ident)
	if !ok {
		return // only direct parameter divisors; fields and calls are out of scope
	}
	obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || !params[obj] {
		return
	}
	// The use must resolve to the parameter's entry value: a
	// reassigned parameter is a local concern, not a caller contract.
	if _, isParam := unit.SSA.ValueAt(id).(*ValParam); !isParam {
		return
	}
	if iv := unit.Eng.IntervalOf(id); !iv.ExcludesZero() {
		op := "division"
		if bin.Op == token.REM {
			op = "modulus"
		}
		pass.Reportf(bin.Y.Pos(),
			"%s by parameter %s is not guarded against zero: the Eq. 4 band arithmetic requires a dominating check such as `if %s <= 0 { return }`",
			op, id.Name, id.Name)
	}
}

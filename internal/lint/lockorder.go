package lint

// LockOrder proves the package's lock-acquisition graph acyclic. An
// edge A → B is recorded whenever a lock of class B is acquired —
// directly, through a summarized same-package callee or closure, or
// through a cross-package API in the apiLockAcquires table — while a
// lock of class A is held. Any cycle is a potential deadlock: two
// goroutines entering the cycle from different classes block each
// other forever. Each cycle is reported once, in canonical rotation,
// with the witness acquisition of every edge. A report means the
// *possibility* is real in the call graph even if today's schedules
// never interleave the two paths; break it by ordering the
// acquisitions or narrowing one critical section. The known hole is
// callbacks: a function value passed to another package and invoked
// under that package's lock contributes no edge here.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock ordering: the graph of which lock classes are acquired while others " +
		"are held must be acyclic; cycles are reported with both witness paths",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	reportLockFindings(pass, computeLockSets(pass).orderFindings)
	return nil
}

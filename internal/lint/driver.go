package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//scatterlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers' findings on its own
// line and on the line below it (so it can trail the offending
// statement or sit on its own line above it). When the line below
// starts a multi-line statement, declaration or composite-literal
// element that contains no nested block, the suppression covers that
// whole node — anchoring to syntax so `gofmt` reflowing a literal
// cannot silently un-suppress a finding on its later lines. The
// reason is mandatory: an unexplained suppression is itself reported.
const directivePrefix = "//scatterlint:ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	pos       token.Pos
	analyzers map[string]bool
	reason    string

	file string
	line int
	// [coverStart, coverEnd] is the line range of the anchor node, if
	// any (0,0 when the directive anchors to nothing multi-line).
	coverStart, coverEnd int
	// used records whether the directive suppressed at least one
	// finding in this run — the input to the staleness audit.
	used bool
}

// covers reports whether the directive's range includes pos.
func (dir *ignoreDirective) covers(pos token.Position) bool {
	if pos.Filename != dir.file {
		return false
	}
	if pos.Line == dir.line || pos.Line == dir.line+1 {
		return true
	}
	return dir.coverStart != 0 && dir.coverStart <= pos.Line && pos.Line <= dir.coverEnd
}

// parseDirectives extracts every scatterlint:ignore directive from the
// files, reporting malformed ones (no analyzer, no reason) as
// diagnostics attributed to the driver itself.
func parseDirectives(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, f := range files {
		anchors := anchorLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "scatterlint",
						Message:  "malformed scatterlint:ignore directive: want //scatterlint:ignore <analyzer> <reason>",
					})
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				cp := fset.Position(c.Pos())
				dir := &ignoreDirective{
					pos:       c.Pos(),
					analyzers: names,
					reason:    strings.Join(fields[1:], " "),
					file:      cp.Filename,
					line:      cp.Line,
				}
				// Anchor: a node starting on the directive's own line
				// (trailing form) wins over one on the next line
				// (above form).
				if end, ok := anchors[cp.Line]; ok {
					dir.coverStart, dir.coverEnd = cp.Line, end
				} else if end, ok := anchors[cp.Line+1]; ok {
					dir.coverStart, dir.coverEnd = cp.Line+1, end
				}
				dirs = append(dirs, dir)
			}
		}
	}
	return dirs
}

// anchorLines maps a start line to the largest end line of any
// anchorable node starting there. Anchorable nodes are "leaf-ish":
// simple statements, value specs, struct fields and composite-literal
// elements that contain no nested block — so a directive can cover a
// reformatted multi-line literal, but never an entire if/for body.
func anchorLines(fset *token.FileSet, file *ast.File) map[int]int {
	anchors := make(map[int]int)
	consider := func(n ast.Node) {
		start := fset.Position(n.Pos()).Line
		end := fset.Position(n.End()).Line
		if end > anchors[start] {
			anchors[start] = end
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			// Block-bearing statements: anchoring to them would let one
			// directive silence a whole body.
		case ast.Stmt:
			if !containsBlock(v) {
				consider(v)
			}
		case *ast.ValueSpec, *ast.Field:
			if !containsBlock(n) {
				consider(n)
			}
		case *ast.CompositeLit:
			for _, elt := range v.Elts {
				if !containsBlock(elt) {
					consider(elt)
				}
			}
		}
		return true
	})
	return anchors
}

// containsBlock reports whether the node contains a nested block or
// function literal — the disqualifier for anchoring.
func containsBlock(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			found = true
		}
		return !found
	})
	return found
}

// suppressed reports whether d is covered by a directive: one naming
// d.Analyzer (or "all") whose anchored range includes the diagnostic.
// Matching directives are marked used for the staleness audit.
func suppressed(fset *token.FileSet, dirs []*ignoreDirective, d Diagnostic) bool {
	if len(dirs) == 0 {
		return false
	}
	pos := fset.Position(d.Pos)
	hit := false
	for _, dir := range dirs {
		if !dir.analyzers[d.Analyzer] && !dir.analyzers["all"] {
			continue
		}
		if dir.covers(pos) {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// A DirectiveAudit describes one scatterlint:ignore directive after a
// run: whether it suppressed anything, and whether it names analyzers
// that do not exist. Stale directives (Used == false) are dead config
// that silently stops protecting the line it once excused.
type DirectiveAudit struct {
	// Pos locates the directive comment.
	Pos token.Pos
	// Analyzers are the names the directive claims to suppress.
	Analyzers []string
	// Reason is the justification text.
	Reason string
	// Used reports whether the directive suppressed >= 1 finding.
	Used bool
	// Unknown lists named analyzers that are not in the run set — a
	// typo or a removed analyzer, stale by definition.
	Unknown []string
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the surviving diagnostics, sorted by position. Findings covered by a
// scatterlint:ignore directive are dropped.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersAudit(pkg, analyzers)
	return diags, err
}

// RunAnalyzersAudit is RunAnalyzers plus the directive audit: every
// scatterlint:ignore directive in the package is returned with its
// usage recorded, so callers (scatterlint -ignoreaudit) can report
// stale suppressions.
func RunAnalyzersAudit(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, []DirectiveAudit, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	known["all"] = true
	known["scatterlint"] = true // the driver's own malformed-directive findings

	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	dirs := parseDirectives(pkg.Fset, pkg.Files, collect)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}

	var kept []Diagnostic
	for _, d := range raw {
		if !suppressed(pkg.Fset, dirs, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })

	audits := make([]DirectiveAudit, 0, len(dirs))
	for _, dir := range dirs {
		a := DirectiveAudit{Pos: dir.pos, Reason: dir.reason, Used: dir.used}
		for name := range dir.analyzers {
			a.Analyzers = append(a.Analyzers, name)
			if !known[name] {
				a.Unknown = append(a.Unknown, name)
			}
		}
		sort.Strings(a.Analyzers)
		sort.Strings(a.Unknown)
		audits = append(audits, a)
	}
	sort.Slice(audits, func(i, j int) bool { return audits[i].Pos < audits[j].Pos })
	return kept, audits, nil
}

// Format renders a diagnostic the way `go vet` does:
// file:line:col: message (analyzer).
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//scatterlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// The directive suppresses the named analyzers' findings on its own
// line and on the line below it (so it can trail the offending
// statement or sit on its own line above it). The reason is
// mandatory: an unexplained suppression is itself reported.
const directivePrefix = "//scatterlint:ignore"

// ignoreDirective is one parsed suppression comment.
type ignoreDirective struct {
	pos       token.Pos
	analyzers map[string]bool
	reason    string
}

// parseDirectives extracts every scatterlint:ignore directive from the
// files, reporting malformed ones (no analyzer, no reason) as
// diagnostics attributed to the driver itself.
func parseDirectives(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) []*ignoreDirective {
	var dirs []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					report(Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "scatterlint",
						Message:  "malformed scatterlint:ignore directive: want //scatterlint:ignore <analyzer> <reason>",
					})
					continue
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				dirs = append(dirs, &ignoreDirective{
					pos:       c.Pos(),
					analyzers: names,
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return dirs
}

// suppressed reports whether d is covered by a directive: one naming
// d.Analyzer (or "all") on the diagnostic's line or the line above.
func suppressed(fset *token.FileSet, dirs []*ignoreDirective, d Diagnostic) bool {
	if len(dirs) == 0 {
		return false
	}
	pos := fset.Position(d.Pos)
	for _, dir := range dirs {
		if !dir.analyzers[d.Analyzer] && !dir.analyzers["all"] {
			continue
		}
		dp := fset.Position(dir.pos)
		if dp.Filename != pos.Filename {
			continue
		}
		if dp.Line == pos.Line || dp.Line == pos.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers applies the analyzers to one loaded package and returns
// the surviving diagnostics, sorted by position. Findings covered by a
// scatterlint:ignore directive are dropped.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	collect := func(d Diagnostic) { raw = append(raw, d) }

	dirs := parseDirectives(pkg.Fset, pkg.Files, collect)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				raw = append(raw, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}

	var kept []Diagnostic
	for _, d := range raw {
		if !suppressed(pkg.Fset, dirs, d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Pos < kept[j].Pos })
	return kept, nil
}

// Format renders a diagnostic the way `go vet` does:
// file:line:col: message (analyzer).
func Format(fset *token.FileSet, d Diagnostic) string {
	return fmt.Sprintf("%s: %s (%s)", fset.Position(d.Pos), d.Message, d.Analyzer)
}

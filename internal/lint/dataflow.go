package lint

import (
	"go/ast"
	"go/types"
)

// This file is the second half of the dataflow layer: reaching
// definitions over the CFG of one function. Each definition site of a
// local variable (assignment, var declaration, range binding,
// parameter) becomes a numbered site; a standard gen/kill fixpoint
// then answers "which definitions of v can reach this node". The
// taint analyses (poolalias) are built on top: a variable is pooled at
// a use exactly when some pooled definition reaches it.

// A defSite is one definition of a variable.
type defSite struct {
	// obj is the defined variable.
	obj *types.Var
	// at locates the defining node; parameters use the entry pseudo
	// position (idx -1).
	at ref
	// rhs is the defining expression, nil when there is none (zero
	// declarations, range bindings, parameters). For tuple
	// assignments rhs is the shared multi-value expression and
	// tupleIdx selects the result.
	rhs      ast.Expr
	tupleIdx int
}

// ReachDefs holds the reaching-definitions solution for one function.
type ReachDefs struct {
	g     *CFG
	info  *types.Info
	sites []defSite
	// byObj indexes sites by defined variable.
	byObj map[*types.Var][]int
	// in[b] is the set of site indices reaching the top of block b.
	in [][]bool
	// defsByBlock lists (node index, site index) pairs per block, in
	// execution order. Parameter pseudo-defs use node index -1.
	defsByBlock map[*Block][]blockDef
}

type blockDef struct {
	nodeIdx int
	site    int
}

// newReachDefs solves reaching definitions for a function with the
// given CFG, receiver and type. recv and ftype seed the parameter
// pseudo-definitions; either may be nil (function literals have no
// receiver).
func newReachDefs(g *CFG, info *types.Info, recv *ast.FieldList, ftype *ast.FuncType) *ReachDefs {
	rd := &ReachDefs{
		g:           g,
		info:        info,
		byObj:       make(map[*types.Var][]int),
		defsByBlock: make(map[*Block][]blockDef),
	}

	addSite := func(s defSite) {
		idx := len(rd.sites)
		rd.sites = append(rd.sites, s)
		rd.byObj[s.obj] = append(rd.byObj[s.obj], idx)
		rd.defsByBlock[s.at.block] = append(rd.defsByBlock[s.at.block], blockDef{s.at.idx, idx})
	}
	addIdent := func(id *ast.Ident, at ref, rhs ast.Expr, tupleIdx int) {
		if id == nil || id.Name == "_" {
			return
		}
		obj, _ := info.ObjectOf(id).(*types.Var)
		if obj == nil {
			return
		}
		addSite(defSite{obj: obj, at: at, rhs: rhs, tupleIdx: tupleIdx})
	}

	// Parameters, receivers and named results define at entry.
	entry := ref{g.Entry, -1}
	for _, fl := range []*ast.FieldList{recv, paramsOf(ftype), resultsOf(ftype)} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				addIdent(name, entry, nil, 0)
			}
		}
	}

	// Definitions inside blocks.
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			at := ref{blk, i}
			switch v := n.(type) {
			case *ast.AssignStmt:
				rd.addAssign(v, at, addIdent)
			case *ast.DeclStmt:
				gd, ok := v.Decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					rd.addValueSpec(vs, at, addIdent)
				}
			case *ast.RangeStmt:
				addIdent(identOf(v.Key), at, nil, 0)
				addIdent(identOf(v.Value), at, nil, 0)
			}
		}
	}

	rd.solve()
	return rd
}

func paramsOf(ft *ast.FuncType) *ast.FieldList {
	if ft == nil {
		return nil
	}
	return ft.Params
}

func resultsOf(ft *ast.FuncType) *ast.FieldList {
	if ft == nil {
		return nil
	}
	return ft.Results
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func (rd *ReachDefs) addAssign(v *ast.AssignStmt, at ref, add func(*ast.Ident, ref, ast.Expr, int)) {
	if len(v.Rhs) == len(v.Lhs) {
		for i, lhs := range v.Lhs {
			add(identOf(lhs), at, v.Rhs[i], 0)
		}
		return
	}
	// Tuple assignment: a, b := f().
	for i, lhs := range v.Lhs {
		add(identOf(lhs), at, v.Rhs[0], i)
	}
}

func (rd *ReachDefs) addValueSpec(vs *ast.ValueSpec, at ref, add func(*ast.Ident, ref, ast.Expr, int)) {
	switch {
	case len(vs.Values) == len(vs.Names):
		for i, name := range vs.Names {
			add(name, at, vs.Values[i], 0)
		}
	case len(vs.Values) == 1:
		for i, name := range vs.Names {
			add(name, at, vs.Values[0], i)
		}
	default:
		for _, name := range vs.Names {
			add(name, at, nil, 0)
		}
	}
}

// solve runs the gen/kill fixpoint.
func (rd *ReachDefs) solve() {
	n := len(rd.g.Blocks)
	ns := len(rd.sites)
	gen := make([][]bool, n)
	kill := make([][]bool, n)
	for i := range gen {
		gen[i] = make([]bool, ns)
		kill[i] = make([]bool, ns)
	}
	for blk, defs := range rd.defsByBlock {
		i := blk.Index
		for _, d := range defs {
			obj := rd.sites[d.site].obj
			// A later def of the same variable kills every earlier one.
			for _, other := range rd.byObj[obj] {
				gen[i][other] = false
				kill[i][other] = true
			}
			gen[i][d.site] = true
			kill[i][d.site] = false
		}
	}

	in := make([][]bool, n)
	out := make([][]bool, n)
	for i := range in {
		in[i] = make([]bool, ns)
		out[i] = make([]bool, ns)
		copy(out[i], gen[i])
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range rd.g.Blocks {
			i := blk.Index
			for _, p := range blk.Preds {
				for s := 0; s < ns; s++ {
					if out[p.Index][s] && !in[i][s] {
						in[i][s] = true
						changed = true
					}
				}
			}
			for s := 0; s < ns; s++ {
				nv := gen[i][s] || (in[i][s] && !kill[i][s])
				if nv != out[i][s] {
					out[i][s] = nv
					changed = true
				}
			}
		}
	}
	rd.in = in
}

// defsReaching returns the indices of obj's definitions that can reach
// the node at `at`. Definitions earlier in the same block shadow the
// block-entry set, in order.
func (rd *ReachDefs) defsReaching(obj *types.Var, at ref) []int {
	live := make(map[int]bool)
	for _, s := range rd.byObj[obj] {
		if rd.in[at.block.Index][s] {
			live[s] = true
		}
	}
	for _, d := range rd.defsByBlock[at.block] {
		if d.nodeIdx >= at.idx && !(d.nodeIdx == -1) {
			continue
		}
		if rd.sites[d.site].obj != obj {
			continue
		}
		// This def executes before `at` in the block: it replaces all
		// earlier defs of obj.
		for k := range live {
			delete(live, k)
		}
		live[d.site] = true
	}
	out := make([]int, 0, len(live))
	for _, s := range rd.byObj[obj] {
		if live[s] {
			out = append(out, s)
		}
	}
	return out
}

// refOf finds the innermost CFG node containing the expression, falling
// back to the entry pseudo-ref so lookups never fail catastrophically.
func (rd *ReachDefs) refOf(n ast.Node) ref {
	if r, ok := rd.g.RefAt(n.Pos()); ok {
		return r
	}
	return ref{rd.g.Entry, -1}
}

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// MutexChan flags blocking channel operations performed while a
// sync.Mutex (or RWMutex) is held in the same function body. The
// rank-per-goroutine runtime guards World state with World.mu while
// every rank also parks on channel mailboxes; a channel send, receive
// or defaultless select under the lock can park the goroutine with
// the lock held, and every other rank then wedges on World.mu — a
// whole-world deadlock that no fail-fast path can unwind. close() is
// fine (it never blocks); so is a select with a default case.
//
// The analysis is intraprocedural and block-local: it tracks
// Lock/Unlock pairs along straight-line statement order, propagating
// the held set into nested blocks but not out of them.
var MutexChan = &Analyzer{
	Name: "mutexchan",
	Doc: "no blocking channel operation (send, receive, defaultless select) " +
		"while a sync.Mutex is held: a parked goroutine holding World.mu wedges " +
		"every rank",
	Run: runMutexChan,
}

func runMutexChan(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				scanLockedBlock(pass, body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// mutexMethod classifies a call as Lock/RLock ("lock"), Unlock/RUnlock
// ("unlock") or neither, returning the receiver expression's printed
// form as the mutex identity.
func mutexMethod(pass *Pass, call *ast.CallExpr) (key, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return "", ""
	}
	return types.ExprString(sel.X), kind
}

// scanLockedBlock walks stmts in order, maintaining the set of held
// mutexes, and reports blocking channel operations found while the set
// is non-empty. Branch bodies are scanned with a copy of the current
// state: a lock taken or released inside a branch is assumed not to
// survive it (conservative in both directions, but free of
// path-explosion).
func scanLockedBlock(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch v := s.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
				if key, kind := mutexMethod(pass, call); kind != "" {
					if kind == "lock" {
						held[key] = true
					} else {
						delete(held, key)
					}
					continue
				}
			}
			reportBlockingOps(pass, v, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the mutex held for the rest of
			// the body — that is the point of the pattern — so it does
			// not clear the held set. Other deferred work is scanned
			// with an empty held set (it runs at return time).
			if _, kind := mutexMethod(pass, v.Call); kind == "" {
				if fl, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
					scanLockedBlock(pass, fl.Body.List, map[string]bool{})
				}
			}
		case *ast.BlockStmt:
			scanLockedBlock(pass, v.List, copyHeld(held))
		case *ast.IfStmt:
			if v.Init != nil {
				reportBlockingOps(pass, v.Init, held)
			}
			reportBlockingOps(pass, v.Cond, held)
			scanLockedBlock(pass, v.Body.List, copyHeld(held))
			if v.Else != nil {
				scanLockedBlock(pass, []ast.Stmt{v.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if v.Cond != nil {
				reportBlockingOps(pass, v.Cond, held)
			}
			scanLockedBlock(pass, v.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if len(held) > 0 {
				if t, ok := pass.TypesInfo.Types[v.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(v.Pos(), "ranging over a channel while %s is held: a quiet channel parks this goroutine with the lock taken", heldNames(held))
					}
				}
			}
			scanLockedBlock(pass, v.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanLockedBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 && !selectHasDefault(v) {
				pass.Reportf(v.Pos(), "select without default while %s is held: every case can block with the lock taken", heldNames(held))
			}
			for _, c := range v.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanLockedBlock(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			scanLockedBlock(pass, []ast.Stmt{v.Stmt}, held)
		default:
			reportBlockingOps(pass, s, held)
		}
	}
}

// reportBlockingOps scans one leaf statement or expression for channel
// sends and receives, reporting each while a mutex is held. Function
// literals are skipped (they block whoever calls them, later).
func reportBlockingOps(pass *Pass, n ast.Node, held map[string]bool) {
	if len(held) == 0 || n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			pass.Reportf(v.Arrow, "channel send while %s is held: a full or unbuffered channel parks this goroutine with the lock taken", heldNames(held))
		case *ast.UnaryExpr:
			if v.Op.String() == "<-" {
				pass.Reportf(v.Pos(), "channel receive while %s is held: an empty channel parks this goroutine with the lock taken", heldNames(held))
			}
		}
		return true
	})
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// copyHeld clones the held-mutex set for a nested scope.
func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// heldNames renders the held mutexes for a diagnostic, in stable order.
func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

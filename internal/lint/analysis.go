// Package lint is scatterlint: a suite of static analyzers encoding
// this repository's domain invariants — the MPI collective-ordering
// discipline of the simulator, the cost-model preconditions of the
// paper's algorithms (Eq. 2/4: non-negative, null at zero, increasing
// or affine depending on the solver), the virtual-time rule that no
// simulated package consults the wall clock, and the lock hygiene of
// the rank-per-goroutine runtime.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// alone, so the repository stays dependency-free. cmd/scatterlint
// drives it either standalone (loading packages via `go list -export`)
// or as a `go vet -vettool=` plugin speaking the vet.cfg protocol.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. It is the unit run by the
// driver and the unit named by //scatterlint:ignore directives.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives. It
	// must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant enforced,
	// starting with the invariant rather than the mechanics.
	Doc string
	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for operational failures
	// (never for findings).
	Run func(pass *Pass) error
}

// A Pass presents one package to an analyzer: its syntax, its type
// information, and a sink for diagnostics.
type Pass struct {
	// Analyzer is the analyzer being run.
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files to file positions.
	Fset *token.FileSet
	// Files is the package's parsed syntax, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The driver
// stamps the Analyzer name before surfacing it.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Pos
	// Message states the violated invariant and, where possible, the
	// consequence (a hang, a wrong schedule) rather than just the rule.
	Message string
	// Analyzer is the reporting analyzer's name, filled by the driver.
	Analyzer string
}

// calleeFunc resolves the function or method named by a call, looking
// through generic instantiation syntax (Scatterv[int](...)). It
// returns nil for calls through function-typed variables, conversions
// and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch e := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(e.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(e.X)
	}
	var id *ast.Ident
	switch e := fun.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// mpiPkgPath is the import path of the simulator's MPI runtime, the
// package whose call discipline most of the analyzers police.
const mpiPkgPath = "repro/internal/mpi"

// isMPIFunc reports whether fn belongs to the mpi package.
func isMPIFunc(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == mpiPkgPath
}

// funcDisplayName renders fn for diagnostics: "mpi.Scatterv" for
// package functions, "(*mpi.Comm).Send" for methods.
func funcDisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		name := ""
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			name = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			name += fn.Pkg().Name() + "." + named.Obj().Name()
		} else {
			name += recv.String()
		}
		return "(" + name + ")." + fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// exprText renders an expression for diagnostics and for comparing
// syntactic access paths (pin targets against alias sources).
func exprText(e ast.Expr) string {
	return types.ExprString(e)
}

// errorType is the predeclared error interface type.
var errorType = types.Universe.Lookup("error").Type()

// sigReturnsError reports whether the signature's final result is the
// error type, and the index of that result.
func sigReturnsError(sig *types.Signature) (int, bool) {
	res := sig.Results()
	if res.Len() == 0 {
		return -1, false
	}
	last := res.Len() - 1
	if types.Identical(res.At(last).Type(), errorType) {
		return last, true
	}
	return -1, false
}

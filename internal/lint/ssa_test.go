package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"testing"
)

// buildSSAFor parses src, builds the CFG and SSA for the named
// function, and returns the pieces unit tests poke at.
func buildSSAFor(t *testing.T, src, name string) (*token.FileSet, *types.Info, *ast.FuncDecl, *SSAFunc) {
	t.Helper()
	fset, info, fd := parseFunc(t, src, name)
	g := BuildCFG(fd.Body)
	f := BuildSSA(g, info, fd.Recv, fd.Type, fd.Body)
	return fset, info, fd, f
}

// useOnLine finds the use of the named identifier on the given line.
func useOnLine(t *testing.T, fset *token.FileSet, info *types.Info, fd *ast.FuncDecl, name string, line int) *ast.Ident {
	t.Helper()
	var found *ast.Ident
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && info.Uses[id] != nil &&
			fset.Position(id.Pos()).Line == line {
			found = id
		}
		return true
	})
	if found == nil {
		t.Fatalf("no use of %q on line %d", name, line)
	}
	return found
}

func countPhis(f *SSAFunc) int {
	n := 0
	for _, phis := range f.Phis {
		n += len(phis)
	}
	return n
}

func TestSSAPhiAtDiamondJoin(t *testing.T) {
	src := `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`
	fset, info, fd, f := buildSSAFor(t, src, "f")
	if got := countPhis(f); got != 1 {
		t.Fatalf("placed %d phis, want exactly 1 (x at the join)", got)
	}
	use := useOnLine(t, fset, info, fd, "x", lineOf(t, src, "return x"))
	phi, ok := f.ValueAt(use).(*ValPhi)
	if !ok {
		t.Fatalf("use of x at the join resolves to %T, want *ValPhi", f.ValueAt(use))
	}
	if len(phi.Args) != 2 {
		t.Fatalf("join phi has %d args, want 2", len(phi.Args))
	}
	for i, arg := range phi.Args {
		if _, ok := arg.(*ValDef); !ok {
			t.Errorf("phi arg %d is %T, want *ValDef (one per branch definition)", i, arg)
		}
	}
}

func TestSSAPrunedPhiForDeadVariable(t *testing.T) {
	// y is redefined in the branch but never read after the join, so
	// pruned placement must not manufacture a phi for it; z has a
	// single definition and needs none either.
	src := `package p
func g(c bool) int {
	y := 1
	z := 3
	if c {
		y = 2
	}
	_ = y
	return z
}`
	// With the use of y present a phi is required...
	_, _, _, f := buildSSAFor(t, src, "g")
	if got := countPhis(f); got != 1 {
		t.Fatalf("with y live at the join: %d phis, want 1", got)
	}

	srcDead := `package p
func g(c bool) int {
	y := 1
	z := 3
	_ = y
	if c {
		y = 2
	}
	return z
}`
	_, _, _, fDead := buildSSAFor(t, srcDead, "g")
	if got := countPhis(fDead); got != 0 {
		t.Fatalf("with y dead at the join: %d phis, want 0 (placement must be pruned by liveness)", got)
	}
}

func TestSSALoopHeaderPhi(t *testing.T) {
	src := `package p
func h(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`
	fset, info, fd, f := buildSSAFor(t, src, "h")
	condUse := useOnLine(t, fset, info, fd, "i", lineOf(t, src, "i < n"))
	phi, ok := f.ValueAt(condUse).(*ValPhi)
	if !ok {
		t.Fatalf("loop-condition use of i resolves to %T, want *ValPhi (header phi)", f.ValueAt(condUse))
	}
	if len(phi.Args) != 2 {
		t.Fatalf("header phi for i has %d args, want 2 (init and increment)", len(phi.Args))
	}
	retUse := useOnLine(t, fset, info, fd, "s", lineOf(t, src, "return s"))
	if _, ok := f.ValueAt(retUse).(*ValPhi); !ok {
		t.Errorf("exit use of s resolves to %T, want *ValPhi", f.ValueAt(retUse))
	}
}

func TestSSAParamAndUnknown(t *testing.T) {
	src := `package p
func k(a, b int) int {
	p := &b
	_ = p
	return a + b
}`
	fset, info, fd, f := buildSSAFor(t, src, "k")
	line := lineOf(t, src, "return a + b")
	aUse := useOnLine(t, fset, info, fd, "a", line)
	if _, ok := f.ValueAt(aUse).(*ValParam); !ok {
		t.Errorf("unredefined parameter a resolves to %T, want *ValParam", f.ValueAt(aUse))
	}
	bUse := useOnLine(t, fset, info, fd, "b", line)
	if _, ok := f.ValueAt(bUse).(*ValUnknown); !ok {
		t.Errorf("address-taken b resolves to %T, want *ValUnknown", f.ValueAt(bUse))
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file renders findings for machines: a flat JSON findings array
// (-json), SARIF 2.1.0 (-sarif) for code-scanning UIs, and a baseline
// file (-baseline / -writebaseline) that lets a tree adopt a new
// analyzer before paying down its existing findings. Baseline entries
// match on (file, analyzer, message) — deliberately not on line
// numbers, so unrelated edits above a finding do not churn the file.

// A Finding is one diagnostic with its position resolved.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// NewFinding resolves a diagnostic against its file set, with the file
// path made repository-relative when possible (SARIF viewers and
// baselines want stable paths).
func NewFinding(fset *token.FileSet, d Diagnostic) Finding {
	pos := fset.Position(d.Pos)
	return Finding{
		File:     relToWd(pos.Filename),
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// relToWd makes a path relative to the working directory when it lies
// inside it, in slash form, so findings are stable across machines.
func relToWd(file string) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, rerr := filepath.Rel(wd, file); rerr == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return filepath.ToSlash(file)
}

// WriteJSON emits the findings as a JSON array.
func WriteJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(findings)
}

// sarif* types model the minimal SARIF 2.1.0 subset code-scanning
// consumers require: one run, one rule per analyzer, one result per
// finding with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF emits the findings as a SARIF 2.1.0 log with one rule per
// analyzer in the run set (so rules render even when clean).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, findings []Finding) error {
	driver := sarifDriver{Name: "scatterlint"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	// The driver's own malformed-directive findings use this rule id.
	driver.Rules = append(driver.Rules, sarifRule{
		ID:               "scatterlint",
		ShortDescription: sarifMessage{Text: "driver diagnostics (malformed suppression directives)"},
	})
	results := []sarifResult{}
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// A Baseline is a set of accepted findings. Filtering consumes entries
// as a multiset: two identical accepted findings excuse exactly two
// occurrences, so fixing one surfaces nothing but adding a third fails.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// A BaselineEntry identifies one accepted finding, line-agnostically.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// LoadBaseline reads a baseline file written by WriteBaselineFile.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: reading baseline: %v", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %v", path, err)
	}
	return &b, nil
}

// Filter returns the findings not excused by the baseline.
func (b *Baseline) Filter(findings []Finding) []Finding {
	budget := make(map[BaselineEntry]int)
	for _, e := range b.Findings {
		budget[e]++
	}
	var out []Finding
	for _, f := range findings {
		key := BaselineEntry{File: f.File, Analyzer: f.Analyzer, Message: f.Message}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// WriteBaselineFile records the findings as the new accepted baseline.
func WriteBaselineFile(path string, findings []Finding) error {
	b := Baseline{Findings: []BaselineEntry{}}
	for _, f := range findings {
		b.Findings = append(b.Findings, BaselineEntry{File: f.File, Analyzer: f.Analyzer, Message: f.Message})
	}
	data, err := json.MarshalIndent(&b, "", "\t")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Fset positions the package's syntax.
	Fset *token.FileSet
	// Files is the parsed syntax, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds type-checker results for Files.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *struct{ Path string }
	Standard     bool
	DepOnly      bool
}

// A Loader type-checks packages of the enclosing module using export
// data produced by the go toolchain (`go list -export`), so no
// third-party loader is needed and no source of any dependency is
// re-checked.
type Loader struct {
	// Dir is the directory the `go list` queries run in; it must be
	// inside the module. Empty means the current directory.
	Dir string

	// IncludeTests makes Load type-check _test.go files too: in-package
	// test files join their package's unit, external test packages
	// (package foo_test) load as separate units suffixed " [xtest]".
	// This matches `go vet` coverage, which standalone runs and the
	// suppression audit need — most ignore directives live in tests.
	IncludeTests bool

	// exports maps package path -> export data file, for every
	// dependency seen so far.
	exports map[string]string
	fset    *token.FileSet
	imp     types.Importer
	// checked memoizes LoadDir results so fixture packages importing
	// each other do not duplicate work.
	checked map[string]*types.Package
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	fset := token.NewFileSet()
	l := &Loader{Dir: dir, exports: make(map[string]string), fset: fset, checked: make(map[string]*types.Package)}
	l.imp = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	return l
}

// goList runs `go list -export -deps -json` over the patterns and
// returns the decoded package records, recording export data for every
// package seen (dependencies included).
func (l *Loader) goList(patterns ...string) ([]*listedPackage, error) {
	return l.listPackages(true, true, patterns...)
}

// listPackages is goList with export data and dependency traversal
// optional: the cache keys units from a listing without -export (which
// never compiles anything, so a fully-warm run pays no build cost) and
// usually without -deps (standard-library records contribute nothing
// to content keys).
func (l *Loader) listPackages(export, deps bool, patterns ...string) ([]*listedPackage, error) {
	fields := "ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles," +
		"Imports,TestImports,XTestImports,Module,Standard,DepOnly"
	args := []string{"list"}
	if export {
		args = append(args, "-export")
		fields = "Export," + fields
	}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, "-json="+fields)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the module packages matching the patterns
// (defaulting to ./...) and returns them sorted by import path.
// Standard-library and other dependency-only packages are consumed as
// export data, never re-analyzed.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.Standard || lp.DepOnly || lp.Module == nil || len(lp.GoFiles) == 0 {
			continue
		}
		files := lp.GoFiles
		if l.IncludeTests {
			files = append(append([]string(nil), files...), lp.TestGoFiles...)
		}
		pkg, err := l.checkDir(lp.Dir, lp.ImportPath, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
		if l.IncludeTests && len(lp.XTestGoFiles) > 0 {
			xpkg, err := l.checkDir(lp.Dir, lp.ImportPath+" [xtest]", lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			out = append(out, xpkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the .go files of a single directory that is not
// necessarily a `go list`-visible package (a testdata fixture, say)
// under the given import path. Imports resolve against the module's
// build graph: the loader asks `go list -export` for whatever the
// fixture imports.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return l.checkDir(dir, importPath, files)
}

// checkDir parses and type-checks the named files of one directory.
func (l *Loader) checkDir(dir, importPath string, fileNames []string) (*Package, error) {
	var files []*ast.File
	var imports []string
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			imports = append(imports, strings.Trim(spec.Path.Value, `"`))
		}
	}
	// Fetch export data for any imports not yet covered (fixture
	// directories import packages outside the original pattern set).
	var missing []string
	for _, p := range imports {
		if _, ok := l.exports[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		if _, err := l.goList(missing...); err != nil {
			return nil, err
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	l.checked[importPath] = pkg
	return &Package{Path: importPath, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetOrder is the nondeterminism lint for the solver/chaos/mpi
// packages. The paper's reproducibility claims (Algorithm 2
// bit-identity, deterministic chaos replays) require that nothing
// order-dependent flows out of an unordered source, so three shapes
// are flagged:
//
//  1. a `for range` over a map whose body appends to an outer slice,
//     sends on a channel, or prints — unless the accumulator is sorted
//     after the loop (the Holders idiom) — because map iteration order
//     varies run to run;
//  2. wall-clock or global-rand calls reachable from a rank function
//     (one taking an mpi.Comm parameter) in the non-simulated
//     packages, where simclock does not already police them — found
//     interprocedurally through the package summary table;
//  3. goroutine results collected in channel-arrival order
//     (append(s, <-ch) or ranging over the result channel), because
//     arrival order is scheduler-dependent — results must be indexed
//     by rank (the rowPool / World.Run shape) and merged in rank
//     order.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc: "solver/chaos/mpi code must not let unordered sources become ordered outputs: " +
		"no map-order accumulation (sort after the loop or index by key), no wall clock " +
		"on rank-function paths, no channel-arrival-order result collection",
	Run: runDetOrder,
}

// detOrderPkgPrefixes scope the map-order and goroutine-collection
// checks to the packages whose outputs feed plans and reports.
var detOrderPkgPrefixes = []string{
	"repro/internal/core",
	"repro/internal/mpi",
	"repro/internal/chaos",
	"repro/internal/platform",
	"repro/internal/simgrid",
	"repro/internal/fault",
	"repro/internal/monitor",
	"repro/internal/serve",
	"repro/internal/store",
	"repro/cmd/scatterd",
}

func inDetOrderScope(path string) bool {
	for _, prefix := range detOrderPkgPrefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

func runDetOrder(pass *Pass) error {
	sum := summarize(pass)
	orderScope := inDetOrderScope(pass.Pkg.Path())
	// simclock already polices wall-clock use inside the simulated
	// packages; detorder extends the rule interprocedurally to rank
	// functions living outside them (experiments, demos, cmds).
	wallScope := !isSimulatedPkg(pass.Pkg.Path())
	if !orderScope && !wallScope {
		return nil
	}
	for _, file := range pass.Files {
		if fname := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var ftype *ast.FuncType
			var body *ast.BlockStmt
			switch v := n.(type) {
			case *ast.FuncDecl:
				ftype, body = v.Type, v.Body
			case *ast.FuncLit:
				ftype, body = v.Type, v.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if orderScope {
				checkMapOrder(pass, body)
				checkArrivalOrder(pass, body)
			}
			if wallScope && hasCommParam(pass.TypesInfo, ftype) {
				checkRankWallClock(pass, sum, body)
			}
			return true
		})
	}
	return nil
}

// checkMapOrder flags order-dependent effects inside `for range m`
// over a map: appends to outer accumulators (unless sorted after the
// loop), channel sends, and printed output.
func checkMapOrder(pass *Pass, body *ast.BlockStmt) {
	g := BuildCFG(body)
	walkOwnBody(body, func(n ast.Node) {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return
		}
		t := pass.TypesInfo.TypeOf(rng.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		walkOwnBody(rng.Body, func(inner ast.Node) {
			switch v := inner.(type) {
			case *ast.AssignStmt:
				acc := appendAccumulator(pass.TypesInfo, v)
				if acc == nil || !declaredOutside(acc, rng) {
					return
				}
				if sortedAfter(pass, g, acc, rng) {
					return
				}
				pass.Reportf(v.Pos(),
					"%s accumulates over an unordered map range: iteration order varies run to run, so downstream counts/plans/reports lose determinism; sort after the loop or write to key-indexed slots", acc.Name())
			case *ast.SendStmt:
				pass.Reportf(v.Pos(),
					"channel send inside an unordered map range: receivers observe map-iteration order, which varies run to run; iterate sorted keys instead")
			case *ast.CallExpr:
				if fn := calleeFunc(pass.TypesInfo, v); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Print") {
					pass.Reportf(v.Pos(),
						"output emitted inside an unordered map range: lines appear in map-iteration order, which varies run to run; iterate sorted keys instead")
				}
			}
		})
	})
}

// appendAccumulator returns the variable of an `acc = append(acc, …)`
// statement, or nil.
func appendAccumulator(info *types.Info, assign *ast.AssignStmt) *types.Var {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	lhs := identOf(assign.Lhs[0])
	if lhs == nil {
		return nil
	}
	obj, _ := info.ObjectOf(lhs).(*types.Var)
	return obj
}

// declaredOutside reports whether obj's declaration precedes the range
// statement (an outer accumulator rather than a loop-local).
func declaredOutside(obj *types.Var, rng *ast.RangeStmt) bool {
	return obj.Pos() < rng.Pos() || obj.Pos() >= rng.End()
}

// sortedAfter reports whether acc is passed to a sort function at a
// point after the loop — the collect-then-sort idiom (Ledger.Holders).
func sortedAfter(pass *Pass, g *CFG, acc *types.Var, rng *ast.RangeStmt) bool {
	loopRef, okLoop := g.RefAt(rng.Pos())
	sorted := false
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok || !isSortCall(pass.TypesInfo, call) {
					return true
				}
				for _, arg := range call.Args {
					if id := rootIdent(arg); id != nil && pass.TypesInfo.ObjectOf(id) == acc {
						found = true
					}
				}
				return true
			})
			if !found {
				continue
			}
			if n.Pos() >= rng.End() && (!okLoop || g.CanPrecede(loopRef, ref{blk, i})) {
				sorted = true
			}
		}
	}
	return sorted
}

// isSortCall recognizes the sort/slices ordering entry points.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		switch fn.Name() {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return false
}

// checkArrivalOrder flags collection of goroutine results in
// channel-arrival order.
func checkArrivalOrder(pass *Pass, body *ast.BlockStmt) {
	producers := countProducers(pass, body)
	walkOwnBody(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.RangeStmt:
			ch, _ := pass.TypesInfo.ObjectOf(rootIdent(v.X)).(*types.Var)
			if ch == nil || producers[ch] < 2 {
				return
			}
			walkOwnBody(v.Body, func(inner ast.Node) {
				if assign, ok := inner.(*ast.AssignStmt); ok {
					if acc := appendAccumulator(pass.TypesInfo, assign); acc != nil {
						pass.Reportf(assign.Pos(),
							"goroutine results are appended to %s in channel-arrival order: arrival order is scheduler-dependent; index results by rank and merge in rank order", acc.Name())
					}
				}
			})
		case *ast.CallExpr:
			id, ok := ast.Unparen(v.Fun).(*ast.Ident)
			if !ok || id.Name != "append" {
				return
			}
			for i, arg := range v.Args {
				if i == 0 {
					continue
				}
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.ARROW {
					continue
				}
				ch, _ := pass.TypesInfo.ObjectOf(rootIdent(un.X)).(*types.Var)
				if ch != nil && producers[ch] >= 2 {
					pass.Reportf(v.Pos(),
						"goroutine results are appended in channel-arrival order: arrival order is scheduler-dependent; index results by rank and merge in rank order")
				}
			}
		}
	})
}

// countProducers counts, per channel variable, how many concurrent
// senders this function spawns: a goroutine started inside a loop
// counts as many (weight 2), so two means "arrival order unknown".
func countProducers(pass *Pass, body *ast.BlockStmt) map[*types.Var]int {
	producers := make(map[*types.Var]int)
	var visit func(n ast.Node, depth int)
	visit = func(n ast.Node, depth int) {
		switch v := n.(type) {
		case *ast.ForStmt:
			if v.Init != nil {
				visit(v.Init, depth)
			}
			visit(v.Body, depth+1)
			return
		case *ast.RangeStmt:
			visit(v.Body, depth+1)
			return
		case *ast.GoStmt:
			fl, ok := v.Call.Fun.(*ast.FuncLit)
			if !ok {
				return
			}
			weight := 1
			if depth > 0 {
				weight = 2
			}
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if send, ok := m.(*ast.SendStmt); ok {
					if ch, ok := pass.TypesInfo.ObjectOf(rootIdent(send.Chan)).(*types.Var); ok {
						producers[ch] += weight
					}
				}
				return true
			})
			return
		case *ast.FuncLit:
			return // analyzed as its own function
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return true
			}
			switch m.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.GoStmt, *ast.FuncLit:
				visit(m, depth)
				return false
			}
			return true
		})
	}
	visit(body, 0)
	return producers
}

// hasCommParam reports whether the function signature takes an
// mpi.Comm (or *mpi.Comm) parameter — the marker of a rank function.
func hasCommParam(info *types.Info, ftype *ast.FuncType) bool {
	if ftype == nil || ftype.Params == nil {
		return false
	}
	for _, f := range ftype.Params.List {
		t := info.TypeOf(f.Type)
		if t == nil {
			continue
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			if named.Obj().Name() == "Comm" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == mpiPkgPath {
				return true
			}
		}
	}
	return false
}

// checkRankWallClock flags wall-clock reads reachable from a rank
// function, directly or through same-package helpers (via the summary
// table).
func checkRankWallClock(pass *Pass, sum *pkgSummary, body *ast.BlockStmt) {
	walkOwnBody(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if w := directWallClock(pass.TypesInfo, call); w != "" {
			pass.Reportf(call.Pos(),
				"%s on a rank-function path: a function taking an mpi.Comm runs under the simulated clock, so real time makes makespans irreproducible; use Comm.Clock()", w)
			return
		}
		if cf := sum.calleeFacts(call); cf != nil && cf.wallClock != "" {
			pass.Reportf(call.Pos(),
				"call to %s reaches the wall clock (%s) on a rank-function path: a function taking an mpi.Comm runs under the simulated clock; use Comm.Clock()", cf.name, cf.wallClock)
		}
	})
}

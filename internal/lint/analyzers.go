package lint

// All returns the full scatterlint analyzer suite, in the order
// findings are most useful to read: protocol hazards first, model
// preconditions after, the dataflow analyzers (which assume the local
// invariants above already hold) last.
func All() []*Analyzer {
	return []*Analyzer{
		MPIErrCheck,
		CollectiveOrder,
		CollectiveDeadlock,
		GoroLeak,
		SimClock,
		CostInvariant,
		BandCheck,
		MutexChan,
		PoolAlias,
		DetOrder,
		LedgerOrder,
		LockGuard,
		LockOrder,
		UnlockPath,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// CollectiveDeadlock proves the absence of a matching receiver for
// blocking channel sends inside the concurrency-simulation packages —
// the channel-level generalization of the failfast deadlock that
// collectiveorder only pattern-matches. The model is a happens-before
// skeleton over one function: thread 0 is the function body, and every
// `go func(){...}()` statement spawns one auxiliary thread. For a
// local unbuffered channel that never escapes the function, the
// analysis demands:
//
//   - a thread-0 send must have some spawned goroutine that receives
//     from the channel and whose spawn statement can precede the send
//     (otherwise no interleaving has a receiver running: the send
//     blocks the collective forever);
//   - a goroutine send must be received by thread 0 on EVERY path from
//     the spawn to function exit — a path that returns early, or that
//     parks at a wg.Wait() whose Done lives after the send in the same
//     goroutine, leaks the goroutine blocked forever. This is exactly
//     the failfast shape: a rank deserts the protocol and the
//     survivor's rendezvous never completes.
//
// Buffered channels, escaping channels, channels written inside
// selects (an alternative arm may fire), and channels also received by
// a second goroutine are silent: the analysis only reports what it can
// prove on the thread skeleton.
var CollectiveDeadlock = &Analyzer{
	Name: "collectivedeadlock",
	Doc: "blocking sends on local unbuffered channels must have a reachable " +
		"receiver on every interleaving of the spawner and its goroutines; " +
		"an unmatched send is the failfast collective deadlock, proved on the " +
		"happens-before skeleton rather than pattern-matched",
	Run: runCollectiveDeadlock,
}

// concurrencySimPkgPrefixes scopes the deadlock and leak proofs to the
// packages that implement and torture the collective protocols.
var concurrencySimPkgPrefixes = []string{
	mpiPkgPath,
	"repro/internal/chaos",
	"repro/internal/simgrid",
	"repro/internal/serve",
	"repro/internal/store",
	"repro/cmd/scatterd",
}

func pkgInScope(pkg *types.Package, prefixes []string) bool {
	if pkg == nil {
		return false
	}
	for _, p := range prefixes {
		if pkg.Path() == p || strings.HasPrefix(pkg.Path(), p+"/") {
			return true
		}
	}
	return false
}

func runCollectiveDeadlock(pass *Pass) error {
	if !pkgInScope(pass.Pkg, concurrencySimPkgPrefixes) {
		return nil
	}
	for _, unit := range buildFuncUnits(pass) {
		if unit.Decl == nil {
			continue // literals are analyzed as threads of their spawner
		}
		checkFuncDeadlocks(pass, unit)
	}
	return nil
}

// A localChan is a channel the skeleton can reason about: defined by
// exactly one `make(chan ...)` in the function body proper, never
// escaping beyond direct send/recv/range/close/len/cap uses and the
// bodies of directly spawned goroutine literals.
type localChan struct {
	obj        *types.Var
	unbuffered bool
}

// threadOps are the channel operations of one thread, at statement
// granularity.
type threadOps struct {
	spawn  ast.Node // the GoStmt (nil for thread 0)
	sends  []*ast.SendStmt
	recvs  map[*types.Var]bool        // channels received (recv, range, select case)
	dones  map[*types.Var][]token.Pos // WaitGroup Done call sites
	inSel  map[*ast.SendStmt]bool
	spawnR ref
}

// donesBehind returns the WaitGroups whose every Done in this thread
// comes after pos — the ones a blocking statement at pos starves.
func (t *threadOps) donesBehind(pos token.Pos) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for wg, sites := range t.dones {
		behind := true
		for _, p := range sites {
			if p < pos {
				behind = false
				break
			}
		}
		if behind {
			out[wg] = true
		}
	}
	return out
}

func checkFuncDeadlocks(pass *Pass, unit *funcUnit) {
	g := unit.SSA.G
	info := pass.TypesInfo

	chans := collectLocalChans(pass, unit)
	if len(chans) == 0 {
		return
	}

	// Thread skeleton: thread 0 is the CFG; each GoStmt with a literal
	// is one goroutine. The CFG node holding each descendant is
	// recorded for ordering queries.
	nodeRef := make(map[ast.Node]ref)
	var goStmts []*ast.GoStmt
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			r := ref{blk, i}
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if m != nil {
					nodeRef[m] = r
					if gs, ok := m.(*ast.GoStmt); ok {
						goStmts = append(goStmts, gs)
					}
				}
				return true
			})
		}
	}
	sort.Slice(goStmts, func(i, j int) bool { return goStmts[i].Pos() < goStmts[j].Pos() })

	main := collectThreadOps(info, unit.Body, nil, chans)
	var workers []*threadOps
	for _, gs := range goStmts {
		lit, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		ops := collectThreadOps(info, lit.Body, gs, chans)
		ops.spawnR = nodeRef[gs]
		workers = append(workers, ops)
	}

	// Rule 1: thread-0 sends need a concurrently running receiver.
	for _, send := range main.sends {
		if main.inSel[send] {
			continue
		}
		ch := chanOf(info, send.Chan, chans)
		if ch == nil {
			continue
		}
		sendR, ok := nodeRef[send]
		if !ok {
			continue
		}
		matched := false
		for _, w := range workers {
			if w.recvs[ch.obj] && g.CanPrecede(w.spawnR, sendR) {
				matched = true
				break
			}
		}
		if !matched {
			pass.Reportf(send.Pos(),
				"send on unbuffered channel %q blocks forever: no goroutine receiving from it is spawned before the send on any path (collective deadlock)",
				chanName(ch.obj))
		}
	}

	// Rule 2: goroutine sends need thread-0 receive coverage on every
	// spawner path from the spawn to exit.
	for _, w := range workers {
		for _, send := range w.sends {
			if w.inSel[send] {
				continue
			}
			ch := chanOf(info, send.Chan, chans)
			if ch == nil {
				continue
			}
			// A second goroutine receiving from the same channel makes
			// interleaving-exhaustive proof impossible: stay silent.
			shared := false
			for _, other := range workers {
				if other != w && other.recvs[ch.obj] {
					shared = true
					break
				}
			}
			if shared {
				continue
			}
			if !main.recvs[ch.obj] {
				pass.Reportf(send.Pos(),
					"goroutine send on unbuffered channel %q has no receiver in the spawning function: the goroutine blocks forever (collective deadlock)",
					chanName(ch.obj))
				continue
			}
			if spawnerPathAvoidsRecv(g, w.spawnR, info, ch.obj, w.donesBehind(send.Pos())) {
				pass.Reportf(send.Pos(),
					"goroutine send on unbuffered channel %q is not received on every spawner path: an early return or wg.Wait barrier leaves the goroutine blocked forever (failfast deadlock shape)",
					chanName(ch.obj))
			}
		}
	}
}

func chanName(obj *types.Var) string { return obj.Name() }

// chanOf resolves a send target to a tracked local channel.
func chanOf(info *types.Info, expr ast.Expr, chans map[*types.Var]*localChan) *localChan {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	obj, ok := info.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	return chans[obj]
}

// collectLocalChans finds the function's provable channels: exactly
// one defining `make(chan ...)` in the body proper, unbuffered, and no
// use outside the allowed contexts.
func collectLocalChans(pass *Pass, unit *funcUnit) map[*types.Var]*localChan {
	info := pass.TypesInfo
	body := unit.Body

	// Direct goroutine literals: uses inside them keep the channel
	// local; uses inside any other literal escape the skeleton.
	goLits := make(map[*ast.FuncLit]bool)
	walkOwnBody(body, func(n ast.Node) {
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				goLits[lit] = true
			}
		}
	})

	type defRecord struct {
		makeCall *ast.CallExpr
		count    int
		inLit    bool
	}
	defs := make(map[*types.Var]*defRecord)
	record := func(id *ast.Ident, rhs ast.Expr, lit *ast.FuncLit) {
		if id == nil || id.Name == "_" {
			return
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok || obj == nil {
			return
		}
		if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
			return
		}
		d := defs[obj]
		if d == nil {
			d = &defRecord{}
			defs[obj] = d
		}
		d.count++
		if lit != nil {
			d.inLit = true
		}
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && d.makeCall == nil {
			if bid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[bid].(*types.Builtin); ok && b.Name() == "make" {
					d.makeCall = call
				}
			}
		}
	}
	walkWithEnclosingLit(body, func(n ast.Node, lit *ast.FuncLit) {
		switch v := n.(type) {
		case *ast.AssignStmt:
			forEachDef(v.Lhs, v.Rhs, func(id *ast.Ident, rhs ast.Expr, _ int) { record(id, rhs, lit) })
		case *ast.ValueSpec:
			for i, name := range v.Names {
				var rhs ast.Expr
				if i < len(v.Values) {
					rhs = v.Values[i]
				}
				record(name, rhs, lit)
			}
		}
	})

	out := make(map[*types.Var]*localChan)
	for obj, d := range defs {
		if d.count != 1 || d.inLit || d.makeCall == nil {
			continue
		}
		unbuffered := len(d.makeCall.Args) == 1
		if len(d.makeCall.Args) == 2 {
			iv := unit.Eng.IntervalOfExpr(d.makeCall.Args[1])
			unbuffered = !iv.Empty && !iv.LoInf && !iv.HiInf && iv.Lo == 0 && iv.Hi == 0
		}
		if !unbuffered {
			continue // buffered or unknown capacity: sends may complete silently
		}
		out[obj] = &localChan{obj: obj, unbuffered: true}
	}
	if len(out) == 0 {
		return out
	}

	// Escape scan: every identifier use of a tracked channel must sit
	// in an allowed context, and only in the body proper or a direct
	// goroutine literal.
	allowed := make(map[*ast.Ident]bool)
	note := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			allowed[id] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SendStmt:
			note(v.Chan)
		case *ast.UnaryExpr:
			if v.Op == arrowOp {
				note(v.X)
			}
		case *ast.RangeStmt:
			note(v.X)
		case *ast.AssignStmt:
			forEachDef(v.Lhs, v.Rhs, func(id *ast.Ident, _ ast.Expr, _ int) { allowed[id] = true })
		case *ast.ValueSpec:
			for _, name := range v.Names {
				allowed[name] = true
			}
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[bid].(*types.Builtin); ok {
					switch b.Name() {
					case "close", "len", "cap":
						for _, a := range v.Args {
							note(a)
						}
					}
				}
			}
		}
		return true
	})
	walkWithEnclosingLit(body, func(n ast.Node, lit *ast.FuncLit) {
		id, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return
		}
		if _, tracked := out[obj]; !tracked {
			return
		}
		if !allowed[id] || (lit != nil && !goLits[lit]) {
			delete(out, obj)
		}
	})
	return out
}

// arrowOp is the channel-receive operator token.
const arrowOp = token.ARROW

// walkWithEnclosingLit visits every node of body, reporting the
// innermost function literal enclosing each (nil for the body proper).
func walkWithEnclosingLit(body *ast.BlockStmt, visit func(n ast.Node, lit *ast.FuncLit)) {
	var walk func(n ast.Node, lit *ast.FuncLit)
	walk = func(n ast.Node, lit *ast.FuncLit) {
		ast.Inspect(n, func(m ast.Node) bool {
			if fl, ok := m.(*ast.FuncLit); ok && m != n {
				walk(fl.Body, fl)
				return false
			}
			if m != nil && m != n {
				visit(m, lit)
			}
			return true
		})
	}
	walk(body, nil)
}

// collectThreadOps gathers one thread's channel sends, received
// channels and WaitGroup Dones, at the thread's own nesting level
// (nested literals excluded).
func collectThreadOps(info *types.Info, body *ast.BlockStmt, spawn ast.Node, chans map[*types.Var]*localChan) *threadOps {
	ops := &threadOps{
		spawn: spawn,
		recvs: make(map[*types.Var]bool),
		dones: make(map[*types.Var][]token.Pos),
		inSel: make(map[*ast.SendStmt]bool),
	}
	chanObj := func(e ast.Expr) *types.Var {
		if ch := chanOf(info, e, chans); ch != nil {
			return ch.obj
		}
		return nil
	}
	var selDepth int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				if m != n {
					return false
				}
			case *ast.SelectStmt:
				if m == n {
					return true
				}
				selDepth++
				walk(v.Body)
				selDepth--
				return false
			case *ast.SendStmt:
				ops.sends = append(ops.sends, v)
				if selDepth > 0 {
					ops.inSel[v] = true
				}
			case *ast.UnaryExpr:
				if v.Op == arrowOp {
					if obj := chanObj(v.X); obj != nil {
						ops.recvs[obj] = true
					}
				}
			case *ast.RangeStmt:
				if obj := chanObj(v.X); obj != nil {
					ops.recvs[obj] = true
				}
			case *ast.CallExpr:
				if wg := waitGroupRecv(info, v, "Done"); wg != nil {
					ops.dones[wg] = append(ops.dones[wg], v.Pos())
				}
			}
			return true
		})
	}
	walk(body)
	return ops
}

// waitGroupRecv returns the sync.WaitGroup variable of a wg.<method>()
// call, or nil.
func waitGroupRecv(info *types.Info, call *ast.CallExpr, method string) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	obj, ok := info.ObjectOf(id).(*types.Var)
	if !ok {
		return nil
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
		return obj
	}
	return nil
}

// spawnerPathAvoidsRecv reports whether some thread-0 path from the
// spawn point reaches function exit without receiving from ch. A node
// that waits on a WaitGroup the goroutine itself must Done counts as
// avoiding: the Wait can never complete while the send blocks, so any
// receive beyond it is unreachable.
func spawnerPathAvoidsRecv(g *CFG, spawn ref, info *types.Info, ch *types.Var, goroutineDones map[*types.Var]bool) bool {
	const (
		evNone = iota
		evRecv
		evBarrier
	)
	classify := func(n ast.Node) int {
		best := evNone
		var bestPos int
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			ev := evNone
			switch v := m.(type) {
			case *ast.UnaryExpr:
				if v.Op == arrowOp {
					if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
						if obj, _ := info.ObjectOf(id).(*types.Var); obj == ch {
							ev = evRecv
						}
					}
				}
			case *ast.RangeStmt:
				if id, ok := ast.Unparen(v.X).(*ast.Ident); ok {
					if obj, _ := info.ObjectOf(id).(*types.Var); obj == ch {
						ev = evRecv
					}
				}
			case *ast.CallExpr:
				if wg := waitGroupRecv(info, v, "Wait"); wg != nil && goroutineDones[wg] {
					ev = evBarrier
				}
			}
			if ev != evNone && (best == evNone || int(m.Pos()) < bestPos) {
				best, bestPos = ev, int(m.Pos())
			}
			return true
		})
		return best
	}

	visited := make(map[*Block]bool)
	var fromStart func(b *Block) bool
	scan := func(b *Block, from int) (bool, bool) {
		for i := from; i < len(b.Nodes); i++ {
			switch classify(b.Nodes[i]) {
			case evRecv:
				return false, true
			case evBarrier:
				return true, true
			}
		}
		return false, false
	}
	fromStart = func(b *Block) bool {
		if b == g.Exit {
			return true
		}
		if visited[b] {
			return false
		}
		visited[b] = true
		if done, decided := scan(b, 0); decided {
			return done
		}
		for _, s := range b.Succs {
			if fromStart(s) {
				return true
			}
		}
		return false
	}

	if done, decided := scan(spawn.block, spawn.idx+1); decided {
		return done
	}
	for _, s := range spawn.block.Succs {
		if fromStart(s) {
			return true
		}
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file lifts the statement-grained CFG (cfg.go) into SSA form:
// every use of a function-local variable resolves to exactly one
// immutable value — a parameter, one defining assignment, or a phi
// merging the values that flow into a join block. Phis are pruned:
// they are placed on the iterated dominance frontier of a variable's
// definition blocks, but only where the variable is live-in, so dead
// merges never exist. The sparse fact layers (interval.go) attach
// constant/interval/nilness lattices to these values instead of
// re-solving a dense per-program-point fixpoint, which is what lets
// the v3 analyzers (bandcheck, collectivedeadlock) reason about value
// flow at a cost proportional to the number of values, not statements.
//
// Variables that escape single-assignment reasoning — address-taken
// locals and variables shared with closures — are demoted wholesale:
// every use maps to ValUnknown, which the fact layers treat as top.
// This only ever silences analyzers, never miscounts a proof.

// An SSAValue is one immutable value of a function-local variable.
type SSAValue interface {
	// Var is the source-level variable the value instantiates.
	Var() *types.Var
}

// ValParam is the value a parameter, receiver or named result holds on
// entry.
type ValParam struct{ Obj *types.Var }

// ValDef is the value produced by one defining node: an assignment,
// declaration, range binding, IncDec or compound assignment.
type ValDef struct {
	Obj *types.Var
	// Rhs is the defining expression (shared by all LHS of a tuple
	// assignment, with TupleIdx selecting the result). It is nil for
	// zero-value declarations, range bindings, IncDec and compound
	// assignments; the fact layers recover those through Node.
	Rhs      ast.Expr
	TupleIdx int
	// Node is the defining statement or control node.
	Node ast.Node
	At   ref
}

// ValPhi merges the values reaching a join block, one argument per
// reachable predecessor (parallel to Preds).
type ValPhi struct {
	Obj   *types.Var
	Block *Block
	Preds []*Block
	Args  []SSAValue
}

// ValUnknown is the demoted value of an address-taken or
// closure-shared variable, and of uses the renamer cannot resolve.
type ValUnknown struct{ Obj *types.Var }

func (v *ValParam) Var() *types.Var   { return v.Obj }
func (v *ValDef) Var() *types.Var     { return v.Obj }
func (v *ValPhi) Var() *types.Var     { return v.Obj }
func (v *ValUnknown) Var() *types.Var { return v.Obj }

// An SSAFunc is the SSA form of one function or function literal.
type SSAFunc struct {
	G    *CFG
	Info *types.Info
	// UseValue maps every resolved use identifier of a tracked local
	// to its SSA value. Unresolved identifiers (package globals,
	// captured outers) are absent.
	UseValue map[*ast.Ident]SSAValue
	// Phis lists the phi nodes at each block head.
	Phis map[*Block][]*ValPhi

	// idom[b] is the immediate dominator's block index (-1 for the
	// entry block and blocks unreachable from it).
	idom []int
	// unsafe marks variables demoted to ValUnknown.
	unsafe map[*types.Var]bool
}

// ssaDef is one definition discovered while scanning a node, in
// execution order.
type ssaDef struct {
	id  *ast.Ident
	obj *types.Var
	rhs ast.Expr
	idx int
}

// BuildSSA constructs SSA form for one function body over its CFG.
// recv and ftype seed the entry values; either may be nil.
func BuildSSA(g *CFG, info *types.Info, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) *SSAFunc {
	f := &SSAFunc{
		G:        g,
		Info:     info,
		UseValue: make(map[*ast.Ident]SSAValue),
		Phis:     make(map[*Block][]*ValPhi),
		unsafe:   make(map[*types.Var]bool),
	}
	f.computeIdoms()

	// Entry values and tracked-variable set.
	entryVars := entryVarList(info, recv, ftype)
	tracked := make(map[*types.Var]bool)
	for _, v := range entryVars {
		tracked[v] = true
	}
	defBlocks := make(map[*types.Var]map[*Block]bool)
	noteDef := func(obj *types.Var, blk *Block) {
		tracked[obj] = true
		if defBlocks[obj] == nil {
			defBlocks[obj] = make(map[*Block]bool)
		}
		defBlocks[obj][blk] = true
	}
	for _, v := range entryVars {
		noteDef(v, g.Entry)
	}
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			for _, d := range nodeDefs(info, n) {
				noteDef(d.obj, blk)
			}
		}
	}

	// Demote address-taken and closure-shared variables.
	f.findUnsafe(body, tracked)

	// Pruned phi placement: iterated dominance frontier of the def
	// blocks, filtered by liveness.
	frontier := f.dominanceFrontiers()
	liveIn := f.liveness(tracked)
	ordered := orderedVars(tracked)
	for _, obj := range ordered {
		if f.unsafe[obj] {
			continue
		}
		blocks := defBlocks[obj]
		if len(blocks) == 0 {
			continue
		}
		work := make([]*Block, 0, len(blocks))
		inWork := make(map[*Block]bool, len(blocks))
		for blk := range blocks {
			work = append(work, blk)
			inWork[blk] = true
		}
		sort.Slice(work, func(i, j int) bool { return work[i].Index < work[j].Index })
		hasPhi := make(map[*Block]bool)
		for len(work) > 0 {
			blk := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range frontier[blk.Index] {
				if hasPhi[fb] || !liveIn[fb.Index][obj] {
					continue
				}
				hasPhi[fb] = true
				preds := reachablePreds(g, fb)
				phi := &ValPhi{Obj: obj, Block: fb, Preds: preds, Args: make([]SSAValue, len(preds))}
				f.Phis[fb] = append(f.Phis[fb], phi)
				if !inWork[fb] {
					inWork[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Rename along the dominator tree.
	f.rename(entryVars)
	return f
}

// ValueAt returns the SSA value a use identifier resolves to, or nil
// for identifiers the SSA layer does not track.
func (f *SSAFunc) ValueAt(id *ast.Ident) SSAValue {
	return f.UseValue[id]
}

// entryVarList collects receiver, parameter and named-result
// variables in declaration order.
func entryVarList(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType) []*types.Var {
	var out []*types.Var
	for _, fl := range []*ast.FieldList{recv, paramsOf(ftype), resultsOf(ftype)} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.ObjectOf(name).(*types.Var); ok && name.Name != "_" {
					out = append(out, v)
				}
			}
		}
	}
	return out
}

// nodeDefs lists the definitions a single CFG node performs, in
// execution order. IncDec and compound assignments define through
// their Node (Rhs nil); the fact layers look at Node to recover the
// operation.
func nodeDefs(info *types.Info, n ast.Node) []ssaDef {
	var out []ssaDef
	add := func(id *ast.Ident, rhs ast.Expr, idx int) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj, ok := info.ObjectOf(id).(*types.Var); ok && obj != nil {
			out = append(out, ssaDef{id: id, obj: obj, rhs: rhs, idx: idx})
		}
	}
	switch v := n.(type) {
	case *ast.AssignStmt:
		if v.Tok == token.ASSIGN || v.Tok == token.DEFINE {
			forEachDef(v.Lhs, v.Rhs, func(id *ast.Ident, rhs ast.Expr, ti int) { add(id, rhs, ti) })
			break
		}
		// Compound assignment (+=, -=, ...): single LHS, use-then-def.
		if len(v.Lhs) == 1 {
			add(identOf(v.Lhs[0]), nil, 0)
		}
	case *ast.IncDecStmt:
		add(identOf(v.X), nil, 0)
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			switch {
			case len(vs.Values) == len(vs.Names):
				for i, name := range vs.Names {
					add(name, vs.Values[i], 0)
				}
			case len(vs.Values) == 1:
				for i, name := range vs.Names {
					add(name, vs.Values[0], i)
				}
			default:
				for _, name := range vs.Names {
					add(name, nil, 0)
				}
			}
		}
	case *ast.RangeStmt:
		add(identOf(v.Key), nil, 0)
		add(identOf(v.Value), nil, 0)
	case *ast.TypeSwitchStmt:
		// `switch x := y.(type)` defines per-clause implicits the SSA
		// layer does not model; the assign's identifier is tracked
		// conservatively as unknown via findUnsafe below.
	}
	return out
}

// pureDefIdents returns the identifiers a node defines WITHOUT reading
// their prior value — the ones the use-scan must skip. IncDec and
// compound-assign targets read before writing, so they are uses too
// and are not listed here.
func pureDefIdents(info *types.Info, n ast.Node) map[*ast.Ident]bool {
	out := make(map[*ast.Ident]bool)
	switch v := n.(type) {
	case *ast.AssignStmt:
		if v.Tok != token.ASSIGN && v.Tok != token.DEFINE {
			break
		}
		for _, lhs := range v.Lhs {
			if id := identOf(lhs); id != nil {
				out[id] = true
			}
		}
	case *ast.DeclStmt, *ast.RangeStmt:
		for _, d := range nodeDefs(info, n) {
			out[d.id] = true
		}
	}
	return out
}

// findUnsafe demotes variables whose value the SSA renamer cannot
// follow: address-taken locals, variables read or written inside
// nested function literals, and type-switch bindings.
func (f *SSAFunc) findUnsafe(body *ast.BlockStmt, tracked map[*types.Var]bool) {
	if body == nil {
		return
	}
	markExpr := func(e ast.Expr) {
		if id := rootIdent(e); id != nil {
			if obj, ok := f.Info.ObjectOf(id).(*types.Var); ok && tracked[obj] {
				f.unsafe[obj] = true
			}
		}
	}
	var inLit int
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				if m == n {
					return true
				}
				inLit++
				walk(v.Body)
				inLit--
				return false
			case *ast.UnaryExpr:
				if v.Op == token.AND {
					markExpr(v.X)
				}
			case *ast.TypeSwitchStmt:
				if assign, ok := v.Assign.(*ast.AssignStmt); ok && len(assign.Lhs) == 1 {
					markExpr(assign.Lhs[0])
				}
			case *ast.Ident:
				if inLit > 0 {
					if obj, ok := f.Info.ObjectOf(v).(*types.Var); ok && tracked[obj] {
						f.unsafe[obj] = true
					}
				}
			}
			return true
		})
	}
	walk(body)
}

// computeIdoms derives the immediate-dominator array from the CFG's
// dominance matrix: idom(b) is the strict dominator of b that every
// other strict dominator of b dominates.
func (f *SSAFunc) computeIdoms() {
	g := f.G
	n := len(g.Blocks)
	f.idom = make([]int, n)
	for i := range f.idom {
		f.idom[i] = -1
	}
	for _, blk := range g.Blocks {
		if blk == g.Entry || !g.ReachableFromEntry(blk) {
			continue
		}
		var doms []int
		for _, a := range g.Blocks {
			if a.Index != blk.Index && g.dom[blk.Index][a.Index] && g.ReachableFromEntry(a) {
				doms = append(doms, a.Index)
			}
		}
		for _, a := range doms {
			closest := true
			for _, c := range doms {
				if c != a && !g.dom[a][c] {
					closest = false
					break
				}
			}
			if closest {
				f.idom[blk.Index] = a
				break
			}
		}
	}
}

// dominanceFrontiers computes DF(b) for every reachable block with the
// Cooper–Harvey–Kennedy walk over reachable predecessors.
func (f *SSAFunc) dominanceFrontiers() [][]*Block {
	g := f.G
	out := make([][]*Block, len(g.Blocks))
	seen := make([]map[int]bool, len(g.Blocks))
	for _, blk := range g.Blocks {
		if !g.ReachableFromEntry(blk) {
			continue
		}
		preds := reachablePreds(g, blk)
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			runner := p.Index
			for runner != -1 && runner != f.idom[blk.Index] {
				if seen[runner] == nil {
					seen[runner] = make(map[int]bool)
				}
				if !seen[runner][blk.Index] {
					seen[runner][blk.Index] = true
					out[runner] = append(out[runner], blk)
				}
				runner = f.idom[runner]
			}
		}
	}
	return out
}

// liveness computes the live-in variable sets per block (tracked
// variables only), for phi pruning.
func (f *SSAFunc) liveness(tracked map[*types.Var]bool) []map[*types.Var]bool {
	g := f.G
	n := len(g.Blocks)
	use := make([]map[*types.Var]bool, n)
	def := make([]map[*types.Var]bool, n)
	for i := range use {
		use[i] = make(map[*types.Var]bool)
		def[i] = make(map[*types.Var]bool)
	}
	for _, blk := range g.Blocks {
		i := blk.Index
		for _, node := range blk.Nodes {
			for _, id := range nodeUses(f.Info, node) {
				obj, _ := f.Info.ObjectOf(id).(*types.Var)
				if obj == nil || !tracked[obj] || def[i][obj] {
					continue
				}
				use[i][obj] = true
			}
			for _, d := range nodeDefs(f.Info, node) {
				if tracked[d.obj] {
					def[i][d.obj] = true
				}
			}
		}
	}
	liveIn := make([]map[*types.Var]bool, n)
	for i := range liveIn {
		liveIn[i] = make(map[*types.Var]bool)
		for v := range use[i] {
			liveIn[i][v] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			i := blk.Index
			for _, s := range blk.Succs {
				for v := range liveIn[s.Index] {
					if def[i][v] || liveIn[i][v] {
						continue
					}
					liveIn[i][v] = true
					changed = true
				}
			}
		}
	}
	return liveIn
}

// nodeUses lists the identifiers a node reads, skipping nested
// function-literal bodies and pure-definition targets.
func nodeUses(info *types.Info, n ast.Node) []*ast.Ident {
	pure := pureDefIdents(info, n)
	var out []*ast.Ident
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if !pure[v] {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// reachablePreds returns blk's predecessors reachable from entry, in
// block-index order.
func reachablePreds(g *CFG, blk *Block) []*Block {
	var out []*Block
	for _, p := range blk.Preds {
		if g.ReachableFromEntry(p) {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// orderedVars sorts a variable set by source position for
// deterministic phi emission.
func orderedVars(set map[*types.Var]bool) []*types.Var {
	out := make([]*types.Var, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// rename walks the dominator tree assigning SSA values to every use
// and wiring phi arguments.
func (f *SSAFunc) rename(entryVars []*types.Var) {
	g := f.G
	// Dominator-tree children, in index order for determinism.
	children := make([][]int, len(g.Blocks))
	for _, blk := range g.Blocks {
		if p := f.idom[blk.Index]; p != -1 {
			children[p] = append(children[p], blk.Index)
		}
	}

	stacks := make(map[*types.Var][]SSAValue)
	top := func(obj *types.Var) SSAValue {
		if f.unsafe[obj] {
			return &ValUnknown{Obj: obj}
		}
		if s := stacks[obj]; len(s) > 0 {
			return s[len(s)-1]
		}
		return &ValUnknown{Obj: obj}
	}

	var visit func(idx int)
	visit = func(idx int) {
		blk := g.Blocks[idx]
		pushed := 0
		var pushedVars []*types.Var
		push := func(obj *types.Var, v SSAValue) {
			stacks[obj] = append(stacks[obj], v)
			pushedVars = append(pushedVars, obj)
			pushed++
		}

		for _, phi := range f.Phis[blk] {
			push(phi.Obj, phi)
		}
		if blk == g.Entry {
			for _, obj := range entryVars {
				push(obj, &ValParam{Obj: obj})
			}
		}
		for i, node := range blk.Nodes {
			for _, id := range nodeUses(f.Info, node) {
				obj, ok := f.Info.ObjectOf(id).(*types.Var)
				if !ok || obj == nil {
					continue
				}
				if _, known := stacks[obj]; !known && !f.unsafe[obj] {
					continue // not a tracked local
				}
				f.UseValue[id] = top(obj)
			}
			for _, d := range nodeDefs(f.Info, node) {
				push(d.obj, &ValDef{Obj: d.obj, Rhs: d.rhs, TupleIdx: d.idx, Node: node, At: ref{blk, i}})
			}
		}
		for _, s := range blk.Succs {
			for _, phi := range f.Phis[s] {
				for pi, p := range phi.Preds {
					if p == blk {
						phi.Args[pi] = top(phi.Obj)
					}
				}
			}
		}
		for _, c := range children[idx] {
			visit(c)
		}
		for i := len(pushedVars) - 1; i >= 0; i-- {
			obj := pushedVars[i]
			stacks[obj] = stacks[obj][:len(stacks[obj])-1]
		}
	}
	visit(g.Entry.Index)
}

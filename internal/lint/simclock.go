package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimClock enforces the virtual-time discipline of the simulated
// packages: inside internal/mpi, internal/simgrid, internal/fault and
// internal/chaos all time must flow through Comm.Clock() / the
// engine's clock, and
// all randomness through explicitly seeded sources (fault plans,
// noise configs). Wall-clock reads make makespans irreproducible;
// real sleeps stall the rank goroutines without advancing virtual
// time; the global math/rand source is shared, unseeded state that
// destroys run-to-run determinism. internal/core is also covered: its
// solvers and plan cache run inside the simulated rebalance path, so
// any wall-clock dependence there (e.g. a time-based cache policy)
// would leak real time into virtual-time runs. Test files are exempt:
// watchdog timeouts in tests legitimately use the wall clock.
var SimClock = &Analyzer{
	Name: "simclock",
	Doc: "simulated-time packages (internal/mpi, internal/simgrid, internal/fault, " +
		"internal/chaos, internal/core) must not call time.Now/time.Sleep or the global " +
		"math/rand source; use Comm.Clock() and seeded rand.New(rand.NewSource(seed))",
	Run: runSimClock,
}

// simulatedPkgPrefixes are the import-path prefixes the discipline
// applies to.
var simulatedPkgPrefixes = []string{
	"repro/internal/mpi",
	"repro/internal/simgrid",
	"repro/internal/fault",
	"repro/internal/chaos",
	"repro/internal/core",
	"repro/internal/platform",
	"repro/internal/monitor",
	"repro/internal/serve",
	"repro/internal/store",
	"repro/cmd/scatterd",
}

// wallClockFuncs are the time package functions that read or wait on
// the wall clock. Pure constructors and conversions (time.Duration,
// time.Unix) are fine: they do not observe real time.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// seededRandFuncs are the math/rand (and rand/v2) package-level
// functions that construct explicitly seeded sources; every other
// package-level function draws from the shared global source.
var seededRandFuncs = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSimClock(pass *Pass) error {
	if !isSimulatedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		if fname := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			switch fn.Pkg().Path() {
			case "time":
				if recv == nil && wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock inside a simulated-time package: all time must flow through the virtual clock (Comm.Clock)", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if recv == nil && !seededRandFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "%s.%s draws from the global unseeded source: simulated packages must use a seeded *rand.Rand so runs are reproducible", fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isSimulatedPkg reports whether path falls under a simulated-time
// package tree.
func isSimulatedPkg(path string) bool {
	for _, prefix := range simulatedPkgPrefixes {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

package lint

// The lock-set layer shared by lockguard, lockorder and unlockpath
// (PR 10). It turns the prose concurrency contracts of PRs 8–9
// ("the engine mutex guards only cache bookkeeping") into
// machine-checked facts:
//
//   - Struct fields declare their guard with a trailing directive,
//     //scatterlint:guardedby mu          — sibling mutex field
//     //scatterlint:guardedby (Type).mu   — a mutex on another type
//                                           in the same package
//     //scatterlint:guardedby atomic      — accessed via sync/atomic
//     //scatterlint:guardedby immutable   — immutable after publish:
//                                           reads are free, writes
//                                           must happen before the
//                                           value escapes its
//                                           constructor or under some
//                                           held lock (the publish
//                                           side of a happens-before
//                                           edge such as writing
//                                           result fields before
//                                           close(done)).
//
//   - A forward must-hold dataflow over each function's CFG tracks
//     which mutexes are held at every node (Lock/RLock acquire,
//     Unlock/RUnlock release, deferred unlocks keep the lock held to
//     the end of the function and satisfy release-on-every-path).
//
//   - Guard identity is the *lock class* — the declaring
//     "pkg.Type.field" of the mutex — not the instance expression, so
//     `e.mu.Lock(); pl.refs++` proves a field guarded by (Engine).mu
//     no matter which variable holds the engine. Class matching is
//     instance-insensitive: holding *any* lock of the class
//     satisfies the guard, which weakens toward silence (it can miss
//     a bug where two instances of the class are confused, never
//     invent one).
//
//   - Guard facts flow through a per-package requirement fixpoint in
//     the style of summary.go: a helper that touches a guarded field
//     without holding the lock *requires* the class from its callers;
//     a call site discharges the requirement if the class is held
//     there (or the receiver is provably a fresh, unescaped
//     allocation — the constructor exemption), otherwise inherits it.
//     A requirement that survives on an exported function or method
//     is reported at the guilty access: external callers cannot hold
//     a package-private lock, so no caller can discharge it.
//
// Known holes, all erring toward silence: function literals passed to
// other packages (callbacks) are analyzed but their surviving
// requirements are not reported; calls inside go/defer statements do
// not discharge or inherit requirements (the held set at run time is
// unknown); class matching cannot distinguish two live instances of
// one type.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// lockClass identifies a mutex by declaration site, "pkgpath.Type.field".
// The empty class is a local mutex variable: tracked for unlockpath
// and double-lock, invisible to lockguard and lockorder.
type lockClass string

// display shortens "repro/internal/core.Engine.mu" to "(core.Engine).mu".
func (c lockClass) display() string {
	s := string(c)
	i := strings.LastIndex(s, ".")
	if i < 0 {
		return s
	}
	j := strings.LastIndex(s[:i], ".")
	if j < 0 {
		return s
	}
	k := strings.LastIndex(s[:j], "/")
	return "(" + s[k+1:i] + ")." + s[i+1:]
}

type guardKind int

const (
	guardMutex guardKind = iota
	guardAtomic
	guardImmutable
)

// guardSpec is one parsed //scatterlint:guardedby annotation.
type guardSpec struct {
	kind  guardKind
	class lockClass // for guardMutex
	field string    // annotated field name, for messages
}

// lockOp classifies one sync mutex call.
type lockOp int

const (
	opNone lockOp = iota
	opLock
	opRLock
	opUnlock
	opRUnlock
)

// lockState is the must-hold state of one mutex key.
type lockState struct {
	excl     bool // held exclusively (Lock); false means read-held (RLock)
	deferred bool // a deferred unlock already covers this key
	class    lockClass
	pos      token.Pos // acquisition witness
}

// lockSet maps a lock expression (types.ExprString of the receiver,
// "e.mu") to its held state. The dataflow meet is key intersection:
// a lock held on only one incoming path is not held.
type lockSet map[string]lockState

func copyLockSet(s lockSet) lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// meetLockSets intersects in with out, reporting whether in changed.
// Exclusive meets read-held as read-held; deferred bits accumulate.
func meetLockSets(in, out lockSet) (lockSet, bool) {
	changed := false
	for k, iv := range in {
		ov, ok := out[k]
		if !ok {
			delete(in, k)
			changed = true
			continue
		}
		if iv.excl && !ov.excl {
			iv.excl = false
			in[k] = iv
			changed = true
		}
		if ov.deferred && !iv.deferred {
			iv.deferred = true
			in[k] = iv
			changed = true
		}
	}
	return in, changed
}

// holdsClass reports whether some held lock has the class (exclusively,
// if the access needs a writer lock).
func holdsClass(s lockSet, c lockClass, needExcl bool) bool {
	for _, v := range s {
		if v.class == c && (v.excl || !needExcl) {
			return true
		}
	}
	return false
}

// heldClassList returns the distinct held classes, sorted.
func heldClassList(s lockSet) []lockClass {
	seen := make(map[lockClass]bool)
	for _, v := range s {
		if v.class != "" {
			seen[v.class] = true
		}
	}
	out := make([]lockClass, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lockReq is one class a function requires its callers to hold.
type lockReq struct {
	pos      token.Pos // the guilty access (reports and suppressions anchor here)
	needExcl bool
	desc     string // "write to refs (guarded by (core.Engine).mu)"
	chain    string // call-path witness, "SolveDetailed → resolve → pin"
}

// callRec is one call site with the must-hold set at that point.
type callRec struct {
	call *ast.CallExpr
	held lockSet
}

// acqRec is one direct lock acquisition with the set already held.
type acqRec struct {
	class lockClass
	pos   token.Pos
	held  lockSet
}

// lockFacts is the lock-set summary of one function or literal.
type lockFacts struct {
	name string
	fn   *types.Func // nil for literals
	body *ast.BlockStmt
	g    *CFG
	in   []lockSet // per-block fixpoint in-state, indexed by Block.Index

	calls    []callRec
	acquired []acqRec

	requires map[lockClass]*lockReq
	acquires map[lockClass]string // class → call-path witness
}

// lockFinding is one diagnostic, routed to its analyzer at report time.
type lockFinding struct {
	pos token.Pos
	msg string
}

// lockEdge is one lock-order edge: to is acquired while from is held.
type lockEdge struct {
	from, to lockClass
	pos      token.Pos
	fn       string // function holding from at the acquisition
	via      string // callee chain for indirect acquisitions, "" for direct
}

// lockSummary is the memoized lock-set analysis of one package.
type lockSummary struct {
	pass   *Pass
	info   *types.Info
	sum    *pkgSummary
	guards map[*types.Var]*guardSpec
	byFunc map[*types.Func]*lockFacts
	byLit  map[*ast.FuncLit]*lockFacts
	all    []*lockFacts

	guardFindings  []lockFinding
	orderFindings  []lockFinding
	unlockFindings []lockFinding
}

// locksets memoizes the analysis per type-checked package, like
// summaries: lockguard, lockorder and unlockpath share one pass over
// the package and report disjoint finding sets.
var locksets = make(map[*types.Package]*lockSummary)

// computeLockSets runs (or returns the memoized) lock-set analysis.
func computeLockSets(pass *Pass) *lockSummary {
	if ls, ok := locksets[pass.Pkg]; ok {
		return ls
	}
	ls := &lockSummary{
		pass:   pass,
		info:   pass.TypesInfo,
		sum:    summarize(pass),
		guards: make(map[*types.Var]*guardSpec),
		byFunc: make(map[*types.Func]*lockFacts),
		byLit:  make(map[*ast.FuncLit]*lockFacts),
	}
	locksets[pass.Pkg] = ls

	ls.parseGuards()
	ls.buildFacts()
	for _, ff := range ls.all {
		ls.flowFunc(ff)
		ls.scanFunc(ff)
	}
	ls.solveRequirements()
	ls.reportBoundaries()
	ls.buildOrderGraph()

	sortFindings(ls.guardFindings)
	sortFindings(ls.orderFindings)
	sortFindings(ls.unlockFindings)
	return ls
}

func sortFindings(fs []lockFinding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].pos != fs[j].pos {
			return fs[i].pos < fs[j].pos
		}
		return fs[i].msg < fs[j].msg
	})
}

// reportLockFindings emits fs through pass, skipping test files: the
// analyzers prove production invariants, and tests routinely poke
// guarded fields of single-goroutine fixtures.
func reportLockFindings(pass *Pass, fs []lockFinding) {
	for _, f := range fs {
		if strings.HasSuffix(pass.Fset.Position(f.pos).Filename, "_test.go") {
			continue
		}
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// ---- guardedby annotation parsing ----

var classGuardRE = regexp.MustCompile(`^\(([A-Za-z_]\w*)\)\.([A-Za-z_]\w*)$`)

// parseGuards scans every named struct type for field annotations.
func (ls *lockSummary) parseGuards() {
	for _, file := range ls.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				spec, pos, ok := guardAnnotation(fld)
				if ok {
					ls.applyGuard(ts, st, fld, spec, pos)
				}
			}
			return false
		})
	}
}

// guardAnnotation extracts the spec token of a field's guardedby
// directive from its doc or trailing comment. Words after the spec
// are free-form commentary.
func guardAnnotation(fld *ast.Field) (spec string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "scatterlint:guardedby") {
				continue
			}
			rest := strings.TrimPrefix(text, "scatterlint:guardedby")
			if rest != "" && !strings.HasPrefix(rest, " ") && !strings.HasPrefix(rest, "\t") {
				continue // e.g. scatterlint:guardedbyx — some other token
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				return "", c.Pos(), true
			}
			return fields[0], c.Pos(), true
		}
	}
	return "", token.NoPos, false
}

// applyGuard resolves one annotation to a guardSpec and registers it
// for every field name it covers. Malformed annotations are lockguard
// findings: a typo'd guard silently checks nothing.
func (ls *lockSummary) applyGuard(ts *ast.TypeSpec, st *ast.StructType, fld *ast.Field, spec string, pos token.Pos) {
	malformed := func(format string, args ...any) {
		ls.guardFindings = append(ls.guardFindings, lockFinding{
			pos: pos,
			msg: "malformed //scatterlint:guardedby: " + fmt.Sprintf(format, args...),
		})
	}
	if len(fld.Names) == 0 {
		malformed("annotation on an embedded field is not supported")
		return
	}
	gs := &guardSpec{field: fld.Names[0].Name}
	switch {
	case spec == "":
		malformed("missing guard: want a sibling mutex field, (Type).field, atomic or immutable")
		return
	case spec == "atomic":
		gs.kind = guardAtomic
	case spec == "immutable":
		gs.kind = guardImmutable
	case classGuardRE.MatchString(spec):
		m := classGuardRE.FindStringSubmatch(spec)
		cls, err := ls.resolveClassGuard(m[1], m[2])
		if err != "" {
			malformed("%s", err)
			return
		}
		gs.kind = guardMutex
		gs.class = cls
	default:
		cls, err := ls.resolveSiblingGuard(ts, st, spec)
		if err != "" {
			malformed("%s", err)
			return
		}
		gs.kind = guardMutex
		gs.class = cls
	}
	for _, name := range fld.Names {
		if v, ok := ls.info.Defs[name].(*types.Var); ok {
			ls.guards[v] = gs
		}
	}
}

// resolveSiblingGuard resolves a bare guard name to a mutex field of
// the same struct.
func (ls *lockSummary) resolveSiblingGuard(ts *ast.TypeSpec, st *ast.StructType, name string) (lockClass, string) {
	for _, fld := range st.Fields.List {
		for _, n := range fld.Names {
			if n.Name != name {
				continue
			}
			v, ok := ls.info.Defs[n].(*types.Var)
			if !ok || !isMutexType(v.Type()) {
				return "", fmt.Sprintf("%s is not a sync.Mutex or sync.RWMutex field", name)
			}
			return lockClass(ls.pass.Pkg.Path() + "." + ts.Name.Name + "." + name), ""
		}
	}
	return "", fmt.Sprintf("no sibling field named %s; want a mutex field, (Type).field, atomic or immutable", name)
}

// resolveClassGuard resolves a (Type).field guard against the
// package scope.
func (ls *lockSummary) resolveClassGuard(typeName, fieldName string) (lockClass, string) {
	tn, ok := ls.pass.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return "", fmt.Sprintf("no type %s in package %s", typeName, ls.pass.Pkg.Name())
	}
	su, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return "", fmt.Sprintf("%s is not a struct type", typeName)
	}
	for i := 0; i < su.NumFields(); i++ {
		f := su.Field(i)
		if f.Name() != fieldName {
			continue
		}
		if !isMutexType(f.Type()) {
			return "", fmt.Sprintf("(%s).%s is not a sync.Mutex or sync.RWMutex field", typeName, fieldName)
		}
		return lockClass(ls.pass.Pkg.Path() + "." + typeName + "." + fieldName), ""
	}
	return "", fmt.Sprintf("type %s has no field %s", typeName, fieldName)
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ---- function facts ----

// buildFacts registers a lockFacts for every function and literal
// outside test files, in file order.
func (ls *lockSummary) buildFacts() {
	for _, file := range ls.pass.Files {
		if fname := ls.pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body == nil {
					return true
				}
				fn, _ := ls.info.Defs[v.Name].(*types.Func)
				if fn == nil {
					return true
				}
				ff := &lockFacts{
					name:     v.Name.Name,
					fn:       fn,
					body:     v.Body,
					requires: make(map[lockClass]*lockReq),
					acquires: make(map[lockClass]string),
				}
				ls.byFunc[fn] = ff
				ls.all = append(ls.all, ff)
			case *ast.FuncLit:
				name := "func literal"
				if sf := ls.sum.byLit[v]; sf != nil {
					name = sf.name
				}
				ff := &lockFacts{
					name:     name,
					body:     v.Body,
					requires: make(map[lockClass]*lockReq),
					acquires: make(map[lockClass]string),
				}
				ls.byLit[v] = ff
				ls.all = append(ls.all, ff)
			}
			return true
		})
	}
}

// calleeLockFacts resolves a call to its same-package lock facts,
// mirroring pkgSummary.calleeFacts.
func (ls *lockSummary) calleeLockFacts(call *ast.CallExpr) *lockFacts {
	if fn := calleeFunc(ls.info, call); fn != nil {
		return ls.byFunc[fn]
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := ls.info.ObjectOf(fun).(*types.Var); ok {
			if fl := ls.sum.closures[v]; fl != nil {
				return ls.byLit[fl]
			}
		}
	case *ast.FuncLit:
		return ls.byLit[fun]
	}
	return nil
}

// ---- the must-hold dataflow ----

// classifyLockCall classifies a sync.Mutex/RWMutex method call.
// TryLock/TryRLock are deliberately opNone: their acquisition is
// conditional and tracking it as held would claim too much.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (key string, base ast.Expr, op lockOp) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil, opNone
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", nil, opNone
	}
	switch fn.Name() {
	case "Lock":
		op = opLock
	case "RLock":
		op = opRLock
	case "Unlock":
		op = opUnlock
	case "RUnlock":
		op = opRUnlock
	default:
		return "", nil, opNone
	}
	return types.ExprString(sel.X), sel.X, op
}

// lockClassOf resolves a mutex receiver expression to its lock class,
// or "" for locals and unresolvable shapes.
func (ls *lockSummary) lockClassOf(e ast.Expr) lockClass {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := ls.info.Uses[sel.Sel].(*types.Var)
	if !ok || !obj.IsField() {
		return ""
	}
	selc := ls.info.Selections[sel]
	if selc == nil {
		return ""
	}
	t := selc.Recv()
	for {
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return lockClass(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name())
}

// lockOpsIn calls f for every mutex call directly executed by node:
// lock/unlock calls in expression statements and deferred unlocks
// (direct or inside a deferred literal). Nested literals and range
// bodies run elsewhere and are skipped.
func (ls *lockSummary) lockOpsIn(node ast.Node, f func(key string, base ast.Expr, op lockOp, deferred bool, pos token.Pos)) {
	switch v := node.(type) {
	case *ast.DeferStmt:
		if key, base, op := classifyLockCall(ls.info, v.Call); op == opUnlock || op == opRUnlock {
			f(key, base, op, true, v.Call.Pos())
			return
		}
		if fl, ok := ast.Unparen(v.Call.Fun).(*ast.FuncLit); ok {
			walkOwnBody(fl.Body, func(n ast.Node) {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, base, op := classifyLockCall(ls.info, call); op == opUnlock || op == opRUnlock {
						f(key, base, op, true, call.Pos())
					}
				}
			})
		}
	case *ast.GoStmt:
		// Runs on another goroutine: no effect on this held set.
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			if key, base, op := classifyLockCall(ls.info, call); op != opNone {
				f(key, base, op, false, call.Pos())
			}
		}
	}
}

// transfer applies node's lock operations to set.
func (ls *lockSummary) transfer(node ast.Node, set lockSet) {
	ls.lockOpsIn(node, func(key string, base ast.Expr, op lockOp, deferred bool, pos token.Pos) {
		switch {
		case deferred:
			if st, ok := set[key]; ok {
				st.deferred = true
				set[key] = st
			}
		case op == opLock:
			set[key] = lockState{excl: true, class: ls.lockClassOf(base), pos: pos}
		case op == opRLock:
			if _, ok := set[key]; !ok {
				set[key] = lockState{class: ls.lockClassOf(base), pos: pos}
			}
		case op == opUnlock || op == opRUnlock:
			delete(set, key)
		}
	})
}

// flowFunc solves the forward must-hold dataflow over ff's CFG.
func (ls *lockSummary) flowFunc(ff *lockFacts) {
	g := BuildCFG(ff.body)
	ff.g = g
	ff.in = make([]lockSet, len(g.Blocks))
	ff.in[g.Entry.Index] = lockSet{}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		out := copyLockSet(ff.in[b.Index])
		for _, n := range b.Nodes {
			ls.transfer(n, out)
		}
		for _, s := range b.Succs {
			if s == g.Exit {
				continue
			}
			if ff.in[s.Index] == nil {
				ff.in[s.Index] = copyLockSet(out)
				work = append(work, s)
				continue
			}
			if merged, changed := meetLockSets(ff.in[s.Index], out); changed {
				ff.in[s.Index] = merged
				work = append(work, s)
			}
		}
	}
}

// ---- the per-function scan ----

// scanFunc walks ff's blocks with the solved states, collecting
// guarded-access findings and requirement seeds (lockguard), call
// sites and direct acquisitions (lockorder), and release-discipline
// findings (unlockpath).
func (ls *lockSummary) scanFunc(ff *lockFacts) {
	fset := ls.pass.Fset
	for _, b := range ff.g.Blocks {
		if b == ff.g.Exit || ff.in[b.Index] == nil {
			continue
		}
		state := copyLockSet(ff.in[b.Index])
		for _, node := range b.Nodes {
			// Release-discipline checks against the pre-state.
			ls.lockOpsIn(node, func(key string, base ast.Expr, op lockOp, deferred bool, pos token.Pos) {
				st, held := state[key]
				switch {
				case deferred:
					if held && st.excl && op == opRUnlock {
						ff.unlock(ls, pos, "deferred %s.RUnlock() releases an exclusive lock acquired at line %d; use Unlock",
							key, fset.Position(st.pos).Line)
					}
					if held && !st.excl && op == opUnlock {
						ff.unlock(ls, pos, "deferred %s.Unlock() releases a read lock acquired at line %d; use RUnlock",
							key, fset.Position(st.pos).Line)
					}
				case op == opLock:
					if held {
						ff.unlock(ls, pos, "%s.Lock() on a path where %s is already held (acquired at line %d): self-deadlock",
							key, key, fset.Position(st.pos).Line)
					}
					ls.recordAcquire(ff, base, pos, state)
				case op == opRLock:
					if held && st.excl {
						ff.unlock(ls, pos, "%s.RLock() while %s is held exclusively (acquired at line %d): lock upgrade deadlocks",
							key, key, fset.Position(st.pos).Line)
					}
					ls.recordAcquire(ff, base, pos, state)
				case op == opUnlock:
					if held && !st.excl {
						ff.unlock(ls, pos, "%s.Unlock() releases a read lock acquired at line %d; use RUnlock",
							key, fset.Position(st.pos).Line)
					}
				case op == opRUnlock:
					if held && st.excl {
						ff.unlock(ls, pos, "%s.RUnlock() releases an exclusive lock acquired at line %d; use Unlock",
							key, fset.Position(st.pos).Line)
					}
				}
			})
			// Every lock held at a return must carry a deferred unlock.
			if ret, ok := node.(*ast.ReturnStmt); ok {
				ls.checkHeldAtExit(ff, state, ret.Pos(), "return")
			}
			// Guarded accesses against the pre-state.
			ls.scanNodeAccesses(node, func(sel *ast.SelectorExpr, mode accMode) {
				ls.checkAccess(ff, sel, mode, state)
			})
			// Call sites for the requirement/acquire fixpoint. Calls
			// inside go/defer run under an unknown held set: skipped.
			switch node.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
			default:
				visitOwnNode(node, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						if _, _, op := classifyLockCall(ls.info, call); op == opNone {
							ff.calls = append(ff.calls, callRec{call: call, held: copyLockSet(state)})
						}
					}
					return true
				})
			}
			ls.transfer(node, state)
		}
		// Falling off the end of the function is an implicit return.
		if exits, last := fallsToExit(ff.g, b); exits {
			if !endsControl(last) && !ls.endsDying(last) {
				pos := ff.body.Rbrace
				if last != nil {
					pos = last.End()
				}
				ls.checkHeldAtExit(ff, state, pos, "function end")
			}
		}
	}
}

func (ff *lockFacts) unlock(ls *lockSummary, pos token.Pos, format string, args ...any) {
	ls.unlockFindings = append(ls.unlockFindings, lockFinding{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// fallsToExit reports whether b has an edge to the CFG exit, with its
// final node (nil for empty blocks).
func fallsToExit(g *CFG, b *Block) (bool, ast.Node) {
	for _, s := range b.Succs {
		if s == g.Exit {
			var last ast.Node
			if len(b.Nodes) > 0 {
				last = b.Nodes[len(b.Nodes)-1]
			}
			return true, last
		}
	}
	return false, nil
}

// endsControl reports whether the node already accounts for its exit
// edge: returns are checked at the statement, branch statements
// (goto approximation) transfer control without returning.
func endsControl(n ast.Node) bool {
	switch n.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	}
	return false
}

// endsDying reports whether n is a call that never returns normally
// (panic, os.Exit, log.Fatal*): locks held there are moot — panics
// run the deferred unlocks, exits tear the process down.
func (ls *lockSummary) endsDying(n ast.Node) bool {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := ls.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	if fn := calleeFunc(ls.info, call); fn != nil && fn.Pkg() != nil {
		full := fn.Pkg().Path() + "." + fn.Name()
		switch full {
		case "os.Exit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// checkHeldAtExit reports every non-deferred lock still held when the
// function exits at pos.
func (ls *lockSummary) checkHeldAtExit(ff *lockFacts, state lockSet, pos token.Pos, where string) {
	keys := make([]string, 0, len(state))
	for k, st := range state {
		if !st.deferred {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		ff.unlock(ls, pos, "%s with %s held (acquired at line %d): missing Unlock on this path",
			where, k, ls.pass.Fset.Position(state[k].pos).Line)
	}
}

// recordAcquire records a direct acquisition for the lock-order graph.
func (ls *lockSummary) recordAcquire(ff *lockFacts, base ast.Expr, pos token.Pos, held lockSet) {
	class := ls.lockClassOf(base)
	if class == "" {
		return
	}
	ff.acquired = append(ff.acquired, acqRec{class: class, pos: pos, held: copyLockSet(held)})
	if _, ok := ff.acquires[class]; !ok {
		ff.acquires[class] = ff.name
	}
}

// ---- guarded-access checking ----

// checkAccess enforces one guarded field access against the held set.
func (ls *lockSummary) checkAccess(ff *lockFacts, sel *ast.SelectorExpr, mode accMode, state lockSet) {
	obj, ok := ls.info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	spec := ls.guards[obj]
	if spec == nil {
		return
	}
	switch spec.kind {
	case guardAtomic:
		if mode != accAtomic {
			ls.guardFindings = append(ls.guardFindings, lockFinding{
				pos: sel.Pos(),
				msg: fmt.Sprintf("%s of %s (declared guardedby atomic) must go through sync/atomic",
					accVerb(mode), spec.field),
			})
		}
	case guardImmutable:
		if mode != accWrite {
			return
		}
		// Writes are legal before the value escapes its constructor,
		// or under any held lock (the publish side of a
		// happens-before edge: write results, then close the channel
		// or release the mutex the readers synchronize on).
		if len(state) > 0 || ls.exemptPath(sel.X, ff) {
			return
		}
		ls.guardFindings = append(ls.guardFindings, lockFinding{
			pos: sel.Pos(),
			msg: fmt.Sprintf("write to %s (declared guardedby immutable) outside construction or a locked publish",
				spec.field),
		})
	case guardMutex:
		needExcl := mode == accWrite
		if holdsClass(state, spec.class, needExcl) {
			return
		}
		if ls.exemptPath(sel.X, ff) {
			return
		}
		desc := fmt.Sprintf("%s of %s (guarded by %s)", accVerb(mode), spec.field, spec.class.display())
		root := rootIdent(sel.X)
		var rootObj *types.Var
		if root != nil {
			rootObj, _ = ls.info.ObjectOf(root).(*types.Var)
		}
		if rootObj == nil {
			return // unrooted base (call result): silent
		}
		if ls.localVar(rootObj, ff) {
			// A local, non-fresh carrier: no caller can make this
			// access safe, report here and now.
			ls.guardFindings = append(ls.guardFindings, lockFinding{
				pos: sel.Pos(),
				msg: desc + " without " + string(spec.class.display()) + " held",
			})
			return
		}
		// Receiver, parameter or free variable: the caller may hold
		// the lock — record a requirement and let the fixpoint decide.
		ff.addReq(spec.class, sel.Pos(), needExcl, desc, ff.name)
	}
}

type accMode int

const (
	accRead accMode = iota
	accWrite
	accAtomic
)

func accVerb(m accMode) string {
	switch m {
	case accWrite:
		return "write"
	case accAtomic:
		return "atomic access"
	}
	return "read"
}

// addReq merges one requirement, keeping the first witness; reports
// whether anything changed (for the fixpoint).
func (ff *lockFacts) addReq(class lockClass, pos token.Pos, needExcl bool, desc, chain string) bool {
	r := ff.requires[class]
	if r == nil {
		ff.requires[class] = &lockReq{pos: pos, needExcl: needExcl, desc: desc, chain: chain}
		return true
	}
	if needExcl && !r.needExcl {
		r.needExcl = true
		return true
	}
	return false
}

// localVar reports whether obj is declared inside ff's body — a local
// variable rather than a receiver, parameter, free variable or
// package-level variable.
func (ls *lockSummary) localVar(obj *types.Var, ff *lockFacts) bool {
	return obj.Pos() >= ff.body.Pos() && obj.Pos() < ff.body.End()
}

// exemptPath reports whether the base expression of a guarded access
// provably refers to memory no other goroutine can reach yet:
//
//   - a pure value path (no pointer dereference, no indexing) rooted
//     at a function-local struct value, or
//   - a path whose local root's single assignment is a fresh
//     allocation (&T{...}, T{...}, new(T)) and whose address is never
//     taken — the constructor exemption.
func (ls *lockSummary) exemptPath(e ast.Expr, ff *lockFacts) bool {
	derefed := false
	for {
		e = ast.Unparen(e)
		switch v := e.(type) {
		case *ast.Ident:
			obj, ok := ls.info.ObjectOf(v).(*types.Var)
			if !ok || !ls.localVar(obj, ff) {
				return false
			}
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr || derefed {
				return ls.freshAlloc(v, obj, ff)
			}
			return true
		case *ast.SelectorExpr:
			if t := ls.info.TypeOf(v.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					derefed = true
				}
			}
			e = v.X
		case *ast.StarExpr:
			derefed = true
			e = v.X
		case *ast.IndexExpr:
			derefed = true // slice/map backing is shareable
			e = v.X
		default:
			return false
		}
	}
}

// freshAlloc reports whether obj's single definition in ff is a fresh
// allocation and its address is never taken. Flow-insensitive on
// purpose: a variable that is ever bound to shared state (st, ok :=
// w.collectives[seq]) has a non-fresh definition and fails here even
// if a fresh one follows on some branch.
func (ls *lockSummary) freshAlloc(id *ast.Ident, obj *types.Var, ff *lockFacts) bool {
	defs := 0
	fresh := true
	walkOwnBody(ff.body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.AssignStmt:
			forEachDef(v.Lhs, v.Rhs, func(lhs *ast.Ident, rhs ast.Expr, tupleIdx int) {
				if ls.info.ObjectOf(lhs) != obj {
					return
				}
				defs++
				if tupleIdx != 0 || len(v.Lhs) != len(v.Rhs) || !isFreshAllocExpr(rhs) {
					fresh = false
				}
			})
		case *ast.ValueSpec:
			for i, name := range v.Names {
				if ls.info.ObjectOf(name) != obj {
					continue
				}
				defs++
				if len(v.Values) != len(v.Names) || !isFreshAllocExpr(v.Values[i]) {
					fresh = false
				}
			}
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if base, ok := ast.Unparen(v.X).(*ast.Ident); ok && ls.info.ObjectOf(base) == obj {
					fresh = false // address taken: may escape
				}
			}
		case *ast.RangeStmt:
			for _, lhs := range []ast.Expr{v.Key, v.Value} {
				if lid, ok := lhs.(*ast.Ident); ok && ls.info.ObjectOf(lid) == obj {
					defs++
					fresh = false
				}
			}
		}
	})
	return defs == 1 && fresh
}

func isFreshAllocExpr(e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if v.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(v.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && id.Name == "new" {
			return len(v.Args) == 1
		}
	}
	return false
}

// ---- node visitors ----

// visitOwnNode inspects one CFG node, pruning nested function literal
// bodies and (for a RangeStmt header node) the loop body, whose
// statements live in other blocks.
func visitOwnNode(node ast.Node, f func(ast.Node) bool) {
	var rangeBody *ast.BlockStmt
	if rs, ok := node.(*ast.RangeStmt); ok {
		rangeBody = rs.Body
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rangeBody != nil && n == ast.Node(rangeBody) {
			return false
		}
		return f(n)
	})
}

// scanNodeAccesses finds every field access in one CFG node and
// classifies it read / write / atomic. Only selector shapes can reach
// guarded fields, so hit fires on SelectorExprs.
func (ls *lockSummary) scanNodeAccesses(node ast.Node, hit func(sel *ast.SelectorExpr, mode accMode)) {
	switch v := node.(type) {
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			ls.scanExpr(lhs, accWrite, hit)
		}
		for _, rhs := range v.Rhs {
			ls.scanExpr(rhs, accRead, hit)
		}
	case *ast.IncDecStmt:
		ls.scanExpr(v.X, accWrite, hit)
	case *ast.SendStmt:
		ls.scanExpr(v.Chan, accRead, hit)
		ls.scanExpr(v.Value, accRead, hit)
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			ls.scanExpr(r, accRead, hit)
		}
	case *ast.ExprStmt:
		ls.scanExpr(v.X, accRead, hit)
	case *ast.DeferStmt:
		ls.scanExpr(v.Call, accRead, hit)
	case *ast.GoStmt:
		ls.scanExpr(v.Call, accRead, hit)
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, val := range vs.Values {
					ls.scanExpr(val, accRead, hit)
				}
			}
		}
	case *ast.RangeStmt:
		ls.scanExpr(v.X, accRead, hit)
		if v.Key != nil {
			ls.scanExpr(v.Key, accWrite, hit)
		}
		if v.Value != nil {
			ls.scanExpr(v.Value, accWrite, hit)
		}
	case *ast.BranchStmt, *ast.EmptyStmt:
	case ast.Expr:
		ls.scanExpr(v, accRead, hit)
	}
}

// scanExpr classifies field accesses in one expression. mode is what
// happens to the value the expression denotes.
func (ls *lockSummary) scanExpr(e ast.Expr, mode accMode, hit func(sel *ast.SelectorExpr, mode accMode)) {
	if e == nil {
		return
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
	case *ast.BasicLit, *ast.FuncLit:
	case *ast.SelectorExpr:
		hit(v, mode)
		ls.scanExpr(v.X, accRead, hit)
	case *ast.StarExpr:
		// The write (if any) lands through the pointer; the field
		// holding the pointer is only read.
		ls.scanExpr(v.X, accRead, hit)
	case *ast.UnaryExpr:
		if v.Op == token.AND && mode != accAtomic {
			// Taking the address lets the holder write.
			ls.scanExpr(v.X, accWrite, hit)
			return
		}
		ls.scanExpr(v.X, mode, hit)
	case *ast.IndexExpr:
		// Writing an element mutates the container the field holds.
		ls.scanExpr(v.X, mode, hit)
		ls.scanExpr(v.Index, accRead, hit)
	case *ast.SliceExpr:
		ls.scanExpr(v.X, accRead, hit)
		ls.scanExpr(v.Low, accRead, hit)
		ls.scanExpr(v.High, accRead, hit)
		ls.scanExpr(v.Max, accRead, hit)
	case *ast.CallExpr:
		argMode := accRead
		if ls.callToSyncAtomic(v) {
			argMode = accAtomic
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				// s.n.Add(1) on an atomic.Int64 field: the receiver
				// chain is the atomic access.
				ls.scanExpr(sel.X, accAtomic, hit)
			}
		} else {
			ls.scanExpr(v.Fun, accRead, hit)
		}
		for _, a := range v.Args {
			ls.scanExpr(a, argMode, hit)
		}
	case *ast.CompositeLit:
		for _, el := range v.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				ls.scanExpr(kv.Value, accRead, hit)
				continue
			}
			ls.scanExpr(el, accRead, hit)
		}
	case *ast.KeyValueExpr:
		ls.scanExpr(v.Key, accRead, hit)
		ls.scanExpr(v.Value, accRead, hit)
	case *ast.BinaryExpr:
		ls.scanExpr(v.X, accRead, hit)
		ls.scanExpr(v.Y, accRead, hit)
	case *ast.TypeAssertExpr:
		ls.scanExpr(v.X, accRead, hit)
	}
}

// callToSyncAtomic reports whether call resolves to sync/atomic — a
// package function (atomic.AddInt64) or a method on an atomic type
// ((*atomic.Int64).Add).
func (ls *lockSummary) callToSyncAtomic(call *ast.CallExpr) bool {
	fn := calleeFunc(ls.info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// ---- the requirement / acquisition fixpoint ----

// sortedReqClasses returns ff's required classes in sorted order.
func sortedReqClasses(m map[lockClass]*lockReq) []lockClass {
	out := make([]lockClass, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedAcqClasses(m map[lockClass]string) []lockClass {
	out := make([]lockClass, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// solveRequirements runs the interprocedural fixpoint: call sites
// discharge callee requirements when the class is held (or the
// receiver is provably fresh), inherit them otherwise, and union the
// callee's transitive acquisitions.
func (ls *lockSummary) solveRequirements() {
	for changed := true; changed; {
		changed = false
		for _, ff := range ls.all {
			for _, cr := range ff.calls {
				cf := ls.calleeLockFacts(cr.call)
				if cf != nil && cf != ff {
					for _, class := range sortedReqClasses(cf.requires) {
						req := cf.requires[class]
						if holdsClass(cr.held, class, req.needExcl) {
							continue
						}
						if ls.freshReceiverCall(cr.call, class, ff) {
							continue
						}
						if ff.addReq(class, req.pos, req.needExcl, req.desc, ff.name+" → "+req.chain) {
							changed = true
						}
					}
					for _, class := range sortedAcqClasses(cf.acquires) {
						if _, ok := ff.acquires[class]; !ok {
							ff.acquires[class] = ff.name + " → " + cf.acquires[class]
							changed = true
						}
					}
					continue
				}
				// Cross-package calls: API lock knowledge only.
				for _, class := range apiAcquiresOf(ls.info, cr.call, ls.pass.Pkg) {
					if _, ok := ff.acquires[class]; !ok {
						ff.acquires[class] = ff.name + " → " + apiCallName(ls.info, cr.call)
						changed = true
					}
				}
			}
		}
	}
}

// freshReceiverCall reports whether cr's call is a method call on a
// provably fresh receiver whose type owns class — the constructor
// exemption crossing a call: s := &Store{...}; s.recover() may touch
// (Store).mu-guarded fields lock-free.
func (ls *lockSummary) freshReceiverCall(call *ast.CallExpr, class lockClass, ff *lockFacts) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(ls.info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recvType := namedTypeName(sig.Recv().Type())
	if recvType == "" || !strings.HasPrefix(string(class), ls.pass.Pkg.Path()+"."+recvType+".") {
		return false
	}
	return ls.exemptPath(sel.X, ff)
}

// ---- exported-boundary reporting ----

// reportBoundaries reports every requirement that survives the
// fixpoint on an exported function or exported method of an exported
// type: callers outside the package cannot hold a package-private
// lock, so no call site can ever discharge it. Requirements on
// unexported, uncalled helpers stay silent — they may simply be dead
// entry points. Reports anchor at the guilty access, so a suppression
// there covers every exported path that reaches it.
func (ls *lockSummary) reportBoundaries() {
	seen := make(map[string]bool)
	for _, ff := range ls.all {
		if ff.fn == nil || !ast.IsExported(ff.fn.Name()) {
			continue
		}
		if sig, ok := ff.fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			recvType := namedTypeName(sig.Recv().Type())
			if recvType != "" && !ast.IsExported(recvType) {
				continue
			}
		}
		for _, class := range sortedReqClasses(ff.requires) {
			req := ff.requires[class]
			key := string(class) + "@" + fmt.Sprint(int(req.pos))
			if seen[key] {
				continue
			}
			seen[key] = true
			ls.guardFindings = append(ls.guardFindings, lockFinding{
				pos: req.pos,
				msg: fmt.Sprintf("%s reachable without the lock from exported %s (path %s); callers outside the package cannot hold %s",
					req.desc, funcDisplayName(ff.fn), req.chain, class.display()),
			})
		}
	}
}

// ---- the lock-order graph ----

// buildOrderGraph collects every ordered acquisition pair — class B
// acquired, directly or through a summarized callee or a
// cross-package API, while class A is held — and reports each cycle
// in the resulting graph once, with every edge's witness.
func (ls *lockSummary) buildOrderGraph() {
	var edges []lockEdge
	addEdge := func(held lockSet, to lockClass, pos token.Pos, fn, via string) {
		for _, from := range heldClassList(held) {
			if from == to {
				// Reacquiring the held class is unlockpath's
				// double-lock domain, not an ordering fact.
				continue
			}
			edges = append(edges, lockEdge{from: from, to: to, pos: pos, fn: fn, via: via})
		}
	}
	for _, ff := range ls.all {
		for _, acq := range ff.acquired {
			addEdge(acq.held, acq.class, acq.pos, ff.name, "")
		}
		for _, cr := range ff.calls {
			if len(cr.held) == 0 {
				continue
			}
			if cf := ls.calleeLockFacts(cr.call); cf != nil && cf != ff {
				for _, class := range sortedAcqClasses(cf.acquires) {
					addEdge(cr.held, class, cr.call.Pos(), ff.name, cf.acquires[class])
				}
				continue
			}
			for _, class := range apiAcquiresOf(ls.info, cr.call, ls.pass.Pkg) {
				addEdge(cr.held, class, cr.call.Pos(), ff.name, apiCallName(ls.info, cr.call))
			}
		}
	}

	// Deduplicate edges (first witness wins; ff iteration order is
	// file order, so witnesses are deterministic) and build the
	// adjacency.
	adj := make(map[lockClass]map[lockClass]lockEdge)
	var nodes []lockClass
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[lockClass]lockEdge)
			nodes = append(nodes, e.from)
		}
		if _, ok := adj[e.from][e.to]; !ok {
			adj[e.from][e.to] = e
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	// DFS cycle detection with deterministic neighbor order.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[lockClass]int)
	var stack []lockClass
	reported := make(map[string]bool)
	var visit func(c lockClass)
	visit = func(c lockClass) {
		color[c] = grey
		stack = append(stack, c)
		for _, next := range sortedEdgeTargets(adj[c]) {
			switch color[next] {
			case white:
				visit(next)
			case grey:
				ls.reportCycle(adj, stack, next, reported)
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
}

func sortedEdgeTargets(m map[lockClass]lockEdge) []lockClass {
	out := make([]lockClass, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// reportCycle extracts the cycle closing at `back` from the DFS stack
// and reports it once, rotated to its lexicographically smallest
// class so each cycle has one canonical form.
func (ls *lockSummary) reportCycle(adj map[lockClass]map[lockClass]lockEdge, stack []lockClass, back lockClass, reported map[string]bool) {
	start := -1
	for i, c := range stack {
		if c == back {
			start = i
			break
		}
	}
	if start < 0 {
		return
	}
	cycle := append([]lockClass(nil), stack[start:]...)
	// Canonical rotation.
	min := 0
	for i := range cycle {
		if cycle[i] < cycle[min] {
			min = i
		}
	}
	cycle = append(cycle[min:], cycle[:min]...)
	var key strings.Builder
	for _, c := range cycle {
		key.WriteString(string(c))
		key.WriteString("→")
	}
	if reported[key.String()] {
		return
	}
	reported[key.String()] = true

	var parts []string
	var firstPos token.Pos
	for i, c := range cycle {
		next := cycle[(i+1)%len(cycle)]
		e := adj[c][next]
		if i == 0 {
			firstPos = e.pos
		}
		w := fmt.Sprintf("%s → %s acquired in %s at line %d", c.display(), next.display(), e.fn, ls.pass.Fset.Position(e.pos).Line)
		if e.via != "" {
			w += " (via " + e.via + ")"
		}
		parts = append(parts, w)
	}
	ls.orderFindings = append(ls.orderFindings, lockFinding{
		pos: firstPos,
		msg: "lock-order cycle: " + strings.Join(parts, "; "),
	})
}

// ---- cross-package API lock knowledge ----

// apiLockAcquires is the module's lock table: which lock classes each
// exported API may (transitively) acquire, keyed by
// "pkgpath.ReceiverType" for methods and "pkgpath.Func" for
// functions. Per-package summaries cannot see other packages' bodies
// (the vet unit boundary, like isPoolMethod/isLedgerMethod in
// summary.go), so holding a lock across one of these calls creates
// order edges from this table. Callbacks invoked by the callee are
// the known hole: they would need reverse edges this table cannot
// express.
var apiLockAcquires = map[string][]lockClass{
	"repro/internal/core.Engine": {
		"repro/internal/core.Engine.mu",
		"repro/internal/core.tabCache.mu",
	},
	"repro/internal/core.Plan": {
		"repro/internal/core.tabCache.mu",
	},
	"repro/internal/core.SolvePlan":   {"repro/internal/core.tabCache.mu"},
	"repro/internal/core.SolveCoarse": {"repro/internal/core.tabCache.mu"},
	"repro/internal/store.Store":      {"repro/internal/store.Store.mu"},
	"repro/internal/monitor.Monitor":  {"repro/internal/monitor.Monitor.mu"},
	"repro/internal/serve.Server": {
		"repro/internal/serve.Server.mu",
		"repro/internal/core.Engine.mu",
		"repro/internal/core.tabCache.mu",
		"repro/internal/store.Store.mu",
		"repro/internal/monitor.Monitor.mu",
	},
	"repro/internal/mpi.World": {
		"repro/internal/mpi.World.mu",
		"repro/internal/mpi.collective.mu",
		"repro/internal/core.Engine.mu",
		"repro/internal/core.tabCache.mu",
	},
	"repro/internal/mpi.Comm": {
		"repro/internal/mpi.World.mu",
		"repro/internal/mpi.collective.mu",
		"repro/internal/core.Engine.mu",
		"repro/internal/core.tabCache.mu",
	},
}

// apiAcquiresOf returns the lock classes a cross-package call may
// acquire, per the API table. Same-package calls return nil: their
// real summaries are authoritative.
func apiAcquiresOf(info *types.Info, call *ast.CallExpr, pkg *types.Package) []lockClass {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pkg {
		return nil
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		key += namedTypeName(sig.Recv().Type())
	} else {
		key += fn.Name()
	}
	return apiLockAcquires[key]
}

// apiCallName names a cross-package call for witness chains.
func apiCallName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return funcDisplayName(fn)
	}
	return "call"
}

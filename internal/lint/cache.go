package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchemaVersion invalidates every entry when the analyzer
// machinery changes in a way the suite fingerprint cannot see (a bug
// fix inside an analyzer, a new fact layer). Bump it whenever analysis
// semantics change.
const cacheSchemaVersion = "scatterlint-cache-v2"

// An AuditRecord is a DirectiveAudit with its position resolved to
// file/line/column, so it survives serialization: token.Pos values are
// only meaningful against the FileSet that produced them.
type AuditRecord struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Col       int      `json:"col"`
	Analyzers []string `json:"analyzers"`
	Reason    string   `json:"reason"`
	Used      bool     `json:"used"`
	Unknown   []string `json:"unknown,omitempty"`
}

// NewAuditRecord resolves a DirectiveAudit against its FileSet.
func NewAuditRecord(fset *token.FileSet, a DirectiveAudit) AuditRecord {
	pos := fset.Position(a.Pos)
	return AuditRecord{
		File:      relToWd(pos.Filename),
		Line:      pos.Line,
		Col:       pos.Column,
		Analyzers: a.Analyzers,
		Reason:    a.Reason,
		Used:      a.Used,
		Unknown:   a.Unknown,
	}
}

// A Cache is a content-addressed store of per-package analysis
// results. Keys hash the unit's source files, the summaries of its
// module-internal dependencies, the analyzer suite and the toolchain,
// so any edit invalidates exactly the edited package and its reverse
// dependencies.
type Cache struct {
	// Dir is the directory entries live in; created on first write.
	Dir string
}

// CacheStats reports how a cached run split between hits and misses.
type CacheStats struct {
	Units  int
	Hits   int
	Misses int
}

// cacheEntry is the stored result of analyzing one unit.
type cacheEntry struct {
	Unit     string        `json:"unit"`
	Findings []Finding     `json:"findings"`
	Audits   []AuditRecord `json:"audits"`
}

// cacheUnit is one analyzable unit (a package, or its external test
// package suffixed " [xtest]") with its content-derived key.
type cacheUnit struct {
	path    string // unit path as Load reports it
	pkgPath string // base import path usable as a go list pattern
	key     string
}

// load returns the stored entry for the unit, or nil on any miss:
// absent file, unreadable JSON, or a unit-path mismatch (which would
// mean a hash collision and is treated as corruption).
func (c *Cache) load(u cacheUnit) *cacheEntry {
	data, err := os.ReadFile(filepath.Join(c.Dir, u.key+".json"))
	if err != nil {
		return nil
	}
	e := new(cacheEntry)
	if err := json.Unmarshal(data, e); err != nil || e.Unit != u.path {
		return nil
	}
	return e
}

// store writes the entry atomically (temp file + rename) so a
// concurrent or interrupted run never leaves a torn entry.
func (c *Cache) store(u cacheUnit, e *cacheEntry) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(c.Dir, u.key+".json"))
}

// RunCachedAnalysis runs the analyzer suite over the packages matching
// the patterns, consulting the cache per unit. Hits are returned
// as-stored; misses are loaded (with export data, so only the miss set
// pays for compilation), analyzed and stored. With a nil cache every
// unit is analyzed fresh through the identical conversion path, so
// cached and uncached runs produce bit-identical findings and audits.
func RunCachedAnalysis(l *Loader, c *Cache, analyzers []*Analyzer, patterns ...string) ([]Finding, []AuditRecord, CacheStats, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var stats CacheStats

	if c == nil {
		pkgs, err := l.Load(patterns...)
		if err != nil {
			return nil, nil, stats, err
		}
		var findings []Finding
		var audits []AuditRecord
		for _, pkg := range pkgs {
			e, err := analyzeUnit(pkg, analyzers)
			if err != nil {
				return nil, nil, stats, err
			}
			findings = append(findings, e.Findings...)
			audits = append(audits, e.Audits...)
		}
		stats.Units, stats.Misses = len(pkgs), len(pkgs)
		return findings, audits, stats, nil
	}

	units, err := computeUnitKeys(l, analyzers, patterns)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.Units = len(units)

	results := make(map[string]*cacheEntry, len(units))
	unitByPath := make(map[string]cacheUnit, len(units))
	missPkgs := make(map[string]bool)
	for _, u := range units {
		unitByPath[u.path] = u
		if e := c.load(u); e != nil {
			results[u.path] = e
			stats.Hits++
			continue
		}
		stats.Misses++
		missPkgs[u.pkgPath] = true
	}

	if len(missPkgs) > 0 {
		patterns := make([]string, 0, len(missPkgs))
		for p := range missPkgs {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		pkgs, err := l.Load(patterns...)
		if err != nil {
			return nil, nil, stats, err
		}
		for _, pkg := range pkgs {
			u, known := unitByPath[pkg.Path]
			if !known {
				continue // a pattern matched wider than the keyed set
			}
			if _, done := results[pkg.Path]; done {
				continue // sibling unit of a miss that itself hit
			}
			e, err := analyzeUnit(pkg, analyzers)
			if err != nil {
				return nil, nil, stats, err
			}
			if err := c.store(u, e); err != nil {
				return nil, nil, stats, fmt.Errorf("lint: writing cache entry for %s: %v", u.path, err)
			}
			results[pkg.Path] = e
		}
	}

	var findings []Finding
	var audits []AuditRecord
	for _, u := range units {
		e := results[u.path]
		if e == nil {
			return nil, nil, stats, fmt.Errorf("lint: no analysis result for unit %s", u.path)
		}
		findings = append(findings, e.Findings...)
		audits = append(audits, e.Audits...)
	}
	return findings, audits, stats, nil
}

// analyzeUnit runs the suite over one loaded package and converts the
// results to their serializable forms.
func analyzeUnit(pkg *Package, analyzers []*Analyzer) (*cacheEntry, error) {
	diags, dirAudits, err := RunAnalyzersAudit(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	e := &cacheEntry{Unit: pkg.Path, Findings: []Finding{}, Audits: []AuditRecord{}}
	for _, d := range diags {
		e.Findings = append(e.Findings, NewFinding(pkg.Fset, d))
	}
	for _, a := range dirAudits {
		e.Audits = append(e.Audits, NewAuditRecord(pkg.Fset, a))
	}
	return e, nil
}

// suiteFingerprint folds the analyzer roster (names and docs), the
// cache schema version and the toolchain into one string, so changing
// any of them invalidates every entry.
func suiteFingerprint(analyzers []*Analyzer) string {
	h := sha256.New()
	io.WriteString(h, cacheSchemaVersion)
	io.WriteString(h, "\x00")
	io.WriteString(h, runtime.Version())
	for _, a := range analyzers {
		fmt.Fprintf(h, "\x00%s\x01%s", a.Name, a.Doc)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// computeUnitKeys lists the patterns WITHOUT export data (no
// compilation: this is the entire toolchain cost of a fully-warm run)
// and derives a content key per unit.
func computeUnitKeys(l *Loader, analyzers []*Analyzer, patterns []string) ([]cacheUnit, error) {
	recs, err := l.listPackages(false, false, patterns...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(recs))
	modPath := ""
	for _, r := range recs {
		byPath[r.ImportPath] = r
		if r.Module != nil && modPath == "" {
			modPath = r.Module.Path
		}
	}

	// The listing skips -deps (standard-library records contribute only
	// their path to a key), so narrow patterns can leave module-internal
	// imports without records; resolve those with one -deps listing,
	// which closes their own import chains too.
	var unresolved []string
	seen := make(map[string]bool)
	isTarget := func(r *listedPackage) bool {
		return !r.Standard && !r.DepOnly && r.Module != nil && len(r.GoFiles) > 0
	}
	if modPath != "" {
		for _, r := range recs {
			if !isTarget(r) {
				continue
			}
			imps := append([]string(nil), r.Imports...)
			if l.IncludeTests {
				imps = append(append(imps, r.TestImports...), r.XTestImports...)
			}
			for _, imp := range imps {
				if byPath[imp] == nil && !seen[imp] &&
					(imp == modPath || strings.HasPrefix(imp, modPath+"/")) {
					seen[imp] = true
					unresolved = append(unresolved, imp)
				}
			}
		}
	}
	if len(unresolved) > 0 {
		sort.Strings(unresolved)
		extra, err := l.listPackages(false, true, unresolved...)
		if err != nil {
			return nil, err
		}
		for _, r := range extra {
			if byPath[r.ImportPath] == nil {
				byPath[r.ImportPath] = r
			}
		}
	}

	fileHashes := make(map[string]string)
	hashFile := func(dir, name string) (string, error) {
		full := filepath.Join(dir, name)
		if h, ok := fileHashes[full]; ok {
			return h, nil
		}
		data, err := os.ReadFile(full)
		if err != nil {
			return "", fmt.Errorf("lint: hashing %s: %v", full, err)
		}
		sum := fmt.Sprintf("%x", sha256.Sum256(data))
		fileHashes[full] = sum
		return sum, nil
	}

	// libKey summarizes a package as seen by its importers: its own
	// non-test sources plus, recursively, its module-internal imports.
	// External and standard-library packages contribute only their
	// import path — the toolchain version in the suite fingerprint
	// covers their drift. Import cycles are impossible in Go, so the
	// recursion terminates.
	libKeys := make(map[string]string)
	var libKey func(path string) (string, error)
	libKey = func(path string) (string, error) {
		if k, ok := libKeys[path]; ok {
			return k, nil
		}
		r := byPath[path]
		if r == nil || r.Standard || r.Module == nil {
			k := "ext:" + path
			libKeys[path] = k
			return k, nil
		}
		h := sha256.New()
		fmt.Fprintf(h, "lib\x00%s", path)
		files := append([]string(nil), r.GoFiles...)
		sort.Strings(files)
		for _, f := range files {
			sum, err := hashFile(r.Dir, f)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "\x00%s\x01%s", f, sum)
		}
		imps := append([]string(nil), r.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			k, err := libKey(imp)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(h, "\x00%s", k)
		}
		k := fmt.Sprintf("%x", h.Sum(nil))
		libKeys[path] = k
		return k, nil
	}

	fp := suiteFingerprint(analyzers)
	newKey := func(unitPath string, parts ...string) string {
		h := sha256.New()
		fmt.Fprintf(h, "%s\x00unit\x00%s", fp, unitPath)
		for _, p := range parts {
			fmt.Fprintf(h, "\x00%s", p)
		}
		return fmt.Sprintf("%x", h.Sum(nil))
	}
	hashFiles := func(dir string, names []string) ([]string, error) {
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		var parts []string
		for _, f := range sorted {
			sum, err := hashFile(dir, f)
			if err != nil {
				return nil, err
			}
			parts = append(parts, f+"\x01"+sum)
		}
		return parts, nil
	}
	keyImports := func(imps []string) ([]string, error) {
		sorted := append([]string(nil), imps...)
		sort.Strings(sorted)
		var parts []string
		for _, imp := range sorted {
			k, err := libKey(imp)
			if err != nil {
				return nil, err
			}
			parts = append(parts, k)
		}
		return parts, nil
	}

	var units []cacheUnit
	for _, r := range recs {
		if !isTarget(r) {
			continue
		}
		base, err := libKey(r.ImportPath)
		if err != nil {
			return nil, err
		}
		parts := []string{base}
		if l.IncludeTests {
			fh, err := hashFiles(r.Dir, r.TestGoFiles)
			if err != nil {
				return nil, err
			}
			ik, err := keyImports(r.TestImports)
			if err != nil {
				return nil, err
			}
			parts = append(append(parts, fh...), ik...)
		}
		units = append(units, cacheUnit{
			path:    r.ImportPath,
			pkgPath: r.ImportPath,
			key:     newKey(r.ImportPath, parts...),
		})
		if l.IncludeTests && len(r.XTestGoFiles) > 0 {
			xpath := r.ImportPath + " [xtest]"
			fh, err := hashFiles(r.Dir, r.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			ik, err := keyImports(r.XTestImports)
			if err != nil {
				return nil, err
			}
			xparts := append(append([]string{base}, fh...), ik...)
			units = append(units, cacheUnit{
				path:    xpath,
				pkgPath: r.ImportPath,
				key:     newKey(xpath, xparts...),
			})
		}
	}
	sort.Slice(units, func(i, j int) bool { return units[i].path < units[j].path })
	return units, nil
}

package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// parseFunc type-checks src (a complete import-free file) and returns
// the named function with the file set and type info, for unit-testing
// the dataflow layer without the loader.
func parseFunc(t *testing.T, src, name string) (*token.FileSet, *types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "test.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, info, fd
		}
	}
	t.Fatalf("function %s not found", name)
	return nil, nil, nil
}

// lineOf returns the 1-based line of the first occurrence of marker.
func lineOf(t *testing.T, src, marker string) int {
	t.Helper()
	idx := strings.Index(src, marker)
	if idx < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	return 1 + strings.Count(src[:idx], "\n")
}

// refOnLine finds the CFG node starting on the given line.
func refOnLine(t *testing.T, g *CFG, fset *token.FileSet, line int) ref {
	t.Helper()
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return ref{blk, i}
			}
		}
	}
	t.Fatalf("no CFG node on line %d", line)
	return ref{}
}

func TestCFGBranchDominance(t *testing.T) {
	const src = `package p

func f(c bool) int {
	x := 0
	if c {
		x = 1
	} else {
		x = 2
	}
	y := x
	return y
}
`
	fset, _, fd := parseFunc(t, src, "f")
	g := BuildCFG(fd.Body)
	init := refOnLine(t, g, fset, lineOf(t, src, "x := 0"))
	then := refOnLine(t, g, fset, lineOf(t, src, "x = 1"))
	els := refOnLine(t, g, fset, lineOf(t, src, "x = 2"))
	use := refOnLine(t, g, fset, lineOf(t, src, "y := x"))

	if !g.Dominates(init, use) {
		t.Error("x := 0 must dominate y := x")
	}
	if g.Dominates(then, use) {
		t.Error("a branch assignment must not dominate the join")
	}
	if !g.CanPrecede(then, use) || !g.CanPrecede(els, use) {
		t.Error("both branch assignments can precede the join")
	}
	if g.CanPrecede(then, els) || g.CanPrecede(els, then) {
		t.Error("exclusive branches must not precede each other")
	}
	if g.CanPrecede(use, init) {
		t.Error("no path leads from the join back to the entry")
	}
}

func TestCFGLoopReachability(t *testing.T) {
	const src = `package p

func g(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}
`
	fset, _, fd := parseFunc(t, src, "g")
	g := BuildCFG(fd.Body)
	body := refOnLine(t, g, fset, lineOf(t, src, "s += i"))
	ret := refOnLine(t, g, fset, lineOf(t, src, "return s"))

	if g.Dominates(body, ret) {
		t.Error("a conditional loop body must not dominate the loop exit")
	}
	if !g.CanPrecede(body, ret) {
		t.Error("the loop body can precede the statement after the loop")
	}
	if !g.CanPrecede(body, body) {
		t.Error("a loop body reaches itself through the back edge")
	}
	if g.CanPrecede(ret, body) {
		t.Error("nothing after the loop reaches back into it")
	}
}

func TestReachDefs(t *testing.T) {
	const src = `package p

func f(c bool) int {
	x := 0
	if c {
		x = 1
	}
	y := x
	x = 3
	z := x
	return y + z
}
`
	fset, info, fd := parseFunc(t, src, "f")
	g := BuildCFG(fd.Body)
	rd := newReachDefs(g, info, fd.Recv, fd.Type)

	var xObj *types.Var
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "x" && xObj == nil {
			xObj, _ = info.Defs[id].(*types.Var)
		}
		return true
	})
	if xObj == nil {
		t.Fatal("no definition of x found")
	}

	rhsSet := func(sites []int) map[string]bool {
		out := make(map[string]bool)
		for _, s := range sites {
			if rhs := rd.sites[s].rhs; rhs != nil {
				out[exprText(rhs)] = true
			}
		}
		return out
	}

	atY := refOnLine(t, g, fset, lineOf(t, src, "y := x"))
	got := rhsSet(rd.defsReaching(xObj, atY))
	if len(got) != 2 || !got["0"] || !got["1"] {
		t.Errorf("defs of x at y := x = %v, want {0, 1}", got)
	}

	atZ := refOnLine(t, g, fset, lineOf(t, src, "z := x"))
	got = rhsSet(rd.defsReaching(xObj, atZ))
	if len(got) != 1 || !got["3"] {
		t.Errorf("defs of x at z := x = %v, want {3}: the redefinition kills earlier defs", got)
	}
}

func TestReachDefsParams(t *testing.T) {
	const src = `package p

func h(a int) int {
	b := a
	if a > 0 {
		a = 2
	}
	c := a + b
	return c
}
`
	fset, info, fd := parseFunc(t, src, "h")
	g := BuildCFG(fd.Body)
	rd := newReachDefs(g, info, fd.Recv, fd.Type)

	var aObj *types.Var
	for _, f := range fd.Type.Params.List {
		for _, name := range f.Names {
			if name.Name == "a" {
				aObj, _ = info.Defs[name].(*types.Var)
			}
		}
	}
	if aObj == nil {
		t.Fatal("no parameter a")
	}

	atB := refOnLine(t, g, fset, lineOf(t, src, "b := a"))
	sites := rd.defsReaching(aObj, atB)
	if len(sites) != 1 || rd.sites[sites[0]].rhs != nil || rd.sites[sites[0]].at.idx != -1 {
		t.Errorf("at b := a only the parameter pseudo-def should reach, got %d sites", len(sites))
	}

	atC := refOnLine(t, g, fset, lineOf(t, src, "c := a + b"))
	if n := len(rd.defsReaching(aObj, atC)); n != 2 {
		t.Errorf("at c := a + b both the parameter and the branch assignment reach, got %d", n)
	}
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroLeak flags goroutines in the concurrency-simulation packages
// whose exit is tied to nothing the spawner controls. A goroutine that
// blocks — on a channel operation, a select with no default, or an
// unconditional loop — must carry at least one exit signal:
//
//   - it receives from a context.Context's Done channel;
//   - every channel it can block on is caller-managed (a parameter, a
//     field, a captured outer variable) or has a counterpart operation
//     (close, send for its receives, receive for its sends) somewhere
//     outside the goroutine in the spawning function;
//   - it calls wg.Done() on a WaitGroup the spawning function Waits on.
//
// Without any of these, nothing ever unblocks the goroutine: each
// spawn leaks a parked goroutine and, in the rank-per-goroutine
// simulator, a leaked rank keeps mailboxes and fault hooks alive for
// the rest of the process. Goroutines with no blocking construct at
// all are exempt — they run to completion on their own.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "goroutines spawned in the simulator packages must tie their exit to " +
		"the spawner: a context cancel, a channel close or counterpart " +
		"operation, or a WaitGroup join; a blocking goroutine with none of " +
		"these leaks a parked rank forever",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if !pkgInScope(pass.Pkg, concurrencySimPkgPrefixes) {
		return nil
	}
	for _, unit := range buildFuncUnits(pass) {
		var goStmts []*ast.GoStmt
		walkOwnBody(unit.Body, func(n ast.Node) {
			if gs, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, gs)
			}
		})
		for _, gs := range goStmts {
			if fname := pass.Fset.Position(gs.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
				continue // test goroutines are joined by the test harness idioms
			}
			checkGoroutine(pass, unit, gs)
		}
	}
	return nil
}

// blockOp is one potentially-blocking construct in a goroutine body.
type blockOp struct {
	node ast.Node
	// chanExpr is the channel operand for channel ops (nil for bare
	// infinite loops and selects).
	chanExpr ast.Expr
	isSend   bool
	// isRange: only a close terminates a range; counterpart sends
	// merely feed it.
	isRange bool
	what    string
	// children are the comm arms of a select: the select blocks only
	// if every arm does, so it is released when any child is.
	children []*blockOp
}

func checkGoroutine(pass *Pass, unit *funcUnit, gs *ast.GoStmt) {
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return // spawned named functions are the callee's responsibility
	}
	info := pass.TypesInfo

	ops, hasCtxDone := goroutineBlockOps(info, lit)
	if len(ops) == 0 {
		return // runs to completion unaided
	}
	if hasCtxDone {
		return // exit wired to a context cancel
	}
	if waitGroupJoined(info, unit.Body, lit) {
		return // exit joined via wg.Done / wg.Wait
	}
	for _, op := range ops {
		if blockOpReleased(info, unit.Body, lit, op) {
			continue
		}
		pass.Reportf(gs.Pos(),
			"goroutine may never exit: it blocks on %s with no context cancel, channel close or counterpart in the spawner, and no WaitGroup join (goroutine leak)",
			op.what)
		return
	}
}

// goroutineBlockOps collects the potentially-blocking constructs at
// the goroutine's own nesting level, and whether any receive is from a
// context Done channel.
func goroutineBlockOps(info *types.Info, lit *ast.FuncLit) (ops []*blockOp, hasCtxDone bool) {
	var inspect func(n ast.Node)
	inspect = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.FuncLit:
				if m != n {
					return false
				}
			case *ast.SelectStmt:
				if hasDefaultClause(v) {
					// Never blocks; its arms poll. A polled ctx.Done
					// still counts as the goroutine's exit signal, and
					// only the clause bodies can hold blocking
					// constructs.
					for _, c := range v.Body.List {
						cc, ok := c.(*ast.CommClause)
						if !ok {
							continue
						}
						if cc.Comm != nil {
							if _, ctx := selectArmOp(info, cc.Comm); ctx {
								hasCtxDone = true
							}
						}
						for _, stmt := range cc.Body {
							inspect(stmt)
						}
					}
					return false
				}
				sel := &blockOp{node: v, what: "a select with no default"}
				for _, c := range v.Body.List {
					cc, ok := c.(*ast.CommClause)
					if !ok || cc.Comm == nil {
						continue
					}
					if child, ctx := selectArmOp(info, cc.Comm); ctx {
						hasCtxDone = true
					} else if child != nil {
						sel.children = append(sel.children, child)
					}
					for _, stmt := range cc.Body {
						inspect(stmt)
					}
				}
				ops = append(ops, sel)
				return false
			case *ast.SendStmt:
				ops = append(ops, &blockOp{node: v, chanExpr: v.Chan, isSend: true,
					what: "a channel send"})
			case *ast.UnaryExpr:
				if v.Op != token.ARROW {
					break
				}
				if isCtxDoneCall(info, v.X) {
					hasCtxDone = true
					break
				}
				ops = append(ops, &blockOp{node: v, chanExpr: v.X, what: "a channel receive"})
			case *ast.RangeStmt:
				if isChanExpr(info, v.X) {
					ops = append(ops, &blockOp{node: v, chanExpr: v.X, isRange: true,
						what: "a range over a channel"})
				}
			case *ast.ForStmt:
				if v.Cond == nil {
					ops = append(ops, &blockOp{node: v, what: "an unconditional loop"})
				}
			}
			return true
		})
	}
	inspect(lit.Body)
	return ops, hasCtxDone
}

// selectArmOp classifies one select comm statement as a blocking arm,
// or as a context-Done receive (ctx=true).
func selectArmOp(info *types.Info, comm ast.Stmt) (op *blockOp, ctx bool) {
	switch v := comm.(type) {
	case *ast.SendStmt:
		return &blockOp{node: v, chanExpr: v.Chan, isSend: true, what: "a channel send"}, false
	case *ast.ExprStmt:
		if ue, ok := ast.Unparen(v.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			if isCtxDoneCall(info, ue.X) {
				return nil, true
			}
			return &blockOp{node: v, chanExpr: ue.X, what: "a channel receive"}, false
		}
	case *ast.AssignStmt:
		if len(v.Rhs) == 1 {
			if ue, ok := ast.Unparen(v.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				if isCtxDoneCall(info, ue.X) {
					return nil, true
				}
				return &blockOp{node: v, chanExpr: ue.X, what: "a channel receive"}, false
			}
		}
	}
	return nil, false
}

// blockOpReleased reports whether op has an exit signal, treating a
// select as released when any arm is.
func blockOpReleased(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit, op *blockOp) bool {
	if len(op.children) > 0 {
		for _, c := range op.children {
			if blockOpReleased(info, body, lit, c) {
				return true
			}
		}
		return false
	}
	return goroutineOpReleased(info, body, lit, op)
}

func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isCtxDoneCall reports whether e is ctx.Done() on a context.Context.
func isCtxDoneCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isChanExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// waitGroupJoined reports whether the goroutine Done's a WaitGroup the
// spawning function Waits on outside the goroutine.
func waitGroupJoined(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit) bool {
	dones := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if wg := waitGroupRecv(info, call, "Done"); wg != nil {
				dones[wg] = true
			}
		}
		return true
	})
	if len(dones) == 0 {
		return false
	}
	joined := false
	ast.Inspect(body, func(m ast.Node) bool {
		if m == lit {
			return false // the goroutine's own Waits don't join it
		}
		if call, ok := m.(*ast.CallExpr); ok {
			if wg := waitGroupRecv(info, call, "Wait"); wg != nil && dones[wg] {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// goroutineOpReleased reports whether one blocking op has an exit
// signal: a caller-managed channel, or a counterpart operation on the
// same channel outside the goroutine literal.
func goroutineOpReleased(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit, op *blockOp) bool {
	if op.chanExpr == nil {
		return false // bare infinite loop: nothing external ends it
	}
	id := rootIdent(op.chanExpr)
	if id == nil {
		return true // channel from a call or field chain: caller-managed
	}
	obj, ok := info.ObjectOf(id).(*types.Var)
	if !ok || obj == nil {
		return true
	}
	// A variable declared outside the spawning function's body — a
	// parameter, receiver, package variable, or an outer function's
	// local — is managed beyond this function's horizon.
	if obj.Pos() < body.Pos() || obj.Pos() >= body.End() {
		return true
	}
	if _, isChan := obj.Type().Underlying().(*types.Chan); !isChan {
		return true // selector/index rooted at a non-channel local: unknown structure
	}
	// Counterpart search across the spawning function, excluding the
	// goroutine literal itself.
	released := false
	ast.Inspect(body, func(m ast.Node) bool {
		if m == lit || released {
			return false
		}
		switch v := m.(type) {
		case *ast.CallExpr:
			if bid, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[bid].(*types.Builtin); ok && b.Name() == "close" && len(v.Args) == 1 {
					if cid := rootIdent(v.Args[0]); cid != nil && info.ObjectOf(cid) == obj {
						released = true
					}
				}
			}
		case *ast.SendStmt:
			if !op.isSend && !op.isRange {
				if cid := rootIdent(v.Chan); cid != nil && info.ObjectOf(cid) == obj {
					released = true
				}
			}
		case *ast.UnaryExpr:
			if op.isSend && v.Op == token.ARROW {
				if cid := rootIdent(v.X); cid != nil && info.ObjectOf(cid) == obj {
					released = true
				}
			}
		case *ast.RangeStmt:
			if op.isSend && isChanExpr(info, v.X) {
				if cid := rootIdent(v.X); cid != nil && info.ObjectOf(cid) == obj {
					released = true
				}
			}
		}
		return !released
	})
	return released
}

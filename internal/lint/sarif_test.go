package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
)

func TestWriteSARIF(t *testing.T) {
	findings := []Finding{{
		File: "internal/mpi/mpi.go", Line: 3, Col: 7,
		Analyzer: "poolalias", Message: "a pooled buffer escapes",
	}}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, All(), findings); err != nil {
		t.Fatal(err)
	}

	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("invalid SARIF JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs, want 2.1.0 with 1 run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "scatterlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per analyzer plus the driver's own rule for malformed
	// directives.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	// The lock-set analyzers must be first-class rules so their
	// findings and suppressions survive the SARIF/baseline pipelines.
	ids := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, name := range []string{"lockguard", "lockorder", "unlockpath"} {
		if !ids[name] {
			t.Errorf("SARIF rules missing %q", name)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "poolalias" || res.Level != "error" {
		t.Errorf("result ruleId=%q level=%q", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/mpi/mpi.go" || loc.Region.StartLine != 3 {
		t.Errorf("location = %s:%d", loc.ArtifactLocation.URI, loc.Region.StartLine)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out []Finding
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil findings must still encode as an array: %v", err)
	}
	if out == nil {
		t.Error("expected [] not null for an empty findings set")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	accepted := []Finding{
		{File: "x.go", Line: 1, Analyzer: "detorder", Message: "m1"},
		{File: "x.go", Line: 9, Analyzer: "detorder", Message: "m1"},
	}
	if err := WriteBaselineFile(path, accepted); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Matching is line-agnostic: the same findings on shifted lines
	// stay excused.
	shifted := []Finding{
		{File: "x.go", Line: 4, Analyzer: "detorder", Message: "m1"},
		{File: "x.go", Line: 40, Analyzer: "detorder", Message: "m1"},
	}
	if got := b.Filter(shifted); len(got) != 0 {
		t.Errorf("baselined findings survived the filter: %v", got)
	}

	// The baseline is a multiset: a third identical occurrence exceeds
	// the budget of two.
	extra := append(shifted, Finding{File: "x.go", Line: 80, Analyzer: "detorder", Message: "m1"})
	if got := b.Filter(extra); len(got) != 1 {
		t.Errorf("the third identical finding must surface, got %v", got)
	}

	// Unrelated findings pass through untouched.
	other := []Finding{{File: "y.go", Line: 2, Analyzer: "poolalias", Message: "m2"}}
	if got := b.Filter(other); len(got) != 1 {
		t.Errorf("unbaselined finding was dropped: %v", got)
	}
}

func TestBaselineRoundTripLockSet(t *testing.T) {
	// The lock-set analyzer names round-trip through the baseline file
	// and matching stays analyzer-keyed: an accepted lockguard finding
	// never excuses the same message from lockorder or unlockpath.
	path := filepath.Join(t.TempDir(), "baseline.json")
	accepted := []Finding{
		{File: "engine.go", Line: 10, Analyzer: "lockguard", Message: "read of stats without (core.Engine).mu held"},
		{File: "plan.go", Line: 20, Analyzer: "unlockpath", Message: "return with tc.mu held"},
	}
	if err := WriteBaselineFile(path, accepted); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	shifted := []Finding{
		{File: "engine.go", Line: 31, Analyzer: "lockguard", Message: "read of stats without (core.Engine).mu held"},
		{File: "plan.go", Line: 7, Analyzer: "unlockpath", Message: "return with tc.mu held"},
	}
	if got := b.Filter(shifted); len(got) != 0 {
		t.Errorf("baselined lock-set findings survived the filter: %v", got)
	}
	crossed := []Finding{
		{File: "engine.go", Line: 10, Analyzer: "lockorder", Message: "read of stats without (core.Engine).mu held"},
	}
	if got := b.Filter(crossed); len(got) != 1 {
		t.Errorf("a lockorder finding must not match a lockguard baseline entry: %v", got)
	}
}

package lint

import (
	"strings"
	"testing"
)

func TestMPIErrCheck(t *testing.T) {
	runFixture(t, MPIErrCheck, fixturePath("mpierrcheck"), "repro/internal/lint/testdata/mpierrcheck")
}

func TestCollectiveOrder(t *testing.T) {
	runFixture(t, CollectiveOrder, fixturePath("collectiveorder"), "repro/internal/lint/testdata/collectiveorder")
}

func TestCollectiveDeadlock(t *testing.T) {
	// Checked under an mpi-scoped path so the happens-before rules
	// apply; the failfast shape must be caught by proof, not pattern.
	runFixture(t, CollectiveDeadlock, fixturePath("collectivedeadlock"), "repro/internal/mpi/fixture")
}

func TestCollectiveDeadlockOutOfScope(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("collectivedeadlock"), "repro/internal/lint/testdata/collectivedeadlock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{CollectiveDeadlock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside the concurrency-sim packages: %s", Format(pkg.Fset, d))
	}
}

func TestGoroLeak(t *testing.T) {
	runFixture(t, GoroLeak, fixturePath("goroleak"), "repro/internal/chaos/fixture")
}

func TestBandCheck(t *testing.T) {
	// A core-scoped path activates the divisor-guard rule alongside the
	// entry-point interval proofs.
	runFixture(t, BandCheck, fixturePath("bandcheck"), "repro/internal/core/fixture")
}

func TestSimClock(t *testing.T) {
	// The same fixture fires only when checked under a simulated-time
	// import path; the wants in the file describe that run.
	runFixture(t, SimClock, fixturePath("simclock"), "repro/internal/fault/fixture")
}

func TestSimClockNeutralPath(t *testing.T) {
	// Under a path outside internal/{mpi,simgrid,fault} the analyzer
	// must stay silent, so every want in the fixture goes unmatched —
	// assert directly instead of via runFixture.
	pkg, err := sharedLoader.LoadDir(fixturePath("simclock"), "repro/internal/lint/testdata/simclock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{SimClock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside a simulated-time package: %s", Format(pkg.Fset, d))
	}
}

func TestCostInvariant(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("costinvariant"), "repro/internal/lint/testdata/costinvariant")
}

func TestMutexChan(t *testing.T) {
	runFixture(t, MutexChan, fixturePath("mutexchan"), "repro/internal/lint/testdata/mutexchan")
}

func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("directives"), "repro/internal/lint/testdata/directives")
}

func TestMalformedDirective(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("malformed"), "repro/internal/lint/testdata/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{CostInvariant})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the malformed directive): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "scatterlint" {
		t.Errorf("malformed directive attributed to %q, want scatterlint", d.Analyzer)
	}
	if !strings.Contains(d.Message, "malformed") {
		t.Errorf("message %q does not mention the malformation", d.Message)
	}
}

func TestPoolAlias(t *testing.T) {
	runFixture(t, PoolAlias, fixturePath("poolalias"), "repro/internal/lint/testdata/poolalias")
}

func TestDetOrder(t *testing.T) {
	// Checked under a chaos-scoped path so the map-order and
	// arrival-order rules apply; the wants describe that run.
	runFixture(t, DetOrder, fixturePath("detorder"), "repro/internal/chaos/fixture")
}

func TestDetOrderOutOfScope(t *testing.T) {
	// The same fixture under a neutral path is out of ordering scope
	// (and has no rank functions), so the analyzer must stay silent.
	pkg, err := sharedLoader.LoadDir(fixturePath("detorder"), "repro/internal/lint/testdata/detorder")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DetOrder})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside the ordering-scope packages: %s", Format(pkg.Fset, d))
	}
}

func TestDetOrderWallClock(t *testing.T) {
	runFixture(t, DetOrder, fixturePath("detorderwall"), "repro/internal/lint/testdata/detorderwall")
}

func TestLedgerOrder(t *testing.T) {
	runFixture(t, LedgerOrder, fixturePath("ledgerorder"), "repro/internal/lint/testdata/ledgerorder")
}

func TestAnchoredDirective(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("anchored"), "repro/internal/lint/testdata/anchored")
}

func TestDirectiveAudit(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("staledir"), "repro/internal/lint/testdata/staledir")
	if err != nil {
		t.Fatal(err)
	}
	diags, audits, err := RunAnalyzersAudit(pkg, []*Analyzer{CostInvariant})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", Format(pkg.Fset, d))
	}
	if len(audits) != 3 {
		t.Fatalf("got %d directive audits, want 3", len(audits))
	}
	if !audits[0].Used {
		t.Error("the first directive suppresses a finding and must audit as used")
	}
	if audits[1].Used {
		t.Error("the second directive suppresses nothing and must audit as stale")
	}
	if len(audits[1].Unknown) != 0 {
		t.Errorf("the second directive names a real analyzer, got unknown %v", audits[1].Unknown)
	}
	if len(audits[2].Unknown) != 1 || audits[2].Unknown[0] != "costinvariantt" {
		t.Errorf("the third directive's typo must be reported unknown, got %v", audits[2].Unknown)
	}
}

func TestNewAnalyzersCleanOnRealPackages(t *testing.T) {
	// The live tree is the negative fixture: core's pooled plan rows,
	// fault's ledger and mpi's collectives are the canonical clean
	// shapes each analyzer must accept without suppressions.
	pkgs, err := sharedLoader.Load("repro/internal/core", "repro/internal/fault", "repro/internal/mpi")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, []*Analyzer{PoolAlias, DetOrder, LedgerOrder})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Path, Format(pkg.Fset, d))
		}
	}
}

func TestLoaderLoadsModulePackages(t *testing.T) {
	pkgs, err := sharedLoader.Load("repro/internal/cost")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/cost" {
		t.Fatalf("Load(repro/internal/cost) = %v", pkgs)
	}
	if pkgs[0].Pkg == nil || pkgs[0].Info == nil {
		t.Fatal("loaded package missing type information")
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("All() returned %d analyzers, want 11", len(all))
	}
	for _, a := range all {
		if ByName(a.Name) != a {
			t.Errorf("analyzer %q not registered in ByName", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete", a.Name)
		}
	}
}

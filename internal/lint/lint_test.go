package lint

import (
	"strings"
	"testing"
)

func TestMPIErrCheck(t *testing.T) {
	runFixture(t, MPIErrCheck, fixturePath("mpierrcheck"), "repro/internal/lint/testdata/mpierrcheck")
}

func TestCollectiveOrder(t *testing.T) {
	runFixture(t, CollectiveOrder, fixturePath("collectiveorder"), "repro/internal/lint/testdata/collectiveorder")
}

func TestSimClock(t *testing.T) {
	// The same fixture fires only when checked under a simulated-time
	// import path; the wants in the file describe that run.
	runFixture(t, SimClock, fixturePath("simclock"), "repro/internal/fault/fixture")
}

func TestSimClockNeutralPath(t *testing.T) {
	// Under a path outside internal/{mpi,simgrid,fault} the analyzer
	// must stay silent, so every want in the fixture goes unmatched —
	// assert directly instead of via runFixture.
	pkg, err := sharedLoader.LoadDir(fixturePath("simclock"), "repro/internal/lint/testdata/simclock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{SimClock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside a simulated-time package: %s", Format(pkg.Fset, d))
	}
}

func TestCostInvariant(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("costinvariant"), "repro/internal/lint/testdata/costinvariant")
}

func TestMutexChan(t *testing.T) {
	runFixture(t, MutexChan, fixturePath("mutexchan"), "repro/internal/lint/testdata/mutexchan")
}

func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("directives"), "repro/internal/lint/testdata/directives")
}

func TestMalformedDirective(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("malformed"), "repro/internal/lint/testdata/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{CostInvariant})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the malformed directive): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "scatterlint" {
		t.Errorf("malformed directive attributed to %q, want scatterlint", d.Analyzer)
	}
	if !strings.Contains(d.Message, "malformed") {
		t.Errorf("message %q does not mention the malformation", d.Message)
	}
}

func TestLoaderLoadsModulePackages(t *testing.T) {
	pkgs, err := sharedLoader.Load("repro/internal/cost")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/cost" {
		t.Fatalf("Load(repro/internal/cost) = %v", pkgs)
	}
	if pkgs[0].Pkg == nil || pkgs[0].Info == nil {
		t.Fatal("loaded package missing type information")
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	all := All()
	if len(all) != 5 {
		t.Fatalf("All() returned %d analyzers, want 5", len(all))
	}
	for _, a := range all {
		if ByName(a.Name) != a {
			t.Errorf("analyzer %q not registered in ByName", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete", a.Name)
		}
	}
}

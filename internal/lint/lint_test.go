package lint

import (
	"strings"
	"testing"
)

func TestMPIErrCheck(t *testing.T) {
	runFixture(t, MPIErrCheck, fixturePath("mpierrcheck"), "repro/internal/lint/testdata/mpierrcheck")
}

func TestCollectiveOrder(t *testing.T) {
	runFixture(t, CollectiveOrder, fixturePath("collectiveorder"), "repro/internal/lint/testdata/collectiveorder")
}

func TestCollectiveDeadlock(t *testing.T) {
	// Checked under an mpi-scoped path so the happens-before rules
	// apply; the failfast shape must be caught by proof, not pattern.
	runFixture(t, CollectiveDeadlock, fixturePath("collectivedeadlock"), "repro/internal/mpi/fixture")
}

func TestCollectiveDeadlockOutOfScope(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("collectivedeadlock"), "repro/internal/lint/testdata/collectivedeadlock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{CollectiveDeadlock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside the concurrency-sim packages: %s", Format(pkg.Fset, d))
	}
}

func TestGoroLeak(t *testing.T) {
	runFixture(t, GoroLeak, fixturePath("goroleak"), "repro/internal/chaos/fixture")
}

func TestBandCheck(t *testing.T) {
	// A core-scoped path activates the divisor-guard rule alongside the
	// entry-point interval proofs.
	runFixture(t, BandCheck, fixturePath("bandcheck"), "repro/internal/core/fixture")
}

func TestSimClock(t *testing.T) {
	// The same fixture fires only when checked under a simulated-time
	// import path; the wants in the file describe that run.
	runFixture(t, SimClock, fixturePath("simclock"), "repro/internal/fault/fixture")
}

func TestSimClockNeutralPath(t *testing.T) {
	// Under a path outside internal/{mpi,simgrid,fault} the analyzer
	// must stay silent, so every want in the fixture goes unmatched —
	// assert directly instead of via runFixture.
	pkg, err := sharedLoader.LoadDir(fixturePath("simclock"), "repro/internal/lint/testdata/simclock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{SimClock})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside a simulated-time package: %s", Format(pkg.Fset, d))
	}
}

func TestCostInvariant(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("costinvariant"), "repro/internal/lint/testdata/costinvariant")
}

func TestMutexChan(t *testing.T) {
	runFixture(t, MutexChan, fixturePath("mutexchan"), "repro/internal/lint/testdata/mutexchan")
}

func TestIgnoreDirectives(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("directives"), "repro/internal/lint/testdata/directives")
}

func TestMalformedDirective(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("malformed"), "repro/internal/lint/testdata/malformed")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{CostInvariant})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 (the malformed directive): %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "scatterlint" {
		t.Errorf("malformed directive attributed to %q, want scatterlint", d.Analyzer)
	}
	if !strings.Contains(d.Message, "malformed") {
		t.Errorf("message %q does not mention the malformation", d.Message)
	}
}

func TestPoolAlias(t *testing.T) {
	runFixture(t, PoolAlias, fixturePath("poolalias"), "repro/internal/lint/testdata/poolalias")
}

func TestDetOrder(t *testing.T) {
	// Checked under a chaos-scoped path so the map-order and
	// arrival-order rules apply; the wants describe that run.
	runFixture(t, DetOrder, fixturePath("detorder"), "repro/internal/chaos/fixture")
}

func TestDetOrderOutOfScope(t *testing.T) {
	// The same fixture under a neutral path is out of ordering scope
	// (and has no rank functions), so the analyzer must stay silent.
	pkg, err := sharedLoader.LoadDir(fixturePath("detorder"), "repro/internal/lint/testdata/detorder")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DetOrder})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("diagnostic outside the ordering-scope packages: %s", Format(pkg.Fset, d))
	}
}

func TestDetOrderWallClock(t *testing.T) {
	runFixture(t, DetOrder, fixturePath("detorderwall"), "repro/internal/lint/testdata/detorderwall")
}

func TestLedgerOrder(t *testing.T) {
	runFixture(t, LedgerOrder, fixturePath("ledgerorder"), "repro/internal/lint/testdata/ledgerorder")
}

func TestAnchoredDirective(t *testing.T) {
	runFixture(t, CostInvariant, fixturePath("anchored"), "repro/internal/lint/testdata/anchored")
}

func TestDirectiveAudit(t *testing.T) {
	pkg, err := sharedLoader.LoadDir(fixturePath("staledir"), "repro/internal/lint/testdata/staledir")
	if err != nil {
		t.Fatal(err)
	}
	diags, audits, err := RunAnalyzersAudit(pkg, []*Analyzer{CostInvariant})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", Format(pkg.Fset, d))
	}
	if len(audits) != 3 {
		t.Fatalf("got %d directive audits, want 3", len(audits))
	}
	if !audits[0].Used {
		t.Error("the first directive suppresses a finding and must audit as used")
	}
	if audits[1].Used {
		t.Error("the second directive suppresses nothing and must audit as stale")
	}
	if len(audits[1].Unknown) != 0 {
		t.Errorf("the second directive names a real analyzer, got unknown %v", audits[1].Unknown)
	}
	if len(audits[2].Unknown) != 1 || audits[2].Unknown[0] != "costinvariantt" {
		t.Errorf("the third directive's typo must be reported unknown, got %v", audits[2].Unknown)
	}
}

func TestNewAnalyzersCleanOnRealPackages(t *testing.T) {
	// The live tree is the negative fixture: core's pooled plan rows,
	// fault's ledger and mpi's collectives are the canonical clean
	// shapes each analyzer must accept without suppressions.
	pkgs, err := sharedLoader.Load("repro/internal/core", "repro/internal/fault", "repro/internal/mpi")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("loaded %d packages, want 3", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, []*Analyzer{PoolAlias, DetOrder, LedgerOrder})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Path, Format(pkg.Fset, d))
		}
	}
}

func TestLockGuard(t *testing.T) {
	runFixture(t, LockGuard, fixturePath("lockguard"), "repro/internal/lint/testdata/lockguard")
}

func TestLockOrder(t *testing.T) {
	runFixture(t, LockOrder, fixturePath("lockorder"), "repro/internal/lint/testdata/lockorder")
}

func TestUnlockPath(t *testing.T) {
	runFixture(t, UnlockPath, fixturePath("unlockpath"), "repro/internal/lint/testdata/unlockpath")
}

func TestLockSetAnalyzersCleanOnRealPackages(t *testing.T) {
	// The six annotated packages are the negative fixture: every
	// mutex-guarded field carries its //scatterlint:guardedby
	// annotation, every lock is released on every path, and the lock
	// graph is acyclic — so the lock-set analyzers must accept the
	// live tree (modulo the reasoned in-source suppressions, which
	// the driver applies here exactly as in CI).
	pkgs, err := sharedLoader.Load(
		"repro/internal/core", "repro/internal/serve", "repro/internal/store",
		"repro/internal/mpi", "repro/internal/monitor", "repro/internal/chaos",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 6 {
		t.Fatalf("loaded %d packages, want 6", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, []*Analyzer{LockGuard, LockOrder, UnlockPath})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s", pkg.Path, Format(pkg.Fset, d))
		}
	}
}

func TestLockSetDirectivesAuditUsed(t *testing.T) {
	// The reasoned lockguard suppressions in internal/core are live
	// code, not fixtures: each must keep suppressing a real finding, so
	// -ignoreaudit reports every one as used and none as unknown. A
	// refactor that makes one stale (or renames the analyzer) fails here.
	pkgs, err := sharedLoader.Load("repro/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	_, audits, err := RunAnalyzersAudit(pkgs[0], []*Analyzer{LockGuard, LockOrder, UnlockPath})
	if err != nil {
		t.Fatal(err)
	}
	lockset := 0
	for _, a := range audits {
		keyed := false
		for _, name := range a.Analyzers {
			if name == "lockguard" || name == "lockorder" || name == "unlockpath" {
				keyed = true
			}
		}
		if !keyed {
			continue
		}
		lockset++
		if !a.Used {
			t.Errorf("stale lock-set directive at %v: %q", pkgs[0].Fset.Position(a.Pos), a.Reason)
		}
		if len(a.Unknown) != 0 {
			t.Errorf("lock-set directive names unknown analyzers %v", a.Unknown)
		}
	}
	if lockset < 3 {
		t.Errorf("found %d lock-set directives in internal/core, want at least the 3 reasoned plan.go suppressions", lockset)
	}
}

func TestLoaderLoadsModulePackages(t *testing.T) {
	pkgs, err := sharedLoader.Load("repro/internal/cost")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/cost" {
		t.Fatalf("Load(repro/internal/cost) = %v", pkgs)
	}
	if pkgs[0].Pkg == nil || pkgs[0].Info == nil {
		t.Fatal("loaded package missing type information")
	}
}

func TestAllAnalyzersRegistered(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("All() returned %d analyzers, want 14", len(all))
	}
	for _, a := range all {
		if ByName(a.Name) != a {
			t.Errorf("analyzer %q not registered in ByName", a.Name)
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q incomplete", a.Name)
		}
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// VetConfig mirrors the JSON compilation-unit description `go vet`
// hands to a -vettool (the unitchecker protocol): one package's
// sources plus the export-data files of everything it imports. Only
// the fields scatterlint consumes are declared; unknown fields are
// ignored by encoding/json.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit analyzes the single compilation unit described by the
// vet.cfg file, printing diagnostics in go vet's plain format (or the
// JSON tree with jsonOut) and returning the process exit code: 0 for
// clean, 1 for findings. Operational errors are returned separately.
//
// go vet invokes the tool once per package in the build graph; units
// marked VetxOnly exist only to propagate facts, which scatterlint
// does not use, so they are acknowledged (the facts file must still
// appear) and skipped.
func RunUnit(cfgFile string, analyzers []*Analyzer, jsonOut bool, stdout, stderr io.Writer) (int, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return 0, fmt.Errorf("lint: cannot decode vet config %s: %v", cfgFile, err)
	}

	// The go command caches the (possibly empty) facts file as the vet
	// action's output; it must exist even though scatterlint carries no
	// facts across packages.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	pkg, err := typecheckUnit(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return 0, err
	}

	if jsonOut {
		printJSONTree(stdout, pkg.Fset, cfg.ID, analyzers, diags)
		return 0, nil
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, Format(pkg.Fset, d))
	}
	if len(diags) > 0 {
		return 1, nil
	}
	return 0, nil
}

// typecheckUnit parses and type-checks the unit from the config, using
// the compiler export data go vet already produced for its imports.
func typecheckUnit(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	conf := types.Config{Importer: imp, GoVersion: cfg.GoVersion}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// jsonDiagnostic is the per-finding schema of go vet -json output.
type jsonDiagnostic struct {
	Category string `json:"category,omitempty"`
	Posn     string `json:"posn"`
	Message  string `json:"message"`
}

// printJSONTree renders the {"pkgID": {"analyzer": [findings]}} tree
// go vet -json expects.
func printJSONTree(w io.Writer, fset *token.FileSet, id string, analyzers []*Analyzer, diags []Diagnostic) {
	byAnalyzer := make(map[string][]jsonDiagnostic)
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	tree := map[string]map[string][]jsonDiagnostic{}
	if len(byAnalyzer) > 0 {
		tree[id] = byAnalyzer
	}
	data, _ := json.MarshalIndent(tree, "", "\t")
	fmt.Fprintf(w, "%s\n", data)
}

package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// writeTestModule lays out a disposable module named repro (so the
// scope-gated analyzers fire) with three packages: alpha (in goroleak
// scope, carrying one real finding and one suppressed one), beta
// (importing alpha, with an in-package test), and gamma (independent).
func writeTestModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module repro\n\ngo 1.22\n",
		"internal/chaos/alpha/alpha.go": `// Package alpha carries one goroutine leak and one suppressed one.
package alpha

// Leak parks a goroutine forever: the channel is local and nobody
// closes or sends.
func Leak() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
}

// Excused is the same shape under a directive.
func Excused() {
	ch := make(chan int)
	//scatterlint:ignore goroleak deliberate leak to exercise the audit path
	go func() {
		<-ch
	}()
}

// N is imported by beta.
const N = 3
`,
		"internal/beta/beta.go": `// Package beta depends on alpha.
package beta

import "repro/internal/chaos/alpha"

// Total is N scaled.
func Total() int { return alpha.N * 2 }
`,
		"internal/beta/beta_test.go": `package beta

import "testing"

func TestTotal(t *testing.T) {
	if Total() != 6 {
		t.Fatal("want 6")
	}
}
`,
		"internal/gamma/gamma.go": `// Package gamma depends on nothing.
package gamma

// Twice doubles.
func Twice(x int) int { return x + x }
`,
	}
	for name, content := range files {
		full := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCached runs the full suite over the module with a fresh loader,
// simulating a separate scatterlint process per invocation.
func runCached(t *testing.T, dir string, cache *Cache) ([]Finding, []AuditRecord, CacheStats) {
	t.Helper()
	l := NewLoader(dir)
	l.IncludeTests = true
	findings, audits, stats, err := RunCachedAnalysis(l, cache, All(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	return findings, audits, stats
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCacheColdWarmIdentical(t *testing.T) {
	dir := writeTestModule(t)
	cache := &Cache{Dir: filepath.Join(dir, "lintcache")}

	coldF, coldA, coldStats := runCached(t, dir, cache)
	if coldStats.Hits != 0 || coldStats.Misses != coldStats.Units || coldStats.Units < 3 {
		t.Fatalf("cold stats = %+v, want all misses over >= 3 units", coldStats)
	}
	if len(coldF) != 1 || coldF[0].Analyzer != "goroleak" {
		t.Fatalf("cold findings = %v, want exactly the alpha goroutine leak", coldF)
	}
	if len(coldA) != 1 || !coldA[0].Used {
		t.Fatalf("cold audits = %v, want the one used directive", coldA)
	}

	warmF, warmA, warmStats := runCached(t, dir, cache)
	if warmStats.Misses != 0 || warmStats.Hits != coldStats.Units {
		t.Fatalf("warm stats = %+v, want all hits", warmStats)
	}
	if mustJSON(t, warmF) != mustJSON(t, coldF) {
		t.Errorf("warm findings differ from cold:\ncold: %s\nwarm: %s", mustJSON(t, coldF), mustJSON(t, warmF))
	}
	if mustJSON(t, warmA) != mustJSON(t, coldA) {
		t.Errorf("warm audits differ from cold:\ncold: %s\nwarm: %s", mustJSON(t, coldA), mustJSON(t, warmA))
	}

	// The uncached path must agree byte for byte too.
	plainF, plainA, _ := runCached(t, dir, nil)
	if mustJSON(t, plainF) != mustJSON(t, coldF) || mustJSON(t, plainA) != mustJSON(t, coldA) {
		t.Error("uncached findings/audits differ from the cached runs")
	}
}

func TestCacheInvalidationScope(t *testing.T) {
	dir := writeTestModule(t)
	cache := &Cache{Dir: filepath.Join(dir, "lintcache")}
	_, _, cold := runCached(t, dir, cache)

	// Editing alpha must invalidate alpha and its importer beta, but
	// leave the independent gamma cached.
	alphaFile := filepath.Join(dir, "internal/chaos/alpha/alpha.go")
	src, err := os.ReadFile(alphaFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(alphaFile, append(src, []byte("\n// M doubles N.\nconst M = N * 2\n")...), 0o644); err != nil {
		t.Fatal(err)
	}

	editF, editA, editStats := runCached(t, dir, cache)
	if editStats.Misses != 2 {
		t.Errorf("after editing alpha: %d misses, want 2 (alpha and beta)", editStats.Misses)
	}
	if editStats.Hits != cold.Units-2 {
		t.Errorf("after editing alpha: %d hits, want %d (gamma untouched)", editStats.Hits, cold.Units-2)
	}

	// The single-file edit preserves behavior, so a from-scratch run
	// must emit the identical finding multiset.
	freshF, freshA, _ := runCached(t, dir, nil)
	if !reflect.DeepEqual(editF, freshF) || !reflect.DeepEqual(editA, freshA) {
		t.Errorf("post-edit cached run differs from a fresh run:\ncached: %s / %s\nfresh: %s / %s",
			mustJSON(t, editF), mustJSON(t, editA), mustJSON(t, freshF), mustJSON(t, freshA))
	}

	// Editing a test file must invalidate only its own unit.
	betaTest := filepath.Join(dir, "internal/beta/beta_test.go")
	tsrc, err := os.ReadFile(betaTest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(betaTest, append(tsrc, []byte("\nfunc TestAgain(t *testing.T) { TestTotal(t) }\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, testStats := runCached(t, dir, cache)
	if testStats.Misses != 1 {
		t.Errorf("after editing beta's test: %d misses, want 1 (only beta's unit)", testStats.Misses)
	}

	// An annotation-comment-only edit changes no code, but the lock-set
	// analyzers read //scatterlint:guardedby comments, so unit keys hash
	// raw file bytes: the edited unit and its importer must re-analyze.
	src, err = os.ReadFile(alphaFile)
	if err != nil {
		t.Fatal(err)
	}
	annotated := strings.Replace(string(src), "const M = N * 2",
		"const M = N * 2 //scatterlint:guardedby immutable (a comment-only edit)", 1)
	if annotated == string(src) {
		t.Fatal("annotation edit did not apply")
	}
	if err := os.WriteFile(alphaFile, []byte(annotated), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, annStats := runCached(t, dir, cache)
	if annStats.Misses != 2 {
		t.Errorf("after an annotation-comment-only edit: %d misses, want 2 (alpha and beta)", annStats.Misses)
	}
	if annStats.Hits != cold.Units-2 {
		t.Errorf("after an annotation-comment-only edit: %d hits, want %d (gamma untouched)", annStats.Hits, cold.Units-2)
	}
}

package lint

import (
	"go/ast"
	"slices"
	"strings"
)

// CollectiveOrder flags the classic mismatched-collective deadlock: a
// rank-dependent branch (a condition on Comm.Rank or Comm.IsRoot)
// whose two paths execute different collective sequences. Every
// collective in this runtime is a rendezvous — all ranks of the world
// must call it, in the same per-rank order — so a collective reached
// by only some ranks leaves the callers waiting for peers that never
// arrive. The paper's single-port, rank-ordered scatter (Section 2.3)
// makes the ordering part of the contract, not an implementation
// detail.
var CollectiveOrder = &Analyzer{
	Name: "collectiveorder",
	Doc: "collective calls under rank-dependent branches (c.Rank()/c.IsRoot() " +
		"conditions) must be matched on the other path; a collective only some " +
		"ranks reach deadlocks the world",
	Run: runCollectiveOrder,
}

// collectiveFuncs are the rendezvous-based entry points of the mpi
// package: every rank of the world must call them, in matching order.
// Point-to-point Send/Recv/Isend/Irecv are deliberately absent — they
// are rank-directed by design.
var collectiveFuncs = map[string]bool{
	"Scatterv":              true,
	"Scatter":               true,
	"Gatherv":               true,
	"Bcast":                 true,
	"Barrier":               true,
	"Reduce":                true,
	"Allreduce":             true,
	"BcastBinomial":         true,
	"ScattervBinomial":      true,
	"FaultTolerantScatterv": true,
	"FaultTolerantGatherv":  true,
	"FaultTolerantReduce":   true,
	"Split":                 true,
}

func runCollectiveOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			// Visit every statement list so each if statement is checked
			// with its block context (the statements following it).
			switch v := n.(type) {
			case *ast.BlockStmt:
				checkStmtList(pass, v.List)
			case *ast.CaseClause:
				checkStmtList(pass, v.Body)
			case *ast.CommClause:
				checkStmtList(pass, v.Body)
			}
			return true
		})
	}
	return nil
}

// checkStmtList examines each rank-dependent if statement of one
// statement list. Nested blocks are reached by the file-level
// inspection, not here.
func checkStmtList(pass *Pass, stmts []ast.Stmt) {
	for i, s := range stmts {
		ifStmt, ok := s.(*ast.IfStmt)
		if !ok {
			continue
		}
		checkIf(pass, ifStmt, stmts[i+1:])
	}
}

// checkIf compares the collective sequences of a rank-dependent if
// statement's two paths. With an explicit else, the branches are
// compared directly. Without one, the comparison depends on whether
// the branch terminates: a branch ending in return or panic never
// reaches the code after the if, so the statements following the if
// ARE the other path; a branch that falls through executes that code
// too, so any collective inside it is unmatched by construction.
func checkIf(pass *Pass, ifStmt *ast.IfStmt, rest []ast.Stmt) {
	// An else-if chain: hand the nested if the same continuation.
	if elseIf, ok := ifStmt.Else.(*ast.IfStmt); ok {
		checkIf(pass, elseIf, rest)
	}
	if !rankDependent(pass, ifStmt.Cond) {
		return
	}
	thenSeq := collectiveSeqStmt(pass, ifStmt.Body)
	if ifStmt.Else != nil {
		elseSeq := collectiveSeqStmt(pass, ifStmt.Else)
		if !slices.Equal(thenSeq, elseSeq) {
			pass.Reportf(ifStmt.Pos(),
				"rank-dependent branches call mismatched collectives (%s vs %s): ranks taking different paths wait on each other forever",
				describeSeq(thenSeq), describeSeq(elseSeq))
		}
		return
	}
	if terminates(ifStmt.Body) {
		var restSeq []string
		for _, s := range rest {
			restSeq = append(restSeq, collectiveSeqStmt(pass, s)...)
		}
		if !slices.Equal(thenSeq, restSeq) {
			pass.Reportf(ifStmt.Pos(),
				"rank-dependent paths call mismatched collectives (branch: %s, fall-through: %s): ranks taking different paths wait on each other forever",
				describeSeq(thenSeq), describeSeq(restSeq))
		}
		return
	}
	if len(thenSeq) > 0 {
		pass.Reportf(ifStmt.Pos(),
			"collectives (%s) under a rank-dependent condition with no matching path: ranks that skip the branch never arrive at the rendezvous",
			describeSeq(thenSeq))
	}
}

// terminates reports whether a block always transfers control away
// (ends in return or panic), meaning the code after the enclosing if
// is unreachable from it.
func terminates(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// rankDependent reports whether the condition consults the caller's
// rank: a call to (*Comm).Rank or (*Comm).IsRoot anywhere inside it.
func rankDependent(pass *Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if isMPIFunc(fn) && (fn.Name() == "Rank" || fn.Name() == "IsRoot") {
			found = true
			return false
		}
		return true
	})
	return found
}

// collectiveSeqStmt returns the in-order sequence of collective call
// names a statement executes. A nested if whose branches agree
// contributes its sequence once; a disagreeing nested if contributes
// both branches (and is reported in its own right when it is
// rank-dependent).
func collectiveSeqStmt(pass *Pass, s ast.Stmt) []string {
	switch v := s.(type) {
	case nil:
		return nil
	case *ast.BlockStmt:
		var out []string
		for _, st := range v.List {
			out = append(out, collectiveSeqStmt(pass, st)...)
		}
		return out
	case *ast.IfStmt:
		out := collectiveSeqStmt(pass, v.Init)
		out = append(out, collectiveSeqExpr(pass, v.Cond)...)
		thenSeq := collectiveSeqStmt(pass, v.Body)
		elseSeq := collectiveSeqStmt(pass, v.Else)
		if slices.Equal(thenSeq, elseSeq) {
			return append(out, thenSeq...)
		}
		return append(append(out, thenSeq...), elseSeq...)
	case *ast.ForStmt:
		out := collectiveSeqStmt(pass, v.Init)
		out = append(out, collectiveSeqExpr(pass, v.Cond)...)
		out = append(out, collectiveSeqStmt(pass, v.Body)...)
		return append(out, collectiveSeqStmt(pass, v.Post)...)
	case *ast.RangeStmt:
		out := collectiveSeqExpr(pass, v.X)
		return append(out, collectiveSeqStmt(pass, v.Body)...)
	case *ast.SwitchStmt:
		out := collectiveSeqStmt(pass, v.Init)
		out = append(out, collectiveSeqExpr(pass, v.Tag)...)
		return append(out, collectiveSeqStmt(pass, v.Body)...)
	case *ast.TypeSwitchStmt:
		out := collectiveSeqStmt(pass, v.Init)
		out = append(out, collectiveSeqStmt(pass, v.Assign)...)
		return append(out, collectiveSeqStmt(pass, v.Body)...)
	case *ast.SelectStmt:
		return collectiveSeqStmt(pass, v.Body)
	case *ast.CaseClause:
		var out []string
		for _, e := range v.List {
			out = append(out, collectiveSeqExpr(pass, e)...)
		}
		for _, st := range v.Body {
			out = append(out, collectiveSeqStmt(pass, st)...)
		}
		return out
	case *ast.CommClause:
		out := collectiveSeqStmt(pass, v.Comm)
		for _, st := range v.Body {
			out = append(out, collectiveSeqStmt(pass, st)...)
		}
		return out
	case *ast.LabeledStmt:
		return collectiveSeqStmt(pass, v.Stmt)
	default:
		// Leaf statements (assignments, returns, expression statements,
		// declarations, ...) contain no nested statements outside
		// function literals; scan their expressions directly.
		return collectiveSeqExpr(pass, s)
	}
}

// collectiveSeqExpr collects collective call names from an expression
// tree (or leaf statement), ignoring function literals: a collective
// inside a closure runs when the closure runs, not here.
func collectiveSeqExpr(pass *Pass, n ast.Node) []string {
	if n == nil {
		return nil
	}
	var out []string
	ast.Inspect(n, func(m ast.Node) bool {
		switch v := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, v); isMPIFunc(fn) && collectiveFuncs[fn.Name()] {
				out = append(out, fn.Name())
			}
		}
		return true
	})
	return out
}

// describeSeq renders a collective sequence for a diagnostic.
func describeSeq(seq []string) string {
	if len(seq) == 0 {
		return "none"
	}
	return strings.Join(seq, "→")
}

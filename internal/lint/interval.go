package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
)

// This file layers sparse value facts over SSA form (ssa.go): a signed
// 64-bit interval lattice for integer values and a three-point nilness
// lattice for reference values. Facts attach to SSA values, so the
// cost is proportional to the number of values actually queried, not
// to program points. Phi values are solved by a short bounded
// fixpoint — four passes, then widening of any still-moving bound to
// infinity — which is exact for the straight-line and guard-diamond
// shapes the analyzers prove and safely over-approximates loops.
//
// On top of the per-value facts sits branch-guard refinement: a use
// dominated by the True (or False) edge of a recorded CondEdge has the
// branch condition's constraints met into its interval, provided the
// guard tests the SAME SSA value as the use (version-exactness is what
// makes `if p <= 0 { return nil }; n / p` provably safe while leaving
// a reassigned p unrefined).

// An Interval is a range of int64 values, possibly unbounded on either
// side, possibly empty (the lattice bottom).
type Interval struct {
	Lo, Hi       int64
	LoInf, HiInf bool
	Empty        bool
}

// TopInterval is the unbounded interval (no information).
func TopInterval() Interval { return Interval{LoInf: true, HiInf: true} }

// EmptyInterval is the bottom of the lattice (unreachable value).
func EmptyInterval() Interval { return Interval{Empty: true} }

// ConstInterval is the point interval [c, c].
func ConstInterval(c int64) Interval { return Interval{Lo: c, Hi: c} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return !iv.Empty && iv.LoInf && iv.HiInf }

// DefinitelyNegative reports whether every value in the interval is
// below zero.
func (iv Interval) DefinitelyNegative() bool { return !iv.Empty && !iv.HiInf && iv.Hi < 0 }

// DefinitelyNonNegative reports whether every value is zero or above.
func (iv Interval) DefinitelyNonNegative() bool { return !iv.Empty && !iv.LoInf && iv.Lo >= 0 }

// ExcludesZero reports whether zero is provably not in the interval.
func (iv Interval) ExcludesZero() bool {
	if iv.Empty {
		return true
	}
	return (!iv.LoInf && iv.Lo > 0) || (!iv.HiInf && iv.Hi < 0)
}

// JoinInterval is the lattice join (union hull).
func JoinInterval(a, b Interval) Interval {
	if a.Empty {
		return b
	}
	if b.Empty {
		return a
	}
	out := Interval{Lo: a.Lo, Hi: a.Hi, LoInf: a.LoInf || b.LoInf, HiInf: a.HiInf || b.HiInf}
	if !out.LoInf && b.Lo < out.Lo {
		out.Lo = b.Lo
	}
	if !out.HiInf && b.Hi > out.Hi {
		out.Hi = b.Hi
	}
	return out
}

// MeetInterval is the lattice meet (intersection).
func MeetInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	out := Interval{Lo: a.Lo, Hi: a.Hi, LoInf: a.LoInf && b.LoInf, HiInf: a.HiInf && b.HiInf}
	if a.LoInf {
		out.Lo = b.Lo
	} else if !b.LoInf && b.Lo > out.Lo {
		out.Lo = b.Lo
	}
	if a.HiInf {
		out.Hi = b.Hi
	} else if !b.HiInf && b.Hi < out.Hi {
		out.Hi = b.Hi
	}
	if !out.LoInf && !out.HiInf && out.Lo > out.Hi {
		return EmptyInterval()
	}
	return out
}

// WidenInterval sends any bound that moved between old and next to
// infinity, guaranteeing fixpoint termination.
func WidenInterval(old, next Interval) Interval {
	if old.Empty {
		return next
	}
	if next.Empty {
		return old
	}
	out := next
	if next.LoInf || (!old.LoInf && next.Lo < old.Lo) {
		out.LoInf = true
	} else if !old.LoInf {
		out.Lo, out.LoInf = old.Lo, false
	}
	if next.HiInf || (!old.HiInf && next.Hi > old.Hi) {
		out.HiInf = true
	} else if !old.HiInf {
		out.Hi, out.HiInf = old.Hi, false
	}
	// A widened bound keeps the joined finite value only on the
	// un-widened side; normalize the infinite side to zero for stable
	// equality comparisons.
	if out.LoInf {
		out.Lo = 0
	}
	if out.HiInf {
		out.Hi = 0
	}
	return out
}

func satAdd(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

func satMul(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		return 0, false
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

// AddInterval computes {x+y : x∈a, y∈b} with saturation to infinity.
func AddInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	out := Interval{LoInf: a.LoInf || b.LoInf, HiInf: a.HiInf || b.HiInf}
	if !out.LoInf {
		if lo, ok := satAdd(a.Lo, b.Lo); ok {
			out.Lo = lo
		} else {
			out.LoInf = true
		}
	}
	if !out.HiInf {
		if hi, ok := satAdd(a.Hi, b.Hi); ok {
			out.Hi = hi
		} else {
			out.HiInf = true
		}
	}
	return out
}

// NegInterval computes {-x : x∈a}.
func NegInterval(a Interval) Interval {
	if a.Empty {
		return a
	}
	out := Interval{LoInf: a.HiInf, HiInf: a.LoInf}
	if !out.LoInf {
		if a.Hi == math.MinInt64 {
			out.LoInf = true // -MinInt64 is unrepresentable
		} else {
			out.Lo = -a.Hi
		}
	}
	if !out.HiInf {
		if a.Lo == math.MinInt64 {
			out.HiInf = true
		} else {
			out.Hi = -a.Lo
		}
	}
	return out
}

// SubInterval computes a - b.
func SubInterval(a, b Interval) Interval { return AddInterval(a, NegInterval(b)) }

// MulInterval computes a * b; unbounded operands collapse to top
// unless both are provably nonnegative.
func MulInterval(a, b Interval) Interval {
	if a.Empty || b.Empty {
		return EmptyInterval()
	}
	if a.LoInf || a.HiInf || b.LoInf || b.HiInf {
		if a.DefinitelyNonNegative() && b.DefinitelyNonNegative() {
			lo, ok := satMul(a.Lo, b.Lo)
			if !ok {
				lo = 0
			}
			return Interval{Lo: lo, HiInf: true}
		}
		return TopInterval()
	}
	first := true
	var out Interval
	for _, x := range [2]int64{a.Lo, a.Hi} {
		for _, y := range [2]int64{b.Lo, b.Hi} {
			p, ok := satMul(x, y)
			if !ok {
				return TopInterval()
			}
			if first {
				out = ConstInterval(p)
				first = false
				continue
			}
			out = JoinInterval(out, ConstInterval(p))
		}
	}
	return out
}

// Nilness is the three-point lattice for reference values.
type Nilness int

const (
	// NilMaybe is the top: the value may or may not be nil.
	NilMaybe Nilness = iota
	// NilAlways: the value is provably nil.
	NilAlways
	// NilNever: the value is provably non-nil.
	NilNever
)

func joinNilness(a, b Nilness) Nilness {
	if a == b {
		return a
	}
	return NilMaybe
}

// guard is one branch condition known to hold (truth=true) or to have
// failed (truth=false) on entry to a block.
type guard struct {
	cond  ast.Expr
	truth bool
}

// An intervalEngine answers interval and nilness queries over one
// function's SSA form, with branch-guard refinement.
type intervalEngine struct {
	f      *SSAFunc
	phiIv  map[*ValPhi]Interval
	phiNil map[*ValPhi]Nilness
	// nodeBlock locates every AST node of the function body (funclit
	// interiors excluded) in its CFG block, for guard lookup.
	nodeBlock map[ast.Node]*Block
	guards    map[*Block][]guard
}

const (
	intervalPhiPasses = 4
	refineDepth       = 8
)

// newIntervalEngine builds the fact engine for one SSA function.
func newIntervalEngine(f *SSAFunc) *intervalEngine {
	e := &intervalEngine{
		f:         f,
		phiIv:     make(map[*ValPhi]Interval),
		phiNil:    make(map[*ValPhi]Nilness),
		nodeBlock: make(map[ast.Node]*Block),
		guards:    make(map[*Block][]guard),
	}
	for _, blk := range f.G.Blocks {
		for _, n := range blk.Nodes {
			b := blk
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok && m != n {
					return false
				}
				if m != nil {
					e.nodeBlock[m] = b
				}
				return true
			})
		}
	}
	e.solvePhis()
	return e
}

// solvePhis runs the bounded interval fixpoint and the (finite)
// nilness fixpoint over all phi values.
func (e *intervalEngine) solvePhis() {
	var phis []*ValPhi
	for _, blk := range e.f.G.Blocks {
		phis = append(phis, e.f.Phis[blk]...)
	}
	sort.Slice(phis, func(i, j int) bool {
		if phis[i].Block.Index != phis[j].Block.Index {
			return phis[i].Block.Index < phis[j].Block.Index
		}
		return phis[i].Obj.Pos() < phis[j].Obj.Pos()
	})
	for _, p := range phis {
		e.phiIv[p] = EmptyInterval()
	}
	joinArgs := func(p *ValPhi) Interval {
		out := EmptyInterval()
		for _, a := range p.Args {
			if a == nil {
				return TopInterval()
			}
			out = JoinInterval(out, e.valueInterval(a, refineDepth))
		}
		return out
	}
	stable := false
	for pass := 0; pass < intervalPhiPasses && !stable; pass++ {
		stable = true
		for _, p := range phis {
			nv := joinArgs(p)
			if nv != e.phiIv[p] {
				stable = false
				e.phiIv[p] = nv
			}
		}
	}
	if !stable {
		for _, p := range phis {
			e.phiIv[p] = WidenInterval(e.phiIv[p], joinArgs(p))
		}
		// One more pass so widened values propagate through dependent
		// phis before queries begin.
		for _, p := range phis {
			e.phiIv[p] = WidenInterval(e.phiIv[p], joinArgs(p))
		}
	}

	// Nilness: finite lattice, iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, p := range phis {
			nv := e.joinNilArgs(p)
			if old, ok := e.phiNil[p]; !ok || old != nv {
				e.phiNil[p] = nv
				changed = true
			}
		}
	}
}

func (e *intervalEngine) joinNilArgs(p *ValPhi) Nilness {
	first := true
	var out Nilness
	for _, a := range p.Args {
		if a == nil {
			return NilMaybe
		}
		av := e.valueNilness(a, refineDepth)
		if first {
			out, first = av, false
			continue
		}
		out = joinNilness(out, av)
	}
	if first {
		return NilMaybe
	}
	return out
}

// IntervalOf returns the guard-refined interval of a use identifier.
func (e *intervalEngine) IntervalOf(id *ast.Ident) Interval {
	return e.IntervalOfExpr(id)
}

// IntervalOfExpr evaluates any expression of the function body,
// refining identifier uses by the branch guards dominating their
// block.
func (e *intervalEngine) IntervalOfExpr(expr ast.Expr) Interval {
	return e.exprInterval(expr, refineDepth)
}

// NilnessOfExpr evaluates the nilness of an expression, guard-refined.
func (e *intervalEngine) NilnessOfExpr(expr ast.Expr) Nilness {
	return e.exprNilness(expr, refineDepth)
}

func isIntegerExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// exprInterval evaluates an integer expression to an interval.
func (e *intervalEngine) exprInterval(expr ast.Expr, depth int) Interval {
	if depth <= 0 {
		return TopInterval()
	}
	expr = ast.Unparen(expr)
	info := e.f.Info
	// Constant folding first: the type checker already evaluated
	// every constant expression exactly.
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return ConstInterval(c)
		}
		return TopInterval()
	}
	if !isIntegerExpr(info, expr) {
		return TopInterval()
	}
	switch v := expr.(type) {
	case *ast.Ident:
		val := e.f.UseValue[v]
		if val == nil {
			return TopInterval()
		}
		base := e.valueInterval(val, depth-1)
		return e.refineInterval(base, val, e.nodeBlock[v], depth-1)
	case *ast.UnaryExpr:
		if v.Op == token.SUB {
			return NegInterval(e.exprInterval(v.X, depth-1))
		}
	case *ast.BinaryExpr:
		a := e.exprInterval(v.X, depth-1)
		b := e.exprInterval(v.Y, depth-1)
		switch v.Op {
		case token.ADD:
			return AddInterval(a, b)
		case token.SUB:
			return SubInterval(a, b)
		case token.MUL:
			return MulInterval(a, b)
		case token.QUO:
			// Only the easy sound case: both nonnegative, divisor ≥ 1.
			if a.DefinitelyNonNegative() && !b.Empty && !b.LoInf && b.Lo >= 1 {
				out := Interval{Lo: 0, HiInf: a.HiInf}
				if !a.HiInf {
					out.Hi = a.Hi / b.Lo
				}
				return out
			}
		case token.REM:
			if a.DefinitelyNonNegative() && !b.Empty && !b.LoInf && b.Lo >= 1 {
				out := Interval{Lo: 0, HiInf: b.HiInf}
				if !b.HiInf {
					out.Hi = b.Hi - 1
				}
				return out
			}
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok && len(v.Args) == 1 {
			if obj, ok := info.Uses[id].(*types.Builtin); ok && (obj.Name() == "len" || obj.Name() == "cap") {
				return Interval{Lo: 0, HiInf: true}
			}
		}
		// Integer conversion: pass the operand through when it
		// provably fits the target type, else top.
		if len(v.Args) == 1 {
			if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
				inner := e.exprInterval(v.Args[0], depth-1)
				if fitsIn(inner, tv.Type) {
					return inner
				}
			}
		}
	}
	return TopInterval()
}

// fitsIn reports whether every value of iv is representable in the
// integer type t without truncation.
func fitsIn(iv Interval, t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return false
	}
	if iv.Empty || iv.LoInf || iv.HiInf {
		return false
	}
	var lo, hi int64
	switch basic.Kind() {
	case types.Int8:
		lo, hi = math.MinInt8, math.MaxInt8
	case types.Int16:
		lo, hi = math.MinInt16, math.MaxInt16
	case types.Int32:
		lo, hi = math.MinInt32, math.MaxInt32
	case types.Int, types.Int64:
		lo, hi = math.MinInt64, math.MaxInt64
	case types.Uint8:
		lo, hi = 0, math.MaxUint8
	case types.Uint16:
		lo, hi = 0, math.MaxUint16
	case types.Uint32:
		lo, hi = 0, math.MaxUint32
	case types.Uint, types.Uint64, types.Uintptr:
		lo, hi = 0, math.MaxInt64
	default:
		return false
	}
	return iv.Lo >= lo && iv.Hi <= hi
}

// valueInterval evaluates one SSA value, unrefined.
func (e *intervalEngine) valueInterval(v SSAValue, depth int) Interval {
	if depth <= 0 {
		return TopInterval()
	}
	switch val := v.(type) {
	case *ValParam, *ValUnknown:
		return TopInterval()
	case *ValPhi:
		if iv, ok := e.phiIv[val]; ok {
			return iv
		}
		return TopInterval()
	case *ValDef:
		return e.defInterval(val, depth)
	}
	return TopInterval()
}

// defInterval evaluates a defining node's produced value.
func (e *intervalEngine) defInterval(d *ValDef, depth int) Interval {
	if !isIntegerVar(d.Obj) {
		return TopInterval()
	}
	switch n := d.Node.(type) {
	case *ast.IncDecStmt:
		old := TopInterval()
		if id := identOf(n.X); id != nil {
			if prev := e.f.UseValue[id]; prev != nil {
				old = e.valueInterval(prev, depth-1)
			}
		}
		if n.Tok == token.INC {
			return AddInterval(old, ConstInterval(1))
		}
		return SubInterval(old, ConstInterval(1))
	case *ast.AssignStmt:
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			// Compound assignment x op= rhs.
			old := TopInterval()
			if id := identOf(n.Lhs[0]); id != nil {
				if prev := e.f.UseValue[id]; prev != nil {
					old = e.valueInterval(prev, depth-1)
				}
			}
			rhs := e.exprInterval(n.Rhs[0], depth-1)
			switch n.Tok {
			case token.ADD_ASSIGN:
				return AddInterval(old, rhs)
			case token.SUB_ASSIGN:
				return SubInterval(old, rhs)
			case token.MUL_ASSIGN:
				return MulInterval(old, rhs)
			}
			return TopInterval()
		}
	case *ast.RangeStmt:
		// The range key over a slice, array, map, string or integer
		// is always nonnegative.
		if id := identOf(n.Key); id != nil {
			if obj, _ := e.f.Info.ObjectOf(id).(*types.Var); obj == d.Obj {
				return Interval{Lo: 0, HiInf: true}
			}
		}
		return TopInterval()
	case *ast.DeclStmt:
		if d.Rhs == nil {
			return ConstInterval(0) // zero-value declaration
		}
	}
	if d.Rhs == nil {
		return TopInterval()
	}
	if d.TupleIdx != 0 || isTupleExpr(e.f.Info, d.Rhs) {
		return TopInterval()
	}
	return e.exprInterval(d.Rhs, depth)
}

func isTupleExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isTuple := tv.Type.(*types.Tuple)
	return isTuple
}

func isIntegerVar(v *types.Var) bool {
	basic, ok := v.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// guardsFor returns the branch conditions established on entry to blk:
// every CondEdge whose True (or False) successor is the edge's sole
// reachable continuation and dominates blk.
func (e *intervalEngine) guardsFor(blk *Block) []guard {
	if blk == nil {
		return nil
	}
	if gs, ok := e.guards[blk]; ok {
		return gs
	}
	g := e.f.G
	var out []guard
	if g.ReachableFromEntry(blk) {
		for _, br := range g.Branches {
			if !g.ReachableFromEntry(br.From) {
				continue
			}
			for _, side := range [2]struct {
				tgt   *Block
				truth bool
			}{{br.True, true}, {br.False, false}} {
				if side.tgt == nil || !g.ReachableFromEntry(side.tgt) {
					continue
				}
				if g.soleReachablePred(side.tgt) != br.From {
					continue
				}
				if side.tgt != blk && !g.dom[blk.Index][side.tgt.Index] {
					continue
				}
				out = append(out, guard{cond: br.Cond, truth: side.truth})
			}
		}
	}
	e.guards[blk] = out
	return out
}

// refineInterval narrows base by every dominating guard that tests the
// same SSA value as the use.
func (e *intervalEngine) refineInterval(base Interval, v SSAValue, blk *Block, depth int) Interval {
	if depth <= 0 || blk == nil {
		return base
	}
	for _, gd := range e.guardsFor(blk) {
		base = e.applyIntervalGuard(base, gd.cond, gd.truth, v, depth)
	}
	return base
}

// applyIntervalGuard mets one condition's constraint on v into iv.
func (e *intervalEngine) applyIntervalGuard(iv Interval, cond ast.Expr, truth bool, v SSAValue, depth int) Interval {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return e.applyIntervalGuard(iv, c.X, !truth, v, depth)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				iv = e.applyIntervalGuard(iv, c.X, true, v, depth)
				iv = e.applyIntervalGuard(iv, c.Y, true, v, depth)
			}
			return iv
		case token.LOR:
			if !truth {
				iv = e.applyIntervalGuard(iv, c.X, false, v, depth)
				iv = e.applyIntervalGuard(iv, c.Y, false, v, depth)
			}
			return iv
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if !truth {
				op = negateCmp(op)
			}
			if e.sameValue(c.X, v) {
				return MeetInterval(iv, cmpConstraint(op, e.exprInterval(c.Y, depth-1), iv))
			}
			if e.sameValue(c.Y, v) {
				return MeetInterval(iv, cmpConstraint(flipCmp(op), e.exprInterval(c.X, depth-1), iv))
			}
		}
	}
	return iv
}

// sameValue reports whether expr is an identifier use resolving to the
// SSA value v — the version-exactness test for guard application.
func (e *intervalEngine) sameValue(expr ast.Expr, v SSAValue) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	return e.f.UseValue[id] == v
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	case token.NEQ:
		return token.EQL
	}
	return op
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	}
	return op
}

// cmpConstraint builds the constraint interval for `v op other` being
// true, given other's interval. cur is only consulted for NEQ boundary
// trimming.
func cmpConstraint(op token.Token, other Interval, cur Interval) Interval {
	if other.Empty {
		return TopInterval()
	}
	switch op {
	case token.LSS:
		if !other.HiInf {
			if hi, ok := satAdd(other.Hi, -1); ok {
				return Interval{LoInf: true, Hi: hi}
			}
		}
	case token.LEQ:
		if !other.HiInf {
			return Interval{LoInf: true, Hi: other.Hi}
		}
	case token.GTR:
		if !other.LoInf {
			if lo, ok := satAdd(other.Lo, 1); ok {
				return Interval{Lo: lo, HiInf: true}
			}
		}
	case token.GEQ:
		if !other.LoInf {
			return Interval{Lo: other.Lo, HiInf: true}
		}
	case token.EQL:
		return other
	case token.NEQ:
		// Only trims when other is a constant at one of cur's bounds.
		if !other.LoInf && !other.HiInf && other.Lo == other.Hi {
			c := other.Lo
			out := cur
			if !cur.LoInf && cur.Lo == c {
				if lo, ok := satAdd(c, 1); ok {
					out.Lo = lo
				}
			}
			if !cur.HiInf && cur.Hi == c {
				if hi, ok := satAdd(c, -1); ok {
					out.Hi = hi
				}
			}
			return out
		}
	}
	return TopInterval()
}

// exprNilness evaluates the nilness of an expression.
func (e *intervalEngine) exprNilness(expr ast.Expr, depth int) Nilness {
	if depth <= 0 {
		return NilMaybe
	}
	expr = ast.Unparen(expr)
	info := e.f.Info
	if tv, ok := info.Types[expr]; ok && tv.IsNil() {
		return NilAlways
	}
	switch v := expr.(type) {
	case *ast.Ident:
		val := e.f.UseValue[v]
		if val == nil {
			return NilMaybe
		}
		base := e.valueNilness(val, depth-1)
		return e.refineNilness(base, val, e.nodeBlock[v], depth-1)
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return NilNever
		}
	case *ast.CompositeLit, *ast.FuncLit:
		return NilNever
	case *ast.CallExpr:
		if id, ok := ast.Unparen(v.Fun).(*ast.Ident); ok {
			if obj, ok := info.Uses[id].(*types.Builtin); ok {
				switch obj.Name() {
				case "make", "new", "append":
					return NilNever
				}
			}
		}
	}
	return NilMaybe
}

// valueNilness evaluates one SSA value's nilness, unrefined.
func (e *intervalEngine) valueNilness(v SSAValue, depth int) Nilness {
	if depth <= 0 {
		return NilMaybe
	}
	switch val := v.(type) {
	case *ValParam, *ValUnknown:
		return NilMaybe
	case *ValPhi:
		if nv, ok := e.phiNil[val]; ok {
			return nv
		}
		return NilMaybe
	case *ValDef:
		if val.Rhs == nil {
			if _, isDecl := val.Node.(*ast.DeclStmt); isDecl && isNilableVar(val.Obj) {
				return NilAlways // zero-value declaration of a reference type
			}
			return NilMaybe
		}
		if val.TupleIdx != 0 || isTupleExpr(e.f.Info, val.Rhs) {
			return NilMaybe
		}
		return e.exprNilness(val.Rhs, depth)
	}
	return NilMaybe
}

func isNilableVar(v *types.Var) bool {
	switch v.Type().Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan, *types.Pointer, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// refineNilness narrows base by dominating nil-comparison guards on
// the same SSA value.
func (e *intervalEngine) refineNilness(base Nilness, v SSAValue, blk *Block, depth int) Nilness {
	if depth <= 0 || blk == nil {
		return base
	}
	for _, gd := range e.guardsFor(blk) {
		base = e.applyNilGuard(base, gd.cond, gd.truth, v)
	}
	return base
}

func (e *intervalEngine) applyNilGuard(cur Nilness, cond ast.Expr, truth bool, v SSAValue) Nilness {
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return e.applyNilGuard(cur, c.X, !truth, v)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				cur = e.applyNilGuard(cur, c.X, true, v)
				cur = e.applyNilGuard(cur, c.Y, true, v)
			}
			return cur
		case token.LOR:
			if !truth {
				cur = e.applyNilGuard(cur, c.X, false, v)
				cur = e.applyNilGuard(cur, c.Y, false, v)
			}
			return cur
		case token.EQL, token.NEQ:
			var side ast.Expr
			if isNilExpr(e.f.Info, c.X) && e.sameValue(c.Y, v) {
				side = c.Y
			} else if isNilExpr(e.f.Info, c.Y) && e.sameValue(c.X, v) {
				side = c.X
			}
			if side == nil {
				return cur
			}
			isEq := (c.Op == token.EQL) == truth
			if isEq {
				return NilAlways
			}
			return NilNever
		}
	}
	return cur
}

func isNilExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}

// A funcUnit couples one function declaration or literal with its CFG,
// SSA form, and fact engine. Analyzers iterate units rather than
// rebuilding the stack ad hoc.
type funcUnit struct {
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Body *ast.BlockStmt
	Type *ast.FuncType
	SSA  *SSAFunc
	Eng  *intervalEngine
}

// buildFuncUnits constructs a unit for every function declaration and
// every function literal (at any nesting depth) in the pass's files.
func buildFuncUnits(pass *Pass) []*funcUnit {
	var units []*funcUnit
	build := func(decl *ast.FuncDecl, lit *ast.FuncLit) {
		var recv *ast.FieldList
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		if decl != nil {
			recv, ftype, body = decl.Recv, decl.Type, decl.Body
		} else {
			ftype, body = lit.Type, lit.Body
		}
		if body == nil {
			return
		}
		g := BuildCFG(body)
		ssa := BuildSSA(g, pass.TypesInfo, recv, ftype, body)
		units = append(units, &funcUnit{
			Decl: decl,
			Lit:  lit,
			Body: body,
			Type: ftype,
			SSA:  ssa,
			Eng:  newIntervalEngine(ssa),
		})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			build(fd, nil)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					build(nil, lit)
				}
				return true
			})
		}
	}
	return units
}

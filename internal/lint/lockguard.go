package lint

// LockGuard machine-checks the //scatterlint:guardedby contracts that
// PRs 8–9 carried only as prose: every read or write of an annotated
// struct field must happen with the guard's lock class held, through
// sync/atomic for `atomic` fields, or before publication for
// `immutable` fields. Guard facts flow through the per-package
// requirement fixpoint (lockset.go), so a helper called under the
// lock is proven, not assumed — and a guarded access reachable
// lock-free from an exported entry point is reported even when every
// in-package caller is disciplined, because external callers cannot
// hold a package-private mutex. Like the other dataflow analyzers it
// weakens toward silence: fresh, unescaped allocations are exempt
// (the constructor exemption) and class matching is
// instance-insensitive.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "guarded fields: every access to a //scatterlint:guardedby field must hold " +
		"the declared lock class, use sync/atomic, or precede publication",
	Run: runLockGuard,
}

func runLockGuard(pass *Pass) error {
	reportLockFindings(pass, computeLockSets(pass).guardFindings)
	return nil
}

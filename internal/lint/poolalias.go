package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolAlias enforces PR 4's lent-row rule on sync.Pool-backed buffers:
// a pooled row buffer (core.Engine's plan rows, or anything drawn from
// a sync.Pool) must not escape the function that holds it — by
// return, channel send, or closure capture — unless the escape is one
// of the sanctioned ownership transfers: a direct accessor wrapping
// Pool.Get, a return paired with a recycle closure (the lend-return
// idiom of tabCache.tables), a closure that only recycles, or a
// composite literal taking ownership (owned: true). Aliasing a row's
// buffers into a non-owning row additionally requires pinning the
// source (src.lent = true) first, so the owner's release() skips the
// shared memory instead of recycling it out from under the alias.
var PoolAlias = &Analyzer{
	Name: "poolalias",
	Doc: "sync.Pool-backed row buffers must not escape via return, channel send " +
		"or closure capture without a pin (lent = true), a recycle closure, or an " +
		"ownership transfer (owned: true); otherwise release() recycles shared memory",
	Run: runPoolAlias,
}

func runPoolAlias(pass *Pass) error {
	sum := summarize(pass)
	for _, file := range pass.Files {
		if fname := pass.Fset.Position(file.Pos()).Filename; strings.HasSuffix(fname, "_test.go") {
			// Tests construct and alias rows deliberately to exercise
			// the runtime half of this rule.
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body != nil {
					analyzePoolFunc(pass, sum, v.Recv, v.Type, v.Body)
				}
			case *ast.FuncLit:
				analyzePoolFunc(pass, sum, nil, v.Type, v.Body)
			}
			return true
		})
	}
	return nil
}

// poolTaint is the flow-sensitive pooled-buffer taint for one
// function: per definition site, whether the defined value can carry a
// pooled buffer at all (any), and whether it can carry one from an
// indirect source — a summarized accessor or a row buffer-field read —
// rather than only from an in-function Pool.Get (ind). A value that is
// pooled but never indirect is the accessor idiom itself (getF64) and
// may be returned raw; everything else needs a sanction.
type poolTaint struct {
	pass *Pass
	sum  *pkgSummary
	rd   *ReachDefs
	any  []bool
	ind  []bool
}

func analyzePoolFunc(pass *Pass, sum *pkgSummary, recv *ast.FieldList, ftype *ast.FuncType, body *ast.BlockStmt) {
	g := BuildCFG(body)
	rd := newReachDefs(g, pass.TypesInfo, recv, ftype)
	pt := &poolTaint{
		pass: pass,
		sum:  sum,
		rd:   rd,
		any:  make([]bool, len(rd.sites)),
		ind:  make([]bool, len(rd.sites)),
	}
	// Both taint relations are monotone, so a joint fixpoint converges.
	for changed := true; changed; {
		changed = false
		for i, site := range rd.sites {
			if site.rhs == nil {
				continue
			}
			a, ind := pt.exprPooled(site.rhs, site.tupleIdx, site.at)
			if a && !pt.any[i] {
				pt.any[i] = true
				changed = true
			}
			if ind && !pt.ind[i] {
				pt.ind[i] = true
				changed = true
			}
		}
	}

	walkOwnBody(body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			pt.checkReturn(v, ftype)
		case *ast.SendStmt:
			pt.checkSend(v)
		case *ast.FuncLit:
			pt.checkCapture(v)
		case *ast.CompositeLit:
			pt.checkRowAlias(v, g)
		}
	})
}

// exprPooled reports whether e (result tupleIdx of a multi-value
// expression) can carry a pooled buffer at program point `at`.
func (pt *poolTaint) exprPooled(e ast.Expr, tupleIdx int, at ref) (pooled, ind bool) {
	if e == nil {
		return false, false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pt.pass.TypesInfo, v); isPoolMethod(fn, "Get") {
			return true, false
		}
		if cf := pt.sum.calleeFacts(v); cf != nil && tupleIdx < len(cf.pooledResults) && cf.pooledResults[tupleIdx] {
			return true, true
		}
		return false, false
	case *ast.Ident:
		obj, _ := pt.pass.TypesInfo.ObjectOf(v).(*types.Var)
		if obj == nil {
			return false, false
		}
		return pt.identPooled(obj, at)
	case *ast.SliceExpr:
		return pt.exprPooled(v.X, 0, at)
	case *ast.IndexExpr:
		return pt.exprPooled(v.X, 0, at)
	case *ast.TypeAssertExpr:
		return pt.exprPooled(v.X, 0, at)
	case *ast.StarExpr:
		return pt.exprPooled(v.X, 0, at)
	case *ast.UnaryExpr:
		return pt.exprPooled(v.X, 0, at)
	case *ast.SelectorExpr:
		if isRowBufferField(pt.pass.TypesInfo, v) {
			return true, true
		}
		return false, false
	}
	return false, false
}

// checkReturn flags pooled results with no release path. Results that
// are only ever direct Pool.Get values are the accessor idiom (getF64)
// and pass; indirect pooled results pass only when the same return
// carries a recycle closure for them (the lend-return idiom).
func (pt *poolTaint) checkReturn(ret *ast.ReturnStmt, ftype *ast.FuncType) {
	at := pt.rd.refOf(ret)
	if len(ret.Results) == 0 {
		// Naked return: named results carry their reaching values.
		if res := resultsOf(ftype); res != nil {
			for _, f := range res.List {
				for _, name := range f.Names {
					obj, _ := pt.pass.TypesInfo.ObjectOf(name).(*types.Var)
					if obj == nil {
						continue
					}
					if a, ind := pt.identPooled(obj, at); a && ind {
						pt.pass.Reportf(ret.Pos(),
							"pooled row buffer %s escapes via (naked) return without a release path: return a recycle closure alongside it or transfer ownership (owned: true)", name.Name)
					}
				}
			}
		}
		return
	}
	var recyclers []*ast.FuncLit
	for _, res := range ret.Results {
		if fl, ok := ast.Unparen(res).(*ast.FuncLit); ok {
			recyclers = append(recyclers, fl)
		}
	}
	for _, res := range ret.Results {
		if _, ok := ast.Unparen(res).(*ast.FuncLit); ok {
			continue
		}
		a, ind := pt.exprPooled(res, 0, at)
		if !a || !ind {
			continue
		}
		root := rootIdent(res)
		obj, _ := pt.pass.TypesInfo.ObjectOf(root).(*types.Var)
		sanctioned := false
		for _, fl := range recyclers {
			if obj != nil && pt.recycles(fl, obj) {
				sanctioned = true
				break
			}
		}
		if !sanctioned {
			pt.pass.Reportf(res.Pos(),
				"pooled row buffer %s escapes via return without a release path: return a recycle closure alongside it (the tables lend-return idiom) or transfer ownership (owned: true)", exprText(res))
		}
	}
}

// identPooled evaluates the taint of a variable at a program point.
func (pt *poolTaint) identPooled(obj *types.Var, at ref) (pooled, ind bool) {
	for _, s := range pt.rd.defsReaching(obj, at) {
		if pt.any[s] {
			pooled = true
		}
		if pt.ind[s] {
			ind = true
		}
	}
	return pooled, ind
}

// checkSend flags any pooled buffer crossing a channel: the receiver's
// lifetime is unknowable here, so there is no sanctioned shape short
// of not sending pooled memory at all.
func (pt *poolTaint) checkSend(send *ast.SendStmt) {
	at := pt.rd.refOf(send)
	reported := false
	ast.Inspect(send.Value, func(n ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if a, _ := pt.exprPooled(e, 0, at); a {
				pt.pass.Reportf(send.Pos(),
					"pooled row buffer %s escapes on a channel send: the receiver outlives release() and the pool may recycle the memory mid-use", exprText(e))
				reported = true
				return false
			}
		}
		return true
	})
}

// checkCapture flags closures capturing a pooled local for anything
// other than recycling it.
func (pt *poolTaint) checkCapture(fl *ast.FuncLit) {
	at := pt.rd.refOf(fl)
	seen := make(map[*types.Var]bool)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pt.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[obj] {
			return true
		}
		// Only free variables matter: a variable defined inside fl is
		// fl's own (and fl is analyzed as its own function).
		if fl.Pos() <= obj.Pos() && obj.Pos() < fl.End() {
			return true
		}
		if len(pt.rd.byObj[obj]) == 0 {
			return true // not a local of the enclosing function
		}
		seen[obj] = true
		if a, ind := pt.identPooled(obj, at); a && ind && !pt.recycles(fl, obj) {
			pt.pass.Reportf(fl.Pos(),
				"pooled row buffer %s is captured by a closure that does not recycle it: pin the row (lent = true) or keep pooled memory out of the closure", obj.Name())
		}
		return true
	})
}

// recycles reports whether fl references obj at all and every
// reference is an argument (possibly sliced) of a pool-sink call —
// the recycle-closure shape `func() { putF64(comm) }`.
func (pt *poolTaint) recycles(fl *ast.FuncLit, obj *types.Var) bool {
	sanctioned := make(map[*ast.Ident]bool)
	uses := 0
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSinkCall(pt.sum, call) {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil {
				sanctioned[id] = true
			}
		}
		return true
	})
	ok := true
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || pt.pass.TypesInfo.Uses[id] != obj {
			return true
		}
		uses++
		if !sanctioned[id] {
			ok = false
		}
		return true
	})
	return uses > 0 && ok
}

// checkRowAlias enforces the pin-before-alias half of the lent-row
// rule: a non-owning composite literal of a pooled-row type that
// takes buffer fields from another row must be dominated by a pin of
// that source row (src.lent = true).
func (pt *poolTaint) checkRowAlias(lit *ast.CompositeLit, g *CFG) {
	tv, ok := pt.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	named, isRow := pooledRowStruct(tv.Type)
	if !isRow {
		return
	}
	if litTakesOwnership(pt.pass, named, lit) {
		return
	}
	litRef, ok := g.RefAt(lit.Pos())
	if !ok {
		return
	}
	// Collect the distinct source rows whose buffers the literal
	// aliases, keyed by their printed form.
	sources := make(map[string]bool)
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		sel := bufferFieldRead(pt.pass.TypesInfo, val)
		if sel == nil {
			continue
		}
		sources[exprText(sel.X)] = true
	}
	for text := range sources {
		if !pt.pinDominates(g, text, litRef) {
			pt.pass.Reportf(lit.Pos(),
				"row buffers of %s are aliased into a non-owning %s without pinning: set %s.lent = true before sharing so the owner's release() skips them", text, named.Obj().Name(), text)
		}
	}
}

// litTakesOwnership reports whether the literal sets owned to a true
// constant — the newPlanRow ownership-transfer shape.
func litTakesOwnership(pass *Pass, named *types.Named, lit *ast.CompositeLit) bool {
	for name, expr := range literalFields(named, lit) {
		if name != "owned" {
			continue
		}
		tv, ok := pass.TypesInfo.Types[expr]
		if ok && tv.Value != nil && tv.Value.String() == "true" {
			return true
		}
	}
	return false
}

// bufferFieldRead unwraps e to a buffer-field selector (src.cost,
// src.cost[:n]) or nil.
func bufferFieldRead(info *types.Info, e ast.Expr) *ast.SelectorExpr {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if isRowBufferField(info, v) {
				return v
			}
			return nil
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// pinDominates reports whether a pin of the row printed as text
// (text.lent = true, or text.pin()) dominates the use site.
func (pt *poolTaint) pinDominates(g *CFG, text string, use ref) bool {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if !isPinOf(pt.pass.TypesInfo, n, text) {
				continue
			}
			if g.Dominates(ref{blk, i}, use) {
				return true
			}
		}
	}
	return false
}

// isPinOf recognizes the pin statements for a row spelled text:
// `<text>.lent = true` or a call `<text>.pin(...)` / `<text>.Pin(...)`.
func isPinOf(info *types.Info, n ast.Node, text string) bool {
	switch v := n.(type) {
	case *ast.AssignStmt:
		if len(v.Lhs) != 1 || len(v.Rhs) != 1 {
			return false
		}
		sel, ok := v.Lhs[0].(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "lent" {
			return false
		}
		tv, ok := info.Types[v.Rhs[0]]
		if !ok || tv.Value == nil || tv.Value.String() != "true" {
			return false
		}
		return exprText(sel.X) == text
	case *ast.ExprStmt:
		call, ok := v.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "pin" && sel.Sel.Name != "Pin") {
			return false
		}
		return exprText(sel.X) == text
	}
	return false
}

package lint

// An analysistest-style harness built on the standard library: a
// fixture directory is loaded and type-checked, one analyzer runs,
// and the diagnostics are matched line-by-line against
//
//	// want "regexp" ["regexp" ...]
//
// comments in the fixture source. Every want must be matched by a
// diagnostic on its line and every diagnostic must match a want, so
// fixtures pin both the positives and the silences.

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"
)

// sharedLoader caches export data across fixture tests; `go list
// -export` is the slow step and its results are identical per test
// binary run.
var sharedLoader = NewLoader(".")

// wantRE extracts quoted patterns from a want comment.
var wantRE = regexp.MustCompile(`// want ("[^"]+")(?:\s+("[^"]+"))*`)

// quotedRE pulls the individual quoted patterns back out.
var quotedRE = regexp.MustCompile(`"([^"]+)"`)

// expectation is one want pattern awaiting a matching diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// parseWants scans a fixture file for want comments.
func parseWants(t *testing.T, path string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindString(line)
		if m == "" {
			continue
		}
		for _, q := range quotedRE.FindAllStringSubmatch(m, -1) {
			re, err := regexp.Compile(q[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, q[1], err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, pattern: re})
		}
	}
	return wants
}

// runFixture loads dir under importPath, runs just the one analyzer,
// and checks its diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	var wants []*expectation
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if !seen[name] {
			seen[name] = true
			wants = append(wants, parseWants(t, name)...)
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", Format(pkg.Fset, d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// fixturePath names a fixture directory and the import path to check
// it under (simclock's rule is keyed on the import path).
func fixturePath(name string) string {
	return fmt.Sprintf("testdata/%s", name)
}

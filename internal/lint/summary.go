package lint

import (
	"go/ast"
	"go/types"
)

// This file computes per-package function summaries: the facts the
// dataflow analyzers need about a callee without re-analyzing its body
// at every call site. Summaries are solved to a fixpoint over all
// functions and function literals of the package, so a helper that
// calls a helper that calls time.Now is still seen as reaching the
// wall clock. Calls that leave the package resolve against export data
// only, so cross-package effects are encoded as API knowledge of the
// module's protocol types (sync.Pool, fault.Ledger) — the unit a vet
// pass sees is one package, the same boundary go/analysis facts cross
// with serialized fact files.

// funcFacts summarizes one function or function literal.
type funcFacts struct {
	name string
	body *ast.BlockStmt
	// recv/ftype seed parameter lookups (receiver nil for literals).
	recv  *ast.FieldList
	ftype *ast.FuncType

	// pooledResults[i] reports that the i-th result can carry a
	// sync.Pool-backed buffer out of the function.
	pooledResults []bool
	// poolSink reports that some parameter is recycled into a pool
	// (directly via (*sync.Pool).Put or through another sink).
	poolSink bool
	// appendsLedger reports that the function (transitively) appends a
	// checkpoint via (*fault.Ledger).Deliver.
	appendsLedger bool
	// wallClock is "" or a witness chain like "tick → time.Now"
	// proving the function (transitively) reads the wall clock or the
	// global math/rand source.
	wallClock string
}

// pkgSummary is the summary table of one package.
type pkgSummary struct {
	byFunc map[*types.Func]*funcFacts
	byLit  map[*ast.FuncLit]*funcFacts
	// closures maps a local variable bound to exactly one function
	// literal (deliver := func(...){...}) to that literal, so calls
	// through the variable resolve interprocedurally.
	closures map[*types.Var]*ast.FuncLit
	all      []*funcFacts
	info     *types.Info
}

// summaries memoizes pkgSummary per type-checked package; the driver
// is single-goroutine and short-lived (one vet unit or one standalone
// run), so a plain map suffices.
var summaries = make(map[*types.Package]*pkgSummary)

// summarize computes (or returns the memoized) summary table for the
// pass's package.
func summarize(pass *Pass) *pkgSummary {
	if s, ok := summaries[pass.Pkg]; ok {
		return s
	}
	s := &pkgSummary{
		byFunc:   make(map[*types.Func]*funcFacts),
		byLit:    make(map[*ast.FuncLit]*funcFacts),
		closures: make(map[*types.Var]*ast.FuncLit),
		info:     pass.TypesInfo,
	}
	summaries[pass.Pkg] = s

	litBindings := make(map[*types.Var]int)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.FuncDecl:
				if v.Body == nil {
					return true
				}
				fn, _ := pass.TypesInfo.Defs[v.Name].(*types.Func)
				if fn == nil {
					return true
				}
				ff := &funcFacts{name: v.Name.Name, body: v.Body, recv: v.Recv, ftype: v.Type}
				ff.pooledResults = make([]bool, fn.Type().(*types.Signature).Results().Len())
				s.byFunc[fn] = ff
				s.all = append(s.all, ff)
			case *ast.FuncLit:
				ff := &funcFacts{name: "func literal", body: v.Body, ftype: v.Type}
				if sig, ok := pass.TypesInfo.TypeOf(v).(*types.Signature); ok {
					ff.pooledResults = make([]bool, sig.Results().Len())
				}
				s.byLit[v] = ff
				s.all = append(s.all, ff)
			case *ast.AssignStmt:
				if len(v.Lhs) == len(v.Rhs) {
					for i, lhs := range v.Lhs {
						s.recordClosure(identOf(lhs), v.Rhs[i], litBindings)
					}
				}
			case *ast.ValueSpec:
				if len(v.Values) == len(v.Names) {
					for i, name := range v.Names {
						s.recordClosure(name, v.Values[i], litBindings)
					}
				}
			}
			return true
		})
	}
	// A variable rebound to a second literal is ambiguous: drop it.
	for v, n := range litBindings {
		if n != 1 {
			delete(s.closures, v)
		}
	}
	for _, fl := range s.closures {
		if ff := s.byLit[fl]; ff != nil {
			ff.name = closureName(s, fl)
		}
	}

	// Fixpoint over all functions until no fact changes.
	for changed := true; changed; {
		changed = false
		for _, ff := range s.all {
			if s.update(ff) {
				changed = true
			}
		}
	}
	return s
}

// closureName names a bound literal by its variable for diagnostics.
func closureName(s *pkgSummary, fl *ast.FuncLit) string {
	for v, bound := range s.closures {
		if bound == fl {
			return v.Name()
		}
	}
	return "func literal"
}

// recordClosure tracks `v := func(...){...}` bindings.
func (s *pkgSummary) recordClosure(id *ast.Ident, rhs ast.Expr, bindings map[*types.Var]int) {
	fl, ok := ast.Unparen(rhs).(*ast.FuncLit)
	if !ok || id == nil {
		return
	}
	v, ok := s.info.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	bindings[v]++
	s.closures[v] = fl
}

// calleeFacts resolves a call to its same-package summary: a declared
// function, a variable bound to one function literal, or a directly
// invoked literal. Returns nil for everything else (other packages,
// builtins, unresolvable function values).
func (s *pkgSummary) calleeFacts(call *ast.CallExpr) *funcFacts {
	if fn := calleeFunc(s.info, call); fn != nil {
		return s.byFunc[fn]
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := s.info.ObjectOf(fun).(*types.Var); ok {
			if fl := s.closures[v]; fl != nil {
				return s.byLit[fl]
			}
		}
	case *ast.FuncLit:
		return s.byLit[fun]
	}
	return nil
}

// update recomputes ff's facts from its body; reports whether anything
// changed. Nested function literals are skipped — they have their own
// summaries and effects flow through calls.
func (s *pkgSummary) update(ff *funcFacts) bool {
	changed := false
	params := paramObjs(s.info, ff.recv, ff.ftype)

	// Flow-insensitive pooled-variable set for this function, solved
	// locally to a fixpoint so chains (v := getF64(); w := v[:n];
	// return w) are followed.
	pooled := make(map[*types.Var]bool)
	for again := true; again; {
		again = false
		walkOwnBody(ff.body, func(n ast.Node) {
			mark := func(id *ast.Ident, rhs ast.Expr, tupleIdx int) {
				v, ok := s.info.ObjectOf(id).(*types.Var)
				if !ok || pooled[v] {
					return
				}
				if s.pooledExprFI(pooled, rhs, tupleIdx) {
					pooled[v] = true
					again = true
				}
			}
			switch v := n.(type) {
			case *ast.AssignStmt:
				forEachDef(v.Lhs, v.Rhs, func(id *ast.Ident, rhs ast.Expr, ti int) { mark(id, rhs, ti) })
			case *ast.ValueSpec:
				forEachDef(identExprs(v.Names), v.Values, func(id *ast.Ident, rhs ast.Expr, ti int) { mark(id, rhs, ti) })
			}
		})
	}

	walkOwnBody(ff.body, func(n ast.Node) {
		switch v := n.(type) {
		case *ast.CallExpr:
			// Wall clock / global rand, direct or through a callee.
			if w := directWallClock(s.info, v); w != "" && ff.wallClock == "" {
				ff.wallClock = w
				changed = true
			}
			cf := s.calleeFacts(v)
			if cf != nil && cf != ff {
				if cf.wallClock != "" && ff.wallClock == "" {
					ff.wallClock = cf.name + " → " + cf.wallClock
					changed = true
				}
				if cf.appendsLedger && !ff.appendsLedger {
					ff.appendsLedger = true
					changed = true
				}
			}
			if fn := calleeFunc(s.info, v); isLedgerMethod(fn, "Deliver") && !ff.appendsLedger {
				ff.appendsLedger = true
				changed = true
			}
			// A parameter handed to a pool sink makes this function a sink.
			if !ff.poolSink && isSinkCall(s, v) {
				for _, arg := range v.Args {
					if p, ok := s.info.ObjectOf(rootIdent(arg)).(*types.Var); ok && params[p] {
						ff.poolSink = true
						changed = true
						break
					}
				}
			}
		case *ast.ReturnStmt:
			changed = s.markPooledResults(ff, pooled, v) || changed
		}
	})
	return changed
}

// markPooledResults records which results of a return statement carry
// pooled buffers.
func (s *pkgSummary) markPooledResults(ff *funcFacts, pooled map[*types.Var]bool, ret *ast.ReturnStmt) bool {
	changed := false
	set := func(i int) {
		if i < len(ff.pooledResults) && !ff.pooledResults[i] {
			ff.pooledResults[i] = true
			changed = true
		}
	}
	if len(ret.Results) == 0 {
		// Naked return: named results carry their current values.
		if res := resultsOf(ff.ftype); res != nil {
			i := 0
			for _, f := range res.List {
				for _, name := range f.Names {
					if v, ok := s.info.ObjectOf(name).(*types.Var); ok && pooled[v] {
						set(i)
					}
					i++
				}
			}
		}
		return changed
	}
	if len(ret.Results) == 1 && len(ff.pooledResults) > 1 {
		// return f() forwarding a tuple.
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			if cf := s.calleeFacts(call); cf != nil {
				for i, p := range cf.pooledResults {
					if p {
						set(i)
					}
				}
			}
		}
		return changed
	}
	for i, e := range ret.Results {
		if s.pooledExprFI(pooled, e, 0) {
			set(i)
		}
	}
	return changed
}

// pooledExprFI is the flow-insensitive "does this expression carry a
// pooled buffer" predicate used by the summary fixpoint. An owning
// composite literal (owned: true on a pooled-row type) transfers
// ownership to the new value and stops the taint: the owner's release
// path is responsible from there on.
func (s *pkgSummary) pooledExprFI(pooled map[*types.Var]bool, e ast.Expr, tupleIdx int) bool {
	if e == nil {
		return false
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(s.info, v); isPoolMethod(fn, "Get") {
			return true
		}
		if cf := s.calleeFacts(v); cf != nil && tupleIdx < len(cf.pooledResults) {
			return cf.pooledResults[tupleIdx]
		}
		return false
	case *ast.Ident:
		obj, _ := s.info.ObjectOf(v).(*types.Var)
		return obj != nil && pooled[obj]
	case *ast.SliceExpr:
		return s.pooledExprFI(pooled, v.X, 0)
	case *ast.TypeAssertExpr:
		return s.pooledExprFI(pooled, v.X, 0)
	case *ast.StarExpr:
		return s.pooledExprFI(pooled, v.X, 0)
	case *ast.UnaryExpr:
		return s.pooledExprFI(pooled, v.X, 0)
	case *ast.SelectorExpr:
		return isRowBufferField(s.info, v)
	case *ast.IndexExpr:
		return s.pooledExprFI(pooled, v.X, 0)
	}
	return false
}

// paramObjs collects the parameter and receiver variables of a
// function signature.
func paramObjs(info *types.Info, recv *ast.FieldList, ftype *ast.FuncType) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	for _, fl := range []*ast.FieldList{recv, paramsOf(ftype)} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.ObjectOf(name).(*types.Var); ok {
					out[v] = true
				}
			}
		}
	}
	return out
}

// isSinkCall reports whether the call recycles its argument into a
// pool: (*sync.Pool).Put, or a same-package summarized sink.
func isSinkCall(s *pkgSummary, call *ast.CallExpr) bool {
	if fn := calleeFunc(s.info, call); isPoolMethod(fn, "Put") {
		return true
	}
	cf := s.calleeFacts(call)
	return cf != nil && cf.poolSink
}

// directWallClock reports a wall-clock or global-rand call made
// directly by this node, as a witness string ("time.Now"), or "".
func directWallClock(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !seededRandFuncs[fn.Name()] {
			return fn.Pkg().Name() + "." + fn.Name()
		}
	}
	return ""
}

// isPoolMethod reports whether fn is (*sync.Pool).<name>.
func isPoolMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "Pool"
}

// isLedgerMethod reports whether fn is (*fault.Ledger).<name>.
func isLedgerMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != faultPkgPath {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	return namedTypeName(recv.Type()) == "Ledger"
}

// faultPkgPath locates the recovery-ledger package.
const faultPkgPath = "repro/internal/fault"

// namedTypeName returns the name of a (possibly pointer-to) named
// type, or "".
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pooledRowStruct reports whether t is a pooled-row type: a named
// struct carrying the lent/owned ownership bools and at least one
// slice field (core.planRow is the canonical instance).
func pooledRowStruct(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, false
	}
	var hasLent, hasOwned, hasSlice bool
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		switch {
		case f.Name() == "lent" && types.Identical(f.Type(), types.Typ[types.Bool]):
			hasLent = true
		case f.Name() == "owned" && types.Identical(f.Type(), types.Typ[types.Bool]):
			hasOwned = true
		default:
			if _, ok := f.Type().Underlying().(*types.Slice); ok {
				hasSlice = true
			}
		}
	}
	return named, hasLent && hasOwned && hasSlice
}

// isRowBufferField reports whether sel reads a slice field of a
// pooled-row struct — the aliasing move the lent-row rule governs.
func isRowBufferField(info *types.Info, sel *ast.SelectorExpr) bool {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	if _, ok := selection.Obj().Type().Underlying().(*types.Slice); !ok {
		return false
	}
	_, isRow := pooledRowStruct(selection.Recv())
	return isRow
}

// rootIdent walks to the base identifier of an expression chain
// (src.cost[:n] → src), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// walkOwnBody visits every node of body except nested function
// literal bodies.
func walkOwnBody(body *ast.BlockStmt, visit func(ast.Node)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != body {
			visit(fl)
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// forEachDef pairs assignment LHS identifiers with their defining
// expressions, handling tuple assignments.
func forEachDef(lhs, rhs []ast.Expr, fn func(id *ast.Ident, rhs ast.Expr, tupleIdx int)) {
	if len(rhs) == 0 {
		return
	}
	for i, l := range lhs {
		id := identOf(l)
		if id == nil || id.Name == "_" {
			continue
		}
		if len(rhs) == len(lhs) {
			fn(id, rhs[i], 0)
		} else {
			fn(id, rhs[0], i)
		}
	}
}

// identExprs converts a []*ast.Ident to []ast.Expr.
func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

package lint

import (
	"go/ast"
	"go/token"
)

// This file is the first half of scatterlint's shared dataflow layer:
// an intraprocedural control-flow graph over the parsed syntax, with
// dominator and reachability queries. The CFG is deliberately
// statement-grained — each basic block holds the ast.Nodes that
// execute in it, in order — which is exactly the granularity the
// dataflow analyzers (poolalias, detorder, ledgerorder) need:
// "does this pin dominate that alias", "can an append precede this
// reclaim on any path". Function literals are not inlined; each
// FuncLit body gets its own CFG and cross-closure effects flow
// through the package summary table (summary.go) instead.

// A Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Nodes are the statements and control expressions executed in
	// this block, in execution order. Loop headers carry their
	// condition (ForStmt.Cond) or the RangeStmt itself.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	Preds []*Block
}

// A CFG is the control-flow graph of one function body.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// Branches records every two-way conditional the builder emitted:
	// Cond is evaluated at the end of From, after which control moves
	// to True or False. The SSA interval layer uses these edges to
	// refine value ranges under dominating guards (`if g <= 0 { return
	// }` proves g >= 1 below). Switches and selects are deliberately
	// absent: their dispatch is n-way and the refinement layer treats
	// them as unrefined joins.
	Branches []CondEdge

	// dom[b][a] reports whether block a dominates block b.
	dom [][]bool
	// reach[a][b] reports whether a nonempty path leads from a to b.
	reach [][]bool
}

// A CondEdge is one two-way conditional branch of the CFG.
type CondEdge struct {
	Cond  ast.Expr
	From  *Block
	True  *Block
	False *Block
}

// A ref addresses one node inside a CFG: the idx-th node of a block.
// Pseudo-definitions that precede every node of the entry block
// (parameters, named results) use idx -1.
type ref struct {
	block *Block
	idx   int
}

// BuildCFG constructs the CFG of a function body. Panics never: any
// statement the builder does not model (goto into the unknown) is
// approximated by an edge to Exit, which only ever weakens the
// analyzers toward silence, not false positives.
func BuildCFG(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &cfgBuilder{g: g}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edge(b.cur, g.Exit)
	g.finalize()
	return g
}

// Dominates reports whether every execution reaching b has already
// executed a. Within a block, earlier nodes dominate later ones.
func (g *CFG) Dominates(a, b ref) bool {
	if a.block == b.block {
		return a.idx < b.idx
	}
	return g.dom[b.block.Index][a.block.Index]
}

// CanPrecede reports whether some execution can pass through a before
// reaching b — the weakest ordering fact, used where strict dominance
// would reject legitimate conditional protocols (a checkpoint append
// inside a loop before a conditional reclaim).
func (g *CFG) CanPrecede(a, b ref) bool {
	if a.block == b.block && a.idx < b.idx {
		return true
	}
	return g.reach[a.block.Index][b.block.Index]
}

// RefAt locates the innermost CFG node containing pos.
func (g *CFG) RefAt(pos token.Pos) (ref, bool) {
	var best ref
	var bestSize token.Pos
	found := false
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				size := n.End() - n.Pos()
				if !found || size < bestSize {
					best, bestSize, found = ref{blk, i}, size, true
				}
			}
		}
	}
	return best, found
}

// cfgBuilder carries the under-construction graph and the break /
// continue / fallthrough targets of the enclosing statements.
type cfgBuilder struct {
	g   *CFG
	cur *Block
	// ctx is a stack of enclosing breakable/continuable statements.
	ctx []loopCtx
	// fallthroughs is a stack of fallthrough targets, one per
	// enclosing switch case (nil for the last case).
	fallthroughs []*Block
}

// loopCtx is one enclosing loop, switch or select: where break and
// continue (nil for non-loops) jump to.
type loopCtx struct {
	label string
	brk   *Block
	cont  *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) append(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the enclosing label name, if
// the statement was wrapped in a LabeledStmt.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch v := s.(type) {
	case *ast.LabeledStmt:
		b.stmt(v.Stmt, v.Label.Name)

	case *ast.BlockStmt:
		b.stmtList(v.List)

	case *ast.IfStmt:
		if v.Init != nil {
			b.append(v.Init)
		}
		b.append(v.Cond)
		cond := b.cur
		then := b.newBlock()
		join := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmtList(v.Body.List)
		b.edge(b.cur, join)
		if v.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(v.Else, "")
			b.edge(b.cur, join)
			b.g.Branches = append(b.g.Branches, CondEdge{Cond: v.Cond, From: cond, True: then, False: els})
		} else {
			b.edge(cond, join)
			b.g.Branches = append(b.g.Branches, CondEdge{Cond: v.Cond, From: cond, True: then, False: join})
		}
		b.cur = join

	case *ast.ForStmt:
		if v.Init != nil {
			b.append(v.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if v.Cond != nil {
			head.Nodes = append(head.Nodes, v.Cond)
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		if v.Cond != nil {
			b.edge(head, exit)
			b.g.Branches = append(b.g.Branches, CondEdge{Cond: v.Cond, From: head, True: body, False: exit})
		}
		// continue runs the post statement (if any) before the header.
		cont := head
		if v.Post != nil {
			cont = b.newBlock()
			cont.Nodes = append(cont.Nodes, v.Post)
			b.edge(cont, head)
		}
		b.ctx = append(b.ctx, loopCtx{label: label, brk: exit, cont: cont})
		b.cur = body
		b.stmtList(v.Body.List)
		b.edge(b.cur, cont)
		b.ctx = b.ctx[:len(b.ctx)-1]
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(b.cur, head)
		// The RangeStmt node itself carries the ranged expression and
		// the key/value definitions for the header.
		head.Nodes = append(head.Nodes, v)
		body := b.newBlock()
		exit := b.newBlock()
		b.edge(head, body)
		b.edge(head, exit)
		b.ctx = append(b.ctx, loopCtx{label: label, brk: exit, cont: head})
		b.cur = body
		b.stmtList(v.Body.List)
		b.edge(b.cur, head)
		b.ctx = b.ctx[:len(b.ctx)-1]
		b.cur = exit

	case *ast.SwitchStmt:
		if v.Init != nil {
			b.append(v.Init)
		}
		if v.Tag != nil {
			b.append(v.Tag)
		}
		b.cases(v.Body.List, label, nil)

	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			b.append(v.Init)
		}
		b.append(v.Assign)
		b.cases(v.Body.List, label, nil)

	case *ast.SelectStmt:
		b.cases(v.Body.List, label, func(c ast.Stmt) ast.Stmt {
			return c.(*ast.CommClause).Comm
		})

	case *ast.ReturnStmt:
		b.append(v)
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		b.append(v)
		switch v.Tok {
		case token.BREAK:
			if t := b.target(v.Label, false); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.g.Exit)
			}
		case token.CONTINUE:
			if t := b.target(v.Label, true); t != nil {
				b.edge(b.cur, t)
			} else {
				b.edge(b.cur, b.g.Exit)
			}
		case token.FALLTHROUGH:
			if n := len(b.fallthroughs); n > 0 && b.fallthroughs[n-1] != nil {
				b.edge(b.cur, b.fallthroughs[n-1])
			}
		case token.GOTO:
			// Approximated: goto is not used in this repository.
			b.edge(b.cur, b.g.Exit)
		}
		b.cur = b.newBlock() // unreachable continuation

	default:
		// Assign, Decl, Expr, Go, Defer, Send, IncDec, Empty: straight-line.
		b.append(s)
	}
}

// cases translates the clause list of a switch, type switch or select.
// comm extracts the clause's communication statement for selects (nil
// for switches, whose clauses carry case expressions instead).
func (b *cfgBuilder) cases(clauses []ast.Stmt, label string, comm func(ast.Stmt) ast.Stmt) {
	entry := b.cur
	join := b.newBlock()
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		b.edge(entry, blocks[i])
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
		}
	}
	if !hasDefault && comm == nil {
		// A switch without default can fall straight through.
		b.edge(entry, join)
	}
	b.ctx = append(b.ctx, loopCtx{label: label, brk: join})
	for i, c := range clauses {
		b.cur = blocks[i]
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				b.append(e)
			}
			body = cc.Body
		case *ast.CommClause:
			if comm != nil && comm(c) != nil {
				b.stmt(comm(c), "")
			}
			body = cc.Body
		}
		next := (*Block)(nil)
		if i+1 < len(blocks) {
			next = blocks[i+1]
		}
		b.fallthroughs = append(b.fallthroughs, next)
		b.stmtList(body)
		b.fallthroughs = b.fallthroughs[:len(b.fallthroughs)-1]
		b.edge(b.cur, join)
	}
	b.ctx = b.ctx[:len(b.ctx)-1]
	b.cur = join
}

// target resolves a break (wantCont=false) or continue (wantCont=true)
// to its jump block, honoring labels.
func (b *cfgBuilder) target(label *ast.Ident, wantCont bool) *Block {
	for i := len(b.ctx) - 1; i >= 0; i-- {
		c := b.ctx[i]
		if label != nil && c.label != label.Name {
			continue
		}
		if wantCont {
			if c.cont != nil {
				return c.cont
			}
			if label != nil {
				return nil
			}
			continue // continue skips switch/select contexts
		}
		return c.brk
	}
	return nil
}

// ReachableFromEntry reports whether blk can execute at all. Blocks
// the builder created as unreachable continuations (after return,
// break, ...) keep vacuously-true dominator rows; path-sensitive
// layers must skip them.
func (g *CFG) ReachableFromEntry(blk *Block) bool {
	return blk == g.Entry || g.reach[g.Entry.Index][blk.Index]
}

// soleReachablePred returns blk's only predecessor reachable from
// Entry, or nil if there are zero or several. A conditional successor
// with a sole reachable predecessor is edge-dominated by its branch:
// every execution entering it just evaluated the condition.
func (g *CFG) soleReachablePred(blk *Block) *Block {
	var sole *Block
	for _, p := range blk.Preds {
		if !g.ReachableFromEntry(p) {
			continue
		}
		if sole != nil && sole != p {
			return nil
		}
		sole = p
	}
	return sole
}

// finalize fills predecessor edges and computes the dominator and
// reachability relations.
func (g *CFG) finalize() {
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	n := len(g.Blocks)

	// Iterative dominators: dom[b] = {b} ∪ ⋂ dom[preds(b)]. Blocks
	// unreachable from Entry keep the full set, which makes dominance
	// queries on dead code vacuously true — the conservative direction
	// for "a required action dominates this site" checks.
	all := make([]bool, n)
	for i := range all {
		all[i] = true
	}
	dom := make([][]bool, n)
	for i := range dom {
		if i == g.Entry.Index {
			dom[i] = make([]bool, n)
			dom[i][i] = true
		} else {
			dom[i] = append([]bool(nil), all...)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry {
				continue
			}
			nd := append([]bool(nil), all...)
			reachablePred := false
			for _, p := range blk.Preds {
				reachablePred = true
				for i := range nd {
					nd[i] = nd[i] && dom[p.Index][i]
				}
			}
			if !reachablePred {
				copy(nd, all)
			}
			nd[blk.Index] = true
			for i := range nd {
				if nd[i] != dom[blk.Index][i] {
					dom[blk.Index] = nd
					changed = true
					break
				}
			}
		}
	}
	g.dom = dom

	// Forward reachability over nonempty paths, by DFS from each block.
	reach := make([][]bool, n)
	for i, blk := range g.Blocks {
		r := make([]bool, n)
		stack := append([]*Block(nil), blk.Succs...)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r[x.Index] {
				continue
			}
			r[x.Index] = true
			stack = append(stack, x.Succs...)
		}
		reach[i] = r
	}
	g.reach = reach
}

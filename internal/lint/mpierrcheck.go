package lint

import (
	"go/ast"
	"go/types"
)

// MPIErrCheck flags calls into repro/internal/mpi whose error result
// is discarded. In this runtime every error can wrap ErrRankFailed:
// dropping it converts a detectable rank failure into a silent hang,
// because the survivor keeps executing a collective sequence its dead
// peer will never match (the exact deadlock class the fail-fast
// machinery of PR 1 exists to surface).
var MPIErrCheck = &Analyzer{
	Name: "mpierrcheck",
	Doc: "every error returned by the mpi runtime (Send, Recv, Wait, Scatterv, " +
		"FaultTolerantScatterv, ...) must be consumed: unchecked errors hide rank " +
		"failures and turn them into hangs",
	Run: runMPIErrCheck,
}

func runMPIErrCheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					checkDiscardedCall(pass, call, "discarded")
				}
			case *ast.GoStmt:
				checkDiscardedCall(pass, s.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkDiscardedCall(pass, s.Call, "discarded by defer statement")
			case *ast.AssignStmt:
				checkAssignedError(pass, s)
			}
			return true
		})
	}
	return nil
}

// mpiErrorCall reports whether call targets an mpi function whose last
// result is an error, returning the function and that result's index.
func mpiErrorCall(pass *Pass, call *ast.CallExpr) (*types.Func, int, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if !isMPIFunc(fn) {
		return nil, 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, 0, false
	}
	idx, ok := sigReturnsError(sig)
	if !ok {
		return nil, 0, false
	}
	return fn, idx, true
}

// checkDiscardedCall reports a call whose results are dropped wholesale
// (expression statement, go, defer).
func checkDiscardedCall(pass *Pass, call *ast.CallExpr, how string) {
	if fn, _, ok := mpiErrorCall(pass, call); ok {
		pass.Reportf(call.Pos(), "error from %s %s: a failed rank would go unnoticed and hang its peers", funcDisplayName(fn), how)
	}
}

// checkAssignedError reports assignments that route an mpi error to the
// blank identifier, in both forms:
//
//	_, _ = mpi.Scatterv(...)    // single call, tuple assignment
//	a, _ := f(), c.Send(...)    // parallel assignment, one value each
func checkAssignedError(pass *Pass, s *ast.AssignStmt) {
	if len(s.Rhs) == 1 {
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, idx, ok := mpiErrorCall(pass, call)
		if !ok || idx >= len(s.Lhs) {
			return
		}
		if isBlank(s.Lhs[idx]) {
			pass.Reportf(call.Pos(), "error from %s assigned to _: a failed rank would go unnoticed and hang its peers", funcDisplayName(fn))
		}
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || i >= len(s.Lhs) {
			continue
		}
		if fn, _, ok := mpiErrorCall(pass, call); ok && isBlank(s.Lhs[i]) {
			pass.Reportf(call.Pos(), "error from %s assigned to _: a failed rank would go unnoticed and hang its peers", funcDisplayName(fn))
		}
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

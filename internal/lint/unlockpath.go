package lint

// UnlockPath enforces release discipline on every control-flow path:
// a lock acquired in a function must be released (or covered by a
// deferred unlock) on every path to every return, including early
// returns; no path may Lock a mutex it already holds (self-deadlock)
// or RLock one it holds exclusively (upgrade deadlock); and
// Unlock/RUnlock must match the acquisition flavor — (*RWMutex).Unlock
// on a read lock panics at run time. The dataflow is must-hold, so a
// lock held on only one arm of a branch is treated as not held at the
// join: conditional lock/unlock pairs guarded by the same condition
// stay silent rather than risk a false alarm. Paths ending in panic,
// os.Exit or log.Fatal* are exempt — panics run the deferred unlocks
// and exits tear the whole process down.
var UnlockPath = &Analyzer{
	Name: "unlockpath",
	Doc: "release discipline: every acquired lock is released on every path, no " +
		"double-Lock, no RLock upgrade, no Unlock/RUnlock flavor mismatch",
	Run: runUnlockPath,
}

func runUnlockPath(pass *Pass) error {
	reportLockFindings(pass, computeLockSets(pass).unlockFindings)
	return nil
}

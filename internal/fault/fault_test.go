package fault

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/monitor"
)

func TestNewPlanValidation(t *testing.T) {
	bad := []Fault{
		{Kind: Crash, Rank: -1, Start: 0},
		{Kind: Crash, Rank: 0, Start: -1},
		{Kind: Crash, Rank: 0, Start: math.NaN()},
		{Kind: LinkDrop, Rank: 0, Start: 2, End: 1},
		{Kind: LinkDrop, Rank: 0, Start: 1, End: 1},
		{Kind: SlowLink, Rank: 0, Start: 0, End: 1, Factor: 0.5},
		{Kind: Kind(99), Rank: 0, Start: 0},
	}
	for i, f := range bad {
		if _, err := NewPlan(f); err == nil {
			t.Errorf("fault %d (%+v) accepted", i, f)
		}
	}
	if _, err := NewPlan(
		Fault{Kind: Crash, Rank: 1, Start: 5},
		Fault{Kind: LinkDrop, Rank: 2, Start: 0, End: 3},
		Fault{Kind: SlowLink, Rank: 3, Start: 1, End: 2, Factor: 4},
	); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestNilPlanIsEmpty(t *testing.T) {
	var p *Plan
	if p.HasFaults() {
		t.Error("nil plan has faults")
	}
	if p.Crashed(0, 1e9) {
		t.Error("nil plan crashed a rank")
	}
	if p.DropsDuring(0, 0, 1e9) {
		t.Error("nil plan dropped a send")
	}
	if got := p.Slowdown(0, 5); got != 1 {
		t.Errorf("nil plan slowdown = %g, want 1", got)
	}
	if _, ok := p.CrashTime(0); ok {
		t.Error("nil plan has a crash time")
	}
	if p.Faults() != nil {
		t.Error("nil plan returned faults")
	}
}

func TestPlanQueries(t *testing.T) {
	p := MustPlan(
		Fault{Kind: Crash, Rank: 1, Start: 10},
		Fault{Kind: Crash, Rank: 1, Start: 7}, // earliest crash wins
		Fault{Kind: LinkDrop, Rank: 2, Start: 3, End: 6},
		Fault{Kind: SlowLink, Rank: 3, Start: 2, End: 4, Factor: 3},
	)
	if ct, ok := p.CrashTime(1); !ok || ct != 7 {
		t.Errorf("crash time = %g, %v; want 7, true", ct, ok)
	}
	if p.Crashed(1, 6.9) {
		t.Error("crashed before crash time")
	}
	if !p.Crashed(1, 7) {
		t.Error("not crashed at crash time")
	}
	if p.Crashed(2, 1e9) {
		t.Error("rank without crash fault crashed")
	}

	// Drop windows: overlap semantics against transfer intervals.
	cases := []struct {
		start, end float64
		want       bool
	}{
		{0, 2.9, false}, // entirely before
		{0, 3, true},    // touches the window start
		{4, 5, true},    // inside
		{5.5, 9, true},  // straddles the end
		{6, 9, false},   // window end is exclusive
		{2.5, 7, true},  // covers the window
	}
	for _, c := range cases {
		if got := p.DropsDuring(2, c.start, c.end); got != c.want {
			t.Errorf("DropsDuring(2, %g, %g) = %v, want %v", c.start, c.end, got, c.want)
		}
	}

	if got := p.Slowdown(3, 3); got != 3 {
		t.Errorf("slowdown inside window = %g, want 3", got)
	}
	if got := p.Slowdown(3, 4); got != 1 {
		t.Errorf("slowdown at exclusive end = %g, want 1", got)
	}
	if got := p.Slowdown(2, 3); got != 1 {
		t.Errorf("slowdown of unafflicted rank = %g, want 1", got)
	}
}

func TestRandomPlanDeterministicAndValid(t *testing.T) {
	cfg := RandomConfig{
		Seed: 42, Ranks: 16, Root: 15, Horizon: 100,
		CrashProb: 0.3, DropProb: 0.3, SlowProb: 0.3, MaxSlow: 4,
	}
	a, b := Random(cfg), Random(cfg)
	if !reflect.DeepEqual(a.Faults(), b.Faults()) {
		t.Fatal("same seed produced different plans")
	}
	cfg.Seed = 43
	c := Random(cfg)
	if reflect.DeepEqual(a.Faults(), c.Faults()) {
		t.Fatal("different seeds produced identical plans")
	}
	for _, f := range a.Faults() {
		if err := f.validate(); err != nil {
			t.Errorf("random plan emitted invalid fault: %v", err)
		}
		if f.Rank == 15 {
			t.Errorf("random plan faulted the exempt root: %+v", f)
		}
		if f.Start < 0 || f.Start >= 100 {
			t.Errorf("fault start %g outside horizon", f.Start)
		}
	}
}

func TestMonitorObserverFeedsBandwidth(t *testing.T) {
	mon := monitor.New(16, nil)
	obs := MonitorObserver(mon)
	obs(SendEvent{Rank: 1, Name: "caseb", At: 1, Items: 10, Outcome: SendDelivered, Nominal: 1, Actual: 4})
	v, _, err := mon.Forecast(monitor.BWResource("caseb"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.25) > 1e-12 {
		t.Errorf("forecast after slowed send = %g, want 0.25", v)
	}
	obs(SendEvent{Rank: 2, Name: "leda", At: 1, Items: 10, Outcome: SendTimedOut, Nominal: 1})
	v, _, err = mon.Forecast(monitor.BWResource("leda"))
	if err != nil {
		t.Fatal(err)
	}
	if v != TimeoutBandwidthFraction {
		t.Errorf("forecast after timeout = %g, want %g", v, TimeoutBandwidthFraction)
	}
}

func TestDegradeProcessorsScalesCommOnly(t *testing.T) {
	mon := monitor.New(16, nil)
	mon.Observe(monitor.BWResource("slowed"), 0, 0.5)
	procs := []core.Processor{
		{Name: "slowed", Comm: cost.Linear{PerItem: 2}, Comp: cost.Linear{PerItem: 1}},
		{Name: "healthy", Comm: cost.Linear{PerItem: 3}, Comp: cost.Linear{PerItem: 1}},
	}
	out := DegradeProcessors(mon, procs)
	if got := out[0].Comm.Eval(10); math.Abs(got-40) > 1e-12 {
		t.Errorf("degraded comm cost = %g, want 40", got)
	}
	if got := out[0].Comp.Eval(10); got != 10 {
		t.Errorf("comp cost changed to %g", got)
	}
	if got := out[1].Comm.Eval(10); got != 30 {
		t.Errorf("healthy comm cost changed to %g", got)
	}
	// Class preserved: a degraded linear platform still solves linearly.
	if c := cost.ClassOf(out[0].Comm); c != cost.LinearClass {
		t.Errorf("degraded comm class = %v, want linear", c)
	}
	// The original slice is untouched.
	if got := procs[0].Comm.Eval(10); got != 20 {
		t.Errorf("input mutated: %g", got)
	}
}

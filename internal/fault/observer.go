package fault

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/monitor"
)

// This file closes the degradation loop through internal/monitor: send
// outcomes observed by the runtime feed the NWS-style forecasters, and
// the re-solve after a permanent failure reads the degraded link costs
// back out — so the rebalanced distribution accounts for the flapping
// links that caused the failure in the first place.

// SendOutcome classifies one root-to-rank transfer attempt.
type SendOutcome int

const (
	// SendDelivered means the transfer completed (possibly slowed).
	SendDelivered SendOutcome = iota
	// SendTimedOut means the root gave up waiting for the transfer's
	// acknowledgement.
	SendTimedOut
	// SendAborted means the serving root crashed mid-transfer: the
	// items never landed (the destination discards the unconfirmed
	// partial data) and a failover follows. The destination's link is
	// not implicated.
	SendAborted
)

// String names the outcome.
func (o SendOutcome) String() string {
	switch o {
	case SendDelivered:
		return "delivered"
	case SendTimedOut:
		return "timed-out"
	default:
		return "aborted"
	}
}

// SendEvent is one observed transfer attempt, reported by the runtime
// to an installed observer.
type SendEvent struct {
	// Rank is the destination's top-level world rank.
	Rank int
	// Name is the destination processor's name.
	Name string
	// Server is the serving root's processor name (empty in events
	// predating root failover).
	Server string
	// At is the virtual time of the outcome.
	At float64
	// Items is the payload size.
	Items int
	// Outcome classifies the attempt.
	Outcome SendOutcome
	// Nominal is the cost-model transfer time; Actual is the observed
	// one (meaningful for delivered sends only).
	Nominal, Actual float64
}

// TimeoutBandwidthFraction is the bandwidth fraction recorded for a
// timed-out send: the link is not proven dead, just unusable right now.
const TimeoutBandwidthFraction = 0.05

// MonitorObserver returns a send-event callback feeding the monitor's
// per-link bandwidth series: a delivered send records nominal/actual
// (1 on a healthy link, below 1 on a slowed one), a timeout records
// TimeoutBandwidthFraction. An aborted send implicates the serving
// root, not the destination's link, so it records a liveness 0 on the
// server's up-series instead (and every other outcome records a
// liveness 1), letting dashboards and re-solves watch root health too.
// Install it on an mpi.World with SetSendObserver.
func MonitorObserver(m *monitor.Monitor) func(SendEvent) {
	return func(ev SendEvent) {
		if ev.Server != "" {
			up := 1.0
			if ev.Outcome == SendAborted {
				up = 0
			}
			m.Observe(monitor.UpResource(ev.Server), ev.At, up)
		}
		if ev.Outcome == SendAborted {
			return
		}
		frac := 1.0
		switch ev.Outcome {
		case SendDelivered:
			if ev.Nominal > 0 && ev.Actual > ev.Nominal {
				frac = ev.Nominal / ev.Actual
			}
		case SendTimedOut:
			frac = TimeoutBandwidthFraction
		}
		m.Observe(monitor.BWResource(ev.Name), ev.At, frac)
	}
}

// DegradeProcessors returns a copy of the processors with each
// communication cost divided by the monitor's bandwidth-fraction
// forecast for that machine's link (clamped into [0.01, 1], as in
// monitor.ApplyForecasts). Processors without measurements are
// untouched. cost.Scaled preserves the analytic class, so the solver
// selection — and Theorem 2 pruning on linear platforms — still
// applies to the degraded costs.
func DegradeProcessors(m *monitor.Monitor, procs []core.Processor) []core.Processor {
	out := append([]core.Processor(nil), procs...)
	for i := range out {
		v, _, err := m.Forecast(monitor.BWResource(out[i].Name))
		if err != nil {
			continue
		}
		if v < 0.01 {
			v = 0.01
		}
		if v < 1 {
			out[i].Comm = cost.Scaled{F: out[i].Comm, Factor: 1 / v}
		}
	}
	return out
}

// Package fault injects deterministic, seeded failures into the
// virtual-time runtime: link drops and timeouts (per-rank,
// per-time-window), transient slowdowns, and permanent rank crashes.
//
// The paper's premise is that grids are heterogeneous; its follow-up
// literature (Marchal et al. 2006, Gallet/Robert/Vivien 2007) drops the
// implicit assumption that they are also reliable. A Plan describes
// what goes wrong and when; internal/mpi consults it during
// fault-tolerant collectives, internal/simgrid converts it into rate
// windows, and the Backoff/Policy types govern how the root retries
// lost sends before declaring a rank dead and rebalancing its share
// over the survivors (the Theorem 2 machinery re-applied to a subset).
//
// Everything is a pure function of its inputs and a seed, so every
// failure scenario replays identically — the property the tests and
// benchmarks rely on.
package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Crash kills a rank permanently at time Start. The rank never
	// receives (or acknowledges) anything from then on.
	Crash Kind = iota
	// LinkDrop makes every transfer to the rank that overlaps
	// [Start, End) be lost: the sender sees a timeout, not an error.
	LinkDrop
	// SlowLink multiplies the duration of transfers to the rank
	// starting inside [Start, End) by Factor (a transient slowdown).
	SlowLink
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case LinkDrop:
		return "link-drop"
	case SlowLink:
		return "slow-link"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Fault is one injected failure. Rank always refers to the top-level
// world's rank numbering, even when a plan is consulted from a
// sub-communicator.
type Fault struct {
	// Kind classifies the fault.
	Kind Kind
	// Rank is the afflicted rank (top-level numbering).
	Rank int
	// Start is the crash instant (Crash) or the window start
	// (LinkDrop, SlowLink), in virtual seconds.
	Start float64
	// End is the window end, exclusive; ignored for Crash.
	End float64
	// Factor is the transfer-duration multiplier of a SlowLink fault;
	// it must be >= 1. Ignored for the other kinds.
	Factor float64
}

// validate checks one fault's invariants.
func (f Fault) validate() error {
	if f.Rank < 0 {
		return fmt.Errorf("fault: negative rank %d", f.Rank)
	}
	if math.IsNaN(f.Start) || math.IsInf(f.Start, 0) || f.Start < 0 {
		return fmt.Errorf("fault: %s on rank %d has start %g", f.Kind, f.Rank, f.Start)
	}
	switch f.Kind {
	case Crash:
		return nil
	case LinkDrop, SlowLink:
		if math.IsNaN(f.End) || f.End <= f.Start {
			return fmt.Errorf("fault: %s window [%g, %g) on rank %d is empty or inverted",
				f.Kind, f.Start, f.End, f.Rank)
		}
		if f.Kind == SlowLink && (math.IsNaN(f.Factor) || f.Factor < 1) {
			return fmt.Errorf("fault: slow-link factor %g on rank %d, want >= 1", f.Factor, f.Rank)
		}
		return nil
	default:
		return fmt.Errorf("fault: unknown kind %d", int(f.Kind))
	}
}

// Plan is a deterministic set of faults. The zero of the type — and a
// nil *Plan — is the empty plan: every query reports "no fault".
type Plan struct {
	faults []Fault
}

// NewPlan validates the faults and assembles a plan.
func NewPlan(faults ...Fault) (*Plan, error) {
	for i, f := range faults {
		if err := f.validate(); err != nil {
			return nil, fmt.Errorf("fault: fault %d: %w", i, err)
		}
	}
	return &Plan{faults: append([]Fault(nil), faults...)}, nil
}

// MustPlan is NewPlan for tests and demos; it panics on invalid faults.
func MustPlan(faults ...Fault) *Plan {
	p, err := NewPlan(faults...)
	if err != nil {
		panic(err)
	}
	return p
}

// Faults returns a copy of the plan's faults.
func (p *Plan) Faults() []Fault {
	if p == nil {
		return nil
	}
	return append([]Fault(nil), p.faults...)
}

// HasFaults reports whether the plan injects anything at all.
func (p *Plan) HasFaults() bool { return p != nil && len(p.faults) > 0 }

// CrashTime returns the earliest crash instant of the rank, if any.
func (p *Plan) CrashTime(rank int) (float64, bool) {
	if p == nil {
		return 0, false
	}
	t, ok := math.Inf(1), false
	for _, f := range p.faults {
		if f.Kind == Crash && f.Rank == rank && f.Start < t {
			t, ok = f.Start, true
		}
	}
	return t, ok
}

// Crashed reports whether the rank is dead at time `at`.
func (p *Plan) Crashed(rank int, at float64) bool {
	t, ok := p.CrashTime(rank)
	return ok && at >= t
}

// DropsDuring reports whether a transfer to the rank spanning
// [start, end] overlaps a link-drop window — i.e. whether the send is
// lost.
func (p *Plan) DropsDuring(rank int, start, end float64) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == LinkDrop && f.Rank == rank && f.Start <= end && start < f.End {
			return true
		}
	}
	return false
}

// Slowdown returns the transfer-duration multiplier for a send to the
// rank starting at time `at`: the product of the active slow-link
// factors, and 1 when none applies.
func (p *Plan) Slowdown(rank int, at float64) float64 {
	if p == nil {
		return 1
	}
	factor := 1.0
	for _, f := range p.faults {
		if f.Kind == SlowLink && f.Rank == rank && at >= f.Start && at < f.End {
			factor *= f.Factor
		}
	}
	return factor
}

// RandomConfig parameterizes a seeded random plan: each non-root rank
// independently draws at most one crash and at most one link fault
// (drop or slowdown, drops taking precedence), so same-rank windows
// never overlap and the plan converts cleanly to simulator windows.
type RandomConfig struct {
	// Seed makes the plan reproducible.
	Seed int64
	// Ranks is the world size.
	Ranks int
	// Root is the rank exempt from faults (the data root); use -1 to
	// allow faults everywhere.
	Root int
	// Horizon bounds all fault times: crashes and window starts fall in
	// [0, Horizon).
	Horizon float64
	// CrashProb, DropProb and SlowProb are the per-rank probabilities
	// of each fault kind.
	CrashProb, DropProb, SlowProb float64
	// MaxSlow bounds slow-link factors, drawn uniformly in
	// [1.5, MaxSlow] (values below 1.5 are raised to 1.5).
	MaxSlow float64
	// WindowFrac sizes drop/slow windows as a fraction of the horizon
	// (default 0.25).
	WindowFrac float64
}

// Random draws a deterministic plan from the config. Two calls with
// the same config return identical plans.
func Random(cfg RandomConfig) *Plan {
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	frac := cfg.WindowFrac
	if frac <= 0 || frac > 1 {
		frac = 0.25
	}
	maxSlow := math.Max(cfg.MaxSlow, 1.5)
	var faults []Fault
	for r := 0; r < cfg.Ranks; r++ {
		if r == cfg.Root {
			continue
		}
		if rng.Float64() < cfg.CrashProb {
			faults = append(faults, Fault{Kind: Crash, Rank: r, Start: rng.Float64() * horizon})
		}
		switch {
		case rng.Float64() < cfg.DropProb:
			start := rng.Float64() * horizon
			faults = append(faults, Fault{
				Kind: LinkDrop, Rank: r,
				Start: start,
				End:   start + (0.1+0.9*rng.Float64())*frac*horizon,
			})
		case rng.Float64() < cfg.SlowProb:
			start := rng.Float64() * horizon
			faults = append(faults, Fault{
				Kind: SlowLink, Rank: r,
				Start:  start,
				End:    start + (0.1+0.9*rng.Float64())*frac*horizon,
				Factor: 1.5 + (maxSlow-1.5)*rng.Float64(),
			})
		}
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Start < faults[j].Start })
	return &Plan{faults: faults}
}

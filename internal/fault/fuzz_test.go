package fault

import (
	"math"
	"testing"
)

// FuzzBackoff drives arbitrary configurations through the schedule and
// asserts the contract the retry loop relies on: every delay is finite
// and non-negative, the sequence is monotone non-decreasing, bounded by
// the (normalized) cap, and deterministic.
func FuzzBackoff(f *testing.F) {
	f.Add(0.25, 2.0, 8.0, 0.0, int64(0))
	f.Add(0.5, 1.0, 3.0, 0.9, int64(7))
	f.Add(1e-9, 10.0, 1e9, 5.0, int64(-1))
	f.Add(math.NaN(), math.Inf(1), -3.0, math.NaN(), int64(12345))
	f.Fuzz(func(t *testing.T, base, factor, cap_, jitter float64, seed int64) {
		b := Backoff{Base: base, Factor: factor, Cap: cap_, Jitter: jitter, Seed: seed}
		nb := b.normalized()
		if !(nb.Base > 0) || !(nb.Factor >= 1) || !(nb.Cap > 0) || !(nb.Jitter >= 0) {
			t.Fatalf("normalization left invalid fields: %+v", nb)
		}
		prev := 0.0
		for k := 0; k <= 48; k++ {
			d := b.Delay(k)
			if math.IsNaN(d) || d < 0 {
				t.Fatalf("Delay(%d) = %g for %+v", k, d, b)
			}
			if d > nb.Cap {
				t.Fatalf("Delay(%d) = %g exceeds cap %g for %+v", k, d, nb.Cap, b)
			}
			if d < prev {
				t.Fatalf("Delay(%d) = %g < Delay(%d) = %g for %+v", k, d, k-1, prev, b)
			}
			if b.Delay(k) != d {
				t.Fatalf("Delay(%d) not deterministic for %+v", k, b)
			}
			prev = d
		}
	})
}

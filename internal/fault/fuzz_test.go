package fault

import (
	"math"
	"testing"
)

// FuzzBackoff drives arbitrary configurations through the schedule and
// asserts the contract the retry loop relies on: every delay is finite
// and non-negative, the sequence is monotone non-decreasing, bounded by
// the (normalized) cap, and deterministic — and that every
// per-destination jitter stream derived with Stream keeps the same
// contract while staying a pure function of (config, id).
func FuzzBackoff(f *testing.F) {
	f.Add(0.25, 2.0, 8.0, 0.0, int64(0))
	f.Add(0.5, 1.0, 3.0, 0.9, int64(7))
	f.Add(1e-9, 10.0, 1e9, 5.0, int64(-1))
	f.Add(math.NaN(), math.Inf(1), -3.0, math.NaN(), int64(12345))
	// Jittered stream configurations: the flapping-link retry regime.
	f.Add(0.25, 2.0, 8.0, 0.9, int64(99))
	f.Add(2.0, 4.0, 1e6, 3.0, int64(-77))
	f.Fuzz(func(t *testing.T, base, factor, cap_, jitter float64, seed int64) {
		b := Backoff{Base: base, Factor: factor, Cap: cap_, Jitter: jitter, Seed: seed}
		nb := b.normalized()
		if !(nb.Base > 0) || !(nb.Factor >= 1) || !(nb.Cap > 0) || !(nb.Jitter >= 0) {
			t.Fatalf("normalization left invalid fields: %+v", nb)
		}
		// The base schedule and a handful of destination streams all
		// satisfy the contract; the stream for a given id is stable.
		schedules := []Backoff{b, b.Stream(0), b.Stream(1), b.Stream(seed), b.Stream(-seed)}
		for si, sb := range schedules {
			snb := sb.normalized()
			prev := 0.0
			for k := 0; k <= 48; k++ {
				d := sb.Delay(k)
				if math.IsNaN(d) || d < 0 {
					t.Fatalf("schedule %d: Delay(%d) = %g for %+v", si, k, d, sb)
				}
				if d > snb.Cap {
					t.Fatalf("schedule %d: Delay(%d) = %g exceeds cap %g for %+v", si, k, d, snb.Cap, sb)
				}
				if d < prev {
					t.Fatalf("schedule %d: Delay(%d) = %g < Delay(%d) = %g for %+v", si, k, d, k-1, prev, sb)
				}
				if sb.Delay(k) != d {
					t.Fatalf("schedule %d: Delay(%d) not deterministic for %+v", si, k, sb)
				}
				prev = d
			}
		}
		if b.Stream(5).Delay(3) != b.Stream(5).Delay(3) {
			t.Fatal("Stream(5) not a pure function of its inputs")
		}
	})
}

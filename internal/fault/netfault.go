package fault

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// This file extends the fault model from rank-level failures (crashes,
// per-rank link windows) to network-level degradation on routed
// multi-hop platforms: an inter-site edge whose bandwidth is cut or
// latency spikes, a link that flaps up and down, and full site
// partitions that heal — the site drops off and rejoins mid-scatter.
//
// A NetFault is declared against the platform graph (edges and sites by
// name). Because the runtime is rank-indexed, the declaration is
// compiled — by simgrid.BuildNetPlan, which owns the routing tables —
// into a NetPlan holding, for every ordered rank pair, the windows
// during which the pair is unreachable (partition, flap-down) and the
// windows during which transfers between them are slowed (degrade).
// The compiled plan is a pure value: every query is deterministic, so
// degraded-network scenarios replay identically from a seed, exactly
// like the rank-level Plan.

// NetKind classifies a network-level fault.
type NetKind int

const (
	// LinkDegrade multiplies the duration of transfers routed over the
	// edge by Factor during [Start, End) — a bandwidth cut or latency
	// spike on one physical link.
	LinkDegrade NetKind = iota
	// LinkFlap takes the edge fully down for the first Duty fraction of
	// every Period inside [Start, End): transfers routed over it during
	// a down phase are lost and must be retried.
	LinkFlap
	// Partition cuts the named site off from the rest of the platform
	// during [Start, End): every transfer crossing the site boundary is
	// lost. End is the heal instant — the site rejoins and transfers
	// flow again.
	Partition
)

// String names the kind.
func (k NetKind) String() string {
	switch k {
	case LinkDegrade:
		return "link-degrade"
	case LinkFlap:
		return "link-flap"
	case Partition:
		return "partition"
	default:
		return fmt.Sprintf("netkind(%d)", int(k))
	}
}

// NetFault is one network-level fault, declared against the platform
// graph's names.
type NetFault struct {
	// Kind classifies the fault.
	Kind NetKind
	// EdgeA and EdgeB name the endpoints of the afflicted edge
	// (LinkDegrade, LinkFlap); order is irrelevant.
	EdgeA, EdgeB string
	// Site names the partitioned site (Partition).
	Site string
	// Start and End bound the fault window in virtual seconds; End is
	// the heal instant for partitions.
	Start, End float64
	// Factor is the transfer-duration multiplier of a LinkDegrade
	// fault; it must be >= 1.
	Factor float64
	// Period and Duty shape a LinkFlap: the edge is down for the first
	// Duty fraction (in (0, 1)) of every Period seconds inside the
	// window.
	Period, Duty float64
}

// Validate checks one network fault's invariants.
func (f NetFault) Validate() error {
	if math.IsNaN(f.Start) || f.Start < 0 || math.IsNaN(f.End) || f.End <= f.Start {
		return fmt.Errorf("fault: %s window [%g, %g) is empty or inverted", f.Kind, f.Start, f.End)
	}
	switch f.Kind {
	case LinkDegrade:
		if f.EdgeA == "" || f.EdgeB == "" {
			return fmt.Errorf("fault: %s without edge endpoints", f.Kind)
		}
		if math.IsNaN(f.Factor) || f.Factor < 1 {
			return fmt.Errorf("fault: %s factor %g on edge %s-%s, want >= 1", f.Kind, f.Factor, f.EdgeA, f.EdgeB)
		}
		return nil
	case LinkFlap:
		if f.EdgeA == "" || f.EdgeB == "" {
			return fmt.Errorf("fault: %s without edge endpoints", f.Kind)
		}
		if math.IsNaN(f.Period) || f.Period <= 0 {
			return fmt.Errorf("fault: %s period %g on edge %s-%s, want > 0", f.Kind, f.Period, f.EdgeA, f.EdgeB)
		}
		if math.IsNaN(f.Duty) || f.Duty <= 0 || f.Duty >= 1 {
			return fmt.Errorf("fault: %s duty %g on edge %s-%s, want in (0, 1)", f.Kind, f.Duty, f.EdgeA, f.EdgeB)
		}
		return nil
	case Partition:
		if f.Site == "" {
			return fmt.Errorf("fault: partition without a site")
		}
		return nil
	default:
		return fmt.Errorf("fault: unknown net kind %d", int(f.Kind))
	}
}

// DownWindows expands a flap into its down phases, clipped to the flap
// window. A degrade or partition expands to its single window.
func (f NetFault) DownWindows() []Window {
	if f.Kind != LinkFlap {
		return []Window{{Start: f.Start, End: f.End}}
	}
	var out []Window
	for t := f.Start; t < f.End; t += f.Period {
		end := t + f.Duty*f.Period
		if end > f.End {
			end = f.End
		}
		out = append(out, Window{Start: t, End: end})
	}
	return out
}

// Window is a half-open interval of virtual time.
type Window struct {
	Start, End float64
}

// FactorWindow is a window with a transfer-duration multiplier.
type FactorWindow struct {
	Window
	Factor float64
}

// netPair is an unordered rank pair (lo < hi).
type netPair struct{ lo, hi int }

func mkPair(a, b int) netPair {
	if a > b {
		a, b = b, a
	}
	return netPair{a, b}
}

// NetPlan is the rank-level compilation of a set of network faults: per
// unordered rank pair, the windows in which the pair is unreachable and
// the windows in which transfers between them run slow. The zero of
// the type — and a nil *NetPlan — reports a perfect network.
type NetPlan struct {
	cuts  map[netPair][]Window
	slows map[netPair][]FactorWindow
}

// NewNetPlan creates an empty compiled plan.
func NewNetPlan() *NetPlan {
	return &NetPlan{
		cuts:  make(map[netPair][]Window),
		slows: make(map[netPair][]FactorWindow),
	}
}

// AddCut records that the pair (a, b) is mutually unreachable during
// the window.
func (np *NetPlan) AddCut(a, b int, w Window) {
	if w.End <= w.Start || a == b {
		return
	}
	p := mkPair(a, b)
	np.cuts[p] = append(np.cuts[p], w)
	sort.Slice(np.cuts[p], func(i, j int) bool { return np.cuts[p][i].Start < np.cuts[p][j].Start })
}

// AddSlow records that transfers between a and b starting inside the
// window take factor times longer.
func (np *NetPlan) AddSlow(a, b int, w FactorWindow) {
	if w.End <= w.Start || w.Factor <= 1 || a == b {
		return
	}
	p := mkPair(a, b)
	np.slows[p] = append(np.slows[p], w)
	sort.Slice(np.slows[p], func(i, j int) bool { return np.slows[p][i].Start < np.slows[p][j].Start })
}

// HasFaults reports whether the plan cuts or slows anything at all.
func (np *NetPlan) HasFaults() bool {
	return np != nil && (len(np.cuts) > 0 || len(np.slows) > 0)
}

// Reachable reports whether a and b can exchange a transfer at time at.
func (np *NetPlan) Reachable(a, b int, at float64) bool {
	if np == nil || a == b {
		return true
	}
	for _, w := range np.cuts[mkPair(a, b)] {
		if at >= w.Start && at < w.End {
			return false
		}
	}
	return true
}

// CutDuring reports whether a transfer between a and b spanning
// [start, end] overlaps an unreachability window — i.e. whether the
// send is lost to the network.
func (np *NetPlan) CutDuring(a, b int, start, end float64) bool {
	if np == nil || a == b {
		return false
	}
	for _, w := range np.cuts[mkPair(a, b)] {
		if w.Start <= end && start < w.End {
			return true
		}
	}
	return false
}

// NextReachable returns the earliest time >= at at which a and b are
// mutually reachable — the heal instant when they are currently cut.
// The result is +Inf only for degenerate plans with abutting windows
// covering all future time (the compiler never emits those).
func (np *NetPlan) NextReachable(a, b int, at float64) float64 {
	if np == nil || a == b {
		return at
	}
	t := at
	for changed := true; changed; {
		changed = false
		for _, w := range np.cuts[mkPair(a, b)] {
			if t >= w.Start && t < w.End {
				t = w.End
				changed = true
			}
		}
	}
	return t
}

// Slowdown returns the transfer-duration multiplier for a transfer
// between a and b starting at time at: the product of the active
// degrade factors, 1 when none applies.
func (np *NetPlan) Slowdown(a, b int, at float64) float64 {
	if np == nil || a == b {
		return 1
	}
	factor := 1.0
	for _, w := range np.slows[mkPair(a, b)] {
		if at >= w.Start && at < w.End {
			factor *= w.Factor
		}
	}
	return factor
}

// Healed reports whether every unreachability window of the plan has
// passed by time at — the network is whole again.
func (np *NetPlan) Healed(at float64) bool {
	if np == nil {
		return true
	}
	for _, ws := range np.cuts {
		for _, w := range ws {
			if at < w.End {
				return false
			}
		}
	}
	return true
}

// RandomNetConfig parameterizes a seeded random network-fault schedule
// over a platform's sites and inter-site edges.
type RandomNetConfig struct {
	// Seed makes the schedule reproducible.
	Seed int64
	// Sites are the candidate partition victims; RootSite, when
	// non-empty, is exempt so the data holder's own site stays attached
	// (set it empty to allow root isolation).
	Sites    []string
	RootSite string
	// Edges are the candidate degrade/flap victims, as endpoint pairs.
	Edges [][2]string
	// Horizon bounds all fault windows.
	Horizon float64
	// PartitionProb, DegradeProb and FlapProb are the per-site /
	// per-edge probabilities of each fault kind.
	PartitionProb, DegradeProb, FlapProb float64
	// MaxFactor bounds degrade factors, drawn in [1.5, MaxFactor].
	MaxFactor float64
}

// RandomNet draws a deterministic network-fault schedule from the
// config. Two calls with the same config return identical schedules.
func RandomNet(cfg RandomNetConfig) []NetFault {
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 1
	}
	maxFactor := math.Max(cfg.MaxFactor, 1.5)
	var faults []NetFault
	for _, site := range cfg.Sites {
		if site == cfg.RootSite {
			continue
		}
		if rng.Float64() < cfg.PartitionProb {
			start := rng.Float64() * 0.6 * horizon
			faults = append(faults, NetFault{
				Kind: Partition, Site: site,
				Start: start,
				End:   start + (0.1+0.4*rng.Float64())*horizon,
			})
		}
	}
	for _, e := range cfg.Edges {
		switch {
		case rng.Float64() < cfg.DegradeProb:
			start := rng.Float64() * 0.6 * horizon
			faults = append(faults, NetFault{
				Kind: LinkDegrade, EdgeA: e[0], EdgeB: e[1],
				Start:  start,
				End:    start + (0.1+0.4*rng.Float64())*horizon,
				Factor: 1.5 + (maxFactor-1.5)*rng.Float64(),
			})
		case rng.Float64() < cfg.FlapProb:
			start := rng.Float64() * 0.6 * horizon
			faults = append(faults, NetFault{
				Kind: LinkFlap, EdgeA: e[0], EdgeB: e[1],
				Start:  start,
				End:    start + (0.2+0.4*rng.Float64())*horizon,
				Period: (0.02 + 0.08*rng.Float64()) * horizon,
				Duty:   0.2 + 0.4*rng.Float64(),
			})
		}
	}
	sort.SliceStable(faults, func(i, j int) bool { return faults[i].Start < faults[j].Start })
	return faults
}

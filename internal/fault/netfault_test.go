package fault

import (
	"math"
	"testing"
)

func TestNetFaultValidate(t *testing.T) {
	cases := []struct {
		name string
		f    NetFault
		ok   bool
	}{
		{"degrade-ok", NetFault{Kind: LinkDegrade, EdgeA: "a", EdgeB: "b", Start: 0, End: 1, Factor: 2}, true},
		{"degrade-low-factor", NetFault{Kind: LinkDegrade, EdgeA: "a", EdgeB: "b", Start: 0, End: 1, Factor: 0.5}, false},
		{"degrade-no-edge", NetFault{Kind: LinkDegrade, Start: 0, End: 1, Factor: 2}, false},
		{"flap-ok", NetFault{Kind: LinkFlap, EdgeA: "a", EdgeB: "b", Start: 0, End: 10, Period: 2, Duty: 0.5}, true},
		{"flap-bad-duty", NetFault{Kind: LinkFlap, EdgeA: "a", EdgeB: "b", Start: 0, End: 10, Period: 2, Duty: 1}, false},
		{"flap-bad-period", NetFault{Kind: LinkFlap, EdgeA: "a", EdgeB: "b", Start: 0, End: 10, Period: 0, Duty: 0.5}, false},
		{"partition-ok", NetFault{Kind: Partition, Site: "remote", Start: 1, End: 2}, true},
		{"partition-no-site", NetFault{Kind: Partition, Start: 1, End: 2}, false},
		{"inverted-window", NetFault{Kind: Partition, Site: "s", Start: 2, End: 2}, false},
		{"nan-start", NetFault{Kind: Partition, Site: "s", Start: math.NaN(), End: 2}, false},
	}
	for _, tc := range cases {
		err := tc.f.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid fault accepted", tc.name)
		}
	}
}

func TestNetFaultDownWindows(t *testing.T) {
	flap := NetFault{Kind: LinkFlap, EdgeA: "a", EdgeB: "b", Start: 0, End: 10, Period: 4, Duty: 0.5}
	ws := flap.DownWindows()
	want := []Window{{0, 2}, {4, 6}, {8, 10}}
	if len(ws) != len(want) {
		t.Fatalf("DownWindows() = %v, want %v", ws, want)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("window %d = %v, want %v", i, ws[i], want[i])
		}
	}
	// The last down phase is clipped to the flap window.
	flap.End = 9
	ws = flap.DownWindows()
	if last := ws[len(ws)-1]; last.End != 9 {
		t.Errorf("clipped last window = %v, want End 9", last)
	}
	// Non-flaps expand to their single window.
	part := NetFault{Kind: Partition, Site: "s", Start: 3, End: 7}
	if ws := part.DownWindows(); len(ws) != 1 || ws[0] != (Window{3, 7}) {
		t.Errorf("partition DownWindows() = %v, want [{3 7}]", ws)
	}
}

func TestNetPlanQueries(t *testing.T) {
	np := NewNetPlan()
	np.AddCut(0, 2, Window{Start: 1, End: 3})
	np.AddCut(2, 0, Window{Start: 5, End: 6}) // order-insensitive keying
	np.AddSlow(1, 2, FactorWindow{Window: Window{Start: 2, End: 4}, Factor: 3})

	if !np.Reachable(0, 2, 0.5) || np.Reachable(0, 2, 1) || np.Reachable(2, 0, 2.9) {
		t.Error("cut window not honored")
	}
	if !np.Reachable(0, 2, 3) || np.Reachable(0, 2, 5.5) {
		t.Error("second cut window wrong")
	}
	if !np.Reachable(0, 1, 1) {
		t.Error("unrelated pair affected")
	}
	if !np.CutDuring(0, 2, 0, 1.5) || np.CutDuring(0, 2, 3, 4.5) || !np.CutDuring(0, 2, 4, 5) {
		t.Error("CutDuring overlap logic wrong")
	}
	if got := np.NextReachable(0, 2, 2); got != 3 {
		t.Errorf("NextReachable(0,2,2) = %g, want 3 (the heal instant)", got)
	}
	if got := np.NextReachable(0, 2, 0.5); got != 0.5 {
		t.Errorf("NextReachable while reachable = %g, want 0.5", got)
	}
	if got := np.Slowdown(1, 2, 3); got != 3 {
		t.Errorf("Slowdown(1,2,3) = %g, want 3", got)
	}
	if got := np.Slowdown(1, 2, 4); got != 1 {
		t.Errorf("Slowdown after window = %g, want 1", got)
	}
	if np.Healed(4) {
		t.Error("Healed(4) with a cut ending at 6")
	}
	if !np.Healed(6) {
		t.Error("not Healed(6) after every cut passed")
	}
}

func TestNetPlanNilSafe(t *testing.T) {
	var np *NetPlan
	if !np.Reachable(0, 1, 0) || np.CutDuring(0, 1, 0, 10) || np.Slowdown(0, 1, 0) != 1 {
		t.Error("nil NetPlan must report a perfect network")
	}
	if np.NextReachable(0, 1, 2) != 2 || !np.Healed(0) || np.HasFaults() {
		t.Error("nil NetPlan derived queries wrong")
	}
}

func TestNetPlanAbuttingCuts(t *testing.T) {
	// Two abutting cut windows (a flap phase ending where a partition
	// begins): NextReachable must hop across both.
	np := NewNetPlan()
	np.AddCut(0, 1, Window{Start: 1, End: 2})
	np.AddCut(0, 1, Window{Start: 2, End: 4})
	if got := np.NextReachable(0, 1, 1.5); got != 4 {
		t.Errorf("NextReachable across abutting cuts = %g, want 4", got)
	}
}

func TestRandomNetDeterministicAndValid(t *testing.T) {
	cfg := RandomNetConfig{
		Seed:          7,
		Sites:         []string{"a", "b", "c"},
		RootSite:      "a",
		Edges:         [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}},
		Horizon:       100,
		PartitionProb: 0.9,
		DegradeProb:   0.5,
		FlapProb:      0.9,
		MaxFactor:     4,
	}
	fs1 := RandomNet(cfg)
	fs2 := RandomNet(cfg)
	if len(fs1) == 0 {
		t.Fatal("high probabilities drew no faults")
	}
	if len(fs1) != len(fs2) {
		t.Fatalf("replay drew %d faults, then %d", len(fs1), len(fs2))
	}
	for i := range fs1 {
		if fs1[i] != fs2[i] {
			t.Fatalf("fault %d differs between replays: %+v vs %+v", i, fs1[i], fs2[i])
		}
		if err := fs1[i].Validate(); err != nil {
			t.Errorf("fault %d invalid: %v", i, err)
		}
		if fs1[i].Kind == Partition && fs1[i].Site == "a" {
			t.Errorf("fault %d partitions the exempt root site", i)
		}
	}
}

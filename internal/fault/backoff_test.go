package fault

import (
	"math"
	"testing"
)

// checkBackoff asserts the three contract properties of a schedule
// over attempts 0..n: monotone non-decreasing, capped, deterministic.
func checkBackoff(t *testing.T, b Backoff, n int) {
	t.Helper()
	nb := b.normalized()
	prev := 0.0
	for k := 0; k <= n; k++ {
		d := b.Delay(k)
		if math.IsNaN(d) || d < 0 {
			t.Fatalf("Delay(%d) = %g", k, d)
		}
		if d < prev {
			t.Fatalf("Delay(%d) = %g < Delay(%d) = %g: not monotone", k, d, k-1, prev)
		}
		if d > nb.Cap {
			t.Fatalf("Delay(%d) = %g exceeds cap %g", k, d, nb.Cap)
		}
		if again := b.Delay(k); again != d {
			t.Fatalf("Delay(%d) not deterministic: %g then %g", k, d, again)
		}
		prev = d
	}
}

func TestBackoffTable(t *testing.T) {
	b := Backoff{Base: 0.5, Factor: 2, Cap: 3}
	want := []float64{0.5, 1, 2, 3, 3, 3}
	for k, w := range want {
		if got := b.Delay(k); math.Abs(got-w) > 1e-12 {
			t.Errorf("Delay(%d) = %g, want %g", k, got, w)
		}
	}
	if got := b.Delay(-3); got != 0.5 {
		t.Errorf("Delay(-3) = %g, want Delay(0) = 0.5", got)
	}
}

func TestBackoffProperties(t *testing.T) {
	schedules := []Backoff{
		{},                             // all defaults
		{Base: 0.5, Factor: 2, Cap: 3}, // plain exponential
		{Base: 0.1, Factor: 3, Cap: 50, Jitter: 0.5, Seed: 7},
		{Base: 1, Factor: 1, Cap: 10, Jitter: 0.9},           // factor 1: jitter clamps to 0
		{Base: 2, Factor: 1.5, Cap: 1},                       // cap below base
		{Base: 0.25, Factor: 2, Cap: 8, Jitter: 5, Seed: -9}, // jitter clamps to factor-1
		{Base: math.NaN(), Factor: math.NaN(), Cap: math.NaN(), Jitter: math.NaN()},
	}
	for i, b := range schedules {
		checkBackoff(t, b, 64)
		// Huge attempt numbers must not overflow past the cap; growing
		// schedules saturate exactly at it.
		nb := b.normalized()
		d := b.Delay(1 << 30)
		if d > nb.Cap {
			t.Errorf("schedule %d: Delay(2^30) = %g exceeds cap %g", i, d, nb.Cap)
		}
		if nb.Factor > 1 && d != nb.Cap {
			t.Errorf("schedule %d: Delay(2^30) = %g, want cap %g", i, d, nb.Cap)
		}
	}
}

func TestBackoffSeedChangesJitter(t *testing.T) {
	a := Backoff{Base: 1, Factor: 2, Cap: 1e9, Jitter: 0.5, Seed: 1}
	b := Backoff{Base: 1, Factor: 2, Cap: 1e9, Jitter: 0.5, Seed: 2}
	differs := false
	for k := 0; k < 16; k++ {
		if a.Delay(k) != b.Delay(k) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("different seeds produced identical jittered schedules")
	}
}

func TestBackoffStreams(t *testing.T) {
	b := Backoff{Base: 0.5, Factor: 2, Cap: 1e9, Jitter: 0.9, Seed: 42}
	// Every stream obeys the schedule contract.
	for id := int64(0); id < 8; id++ {
		checkBackoff(t, b.Stream(id), 48)
	}
	// Streams are deterministic per id...
	for k := 0; k < 8; k++ {
		if b.Stream(3).Delay(k) != b.Stream(3).Delay(k) {
			t.Fatalf("stream replay diverged at attempt %d", k)
		}
	}
	// ...and decorrelated across ids: two destinations retrying in
	// lockstep must not wait identical jittered delays every attempt.
	differs := false
	for k := 0; k < 16; k++ {
		if b.Stream(0).Delay(k) != b.Stream(1).Delay(k) {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("streams 0 and 1 produced identical jittered schedules")
	}
}

func TestBackoffStreamWithoutJitterIsIdentity(t *testing.T) {
	b := Backoff{Base: 0.25, Factor: 2, Cap: 8}
	for id := int64(0); id < 4; id++ {
		for k := 0; k < 12; k++ {
			if got, want := b.Stream(id).Delay(k), b.Delay(k); got != want {
				t.Fatalf("jitter-free stream %d Delay(%d) = %g, want %g", id, k, got, want)
			}
		}
	}
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Timeout != 1 {
		t.Errorf("default timeout = %g, want 1", p.Timeout)
	}
	if p.MaxRetries != 0 {
		t.Errorf("zero-value retries = %d, want 0", p.MaxRetries)
	}
	p = Policy{Timeout: -5, MaxRetries: -2}.WithDefaults()
	if p.Timeout != 1 || p.MaxRetries != 0 {
		t.Errorf("negative fields not normalized: %+v", p)
	}
	d := DefaultPolicy()
	if d.Timeout <= 0 || d.MaxRetries <= 0 {
		t.Errorf("DefaultPolicy not usable: %+v", d)
	}
}

package fault

import (
	"testing"
)

func rangesEqual(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCoalesceRanges(t *testing.T) {
	cases := []struct {
		in, want []Range
	}{
		{nil, nil},
		{[]Range{{0, 2}}, []Range{{0, 2}}},
		{[]Range{{4, 6}, {0, 2}, {2, 4}}, []Range{{0, 6}}},
		{[]Range{{0, 3}, {1, 2}}, []Range{{0, 3}}},
		{[]Range{{0, 2}, {3, 5}}, []Range{{0, 2}, {3, 5}}},
		{[]Range{{0, 0}, {2, 1}}, nil}, // empty ranges vanish
	}
	for _, c := range cases {
		if got := CoalesceRanges(c.in); !rangesEqual(got, c.want) {
			t.Errorf("CoalesceRanges(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestSplitRanges(t *testing.T) {
	pool := []Range{{0, 3}, {5, 9}}
	parts := SplitRanges(pool, []int{2, 0, 4, 1})
	want := [][]Range{
		{{0, 2}},
		nil,
		{{2, 3}, {5, 8}},
		{{8, 9}},
	}
	if len(parts) != len(want) {
		t.Fatalf("got %d parts, want %d", len(parts), len(want))
	}
	for i := range want {
		if !rangesEqual(parts[i], want[i]) {
			t.Errorf("part %d = %v, want %v", i, parts[i], want[i])
		}
	}
}

func TestLedgerDeliverReclaim(t *testing.T) {
	l := NewLedger()
	l.Deliver(0, Range{0, 2}, 1)
	l.Deliver(1, Range{2, 6}, 2)
	l.Deliver(0, Range{2, 3}, 3) // adjacency coalesces — ranks 0, 1 overlap on purpose here
	if got := l.Held(0); got != 3 {
		t.Errorf("Held(0) = %d, want 3", got)
	}
	if got := l.Holdings(0); !rangesEqual(got, []Range{{0, 3}}) {
		t.Errorf("Holdings(0) = %v, want [{0 3}]", got)
	}
	if err := l.VerifyExactlyOnce(6); err == nil {
		t.Error("overlapping holdings passed VerifyExactlyOnce")
	}

	reclaimed := l.Reclaim(0, 4)
	if !rangesEqual(reclaimed, []Range{{0, 3}}) {
		t.Errorf("Reclaim(0) = %v, want [{0 3}]", reclaimed)
	}
	if l.Held(0) != 0 {
		t.Errorf("Held(0) after reclaim = %d, want 0", l.Held(0))
	}
	if got := l.Holders(); !intsEq(got, []int{1}) {
		t.Errorf("Holders = %v, want [1]", got)
	}
	// 3 delivers + 1 reclaim entry.
	if l.Seq() != 4 {
		t.Errorf("Seq = %d, want 4", l.Seq())
	}
}

func TestLedgerVerifyExactlyOnce(t *testing.T) {
	l := NewLedger()
	l.Deliver(0, Range{0, 2}, 1)
	l.Deliver(1, Range{2, 8}, 2)
	if err := l.VerifyExactlyOnce(8); err != nil {
		t.Errorf("full cover rejected: %v", err)
	}
	if err := l.VerifyExactlyOnce(9); err == nil {
		t.Error("gap at the end accepted")
	}
	if err := NewLedger().VerifyExactlyOnce(0); err != nil {
		t.Errorf("empty ledger with n=0 rejected: %v", err)
	}
	if err := NewLedger().VerifyExactlyOnce(1); err == nil {
		t.Error("empty ledger with n=1 accepted")
	}
}

func TestLedgerElection(t *testing.T) {
	l := NewLedger()
	// Empty ledger: everyone is trivially fresh, lowest survivor wins.
	if r, ok := l.ElectRoot([]int{2, 1, 3}); !ok || r != 1 {
		t.Errorf("empty-ledger election = %d, %v; want 1, true", r, ok)
	}
	if _, ok := l.ElectRoot(nil); ok {
		t.Error("election with no survivors succeeded")
	}

	l.Deliver(2, Range{0, 4}, 1)
	l.ReplicateHolders() // rank 2's copy extends through seq 1
	l.Deliver(3, Range{4, 8}, 2)
	l.Replicate(3) // rank 3's copy extends through seq 2

	// Rank 3 has the freshest copy; rank 1 never got one (-1).
	if got := l.ReplicaSeq(1); got != -1 {
		t.Errorf("ReplicaSeq(1) = %d, want -1", got)
	}
	if !l.Fresh(3) || l.Fresh(2) {
		t.Errorf("Fresh(3), Fresh(2) = %v, %v; want true, false", l.Fresh(3), l.Fresh(2))
	}
	if r, _ := l.ElectRoot([]int{1, 2, 3}); r != 3 {
		t.Errorf("election = %d, want freshest rank 3", r)
	}
	// Without rank 3, the stale-but-replicated rank 2 beats the
	// copy-less rank 1.
	if r, _ := l.ElectRoot([]int{1, 2}); r != 2 {
		t.Errorf("election = %d, want rank 2", r)
	}
	// Ties break to the lowest rank.
	l.Replicate(1)
	l.Replicate(2)
	if r, _ := l.ElectRoot([]int{2, 1}); r != 1 {
		t.Errorf("tied election = %d, want lowest rank 1", r)
	}
}

func TestLedgerElectionSkipsUnreachableReplicas(t *testing.T) {
	l := NewLedger()
	l.Deliver(3, Range{0, 4}, 1)
	l.Replicate(3) // rank 3 holds the freshest copy...
	l.Deliver(1, Range{4, 6}, 2)
	l.Replicate(1) // ...no wait: rank 1 does now
	l.Replicate(2) // rank 2 is one entry stale
	l.Deliver(2, Range{6, 8}, 3)

	reachable := map[int]bool{2: true, 3: true}
	eligible := func(r int) bool { return reachable[r] }

	// Rank 1 has the freshest replica but sits on a partitioned site:
	// the election must skip it deterministically, not crown it.
	if r, ok := l.ElectRootEligible([]int{1, 2, 3}, eligible); !ok || r != 2 {
		t.Errorf("election = %d, %v; want reachable rank 2 (freshest eligible)", r, ok)
	}
	// The same electorate with everyone reachable crowns rank 1.
	if r, _ := l.ElectRootEligible([]int{1, 2, 3}, nil); r != 1 {
		t.Errorf("unrestricted election = %d, want 1", r)
	}
	// Replays are deterministic.
	for i := 0; i < 8; i++ {
		if r, _ := l.ElectRootEligible([]int{3, 1, 2}, eligible); r != 2 {
			t.Fatalf("replay %d elected %d, want 2", i, r)
		}
	}
	// All candidates unreachable: the restriction is dropped rather
	// than dead-ending — the plain freshest rule decides.
	if r, ok := l.ElectRootEligible([]int{1, 2, 3}, func(int) bool { return false }); !ok || r != 1 {
		t.Errorf("all-unreachable election = %d, %v; want fallback to 1, true", r, ok)
	}
	// No survivors at all still fails.
	if _, ok := l.ElectRootEligible(nil, eligible); ok {
		t.Error("election with no survivors succeeded")
	}
}

func TestLedgerEncodeDecodeRoundTrip(t *testing.T) {
	l := NewLedger()
	l.Deliver(0, Range{0, 2}, 1.5)
	l.Deliver(2, Range{2, 8}, 3.25)
	l.ReplicateHolders()
	l.Reclaim(2, 4)
	l.Replicate(1)

	got, err := DecodeLedger(l.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq() != l.Seq() {
		t.Errorf("decoded Seq = %d, want %d", got.Seq(), l.Seq())
	}
	for _, r := range []int{0, 1, 2} {
		if !rangesEqual(got.Holdings(r), l.Holdings(r)) {
			t.Errorf("decoded Holdings(%d) = %v, want %v", r, got.Holdings(r), l.Holdings(r))
		}
		if got.ReplicaSeq(r) != l.ReplicaSeq(r) {
			t.Errorf("decoded ReplicaSeq(%d) = %d, want %d", r, got.ReplicaSeq(r), l.ReplicaSeq(r))
		}
	}
	ge, le := got.Entries(), l.Entries()
	if len(ge) != len(le) {
		t.Fatalf("decoded %d entries, want %d", len(ge), len(le))
	}
	for i := range le {
		if ge[i] != le[i] {
			t.Errorf("entry %d = %+v, want %+v", i, ge[i], le[i])
		}
	}
}

func TestDecodeLedgerRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"not a ledger\n",
		"ledger v1\n2 deliver 0 0 2 1\n",    // out of sequence
		"ledger v1\n1 teleport 0 0 2 1\n",   // unknown op
		"ledger v1\n1 deliver zero 0 2 1\n", // unparsable rank
		"ledger v1\nreplica one 1\n",        // unparsable replica
	} {
		if _, err := DecodeLedger([]byte(bad)); err == nil {
			t.Errorf("DecodeLedger(%q) accepted garbage", bad)
		}
	}
}

func intsEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package fault

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the replicated delivery ledger behind root
// failover. The single-port root of the paper's model is a single
// point of failure: if it dies mid-scatter, the survivors must agree
// on (a) which item ranges already landed where, so nothing is sent
// twice, and (b) who takes over as root. The ledger answers both. The
// serving root appends a checkpoint after every confirmed send and
// replicates the (tiny, metadata-only) log to every rank currently
// holding data — a piggyback on the acknowledgement, charged zero
// virtual time. Re-election is then deterministic: the lowest-ranked
// survivor holding a fresh ledger copy wins, and resumes the scatter
// from the last checkpoint by re-solving the paper's distribution
// problem over the survivors for the unconfirmed remainder only.

// Range is a half-open interval [Lo, Hi) of item indices into the
// buffer being scattered (or, for gathers, a degenerate one-slot range
// marking a rank's contribution).
type Range struct {
	Lo, Hi int
}

// Len returns the number of items in the range.
func (r Range) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// RangeLen sums the lengths of a range list.
func RangeLen(ranges []Range) int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	return n
}

// CoalesceRanges sorts a range list by Lo and merges adjacent or
// overlapping entries.
func CoalesceRanges(ranges []Range) []Range {
	var out []Range
	for _, r := range ranges {
		if r.Len() > 0 {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	w := 0
	for _, r := range out {
		if w > 0 && r.Lo <= out[w-1].Hi {
			if r.Hi > out[w-1].Hi {
				out[w-1].Hi = r.Hi
			}
			continue
		}
		out[w] = r
		w++
	}
	return out[:w]
}

// SplitRanges cuts a coalesced range list into consecutive chunks of
// the given sizes. The sizes must sum to at most RangeLen(ranges).
func SplitRanges(ranges []Range, sizes []int) [][]Range {
	out := make([][]Range, len(sizes))
	i, off := 0, 0 // position inside ranges
	for s, size := range sizes {
		for size > 0 && i < len(ranges) {
			r := ranges[i]
			avail := r.Len() - off
			take := size
			if take > avail {
				take = avail
			}
			out[s] = append(out[s], Range{Lo: r.Lo + off, Hi: r.Lo + off + take})
			size -= take
			off += take
			if off == r.Len() {
				i, off = i+1, 0
			}
		}
	}
	return out
}

// LedgerOp classifies a ledger checkpoint.
type LedgerOp int

const (
	// OpDeliver records a confirmed transfer: Rank now holds Range.
	OpDeliver LedgerOp = iota
	// OpReclaim records that Rank was declared dead and Range (one of
	// its holdings) re-entered the undelivered pool.
	OpReclaim
)

// String names the op.
func (o LedgerOp) String() string {
	if o == OpDeliver {
		return "deliver"
	}
	return "reclaim"
}

// Checkpoint is one ledger entry.
type Checkpoint struct {
	// Seq is the entry's 1-based sequence number.
	Seq int
	// Op classifies the entry.
	Op LedgerOp
	// Rank is the holder, in the numbering of the world running the
	// collective that owns the ledger.
	Rank int
	// Range is the item range delivered or reclaimed.
	Range Range
	// At is the virtual time of the confirmation.
	At float64
}

// Ledger is the append-only delivery log. It is not safe for
// concurrent use; in the runtime it lives inside a collective's
// single-threaded outcome computation.
type Ledger struct {
	entries  []Checkpoint
	holdings map[int][]Range
	replicas map[int]int // rank -> Seq its copy extends through
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		holdings: make(map[int][]Range),
		replicas: make(map[int]int),
	}
}

// Seq returns the latest sequence number (0 for an empty ledger).
func (l *Ledger) Seq() int { return len(l.entries) }

// Deliver appends a checkpoint recording that rank holds r, confirmed
// at virtual time `at`.
func (l *Ledger) Deliver(rank int, r Range, at float64) Checkpoint {
	cp := Checkpoint{Seq: len(l.entries) + 1, Op: OpDeliver, Rank: rank, Range: r, At: at}
	l.entries = append(l.entries, cp)
	l.holdings[rank] = CoalesceRanges(append(l.holdings[rank], r))
	return cp
}

// Reclaim appends checkpoints recording that the rank died and its
// holdings re-entered the pool; it returns the reclaimed ranges. The
// rank's replica of the ledger metadata is untouched — a dead rank is
// simply never a candidate in ElectRoot.
func (l *Ledger) Reclaim(rank int, at float64) []Range {
	held := l.holdings[rank]
	delete(l.holdings, rank)
	for _, r := range held {
		l.entries = append(l.entries, Checkpoint{
			Seq: len(l.entries) + 1, Op: OpReclaim, Rank: rank, Range: r, At: at,
		})
	}
	return held
}

// Replicate marks the rank as holding a copy of the ledger through the
// current sequence number.
func (l *Ledger) Replicate(rank int) { l.replicas[rank] = len(l.entries) }

// ReplicateHolders refreshes the replica of every rank currently
// holding data — the metadata piggyback the serving root performs on
// each acknowledged send.
func (l *Ledger) ReplicateHolders() {
	for rank := range l.holdings {
		l.replicas[rank] = len(l.entries)
	}
}

// ReplicaSeq returns the sequence number the rank's ledger copy
// extends through, or -1 if the rank never received a copy.
func (l *Ledger) ReplicaSeq(rank int) int {
	seq, ok := l.replicas[rank]
	if !ok {
		return -1
	}
	return seq
}

// Fresh reports whether the rank's copy is current.
func (l *Ledger) Fresh(rank int) bool { return l.ReplicaSeq(rank) == len(l.entries) }

// ElectRoot returns the deterministic failover winner among the
// survivors: the lowest-ranked survivor whose ledger copy is freshest
// (highest replica sequence number; an empty ledger makes every
// survivor trivially fresh, so the lowest rank wins). It returns false
// only when there are no survivors.
func (l *Ledger) ElectRoot(survivors []int) (int, bool) {
	return l.ElectRootEligible(survivors, nil)
}

// ElectRootEligible is ElectRoot restricted to eligible survivors: a
// survivor for which eligible returns false — typically a replica that
// is itself on a partitioned site, unreachable at election time — is
// skipped deterministically instead of being treated as freshest. A
// nil predicate makes every survivor eligible. When no survivor is
// eligible (every candidate partitioned away from the electorate) the
// restriction is dropped and the plain freshest-replica rule decides,
// so the election never dead-ends while survivors exist.
func (l *Ledger) ElectRootEligible(survivors []int, eligible func(rank int) bool) (int, bool) {
	winner, best, ok := -1, -2, false
	for _, r := range survivors {
		if eligible != nil && !eligible(r) {
			continue
		}
		seq := l.ReplicaSeq(r)
		if !ok || seq > best || (seq == best && r < winner) {
			winner, best, ok = r, seq, true
		}
	}
	if !ok && eligible != nil {
		return l.ElectRootEligible(survivors, nil)
	}
	return winner, ok
}

// Holdings returns the rank's confirmed item ranges, coalesced and
// sorted by Lo.
func (l *Ledger) Holdings(rank int) []Range {
	return append([]Range(nil), l.holdings[rank]...)
}

// Held returns the number of items the rank currently holds.
func (l *Ledger) Held(rank int) int { return RangeLen(l.holdings[rank]) }

// Holders returns the ranks currently holding data, sorted.
func (l *Ledger) Holders() []int {
	out := make([]int, 0, len(l.holdings))
	for rank := range l.holdings {
		out = append(out, rank)
	}
	sort.Ints(out)
	return out
}

// Delivered returns the total number of items currently held across
// all ranks.
func (l *Ledger) Delivered() int {
	n := 0
	for _, held := range l.holdings {
		n += RangeLen(held)
	}
	return n
}

// Entries returns a copy of the checkpoint log.
func (l *Ledger) Entries() []Checkpoint {
	return append([]Checkpoint(nil), l.entries...)
}

// VerifyExactlyOnce checks the exactly-once invariant at scatter
// completion: the current holdings cover [0, n) with no overlap and no
// gap.
func (l *Ledger) VerifyExactlyOnce(n int) error {
	var all []Range
	total := 0
	for _, held := range l.holdings {
		//scatterlint:ignore detorder CoalesceRanges sorts by Lo before merging, so map iteration order never reaches a caller
		all = append(all, held...)
		total += RangeLen(held)
	}
	merged := CoalesceRanges(all)
	covered := RangeLen(merged)
	if covered != total {
		return fmt.Errorf("fault: ledger holds overlapping ranges: %d items held, %d distinct", total, covered)
	}
	if n == 0 {
		if covered != 0 {
			return fmt.Errorf("fault: ledger holds %d items, want 0", covered)
		}
		return nil
	}
	if len(merged) != 1 || merged[0].Lo != 0 || merged[0].Hi != n {
		return fmt.Errorf("fault: ledger covers %v, want [{0 %d}]", merged, n)
	}
	return nil
}

// Encode serializes the ledger in its documented text format (see
// DESIGN.md §9): a version line, one line per checkpoint, then one per
// replica.
func (l *Ledger) Encode() []byte {
	var sb strings.Builder
	sb.WriteString("ledger v1\n")
	for _, cp := range l.entries {
		fmt.Fprintf(&sb, "%d %s %d %d %d %g\n", cp.Seq, cp.Op, cp.Rank, cp.Range.Lo, cp.Range.Hi, cp.At)
	}
	ranks := make([]int, 0, len(l.replicas))
	for r := range l.replicas {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		fmt.Fprintf(&sb, "replica %d %d\n", r, l.replicas[r])
	}
	return []byte(sb.String())
}

// DecodeLedger parses the Encode format and replays it into a fresh
// ledger, restoring entries, holdings and replicas.
func DecodeLedger(data []byte) (*Ledger, error) {
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != "ledger v1" {
		return nil, fmt.Errorf("fault: ledger header %q, want \"ledger v1\"", firstLine(lines))
	}
	l := NewLedger()
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "replica" {
			var rank, seq int
			if _, err := fmt.Sscanf(line, "replica %d %d", &rank, &seq); err != nil {
				return nil, fmt.Errorf("fault: bad replica line %q: %w", line, err)
			}
			l.replicas[rank] = seq
			continue
		}
		var seq, rank, lo, hi int
		var op string
		var at float64
		if _, err := fmt.Sscanf(line, "%d %s %d %d %d %g", &seq, &op, &rank, &lo, &hi, &at); err != nil {
			return nil, fmt.Errorf("fault: bad checkpoint line %q: %w", line, err)
		}
		if seq != len(l.entries)+1 {
			return nil, fmt.Errorf("fault: checkpoint %q out of sequence, want seq %d", line, len(l.entries)+1)
		}
		switch op {
		case "deliver":
			l.entries = append(l.entries, Checkpoint{Seq: seq, Op: OpDeliver, Rank: rank, Range: Range{lo, hi}, At: at})
			l.holdings[rank] = CoalesceRanges(append(l.holdings[rank], Range{lo, hi}))
		case "reclaim":
			l.entries = append(l.entries, Checkpoint{Seq: seq, Op: OpReclaim, Rank: rank, Range: Range{lo, hi}, At: at})
			l.holdings[rank] = subtractRange(l.holdings[rank], Range{lo, hi})
			if len(l.holdings[rank]) == 0 {
				delete(l.holdings, rank)
			}
		default:
			return nil, fmt.Errorf("fault: unknown ledger op %q", op)
		}
	}
	return l, nil
}

// firstLine returns the first line, for error messages.
func firstLine(lines []string) string {
	if len(lines) == 0 {
		return ""
	}
	return lines[0]
}

// subtractRange removes cut from every range in the list.
func subtractRange(ranges []Range, cut Range) []Range {
	var out []Range
	for _, r := range ranges {
		if cut.Hi <= r.Lo || r.Hi <= cut.Lo {
			out = append(out, r)
			continue
		}
		if r.Lo < cut.Lo {
			out = append(out, Range{r.Lo, cut.Lo})
		}
		if cut.Hi < r.Hi {
			out = append(out, Range{cut.Hi, r.Hi})
		}
	}
	return out
}

package fault

import "math"

// Backoff is a capped exponential retry-delay schedule with
// deterministic multiplicative jitter. For a fixed configuration the
// sequence Delay(0), Delay(1), ... is
//
//   - deterministic (a pure function of the configuration and seed),
//   - monotone non-decreasing, and
//   - bounded by Cap,
//
// three properties the retry tests assert. Determinism matters because
// the whole runtime is virtual-time: a retry storm must replay
// identically from a seed.
type Backoff struct {
	// Base is the first retry delay in seconds (default 0.25).
	Base float64
	// Factor is the per-attempt growth, >= 1 (default 2).
	Factor float64
	// Cap bounds every delay (default 8).
	Cap float64
	// Jitter is the multiplicative jitter amplitude: attempt k waits
	// Base*Factor^k*(1+Jitter*u_k) with u_k in [0, 1) derived from the
	// seed. It is clamped to [0, Factor-1] so jitter can never break
	// monotonicity.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
}

// normalized returns the schedule with defaults filled in and the
// jitter clamped into the monotonicity-preserving range.
func (b Backoff) normalized() Backoff {
	if math.IsNaN(b.Base) || b.Base <= 0 {
		b.Base = 0.25
	}
	if math.IsNaN(b.Factor) || b.Factor < 1 {
		b.Factor = 2
	}
	if math.IsNaN(b.Cap) || b.Cap <= 0 {
		b.Cap = 8
	}
	if math.IsNaN(b.Jitter) || b.Jitter < 0 {
		b.Jitter = 0
	}
	if b.Jitter > b.Factor-1 {
		b.Jitter = b.Factor - 1
	}
	return b
}

// Delay returns the wait, in seconds, before retry attempt k
// (0-based).
func (b Backoff) Delay(attempt int) float64 {
	nb := b.normalized()
	if attempt < 0 {
		attempt = 0
	}
	raw := nb.Base * math.Pow(nb.Factor, float64(attempt))
	if nb.Jitter > 0 {
		raw *= 1 + nb.Jitter*unitRand(nb.Seed, attempt)
	}
	if math.IsNaN(raw) || raw > nb.Cap {
		return nb.Cap
	}
	return raw
}

// Stream returns a copy of the schedule whose jitter is decorrelated
// by the given stream id: retries to different destinations draw from
// different (still seeded, still deterministic) jitter streams, so
// flapping-link retries across destinations do not synchronize into
// retry storms that all probe the link during the same down phase. A
// schedule without jitter is returned unchanged — every stream of a
// jitter-free schedule is the same deterministic capped backoff.
func (b Backoff) Stream(id int64) Backoff {
	nb := b.normalized()
	if nb.Jitter == 0 {
		return b
	}
	// Mix the id into the seed through the same splitmix64 finalizer
	// the jitter stream uses, so nearby ids give unrelated streams.
	x := uint64(b.Seed) ^ (0x9e3779b97f4a7c15 * uint64(id+1))
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	b.Seed = int64(x)
	return b
}

// unitRand maps (seed, k) to a uniform value in [0, 1) with a
// splitmix64 finalizer — stateless, so Delay stays a pure function.
func unitRand(seed int64, k int) float64 {
	x := uint64(seed) + 0x9e3779b97f4a7c15*uint64(k+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Policy configures failure detection and recovery for the
// fault-tolerant collectives in internal/mpi.
type Policy struct {
	// Timeout is how long the root waits for a send to be acknowledged
	// before declaring it lost (default 1 second when a plan is set).
	Timeout float64
	// MaxRetries is the number of retries per destination per scatter
	// round after the first attempt; when exhausted the destination is
	// declared permanently failed and its share is rebalanced over the
	// survivors. Negative values mean no retries.
	MaxRetries int
	// Backoff schedules the waits between retries.
	Backoff Backoff
	// Election is the failure-detection plus re-election overhead, in
	// virtual seconds, charged when a serving root crashes and the
	// survivors promote a replacement from the replicated ledger
	// (default: 2×Timeout — the survivors must first miss a heartbeat,
	// then run the agreement round).
	Election float64
}

// DefaultPolicy returns the recommended detection/recovery settings.
func DefaultPolicy() Policy {
	return Policy{Timeout: 1, MaxRetries: 4, Backoff: Backoff{Base: 0.25, Factor: 2, Cap: 8}, Election: 2}
}

// WithDefaults fills unset fields with their defaults.
func (p Policy) WithDefaults() Policy {
	if math.IsNaN(p.Timeout) || p.Timeout <= 0 {
		p.Timeout = 1
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if math.IsNaN(p.Election) || p.Election <= 0 {
		p.Election = 2 * p.Timeout
	}
	return p
}

package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

func init() {
	register("overlap", RootOverlap)
}

// RootOverlap measures what the paper's structural restriction costs:
// its framework keeps the original program's shape, so the root only
// computes after all its sends, while the master/worker literature it
// cites allows the master to overlap computation with communication.
// We compare the two closed forms on the Table 1 grid and on a
// communication-bound variant (links 100x slower), where the overlap
// should matter much more.
func RootOverlap() (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	lps, err := core.ExtractLinear(procs)
	if err != nil {
		return Report{}, err
	}
	n := platform.Table1Rays

	slow := make([]core.LinearProcessor, len(lps))
	copy(slow, lps)
	for i := range slow {
		slow[i].Alpha *= 100
	}

	var rows [][]string
	gains := map[string]float64{}
	for _, sc := range []struct {
		name string
		lps  []core.LinearProcessor
	}{
		{"table-1 grid (compute-bound)", lps},
		{"links 100x slower (comm-bound)", slow},
	} {
		plain, err := core.SolveLinearRational(sc.lps, n)
		if err != nil {
			return Report{}, err
		}
		over, err := core.SolveLinearRootOverlap(sc.lps, n)
		if err != nil {
			return Report{}, err
		}
		gain := 0.0
		if plain.Makespan > 0 {
			gain = (plain.Makespan - over.Makespan) / plain.Makespan
		}
		gains[sc.name] = gain
		rows = append(rows, []string{
			sc.name,
			fmt.Sprintf("%.2f", plain.Makespan),
			fmt.Sprintf("%.2f", over.Makespan),
			fmt.Sprintf("%.3f%%", 100*gain),
		})
	}

	body := trace.Table([]string{"platform", "no overlap (s)", "root overlap (s)", "gain"}, rows) +
		"\nOn the paper's grid the scatter is a sliver of the runtime (alpha\n" +
		"~1e-5 s/ray vs beta ~1e-2 s/ray), so keeping the original program\n" +
		"structure costs almost nothing — the quantitative justification\n" +
		"for the paper's low-intrusiveness choice. On a comm-bound grid the\n" +
		"relaxation wins real time, which is why the master/worker line of\n" +
		"work (Section 6) models the overlap.\n"

	return Report{
		ID:    "overlap",
		Title: "cost of forbidding root communication/computation overlap (Section 6 ablation)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "overlap gain, table-1 grid", Paper: 0, Measured: gains["table-1 grid (compute-bound)"], Unit: "",
				Note: "paper keeps the original structure; gain should be tiny"},
			{Metric: "overlap gain, comm-bound grid", Paper: 0, Measured: gains["links 100x slower (comm-bound)"], Unit: "",
				Note: "where the restriction would start to hurt"},
		},
	}, nil
}

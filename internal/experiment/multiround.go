package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/trace"
)

func init() {
	register("multiround", MultiRoundStudy)
}

// MultiRoundStudy extends the paper toward the divisible-load
// multi-installment technique its Section 6 surveys: splitting each
// share into R rounds lets far processors start computing earlier,
// attacking the stair effect. We sweep R on (a) the Table 1 grid,
// where communication is a sliver of the runtime and one installment
// is nearly optimal — supporting the paper's single-scatter design —
// and (b) a communication-bound variant where installments win
// measurably.
func MultiRoundStudy() (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	lps, err := core.ExtractLinear(procs)
	if err != nil {
		return Report{}, err
	}
	commBound := make([]core.Processor, len(lps))
	for i, lp := range lps {
		lp.Alpha *= 200 // drag the links into the compute's ballpark
		commBound[i] = lp.Processor()
	}

	// Moderate n keeps the exact rational LP (rounds*17 variables)
	// fast while preserving the ratios.
	const n = 50000
	rounds := []int{1, 2, 4, 8}

	var rows [][]string
	gain := map[string]float64{}
	for _, sc := range []struct {
		name  string
		procs []core.Processor
	}{
		{"table-1 grid", procs},
		{"comm-bound (alpha x200)", commBound},
	} {
		var oneRound float64
		bestGain := 0.0
		for _, r := range rounds {
			mr, err := core.MultiRound(sc.procs, n, r)
			if err != nil {
				return Report{}, err
			}
			if r == 1 {
				oneRound = mr.Makespan
			}
			g := (oneRound - mr.Makespan) / oneRound
			if g > bestGain {
				bestGain = g
			}
			rows = append(rows, []string{
				sc.name,
				fmt.Sprintf("%d", r),
				fmt.Sprintf("%.3f", mr.Makespan),
				fmt.Sprintf("%.2f%%", 100*g),
			})
		}
		gain[sc.name] = bestGain
	}

	body := trace.Table([]string{"platform", "rounds", "makespan (s)", "gain vs 1 round"}, rows) +
		"\nOn the paper's grid one installment is already within a hair of\n" +
		"the multi-round optimum — the stair is tiny because the links are\n" +
		"fast relative to the computation. Blow the communication up 200x\n" +
		"and installments recover real time, which is when the divisible-\n" +
		"load multi-installment machinery becomes worth its extra messages.\n"

	return Report{
		ID:    "multiround",
		Title: "multi-installment scatter (divisible-load extension of Section 6)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "best multi-round gain, table-1 grid", Paper: 0, Measured: gain["table-1 grid"], Unit: "",
				Note: "single scatter is near-optimal on the paper's platform"},
			{Metric: "best multi-round gain, comm-bound", Paper: 0, Measured: gain["comm-bound (alpha x200)"], Unit: "",
				Note: "installments shrink the stair when links are slow"},
		},
	}, nil
}

package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/trace"
)

func init() {
	register("hierarchy", HierarchicalScatter)
}

// HierarchicalScatter probes a known weakness of the paper's flat,
// single-level scatter on wide-area grids: every remote processor's
// share crosses the WAN as its own message. A site-aware two-level
// scatter (root ships each remote site's whole block to a site leader,
// which re-scatters over the LAN) pays the WAN latency once per site
// instead of once per rank. On the paper's testbed the WAN latency was
// negligible ("linear communication costs is sufficiently accurate in
// our case"), so we sweep the per-message latency from 0 upward and
// report where the hierarchy starts to win.
func HierarchicalScatter() (Report, error) {
	// The Table 1 grid with site information: leda's 8 CPUs are the
	// remote Montpellier site, everything else is local Strasbourg.
	p := platform.Table1()
	procs, err := p.ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	nRanks := len(procs)
	rootRank := nRanks - 1
	site := func(rank int) int {
		name := procs[rank].Name
		if len(name) >= 4 && name[:4] == "leda" {
			return 1
		}
		return 0
	}
	lps, err := core.ExtractLinear(procs)
	if err != nil {
		return Report{}, err
	}

	const n = platform.Table1Rays
	counts, err := core.Heuristic(procs, n)
	if err != nil {
		return Report{}, err
	}

	runFlat := func(latency float64) (float64, error) {
		w, err := mpi.NewWorld(procs, rootRank)
		if err != nil {
			return 0, err
		}
		w.SetTransferModel(siteModel(lps, site, rootRank, latency))
		stats, err := mpi.Run(w, func(c *mpi.Comm) error {
			var in []int32
			if c.IsRoot() {
				in = make([]int32, n)
			}
			buf, err := mpi.Scatterv(c, in, []int(counts.Distribution))
			if err != nil {
				return err
			}
			c.ChargeItems(len(buf))
			return nil
		})
		if err != nil {
			return 0, err
		}
		return mpi.Makespan(stats), nil
	}

	runHier := func(latency float64) (float64, error) {
		w, err := mpi.NewWorld(procs, rootRank)
		if err != nil {
			return 0, err
		}
		w.SetTransferModel(siteModel(lps, site, rootRank, latency))
		// Remote block: every leda rank's share, shipped to the first
		// leda rank in one message.
		remoteTotal := 0
		leader := -1
		for r := 0; r < nRanks; r++ {
			if site(r) == 1 {
				remoteTotal += counts.Distribution[r]
				if leader < 0 {
					leader = r
				}
			}
		}
		stats, err := mpi.Run(w, func(c *mpi.Comm) error {
			var in []int32
			if c.IsRoot() {
				in = make([]int32, n)
			}
			// Split by site, with the data-holding root forced to
			// sub-rank 0 of the local group so it serves its own site
			// first — the same local service order as the flat run.
			key := c.Rank()
			if c.IsRoot() {
				key = -1
			}
			sub, err := mpi.Split(c, site(c.Rank()), key)
			if err != nil {
				return err
			}
			subCounts := make([]int, sub.Size())
			for i := 0; i < sub.Size(); i++ {
				subCounts[i] = counts.Distribution[sub.ParentRank(i)]
			}

			var buf []int32
			if site(c.Rank()) == 0 {
				// Level 1a: the root scatters the local shares.
				var subData []int32
				if c.IsRoot() {
					subData = make([]int32, n)
				}
				buf, err = mpi.Scatterv(sub, subData, subCounts)
				if err != nil {
					return err
				}
				c.Merge(sub)
				// Level 1b: one WAN message carries the whole remote
				// block to the site leader.
				if c.IsRoot() {
					if err := c.Send(leader, in[:remoteTotal], remoteTotal); err != nil {
						return err
					}
				}
			} else {
				// Level 2: the remote leader receives the block and
				// re-scatters it over the (intra-machine) LAN.
				if c.Rank() == leader {
					if _, err := c.Recv(rootRank); err != nil {
						return err
					}
				}
				var subData []int32
				if sub.Rank() == sub.Root() {
					subData = make([]int32, n)
				}
				buf, err = mpi.Scatterv(sub, subData, subCounts)
				if err != nil {
					return err
				}
				c.Merge(sub)
			}
			c.ChargeItems(len(buf))
			return nil
		})
		if err != nil {
			return 0, err
		}
		return mpi.Makespan(stats), nil
	}

	var rows [][]string
	gain := map[float64]float64{}
	for _, latency := range []float64{0, 0.5, 2, 5} {
		flat, err := runFlat(latency)
		if err != nil {
			return Report{}, err
		}
		hier, err := runHier(latency)
		if err != nil {
			return Report{}, err
		}
		gain[latency] = flat - hier
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", latency),
			fmt.Sprintf("%.2f", flat),
			fmt.Sprintf("%.2f", hier),
			fmt.Sprintf("%+.2f", flat-hier),
		})
	}

	body := trace.Table([]string{"WAN latency (s/msg)", "flat scatter (s)", "two-level scatter (s)", "saving"}, rows) +
		"\nAt the paper's effective latency (~0) the flat single-level\n" +
		"scatter it assumes is the right call — the hierarchy only\n" +
		"reshuffles the same bytes. As per-message WAN latency grows, the\n" +
		"two-level scheme amortizes it across the remote site's 8 CPUs and\n" +
		"pulls ahead, which is when topology-aware collectives (MPICH-G2's\n" +
		"reason for existing, Section 1) become necessary.\n"

	return Report{
		ID:    "hierarchy",
		Title: "flat vs site-aware two-level scatter (extension)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "two-level saving at zero latency", Paper: 0, Measured: gain[0], Unit: "s",
				Note: "paper's regime: flat is fine"},
			{Metric: "two-level saving at 2s latency", Paper: 0, Measured: gain[2], Unit: "s",
				Note: "near the crossover"},
			{Metric: "two-level saving at 5s latency", Paper: 0, Measured: gain[5], Unit: "s",
				Note: "high-latency WAN: hierarchy amortizes per-message cost"},
		},
	}, nil
}

// siteModel builds a transfer model over the ordered Table 1
// processors: per-item costs from the calibrated alphas (the
// destination's, as in the star model), plus a per-message latency on
// cross-site transfers. Intra-machine transfers (same leda box) are
// free.
func siteModel(lps []core.LinearProcessor, site func(int) int, rootRank int, latency float64) mpi.TransferModel {
	return func(from, to, items int) float64 {
		if from == to || items == 0 {
			return 0
		}
		// Per-item leg cost: the non-root endpoint's alpha (both legs
		// when neither endpoint is the root).
		cost := 0.0
		if from != rootRank {
			cost += lps[from].Alpha * float64(items)
		}
		if to != rootRank {
			cost += lps[to].Alpha * float64(items)
		}
		if site(from) == 1 && site(to) == 1 {
			// Same remote machine (the leda Origin): its CPUs share
			// memory, so the intra-site re-scatter is almost free.
			cost = 1e-7 * float64(items)
		}
		if site(from) != site(to) {
			cost += latency
		}
		return cost
	}
}

package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/trace"
)

func init() {
	register("heterogeneity", HeterogeneityScaling)
}

// HeterogeneityScaling answers the "when does this matter?" question
// the paper's introduction raises: the more heterogeneous the
// processors, the worse the uniform MPI_Scatter and the bigger the
// payoff of the balanced MPI_Scatterv. We sweep a 16-processor grid
// whose CPU speeds span a growing ratio (from homogeneous to 16x) and
// report the uniform/balanced makespan ratio at each point. The
// uniform distribution is asymptotically limited by the slowest
// processor (n/p of the work at the slowest rate), so the speedup
// approaches p*beta_slow / sum-of-rates as the spread widens.
func HeterogeneityScaling() (Report, error) {
	const (
		p = 16
		n = 200000
	)
	var rows [][]string
	gainAt := map[float64]float64{}
	for _, spread := range []float64{1, 2, 4, 8, 16} {
		// Betas geometric between base and base*spread; tiny uniform
		// alphas so the effect isolates CPU heterogeneity.
		procs := make([]core.Processor, p)
		for i := 0; i < p; i++ {
			frac := float64(i) / float64(p-1)
			beta := 0.004 * math.Pow(spread, frac)
			procs[i] = core.Processor{
				Name: fmt.Sprintf("n%02d", i),
				Comm: cost.Linear{PerItem: 2e-5},
				Comp: cost.Linear{PerItem: beta},
			}
		}
		procs[p-1].Comm = cost.Zero
		balanced, err := core.Heuristic(procs, n)
		if err != nil {
			return Report{}, err
		}
		uniform := core.Makespan(procs, core.Uniform(p, n))
		ratio := uniform / balanced.Makespan
		gainAt[spread] = ratio
		rows = append(rows, []string{
			fmt.Sprintf("%gx", spread),
			fmt.Sprintf("%.2f", uniform),
			fmt.Sprintf("%.2f", balanced.Makespan),
			fmt.Sprintf("%.2f", ratio),
		})
	}
	body := trace.Table([]string{"speed spread (max/min)", "uniform (s)", "balanced (s)", "speedup"}, rows) +
		"\nAt spread 1 (a homogeneous cluster) balancing buys nothing — the\n" +
		"paper's observation that codes written for parallel computers are\n" +
		"fine there. The paper's own testbed spans a spread of about 4\n" +
		"(ratings 0.57 to 2.33), where the balanced scatter halves the\n" +
		"runtime, exactly the Figure 2 vs Figure 3 result.\n"
	return Report{
		ID:    "heterogeneity",
		Title: "balancing payoff versus platform heterogeneity",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "speedup at spread 1", Paper: 1, Measured: gainAt[1], Unit: "x",
				Note: "homogeneous: uniform is already optimal"},
			{Metric: "speedup at spread 4", Paper: 853.0 / 430.0, Measured: gainAt[4], Unit: "x",
				Note: "the paper's testbed spans ~4x; Fig.2/Fig.3 is ~2x"},
			{Metric: "speedup at spread 16", Paper: 0, Measured: gainAt[16], Unit: "x",
				Note: "extrapolation beyond the paper"},
		},
	}, nil
}

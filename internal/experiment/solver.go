package experiment

// Solver prices the incremental solver engine (core.Plan/core.Engine)
// against the from-scratch dynamic programs on the Table 1 grid at the
// paper's full 817,101-item scale: cold solves, warm re-solves after a
// crash (pure-suffix and partial row reuse), and plan-cache hits, with
// every incremental answer checked bit-identical to the fresh solver.
// `scatterbench -solver FILE` writes the same numbers as
// BENCH_solver.json.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
)

func init() {
	register("solver", Solver)
}

// solverRow is one measurement of BENCH_solver.json.
type solverRow struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Makespan float64 `json:"makespan_virtual_s"`
	// IdenticalToFresh reports bit-identity with the fresh solve the
	// row is compared against; rows that ARE the fresh baseline omit it.
	IdenticalToFresh *bool  `json:"identical_to_fresh,omitempty"`
	Note             string `json:"note"`
}

// solverDoc is the BENCH_solver.json document.
type solverDoc struct {
	Benchmark  string      `json:"benchmark"`
	Platform   string      `json:"platform"`
	Items      int         `json:"items"`
	Processors int         `json:"processors"`
	Workers    int         `json:"workers"`
	Rows       []solverRow `json:"rows"`
	// SpeedupWarmResolveVsCold is fresh-resolve time over warm
	// Plan.Resolve time after the first-served processor crashes
	// (acceptance floor: 10).
	SpeedupWarmResolveVsCold float64 `json:"speedup_warm_resolve_vs_cold"`
	// SpeedupCacheHitVsCold is the engine's cold-solve time over its
	// plan-cache hit time (acceptance floor: 100).
	SpeedupCacheHitVsCold float64 `json:"speedup_cache_hit_vs_cold"`
}

// timeSolve runs f once; sub-millisecond results are re-run in a batch
// so the O(p) reconstruction paths report a stable per-call time.
func timeSolve(f func() error) (float64, error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed >= 1e-3 {
		return elapsed, nil
	}
	// Spend ~10ms total on the batch, capped at 1000 reps.
	reps := 1000
	if elapsed > 1e-5 {
		reps = int(1e-2/elapsed) + 1
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(reps), nil
}

func identical(a, b core.Result) bool {
	if len(a.Distribution) != len(b.Distribution) || a.Makespan != b.Makespan {
		return false
	}
	for i := range a.Distribution {
		if a.Distribution[i] != b.Distribution[i] {
			return false
		}
	}
	return true
}

// dropAt returns procs without the processor at service position i.
func dropAt(procs []core.Processor, i int) []core.Processor {
	out := make([]core.Processor, 0, len(procs)-1)
	out = append(out, procs[:i]...)
	return append(out, procs[i+1:]...)
}

// runSolver executes the measurement matrix at the given scale.
func runSolver(items int) (solverDoc, error) {
	doc := solverDoc{
		Benchmark: "Solver",
		Platform:  "table1-descending-bandwidth",
		Items:     items,
		Workers:   runtime.GOMAXPROCS(0),
	}
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return doc, err
	}
	doc.Processors = len(procs)
	add := func(name string, secs float64, res core.Result, ident *bool, note string) {
		doc.Rows = append(doc.Rows, solverRow{
			Name: name, Seconds: secs, Makespan: res.Makespan,
			IdenticalToFresh: ident, Note: note,
		})
	}
	boolp := func(b bool) *bool { return &b }

	// Cold from-scratch solves: the sequential and pooled-parallel DP.
	var cold, par core.Result
	coldSecs, err := timeSolve(func() (e error) { cold, e = core.Algorithm2(procs, items); return })
	if err != nil {
		return doc, err
	}
	add("algorithm2_cold", coldSecs, cold, nil, "from-scratch sequential DP; the cold baseline")
	parSecs, err := timeSolve(func() (e error) { par, e = core.Algorithm2Parallel(procs, items, 0); return })
	if err != nil {
		return doc, err
	}
	add("algorithm2_parallel", parSecs, par, boolp(identical(par, cold)),
		"persistent worker pool over row chunks; bit-identical by construction")

	// Retained plan: build once, then answer crash re-solves from it.
	var pl *core.Plan
	var planRes core.Result
	planSecs, err := timeSolve(func() (e error) {
		pl, e = core.SolvePlan(procs, items)
		if e != nil {
			return e
		}
		planRes, e = pl.Lookup(items, 0)
		return
	})
	if err != nil {
		return doc, err
	}
	add("plan_build_cold", planSecs, planRes, boolp(identical(planRes, cold)),
		"cold DP retaining every row for incremental reuse")

	// Crash of the first-served processor, detected after the round:
	// the whole pool is reclaimed, the survivors are a pure suffix of
	// the plan's platform, and every retained row stays valid.
	first := dropAt(procs, 0)
	var freshFirst, warmFirst core.Result
	freshFirstSecs, err := timeSolve(func() (e error) { freshFirst, e = core.Algorithm2(first, items); return })
	if err != nil {
		return doc, err
	}
	add("fresh_resolve_first_served_crash", freshFirstSecs, freshFirst, nil,
		"from-scratch re-solve over the survivors; what the rebalance path paid before this engine")
	warmFirstSecs, err := timeSolve(func() (e error) { warmFirst, e = pl.Resolve(items, first); return })
	if err != nil {
		return doc, err
	}
	add("warm_resolve_first_served_crash", warmFirstSecs, warmFirst, boolp(identical(warmFirst, freshFirst)),
		"pure-suffix reuse: zero DP rows recomputed, O(p) reconstruction")
	doc.SpeedupWarmResolveVsCold = freshFirstSecs / warmFirstSecs

	// Crash in the middle of the service order: the rows after the
	// crash position are reused, the ones before it are recomputed.
	midPos := len(procs) / 2
	mid := dropAt(procs, midPos)
	var freshMid, warmMid core.Result
	freshMidSecs, err := timeSolve(func() (e error) { freshMid, e = core.Algorithm2(mid, items); return })
	if err != nil {
		return doc, err
	}
	add("fresh_resolve_mid_crash", freshMidSecs, freshMid, nil,
		fmt.Sprintf("from-scratch re-solve after losing service position %d", midPos))
	warmMidSecs, err := timeSolve(func() (e error) { warmMid, e = pl.Resolve(items, mid); return })
	if err != nil {
		return doc, err
	}
	add("warm_resolve_mid_crash", warmMidSecs, warmMid, boolp(identical(warmMid, freshMid)),
		fmt.Sprintf("partial reuse: rows %d.. reused, rows 0..%d recomputed", midPos+1, midPos-1))

	// Engine with plan cache: cold fill, exact-signature hit, and a
	// warm start for the crashed platform.
	eng := core.NewEngine(0)
	var engCold, engHit, engWarm core.Result
	engColdSecs, err := timeSolve(func() (e error) { engCold, e = eng.Solve(procs, items); return })
	if err != nil {
		return doc, err
	}
	add("engine_cold_solve", engColdSecs, engCold, boolp(identical(engCold, cold)),
		"first Engine.Solve on the platform: builds and caches the plan")
	engHitSecs, err := timeSolve(func() (e error) { engHit, e = eng.Solve(procs, items); return })
	if err != nil {
		return doc, err
	}
	add("engine_cache_hit", engHitSecs, engHit, boolp(identical(engHit, cold)),
		"repeat Engine.Solve: answered from the cached plan in O(p)")
	doc.SpeedupCacheHitVsCold = engColdSecs / engHitSecs
	start := time.Now()
	engWarm, err = eng.Solve(first, items)
	if err != nil {
		return doc, err
	}
	engWarmSecs := time.Since(start).Seconds()
	add("engine_warm_resolve", engWarmSecs, engWarm, boolp(identical(engWarm, freshFirst)),
		"Engine.Solve after the first-served crash: warm-started from the cached plan (single shot; a repeat would measure a cache hit)")

	s := eng.Stats()
	if s.ColdSolves != 1 || s.CacheHits < 1 || s.Resolves != 1 {
		return doc, fmt.Errorf("engine stats off: %+v", s)
	}
	for _, row := range doc.Rows {
		if row.IdenticalToFresh != nil && !*row.IdenticalToFresh {
			return doc, fmt.Errorf("%s: result differs from fresh solve", row.Name)
		}
	}
	return doc, nil
}

// SolverJSON renders BENCH_solver.json (scatterbench -solver) at the
// paper's full scale.
func SolverJSON() ([]byte, error) {
	doc, err := runSolver(platform.Table1Rays)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Solver is the registered experiment. Wall-clock timings are
// hardware-dependent, so the report's comparisons are the scale-free
// identity checks plus the measured speedups as extension rows (the
// paper has no incremental-solver counterpart; Paper is 0 throughout).
// The registry run uses a reduced item count to stay interactive; the
// committed BENCH_solver.json is regenerated at full scale via
// `make bench-solver`.
func Solver() (Report, error) {
	doc, err := runSolver(solverReportItems)
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental solver on the Table 1 grid, %d items (full scale: %d):\n\n",
		doc.Items, platform.Table1Rays)
	fmt.Fprintf(&sb, "%-34s %14s %10s\n", "measurement", "seconds", "identical")
	for _, row := range doc.Rows {
		ident := "baseline"
		if row.IdenticalToFresh != nil {
			ident = fmt.Sprintf("%t", *row.IdenticalToFresh)
		}
		fmt.Fprintf(&sb, "%-34s %14.9f %10s\n", row.Name, row.Seconds, ident)
	}
	fmt.Fprintf(&sb, "\nwarm resolve vs cold re-solve: %.1fx   plan-cache hit vs cold solve: %.1fx\n",
		doc.SpeedupWarmResolveVsCold, doc.SpeedupCacheHitVsCold)

	rep := Report{
		ID:    "solver",
		Title: "incremental solver: retained plans, warm re-solves, plan cache (extension)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: "warm resolve speedup after first-served crash", Paper: 0,
				Measured: doc.SpeedupWarmResolveVsCold, Unit: "x",
				Note: "extension: acceptance floor 10x at full scale"},
			{Metric: "plan-cache hit speedup", Paper: 0,
				Measured: doc.SpeedupCacheHitVsCold, Unit: "x",
				Note: "extension: acceptance floor 100x at full scale"},
		},
	}
	return rep, nil
}

// solverReportItems keeps the registry run of the solver experiment
// interactive; BENCH_solver.json is generated at platform.Table1Rays.
const solverReportItems = 100000

package experiment

// Solver prices the incremental solver engine (core.Plan/core.Engine)
// against the from-scratch dynamic programs on the Table 1 grid at the
// paper's full 817,101-item scale: cold solves, a worker-pool scaling
// curve, the coarsen-then-refine approximate solver with its machine-
// checked error band, warm re-solves after a crash (pure-suffix and
// partial row reuse), and plan-cache hits. Every incremental exact
// answer is checked bit-identical to the fresh solver; every coarse
// answer is checked against its own reported optimality band.
// `scatterbench -solver FILE` writes the same numbers as
// BENCH_solver.json.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
)

func init() {
	register("solver", Solver)
}

// solverRow is one measurement of BENCH_solver.json.
type solverRow struct {
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Makespan float64 `json:"makespan_virtual_s"`
	// Workers is the row-pool size for scaling-curve rows; 0 elsewhere.
	Workers int `json:"workers,omitempty"`
	// Bound/LowerBound/Granularity are set on coarse rows only: the
	// realized optimality band max(0, makespan - lower bound), the
	// optimistic lower bound itself, and the grid step that produced it.
	Bound       float64 `json:"bound_virtual_s,omitempty"`
	LowerBound  float64 `json:"lower_bound_virtual_s,omitempty"`
	Granularity int     `json:"granularity,omitempty"`
	// IdenticalToFresh reports bit-identity with the fresh solve the
	// row is compared against; rows that ARE the fresh baseline, and
	// coarse rows (bounded, not identical), omit it.
	IdenticalToFresh *bool  `json:"identical_to_fresh,omitempty"`
	Note             string `json:"note"`
}

// solverDoc is the BENCH_solver.json document.
type solverDoc struct {
	Benchmark  string `json:"benchmark"`
	Platform   string `json:"platform"`
	Items      int    `json:"items"`
	Processors int    `json:"processors"`
	// GOMAXPROCS records the host parallelism the scaling curve ran
	// under: rows with workers beyond it cannot improve and say so.
	GOMAXPROCS int         `json:"gomaxprocs"`
	Rows       []solverRow `json:"rows"`
	// SpeedupParallelBestVsW1 is the workers=1 pooled time over the
	// best time on the scaling curve. On a single-CPU host this is ~1
	// by physics; on multi-core hosts it must exceed 1.
	SpeedupParallelBestVsW1 float64 `json:"speedup_parallel_best_vs_w1"`
	// SpeedupCoarseRefineVsCold is the sequential cold-solve time over
	// the coarsen-then-refine time (acceptance floor at full scale:
	// 100), with the result within CoarseRelativeBand of optimal.
	SpeedupCoarseRefineVsCold float64 `json:"speedup_coarse_refine_vs_cold"`
	// CoarseRelativeBand is the refined solve's realized band divided
	// by its lower bound: the machine-checked worst-case relative
	// distance from the optimum.
	CoarseRelativeBand float64 `json:"coarse_relative_band"`
	// SpeedupWarmResolveVsCold is fresh-resolve time over warm
	// Plan.Resolve time after the first-served processor crashes
	// (acceptance floor: 10).
	SpeedupWarmResolveVsCold float64 `json:"speedup_warm_resolve_vs_cold"`
	// SpeedupCacheHitVsCold is the engine's cold-solve time over its
	// plan-cache hit time (acceptance floor: 100).
	SpeedupCacheHitVsCold float64 `json:"speedup_cache_hit_vs_cold"`
}

// SolverOptions parameterizes the benchmark; zero values select the
// committed-document defaults.
type SolverOptions struct {
	// Items is the scatter size; 0 means the paper's full 817,101.
	Items int
	// Workers restricts the scaling curve to a single pool size
	// (workers=1 is still measured as the baseline); 0 sweeps
	// 1, 2, 4, 8, and GOMAXPROCS.
	Workers int
	// Granularity is the coarse grid step; 0 means the engine default.
	Granularity int
}

// timeSolve runs f once; sub-millisecond results are re-run in a batch
// so the O(p) reconstruction paths report a stable per-call time.
func timeSolve(f func() error) (float64, error) {
	start := time.Now()
	if err := f(); err != nil {
		return 0, err
	}
	elapsed := time.Since(start).Seconds()
	if elapsed >= 1e-3 {
		return elapsed, nil
	}
	// Spend ~10ms total on the batch, capped at 1000 reps.
	reps := 1000
	if elapsed > 1e-5 {
		reps = int(1e-2/elapsed) + 1
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		if err := f(); err != nil {
			return 0, err
		}
	}
	return time.Since(start).Seconds() / float64(reps), nil
}

func identical(a, b core.Result) bool {
	if len(a.Distribution) != len(b.Distribution) || a.Makespan != b.Makespan {
		return false
	}
	for i := range a.Distribution {
		if a.Distribution[i] != b.Distribution[i] {
			return false
		}
	}
	return true
}

// dropAt returns procs without the processor at service position i.
func dropAt(procs []core.Processor, i int) []core.Processor {
	out := make([]core.Processor, 0, len(procs)-1)
	out = append(out, procs[:i]...)
	return append(out, procs[i+1:]...)
}

// scalingWorkers is the worker-count sweep: 1, 2, 4, 8, and
// GOMAXPROCS, deduplicated and sorted. A fixed override collapses it
// to {1, w}.
func scalingWorkers(override int) []int {
	set := map[int]bool{1: true}
	if override > 0 {
		set[override] = true
	} else {
		for _, w := range []int{2, 4, 8, runtime.GOMAXPROCS(0)} {
			set[w] = true
		}
	}
	ws := make([]int, 0, len(set))
	for w := range set {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	return ws
}

// runSolver executes the measurement matrix at the given scale.
func runSolver(opts SolverOptions) (solverDoc, error) {
	items := opts.Items
	if items <= 0 {
		items = platform.Table1Rays
	}
	gran := opts.Granularity
	if gran <= 0 {
		gran = core.DefaultGranularity
	}
	maxprocs := runtime.GOMAXPROCS(0)
	doc := solverDoc{
		Benchmark:  "Solver",
		Platform:   "table1-descending-bandwidth",
		Items:      items,
		GOMAXPROCS: maxprocs,
	}
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return doc, err
	}
	doc.Processors = len(procs)
	add := func(row solverRow) { doc.Rows = append(doc.Rows, row) }
	boolp := func(b bool) *bool { return &b }

	// Cold from-scratch sequential DP: the baseline everything else is
	// priced against.
	var cold core.Result
	coldSecs, err := timeSolve(func() (e error) { cold, e = core.Algorithm2(procs, items); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "algorithm2_cold", Seconds: coldSecs, Makespan: cold.Makespan,
		Note: "from-scratch sequential DP; the cold baseline"})

	// Worker-pool scaling curve. Every point is checked bit-identical
	// to the sequential solve; times are reported honestly even when
	// the host cannot profit (workers > GOMAXPROCS).
	var w1Secs, bestSecs float64
	for _, w := range scalingWorkers(opts.Workers) {
		var par core.Result
		parSecs, err := timeSolve(func() (e error) { par, e = core.Algorithm2Parallel(procs, items, w); return })
		if err != nil {
			return doc, err
		}
		note := "persistent worker pool over row chunks; bit-identical by construction"
		if w > maxprocs {
			note += fmt.Sprintf(" (workers exceed GOMAXPROCS=%d: no speedup is physically possible on this host)", maxprocs)
		}
		add(solverRow{Name: fmt.Sprintf("algorithm2_parallel_w%d", w), Seconds: parSecs,
			Makespan: par.Makespan, Workers: w,
			IdenticalToFresh: boolp(identical(par, cold)), Note: note})
		if w == 1 {
			w1Secs = parSecs
		}
		if bestSecs == 0 || parSecs < bestSecs {
			bestSecs = parSecs
		}
	}
	doc.SpeedupParallelBestVsW1 = w1Secs / bestSecs

	// Coarsen-then-refine: solve on a g-step grid, refine in a band
	// around the coarse plan, and report the machine-checked distance
	// from the optimum. The checks below do not trust the solver: the
	// exact optimum is already in hand, so the band is verified against
	// it directly.
	var crRes, coRes core.CoarseResult
	crSecs, err := timeSolve(func() (e error) {
		crRes, e = core.SolveCoarseOpt(procs, items, gran, core.CoarseOptions{})
		return
	})
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "coarse_refine_cold", Seconds: crSecs, Makespan: crRes.Makespan,
		Bound: crRes.Band, LowerBound: crRes.LowerBound, Granularity: crRes.Granularity,
		Note: "coarse grid DP + banded exact refinement; makespan within bound of optimal"})
	coSecs, err := timeSolve(func() (e error) {
		coRes, e = core.SolveCoarseOpt(procs, items, gran, core.CoarseOptions{SkipRefine: true})
		return
	})
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "coarse_only_cold", Seconds: coSecs, Makespan: coRes.Makespan,
		Bound: coRes.Band, LowerBound: coRes.LowerBound, Granularity: coRes.Granularity,
		Note: "coarse grid DP without refinement: cheaper, wider band"})
	doc.SpeedupCoarseRefineVsCold = coldSecs / crSecs
	if crRes.LowerBound > 0 {
		doc.CoarseRelativeBand = crRes.Band / crRes.LowerBound
	}
	for _, c := range []struct {
		name string
		cr   core.CoarseResult
	}{{"coarse_refine", crRes}, {"coarse_only", coRes}} {
		name, cr := c.name, c.cr
		if cr.Makespan < cold.Makespan {
			return doc, fmt.Errorf("%s: makespan %g beats the optimum %g", name, cr.Makespan, cold.Makespan)
		}
		if cr.Makespan-cold.Makespan > cr.Band {
			return doc, fmt.Errorf("%s: gap %g outside the reported band %g", name, cr.Makespan-cold.Makespan, cr.Band)
		}
		if cr.LowerBound > cold.Makespan {
			return doc, fmt.Errorf("%s: lower bound %g exceeds the optimum %g", name, cr.LowerBound, cold.Makespan)
		}
	}

	// Retained plan: build once, then answer crash re-solves from it.
	var pl *core.Plan
	var planRes core.Result
	planSecs, err := timeSolve(func() (e error) {
		pl, e = core.SolvePlan(procs, items)
		if e != nil {
			return e
		}
		planRes, e = pl.Lookup(items, 0)
		return
	})
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "plan_build_cold", Seconds: planSecs, Makespan: planRes.Makespan,
		IdenticalToFresh: boolp(identical(planRes, cold)),
		Note:             "cold DP retaining every row for incremental reuse"})

	// Crash of the first-served processor, detected after the round:
	// the whole pool is reclaimed, the survivors are a pure suffix of
	// the plan's platform, and every retained row stays valid.
	first := dropAt(procs, 0)
	var freshFirst, warmFirst core.Result
	freshFirstSecs, err := timeSolve(func() (e error) { freshFirst, e = core.Algorithm2(first, items); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "fresh_resolve_first_served_crash", Seconds: freshFirstSecs, Makespan: freshFirst.Makespan,
		Note: "from-scratch re-solve over the survivors; what the rebalance path paid before this engine"})
	warmFirstSecs, err := timeSolve(func() (e error) { warmFirst, e = pl.Resolve(items, first); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "warm_resolve_first_served_crash", Seconds: warmFirstSecs, Makespan: warmFirst.Makespan,
		IdenticalToFresh: boolp(identical(warmFirst, freshFirst)),
		Note:             "pure-suffix reuse: zero DP rows recomputed, O(p) reconstruction"})
	doc.SpeedupWarmResolveVsCold = freshFirstSecs / warmFirstSecs

	// Crash in the middle of the service order: the rows after the
	// crash position are reused, the ones before it are recomputed.
	midPos := len(procs) / 2
	mid := dropAt(procs, midPos)
	var freshMid, warmMid core.Result
	freshMidSecs, err := timeSolve(func() (e error) { freshMid, e = core.Algorithm2(mid, items); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "fresh_resolve_mid_crash", Seconds: freshMidSecs, Makespan: freshMid.Makespan,
		Note: fmt.Sprintf("from-scratch re-solve after losing service position %d", midPos)})
	warmMidSecs, err := timeSolve(func() (e error) { warmMid, e = pl.Resolve(items, mid); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "warm_resolve_mid_crash", Seconds: warmMidSecs, Makespan: warmMid.Makespan,
		IdenticalToFresh: boolp(identical(warmMid, freshMid)),
		Note:             fmt.Sprintf("partial reuse: rows %d.. reused, rows 0..%d recomputed", midPos+1, midPos-1)})

	// Engine with plan cache: cold fill, exact-signature hit, and a
	// warm start for the crashed platform.
	eng := core.NewEngine(0)
	var engCold, engHit, engWarm core.Result
	engColdSecs, err := timeSolve(func() (e error) { engCold, e = eng.Solve(procs, items); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "engine_cold_solve", Seconds: engColdSecs, Makespan: engCold.Makespan,
		IdenticalToFresh: boolp(identical(engCold, cold)),
		Note:             "first Engine.Solve on the platform: builds and caches the plan"})
	engHitSecs, err := timeSolve(func() (e error) { engHit, e = eng.Solve(procs, items); return })
	if err != nil {
		return doc, err
	}
	add(solverRow{Name: "engine_cache_hit", Seconds: engHitSecs, Makespan: engHit.Makespan,
		IdenticalToFresh: boolp(identical(engHit, cold)),
		Note:             "repeat Engine.Solve: answered from the cached plan in O(p)"})
	doc.SpeedupCacheHitVsCold = engColdSecs / engHitSecs
	start := time.Now()
	engWarm, err = eng.Solve(first, items)
	if err != nil {
		return doc, err
	}
	engWarmSecs := time.Since(start).Seconds()
	add(solverRow{Name: "engine_warm_resolve", Seconds: engWarmSecs, Makespan: engWarm.Makespan,
		IdenticalToFresh: boolp(identical(engWarm, freshFirst)),
		Note:             "Engine.Solve after the first-served crash: warm-started from the cached plan (single shot; a repeat would measure a cache hit)"})

	s := eng.Stats()
	if s.ColdSolves != 1 || s.CacheHits < 1 || s.Resolves != 1 {
		return doc, fmt.Errorf("engine stats off: %+v", s)
	}
	for _, row := range doc.Rows {
		if row.IdenticalToFresh != nil && !*row.IdenticalToFresh {
			return doc, fmt.Errorf("%s: result differs from fresh solve", row.Name)
		}
	}
	return doc, nil
}

// SolverJSON renders BENCH_solver.json (scatterbench -solver); zero
// options select the paper's full scale with the default worker sweep
// and granularity.
func SolverJSON(opts SolverOptions) ([]byte, error) {
	doc, err := runSolver(opts)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Solver is the registered experiment. Wall-clock timings are
// hardware-dependent, so the report's comparisons are the scale-free
// identity checks plus the measured speedups as extension rows (the
// paper has no incremental-solver counterpart; Paper is 0 throughout).
// The registry run uses a reduced item count to stay interactive; the
// committed BENCH_solver.json is regenerated at full scale via
// `make bench-solver`.
func Solver() (Report, error) {
	doc, err := runSolver(SolverOptions{Items: solverReportItems})
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Incremental solver on the Table 1 grid, %d items (full scale: %d), GOMAXPROCS %d:\n\n",
		doc.Items, platform.Table1Rays, doc.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-34s %14s %10s\n", "measurement", "seconds", "identical")
	for _, row := range doc.Rows {
		ident := "baseline"
		switch {
		case row.IdenticalToFresh != nil:
			ident = fmt.Sprintf("%t", *row.IdenticalToFresh)
		case row.Granularity > 0:
			ident = "bounded"
		}
		fmt.Fprintf(&sb, "%-34s %14.9f %10s\n", row.Name, row.Seconds, ident)
	}
	fmt.Fprintf(&sb, "\ncoarse-refine vs cold solve: %.1fx (relative band %.4f)   warm resolve vs cold re-solve: %.1fx   plan-cache hit vs cold solve: %.1fx\n",
		doc.SpeedupCoarseRefineVsCold, doc.CoarseRelativeBand,
		doc.SpeedupWarmResolveVsCold, doc.SpeedupCacheHitVsCold)

	rep := Report{
		ID:    "solver",
		Title: "incremental solver: coarse-refine, retained plans, warm re-solves, plan cache (extension)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: "coarsen-then-refine speedup over cold solve", Paper: 0,
				Measured: doc.SpeedupCoarseRefineVsCold, Unit: "x",
				Note: "extension: acceptance floor 100x at full scale, band machine-checked"},
			{Metric: "warm resolve speedup after first-served crash", Paper: 0,
				Measured: doc.SpeedupWarmResolveVsCold, Unit: "x",
				Note: "extension: acceptance floor 10x at full scale"},
			{Metric: "plan-cache hit speedup", Paper: 0,
				Measured: doc.SpeedupCacheHitVsCold, Unit: "x",
				Note: "extension: acceptance floor 100x at full scale"},
		},
	}
	return rep, nil
}

// solverReportItems keeps the registry run of the solver experiment
// interactive; BENCH_solver.json is generated at platform.Table1Rays.
const solverReportItems = 100000

package experiment

// Recovery prices root failover: the full chaos pipeline (fault-
// tolerant scatter → compute → fault-tolerant gather) on the Table 1
// grid under scripted crash scenarios, comparing each recovered run's
// makespan to the fault-free baseline. The paper assumes a reliable
// root holding the data (Section 3.4); this experiment measures what
// dropping that assumption costs under the ledger-checkpointed
// recovery protocol of DESIGN.md §9. `scatterbench -recovery FILE`
// writes the same numbers as BENCH_recovery.json.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/fault"
	"repro/internal/platform"
)

func init() {
	register("recovery", Recovery)
}

// recoveryItems keeps the virtual workload at the fault benchmark's
// scale: large enough that the scatter's serve window is a real target
// for mid-transfer crashes, small enough to regenerate in seconds.
const recoveryItems = 100000

// recoveryResult is one row of BENCH_recovery.json.
type recoveryResult struct {
	Name        string  `json:"name"`
	Makespan    float64 `json:"makespan_virtual_s"`
	OverheadPct float64 `json:"overhead_pct"`
	Failovers   int     `json:"failovers"`
	Recomputes  int     `json:"recomputes"`
	Scatters    int     `json:"scatters"`
	Gathers     int     `json:"gathers"`
	Note        string  `json:"note"`
}

// recoveryDoc is the BENCH_recovery.json document.
type recoveryDoc struct {
	Benchmark string           `json:"benchmark"`
	Platform  string           `json:"platform"`
	Items     int              `json:"items"`
	Seed      int64            `json:"seed"`
	Scenarios []recoveryResult `json:"scenarios"`
}

// recoveryScenario scripts one crash regime. faults receives the
// fault-free baseline makespan so late crashes can be placed relative
// to the pipeline's phases, and the root rank.
type recoveryScenario struct {
	name   string
	note   string
	faults func(base float64, root int) []fault.Fault
}

func recoveryScenarios() []recoveryScenario {
	return []recoveryScenario{
		{
			name: "fault-free",
			note: "baseline; the recovery machinery must cost nothing",
			faults: func(float64, int) []fault.Fault {
				return nil
			},
		},
		{
			name: "worker-crash",
			note: "one worker dies mid-scatter; its checkpointed items are reclaimed and rebalanced over survivors",
			faults: func(_ float64, _ int) []fault.Fault {
				// Rank 2 (sekhmet in descending-bandwidth order), mid-serve.
				return []fault.Fault{{Kind: fault.Crash, Rank: 2, Start: 1}}
			},
		},
		{
			name: "root-crash-early",
			note: "the data root dies mid-first-round; a new root is elected and resumes from the ledger checkpoint",
			faults: func(_ float64, root int) []fault.Fault {
				return []fault.Fault{{Kind: fault.Crash, Rank: root, Start: 0.5}}
			},
		},
		{
			name: "root-crash-late",
			note: "the root dies after the scatter completes, during compute; the gather fails over and the root's share is recomputed",
			faults: func(base float64, root int) []fault.Fault {
				return []fault.Fault{{Kind: fault.Crash, Rank: root, Start: 0.5 * base}}
			},
		},
	}
}

// runRecovery executes the scenarios and assembles the document.
func runRecovery() (recoveryDoc, error) {
	const seed = 1
	doc := recoveryDoc{
		Benchmark: "Recovery",
		Platform:  "table1-descending-bandwidth",
		Items:     recoveryItems,
		Seed:      seed,
	}
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return doc, err
	}
	root := len(procs) - 1 // dinadan, served last with its free link
	pol := fault.Policy{
		Timeout:    0.5,
		MaxRetries: 3,
		Backoff:    fault.Backoff{Base: 0.25, Factor: 2, Cap: 2},
	}

	base := 0.0
	for _, sc := range recoveryScenarios() {
		cfg := chaos.Config{
			Seed:           seed,
			Procs:          procs,
			Root:           root,
			Items:          recoveryItems,
			ForceRootCrash: -1,
			ExtraFaults:    sc.faults(base, root),
			Policy:         pol,
		}
		res, err := chaos.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("%s: %w", sc.name, err)
		}
		if res.TotalLoss {
			return doc, fmt.Errorf("%s: unexpected total loss", sc.name)
		}
		if sc.name == "fault-free" {
			base = res.Makespan
		}
		overhead := 0.0
		if base > 0 {
			overhead = 100 * (res.Makespan - base) / base
		}
		doc.Scenarios = append(doc.Scenarios, recoveryResult{
			Name:        sc.name,
			Makespan:    res.Makespan,
			OverheadPct: overhead,
			Failovers:   res.Failovers,
			Recomputes:  res.Recomputes,
			Scatters:    len(res.Scatters),
			Gathers:     len(res.Gathers),
			Note:        sc.note,
		})
	}
	return doc, nil
}

// RecoveryJSON renders BENCH_recovery.json (scatterbench -recovery).
func RecoveryJSON() ([]byte, error) {
	doc, err := runRecovery()
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Recovery is the registered experiment: the recovery-overhead table
// plus sanity comparisons. The paper has no failover numbers — the
// Paper column is 0 throughout, and the rows document the extension.
func Recovery() (Report, error) {
	doc, err := runRecovery()
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	sb.WriteString("Chaos pipeline (scatter → compute → gather) on the Table 1 grid,\n")
	fmt.Fprintf(&sb, "%d items, scripted crashes, ledger-checkpointed recovery:\n\n", doc.Items)
	fmt.Fprintf(&sb, "%-18s %14s %10s %10s %11s\n", "scenario", "makespan (s)", "overhead", "failovers", "recomputes")
	for _, row := range doc.Scenarios {
		fmt.Fprintf(&sb, "%-18s %14.4f %9.2f%% %10d %11d\n",
			row.Name, row.Makespan, row.OverheadPct, row.Failovers, row.Recomputes)
	}
	sb.WriteString("\n")
	for _, row := range doc.Scenarios {
		fmt.Fprintf(&sb, "%-18s %s\n", row.Name, row.Note)
	}

	byName := map[string]recoveryResult{}
	for _, row := range doc.Scenarios {
		byName[row.Name] = row
	}
	rep := Report{
		ID:    "recovery",
		Title: "failover recovery overhead (extension: the paper assumes a reliable root)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: "recovery overhead, worker crash", Paper: 0,
				Measured: byName["worker-crash"].OverheadPct, Unit: "%",
				Note: "extension: no paper counterpart"},
			{Metric: "recovery overhead, root crash early", Paper: 0,
				Measured: byName["root-crash-early"].OverheadPct, Unit: "%",
				Note: "extension: scatter resumes from the ledger checkpoint"},
			{Metric: "recovery overhead, root crash late", Paper: 0,
				Measured: byName["root-crash-late"].OverheadPct, Unit: "%",
				Note: "extension: gather fails over, root share recomputed"},
			{Metric: "failovers, root crash early", Paper: 0,
				Measured: float64(byName["root-crash-early"].Failovers), Unit: "",
				Note: "must be >= 1: the crash lands mid-round"},
		},
	}
	return rep, nil
}

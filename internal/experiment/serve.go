package experiment

// Serve load-tests the scatterd daemon stack (internal/serve over
// internal/store and core.Engine) through a real HTTP listener: a
// seeded client fleet replays a skewed stream of plan requests over
// randomized two-site grids, every 200 is checked against a fresh
// Algorithm 2 solve for its (platform, items) pair, and the run closes
// with a crash-restart measurement comparing a cold daemon against one
// warmed from the recovered WAL. `scatterbench -serve FILE` writes the
// same numbers as BENCH_serve.json.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/serve"
	"repro/internal/store"
)

func init() {
	register("serve", Serve)
}

// serveDoc is the BENCH_serve.json document.
type serveDoc struct {
	Benchmark         string  `json:"benchmark"`
	Seed              int64   `json:"seed"`
	Requests          int     `json:"requests"`
	DistinctPlatforms int     `json:"distinct_platforms"`
	DistinctKeys      int     `json:"distinct_keys"`
	Clients           int     `json:"clients"`
	Workers           int     `json:"workers"`
	QueueDepth        int     `json:"queue_depth"`
	WallSeconds       float64 `json:"wall_seconds"`
	Throughput        float64 `json:"throughput_req_per_s"`
	P50Ms             float64 `json:"latency_p50_ms"`
	P99Ms             float64 `json:"latency_p99_ms"`
	// StoreHitRate is the fraction of requests answered from the
	// durable store without touching the engine.
	StoreHitRate float64 `json:"store_hit_rate"`
	// EngineCacheRate is the fraction of engine solves answered from
	// the plan cache or coalesced onto an in-flight solve.
	EngineCacheRate float64 `json:"engine_cache_rate"`
	ColdSolves      int     `json:"cold_solves"`
	// ShedRate is 503s per attempted request; shed requests are
	// retried by the client fleet until they land.
	ShedRate float64 `json:"shed_rate"`
	Sheds    int64   `json:"sheds"`
	// InvariantViolations counts 200 responses that were not
	// bit-identical to a fresh solve of their request (must be 0).
	InvariantViolations int `json:"invariant_violations"`
	// Restart economics: re-answering every distinct key on a daemon
	// restarted over the recovered WAL versus on a cold daemon.
	RecoveredPlans      int     `json:"recovered_plans"`
	WarmRestartSeconds  float64 `json:"warm_restart_seconds"`
	ColdRestartSeconds  float64 `json:"cold_restart_seconds"`
	WarmRestartSpeedup  float64 `json:"warm_restart_speedup"`
	WarmRestartAllStore bool    `json:"warm_restart_all_store"`
}

// serveKey is one distinct (platform, items) request in the workload.
type serveKey struct {
	body  []byte
	items int
	fresh core.Result
}

// buildWorkload generates the distinct keys: seeded two-site grids
// crossed with a few item counts, each pre-solved fresh for the
// invariant check.
func buildWorkload(rng *rand.Rand, nPlatforms int) ([]serveKey, error) {
	itemCounts := []int{2000, 5000, 11000, 30000}
	keys := make([]serveKey, 0, nPlatforms*len(itemCounts))
	for i := 0; i < nPlatforms; i++ {
		p := platform.RandomTwoSite(rng, 1+rng.Intn(3), 1+rng.Intn(3))
		p.Name = fmt.Sprintf("%s-%d", p.Name, i)
		procs, err := p.ProcessorsOrdered(platform.OrderDescendingBandwidth)
		if err != nil {
			return nil, err
		}
		for _, n := range itemCounts {
			fresh, err := core.Algorithm2(procs, n)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(serve.PlanRequest{Platform: p, Items: n})
			if err != nil {
				return nil, err
			}
			keys = append(keys, serveKey{body: body, items: n, fresh: fresh})
		}
	}
	return keys, nil
}

// checkResponse verifies a 200 against the key's fresh solve.
func checkResponse(body []byte, key serveKey) error {
	var pr serve.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if pr.Makespan != key.fresh.Makespan {
		return fmt.Errorf("makespan %v != fresh %v", pr.Makespan, key.fresh.Makespan)
	}
	if len(pr.Distribution) != len(key.fresh.Distribution) {
		return fmt.Errorf("distribution width %d != fresh %d", len(pr.Distribution), len(key.fresh.Distribution))
	}
	for i := range pr.Distribution {
		if pr.Distribution[i] != key.fresh.Distribution[i] {
			return fmt.Errorf("distribution %v != fresh %v", pr.Distribution, key.fresh.Distribution)
		}
	}
	return nil
}

// sweepKeys posts every distinct key once and reports how long the
// sweep took and how many answers came from the durable store.
func sweepKeys(url string, keys []serveKey) (secs float64, storeAnswers int, err error) {
	start := time.Now()
	for _, key := range keys {
		resp, rerr := http.Post(url+"/v1/plan", "application/json", bytes.NewReader(key.body))
		if rerr != nil {
			return 0, 0, rerr
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return 0, 0, rerr
		}
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("sweep: status %d: %s", resp.StatusCode, body)
		}
		if cerr := checkResponse(body, key); cerr != nil {
			return 0, 0, fmt.Errorf("sweep: %w", cerr)
		}
		var pr serve.PlanResponse
		if json.Unmarshal(body, &pr) == nil && pr.Source == "store" {
			storeAnswers++
		}
	}
	return time.Since(start).Seconds(), storeAnswers, nil
}

// runServe drives the full scenario at the given request volume.
func runServe(requests int) (serveDoc, error) {
	const (
		seed       = 20260808
		nPlatforms = 24
		clients    = 32
		workers    = 4
		queueDepth = 16
	)
	doc := serveDoc{
		Benchmark:         "Serve",
		Seed:              seed,
		Requests:          requests,
		DistinctPlatforms: nPlatforms,
		Clients:           clients,
		Workers:           workers,
		QueueDepth:        queueDepth,
	}
	rng := rand.New(rand.NewSource(seed))
	keys, err := buildWorkload(rng, nPlatforms)
	if err != nil {
		return doc, err
	}
	doc.DistinctKeys = len(keys)

	dir, err := os.MkdirTemp("", "scatterd-bench")
	if err != nil {
		return doc, err
	}
	defer os.RemoveAll(dir)
	walPath := filepath.Join(dir, "plans.wal")
	st, _, err := store.Open(walPath)
	if err != nil {
		return doc, err
	}
	srv := serve.NewServer(serve.Config{
		Store:      st,
		Workers:    workers,
		QueueDepth: queueDepth,
	})
	ts := httptest.NewServer(srv)

	// The skewed request stream: Zipf-ish hot keys so the store and
	// plan cache see realistic reuse. Each client owns a deterministic
	// slice of the stream (seeded per client, no shared rand).
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(len(keys)-1))
	stream := make([]int, requests)
	for i := range stream {
		stream[i] = int(zipf.Uint64())
	}

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		violations int
		firstErr   error
		latencies  = make([][]float64, clients)
		sheds      int64
	)
	per := (requests + clients - 1) / clients
	start := time.Now()
	for c := 0; c < clients; c++ {
		lo, hi := c*per, (c+1)*per
		if hi > requests {
			hi = requests
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			lat := make([]float64, 0, hi-lo)
			var mySheds int64
			for i := lo; i < hi; i++ {
				key := keys[stream[i]]
				t0 := time.Now()
				for {
					resp, err := http.Post(ts.URL+"/v1/plan", "application/json", bytes.NewReader(key.body))
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					if resp.StatusCode == http.StatusServiceUnavailable {
						// Shed under load: back off and retry.
						mySheds++
						time.Sleep(time.Duration(1+i%3) * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusOK {
						mu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("status %d: %s", resp.StatusCode, body)
						}
						mu.Unlock()
						return
					}
					if err := checkResponse(body, key); err != nil {
						mu.Lock()
						violations++
						if firstErr == nil {
							firstErr = fmt.Errorf("invariant violation: %w", err)
						}
						mu.Unlock()
					}
					break
				}
				lat = append(lat, time.Since(t0).Seconds()*1e3)
			}
			mu.Lock()
			latencies[c] = lat
			sheds += mySheds
			mu.Unlock()
		}(c, lo, hi)
	}
	wg.Wait()
	doc.WallSeconds = time.Since(start).Seconds()
	if firstErr != nil {
		return doc, firstErr
	}

	var all []float64
	for _, lat := range latencies {
		all = append(all, lat...)
	}
	sort.Float64s(all)
	doc.Throughput = float64(len(all)) / doc.WallSeconds
	doc.P50Ms = percentile(all, 0.50)
	doc.P99Ms = percentile(all, 0.99)
	doc.InvariantViolations = violations
	doc.Sheds = sheds

	stats := srv.Stats()
	total := float64(stats.Requests)
	doc.StoreHitRate = float64(stats.StoreHits) / total
	doc.ShedRate = float64(sheds) / (total + float64(sheds))
	es := stats.Engine
	engineAnswers := es.ColdSolves + es.Resolves + es.CacheHits + es.Coalesced
	if engineAnswers > 0 {
		doc.EngineCacheRate = float64(es.CacheHits+es.Coalesced) / float64(engineAnswers)
	}
	doc.ColdSolves = es.ColdSolves

	// Simulated crash: stop without compacting, leave a torn frame on
	// the WAL tail, and restart over the recovery path.
	ts.Close()
	srv.Drain()
	if err := st.Close(); err != nil {
		return doc, err
	}
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return doc, err
	}
	if _, err := f.WriteString("plan 512 0badc0de\nsig torn-by-crash"); err != nil {
		return doc, err
	}
	f.Close()

	// Warm restart: recovered WAL, fresh engine.
	st2, info, err := store.Open(walPath)
	if err != nil {
		return doc, err
	}
	doc.RecoveredPlans = info.Entries
	srv2 := serve.NewServer(serve.Config{Store: st2, Workers: workers, QueueDepth: queueDepth})
	ts2 := httptest.NewServer(srv2)
	warmSecs, storeAnswers, err := sweepKeys(ts2.URL, keys)
	ts2.Close()
	srv2.Drain()
	st2.Close()
	if err != nil {
		return doc, err
	}
	doc.WarmRestartSeconds = warmSecs
	doc.WarmRestartAllStore = storeAnswers == len(keys)

	// Cold restart: empty WAL, fresh engine — what every boot would
	// cost without durability.
	st3, _, err := store.Open(filepath.Join(dir, "cold.wal"))
	if err != nil {
		return doc, err
	}
	srv3 := serve.NewServer(serve.Config{Store: st3, Workers: workers, QueueDepth: queueDepth})
	ts3 := httptest.NewServer(srv3)
	coldSecs, _, err := sweepKeys(ts3.URL, keys)
	ts3.Close()
	srv3.Drain()
	st3.Close()
	if err != nil {
		return doc, err
	}
	doc.ColdRestartSeconds = coldSecs
	if warmSecs > 0 {
		doc.WarmRestartSpeedup = coldSecs / warmSecs
	}
	return doc, nil
}

// percentile reads the q-quantile from sorted data.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// ServeJSON renders BENCH_serve.json (scatterbench -serve) at full
// load volume.
func ServeJSON() ([]byte, error) {
	doc, err := runServe(serveBenchRequests)
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Serve is the registered experiment. Wall-clock throughput is
// hardware-dependent; the scale-free claims are the invariant count
// (every served plan bit-identical to a fresh solve) and the
// warm-restart behavior (every distinct key answered from the
// recovered WAL). The registry run uses a reduced request count to
// stay interactive; the committed BENCH_serve.json is regenerated at
// full volume via `make bench-serve`.
func Serve() (Report, error) {
	doc, err := runServe(serveReportRequests)
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "scatterd under load: %d requests over %d distinct (platform, items) keys (full volume: %d):\n\n",
		doc.Requests, doc.DistinctKeys, serveBenchRequests)
	fmt.Fprintf(&sb, "  throughput   %10.0f req/s   p50 %.3f ms   p99 %.3f ms\n", doc.Throughput, doc.P50Ms, doc.P99Ms)
	fmt.Fprintf(&sb, "  store hits   %10.1f%%        engine cache+coalesced %.1f%%   cold solves %d\n",
		100*doc.StoreHitRate, 100*doc.EngineCacheRate, doc.ColdSolves)
	fmt.Fprintf(&sb, "  sheds        %10d         shed rate %.2f%%\n", doc.Sheds, 100*doc.ShedRate)
	fmt.Fprintf(&sb, "  invariants   %10d violations (every 200 checked against a fresh solve)\n", doc.InvariantViolations)
	fmt.Fprintf(&sb, "  restart      warm %.3fs vs cold %.3fs (%.1fx), %d plans recovered from a torn WAL, all-store=%t\n",
		doc.WarmRestartSeconds, doc.ColdRestartSeconds, doc.WarmRestartSpeedup, doc.RecoveredPlans, doc.WarmRestartAllStore)

	boolAsFloat := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	rep := Report{
		ID:    "serve",
		Title: "scatterd daemon: load, shedding, crash-restart economics (extension)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: "served-plan invariant violations", Paper: 0,
				Measured: float64(doc.InvariantViolations), Unit: "",
				Note: "extension: every 200 must be bit-identical to a fresh solve"},
			{Metric: "warm restart serves all keys from WAL", Paper: 0,
				Measured: boolAsFloat(doc.WarmRestartAllStore), Unit: "",
				Note: "extension: 1 = every distinct key answered from the recovered store"},
		},
	}
	return rep, nil
}

const (
	// serveBenchRequests is the committed BENCH_serve.json volume.
	serveBenchRequests = 120000
	// serveReportRequests keeps the registry run interactive.
	serveReportRequests = 4000
)

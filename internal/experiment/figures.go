package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/platform"
	"repro/internal/schedule"
	"repro/internal/seismic"
	"repro/internal/simgrid"
	"repro/internal/trace"
)

func init() {
	register("table1", Table1Calibration)
	register("fig1", Fig1Stair)
	register("fig2", Fig2Uniform)
	register("fig3", Fig3Balanced)
	register("fig4", Fig4Ascending)
}

// Table1Calibration reproduces the paper's Table 1: it benchmarks the
// real ray-tracing kernel on this host to obtain a measured beta
// (seconds per ray), then reports the testbed's machines with their
// paper-calibrated constants and ratings. The paper's constants "come
// from a series of benchmarks we performed on our application"; our
// kernel benchmark is the same procedure on the one machine we have.
func Table1Calibration() (Report, error) {
	// Benchmark the real kernel: trace a catalog sample and fit a
	// linear per-ray cost.
	tracer, err := seismic.NewTracer(seismic.IASP91Lite(), 200)
	if err != nil {
		return Report{}, err
	}
	events := seismic.SyntheticCatalog(seismic.CatalogConfig{Seed: 1, Events: 4000})
	var samples []cost.Sample
	for _, batch := range []int{500, 1000, 2000, 4000} {
		start := time.Now()
		tracer.TraceAll(events[:batch])
		samples = append(samples, cost.Sample{X: batch, Seconds: time.Since(start).Seconds()})
	}
	fit, err := cost.FitLinear(samples)
	if err != nil {
		return Report{}, err
	}

	p := platform.Table1()
	var rows [][]string
	for _, m := range p.Machines {
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%d", m.CPUs),
			m.CPUType,
			fmt.Sprintf("%.6f", m.Beta),
			fmt.Sprintf("%.2f", m.Rating),
			fmt.Sprintf("%.2e", m.Alpha),
		})
	}
	var sb strings.Builder
	sb.WriteString(trace.Table(
		[]string{"machine", "cpus", "type", "beta (s/ray)", "rating", "alpha (s/ray)"}, rows))
	fmt.Fprintf(&sb, "\nreal kernel calibration on this host: beta = %.6f s/ray (resolution 200 km)\n", fit.PerItem)
	fmt.Fprintf(&sb, "calibration residual: %.3g s over batches %v\n",
		cost.FitResidual(fit, samples), []int{500, 1000, 2000, 4000})

	return Report{
		ID:    "table1",
		Title: "testbed description and per-ray cost calibration (Table 1)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: "dinadan beta", Paper: 0.009288, Measured: 0.009288, Unit: "s/ray",
				Note: "platform spec mirrors the paper's calibration"},
			{Metric: "this host's real-kernel beta", Paper: 0.009288, Measured: fit.PerItem, Unit: "s/ray",
				Note: "order-of-magnitude check of the synthetic kernel"},
		},
	}, nil
}

// Fig1Stair renders the Figure 1 schematic: four processors, uniform
// scatter from the root P4, showing the serialized receives (the stair)
// followed by computation.
func Fig1Stair() (Report, error) {
	procs := []core.Processor{
		{Name: "P1", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2.5}},
		{Name: "P2", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2.5}},
		{Name: "P3", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2.5}},
		{Name: "P4", Comm: cost.Zero, Comp: cost.Linear{PerItem: 2.5}},
	}
	tl, err := schedule.Build(procs, core.Uniform(4, 8))
	if err != nil {
		return Report{}, err
	}
	body := trace.Gantt(tl, 64) +
		"\nlegend: '.' idle (waiting for earlier sends), '=' receiving, '#' computing\n" +
		"The receive-completion times form the paper's \"stair effect\".\n"
	return Report{
		ID:    "fig1",
		Title: "scatter followed by computation under the single-port model (Figure 1)",
		Body:  body,
		SVG:   trace.GanttSVG(tl, "Figure 1: a scatter communication followed by a computation phase"),
	}, nil
}

// figureRun builds the Table 1 platform in the given order, computes
// the distribution with the given solver, and simulates the run.
func figureRun(order platform.Ordering, solve core.Solver, cpuLoad map[string][]simgrid.RateWindow) (schedule.Timeline, []core.Processor, error) {
	procs, err := platform.Table1().ProcessorsOrdered(order)
	if err != nil {
		return schedule.Timeline{}, nil, err
	}
	res, err := solve(procs, platform.Table1Rays)
	if err != nil {
		return schedule.Timeline{}, nil, err
	}
	tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: res.Distribution, CPULoad: cpuLoad})
	if err != nil {
		return schedule.Timeline{}, nil, err
	}
	return tl, procs, nil
}

// uniformSolver is the original program: equal shares for everyone.
func uniformSolver(procs []core.Processor, n int) (core.Result, error) {
	dist := core.Uniform(len(procs), n)
	return core.Result{Distribution: dist, Makespan: core.Makespan(procs, dist)}, nil
}

// Fig2Uniform reproduces Figure 2: the original program (uniform
// MPI_Scatter) on the Table 1 grid, processors ordered by descending
// bandwidth, 817,101 rays. The paper measured the earliest processor
// finishing after 259 s and the latest after 853 s.
func Fig2Uniform() (Report, error) {
	tl, _, err := figureRun(platform.OrderDescendingBandwidth, uniformSolver, nil)
	if err != nil {
		return Report{}, err
	}
	body := trace.Bars(tl, 60) + "\n" + trace.SummaryTable(tl)
	return Report{
		ID:    "fig2",
		Title: "original program execution, uniform data distribution (Figure 2)",
		Body:  body,
		SVG:   trace.FigureSVG(tl, "Figure 2: original program execution (uniform data distribution)"),
		Comparisons: []Comparison{
			{Metric: "earliest finish", Paper: platform.PaperFig2.Earliest, Measured: tl.EarliestFinish(), Unit: "s",
				Note: "simulated platform; shape comparison"},
			{Metric: "latest finish (makespan)", Paper: platform.PaperFig2.Latest, Measured: tl.LatestFinish(), Unit: "s",
				Note: "simulated platform; shape comparison"},
			{Metric: "earliest/latest ratio", Paper: platform.PaperFig2.Earliest / platform.PaperFig2.Latest,
				Measured: tl.EarliestFinish() / tl.LatestFinish(), Unit: "",
				Note: "the imbalance signature"},
		},
	}, nil
}

// Fig3Balanced reproduces Figure 3: the load-balanced execution
// (MPI_Scatterv parameterized by the guaranteed heuristic), descending
// bandwidth order. The paper measured finishes between 405 s and 430 s
// — about half the uniform run's duration.
func Fig3Balanced() (Report, error) {
	tl, _, err := figureRun(platform.OrderDescendingBandwidth, core.Heuristic, nil)
	if err != nil {
		return Report{}, err
	}
	uniform, _, err := figureRun(platform.OrderDescendingBandwidth, uniformSolver, nil)
	if err != nil {
		return Report{}, err
	}
	body := trace.Bars(tl, 60) + "\n" + trace.SummaryTable(tl) +
		fmt.Sprintf("\nspeedup over the uniform distribution: %.2fx\n",
			uniform.Makespan/tl.Makespan)
	return Report{
		ID:    "fig3",
		Title: "load-balanced execution, descending bandwidth (Figure 3)",
		Body:  body,
		SVG:   trace.FigureSVG(tl, "Figure 3: load-balanced execution, nodes sorted by descending bandwidth"),
		Comparisons: []Comparison{
			{Metric: "earliest finish", Paper: platform.PaperFig3.Earliest, Measured: tl.EarliestFinish(), Unit: "s",
				Note: "simulated platform; shape comparison"},
			{Metric: "latest finish (makespan)", Paper: platform.PaperFig3.Latest, Measured: tl.LatestFinish(), Unit: "s",
				Note: "simulated platform; shape comparison"},
			{Metric: "imbalance (max spread / total)", Paper: 0.06, Measured: tl.Imbalance(), Unit: "",
				Note: "paper: ~6% of total duration"},
			{Metric: "uniform/balanced makespan", Paper: platform.PaperFig2.Latest / platform.PaperFig3.Latest,
				Measured: uniform.Makespan / tl.Makespan, Unit: "x",
				Note: "paper: balanced is about half the uniform duration"},
		},
	}, nil
}

// Fig4Ascending reproduces Figure 4: the same balanced distribution
// computed for the adversarial ascending-bandwidth order. The paper
// measured 437-486 s, 56 s longer than Figure 3, with a visibly larger
// stair area; sekhmet also suffered a background load peak during that
// run, which we inject (its CPU at 60% for the middle of the run).
func Fig4Ascending() (Report, error) {
	load := map[string][]simgrid.RateWindow{
		"sekhmet": {{Start: 150, End: 350, Factor: 0.6}},
	}
	tl, _, err := figureRun(platform.OrderAscendingBandwidth, core.Heuristic, load)
	if err != nil {
		return Report{}, err
	}
	desc, _, err := figureRun(platform.OrderDescendingBandwidth, core.Heuristic, nil)
	if err != nil {
		return Report{}, err
	}
	body := trace.Bars(tl, 60) + "\n" + trace.SummaryTable(tl) +
		fmt.Sprintf("\nstair area: ascending %.0f s vs descending %.0f s\n",
			tl.StairArea(), desc.StairArea()) +
		fmt.Sprintf("makespan penalty vs descending order: %.1f s\n",
			tl.Makespan-desc.Makespan)
	return Report{
		ID:    "fig4",
		Title: "load-balanced execution, ascending bandwidth (Figure 4)",
		Body:  body,
		SVG:   trace.FigureSVG(tl, "Figure 4: load-balanced execution, nodes sorted by ascending bandwidth"),
		Comparisons: []Comparison{
			{Metric: "earliest finish", Paper: platform.PaperFig4.Earliest, Measured: tl.EarliestFinish(), Unit: "s",
				Note: "simulated platform with sekhmet load peak"},
			{Metric: "latest finish (makespan)", Paper: platform.PaperFig4.Latest, Measured: tl.LatestFinish(), Unit: "s",
				Note: "simulated platform with sekhmet load peak"},
			{Metric: "penalty vs descending order", Paper: 56, Measured: tl.Makespan - desc.Makespan, Unit: "s",
				Note: "paper: 56 s longer than Figure 3"},
			{Metric: "stair area ratio (asc/desc)", Paper: 0, Measured: tl.StairArea() / desc.StairArea(), Unit: "x",
				Note: "paper: qualitatively 'bigger'; no number given"},
		},
	}, nil
}

package experiment

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/simgrid"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("sensitivity", CalibrationSensitivity)
}

// CalibrationSensitivity probes the static approach's implicit
// assumption: the paper computes one distribution from calibrated
// costs and "make[s] the assumption that the grid characteristics do
// not change during the computation". How much does the balanced
// makespan degrade when the real platform deviates from calibration by
// a relative error eps on every machine's speed? We execute the
// calibrated plan on perturbed platforms and compare against the
// oracle plan (balanced for the true perturbed costs) and the uniform
// baseline.
func CalibrationSensitivity() (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	const n = platform.Table1Rays
	const trials = 12
	calibrated, err := core.Heuristic(procs, n)
	if err != nil {
		return Report{}, err
	}
	uniform := core.Uniform(len(procs), n)

	rng := rand.New(rand.NewSource(123))
	var rows [][]string
	degradationAt := map[float64]float64{}
	for _, eps := range []float64{0.05, 0.10, 0.25, 0.50} {
		var staleOverOracle, uniformOverOracle []float64
		for trial := 0; trial < trials; trial++ {
			// The true platform: every CPU off by up to eps
			// (uniformly), injected as a full-run load window. Factors
			// above 1 mean the machine is faster than calibrated.
			load := map[string][]simgrid.RateWindow{}
			truth := make([]core.Processor, len(procs))
			copy(truth, procs)
			for i, pr := range procs {
				f := 1 + eps*(2*rng.Float64()-1)
				load[pr.Name] = []simgrid.RateWindow{{Start: 0, End: 1e12, Factor: f}}
				lp, err := core.ExtractLinear([]core.Processor{pr})
				if err != nil {
					return Report{}, err
				}
				lp[0].Beta /= f
				truth[i] = lp[0].Processor()
			}
			exec := func(dist core.Distribution) (float64, error) {
				tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: dist, CPULoad: load})
				if err != nil {
					return 0, err
				}
				return tl.Makespan, nil
			}
			oraclePlan, err := core.Heuristic(truth, n)
			if err != nil {
				return Report{}, err
			}
			oracle, err := exec(oraclePlan.Distribution)
			if err != nil {
				return Report{}, err
			}
			stale, err := exec(calibrated.Distribution)
			if err != nil {
				return Report{}, err
			}
			uni, err := exec(uniform)
			if err != nil {
				return Report{}, err
			}
			staleOverOracle = append(staleOverOracle, stale/oracle)
			uniformOverOracle = append(uniformOverOracle, uni/oracle)
		}
		s := stats.Summarize(staleOverOracle)
		u := stats.Summarize(uniformOverOracle)
		degradationAt[eps] = s.Mean - 1
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", 100*eps),
			fmt.Sprintf("%.3f", s.Mean),
			fmt.Sprintf("%.3f", s.Max),
			fmt.Sprintf("%.3f", u.Mean),
		})
	}

	body := trace.Table([]string{"calibration error", "stale/oracle (mean)", "stale/oracle (worst)", "uniform/oracle (mean)"}, rows) +
		"\nThe stale plan degrades roughly in proportion to the calibration\n" +
		"error (about eps of extra makespan at error eps), while the uniform\n" +
		"distribution sits around 2x off regardless: even a mediocre\n" +
		"calibration beats not balancing at all. Past ~25% drift the gap to\n" +
		"the oracle is worth closing, which is where the paper's suggestion\n" +
		"to re-query a monitor before each scatter comes in.\n"

	return Report{
		ID:    "sensitivity",
		Title: "robustness of the static plan to calibration error",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "mean degradation at 10% error", Paper: 0, Measured: degradationAt[0.10], Unit: "",
				Note: "stale plan vs oracle, fractional"},
			{Metric: "mean degradation at 50% error", Paper: 0, Measured: degradationAt[0.50], Unit: "",
				Note: "where a monitor re-query becomes worthwhile"},
		},
	}, nil
}

package experiment

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "fig2", "fig3", "fig4", "algocost", "quality", "ordering", "bound", "root", "tree", "masterslave", "overlap", "multiround", "sensitivity", "heterogeneity", "hierarchy", "recovery", "solver", "degraded", "serve"}
	ids := IDs()
	if len(ids) != len(want) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := Get("nonsense"); ok {
		t.Error("unknown id resolved")
	}
}

func TestTable1Calibration(t *testing.T) {
	rep, err := Table1Calibration()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dinadan", "merlin", "leda", "0.009288", "real kernel calibration"} {
		if !strings.Contains(rep.Body, want) {
			t.Errorf("table1 body missing %q", want)
		}
	}
	// The measured kernel beta must be positive and within a couple of
	// orders of magnitude of the paper's per-ray cost.
	var kernelBeta float64
	for _, c := range rep.Comparisons {
		if strings.Contains(c.Metric, "real-kernel") {
			kernelBeta = c.Measured
		}
	}
	if kernelBeta <= 0 || kernelBeta > 1 {
		t.Errorf("kernel beta = %g s/ray, implausible", kernelBeta)
	}
}

func TestFig1Stair(t *testing.T) {
	rep, err := Fig1Stair()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Body, "stair") {
		t.Errorf("fig1 body missing the stair explanation:\n%s", rep.Body)
	}
	for _, name := range []string{"P1", "P4"} {
		if !strings.Contains(rep.Body, name) {
			t.Errorf("fig1 missing %s", name)
		}
	}
}

// comparison finds a comparison row by substring.
func comparison(t *testing.T, rep Report, metric string) Comparison {
	t.Helper()
	for _, c := range rep.Comparisons {
		if strings.Contains(c.Metric, metric) {
			return c
		}
	}
	t.Fatalf("%s: no comparison %q", rep.ID, metric)
	return Comparison{}
}

func TestFig2UniformShape(t *testing.T) {
	rep, err := Fig2Uniform()
	if err != nil {
		t.Fatal(err)
	}
	earliest := comparison(t, rep, "earliest finish")
	latest := comparison(t, rep, "latest finish")
	// Shape: heavy imbalance. The paper's ratio is 259/853 = 0.30; we
	// accept a generous band around it for the simulated platform.
	ratio := earliest.Measured / latest.Measured
	if ratio < 0.15 || ratio > 0.55 {
		t.Errorf("earliest/latest = %g, paper shape is about 0.30", ratio)
	}
	// Absolute scale should be in the paper's ballpark (same cost
	// constants): latest within [600, 1100] s.
	if latest.Measured < 600 || latest.Measured > 1100 {
		t.Errorf("uniform makespan = %g s, paper measured 853 s", latest.Measured)
	}
}

func TestFig3BalancedShape(t *testing.T) {
	rep, err := Fig3Balanced()
	if err != nil {
		t.Fatal(err)
	}
	imb := comparison(t, rep, "imbalance")
	if imb.Measured > 0.06 {
		t.Errorf("balanced imbalance = %g, paper reports ~6%% with measurement noise; simulation should be tighter", imb.Measured)
	}
	speedup := comparison(t, rep, "uniform/balanced")
	if speedup.Measured < 1.5 {
		t.Errorf("speedup = %gx, paper reports about 2x", speedup.Measured)
	}
	latest := comparison(t, rep, "latest finish")
	if latest.Measured < 300 || latest.Measured > 550 {
		t.Errorf("balanced makespan = %g s, paper measured 430 s", latest.Measured)
	}
}

func TestFig4AscendingShape(t *testing.T) {
	rep, err := Fig4Ascending()
	if err != nil {
		t.Fatal(err)
	}
	penalty := comparison(t, rep, "penalty vs descending")
	if penalty.Measured <= 0 {
		t.Errorf("ascending order not slower than descending: %g s", penalty.Measured)
	}
	stair := comparison(t, rep, "stair area ratio")
	if stair.Measured <= 1 {
		t.Errorf("ascending stair area not larger: ratio %g", stair.Measured)
	}
}

func TestAlgoCostScaledDown(t *testing.T) {
	rep, err := AlgoCostWith([]int{100, 200, 400, 800}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	a1 := comparison(t, rep, "Algorithm 1")
	a2 := comparison(t, rep, "Algorithm 2")
	h := comparison(t, rep, "heuristic")
	if !(a1.Measured > a2.Measured && a2.Measured > h.Measured) {
		t.Errorf("runtime ordering violated: Alg1 %g, Alg2 %g, heuristic %g",
			a1.Measured, a2.Measured, h.Measured)
	}
	if !strings.Contains(rep.Body, "empirical exponent") {
		t.Error("missing power-law fit")
	}
}

func TestHeuristicQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the exact DP at n=200k")
	}
	rep, err := HeuristicQuality()
	if err != nil {
		t.Fatal(err)
	}
	tail := comparison(t, rep, "relative error at n=200000")
	if tail.Measured > 2e-5 {
		t.Errorf("heuristic relative error %g at n=200000, paper reports <6e-6 at n=817101", tail.Measured)
	}
	worst := comparison(t, rep, "max relative error")
	if worst.Measured > 1e-2 {
		t.Errorf("heuristic relative error %g even at small n", worst.Measured)
	}
}

func TestOrderingPolicies(t *testing.T) {
	rep, err := OrderingPolicies()
	if err != nil {
		t.Fatal(err)
	}
	penalty := comparison(t, rep, "asc - desc")
	if penalty.Measured <= 0 {
		t.Errorf("ascending order not worse: %g", penalty.Measured)
	}
	policyRatio := comparison(t, rep, "policy vs best permutation")
	if math.Abs(policyRatio.Measured-1) > 1e-9 {
		t.Errorf("Theorem 3 policy not optimal on the 5-proc sub-platform: ratio %g", policyRatio.Measured)
	}
}

func TestGuaranteeBoundCheck(t *testing.T) {
	rep, err := GuaranteeBoundCheck()
	if err != nil {
		t.Fatal(err)
	}
	v := comparison(t, rep, "violations")
	if v.Measured != 0 {
		t.Errorf("%g Eq. (4) violations", v.Measured)
	}
}

func TestRootChoice(t *testing.T) {
	rep, err := RootChoice()
	if err != nil {
		t.Fatal(err)
	}
	best := comparison(t, rep, "best root")
	if best.Measured != 1 {
		t.Errorf("best root is not the data holder:\n%s", rep.Body)
	}
	// All 7 machines evaluated.
	for _, m := range platform.Table1().Machines {
		if !strings.Contains(rep.Body, m.Name) {
			t.Errorf("candidate %s missing from the root table", m.Name)
		}
	}
}

func TestReportString(t *testing.T) {
	rep := Report{
		ID:    "x",
		Title: "t",
		Body:  "body\n",
		Comparisons: []Comparison{
			{Metric: "m", Paper: 1, Measured: 2, Unit: "s", Note: "n"},
		},
	}
	s := rep.String()
	for _, want := range []string{"== x: t ==", "body", "paper vs measured", "measured"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	keys := sortedKeys(m)
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("sortedKeys = %v", keys)
	}
}

func TestFlatVsBinomial(t *testing.T) {
	rep, err := FlatVsBinomial()
	if err != nil {
		t.Fatal(err)
	}
	bcastHomo := comparison(t, rep, "bcast, homogeneous")
	if bcastHomo.Measured >= 1 {
		t.Errorf("binomial bcast not faster on a homogeneous cluster: ratio %g", bcastHomo.Measured)
	}
	scatterHomo := comparison(t, rep, "scatterv, homogeneous")
	scatterGrid := comparison(t, rep, "scatterv, table-1 grid")
	if scatterHomo.Measured <= 1 {
		t.Errorf("flat scatter not faster on a homogeneous cluster: ratio %g", scatterHomo.Measured)
	}
	if scatterGrid.Measured <= scatterHomo.Measured {
		t.Errorf("grid relays did not worsen the binomial scatter: %g <= %g",
			scatterGrid.Measured, scatterHomo.Measured)
	}
}

func TestStaticVsDynamic(t *testing.T) {
	rep, err := StaticVsDynamic()
	if err != nil {
		t.Fatal(err)
	}
	calib := comparison(t, rep, "calibrated: dynamic/static")
	if calib.Measured <= 1 {
		t.Errorf("dynamic beat static on a calibrated grid: ratio %g", calib.Measured)
	}
	peak := comparison(t, rep, "load peak: dynamic/static")
	if peak.Measured >= 1 {
		t.Errorf("dynamic lost to a blind static distribution under a surprise load peak: ratio %g", peak.Measured)
	}
}

func TestRootOverlap(t *testing.T) {
	rep, err := RootOverlap()
	if err != nil {
		t.Fatal(err)
	}
	grid := comparison(t, rep, "overlap gain, table-1")
	if grid.Measured < 0 || grid.Measured > 0.02 {
		t.Errorf("table-1 overlap gain = %g, want tiny (compute-bound)", grid.Measured)
	}
	comm := comparison(t, rep, "overlap gain, comm-bound")
	if comm.Measured <= grid.Measured {
		t.Errorf("comm-bound gain %g not larger than compute-bound %g", comm.Measured, grid.Measured)
	}
}

func TestMultiRoundStudy(t *testing.T) {
	rep, err := MultiRoundStudy()
	if err != nil {
		t.Fatal(err)
	}
	grid := comparison(t, rep, "table-1 grid")
	if grid.Measured < 0 || grid.Measured > 0.05 {
		t.Errorf("table-1 multi-round gain = %g, want near zero", grid.Measured)
	}
	comm := comparison(t, rep, "comm-bound")
	if comm.Measured <= grid.Measured {
		t.Errorf("comm-bound gain %g not larger than grid gain %g", comm.Measured, grid.Measured)
	}
}

func TestCalibrationSensitivity(t *testing.T) {
	rep, err := CalibrationSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	at10 := comparison(t, rep, "10% error")
	// Degradation is roughly proportional to the error; allow slack
	// over the ~10% expectation for the randomized perturbations.
	if at10.Measured < 0 || at10.Measured > 0.15 {
		t.Errorf("degradation at 10%% error = %g, want roughly proportional", at10.Measured)
	}
	at50 := comparison(t, rep, "50% error")
	if at50.Measured < at10.Measured {
		t.Errorf("degradation not monotone: %g at 50%% vs %g at 10%%", at50.Measured, at10.Measured)
	}
}

func TestRecovery(t *testing.T) {
	rep, err := Recovery()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fault-free", "worker-crash", "root-crash-early", "root-crash-late"} {
		if !strings.Contains(rep.Body, want) {
			t.Errorf("recovery body missing scenario %q", want)
		}
	}
	early := comparison(t, rep, "root crash early")
	if early.Measured <= 0 {
		t.Errorf("early root crash recovered for free: overhead %g%%", early.Measured)
	}
	late := comparison(t, rep, "root crash late")
	if late.Measured <= 0 || late.Measured >= early.Measured {
		t.Errorf("late root crash overhead %g%% not between 0 and the early crash's %g%%: "+
			"a completed scatter should make recovery cheaper", late.Measured, early.Measured)
	}
	fo := comparison(t, rep, "failovers")
	if fo.Measured < 1 {
		t.Errorf("early root crash elected no new root: failovers %g", fo.Measured)
	}
}

func TestDegraded(t *testing.T) {
	rep, err := Degraded()
	if err != nil {
		t.Fatal(err)
	}
	for _, sites := range degradedSizes {
		c := comparison(t, rep, fmt.Sprintf("%d sites", sites))
		// Diffusion must stay in the same ballpark as exact recovery.
		// Negative is fine — the exact DP optimizes a cost model the
		// degradation has made stale, so diffusion can win outright.
		if c.Measured < -60 || c.Measured > 100 {
			t.Errorf("%d sites: diffuse overhead %g%% out of the plausible range", sites, c.Measured)
		}
	}
	worst := comparison(t, rep, "solver ratio")
	if worst.Measured <= 0 || worst.Measured > 3 {
		t.Errorf("worst diffuse/exact solver ratio %g, documented band is 3x", worst.Measured)
	}
}

func TestMarkdown(t *testing.T) {
	reports := []Report{
		{ID: "a", Title: "first", Body: "body-a\n",
			Comparisons: []Comparison{{Metric: "m", Paper: 1, Measured: 2, Unit: "s", Note: "n"}}},
		{ID: "b", Title: "second", Body: "body-b\n"},
	}
	md := Markdown(reports)
	for _, want := range []string{
		"# Experiment results", "## a — first", "## b — second",
		"| m | 1 s | 2 s | n |", "body-a", "body-b",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestHeterogeneityScaling(t *testing.T) {
	rep, err := HeterogeneityScaling()
	if err != nil {
		t.Fatal(err)
	}
	s1 := comparison(t, rep, "spread 1")
	// Even a homogeneous platform gains a sliver (~3%): earlier-served
	// processors can absorb a few extra items while later ones wait on
	// the serialized port.
	if s1.Measured < 0.999 || s1.Measured > 1.1 {
		t.Errorf("homogeneous speedup = %g, want ~1", s1.Measured)
	}
	s4 := comparison(t, rep, "spread 4")
	s16 := comparison(t, rep, "spread 16")
	if s4.Measured < 1.3 {
		t.Errorf("spread-4 speedup = %g, paper's testbed showed ~2x", s4.Measured)
	}
	if s16.Measured <= s4.Measured {
		t.Errorf("speedup not increasing with heterogeneity: %g at 16x vs %g at 4x",
			s16.Measured, s4.Measured)
	}
}

func TestHierarchicalScatter(t *testing.T) {
	rep, err := HierarchicalScatter()
	if err != nil {
		t.Fatal(err)
	}
	zero := comparison(t, rep, "zero latency")
	high := comparison(t, rep, "5s latency")
	if high.Measured <= zero.Measured {
		t.Errorf("hierarchy saving did not grow with latency: %g at 5s vs %g at 0",
			high.Measured, zero.Measured)
	}
	if high.Measured <= 0 {
		t.Errorf("hierarchy never wins even at 5s/message WAN latency: %g", high.Measured)
	}
	if zero.Measured > 0.5 {
		t.Errorf("hierarchy 'wins' %g s at zero latency; the flat scatter should be fine there",
			zero.Measured)
	}
}

func TestSolverScaledDown(t *testing.T) {
	doc, err := runSolver(SolverOptions{Items: 4000, Granularity: 64})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]solverRow{}
	for _, row := range doc.Rows {
		names[row.Name] = row
		if row.IdenticalToFresh != nil && !*row.IdenticalToFresh {
			t.Errorf("%s: not bit-identical to the fresh solve", row.Name)
		}
		if row.Seconds < 0 {
			t.Errorf("%s: negative duration %g", row.Name, row.Seconds)
		}
	}
	for _, want := range []string{
		"algorithm2_cold", "algorithm2_parallel_w1", "plan_build_cold",
		"coarse_refine_cold", "coarse_only_cold",
		"fresh_resolve_first_served_crash", "warm_resolve_first_served_crash",
		"fresh_resolve_mid_crash", "warm_resolve_mid_crash",
		"engine_cold_solve", "engine_cache_hit", "engine_warm_resolve",
	} {
		if _, ok := names[want]; !ok {
			t.Errorf("missing row %q", want)
		}
	}
	// runSolver itself verifies the coarse band against the exact
	// optimum; here just pin that the rows carry the band fields.
	if cr := names["coarse_refine_cold"]; cr.Granularity != 64 || cr.LowerBound <= 0 || cr.Bound < 0 {
		t.Errorf("coarse_refine_cold band fields off: %+v", cr)
	}
	// The pure-suffix warm resolve does no DP work at all; even at this
	// tiny scale it must beat the fresh re-solve.
	if doc.SpeedupWarmResolveVsCold <= 1 {
		t.Errorf("warm resolve speedup %g, want > 1", doc.SpeedupWarmResolveVsCold)
	}
	if doc.SpeedupCacheHitVsCold <= 1 {
		t.Errorf("cache hit speedup %g, want > 1", doc.SpeedupCacheHitVsCold)
	}
	if doc.Items != 4000 || doc.Processors != 16 {
		t.Errorf("doc header off: items %d, processors %d", doc.Items, doc.Processors)
	}
}

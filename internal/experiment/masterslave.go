package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/masterslave"
	"repro/internal/platform"
	"repro/internal/simgrid"
	"repro/internal/trace"
)

func init() {
	register("masterslave", StaticVsDynamic)
}

// StaticVsDynamic quantifies the paper's Section 6 argument against
// dynamic master/worker scheduling: "the dynamic load evaluation and
// data redistribution make the execution suffer from overheads that
// can be avoided with a static approach". We run the Table 1 grid
// under (a) accurate calibration, where the static balanced scatter
// should win every chunk size, and (b) an unannounced load peak, where
// the dynamic scheme's adaptivity pays off — the honest flip side the
// paper's static assumption trades away.
func StaticVsDynamic() (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	const n = platform.Table1Rays
	const overhead = 0.01 // 10 ms per chunk request round-trip
	chunks := []int{1000, 5000, 20000, 80000}

	static, err := core.Heuristic(procs, n)
	if err != nil {
		return Report{}, err
	}

	var rows [][]string
	runScenario := func(label string, load map[string][]simgrid.RateWindow) (staticT float64, bestDynamic float64, err error) {
		tl, err := simgrid.Run(simgrid.Config{Procs: procs, Dist: static.Distribution, CPULoad: load})
		if err != nil {
			return 0, 0, err
		}
		staticT = tl.Makespan
		rows = append(rows, []string{label + " / static scatterv", "-", fmt.Sprintf("%.2f", staticT)})
		first := true
		for _, cs := range chunks {
			r, err := masterslave.Run(masterslave.Config{
				Procs:           procs,
				Items:           n,
				ChunkSize:       cs,
				RequestOverhead: overhead,
				CPULoad:         load,
			})
			if err != nil {
				return 0, 0, err
			}
			rows = append(rows, []string{label + " / dynamic", fmt.Sprintf("%d", cs), fmt.Sprintf("%.2f", r.Makespan)})
			if first || r.Makespan < bestDynamic {
				bestDynamic = r.Makespan
				first = false
			}
		}
		return staticT, bestDynamic, nil
	}

	calibStatic, calibDynamic, err := runScenario("calibrated grid", nil)
	if err != nil {
		return Report{}, err
	}
	peak := map[string][]simgrid.RateWindow{
		"caseb": {{Start: 0, End: 1e9, Factor: 0.1}},
	}
	peakStatic, peakDynamic, err := runScenario("surprise load peak", peak)
	if err != nil {
		return Report{}, err
	}

	body := trace.Table([]string{"scenario / scheduler", "chunk size", "makespan (s)"}, rows) +
		"\nWith accurate calibration the static balanced scatter wins: the\n" +
		"dynamic scheme pays a request overhead per chunk and leaves workers\n" +
		"idle while the master's port serializes transfers. When a worker\n" +
		"unexpectedly degrades (caseb at 10% here), the static distribution\n" +
		"is stuck with its stale shares while the dynamic scheme routes\n" +
		"work away — the adaptivity/overhead trade-off of Section 6.\n"

	return Report{
		ID:    "masterslave",
		Title: "static balanced scatter vs dynamic master/worker (Section 6 baseline)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "calibrated: dynamic/static makespan", Paper: 0, Measured: calibDynamic / calibStatic, Unit: "x",
				Note: "paper's claim: static avoids dynamic overheads (>1)"},
			{Metric: "load peak: dynamic/static makespan", Paper: 0, Measured: peakDynamic / peakStatic, Unit: "x",
				Note: "the flip side: adaptivity wins under surprises (<1)"},
		},
	}, nil
}

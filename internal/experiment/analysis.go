package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/trace"
)

func init() {
	register("algocost", AlgoCost)
	register("quality", HeuristicQuality)
	register("ordering", OrderingPolicies)
	register("bound", GuaranteeBoundCheck)
	register("root", RootChoice)
}

// AlgoCost reproduces the Section 5.2 algorithm-cost anecdote: with
// 817,101 rays, "Algorithm 1 takes more than two days of work (we
// interrupted it before its completion) and Algorithm 2 takes 6
// minutes whereas the heuristic execution is instantaneous". We time
// Algorithm 1 on an n sweep and extrapolate its fitted power law to
// full scale, time Algorithm 2 and the heuristic directly.
func AlgoCost() (Report, error) {
	return AlgoCostWith([]int{250, 500, 1000, 2000, 4000}, platform.Table1Rays)
}

// AlgoCostWith is AlgoCost with an explicit Algorithm 1 sweep and a
// full-scale n for Algorithm 2 and the heuristic (tests use a reduced
// scale; the default is the paper's 817,101 rays).
func AlgoCostWith(ns []int, fullN int) (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	var rows [][]string
	var xs, ys []float64
	for _, n := range ns {
		start := time.Now()
		if _, err := core.Algorithm1(procs, n); err != nil {
			return Report{}, err
		}
		d := time.Since(start).Seconds()
		xs = append(xs, float64(n))
		ys = append(ys, d)
		rows = append(rows, []string{"Algorithm 1", fmt.Sprintf("%d", n), fmt.Sprintf("%.4f", d), "measured"})
	}
	k, e, err := stats.FitPowerLaw(xs, ys)
	if err != nil {
		return Report{}, err
	}
	alg1Full := k * powf(float64(fullN), e)
	rows = append(rows, []string{"Algorithm 1", fmt.Sprintf("%d", fullN),
		fmt.Sprintf("%.0f", alg1Full), fmt.Sprintf("extrapolated (t = %.3g * n^%.2f)", k, e)})

	// Algorithm 2, full scale.
	start := time.Now()
	a2, err := core.Algorithm2(procs, fullN)
	if err != nil {
		return Report{}, err
	}
	alg2Time := time.Since(start).Seconds()
	rows = append(rows, []string{"Algorithm 2", fmt.Sprintf("%d", fullN),
		fmt.Sprintf("%.2f", alg2Time), "measured"})

	// Heuristic, full scale.
	start = time.Now()
	h, err := core.Heuristic(procs, fullN)
	if err != nil {
		return Report{}, err
	}
	heurTime := time.Since(start).Seconds()
	rows = append(rows, []string{"heuristic", fmt.Sprintf("%d", fullN),
		fmt.Sprintf("%.4f", heurTime), "measured"})

	sb.WriteString(trace.Table([]string{"algorithm", "n", "runtime (s)", "notes"}, rows))
	fmt.Fprintf(&sb, "\nAlgorithm 1 empirical exponent in n: %.2f (theory: 2)\n", e)
	fmt.Fprintf(&sb, "makespan check: Algorithm 2 %.2f s vs heuristic %.2f s (rel. err %.2e)\n",
		a2.Makespan, h.Makespan, stats.RelativeError(h.Makespan, a2.Makespan))

	return Report{
		ID:    "algocost",
		Title: "cost of computing the distribution (Section 5.2 anecdote)",
		Body:  sb.String(),
		Comparisons: []Comparison{
			{Metric: fmt.Sprintf("Algorithm 1 at n=%d", fullN), Paper: 2 * 24 * 3600, Measured: alg1Full, Unit: "s",
				Note: "paper: '>2 days, interrupted' on a PIII/933; ours extrapolated"},
			{Metric: fmt.Sprintf("Algorithm 2 at n=%d", fullN), Paper: 360, Measured: alg2Time, Unit: "s",
				Note: "paper: 6 minutes on a PIII/933"},
			{Metric: fmt.Sprintf("heuristic at n=%d", fullN), Paper: 0, Measured: heurTime, Unit: "s",
				Note: "paper: 'instantaneous'"},
			{Metric: "Alg.2 / heuristic runtime", Paper: 0, Measured: alg2Time / heurTime, Unit: "x",
				Note: "ordering claim: DP orders of magnitude slower"},
		},
	}, nil
}

func powf(x, e float64) float64 { return math.Pow(x, e) }

// HeuristicQuality reproduces the heuristic-quality claim of Section
// 5.2: "an error relative to the optimal solution of less than 6e-6".
// We compare the heuristic against the exact Algorithm 2 optimum on an
// n sweep of the Table 1 platform.
func HeuristicQuality() (Report, error) {
	procs, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	var rows [][]string
	worst, last := 0.0, 0.0
	sweep := []int{1000, 10000, 50000, 200000}
	for _, n := range sweep {
		opt, err := core.Algorithm2(procs, n)
		if err != nil {
			return Report{}, err
		}
		h, err := core.Heuristic(procs, n)
		if err != nil {
			return Report{}, err
		}
		rel := stats.RelativeError(h.Makespan, opt.Makespan)
		if rel > worst {
			worst = rel
		}
		last = rel
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", opt.Makespan),
			fmt.Sprintf("%.4f", h.Makespan),
			fmt.Sprintf("%.2e", rel),
		})
	}
	body := trace.Table([]string{"n", "optimal makespan (s)", "heuristic makespan (s)", "relative error"}, rows) +
		"\nThe error shrinks with n: the rounding moves at most one item per\n" +
		"processor while the optimal makespan grows linearly in n, so the\n" +
		"paper's 6e-6 at n=817101 corresponds to the tail of this series.\n"
	return Report{
		ID:    "quality",
		Title: "heuristic quality versus the exact optimum (Section 5.2)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: fmt.Sprintf("relative error at n=%d", sweep[len(sweep)-1]), Paper: 6e-6, Measured: last, Unit: "",
				Note: "paper: < 6e-6 at n=817101 (error scales as 1/n)"},
			{Metric: "max relative error (small-n sweep)", Paper: 0, Measured: worst, Unit: "",
				Note: "dominated by the smallest n: one item is ~1% of a share there"},
		},
	}, nil
}

// OrderingPolicies validates Theorem 3 on the Table 1 platform: the
// descending-bandwidth order yields the best balanced makespan, the
// ascending order the worst, with random orders in between; and on
// small sub-platforms an exhaustive permutation check confirms
// optimality of the policy.
func OrderingPolicies() (Report, error) {
	n := platform.Table1Rays
	mkOrder := func(o platform.Ordering) (float64, error) {
		procs, err := platform.Table1().ProcessorsOrdered(o)
		if err != nil {
			return 0, err
		}
		res, err := core.Heuristic(procs, n)
		if err != nil {
			return 0, err
		}
		return res.Makespan, nil
	}
	desc, err := mkOrder(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	asc, err := mkOrder(platform.OrderAscendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	listed, err := mkOrder(platform.OrderAsListed)
	if err != nil {
		return Report{}, err
	}

	// Random worker orders (root stays last).
	procsDesc, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	rng := rand.New(rand.NewSource(99))
	var randomMakespans []float64
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(procsDesc) - 1)
		shuffled := make([]core.Processor, 0, len(procsDesc))
		for _, idx := range perm {
			shuffled = append(shuffled, procsDesc[idx])
		}
		shuffled = append(shuffled, procsDesc[len(procsDesc)-1])
		res, err := core.Heuristic(shuffled, n)
		if err != nil {
			return Report{}, err
		}
		randomMakespans = append(randomMakespans, res.Makespan)
	}
	randomSummary := stats.Summarize(randomMakespans)

	// Exhaustive check on a 5-processor sub-platform (4! = 24 orders).
	sub := procsDesc[:4]
	sub = append(append([]core.Processor(nil), sub...), procsDesc[len(procsDesc)-1])
	lps, err := core.ExtractLinear(sub)
	if err != nil {
		return Report{}, err
	}
	bestPerm, worstPerm := 0.0, 0.0
	first := true
	descSub, err := core.SolveLinearRational(lps, 100000)
	if err != nil {
		return Report{}, err
	}
	permuteLPs(lps[:4], func(perm []core.LinearProcessor) {
		cand := append(append([]core.LinearProcessor(nil), perm...), lps[4])
		sol, err2 := core.SolveLinearRational(cand, 100000)
		if err2 != nil {
			err = err2
			return
		}
		if first || sol.Makespan < bestPerm {
			bestPerm = sol.Makespan
		}
		if first || sol.Makespan > worstPerm {
			worstPerm = sol.Makespan
		}
		first = false
	})
	if err != nil {
		return Report{}, err
	}

	rows := [][]string{
		{"descending bandwidth (Theorem 3)", fmt.Sprintf("%.2f", desc)},
		{"as listed (Table 1 order)", fmt.Sprintf("%.2f", listed)},
		{"random (mean of 10)", fmt.Sprintf("%.2f", randomSummary.Mean)},
		{"random (worst of 10)", fmt.Sprintf("%.2f", randomSummary.Max)},
		{"ascending bandwidth", fmt.Sprintf("%.2f", asc)},
	}
	body := trace.Table([]string{"ordering", "balanced makespan (s)"}, rows) +
		fmt.Sprintf("\nexhaustive 5-processor check: policy order %.4f s, best permutation %.4f s, worst %.4f s\n",
			descSub.Makespan, bestPerm, worstPerm)

	return Report{
		ID:    "ordering",
		Title: "processor ordering policy (Theorem 3)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "asc - desc makespan penalty", Paper: 56, Measured: asc - desc, Unit: "s",
				Note: "paper: Figure 4 ran 56 s longer than Figure 3"},
			{Metric: "policy vs best permutation (5 procs)", Paper: 1, Measured: descSub.Makespan / bestPerm, Unit: "x",
				Note: "Theorem 3: the policy is optimal (ratio 1)"},
		},
	}, nil
}

func permuteLPs(xs []core.LinearProcessor, f func([]core.LinearProcessor)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(xs) {
			f(xs)
			return
		}
		for i := k; i < len(xs); i++ {
			xs[k], xs[i] = xs[i], xs[k]
			rec(k + 1)
			xs[k], xs[i] = xs[i], xs[k]
		}
	}
	rec(0)
}

// GuaranteeBoundCheck validates Eq. (4) empirically: on random affine
// platforms the heuristic's makespan T' never exceeds the rational
// optimum by more than sum_j Tcomm(j,1) + max_i Tcomp(i,1).
func GuaranteeBoundCheck() (Report, error) {
	rng := rand.New(rand.NewSource(7))
	trials := 60
	var worstFrac float64
	violations := 0
	for trial := 0; trial < trials; trial++ {
		p := 2 + rng.Intn(8)
		aps := make([]core.AffineProcessor, p)
		for i := range aps {
			aps[i] = core.AffineProcessor{
				Name:        fmt.Sprintf("w%d", i),
				CommFixed:   rng.Float64() * 0.5,
				CommPerItem: rng.Float64() * 0.01,
				CompFixed:   rng.Float64() * 0.5,
				CompPerItem: 0.001 + rng.Float64()*0.02,
			}
		}
		aps[p-1].CommFixed, aps[p-1].CommPerItem = 0, 0 // root
		procs := make([]core.Processor, p)
		for i, ap := range aps {
			procs[i] = ap.Processor()
		}
		n := 100 + rng.Intn(5000)
		rat, err := core.HeuristicRational(aps, n)
		if err != nil {
			return Report{}, err
		}
		h, err := core.Heuristic(procs, n)
		if err != nil {
			return Report{}, err
		}
		ratT, _ := rat.Makespan.Float64()
		bound := core.GuaranteeBound(procs)
		gap := h.Makespan - ratT
		if gap > bound+1e-9 {
			violations++
		}
		if bound > 0 && gap/bound > worstFrac {
			worstFrac = gap / bound
		}
	}
	body := fmt.Sprintf(
		"%d random affine platforms (p in [2,9], n in [100,5100)):\n"+
			"  Eq. (4) violations: %d\n"+
			"  worst observed gap as a fraction of the bound: %.3f\n"+
			"The bound is loose in practice: the rounding moves each share by\n"+
			"less than one item, and only a few of those moves land on the\n"+
			"critical path.\n", trials, violations, worstFrac)
	return Report{
		ID:    "bound",
		Title: "rounding guarantee of Eq. (4)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "Eq. (4) violations", Paper: 0, Measured: float64(violations), Unit: "",
				Note: "guaranteed by construction"},
		},
	}, nil
}

// RootChoice reproduces the Section 3.4 procedure on the Table 1 grid:
// the data set lives on dinadan; shipping it to another machine before
// scattering costs n times that machine's alpha (star topology through
// the dinadan-side switch). The evaluation picks the root minimizing
// transfer plus balanced makespan.
func RootChoice() (Report, error) {
	p := platform.Table1()
	n := platform.Table1Rays
	var candidates []core.RootChoice
	for _, rootM := range p.Machines {
		cand := p
		cand.Root = rootM.Name
		// Rebuild the machine list with communication costs as seen
		// from the candidate root: alpha(root->w) = alpha(w) +
		// alpha(root) for w != root (both legs of the star).
		cand.Machines = nil
		for _, m := range p.Machines {
			m2 := m
			if m.Name != rootM.Name {
				m2.Alpha = m.Alpha + rootM.Alpha
			} else {
				m2.Alpha = 0
			}
			cand.Machines = append(cand.Machines, m2)
		}
		procs, err := cand.ProcessorsOrdered(platform.OrderDescendingBandwidth)
		if err != nil {
			return Report{}, err
		}
		candidates = append(candidates, core.RootChoice{
			Name:     rootM.Name,
			Transfer: float64(n) * rootM.Alpha,
			Procs:    procs,
		})
	}
	best, evals, err := core.ChooseRoot(n, candidates, core.Heuristic)
	if err != nil {
		return Report{}, err
	}
	var rows [][]string
	for _, ev := range evals {
		rows = append(rows, []string{
			ev.Choice.Name,
			fmt.Sprintf("%.2f", ev.Choice.Transfer),
			fmt.Sprintf("%.2f", ev.Result.Makespan),
			fmt.Sprintf("%.2f", ev.Total),
		})
	}
	body := trace.Table([]string{"candidate root", "transfer (s)", "balanced makespan (s)", "total (s)"}, rows) +
		fmt.Sprintf("\nbest root: %s\n", evals[best].Choice.Name)
	return Report{
		ID:    "root",
		Title: "root processor choice (Section 3.4)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "best root is the data holder", Paper: 1, Measured: b2f(evals[best].Choice.Name == "dinadan"), Unit: "",
				Note: "the paper keeps the data on dinadan; moving 817k rays never pays off"},
		},
	}, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/mpi"
	"repro/internal/platform"
	"repro/internal/trace"
)

func init() {
	register("tree", FlatVsBinomial)
}

// collectiveMakespan runs one collective on the world and returns the
// virtual makespan.
func collectiveMakespan(procs []core.Processor, run func(c *mpi.Comm) error) (float64, error) {
	world, err := mpi.NewWorld(procs, len(procs)-1)
	if err != nil {
		return 0, err
	}
	stats, err := mpi.Run(world, run)
	if err != nil {
		return 0, err
	}
	return mpi.Makespan(stats), nil
}

// FlatVsBinomial quantifies the introduction's discussion of
// collective-communication trees: MPICH's binomial tree wins log2(p)
// rounds on homogeneous clusters, but on a wide-area star topology a
// relay between two non-root nodes crosses the slow links twice, so
// MPICH-G2 "is able to switch to a flat tree broadcast when network
// latency is high". We time both trees for Bcast and Scatterv on (a) a
// homogeneous cluster and (b) the paper's two-site Table 1 grid.
func FlatVsBinomial() (Report, error) {
	const items = 100000

	homogeneous := make([]core.Processor, 16)
	for i := range homogeneous {
		homogeneous[i] = core.Processor{
			Name: fmt.Sprintf("node%02d", i),
			Comm: cost.Linear{PerItem: 2e-5},
			Comp: cost.Linear{PerItem: 0.01},
		}
	}
	homogeneous[15].Comm = cost.Zero

	table1, err := platform.Table1().ProcessorsOrdered(platform.OrderDescendingBandwidth)
	if err != nil {
		return Report{}, err
	}
	balanced, err := core.Heuristic(table1, items)
	if err != nil {
		return Report{}, err
	}
	uniformCounts := core.Uniform(16, items)

	type cell struct {
		name  string
		procs []core.Processor
		run   func(binomial bool) func(c *mpi.Comm) error
	}
	bcastProg := func(procs []core.Processor) func(bool) func(c *mpi.Comm) error {
		return func(binomial bool) func(c *mpi.Comm) error {
			return func(c *mpi.Comm) error {
				var in []int32
				if c.IsRoot() {
					in = make([]int32, items)
				}
				var err error
				if binomial {
					_, err = mpi.BcastBinomial(c, in)
				} else {
					_, err = mpi.Bcast(c, in)
				}
				return err
			}
		}
	}
	scatterProg := func(counts core.Distribution) func(bool) func(c *mpi.Comm) error {
		return func(binomial bool) func(c *mpi.Comm) error {
			return func(c *mpi.Comm) error {
				var in []int32
				if c.IsRoot() {
					in = make([]int32, items)
				}
				var err error
				if binomial {
					_, err = mpi.ScattervBinomial(c, in, []int(counts))
				} else {
					_, err = mpi.Scatterv(c, in, []int(counts))
				}
				return err
			}
		}
	}

	cells := []cell{
		{"bcast / homogeneous cluster", homogeneous, bcastProg(homogeneous)},
		{"bcast / table-1 grid", table1, bcastProg(table1)},
		{"scatterv(uniform) / homogeneous", homogeneous, scatterProg(uniformCounts)},
		{"scatterv(balanced) / table-1 grid", table1, scatterProg(balanced.Distribution)},
	}

	var rows [][]string
	var homoBcastRatio, gridBcastRatio float64
	var homoScatterRatio, gridScatterRatio float64
	for _, cl := range cells {
		flat, err := collectiveMakespan(cl.procs, cl.run(false))
		if err != nil {
			return Report{}, err
		}
		binom, err := collectiveMakespan(cl.procs, cl.run(true))
		if err != nil {
			return Report{}, err
		}
		ratio := binom / flat
		rows = append(rows, []string{
			cl.name,
			fmt.Sprintf("%.3f", flat),
			fmt.Sprintf("%.3f", binom),
			fmt.Sprintf("%.2f", ratio),
		})
		switch cl.name {
		case "bcast / homogeneous cluster":
			homoBcastRatio = ratio
		case "bcast / table-1 grid":
			gridBcastRatio = ratio
		case "scatterv(uniform) / homogeneous":
			homoScatterRatio = ratio
		case "scatterv(balanced) / table-1 grid":
			gridScatterRatio = ratio
		}
	}

	body := trace.Table([]string{"collective / platform", "flat tree (s)", "binomial tree (s)", "binomial/flat"}, rows) +
		"\nFor broadcast — the full payload on every edge — the binomial tree\n" +
		"wins everywhere: log2(p) rounds beat the root's p-1 serial sends.\n" +
		"For scatter the picture flips: a binomial scatter moves aggregated\n" +
		"sub-tree blocks over relay links that pay both star legs, so the\n" +
		"flat rank-order scatter — exactly the structure the paper's\n" +
		"load-balancing model assumes — wins, and wins bigger on the\n" +
		"two-site grid. This is the topology sensitivity behind MPICH-G2's\n" +
		"tree switching that the introduction discusses.\n"

	return Report{
		ID:    "tree",
		Title: "flat vs binomial collective trees (Section 1 discussion)",
		Body:  body,
		Comparisons: []Comparison{
			{Metric: "binomial/flat bcast, homogeneous", Paper: 0, Measured: homoBcastRatio, Unit: "x",
				Note: "MPICH default wins broadcasts (<1)"},
			{Metric: "binomial/flat bcast, table-1 grid", Paper: 0, Measured: gridBcastRatio, Unit: "x",
				Note: "still <1: payload replication dominates"},
			{Metric: "binomial/flat scatterv, homogeneous", Paper: 0, Measured: homoScatterRatio, Unit: "x",
				Note: "flat wins scatters (>1): no payload replication to amortize relays"},
			{Metric: "binomial/flat scatterv, table-1 grid", Paper: 0, Measured: gridScatterRatio, Unit: "x",
				Note: "worse than homogeneous: relays double-pay the star legs"},
		},
	}, nil
}

package experiment

// Degraded prices the degraded-network fallback: the chaos pipeline on
// routed ring platforms of growing size, under a mid-scatter site
// partition plus a degraded trunk link, run twice per size — once with
// recovery forced to keep the exact DP re-solves (the healthy-network
// baseline) and once with the divergence detector wired in, so the
// re-solves fall back to diffusion over the live adjacency. The rows
// compare the two pipelines' makespans and, per size, the raw solver
// gap between one exact solve and one diffusion pass on the same
// flattened platform. `scatterbench -degraded FILE` writes the same
// numbers as BENCH_degraded.json.

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/platform"
)

func init() {
	register("degraded", Degraded)
}

// degradedSizes are the benchmark's graph sizes, in sites; each site
// carries two machines, so ranks = 2·sites.
var degradedSizes = []int{3, 5, 8}

// degradedRow is one row of BENCH_degraded.json: one graph size.
type degradedRow struct {
	Sites              int     `json:"sites"`
	Ranks              int     `json:"ranks"`
	Items              int     `json:"items"`
	BaseMakespan       float64 `json:"fault_free_makespan_s"`
	ExactMakespan      float64 `json:"exact_recovery_makespan_s"`
	DiffuseMakespan    float64 `json:"diffuse_recovery_makespan_s"`
	DiffuseOverheadPct float64 `json:"diffuse_vs_exact_overhead_pct"`
	DiffuseRounds      int     `json:"diffuse_rounds"`
	Timeouts           int     `json:"timeouts"`
	FailedRanks        int     `json:"failed_ranks"`
	SolverExact        float64 `json:"solver_exact_makespan_s"`
	SolverDiffuse      float64 `json:"solver_diffuse_makespan_s"`
	SolverRatio        float64 `json:"solver_diffuse_over_exact"`
}

// degradedDoc is the BENCH_degraded.json document.
type degradedDoc struct {
	Benchmark string        `json:"benchmark"`
	Scenario  string        `json:"scenario"`
	BandNote  string        `json:"band_note"`
	Rows      []degradedRow `json:"rows"`
}

// degradedGraph builds a deterministic ring of sites with two machines
// each: compute speeds cycle over three classes, attachments are
// LAN-scale, and the inter-site links carry the real cost. A ring, so
// one partitioned site never disconnects the survivors.
func degradedGraph(sites int) platform.Graph {
	g := platform.Graph{Name: fmt.Sprintf("degraded-ring-%d", sites), Root: "m00a"}
	for s := 0; s < sites; s++ {
		node := platform.Node{Name: fmt.Sprintf("site%02d", s)}
		for m := 0; m < 2; m++ {
			node.Machines = append(node.Machines, platform.Machine{
				Name:  fmt.Sprintf("m%02d%c", s, 'a'+m),
				CPUs:  1,
				Beta:  1 + 0.5*float64((2*s+m)%3),
				Alpha: 0.02,
			})
		}
		g.Nodes = append(g.Nodes, node)
	}
	for s := 0; s < sites; s++ {
		next := (s + 1) % sites
		if sites == 2 && s == 1 {
			break // a two-node ring is a single link
		}
		g.Links = append(g.Links, platform.Link{
			A:     g.Nodes[s].Name,
			B:     g.Nodes[next].Name,
			Alpha: 0.05 + 0.005*float64(s),
		})
	}
	return g
}

// runDegraded executes the benchmark and assembles the document.
func runDegraded() (degradedDoc, error) {
	doc := degradedDoc{
		Benchmark: "Degraded",
		Scenario:  "permanent partition of one site mid-scatter plus every trunk link degraded 2x",
		BandNote: fmt.Sprintf("diffusion documents T <= %.1f*T_exact + GuaranteeBound; "+
			"solver_diffuse_over_exact must stay under that band", core.DiffusionBandFactor),
	}
	for _, sites := range degradedSizes {
		g := degradedGraph(sites)
		ranks := 2 * sites
		items := 30 * ranks

		base := chaos.Config{
			Seed:           int64(100 + sites),
			Items:          items,
			Graph:          &g,
			ForceRootCrash: -1,
			Horizon:        1,
			Policy: fault.Policy{
				Timeout:    1,
				MaxRetries: 2,
				Backoff:    fault.Backoff{Base: 0.5, Factor: 2, Cap: 2},
			},
		}
		clean, err := chaos.Run(base)
		if err != nil {
			return doc, fmt.Errorf("%d sites, clean: %w", sites, err)
		}
		if clean.TotalLoss {
			return doc, fmt.Errorf("%d sites: clean run lost everything", sites)
		}

		// Scale the scripted faults and the retry policy to this size's
		// fault-free makespan, so the partition always lands mid-scatter
		// and the retries always exhaust well before the pipeline ends.
		// Every trunk link degrades, not just one: the whole cost model
		// is stale, so the detector stays tripped through the re-solve —
		// the regime the diffusion fallback exists for.
		mk := clean.Makespan
		victim := g.Nodes[sites/2].Name
		faults := []fault.NetFault{
			{Kind: fault.Partition, Site: victim, Start: 0.1 * mk, End: 1e9},
		}
		for _, l := range g.Links {
			faults = append(faults, fault.NetFault{
				Kind: fault.LinkDegrade, EdgeA: l.A, EdgeB: l.B,
				Start: 0, End: 1e9, Factor: 2,
			})
		}
		cfg := base
		cfg.NetFaults = faults
		cfg.Policy.Timeout = 0.05 * mk
		cfg.Policy.Backoff = fault.Backoff{Base: 0.025 * mk, Factor: 2, Cap: 0.1 * mk}
		cfg.Divergence = monitor.DivergenceConfig{Window: 4, Trip: 2, Clear: 3}

		exactCfg := cfg
		exactCfg.ExactRecovery = true
		exact, err := chaos.Run(exactCfg)
		if err != nil {
			return doc, fmt.Errorf("%d sites, exact recovery: %w", sites, err)
		}
		diffuse, err := chaos.Run(cfg)
		if err != nil {
			return doc, fmt.Errorf("%d sites, diffuse recovery: %w", sites, err)
		}
		if exact.TotalLoss || diffuse.TotalLoss {
			return doc, fmt.Errorf("%d sites: partial partition reported total loss", sites)
		}
		if diffuse.DiffuseRounds == 0 {
			return doc, fmt.Errorf("%d sites: the degraded run never took the diffusion fallback", sites)
		}

		// Raw solver gap on the same flattened platform, full adjacency:
		// one exact solve vs one diffusion pass over the whole pool.
		pl, err := g.Flatten()
		if err != nil {
			return doc, fmt.Errorf("%d sites: %w", sites, err)
		}
		procs, err := pl.Processors()
		if err != nil {
			return doc, fmt.Errorf("%d sites: %w", sites, err)
		}
		rankNodes, err := g.ProcessorNodes()
		if err != nil {
			return doc, fmt.Errorf("%d sites: %w", sites, err)
		}
		opt, err := core.Algorithm2(procs, items)
		if err != nil {
			return doc, fmt.Errorf("%d sites, exact solve: %w", sites, err)
		}
		diffRes, _, err := core.DiffusePool(procs, g.RankAdjacency(rankNodes), items)
		if err != nil {
			return doc, fmt.Errorf("%d sites, diffusion solve: %w", sites, err)
		}
		solverDiffuse := core.Makespan(procs, diffRes.Distribution)

		failed := map[int]bool{}
		timeouts := 0
		for _, s := range diffuse.Scatters {
			timeouts += s.Timeouts
			for _, r := range s.Failed {
				failed[r] = true
			}
		}
		overhead := 0.0
		if exact.Makespan > 0 {
			overhead = 100 * (diffuse.Makespan - exact.Makespan) / exact.Makespan
		}
		doc.Rows = append(doc.Rows, degradedRow{
			Sites:              sites,
			Ranks:              ranks,
			Items:              items,
			BaseMakespan:       mk,
			ExactMakespan:      exact.Makespan,
			DiffuseMakespan:    diffuse.Makespan,
			DiffuseOverheadPct: overhead,
			DiffuseRounds:      diffuse.DiffuseRounds,
			Timeouts:           timeouts,
			FailedRanks:        len(failed),
			SolverExact:        opt.Makespan,
			SolverDiffuse:      solverDiffuse,
			SolverRatio:        solverDiffuse / opt.Makespan,
		})
	}
	return doc, nil
}

// DegradedJSON renders BENCH_degraded.json (scatterbench -degraded).
func DegradedJSON() ([]byte, error) {
	doc, err := runDegraded()
	if err != nil {
		return nil, err
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// Degraded is the registered experiment: the exact-vs-diffusion table
// on degraded networks. The paper assumes a healthy network — the
// Paper column is 0 throughout, and the rows document the extension.
func Degraded() (Report, error) {
	doc, err := runDegraded()
	if err != nil {
		return Report{}, err
	}

	var sb strings.Builder
	sb.WriteString("Chaos pipeline on routed ring platforms under a mid-scatter site\n")
	sb.WriteString("partition with every trunk link degraded 2x: exact-DP recovery vs\n")
	sb.WriteString("the diffusion fallback the divergence detector switches to. A\n")
	sb.WriteString("negative overhead means diffusion beat the exact re-solve — the DP\n")
	sb.WriteString("optimizes the nominal cost model, which the degradation has made\n")
	sb.WriteString("stale, while diffusion never consults it.\n\n")
	fmt.Fprintf(&sb, "%5s %6s %6s %10s %10s %10s %9s %8s %7s\n",
		"sites", "ranks", "items", "base (s)", "exact (s)", "diffuse", "overhead", "dRounds", "solver")
	for _, r := range doc.Rows {
		fmt.Fprintf(&sb, "%5d %6d %6d %10.2f %10.2f %10.2f %8.2f%% %8d %6.2fx\n",
			r.Sites, r.Ranks, r.Items, r.BaseMakespan, r.ExactMakespan, r.DiffuseMakespan,
			r.DiffuseOverheadPct, r.DiffuseRounds, r.SolverRatio)
	}
	sb.WriteString("\nsolver column: makespan of one full-pool diffusion over the exact optimum\n")
	fmt.Fprintf(&sb, "(documented band: %.1fx + GuaranteeBound).\n", core.DiffusionBandFactor)

	rep := Report{
		ID:    "degraded",
		Title: "degraded-network recovery: exact DP vs diffusion fallback (extension)",
		Body:  sb.String(),
	}
	worst := 0.0
	for _, r := range doc.Rows {
		if r.SolverRatio > worst {
			worst = r.SolverRatio
		}
		rep.Comparisons = append(rep.Comparisons, Comparison{
			Metric:   fmt.Sprintf("diffusion overhead vs exact recovery, %d sites", r.Sites),
			Paper:    0,
			Measured: r.DiffuseOverheadPct,
			Unit:     "%",
			Note:     "extension: no paper counterpart",
		})
	}
	rep.Comparisons = append(rep.Comparisons, Comparison{
		Metric:   "worst full-pool diffuse/exact solver ratio",
		Paper:    0,
		Measured: worst,
		Unit:     "x",
		Note:     fmt.Sprintf("must stay under the documented %.1fx band", core.DiffusionBandFactor),
	})
	return rep, nil
}

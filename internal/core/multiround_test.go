package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

func commBoundProcs() []Processor {
	// Communication comparable to computation: the stair effect is
	// big, so installments should pay off.
	return []Processor{
		{Name: "w1", Comm: cost.Linear{PerItem: 0.5}, Comp: cost.Linear{PerItem: 1}},
		{Name: "w2", Comm: cost.Linear{PerItem: 0.5}, Comp: cost.Linear{PerItem: 1}},
		{Name: "w3", Comm: cost.Linear{PerItem: 0.5}, Comp: cost.Linear{PerItem: 1}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
}

func TestMultiRoundOneRoundMatchesHeuristic(t *testing.T) {
	procs := commBoundProcs()
	n := 100
	mr, err := MultiRound(procs, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Heuristic(procs, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := mr.Totals.Validate(len(procs), n); err != nil {
		t.Fatal(err)
	}
	// One round is the single-installment problem: both solvers sit
	// on the same LP optimum, though they may round different optimal
	// vertices, so their makespans agree within the Eq. (4) bound.
	bound := GuaranteeBound(procs)
	if diff := mr.Makespan - h.Makespan; diff > bound+1e-9 || diff < -bound-1e-9 {
		t.Errorf("1-round multi-round %g vs heuristic %g differ by more than the bound %g",
			mr.Makespan, h.Makespan, bound)
	}
	// And neither may beat the exact rational relaxation optimum.
	aps, err := ExtractAffine(procs)
	if err != nil {
		t.Fatal(err)
	}
	rat, err := HeuristicRational(aps, n)
	if err != nil {
		t.Fatal(err)
	}
	ratT, _ := rat.Makespan.Float64()
	if mr.Makespan < ratT-1e-6 {
		t.Errorf("1-round multi-round %g beats the LP relaxation %g", mr.Makespan, ratT)
	}
}

func TestMultiRoundReducesStairOnCommBoundPlatform(t *testing.T) {
	procs := commBoundProcs()
	n := 300
	one, err := MultiRound(procs, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := MultiRound(procs, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	if four.Makespan >= one.Makespan {
		t.Errorf("4 rounds (%g) not better than 1 round (%g) on a comm-bound platform",
			four.Makespan, one.Makespan)
	}
}

func TestMultiRoundSharesSumToN(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		p := 2 + rng.Intn(3)
		procs := randomAffineProcs(rng, p)
		n := 10 + rng.Intn(200)
		rounds := 1 + rng.Intn(4)
		mr, err := MultiRound(procs, n, rounds)
		if err != nil {
			t.Fatal(err)
		}
		if err := mr.Totals.Validate(p, n); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(mr.Shares) != rounds {
			t.Fatalf("trial %d: %d rounds, want %d", trial, len(mr.Shares), rounds)
		}
		for r, round := range mr.Shares {
			for i, x := range round {
				if x < 0 {
					t.Fatalf("trial %d: negative share round %d proc %d", trial, r, i)
				}
			}
		}
	}
}

func TestMultiRoundLatencyBackfires(t *testing.T) {
	// High per-message latency: many rounds pay the fixed cost per
	// installment, so the LP should concentrate work in few rounds
	// and the evaluated makespan of the best R-round plan should not
	// beat 1 round by much (and the plan must never be *worse* than
	// what the LP predicts is optimal at R=1 plus the extra fixed
	// costs it decides to pay).
	procs := []Processor{
		{Name: "w1", Comm: cost.Affine{Fixed: 5, PerItem: 0.01}, Comp: cost.Linear{PerItem: 0.5}},
		{Name: "w2", Comm: cost.Affine{Fixed: 5, PerItem: 0.01}, Comp: cost.Linear{PerItem: 0.5}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 0.5}},
	}
	n := 100
	one, err := MultiRound(procs, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := MultiRound(procs, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The LP charges every round's fixed cost, so with latency 5s the
	// 8-round plan's *model* is pessimistic; the evaluated plan may
	// shed empty rounds. Either way it should stay within a small
	// factor of the single round, not explode.
	if eight.Makespan > 2*one.Makespan {
		t.Errorf("8-round plan (%g) more than doubles the 1-round makespan (%g)",
			eight.Makespan, one.Makespan)
	}
}

func TestMultiRoundValidation(t *testing.T) {
	procs := commBoundProcs()
	if _, err := MultiRound(nil, 10, 2); err == nil {
		t.Error("no processors accepted")
	}
	if _, err := MultiRound(procs, -1, 2); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := MultiRound(procs, 10, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	nonAffine := []Processor{{
		Name: "x", Comm: cost.Zero,
		Comp: cost.Func(func(x int) float64 { return float64(x * x) }),
	}}
	if _, err := MultiRound(nonAffine, 10, 2); err == nil {
		t.Error("non-affine costs accepted")
	}
}

func TestEvaluateMultiRoundHandComputed(t *testing.T) {
	procs := []Processor{
		{Name: "w", Comm: cost.Linear{PerItem: 1}, Comp: cost.Linear{PerItem: 2}},
		{Name: "root", Comm: cost.Zero, Comp: cost.Linear{PerItem: 1}},
	}
	// Round 1: w gets 2 (port 0->2, compute 2->6), root gets 4
	// (compute starts at port release 2? no: root comm is free, so
	// its installment arrives at port time 2, computes 2->6).
	// Round 2: w gets 1 (port 2->3, cpu busy till 6, computes 6->8);
	// root gets 0.
	shares := [][]int{{2, 4}, {1, 0}}
	got := EvaluateMultiRound(procs, shares)
	if got != 8 {
		t.Errorf("makespan = %g, want 8", got)
	}
}

func TestEvaluateMultiRoundEmpty(t *testing.T) {
	if got := EvaluateMultiRound(nil, nil); got != 0 {
		t.Errorf("empty evaluation = %g", got)
	}
}

// TestMultiRoundNeverBeatsCommFreeBound sanity-checks against the
// trivial lower bound: total work spread perfectly with free
// communication.
func TestMultiRoundNeverBeatsCommFreeBound(t *testing.T) {
	procs := commBoundProcs()
	n := 200
	// Lower bound: all four processors compute at 1 s/item with free
	// comm: n/4 * 1 = 50 s.
	mr, err := MultiRound(procs, n, 6)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Makespan < 50 {
		t.Errorf("multi-round makespan %g beats the comm-free bound 50", mr.Makespan)
	}
}

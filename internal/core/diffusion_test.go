package core

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// diffProcs builds p processors with cycling link/speed heterogeneity,
// root last, matching the chaos harness shapes.
func diffProcs(p int) []Processor {
	procs := make([]Processor, p)
	for r := 0; r < p; r++ {
		procs[r] = Processor{
			Name: string(rune('a' + r)),
			Comm: cost.Linear{PerItem: 0.5 + 0.5*float64(r%3)},
			Comp: cost.Linear{PerItem: 1 + float64((r+1)%3)},
		}
	}
	procs[p-1].Comm = cost.Zero
	return procs
}

// pathAdj builds a path 0-1-2-...-(p-1).
func pathAdj(p int) [][]int {
	adj := make([][]int, p)
	for i := 0; i < p-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	return adj
}

func fullAdj(p int) [][]int {
	adj := make([][]int, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return adj
}

func TestDiffuseBalancesPool(t *testing.T) {
	for _, p := range []int{2, 4, 7} {
		for _, n := range []int{0, 1, 13, 1000} {
			procs := diffProcs(p)
			res, stats, err := DiffusePool(procs, pathAdj(p), n)
			if err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			if err := res.Distribution.Validate(p, n); err != nil {
				t.Fatalf("p=%d n=%d: %v", p, n, err)
			}
			if stats.Components != 1 {
				t.Errorf("p=%d: %d components on a path", p, stats.Components)
			}
			// Connected graph: every processor ends exactly on its
			// speed-weighted target, so faster processors never hold
			// fewer items than slower ones (up to rounding).
			for i := 0; i < p; i++ {
				for j := 0; j < p; j++ {
					ci, cj := MarginalCompCost(procs[i]), MarginalCompCost(procs[j])
					if ci < cj && res.Distribution[i]+1 < res.Distribution[j] {
						t.Errorf("p=%d n=%d: faster proc %d got %d < slower proc %d's %d",
							p, n, i, res.Distribution[i], j, res.Distribution[j])
					}
				}
			}
		}
	}
}

func TestDiffuseRespectsComponents(t *testing.T) {
	// Two islands: {0,1} and {2,3}, pool split across them. Items must
	// not teleport across the cut.
	procs := diffProcs(4)
	adj := [][]int{{1}, {0}, {3}, {2}}
	load := Distribution{10, 0, 0, 6}
	res, stats, err := Diffuse(DiffusionConfig{Procs: procs, Adjacency: adj, Load: load})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Components != 2 {
		t.Fatalf("components = %d, want 2", stats.Components)
	}
	if got := res.Distribution[0] + res.Distribution[1]; got != 10 {
		t.Errorf("island {0,1} holds %d items, want 10", got)
	}
	if got := res.Distribution[2] + res.Distribution[3]; got != 6 {
		t.Errorf("island {2,3} holds %d items, want 6", got)
	}
}

func TestDiffuseDeterministic(t *testing.T) {
	procs := diffProcs(6)
	adj := fullAdj(6)
	load := Distribution{40, 0, 3, 0, 0, 57}
	first, _, err := Diffuse(DiffusionConfig{Procs: procs, Adjacency: adj, Load: load})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, _, err := Diffuse(DiffusionConfig{Procs: procs, Adjacency: adj, Load: load})
		if err != nil {
			t.Fatal(err)
		}
		for k := range got.Distribution {
			if got.Distribution[k] != first.Distribution[k] {
				t.Fatalf("run %d: share %d = %d, want %d", i, k, got.Distribution[k], first.Distribution[k])
			}
		}
	}
}

func TestDiffuseRandomConservationAndTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := 2 + rng.Intn(9)
		procs := diffProcs(p)
		// Random connected-ish graph: path backbone plus chords.
		adj := pathAdj(p)
		for k := 0; k < p/2; k++ {
			i, j := rng.Intn(p), rng.Intn(p)
			if i == j {
				continue
			}
			dup := false
			for _, nb := range adj[i] {
				if nb == j {
					dup = true
				}
			}
			if dup {
				continue
			}
			adj[i] = append(adj[i], j)
			adj[j] = append(adj[j], i)
		}
		load := make(Distribution, p)
		n := 0
		for i := range load {
			load[i] = rng.Intn(50)
			n += load[i]
		}
		res, _, err := Diffuse(DiffusionConfig{Procs: procs, Adjacency: adj, Load: load})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Distribution.Validate(p, n); err != nil {
			t.Fatalf("trial %d: conservation broken: %v", trial, err)
		}
	}
}

func TestDiffuseRejectsBadInput(t *testing.T) {
	procs := diffProcs(3)
	good := pathAdj(3)
	cases := []struct {
		name string
		cfg  DiffusionConfig
	}{
		{"short load", DiffusionConfig{Procs: procs, Adjacency: good, Load: Distribution{1, 2}}},
		{"negative load", DiffusionConfig{Procs: procs, Adjacency: good, Load: Distribution{1, -2, 3}}},
		{"short adjacency", DiffusionConfig{Procs: procs, Adjacency: good[:2], Load: Distribution{1, 2, 3}}},
		{"asymmetric edge", DiffusionConfig{Procs: procs, Adjacency: [][]int{{1}, {}, {}}, Load: Distribution{1, 2, 3}}},
		{"self loop", DiffusionConfig{Procs: procs, Adjacency: [][]int{{0, 1}, {0}, {}}, Load: Distribution{1, 2, 3}}},
		{"out of range", DiffusionConfig{Procs: procs, Adjacency: [][]int{{7}, {}, {}}, Load: Distribution{1, 2, 3}}},
		{"no processors", DiffusionConfig{}},
	}
	for _, c := range cases {
		if _, _, err := Diffuse(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestDiffuseWithinBandOfExact spot-checks the documented quality band
// on connected graphs: the full chaos sweep rechecks it across seeds.
func TestDiffuseWithinBandOfExact(t *testing.T) {
	for _, p := range []int{3, 5, 8} {
		for _, n := range []int{32, 500} {
			procs := diffProcs(p)
			exact, err := Algorithm2(procs, n)
			if err != nil {
				t.Fatal(err)
			}
			diff, _, err := DiffusePool(procs, fullAdj(p), n)
			if err != nil {
				t.Fatal(err)
			}
			band := DiffusionBandFactor*exact.Makespan + GuaranteeBound(procs)
			if diff.Makespan > band {
				t.Errorf("p=%d n=%d: diffusion makespan %.3f above band %.3f (exact %.3f)",
					p, n, diff.Makespan, band, exact.Makespan)
			}
		}
	}
}

func TestMarginalCompCostLinear(t *testing.T) {
	p := Processor{Comm: cost.Zero, Comp: cost.Linear{PerItem: 2.5}}
	if got := MarginalCompCost(p); got < 2.5-1e-9 || got > 2.5+1e-9 {
		t.Errorf("MarginalCompCost(linear 2.5) = %g", got)
	}
}

package core

import (
	"math/rand"
	"testing"
)

// referenceCell is the specification of one rowRange cell, written as
// plainly as possible: find the crossover emax by linear scan, then
// take the largest e in [0, emax] minimizing the recurrence (ties keep
// the larger e, matching the solver's descending strict-less scan).
// No binary search, no neighbor seeding, no early break — everything
// the kernel optimizes away must not change the answer.
func referenceCell(comm, comp, costNext []float64, d int) (int32, float64) {
	emax := d
	for e := 0; e <= d; e++ {
		if comp[e] >= costNext[d-e] {
			emax = e
			break
		}
	}
	sol := emax
	min := comm[sol] + maxf(comp[sol], costNext[d-sol])
	for e := emax - 1; e >= 0; e-- {
		if m := comm[e] + maxf(comp[e], costNext[d-e]); m < min {
			sol, min = e, m
		}
	}
	return int32(sol), min
}

// dyadicTable builds an increasing cost table that is null at zero
// items, with dyadic increments so float comparisons are exact.
func dyadicTable(rng *rand.Rand, n int, flat bool) []float64 {
	t := make([]float64, n+1)
	for d := 1; d <= n; d++ {
		step := float64(rng.Intn(4)) * 0.25
		if !flat && step == 0 {
			step = 0.25
		}
		t[d] = t[d-1] + step
	}
	return t
}

func checkRowAgainstReference(t *testing.T, comm, comp, costNext []float64, n int, label string) {
	t.Helper()
	cost := make([]float64, n+1)
	choice := make([]int32, n+1)
	rowRange(comm, comp, costNext, cost, choice, 1, n)
	for d := 1; d <= n; d++ {
		wantSol, wantMin := referenceCell(comm, comp, costNext, d)
		if choice[d] != wantSol || cost[d] != wantMin {
			t.Fatalf("%s: d=%d: kernel (e=%d, %g) != reference (e=%d, %g)",
				label, d, choice[d], cost[d], wantSol, wantMin)
		}
	}
}

// TestRowRangeMatchesReference drives the optimized kernel against the
// plain specification on random dyadic tables, including flat stretches
// that force ties.
func TestRowRangeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(200)
		flat := trial%2 == 0
		comm := dyadicTable(rng, n, flat)
		comp := dyadicTable(rng, n, flat)
		costNext := dyadicTable(rng, n, flat)
		checkRowAgainstReference(t, comm, comp, costNext, n, "random")
	}
}

// TestRowRangeCrossoverExtremes pins the emax boundary cases: a
// computation table that dwarfs the suffix cost (emax = 1 from the
// first cell on) and a zero computation table (emax = d in every cell,
// the seed advancing by exactly one per step).
func TestRowRangeCrossoverExtremes(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(8))
	small := dyadicTable(rng, n, false)
	comm := dyadicTable(rng, n, false)

	huge := make([]float64, n+1)
	for d := 1; d <= n; d++ {
		huge[d] = 1 << 20
	}
	checkRowAgainstReference(t, comm, huge, small, n, "huge comp")

	zero := make([]float64, n+1)
	checkRowAgainstReference(t, comm, zero, small, n, "zero comp")

	// Zero suffix cost: comp[e] >= costNext[d-e] already at e = 0.
	checkRowAgainstReference(t, comm, small, zero, n, "zero costNext")
}

// TestRowRangeChunkSplitIdentity is the property the worker pool relies
// on: splitting a row into arbitrary [lo, hi] chunks — each re-seeding
// emax with its own binary search — produces bit-identical cost and
// choice values to one full-range call.
func TestRowRangeChunkSplitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(150)
		comm := dyadicTable(rng, n, trial%2 == 0)
		comp := dyadicTable(rng, n, trial%2 == 0)
		costNext := dyadicTable(rng, n, trial%2 == 0)

		whole := make([]float64, n+1)
		wholeChoice := make([]int32, n+1)
		rowRange(comm, comp, costNext, whole, wholeChoice, 1, n)

		split := make([]float64, n+1)
		splitChoice := make([]int32, n+1)
		for lo := 1; lo <= n; {
			hi := lo + rng.Intn(17) // single-cell chunks included
			if hi > n {
				hi = n
			}
			rowRange(comm, comp, costNext, split, splitChoice, lo, hi)
			lo = hi + 1
		}
		for d := 1; d <= n; d++ {
			if split[d] != whole[d] || splitChoice[d] != wholeChoice[d] {
				t.Fatalf("trial %d d=%d: chunked (e=%d, %g) != whole (e=%d, %g)",
					trial, d, splitChoice[d], split[d], wholeChoice[d], whole[d])
			}
		}
	}
}

// TestRowRangeEmptyRange: an inverted range must not touch the output.
func TestRowRangeEmptyRange(t *testing.T) {
	comm := []float64{0, 1}
	comp := []float64{0, 1}
	costNext := []float64{0, 1}
	cost := []float64{-7, -7}
	choice := []int32{-7, -7}
	rowRange(comm, comp, costNext, cost, choice, 1, 0)
	if cost[0] != -7 || cost[1] != -7 || choice[0] != -7 || choice[1] != -7 {
		t.Fatalf("empty range wrote output: cost %v choice %v", cost, choice)
	}
}

package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cost"
)

// linearPlatform builds a fingerprintable platform of p processors
// whose costs are seeded off (seed, i), with the root (served last)
// carrying a per-seed computation rate so two platforms with different
// seeds never share a cost-fingerprint suffix.
func linearPlatform(seed, p int) []Processor {
	procs := make([]Processor, p)
	for i := 0; i < p-1; i++ {
		procs[i] = Processor{
			Name: fmt.Sprintf("s%d-p%d", seed, i),
			Comm: cost.Linear{PerItem: 1e-5 * float64(1+(seed*31+i)%7)},
			Comp: cost.Linear{PerItem: 1e-4 * float64(1+(seed*17+i)%5)},
		}
	}
	procs[p-1] = Processor{
		Name: fmt.Sprintf("s%d-root", seed),
		Comm: cost.Zero,
		Comp: cost.Linear{PerItem: 1e-4 * float64(1+seed)},
	}
	return procs
}

// TestEngineConcurrentDistinctSignatures hammers one engine with
// several distinct platform signatures from several goroutines at
// once, asserting (a) every concurrent answer is bit-identical to a
// sequential fresh Algorithm 2 solve, and (b) each distinct signature
// paid exactly one cold solve — everything else was a cache hit or a
// coalesced singleflight wait.
func TestEngineConcurrentDistinctSignatures(t *testing.T) {
	const (
		sigs = 8
		gor  = 4
		n    = 3000
	)
	platforms := make([][]Processor, sigs)
	fresh := make([]Result, sigs)
	for s := range platforms {
		platforms[s] = linearPlatform(s, 5+s%3)
		want, err := Algorithm2(platforms[s], n)
		if err != nil {
			t.Fatalf("fresh solve %d: %v", s, err)
		}
		fresh[s] = want
	}

	e := NewEngine(2 * sigs)
	var wg sync.WaitGroup
	errs := make(chan error, sigs*gor)
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := 0; s < sigs; s++ {
				// Stagger the order per goroutine so leaders and
				// waiters mix across signatures.
				s := (s + g) % sigs
				res, info, err := e.SolveDetailed(platforms[s], n)
				if err != nil {
					errs <- fmt.Errorf("solve %d: %v", s, err)
					return
				}
				if info.Signature == "" {
					errs <- fmt.Errorf("solve %d: missing signature", s)
					return
				}
				if !equalDist(res.Distribution, fresh[s].Distribution) || res.Makespan != fresh[s].Makespan {
					errs <- fmt.Errorf("solve %d: concurrent result %v (%v) != fresh %v (%v)",
						s, res.Distribution, res.Makespan, fresh[s].Distribution, fresh[s].Makespan)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.ColdSolves != sigs {
		t.Fatalf("ColdSolves = %d, want exactly %d (one per distinct signature)", st.ColdSolves, sigs)
	}
	if st.Resolves != 0 {
		t.Fatalf("Resolves = %d, want 0 (platforms share no suffix)", st.Resolves)
	}
	if got, want := st.CacheHits+st.Coalesced+st.ColdSolves, sigs*gor; got != want {
		t.Fatalf("CacheHits+Coalesced+ColdSolves = %d, want %d (every request accounted for)", got, want)
	}
}

// TestEngineConcurrentIdenticalFingerprint points every goroutine at
// one (signature, item count) pair: exactly one cold solve may happen,
// and all answers must be bit-identical to the sequential fresh solve.
func TestEngineConcurrentIdenticalFingerprint(t *testing.T) {
	const (
		gor = 16
		n   = 3000
	)
	procs := linearPlatform(1, 6)
	want, err := Algorithm2(procs, n)
	if err != nil {
		t.Fatalf("fresh solve: %v", err)
	}

	e := NewEngine(0)
	var wg sync.WaitGroup
	errs := make(chan error, gor)
	for g := 0; g < gor; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, _, err := e.SolveDetailed(procs, n)
			if err != nil {
				errs <- err
				return
			}
			if !equalDist(res.Distribution, want.Distribution) || res.Makespan != want.Makespan {
				errs <- fmt.Errorf("concurrent result %v != fresh %v", res.Distribution, want.Distribution)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.ColdSolves != 1 {
		t.Fatalf("ColdSolves = %d, want exactly 1", st.ColdSolves)
	}
	if got := st.CacheHits + st.Coalesced; got != gor-1 {
		t.Fatalf("CacheHits+Coalesced = %d, want %d", got, gor-1)
	}
}

// TestEngineConcurrentWarmResolves mixes item counts and platform
// suffixes: goroutines resolve shrinking survivor suffixes of one
// platform while others hammer the full platform, all checked against
// fresh solves.
func TestEngineConcurrentWarmResolves(t *testing.T) {
	const n = 2500
	procs := linearPlatform(3, 8)
	e := NewEngine(0)
	if _, err := e.Solve(procs, n); err != nil {
		t.Fatalf("prime solve: %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cut := g % 4 // drop the first-served `cut` processors
			sub := procs[cut:]
			m := n - 100*g
			res, _, err := e.SolveDetailed(sub, m)
			if err != nil {
				errs <- err
				return
			}
			want, err := Algorithm2(sub, m)
			if err != nil {
				errs <- err
				return
			}
			if !equalDist(res.Distribution, want.Distribution) || res.Makespan != want.Makespan {
				errs <- fmt.Errorf("suffix cut=%d m=%d: engine %v != fresh %v", cut, m, res.Distribution, want.Distribution)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEngineStatsDuringSolve asserts the lock-scope fix directly:
// Stats() must answer while a cold solve is in flight, which the old
// solve-under-lock engine could not do.
func TestEngineStatsDuringSolve(t *testing.T) {
	e := NewEngine(0)
	procs := linearPlatform(5, 6)
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		if _, err := e.Solve(procs, 60000); err != nil {
			t.Errorf("solve: %v", err)
		}
	}()
	<-started
	// While the solve runs (or even after, if it was fast), Stats must
	// not block on it: the call below deadlocks under the old lock
	// scope only when it overlaps the solve, so run it many times to
	// overlap with high probability.
	for i := 0; i < 100; i++ {
		_ = e.Stats()
	}
	<-done
	if st := e.Stats(); st.ColdSolves != 1 {
		t.Fatalf("ColdSolves = %d, want 1", st.ColdSolves)
	}
}

// TestEngineZombieEviction pins a cached plan the way an in-flight
// resolve does, evicts it, and checks its buffers survive until the
// last unpin.
func TestEngineZombieEviction(t *testing.T) {
	const n = 500
	e := NewEngine(1) // capacity 1: the second solve evicts the first
	a := linearPlatform(7, 4)
	b := linearPlatform(8, 4)
	if _, err := e.Solve(a, n); err != nil {
		t.Fatalf("solve a: %v", err)
	}
	sig, ok := PlatformSignature(a)
	if !ok {
		t.Fatal("platform a has no signature")
	}

	e.mu.Lock()
	pl := e.cache.Get(sig)
	if pl == nil {
		t.Fatal("plan for a not cached")
	}
	pl.refs++
	pl.pinRows()
	e.mu.Unlock()

	if _, err := e.Solve(b, n); err != nil {
		t.Fatalf("solve b: %v", err)
	}
	e.mu.Lock()
	if !pl.zombie {
		e.mu.Unlock()
		t.Fatal("evicted pinned plan not marked zombie")
	}
	if pl.rows[0].cost == nil {
		e.mu.Unlock()
		t.Fatal("pinned plan's rows were freed while pinned")
	}
	e.unpinLocked(pl)
	if pl.rows[0].cost != nil {
		e.mu.Unlock()
		t.Fatal("zombie plan's rows not freed on last unpin")
	}
	e.mu.Unlock()
}

func equalDist(a, b Distribution) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package core

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"repro/internal/cost"
	"repro/internal/lp"
)

// AffineProcessor is a processor with affine cost functions, the
// setting of the guaranteed heuristic (Section 3.3):
// Tcomm(i,x) = CommFixed + CommPerItem*x and
// Tcomp(i,x) = CompFixed + CompPerItem*x.
type AffineProcessor struct {
	// Name identifies the processor.
	Name string
	// CommFixed and CommPerItem are the affine communication cost
	// coefficients, in seconds.
	CommFixed, CommPerItem float64
	// CompFixed and CompPerItem are the affine computation cost
	// coefficients, in seconds.
	CompFixed, CompPerItem float64
}

// Processor converts the affine description into a general Processor.
func (ap AffineProcessor) Processor() Processor {
	return Processor{
		Name: ap.Name,
		Comm: cost.Affine{Fixed: ap.CommFixed, PerItem: ap.CommPerItem},
		Comp: cost.Affine{Fixed: ap.CompFixed, PerItem: ap.CompPerItem},
	}
}

// ExtractAffine recovers affine coefficients from processors whose cost
// functions are affine (per cost.ClassOf). The coefficients are probed
// from evaluations at 1 and 2 items, which is exact for affine
// functions.
func ExtractAffine(procs []Processor) ([]AffineProcessor, error) {
	out := make([]AffineProcessor, len(procs))
	for i, p := range procs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if c := cost.ClassOf(p.Comm); c < cost.AffineClass {
			return nil, fmt.Errorf("core: processor %d (%s) communication cost is %v, not affine", i, p.Name, c)
		}
		if c := cost.ClassOf(p.Comp); c < cost.AffineClass {
			return nil, fmt.Errorf("core: processor %d (%s) computation cost is %v, not affine", i, p.Name, c)
		}
		ap := AffineProcessor{Name: p.Name}
		ap.CommPerItem = p.Comm.Eval(2) - p.Comm.Eval(1)
		ap.CommFixed = clampNonNeg(p.Comm.Eval(1) - ap.CommPerItem)
		ap.CompPerItem = p.Comp.Eval(2) - p.Comp.Eval(1)
		ap.CompFixed = clampNonNeg(p.Comp.Eval(1) - ap.CompPerItem)
		out[i] = ap
	}
	return out, nil
}

func clampNonNeg(x float64) float64 {
	if x < 0 {
		return 0
	}
	return x
}

// ratFromFloat converts a finite float64 exactly to a rational;
// non-finite values map to zero (they are rejected earlier by
// validation, this is defensive).
func ratFromFloat(x float64) *big.Rat {
	r := new(big.Rat)
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return r
	}
	r.SetFloat64(x)
	return r
}

// RationalSolution is the exact LP relaxation optimum of Eq. (3).
type RationalSolution struct {
	// Shares are the optimal rational item counts, one per processor.
	Shares []*big.Rat
	// Makespan is the optimal rational makespan T of the relaxation.
	Makespan *big.Rat
}

// HeuristicRational solves the paper's linear program (Eq. 3) exactly
// in rationals:
//
//	minimize T  s.t.  ni >= 0,  sum ni = n,
//	                  T >= sum_{j<=i} Tcomm(j,nj) + Tcomp(i,ni)  for all i
//
// The LP treats the affine cost functions as defined for all n >= 0
// (as the paper does), so a zero share still pays the fixed term inside
// the LP; this only over-approximates the true cost and never
// invalidates the Eq. (4) guarantee.
func HeuristicRational(aps []AffineProcessor, n int) (RationalSolution, error) {
	p := len(aps)
	if p == 0 {
		return RationalSolution{}, errors.New("core: no processors")
	}
	if n < 0 {
		return RationalSolution{}, fmt.Errorf("core: negative item count %d", n)
	}

	// Variables 0..p-1: shares; variable p: the makespan T.
	prob := &lp.Problem{NumVars: p + 1}
	prob.Objective = make([]*big.Rat, p+1)
	prob.Objective[p] = big.NewRat(1, 1)

	// sum ni = n.
	eq := lp.Constraint{Rel: lp.EQ, RHS: new(big.Rat).SetInt64(int64(n))}
	eq.Coeffs = make([]*big.Rat, p+1)
	for i := 0; i < p; i++ {
		eq.Coeffs[i] = big.NewRat(1, 1)
	}
	prob.Constraints = append(prob.Constraints, eq)

	// Finish-time constraints:
	// sum_{j<=i} CommPerItem_j*nj + CompPerItem_i*ni - T
	//   <= -(sum_{j<=i} CommFixed_j + CompFixed_i).
	fixedComm := 0.0
	for i := 0; i < p; i++ {
		fixedComm += aps[i].CommFixed
		c := lp.Constraint{Rel: lp.LE}
		c.Coeffs = make([]*big.Rat, p+1)
		for j := 0; j <= i; j++ {
			c.Coeffs[j] = ratFromFloat(aps[j].CommPerItem)
		}
		compSlope := ratFromFloat(aps[i].CompPerItem)
		c.Coeffs[i] = new(big.Rat).Add(c.Coeffs[i], compSlope)
		c.Coeffs[p] = big.NewRat(-1, 1)
		c.RHS = new(big.Rat).Neg(ratFromFloat(fixedComm + aps[i].CompFixed))
		prob.Constraints = append(prob.Constraints, c)
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return RationalSolution{}, fmt.Errorf("core: heuristic LP: %w", err)
	}
	if sol.Status != lp.Optimal {
		return RationalSolution{}, fmt.Errorf("core: heuristic LP is %v", sol.Status)
	}
	return RationalSolution{
		Shares:   sol.X[:p],
		Makespan: sol.X[p],
	}, nil
}

// Heuristic is the guaranteed heuristic of Section 3.3: solve the LP
// relaxation exactly in rationals and round with the paper's scheme.
// It requires affine cost functions; its makespan T' satisfies
// Eq. (4): Topt <= T' <= Topt + GuaranteeBound(procs).
func Heuristic(procs []Processor, n int) (Result, error) {
	aps, err := ExtractAffine(procs)
	if err != nil {
		return Result{}, err
	}
	rat, err := HeuristicRational(aps, n)
	if err != nil {
		return Result{}, err
	}
	dist, err := RoundRatShares(rat.Shares, n)
	if err != nil {
		return Result{}, err
	}
	return Result{Distribution: dist, Makespan: Makespan(procs, dist)}, nil
}

// GuaranteeBound computes the additive optimality gap of Eq. (4):
// sum_j Tcomm(j, 1) + max_i Tcomp(i, 1).
func GuaranteeBound(procs []Processor) float64 {
	sum := 0.0
	maxComp := 0.0
	for _, p := range procs {
		sum += p.Comm.Eval(1)
		if c := p.Comp.Eval(1); c > maxComp {
			maxComp = c
		}
	}
	return sum + maxComp
}

// RoundRatShares applies the paper's rounding scheme (Section 3.3) to
// exact rational shares that sum to n: repeatedly round, to the nearest
// integer in the direction that cancels the accumulated error, the
// share closest to that integer; fold the final error into the last
// remaining share. Every share moves by strictly less than 1 and the
// result sums exactly to n.
func RoundRatShares(shares []*big.Rat, n int) (Distribution, error) {
	p := len(shares)
	if p == 0 {
		return nil, errors.New("core: no shares to round")
	}
	total := new(big.Rat)
	for i, s := range shares {
		if s == nil {
			return nil, fmt.Errorf("core: share %d is nil", i)
		}
		if s.Sign() < 0 {
			return nil, fmt.Errorf("core: share %d is negative (%s)", i, s.RatString())
		}
		total.Add(total, s)
	}
	if total.Cmp(new(big.Rat).SetInt64(int64(n))) != 0 {
		return nil, fmt.Errorf("core: shares sum to %s, want %d", total.RatString(), n)
	}

	dist := make(Distribution, p)
	remaining := make([]int, 0, p)
	for i := range shares {
		remaining = append(remaining, i)
	}
	err := new(big.Rat) // accumulated rounding error n'_i - n_i

	for len(remaining) > 1 {
		// Pick the remaining share nearest to its target integer:
		// nearest integer when err == 0, ceiling when err < 0 (we
		// under-shot, round someone up), floor when err > 0.
		bestIdx := -1
		bestPos := -1
		var bestDist *big.Rat
		var bestTarget *big.Int
		for pos, i := range remaining {
			target, dist := roundingTarget(shares[i], err.Sign())
			if bestIdx < 0 || dist.Cmp(bestDist) < 0 {
				bestIdx, bestPos, bestDist, bestTarget = i, pos, dist, target
			}
		}
		rounded := new(big.Rat).SetInt(bestTarget)
		diff := new(big.Rat).Sub(rounded, shares[bestIdx])
		err.Add(err, diff)
		if !bestTarget.IsInt64() {
			return nil, fmt.Errorf("core: rounded share %s overflows int64", bestTarget)
		}
		dist[bestIdx] = int(bestTarget.Int64())
		if dist[bestIdx] < 0 {
			dist[bestIdx] = 0 // cannot happen for non-negative shares; defensive
		}
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
	}

	// Last share absorbs the error: n'_k = n_k - err, which is exactly
	// n minus the other integer shares.
	k := remaining[0]
	rest := 0
	for i, v := range dist {
		if i != k {
			rest += v
		}
	}
	dist[k] = n - rest
	if dist[k] < 0 {
		return nil, fmt.Errorf("core: rounding drove share %d negative (%d)", k, dist[k])
	}
	return dist, nil
}

// roundingTarget returns the integer a share should be rounded to given
// the sign of the accumulated error, and the distance to that integer.
// errSign < 0 means previous roundings under-shot, so we round up;
// errSign > 0 rounds down; errSign == 0 rounds to nearest.
func roundingTarget(share *big.Rat, errSign int) (*big.Int, *big.Rat) {
	floor := new(big.Int).Quo(share.Num(), share.Denom())
	// big.Int Quo truncates toward zero; shares are non-negative so
	// truncation is the floor.
	fl := new(big.Rat).SetInt(floor)
	frac := new(big.Rat).Sub(share, fl)
	ceil := floor
	if frac.Sign() != 0 {
		ceil = new(big.Int).Add(floor, big.NewInt(1))
	}
	switch {
	case errSign < 0:
		// Round up: distance is ceil - share.
		d := new(big.Rat).Sub(new(big.Rat).SetInt(ceil), share)
		return ceil, d
	case errSign > 0:
		// Round down: distance is share - floor.
		return floor, frac
	default:
		// Nearest.
		up := new(big.Rat).Sub(new(big.Rat).SetInt(ceil), share)
		if frac.Cmp(up) <= 0 {
			return floor, frac
		}
		return ceil, up
	}
}

// RoundShares is a float64 adapter around the paper's rounding scheme
// for callers (like the closed-form linear solver) whose rational
// shares were computed in floating point. The float shares are
// converted exactly to rationals and rescaled so they sum to exactly n
// before rounding; each resulting integer share differs from its input
// by less than 1 plus the float imprecision.
func RoundShares(shares []float64, n int) Distribution {
	p := len(shares)
	if p == 0 {
		return nil
	}
	rats := make([]*big.Rat, p)
	total := new(big.Rat)
	for i, s := range shares {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			s = 0
		}
		r := new(big.Rat)
		r.SetFloat64(s)
		rats[i] = r
		total.Add(total, r)
	}
	want := new(big.Rat).SetInt64(int64(n))
	if total.Sign() == 0 {
		// Degenerate: spread everything on the last processor (the
		// root), which is always present.
		d := make(Distribution, p)
		d[p-1] = n
		return d
	}
	if total.Cmp(want) != 0 {
		scale := new(big.Rat).Quo(want, total)
		for i := range rats {
			rats[i].Mul(rats[i], scale)
		}
	}
	d, err := RoundRatShares(rats, n)
	if err != nil {
		// Exact rounding can only fail on pathological input; fall
		// back to a safe floor-and-fix scheme.
		return floorAndFix(shares, n)
	}
	return d
}

// floorAndFix floors every share and hands the leftover items one by
// one to the shares with the largest fractional parts.
func floorAndFix(shares []float64, n int) Distribution {
	p := len(shares)
	d := make(Distribution, p)
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, 0, p)
	used := 0
	for i, s := range shares {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			s = 0
		}
		fl := math.Floor(s)
		d[i] = int(fl)
		used += d[i]
		fracs = append(fracs, frac{i, s - fl})
	}
	// Insertion sort by descending fractional part.
	for i := 1; i < len(fracs); i++ {
		for j := i; j > 0 && fracs[j].f > fracs[j-1].f; j-- {
			fracs[j], fracs[j-1] = fracs[j-1], fracs[j]
		}
	}
	left := n - used
	for k := 0; left > 0; k = (k + 1) % p {
		d[fracs[k].i]++
		left--
	}
	for i := 0; left < 0 && i < p; {
		if d[i] > 0 {
			d[i]--
			left++
		} else {
			i++
		}
	}
	return d
}

package core

import (
	"math"
	"testing"

	"repro/internal/cost"
)

// FuzzRoundShares checks the float rounding adapter on arbitrary share
// vectors: the result always has the right length, is non-negative,
// and sums to n.
func FuzzRoundShares(f *testing.F) {
	f.Add(float64(2.5), float64(3.5), float64(4.0), 10)
	f.Add(0.0, 0.0, 0.0, 7)
	f.Add(math.NaN(), math.Inf(1), -5.0, 3)
	f.Add(1e18, 2e-18, 0.3, 100)
	f.Fuzz(func(t *testing.T, a, b, c float64, n int) {
		if n < 0 || n > 1<<20 {
			return
		}
		dist := RoundShares([]float64{a, b, c}, n)
		if len(dist) != 3 {
			t.Fatalf("len = %d", len(dist))
		}
		if dist.Sum() != n {
			t.Fatalf("sum = %d, want %d (shares %g %g %g)", dist.Sum(), n, a, b, c)
		}
		for i, x := range dist {
			if x < 0 {
				t.Fatalf("share %d negative: %d", i, x)
			}
		}
	})
}

// FuzzAlgorithm2Agreement fuzzes small DP instances against Algorithm 1
// on the structured inputs both support.
func FuzzAlgorithm2Agreement(f *testing.F) {
	f.Add(uint8(3), uint8(10), uint8(1), uint8(2), uint8(3))
	f.Add(uint8(1), uint8(0), uint8(0), uint8(1), uint8(0))
	f.Add(uint8(4), uint8(20), uint8(7), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, pRaw, nRaw, a1, b1, a2 uint8) {
		p := 1 + int(pRaw%4)
		n := int(nRaw % 24)
		procs := make([]Processor, p)
		for i := range procs {
			procs[i] = Processor{
				Name: "f",
				Comm: cost.Linear{PerItem: float64((int(a1)+i*int(a2))%8) * 0.25},
				Comp: cost.Linear{PerItem: float64(1+(int(b1)+i)%8) * 0.25},
			}
		}
		procs[p-1].Comm = cost.Zero
		r1, err := Algorithm1(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Makespan != r2.Makespan {
			t.Fatalf("Algorithm1 %g != Algorithm2 %g (p=%d n=%d)", r1.Makespan, r2.Makespan, p, n)
		}
		if err := r2.Distribution.Validate(p, n); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzCoarsen fuzzes the coarsen-then-refine solver against the exact
// Algorithm 2 on dyadic affine platforms, where every cost sum is
// exact in float64: the coarse makespan must never beat the optimum,
// the optimistic DP must really lower-bound it, and the realized gap
// must stay inside the machine-checked band.
func FuzzCoarsen(f *testing.F) {
	f.Add(uint8(3), uint8(200), uint8(7), uint8(1), uint8(2), uint8(3), uint8(1))
	f.Add(uint8(1), uint8(255), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(5), uint8(90), uint8(15), uint8(6), uint8(4), uint8(2), uint8(3))
	f.Add(uint8(2), uint8(37), uint8(2), uint8(7), uint8(1), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, pRaw, nRaw, gRaw, a1, b1, a2, c1 uint8) {
		p := 1 + int(pRaw%5)
		n := int(nRaw)
		g := 1 + int(gRaw%32)
		procs := make([]Processor, p)
		for i := range procs {
			procs[i] = Processor{
				Name: "f",
				Comm: cost.Affine{
					Fixed:   float64(int(c1)%4) * 0.25,
					PerItem: float64((int(a1)+i*int(a2))%8) * 0.25,
				},
				Comp: cost.Linear{PerItem: float64(1+(int(b1)+i)%8) * 0.25},
			}
		}
		procs[p-1].Comm = cost.Zero
		exact, err := Algorithm2(procs, n)
		if err != nil {
			t.Fatal(err)
		}
		cr, err := SolveCoarse(procs, n, g)
		if err != nil {
			t.Fatal(err)
		}
		if err := cr.Distribution.Validate(p, n); err != nil {
			t.Fatalf("p=%d n=%d g=%d: %v", p, n, g, err)
		}
		if cr.Makespan != Makespan(procs, cr.Distribution) {
			t.Fatalf("p=%d n=%d g=%d: reported makespan %g != evaluated %g",
				p, n, g, cr.Makespan, Makespan(procs, cr.Distribution))
		}
		if cr.Makespan < exact.Makespan {
			t.Fatalf("p=%d n=%d g=%d: coarse %g beats the optimum %g", p, n, g, cr.Makespan, exact.Makespan)
		}
		if cr.LowerBound > exact.Makespan {
			t.Fatalf("p=%d n=%d g=%d: lower bound %g exceeds the optimum %g", p, n, g, cr.LowerBound, exact.Makespan)
		}
		if cr.Makespan-exact.Makespan > cr.Band {
			t.Fatalf("p=%d n=%d g=%d: gap %g outside the band %g",
				p, n, g, cr.Makespan-exact.Makespan, cr.Band)
		}
		if cr.Exact {
			for i := range exact.Distribution {
				if cr.Distribution[i] != exact.Distribution[i] {
					t.Fatalf("p=%d n=%d g=%d: exact fallback %v != Algorithm2 %v",
						p, n, g, cr.Distribution, exact.Distribution)
				}
			}
		}
		gridOnly, err := SolveCoarseOpt(procs, n, g, CoarseOptions{SkipRefine: true})
		if err != nil {
			t.Fatal(err)
		}
		if cr.Makespan > gridOnly.Makespan {
			t.Fatalf("p=%d n=%d g=%d: refined %g worse than grid-only %g",
				p, n, g, cr.Makespan, gridOnly.Makespan)
		}
	})
}

package core

import (
	"errors"
	"fmt"

	"repro/internal/cost"
)

// LinearProcessor is a processor with linear cost functions, the
// setting of the paper's Section 4 case study: Tcomm(i,x) = Alpha*x and
// Tcomp(i,x) = Beta*x.
type LinearProcessor struct {
	// Name identifies the processor.
	Name string
	// Alpha is the per-item communication cost, in seconds (the
	// inverse of the link bandwidth in items/second).
	Alpha float64
	// Beta is the per-item computation cost, in seconds.
	Beta float64
}

// Processor converts the linear description into a general Processor.
func (lp LinearProcessor) Processor() Processor {
	return Processor{
		Name: lp.Name,
		Comm: cost.Linear{PerItem: lp.Alpha},
		Comp: cost.Linear{PerItem: lp.Beta},
	}
}

// LinearProcessors converts a slice of linear descriptions.
func LinearProcessors(lps []LinearProcessor) []Processor {
	out := make([]Processor, len(lps))
	for i, lp := range lps {
		out[i] = lp.Processor()
	}
	return out
}

// ExtractLinear recovers the Alpha/Beta constants from processors whose
// cost functions are linear (per cost.ClassOf). It fails if any
// function is not linear.
func ExtractLinear(procs []Processor) ([]LinearProcessor, error) {
	out := make([]LinearProcessor, len(procs))
	for i, p := range procs {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if c := cost.ClassOf(p.Comm); c < cost.LinearClass {
			return nil, fmt.Errorf("core: processor %d (%s) communication cost is %v, not linear", i, p.Name, c)
		}
		if c := cost.ClassOf(p.Comp); c < cost.LinearClass {
			return nil, fmt.Errorf("core: processor %d (%s) computation cost is %v, not linear", i, p.Name, c)
		}
		out[i] = LinearProcessor{
			Name:  p.Name,
			Alpha: p.Comm.Eval(1),
			Beta:  p.Comp.Eval(1),
		}
	}
	return out, nil
}

// D computes the quantity D(P1,...,Pp) of Theorem 1:
//
//	D(P1..Pp) = 1 / sum_i [ 1/(alpha_i+beta_i) * prod_{j<i} beta_j/(alpha_j+beta_j) ]
//
// so that the balanced makespan with simultaneous endings is
// t = n * D(P1..Pp). The product follows from the simultaneous-endings
// recurrence Ti = Ti-1, which gives n_i*(alpha_i+beta_i) =
// beta_{i-1}*n_{i-1}. A processor with alpha+beta = 0 is infinitely
// fast and makes D zero.
func D(lps []LinearProcessor) float64 {
	if len(lps) == 0 {
		return 0
	}
	sum := 0.0
	prod := 1.0
	for _, lp := range lps {
		ab := lp.Alpha + lp.Beta
		if ab == 0 {
			// Infinitely fast processor: it absorbs everything in no
			// time, so the suffix cost is zero and D diverges to 0.
			return 0
		}
		sum += prod / ab
		prod *= lp.Beta / ab
	}
	if sum == 0 {
		return 0
	}
	return 1 / sum
}

// LinearSolution is the rational (fractional) solution of the linear
// case study.
type LinearSolution struct {
	// Shares are the rational item counts per processor; pruned
	// processors have share 0.
	Shares []float64
	// Makespan is the common finish time t = n*D over the kept set.
	Makespan float64
	// Kept flags the processors that participate: by Theorem 2, Pi
	// participates only if alpha_i <= D(P_{i+1}..) over the kept
	// suffix; others only lengthen the schedule and are dropped.
	Kept []bool
}

// SolveLinearRational computes the optimal rational distribution for
// linear cost functions in the given processor order (root last),
// applying Theorem 2's participation criterion and Theorem 1's closed
// form. It runs in O(p²) time (a suffix scan per processor).
func SolveLinearRational(lps []LinearProcessor, n int) (LinearSolution, error) {
	p := len(lps)
	if p == 0 {
		return LinearSolution{}, errors.New("core: no processors")
	}
	if n < 0 {
		return LinearSolution{}, fmt.Errorf("core: negative item count %d", n)
	}
	for i, lp := range lps {
		if lp.Alpha < 0 || lp.Beta < 0 {
			return LinearSolution{}, fmt.Errorf("core: processor %d (%s) has negative cost constants", i, lp.Name)
		}
	}

	sol := LinearSolution{
		Shares: make([]float64, p),
		Kept:   make([]bool, p),
	}

	// Decide participation back to front: Pi is kept iff
	// alpha_i <= D(kept processors after i). The last processor (the
	// root) is always kept: its alpha is 0 by convention, and
	// Theorem 2 only constrains i in [1, p-1].
	kept := make([]LinearProcessor, 0, p)
	keepFlags := make([]bool, p)
	keepFlags[p-1] = true
	kept = append(kept, lps[p-1])
	for i := p - 2; i >= 0; i-- {
		d := D(kept)
		if lps[i].Alpha <= d {
			keepFlags[i] = true
			// Prepend: kept is ordered like the processor list.
			kept = append([]LinearProcessor{lps[i]}, kept...)
		}
	}
	copy(sol.Kept, keepFlags)

	// Theorem 1 on the kept set.
	dAll := D(kept)
	if dAll == 0 {
		// An infinitely fast kept processor: give it everything.
		for i := range lps {
			if keepFlags[i] && lps[i].Alpha+lps[i].Beta == 0 {
				sol.Shares[i] = float64(n)
				return sol, nil
			}
		}
		// n == 0 or a degenerate set: all shares stay zero.
		return sol, nil
	}
	t := float64(n) * dAll
	sol.Makespan = t
	prod := 1.0
	for i := range lps {
		if !keepFlags[i] {
			continue
		}
		ab := lps[i].Alpha + lps[i].Beta
		sol.Shares[i] = prod / ab * t
		prod *= lps[i].Beta / ab
	}
	return sol, nil
}

// SolveLinear computes an integer distribution for linear processors:
// the rational closed form of Theorems 1-2 followed by the Section 3.3
// rounding scheme. Per Section 4.4 the result is guaranteed within
// sum_j Tcomm(j,1) + max_i Tcomp(i,1) of the optimal integer makespan.
func SolveLinear(procs []Processor, n int) (Result, error) {
	lps, err := ExtractLinear(procs)
	if err != nil {
		return Result{}, err
	}
	rat, err := SolveLinearRational(lps, n)
	if err != nil {
		return Result{}, err
	}
	dist := RoundShares(rat.Shares, n)
	return Result{Distribution: dist, Makespan: Makespan(procs, dist)}, nil
}
